package dpm_test

// Cluster-density benchmarks (EXPERIMENTS.md experiments S3/S4): what
// it costs to boot a simulated machine under the event-driven
// scheduler, and what the batched delivery fabric sustains. These back
// the scale soak's ceilings with trend numbers; scripts/bench_filter.sh
// runs them into BENCH_scale.json.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/netsim"
	"dpm/internal/workloads"
)

// BenchmarkClusterBoot boots N machines, each with an account and one
// parked sink task, then tears the cluster down. boot_ms is the boot
// loop alone (shutdown excluded); alloc_bytes/machine is cumulative
// allocation across the whole iteration divided out per machine, the
// cost trend behind the soak's 64 KiB idle-heap budget.
func BenchmarkClusterBoot(b *testing.B) {
	for _, machines := range []int{100, 1000} {
		b.Run(fmt.Sprintf("machines=%d", machines), func(b *testing.B) {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			var bootNS int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				c := kernel.NewCluster(kernel.Config{})
				c.AddNetwork("ether0")
				for j := 0; j < machines; j++ {
					m, err := c.AddMachine(fmt.Sprintf("m-%04d", j), nil, "ether0")
					if err != nil {
						b.Fatal(err)
					}
					m.AddAccount(benchUID, "user")
					if _, err := m.SpawnTask(benchUID, "sink", workloads.NewSinkTask(7100, nil)); err != nil {
						b.Fatal(err)
					}
				}
				bootNS += time.Since(start).Nanoseconds()
				c.Shutdown()
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(bootNS)/float64(b.N)/1e6, "boot_ms")
			b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(b.N*machines), "alloc_bytes/machine")
		})
	}
}

// BenchmarkDatagramFabric pumps datagrams from one machine to a sink
// task on another and reports the sustained delivery rate. The sync
// variant delivers inline (zero configured latency); the latency
// variant routes every datagram through the timer-wheel fabric, so
// dgrams/s is the wheel's batched throughput, not one goroutine per
// delayed datagram.
func BenchmarkDatagramFabric(b *testing.B) {
	variants := []struct {
		name string
		opts []netsim.Option
	}{
		{"sync", nil},
		{"latency=2ms", []netsim.Option{netsim.WithLatency(2*time.Millisecond, time.Millisecond)}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			c := kernel.NewCluster(kernel.Config{})
			c.AddNetwork("ether0", v.opts...)
			defer c.Shutdown()
			src, err := c.AddMachine("src", nil, "ether0")
			if err != nil {
				b.Fatal(err)
			}
			dst, err := c.AddMachine("dst", nil, "ether0")
			if err != nil {
				b.Fatal(err)
			}
			src.AddAccount(benchUID, "user")
			dst.AddAccount(benchUID, "user")
			stats := &workloads.TrafficStats{}
			if _, err := dst.SpawnTask(benchUID, "sink", workloads.NewSinkTask(7100, stats)); err != nil {
				b.Fatal(err)
			}
			pump, err := src.SpawnDetached(benchUID, "pump")
			if err != nil {
				b.Fatal(err)
			}
			fd, err := pump.Socket(meter.AFInet, kernel.SockDgram)
			if err != nil {
				b.Fatal(err)
			}
			if err := pump.BindPort(fd, 0); err != nil {
				b.Fatal(err)
			}
			// Datagrams to an unbound port drop silently; let the sink's
			// first step bind before the timed pump starts.
			for !dst.PortBound(kernel.SockDgram, 7100) {
				time.Sleep(time.Millisecond)
			}
			dest := meter.InetName(dst.PrimaryHostID(), 7100)
			payload := make([]byte, 64)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pump.SendTo(fd, payload, dest); err != nil {
					b.Fatal(err)
				}
			}
			// Drain: a receiver that cannot keep up sheds legally, so wait
			// for full delivery or for delivery to stop making progress.
			last, stalls := int64(-1), 0
			for {
				cur := stats.Received.Load()
				if cur >= int64(b.N) || stalls > 100 {
					break
				}
				if cur == last {
					stalls++
				} else {
					last, stalls = cur, 0
				}
				time.Sleep(time.Millisecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(stats.Received.Load())/b.Elapsed().Seconds(), "dgrams/s")
		})
	}
}
