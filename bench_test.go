package dpm_test

// The benchmark harness for the paper's performance claims. The paper
// publishes no measurement tables, so each benchmark regenerates the
// numbers behind one of its qualitative claims; EXPERIMENTS.md maps
// benchmarks to claims and records the measured results.
//
//	C1  BenchmarkSend*           monitoring overhead (transparency, §2.2)
//	C2  BenchmarkBuffer*         kernel buffering reduction (§4.1)
//	C3  BenchmarkDaemonExchange  per-exchange connection cost (§3.5.1)
//	C4  BenchmarkOrdering        ordering deduction cost (§4.1)
//	A1  BenchmarkMeter*          Appendix A codec cost
//	A2  BenchmarkFilterEngine    filter selection throughput (§3.4)
//	S1  BenchmarkStoreIngest     event-store write-path cost
//	S2  BenchmarkQuerySegmentPruning  footer pruning vs full scan

import (
	"fmt"
	"io"
	"testing"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/analysis/live"
	"dpm/internal/core"
	"dpm/internal/daemon"
	"dpm/internal/filter"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/obs"
	"dpm/internal/query"
	"dpm/internal/store"
	"dpm/internal/trace"
	"dpm/internal/workloads"
)

const benchUID = 100

// benchRig is a minimal metering setup: one machine, a detached
// process with a socketpair to itself, and (optionally) a meter
// connection drained by a sink goroutine.
type benchRig struct {
	cluster *kernel.Cluster
	machine *kernel.Machine
	proc    *kernel.Process
	fd1     int
	fd2     int
}

func newBenchRig(b *testing.B, flags meter.Flag) *benchRig {
	b.Helper()
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	m, err := c.AddMachine("red", nil, "ether0")
	if err != nil {
		b.Fatal(err)
	}
	m.AddAccount(benchUID, "user")
	b.Cleanup(c.Shutdown)

	p, err := m.SpawnDetached(benchUID, "bench")
	if err != nil {
		b.Fatal(err)
	}
	fd1, fd2, err := p.SocketPair()
	if err != nil {
		b.Fatal(err)
	}
	rig := &benchRig{cluster: c, machine: m, proc: p, fd1: fd1, fd2: fd2}

	if flags != 0 {
		// Meter connection drained by a sink process on its own
		// goroutine, standing in for the filter.
		sink, err := m.SpawnDetached(0, "sink")
		if err != nil {
			b.Fatal(err)
		}
		lfd, err := sink.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			b.Fatal(err)
		}
		if err := sink.BindPort(lfd, 0); err != nil {
			b.Fatal(err)
		}
		if err := sink.Listen(lfd, 1); err != nil {
			b.Fatal(err)
		}
		lname, err := sink.SocketName(lfd)
		if err != nil {
			b.Fatal(err)
		}
		root, err := m.SpawnDetached(0, "root")
		if err != nil {
			b.Fatal(err)
		}
		msfd, err := root.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			b.Fatal(err)
		}
		if err := root.Connect(msfd, lname); err != nil {
			b.Fatal(err)
		}
		conn, _, err := sink.Accept(lfd)
		if err != nil {
			b.Fatal(err)
		}
		if err := root.Setmeter(p.PID(), int(flags), msfd); err != nil {
			b.Fatal(err)
		}
		if err := root.Close(msfd); err != nil {
			b.Fatal(err)
		}
		go func() {
			for {
				if _, err := sink.Recv(conn, 65536); err != nil {
					return
				}
			}
		}()
	}
	return rig
}

// sendRecv is one benchmarked operation: a message sent and received
// through a socketpair — two or three meter events when metered.
func (r *benchRig) sendRecv(b *testing.B, payload []byte) {
	if _, err := r.proc.Send(r.fd1, payload); err != nil {
		b.Fatal(err)
	}
	if _, err := r.proc.Recv(r.fd2, len(payload)); err != nil {
		b.Fatal(err)
	}
}

// C1: monitoring overhead. The paper requires that measurement "do
// nothing (or at least as little as possible) to change how the events
// occur" (§2.1) and that degradation "be kept as small as possible"
// (§2.2). Compare a send/recv round trip unmetered, metered with the
// default buffering, and metered with M_IMMEDIATE.
func BenchmarkSendUnmetered(b *testing.B) {
	rig := newBenchRig(b, 0)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.sendRecv(b, payload)
	}
}

func BenchmarkSendMeteredBuffered(b *testing.B) {
	rig := newBenchRig(b, meter.MAll)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.sendRecv(b, payload)
	}
}

func BenchmarkSendMeteredImmediate(b *testing.B) {
	rig := newBenchRig(b, meter.MAll|meter.MImmediate)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.sendRecv(b, payload)
	}
}

// C1 ablation: the flag mask is checked per event, so metering only
// the events of interest costs less than M_ALL — selection starts in
// the kernel, before the filter ever sees a byte.
func BenchmarkSendMeteredSendFlagOnly(b *testing.B) {
	rig := newBenchRig(b, meter.MSend)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.sendRecv(b, payload)
	}
}

// C1 baseline: METRIC-style explicit instrumentation. The paper
// contrasts its design with METRIC, which "was not transparent;
// programmers had to explicitly insert trace calls into their
// programs" (§2.2). Here the program itself builds each trace record
// and sends it to a collector over its own socket — one extra
// user-level send per traced event. Kernel metering does the same
// recording without the extra system calls or program changes.
func BenchmarkSendExplicitTracing(b *testing.B) {
	rig := newBenchRig(b, 0) // no kernel metering
	m := rig.machine
	// App-level collector connection, owned by the traced process
	// itself (visible in its descriptor table — the transparency the
	// paper's design avoids giving up).
	sink, err := m.SpawnDetached(0, "collector")
	if err != nil {
		b.Fatal(err)
	}
	lfd, err := sink.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		b.Fatal(err)
	}
	if err := sink.BindPort(lfd, 0); err != nil {
		b.Fatal(err)
	}
	if err := sink.Listen(lfd, 1); err != nil {
		b.Fatal(err)
	}
	lname, err := sink.SocketName(lfd)
	if err != nil {
		b.Fatal(err)
	}
	tfd, err := rig.proc.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		b.Fatal(err)
	}
	if err := rig.proc.Connect(tfd, lname); err != nil {
		b.Fatal(err)
	}
	conn, _, err := sink.Accept(lfd)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			if _, err := sink.Recv(conn, 65536); err != nil {
				return
			}
		}
	}()

	payload := make([]byte, 64)
	var enc []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The traced operation...
		rig.sendRecv(b, payload)
		// ...plus the explicit trace calls the programmer had to
		// insert: one record per event (send, receive).
		for _, body := range []meter.Body{
			&meter.Send{PID: uint32(rig.proc.PID()), Sock: 1, MsgLength: 64},
			&meter.Recv{PID: uint32(rig.proc.PID()), Sock: 2, MsgLength: 64},
		} {
			msg := meter.Msg{Header: meter.Header{Machine: m.ID()}, Body: body}
			enc = msg.AppendEncode(enc[:0])
			if _, err := rig.proc.Send(tfd, enc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// C2: kernel buffering. "The default is to buffer several messages so
// that the number of meter messages is considerably smaller than the
// number of messages sent by the metered process" (§4.1). Sweep the
// buffer threshold and report the meter-connection writes per 1000
// events.
func BenchmarkBufferThreshold(b *testing.B) {
	for _, threshold := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			var sunk int64
			buf := meter.NewBuffer(threshold, func(batch []byte) { sunk += int64(len(batch)) })
			msg := &meter.Msg{Header: meter.Header{Machine: 1}, Body: &meter.Send{PID: 1, MsgLength: 64}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Add(msg, false)
			}
			b.StopTimer()
			buf.Flush()
			st := buf.Stats()
			if st.Events > 0 {
				b.ReportMetric(float64(st.Flushes)/float64(st.Events)*1000, "flushes/1000events")
				b.ReportMetric(float64(st.Bytes)/float64(st.Events), "wire-bytes/event")
			}
		})
	}
}

// C3: the temporary controller↔daemon connections. "Establishing
// these connections as they are needed does not introduce significant
// overhead" (§3.5.1). BenchmarkDaemonExchange measures a full RPC
// (connect, request, reply, close); BenchmarkStreamRoundTrip measures
// just the request/reply on an established connection, so the
// difference is the per-exchange connection cost.
func BenchmarkDaemonExchange(b *testing.B) {
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	red, err := c.AddMachine("red", nil, "ether0")
	if err != nil {
		b.Fatal(err)
	}
	yellow, err := c.AddMachine("yellow", nil, "ether0")
	if err != nil {
		b.Fatal(err)
	}
	red.AddAccount(benchUID, "user")
	yellow.AddAccount(benchUID, "user")
	b.Cleanup(c.Shutdown)
	if _, err := daemon.Install(c, red); err != nil {
		b.Fatal(err)
	}
	ctl, err := yellow.SpawnDetached(benchUID, "ctl")
	if err != nil {
		b.Fatal(err)
	}
	target, err := red.SpawnDetached(benchUID, "target")
	if err != nil {
		b.Fatal(err)
	}
	req := (&daemon.ProcReq{Type: daemon.TSetFlagsReq, PID: target.PID(), UID: benchUID, Flags: uint32(meter.MSend)}).Wire()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := daemon.Exchange(ctl, "red", req)
		if err != nil || !rep.OK() {
			b.Fatalf("exchange: %v %+v", err, rep)
		}
	}
}

// BenchmarkDaemonExchangeFaultFree is BenchmarkDaemonExchange through
// the hardened path: ExchangeRetry with the default retry policy on a
// healthy fabric. Comparing the two shows what the per-request
// deadline, backoff machinery, and idempotency plumbing cost when
// nothing goes wrong — the answer should be "nothing measurable",
// since the fault-free path takes no retries and arms one timer.
func BenchmarkDaemonExchangeFaultFree(b *testing.B) {
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	red, err := c.AddMachine("red", nil, "ether0")
	if err != nil {
		b.Fatal(err)
	}
	yellow, err := c.AddMachine("yellow", nil, "ether0")
	if err != nil {
		b.Fatal(err)
	}
	red.AddAccount(benchUID, "user")
	yellow.AddAccount(benchUID, "user")
	b.Cleanup(c.Shutdown)
	if _, err := daemon.Install(c, red); err != nil {
		b.Fatal(err)
	}
	ctl, err := yellow.SpawnDetached(benchUID, "ctl")
	if err != nil {
		b.Fatal(err)
	}
	target, err := red.SpawnDetached(benchUID, "target")
	if err != nil {
		b.Fatal(err)
	}
	req := (&daemon.ProcReq{Type: daemon.TSetFlagsReq, PID: target.PID(), UID: benchUID, Flags: uint32(meter.MSend)}).Wire()
	rp := daemon.DefaultRetryPolicy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := daemon.ExchangeRetry(ctl, "red", req, rp)
		if err != nil || !rep.OK() {
			b.Fatalf("exchange: %v %+v", err, rep)
		}
	}
}

func BenchmarkStreamRoundTrip(b *testing.B) {
	// The established-connection baseline for C3: a request/reply pair
	// over one long-lived stream, served by an echo process.
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	red, err := c.AddMachine("red", nil, "ether0")
	if err != nil {
		b.Fatal(err)
	}
	yellow, err := c.AddMachine("yellow", nil, "ether0")
	if err != nil {
		b.Fatal(err)
	}
	red.AddAccount(benchUID, "user")
	yellow.AddAccount(benchUID, "user")
	b.Cleanup(c.Shutdown)
	srv, err := red.Spawn(kernel.SpawnSpec{UID: benchUID, Name: "echo", Program: func(p *kernel.Process) int {
		lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			return 1
		}
		if err := p.BindPort(lfd, 4000); err != nil {
			return 1
		}
		if err := p.Listen(lfd, 1); err != nil {
			return 1
		}
		cfd, _, err := p.Accept(lfd)
		if err != nil {
			return 1
		}
		for {
			data, err := p.Recv(cfd, 4096)
			if err != nil {
				return 0
			}
			if _, err := p.Send(cfd, data); err != nil {
				return 0
			}
		}
	}})
	if err != nil {
		b.Fatal(err)
	}
	_ = srv
	ctl, err := yellow.SpawnDetached(benchUID, "ctl")
	if err != nil {
		b.Fatal(err)
	}
	host, _, err := c.ResolveFrom(yellow, "red")
	if err != nil {
		b.Fatal(err)
	}
	var fd int
	deadline := time.Now().Add(5 * time.Second)
	for {
		fd, err = ctl.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			b.Fatal(err)
		}
		if err = ctl.Connect(fd, meter.InetName(host, 4000)); err == nil {
			break
		}
		_ = ctl.Close(fd)
		if time.Now().After(deadline) {
			b.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Send(fd, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := ctl.Recv(fd, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// A1: the Appendix A message codec.
func BenchmarkMeterEncode(b *testing.B) {
	msg := &meter.Msg{
		Header: meter.Header{Machine: 5, CPUTime: 100, ProcTime: 10},
		Body:   &meter.Send{PID: 1, PC: 2, Sock: 3, MsgLength: 512, DestNameLen: 16, DestName: meter.InetName(9, 9)},
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = msg.AppendEncode(buf[:0])
	}
}

func BenchmarkMeterDecode(b *testing.B) {
	msg := &meter.Msg{
		Header: meter.Header{Machine: 5, CPUTime: 100, ProcTime: 10},
		Body:   &meter.Send{PID: 1, PC: 2, Sock: 3, MsgLength: 512, DestNameLen: 16, DestName: meter.InetName(9, 9)},
	}
	enc := msg.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := meter.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// A2: filter selection throughput, with the Figure 3.3/3.4 style
// rules.
func BenchmarkFilterEngine(b *testing.B) {
	for _, rules := range []struct {
		name string
		text string
	}{
		{"keep-all", ""},
		{"simple", "machine=1, cpuTime<10000\n"},
		{"selective", "machine=0, type=1, sock=4\ntype=8, sockName=peerName\nmachine=#*, type=1, pid=#*, msgLength>=512\n"},
	} {
		b.Run(rules.name, func(b *testing.B) {
			eng, err := filter.NewEngine([]byte(filter.StandardDescriptions), []byte(rules.text))
			if err != nil {
				b.Fatal(err)
			}
			var stream []byte
			for i := 0; i < 16; i++ {
				msg := &meter.Msg{
					Header: meter.Header{Machine: uint16(i % 3), CPUTime: uint32(i * 100)},
					Body:   &meter.Send{PID: uint32(i), Sock: 4, MsgLength: uint32(i * 64)},
				}
				stream = msg.AppendEncode(stream)
			}
			var batch filter.Batch
			b.SetBytes(int64(len(stream)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.Reset()
				if rest, err := eng.ProcessBatch(stream, &batch); err != nil || len(rest) != 0 {
					b.Fatal(err)
				}
			}
		})
	}
}

// A2 baseline: the same selection through the per-record callback path
// (ProcessEach), which Process wraps. The callback path reuses the
// pooled record and a shared line buffer, so it runs allocation-free —
// only Process's materialized []string costs heap.
func BenchmarkFilterEngineProcess(b *testing.B) {
	eng, err := filter.NewEngine([]byte(filter.StandardDescriptions), []byte("machine=1, cpuTime<10000\n"))
	if err != nil {
		b.Fatal(err)
	}
	var stream []byte
	for i := 0; i < 16; i++ {
		msg := &meter.Msg{
			Header: meter.Header{Machine: uint16(i % 3), CPUTime: uint32(i * 100)},
			Body:   &meter.Send{PID: uint32(i), Sock: 4, MsgLength: uint32(i * 64)},
		}
		stream = msg.AppendEncode(stream)
	}
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	var lineBytes int
	for i := 0; i < b.N; i++ {
		rest, err := eng.ProcessEach(stream, func(_ *filter.Record, line []byte) {
			lineBytes += len(line)
		})
		if err != nil || len(rest) != 0 {
			b.Fatal(err)
		}
	}
	_ = lineBytes
}

// C4: cost of deducing the global event ordering from a trace.
func BenchmarkOrdering(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("events=%d", n), func(b *testing.B) {
			events := syntheticTrace(n)
			matches := analysis.MatchMessages(events, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o, err := analysis.HappenedBefore(events, matches)
				if err != nil {
					b.Fatal(err)
				}
				_ = o.OrderedFraction()
			}
		})
	}
}

// syntheticTrace builds a ring of 4 processes passing datagrams.
func syntheticTrace(n int) []trace.Event {
	var events []trace.Event
	add := func(typ meter.Type, machine, pid int, fields map[string]uint64, names map[string]meter.Name) {
		e := trace.Event{
			Seq: len(events), Type: typ, Event: typ.String(), Machine: machine,
			CPUTime: int64(len(events)), Fields: map[string]uint64{"pid": uint64(pid)}, Names: map[string]meter.Name{},
		}
		for k, v := range fields {
			e.Fields[k] = v
		}
		for k, v := range names {
			e.Names[k] = v
		}
		events = append(events, e)
	}
	const procs = 4
	for len(events)+2 <= n {
		i := (len(events) / 2) % procs
		from, to := i+1, (i+1)%procs+1
		add(meter.EvSend, from, from*10, map[string]uint64{"sock": 3, "msgLength": 32},
			map[string]meter.Name{"destName": meter.InetName(uint32(to), 5000)})
		add(meter.EvRecv, to, to*10, map[string]uint64{"sock": 9, "msgLength": 32},
			map[string]meter.Name{"sourceName": meter.InetName(uint32(from), 1024)})
	}
	return events
}

// C5: scaling of the metered TSP computation with worker count — the
// quantified form of the parallelism measurement the Lai & Miller
// study relied on. Each iteration runs one complete distributed solve
// (cluster bring-up included); the interesting outputs are the
// trace-measured virtual makespan and speedup, reported as metrics
// (the search's CPU time is charged to the simulated machines'
// clocks, so wall-clock ns/op mostly measures harness overhead).
func BenchmarkTSPWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var makespan, speedup float64
			for i := 0; i < b.N; i++ {
				par, err := runTSPOnce(10, workers, 3)
				if err != nil {
					b.Fatal(err)
				}
				makespan = float64(par.MakespanMillis)
				speedup = par.Speedup
			}
			b.ReportMetric(makespan, "virtual-makespan-ms")
			b.ReportMetric(speedup, "speedup")
		})
	}
}

func runTSPOnce(cities, workers int, seed int64) (*analysis.Parallelism, error) {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		return nil, err
	}
	defer sys.Shutdown()
	if err := workloads.RegisterTSP(sys); err != nil {
		return nil, err
	}
	ctl, err := sys.NewController("yellow", io.Discard)
	if err != nil {
		return nil, err
	}
	machines := []string{"green", "blue", "yellow", "red"}
	cmds := []string{
		"filter f blue",
		"newjob t",
		"setflags t send receive termproc",
		fmt.Sprintf("addprocess t red tspmaster %d %d %d", cities, workers, seed),
	}
	for w := 0; w < workers; w++ {
		cmds = append(cmds, fmt.Sprintf("addprocess t %s tspworker red", machines[w%len(machines)]))
	}
	cmds = append(cmds, "startjob t")
	for _, cmd := range cmds {
		ctl.Exec(cmd)
	}
	if err := core.WaitJob(ctl, "t", time.Minute); err != nil {
		return nil, err
	}
	events, err := sys.WaitTrace("blue", "f", 10*time.Second, core.TermCount(workers+1))
	if err != nil {
		return nil, err
	}
	return analysis.MeasureParallelism(events), nil
}

// Ablation: filter placement (§3.4 allows the filter on a machine
// disjoint from the computation; "In situations where filter
// operations contribute significantly to the system load ... this
// flexibility may be useful"). Each iteration runs one metered
// ping-pong job with the filter either co-located with the server or
// on an otherwise idle machine.
func BenchmarkFilterPlacement(b *testing.B) {
	for _, placement := range []struct {
		name    string
		machine string
	}{
		{"colocated", "green"}, // same machine as the ponger
		{"disjoint", "blue"},   // idle machine
	} {
		b.Run(placement.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := runPingPongOnce(placement.machine); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func runPingPongOnce(filterMachine string) error {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		return err
	}
	defer sys.Shutdown()
	if err := workloads.RegisterPingPong(sys); err != nil {
		return err
	}
	ctl, err := sys.NewController("yellow", io.Discard)
	if err != nil {
		return err
	}
	for _, cmd := range []string{
		"filter f " + filterMachine,
		"newjob pp",
		"setflags pp all",
		"addprocess pp green ponger 10",
		"addprocess pp red pinger green 10",
		"startjob pp",
	} {
		ctl.Exec(cmd)
	}
	return core.WaitJob(ctl, "pp", time.Minute)
}

// Per-analysis benchmarks: the stage-3 routines over a 400-event
// trace.
func BenchmarkAnalyses(b *testing.B) {
	events := syntheticTrace(400)
	b.Run("comm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.Comm(events)
		}
	})
	b.Run("match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.MatchMessages(events, nil)
		}
	})
	b.Run("parallelism", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.MeasureParallelism(events)
		}
	})
	b.Run("waiting", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.WaitingProfile(events)
		}
	})
	b.Run("callsites", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.CallSites(events)
		}
	})
	b.Run("structure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.Structure(events, nil)
		}
	})
	b.Run("timeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.Timeline(events, 72)
		}
	})
}

// S1: event-store ingest throughput — the cost a filter pays to write
// a record through the store (framing, CRC, index update, rotation)
// rather than appending a line to the flat log.
func BenchmarkStoreIngest(b *testing.B) {
	events := syntheticTrace(64)
	lines := make([]string, len(events))
	var bytes int64
	for i := range events {
		lines[i] = events[i].Format()
		bytes += int64(len(lines[i]))
	}
	st, err := store.Open(store.NewMemBackend(), store.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(bytes / int64(len(lines)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &events[i%len(events)]
		pid := e.Fields["pid"]
		m := store.Meta{
			Machine: uint16(e.Machine), Time: uint32(e.CPUTime),
			Type: uint32(e.Type), PID: uint32(pid),
		}
		if err := st.Append(m, lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}

// S1 batched: the same ingest through AppendBatch, 16 records per call
// — the granularity the filter's per-Recv flush produces. ns/op and
// allocs/op are per batch, so divide by 16 to compare with
// BenchmarkStoreIngest.
func BenchmarkStoreIngestBatch(b *testing.B) {
	events := syntheticTrace(64)
	var bytes int64
	recs := make([]store.BatchRec, len(events))
	for i := range events {
		e := &events[i]
		recs[i] = store.BatchRec{
			Meta: store.Meta{
				Machine: uint16(e.Machine), Time: uint32(e.CPUTime),
				Type: uint32(e.Type), PID: uint32(e.Fields["pid"]),
			},
			Line: []byte(e.Format()),
		}
		bytes += int64(len(recs[i].Line))
	}
	st, err := store.Open(store.NewMemBackend(), store.Config{})
	if err != nil {
		b.Fatal(err)
	}
	const batchSize = 16
	b.SetBytes(bytes / int64(len(recs)) * batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := i * batchSize % len(recs)
		if err := st.AppendBatch(recs[off : off+batchSize]); err != nil {
			b.Fatal(err)
		}
	}
}

// S1 compressed: the batched ingest through the v2 block-compressed
// writer — delta/varint metadata, front-coded lines, streaming DEFLATE
// at flush time. ns/op is per 16-record batch, comparable directly
// with BenchmarkStoreIngestBatch; compression-x is the v1-equivalent
// bytes over bytes actually on disk after sealing.
func BenchmarkStoreIngestCompressed(b *testing.B) {
	events := syntheticTrace(64)
	var bytes int64
	recs := make([]store.BatchRec, len(events))
	for i := range events {
		e := &events[i]
		recs[i] = store.BatchRec{
			Meta: store.Meta{
				Machine: uint16(e.Machine), Time: uint32(e.CPUTime),
				Type: uint32(e.Type), PID: uint32(e.Fields["pid"]),
			},
			Line: []byte(e.Format()),
		}
		bytes += int64(len(recs[i].Line))
	}
	st, err := store.Open(store.NewMemBackend(), store.Config{Compress: store.CompressBlocks})
	if err != nil {
		b.Fatal(err)
	}
	const batchSize = 16
	b.SetBytes(bytes / int64(len(recs)) * batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := i * batchSize % len(recs)
		if err := st.AppendBatch(recs[off : off+batchSize]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	var raw, disk int
	for _, info := range st.Segments() {
		raw += info.Bytes
		disk += info.DiskBytes
	}
	if disk > 0 {
		b.ReportMetric(float64(raw)/float64(disk), "compression-x")
		b.ReportMetric(float64(disk), "bytes_on_disk")
	}
}

// S2: segment pruning. A selective query (tight time range plus a
// machine predicate) over a multi-segment store should scan only the
// segments whose footer indexes intersect the predicate envelope;
// compare against the same query with pruning disabled, which parses
// every frame in the store. The pruned/full-scan ratio is the store's
// answer to shipping the whole log on every question.
func BenchmarkQuerySegmentPruning(b *testing.B) {
	// Small segments so the fixed event count spreads over many of them.
	be := store.NewMemBackend()
	st, err := store.Open(be, store.Config{SegmentCap: 2048})
	if err != nil {
		b.Fatal(err)
	}
	events := syntheticTrace(4000)
	for i := range events {
		e := &events[i]
		m := store.Meta{
			Machine: uint16(e.Machine), Time: uint32(e.CPUTime),
			Type: uint32(e.Type), PID: uint32(e.Fields["pid"]),
		}
		if err := st.Append(m, e.Format()); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	rd, err := store.OpenReader(be)
	if err != nil {
		b.Fatal(err)
	}
	const rules = "machine=2,cpuTime>=1000,cpuTime<1200,type=1"
	for _, mode := range []struct {
		name    string
		noPrune bool
	}{{"pruned", false}, {"full-scan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var st query.Stats
			for i := 0; i < b.N; i++ {
				q, err := query.Compile(rules)
				if err != nil {
					b.Fatal(err)
				}
				q.NoPrune = mode.noPrune
				res, err := query.Run(rd, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Events) == 0 {
					b.Fatal("selective query matched nothing")
				}
				st = res.Stats
			}
			b.ReportMetric(float64(st.Segments), "segments")
			b.ReportMetric(float64(st.Scanned), "segments-scanned")
		})
	}
}

// S2 block: zone-map pruning inside compressed segments. The same
// selective query as BenchmarkQuerySegmentPruning runs against the
// same 4000 events stored two ways: many small uncompressed segments
// (pruned per segment by footer index — the old granularity) and a few
// large compressed segments with small blocks (pruned per block by
// zone map). Block pruning must match segment pruning's cost while
// reading several-x fewer bytes from disk.
func BenchmarkQueryBlockPruned(b *testing.B) {
	events := syntheticTrace(4000)
	build := func(cfg store.Config) *store.Reader {
		be := store.NewMemBackend()
		st, err := store.Open(be, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for i := range events {
			e := &events[i]
			m := store.Meta{
				Machine: uint16(e.Machine), Time: uint32(e.CPUTime),
				Type: uint32(e.Type), PID: uint32(e.Fields["pid"]),
			}
			if err := st.Append(m, e.Format()); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
		rd, err := store.OpenReader(be)
		if err != nil {
			b.Fatal(err)
		}
		return rd
	}
	const rules = "machine=2,cpuTime>=1000,cpuTime<1200,type=1"
	for _, mode := range []struct {
		name string
		rd   *store.Reader
	}{
		{"segment-pruned", build(store.Config{SegmentCap: 2048})},
		{"block-pruned", build(store.Config{
			SegmentCap: 16384, BlockTarget: 2048, Compress: store.CompressBlocks,
		})},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var st query.Stats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q, err := query.Compile(rules)
				if err != nil {
					b.Fatal(err)
				}
				res, err := query.Run(mode.rd, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Events) == 0 {
					b.Fatal("selective query matched nothing")
				}
				st = res.Stats
			}
			b.ReportMetric(float64(st.Scanned), "segments-scanned")
			b.ReportMetric(float64(st.BlocksPruned), "blocks-pruned")
		})
	}
}

// A2 parallel: ingest throughput of the filter's pipeline at 1/2/4/8
// workers. Each op is one 16-message chunk through decode → select →
// format (the same unit as BenchmarkFilterEngine), spread over
// 2×workers sources; the log sink is a no-op so the measurement is the
// execution layer, not a sink bottleneck. Scaling beyond 1 worker
// requires a multi-core host — on one core the pipeline only adds its
// (bounded) queueing overhead.
func BenchmarkFilterEngineParallel(b *testing.B) {
	proto, err := filter.NewEngine([]byte(filter.StandardDescriptions), []byte("machine=1, cpuTime<10000\n"))
	if err != nil {
		b.Fatal(err)
	}
	var stream []byte
	for i := 0; i < 16; i++ {
		msg := &meter.Msg{
			Header: meter.Header{Machine: uint16(i % 3), CPUTime: uint32(i * 100)},
			Body:   &meter.Send{PID: uint32(i), Sock: 4, MsgLength: uint32(i * 64)},
		}
		stream = msg.AppendEncode(stream)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pipe := filter.NewPipeline(proto, filter.PipelineConfig{Workers: workers, QueueDepth: 64}, filter.Sinks{
				Log: func([]byte) error { return nil },
			}, nil)
			srcs := make([]*filter.Source, 2*workers)
			for i := range srcs {
				srcs[i] = pipe.NewSource()
			}
			b.SetBytes(int64(len(stream)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !srcs[i%len(srcs)].Feed(stream) {
					b.Fatal("pipeline refused feed")
				}
			}
			pipe.Close() // drain inside the timed region
			b.StopTimer()
			if st := pipe.Stats(); st.Received != int64(16*b.N) || st.StreamErrors != 0 {
				b.Fatalf("pipeline processed %d records of %d: %+v", st.Received, 16*b.N, st)
			}
		})
	}
}

// S2 parallel: full-scan query throughput at 1/2/4/8 workers over the
// BenchmarkQuerySegmentPruning store. The match-all full scan is the
// scan-dominated case parallel segment execution targets; output is
// byte-identical across worker counts (TestParallelRunEquivalence), so
// only wall-clock moves.
func BenchmarkQueryParallel(b *testing.B) {
	be := store.NewMemBackend()
	st, err := store.Open(be, store.Config{SegmentCap: 2048})
	if err != nil {
		b.Fatal(err)
	}
	events := syntheticTrace(4000)
	for i := range events {
		e := &events[i]
		m := store.Meta{
			Machine: uint16(e.Machine), Time: uint32(e.CPUTime),
			Type: uint32(e.Type), PID: uint32(e.Fields["pid"]),
		}
		if err := st.Append(m, e.Format()); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	rd, err := store.OpenReader(be)
	if err != nil {
		b.Fatal(err)
	}
	q, err := query.Compile("")
	if err != nil {
		b.Fatal(err)
	}
	q.NoPrune = true
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			q.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := query.Run(rd, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Events) != len(events) {
					b.Fatalf("scan returned %d events, want %d", len(res.Events), len(events))
				}
			}
		})
	}
}

// O2: live streaming analysis overhead. The §5 operators are meant to
// be cheap enough to leave on, so the gate compares the full filter
// ingest path (decode → select → format → log sink) with the live
// collector tapped in against the identical pipeline without taps.
// The stream alternates named sends and matching receives across two
// machines, so the tap path exercises its heaviest operator — the
// online matcher's datagram pairing — not just counter bumps.
// scripts/bench_filter.sh gates live-on at 1.05x live-off.
func BenchmarkFilterIngestLive(b *testing.B) {
	proto, err := filter.NewEngine([]byte(filter.StandardDescriptions), []byte(""))
	if err != nil {
		b.Fatal(err)
	}
	var stream []byte
	for i := 0; i < 8; i++ {
		send := &meter.Msg{
			Header: meter.Header{Machine: 0, CPUTime: uint32(100 + i), ProcTime: uint32(i)},
			Body: &meter.Send{PID: uint32(10 + i%2), Sock: 3, MsgLength: 64,
				DestNameLen: 16, DestName: meter.InetName(1, 5000)},
		}
		stream = send.AppendEncode(stream)
		recv := &meter.Msg{
			Header: meter.Header{Machine: 1, CPUTime: uint32(100 + i), ProcTime: uint32(i)},
			Body: &meter.Recv{PID: uint32(20 + i%2), Sock: 7, MsgLength: 64,
				SourceNameLen: 16, SourceName: meter.InetName(0, 1024)},
		}
		stream = recv.AppendEncode(stream)
	}
	for _, mode := range []struct {
		name string
		live bool
	}{{"live=off", false}, {"live=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			reg := obs.NewRegistry()
			cfg := filter.PipelineConfig{Workers: 2, QueueDepth: 64, Obs: reg}
			if mode.live {
				cfg.Taps = live.NewCollector(live.Config{Obs: reg})
			}
			pipe := filter.NewPipeline(proto, cfg, filter.Sinks{
				Log: func([]byte) error { return nil },
			}, nil)
			srcs := make([]*filter.Source, 4)
			for i := range srcs {
				srcs[i] = pipe.NewSource()
			}
			b.SetBytes(int64(len(stream)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !srcs[i%len(srcs)].Feed(stream) {
					b.Fatal("pipeline refused feed")
				}
			}
			pipe.Close() // drain inside the timed region
			b.StopTimer()
			if st := pipe.Stats(); st.Received != int64(16*b.N) || st.StreamErrors != 0 {
				b.Fatalf("pipeline processed %d records of %d: %+v", st.Received, 16*b.N, st)
			}
		})
	}
}

// BenchmarkTraceParse measures log parsing (stage 2 → stage 3
// hand-off).
func BenchmarkTraceParse(b *testing.B) {
	events := syntheticTrace(400)
	var log []byte
	for i := range events {
		log = append(log, events[i].Format()...)
		log = append(log, '\n')
	}
	b.SetBytes(int64(len(log)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ParseLog(log); err != nil {
			b.Fatal(err)
		}
	}
}
