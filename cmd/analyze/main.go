// analyze runs the measurement system's analysis routines over a
// trace log and prints a report: communication statistics, the
// computation's structure, the parallelism achieved, per-process
// blocked time, and the deduced event ordering (paper sections 3.3 and
// 4.1).
//
//	analyze [-binary] [-json] [-snapshot snap.json] [file]
//
// With no file argument it reads standard input. -json emits the
// communication statistics and parallelism profile as JSON instead of
// the text report. -snapshot cross-checks the live streaming operators
// against the offline analysis: it loads an obs snapshot (the filter's
// shutdown export, or anything dpstat reads), decodes its
// live.comm/live.par sections, and reports any disagreement with the
// offline analysis of the trace — on a completed trace the two must
// agree exactly, except for the online matcher's documented windowing.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dpm/internal/analysis"
	"dpm/internal/analysis/live"
	"dpm/internal/cli"
	"dpm/internal/obs"
	"dpm/internal/trace"
)

// jsonProc is one process row of the -json report.
type jsonProc struct {
	Machine int `json:"machine"`
	PID     int `json:"pid"`
	analysis.ProcComm
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Events      int                   `json:"events"`
	Sends       int                   `json:"sends"`
	Recvs       int                   `json:"recvs"`
	BytesSent   int64                 `json:"bytes_sent"`
	BytesRecvd  int64                 `json:"bytes_recvd"`
	SizeHist    map[int]int           `json:"size_hist,omitempty"`
	Procs       []jsonProc            `json:"procs"`
	Parallelism *analysis.Parallelism `json:"parallelism"`
	Consistency []string              `json:"consistency,omitempty"`
}

func main() {
	binary := flag.Bool("binary", false, "input is a raw meter byte stream")
	asJSON := flag.Bool("json", false, "emit communication and parallelism results as JSON")
	snapPath := flag.String("snapshot", "", "obs snapshot to cross-check live sections against the trace")
	timeline := flag.Bool("timeline", false, "append a per-process event timeline")
	validate := flag.Bool("validate", false, "append trace consistency diagnostics")
	dot := flag.Bool("dot", false, "print only the structure graph in Graphviz dot form")
	width := flag.Int("width", 72, "timeline width in columns")
	flag.Parse()

	var data []byte
	var err error
	switch flag.NArg() {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(flag.Arg(0))
	default:
		log.Fatal("usage: analyze [-binary] [-json] [-snapshot snap.json] [file]")
	}
	if err != nil {
		log.Fatal(err)
	}
	var events []trace.Event
	if *binary {
		events, err = trace.ParseBinary(data)
	} else {
		events, err = trace.ParseLog(data)
	}
	if err != nil {
		log.Fatal(err)
	}

	var findings []string
	if *snapPath != "" {
		snap, lerr := loadSnapshot(*snapPath)
		if lerr != nil {
			log.Fatalf("analyze: %s: %v", *snapPath, lerr)
		}
		findings = liveConsistency(snap, events)
	}

	if *dot {
		fmt.Print(analysis.Structure(events, nil).Dot())
		return
	}
	if *asJSON {
		if err := cli.WriteJSON(os.Stdout, buildJSON(events, findings)); err != nil {
			log.Fatal(err)
		}
		exitOnFindings(findings)
		return
	}
	report, err := analysis.Report(events, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
	if *timeline {
		fmt.Printf("\n%s", analysis.Timeline(events, *width))
	}
	if *validate {
		diags := analysis.Validate(events, nil)
		fmt.Printf("\nconsistency check: %d finding(s)\n", len(diags))
		for _, d := range diags {
			fmt.Printf("  %s\n", d)
		}
	}
	if *snapPath != "" {
		fmt.Printf("\nlive/offline consistency: %d finding(s)\n", len(findings))
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
		exitOnFindings(findings)
	}
}

func exitOnFindings(findings []string) {
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func buildJSON(events []trace.Event, findings []string) *jsonReport {
	st := analysis.Comm(events)
	out := &jsonReport{
		Events:      st.Events,
		Sends:       st.Sends,
		Recvs:       st.Recvs,
		BytesSent:   st.BytesSent,
		BytesRecvd:  st.BytesRecvd,
		SizeHist:    st.SizeHist,
		Parallelism: analysis.MeasureParallelism(events),
		Consistency: findings,
	}
	for k, pc := range st.PerProcess {
		out.Procs = append(out.Procs, jsonProc{Machine: k.Machine, PID: k.PID, ProcComm: *pc})
	}
	sortProcs(out.Procs)
	return out
}

func sortProcs(procs []jsonProc) {
	for i := 1; i < len(procs); i++ {
		for j := i; j > 0; j-- {
			a, b := &procs[j-1], &procs[j]
			if a.Machine < b.Machine || (a.Machine == b.Machine && a.PID <= b.PID) {
				break
			}
			*a, *b = *b, *a
		}
	}
}

// loadSnapshot reads an obs snapshot in either export format: the JSON
// the filter writes at shutdown, or the binary wire form.
func loadSnapshot(path string) (*obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if s, jerr := obs.ParseSnapshotJSON(data); jerr == nil {
		return s, nil
	}
	return obs.ParseSnapshot(data)
}

// liveConsistency compares a snapshot's live-analysis sections against
// the offline analysis of the trace. The trace must be the same
// filter's log the snapshot's collector observed; on a completed
// stream every figure the two compute in common must agree.
func liveConsistency(snap *obs.Snapshot, events []trace.Event) []string {
	var finds []string
	badf := func(format string, args ...any) { finds = append(finds, fmt.Sprintf(format, args...)) }

	off := analysis.Comm(events)
	if sec := snap.Section(live.SectionComm); sec == nil {
		badf("snapshot has no %s section", live.SectionComm)
	} else if sec.Version != live.SectionVersion {
		badf("%s is v%d, this tool reads v%d", live.SectionComm, sec.Version, live.SectionVersion)
	} else if lc, err := live.DecodeComm(sec.Data); err != nil {
		badf("%s: %v", live.SectionComm, err)
	} else {
		if lc.Events != int64(off.Events) {
			badf("events: live %d, offline %d", lc.Events, off.Events)
		}
		if lc.Sends != int64(off.Sends) || lc.BytesSent != off.BytesSent {
			badf("sends: live %d/%dB, offline %d/%dB", lc.Sends, lc.BytesSent, off.Sends, off.BytesSent)
		}
		if lc.Recvs != int64(off.Recvs) || lc.BytesRecvd != off.BytesRecvd {
			badf("recvs: live %d/%dB, offline %d/%dB", lc.Recvs, lc.BytesRecvd, off.Recvs, off.BytesRecvd)
		}
		for b, n := range off.SizeHist {
			if lc.Sizes[b] != int64(n) {
				badf("size bucket %d: live %d, offline %d", b, lc.Sizes[b], n)
			}
		}
		for b, n := range lc.Sizes {
			if int64(off.SizeHist[b]) != n {
				badf("size bucket %d: live %d, offline %d", b, n, off.SizeHist[b])
			}
		}
		if len(lc.Procs) != len(off.PerProcess) {
			badf("procs: live %d, offline %d", len(lc.Procs), len(off.PerProcess))
		}
		for i := range lc.Procs {
			p := &lc.Procs[i]
			o := off.PerProcess[analysis.ProcKey{Machine: int(p.Machine), PID: int(p.PID)}]
			if o == nil {
				badf("proc m%d/p%d: live only", p.Machine, p.PID)
				continue
			}
			if p.Sends != int64(o.Sends) || p.Recvs != int64(o.Recvs) || p.RecvCalls != int64(o.RecvCalls) ||
				p.Sockets != int64(o.Sockets) || p.Forks != int64(o.Forks) ||
				p.BytesSent != o.BytesSent || p.BytesRecvd != o.BytesRecvd {
				badf("proc m%d/p%d: live %+v, offline %+v", p.Machine, p.PID, *p, *o)
			}
		}
	}

	offPar := analysis.MeasureParallelism(events)
	if sec := snap.Section(live.SectionPar); sec == nil {
		badf("snapshot has no %s section", live.SectionPar)
	} else if sec.Version != live.SectionVersion {
		badf("%s is v%d, this tool reads v%d", live.SectionPar, sec.Version, live.SectionVersion)
	} else if lp, err := live.DecodePar(sec.Data); err != nil {
		badf("%s: %v", live.SectionPar, err)
	} else {
		curve := lp.Curve()
		if curve.Processes != offPar.Processes {
			badf("parallelism processes: live %d, offline %d", curve.Processes, offPar.Processes)
		}
		if curve.TotalCPUMillis != offPar.TotalCPUMillis {
			badf("total cpu: live %dms, offline %dms", curve.TotalCPUMillis, offPar.TotalCPUMillis)
		}
		if curve.MakespanMillis != offPar.MakespanMillis {
			badf("makespan: live %dms, offline %dms", curve.MakespanMillis, offPar.MakespanMillis)
		}
		for k, v := range offPar.Histogram {
			if curve.Histogram[k] != v {
				badf("concurrency %dx: live %dms, offline %dms", k, curve.Histogram[k], v)
			}
		}
		for k, v := range curve.Histogram {
			if offPar.Histogram[k] != v {
				badf("concurrency %dx: live %dms, offline %dms", k, v, offPar.Histogram[k])
			}
		}
	}
	// live.match is intentionally not compared figure-for-figure: the
	// online matcher's bounded reordering window makes its tallies
	// differ from offline MatchMessages on incomplete or lossy traces.
	return finds
}
