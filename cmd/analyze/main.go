// analyze runs the measurement system's analysis routines over a
// trace log and prints a report: communication statistics, the
// computation's structure, the parallelism achieved, per-process
// blocked time, and the deduced event ordering (paper sections 3.3 and
// 4.1).
//
//	analyze [-binary] [file]
//
// With no file argument it reads standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dpm/internal/analysis"
	"dpm/internal/trace"
)

func main() {
	binary := flag.Bool("binary", false, "input is a raw meter byte stream")
	timeline := flag.Bool("timeline", false, "append a per-process event timeline")
	validate := flag.Bool("validate", false, "append trace consistency diagnostics")
	dot := flag.Bool("dot", false, "print only the structure graph in Graphviz dot form")
	width := flag.Int("width", 72, "timeline width in columns")
	flag.Parse()

	var data []byte
	var err error
	switch flag.NArg() {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(flag.Arg(0))
	default:
		log.Fatal("usage: analyze [-binary] [file]")
	}
	if err != nil {
		log.Fatal(err)
	}
	var events []trace.Event
	if *binary {
		events, err = trace.ParseBinary(data)
	} else {
		events, err = trace.ParseLog(data)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *dot {
		fmt.Print(analysis.Structure(events, nil).Dot())
		return
	}
	report, err := analysis.Report(events, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
	if *timeline {
		fmt.Printf("\n%s", analysis.Timeline(events, *width))
	}
	if *validate {
		diags := analysis.Validate(events, nil)
		fmt.Printf("\nconsistency check: %d finding(s)\n", len(diags))
		for _, d := range diags {
			fmt.Printf("  %s\n", d)
		}
	}
}
