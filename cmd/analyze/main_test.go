package main

import (
	"encoding/json"
	"strings"
	"testing"

	"dpm/internal/analysis/live"
	"dpm/internal/filter"
	"dpm/internal/meter"
	"dpm/internal/obs"
	"dpm/internal/trace"
)

// buildTrace runs a small three-machine stream through a tapped
// pipeline, returning the live snapshot and the same events parsed
// offline — the two inputs of the consistency check.
func buildTrace(t *testing.T) (*obs.Snapshot, []trace.Event) {
	t.Helper()
	var stream []byte
	dest := meter.InetName(1, 99)
	for i := 0; i < 30; i++ {
		m := meter.Msg{
			Header: meter.Header{Machine: uint16(i % 3), CPUTime: uint32(10 + i*7), ProcTime: uint32(i)},
			Body:   &meter.Send{PID: uint32(100 + i%3), Sock: 3, MsgLength: uint32(32 + i), DestNameLen: 16, DestName: dest},
		}
		stream = m.AppendEncode(stream)
	}
	proto, err := filter.NewEngine([]byte(filter.StandardDescriptions), []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coll := live.NewCollector(live.Config{Obs: reg})
	pipe := filter.NewPipeline(proto, filter.PipelineConfig{Workers: 1, Taps: coll}, filter.Sinks{}, nil)
	if !pipe.NewSource().Feed(stream) {
		t.Fatal("feed refused")
	}
	pipe.Close()
	events, err := trace.ParseBinary(stream)
	if err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot(), events
}

// TestLiveConsistencyAgrees checks the -snapshot mode on the agreeing
// case: a snapshot captured from the very stream being analyzed has no
// findings.
func TestLiveConsistencyAgrees(t *testing.T) {
	snap, events := buildTrace(t)
	if finds := liveConsistency(snap, events); len(finds) != 0 {
		t.Fatalf("consistency findings on matching inputs: %v", finds)
	}
}

// TestLiveConsistencyDetectsDrift tampers with the trace: the check
// must report the disagreement rather than pass vacuously.
func TestLiveConsistencyDetectsDrift(t *testing.T) {
	snap, events := buildTrace(t)
	finds := liveConsistency(snap, events[:len(events)-3])
	if len(finds) == 0 {
		t.Fatal("no findings on a truncated trace")
	}
	joined := strings.Join(finds, "\n")
	if !strings.Contains(joined, "events: live") {
		t.Fatalf("findings lack the event-count disagreement: %v", finds)
	}

	// A snapshot with no live sections reports both as missing.
	finds = liveConsistency(&obs.Snapshot{}, events)
	if len(finds) != 2 {
		t.Fatalf("sectionless snapshot: %v", finds)
	}
	// A corrupt payload is a finding, not a crash.
	bad := &obs.Snapshot{Sections: []obs.Section{
		{Name: live.SectionComm, Version: live.SectionVersion, Data: []byte{0xff}},
		{Name: live.SectionPar, Version: live.SectionVersion + 7, Data: []byte{0}},
	}}
	finds = liveConsistency(bad, events)
	if len(finds) != 2 || !strings.Contains(strings.Join(finds, "\n"), "corrupt") {
		t.Fatalf("corrupt snapshot: %v", finds)
	}
}

// TestBuildJSON checks the -json shape round-trips and carries the
// per-process rows sorted.
func TestBuildJSON(t *testing.T) {
	_, events := buildTrace(t)
	rep := buildJSON(events, nil)
	if rep.Events != 30 || rep.Sends != 30 || len(rep.Procs) != 3 {
		t.Fatalf("report: %+v", rep)
	}
	for i := 1; i < len(rep.Procs); i++ {
		if rep.Procs[i-1].Machine > rep.Procs[i].Machine {
			t.Fatalf("procs unsorted: %+v", rep.Procs)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back jsonReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Parallelism == nil || back.Parallelism.Processes != 3 {
		t.Fatalf("parallelism lost in JSON: %+v", back.Parallelism)
	}
}
