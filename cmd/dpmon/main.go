// dpmon is the interactive control process of the distributed
// programs monitor: the command interpreter of the paper's section
// 4.3, running over a simulated four-machine 4.2BSD cluster.
//
// The cluster (machines red, green, blue, yellow; a meterdaemon on
// each; the standard filter files in place) is created at startup,
// with example workloads installed as executables on every machine:
//
//	/bin/pinger /bin/ponger   stream client/server (args: machine [rounds])
//	/bin/echoserver /bin/echoclient   datagram echo pair
//	/bin/tspmaster /bin/tspworker     distributed traveling salesman
//
// Type "help" at the <Control> prompt for the command menu; Appendix B
// of the paper is a worked session.
//
// Live aggregate mode: -watch takes a controller query command (an
// aggregate one, usually) and re-runs it -rounds times every
// -interval milliseconds after the -script has run — an auto-refreshed
// cluster-wide aggregate view:
//
//	dpmon -script setup.dpm -watch 'query all live agg count by machine window 1s' -rounds 5 -interval 500
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"dpm/internal/core"
	"dpm/internal/workloads"
)

func main() {
	script := flag.String("script", "", "run commands from this file instead of standard input")
	watch := flag.String("watch", "", "live mode: a controller command to re-run, then exit")
	rounds := flag.Int("rounds", 10, "with -watch: refresh count")
	interval := flag.Int("interval", 1000, "with -watch: refresh interval in milliseconds")
	flag.Parse()
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()
	for _, reg := range []func(*core.System) error{
		workloads.RegisterPingPong, workloads.RegisterEcho,
		workloads.RegisterTSP, workloads.RegisterStorm,
		workloads.RegisterForkFan, workloads.RegisterPipeline,
	} {
		if err := reg(sys); err != nil {
			log.Fatal(err)
		}
	}
	ctl, err := sys.NewController("yellow", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	var in io.Reader = os.Stdin
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			log.Fatal(err)
		}
		in = strings.NewReader(string(data))
	}
	fmt.Println("dpm: distributed programs monitor for (simulated) Berkeley UNIX 4.2BSD")
	fmt.Println("machines: red green blue yellow — controller on yellow; type help for commands")
	if *watch != "" {
		if *script != "" {
			ctl.Run(in)
		}
		ctl.Exec(fmt.Sprintf("watch %d %d %s", *rounds, *interval, *watch))
		return
	}
	ctl.Run(in)
}
