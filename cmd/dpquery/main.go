// dpquery runs selection-rule queries against an event store directory
// offline — the out-of-band companion to the controller's query
// command, for stores copied off the cluster (or written by tests and
// tools through store.DirBackend).
//
//	dpquery -store dir [-no-prune] [-workers n] [-stats] [-report] [rule...]
//
// Each rule argument is one alternative (an OR line of a templates
// file) in the Figure 3.3/3.4 syntax, conditions comma-separated:
//
//	dpquery -store f1.store 'machine=2,cpuTime>=5000' 'type=4'
//
// With no rules every stored record is printed. Matching records print
// to standard output in trace-log format; -stats prints the pruning
// statistics to standard error, and -report replaces the record listing
// with the full analysis report over the matching records.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dpm/internal/analysis"
	"dpm/internal/query"
	"dpm/internal/store"
)

func main() {
	dir := flag.String("store", "", "event store directory (required)")
	noPrune := flag.Bool("no-prune", false, "scan every segment, ignoring footer indexes")
	workers := flag.Int("workers", 1, "segment-scan parallelism (1 = sequential; results identical)")
	stats := flag.Bool("stats", false, "print scan statistics to standard error")
	report := flag.Bool("report", false, "print the analysis report instead of the records")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: dpquery -store dir [-no-prune] [-workers n] [-stats] [-report] [rule...]")
		os.Exit(2)
	}

	q, err := query.Compile(strings.Join(flag.Args(), "\n"))
	if err != nil {
		log.Fatal(err)
	}
	q.NoPrune = *noPrune
	q.Workers = *workers

	rd, err := store.OpenReader(store.NewDirBackend(*dir))
	if err != nil {
		log.Fatal(err)
	}
	res, err := query.Run(rd, q)
	if err != nil {
		log.Fatal(err)
	}
	if *report {
		text, err := analysis.Report(res.Events, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
	} else {
		for i := range res.Events {
			fmt.Println(res.Events[i].Format())
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, res.Stats.String())
	}
}
