// dpquery runs selection-rule queries against an event store directory
// offline — the out-of-band companion to the controller's query
// command, for stores copied off the cluster (or written by tests and
// tools through store.DirBackend).
//
//	dpquery -store dir [-no-prune] [-workers n] [-stats] [-report] [-json] [rule...]
//	dpquery -store dir -agg [-json] [rule...] 'agg ...'|'top ...'
//	dpquery -store dir -segments
//
// Each rule argument is one alternative (an OR line of a templates
// file) in the Figure 3.3/3.4 syntax, conditions comma-separated:
//
//	dpquery -store f1.store 'machine=2,cpuTime>=5000' 'type=4'
//
// With no rules every stored record is printed. Matching records print
// to standard output in trace-log format; -stats prints the pruning
// statistics to standard error, and -report replaces the record listing
// with the full analysis report over the matching records.
//
// With -agg, one argument must be an aggregate line in the extended
// syntax of docs/query.md ("agg count by machine window 1s", "top 10
// pid by sum(msgLength)"); the matching records fold into the
// aggregate where they are read and the rendered table (or, with
// -json, the machine-readable rows) is printed:
//
//	dpquery -store f1.store -agg 'type=4' 'agg sum(msgLength) by machine'
//
// -json switches either mode to machine-readable output: the matching
// records as a JSON array, or the aggregate result rows.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dpm/internal/agg"
	"dpm/internal/analysis"
	"dpm/internal/cli"
	"dpm/internal/query"
	"dpm/internal/store"
)

// listSegments prints the physical layout of the store: one line per
// segment (tier, format, record count, on-disk compression ratio) and,
// for block-compressed segments, one line per block with its zone map —
// the ranges the pruning decisions in query/agg are made from.
func listSegments(rd *store.Reader) {
	for sh, segs := range rd.Shards() {
		for _, rs := range segs {
			state := "unsealed"
			if rs.Sealed {
				state = "sealed"
			}
			format := fmt.Sprintf("v%d", rs.FormatVersion())
			raw, disk := rs.RawBytes(), rs.DiskBytes()
			ratio := 1.0
			if disk > 0 {
				ratio = float64(raw) / float64(disk)
			}
			fmt.Printf("shard %d  %s  %s tier=%d %s  records=%d  raw=%d disk=%d ratio=%.2fx",
				sh, rs.Name, state, rs.Tier, format, rs.Index.Count, raw, disk, ratio)
			blocks := rs.Blocks()
			if len(blocks) > 0 {
				fmt.Printf("  blocks=%d", len(blocks))
			}
			fmt.Println()
			for i, b := range blocks {
				fmt.Printf("  block %d  records=%d raw=%d comp=%d  cpuTime=[%d..%d]  machines=%016x types=%08x\n",
					i, b.Index.Count, b.RawLen, b.CompLen, b.Index.MinTime, b.Index.MaxTime,
					b.Index.Machines, b.Index.Types)
			}
		}
	}
}

func main() {
	dir := flag.String("store", "", "event store directory (required)")
	noPrune := flag.Bool("no-prune", false, "scan every segment, ignoring footer indexes")
	workers := flag.Int("workers", 1, "segment-scan parallelism (1 = sequential; results identical)")
	stats := flag.Bool("stats", false, "print scan statistics to standard error")
	report := flag.Bool("report", false, "print the analysis report instead of the records")
	segments := flag.Bool("segments", false, "list segments (tier, compression, blocks, zone maps) and exit")
	aggregate := flag.Bool("agg", false, "aggregate mode: one argument is an 'agg ...' or 'top ...' line")
	asJSON := flag.Bool("json", false, "machine-readable JSON output")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: dpquery -store dir [-no-prune] [-workers n] [-stats] [-report] [-agg] [-json] [-segments] [rule...]")
		os.Exit(2)
	}

	rd, err := store.OpenReader(store.NewDirBackend(*dir))
	if err != nil {
		log.Fatal(err)
	}
	text := strings.Join(flag.Args(), "\n")

	if *segments {
		listSegments(rd)
		return
	}

	if *aggregate {
		aq, err := agg.Compile(text)
		if err != nil {
			log.Fatal(err)
		}
		aq.Sel.NoPrune = *noPrune
		p, st, err := agg.Eval(rd, aq, agg.Options{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		res := agg.NewResult(aq.Spec, p)
		if *asJSON {
			if err := cli.WriteJSON(os.Stdout, res); err != nil {
				log.Fatal(err)
			}
		} else {
			res.Render(os.Stdout)
		}
		if *stats {
			fmt.Fprintln(os.Stderr, st.String())
		}
		return
	}

	q, err := query.Compile(text)
	if err != nil {
		log.Fatal(err)
	}
	q.NoPrune = *noPrune
	q.Workers = *workers
	res, err := query.Run(rd, q)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *report:
		text, err := analysis.Report(res.Events, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
	case *asJSON:
		if err := cli.WriteJSON(os.Stdout, res.Events); err != nil {
			log.Fatal(err)
		}
	default:
		for i := range res.Events {
			fmt.Println(res.Events[i].Format())
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, res.Stats.String())
	}
}
