package main

import (
	"fmt"
	"testing"

	"dpm/internal/store"
)

func TestSegmentsSmoke(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.NewDirBackend(dir), store.Config{
		Shards: 2, SegmentCap: 2048, Compress: store.CompressBlocks, BlockTarget: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		m := store.Meta{Machine: uint16(i % 4), PID: uint32(100 + i%8), Type: uint32(i % 6), Time: uint32(i * 10)}
		line := fmt.Sprintf("%d %d %d %d send msgLength=%d t=%d", m.Time, m.Machine, m.PID, m.Type, 100+i%5, i)
		if err := st.Append(m, line); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := store.OpenReader(store.NewDirBackend(dir))
	if err != nil {
		t.Fatal(err)
	}
	listSegments(rd)
}
