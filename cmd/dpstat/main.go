// dpstat inspects metrics snapshots offline — the files the filter and
// meterdaemon export at shutdown (filter.StatsPath, daemon.StatsPath)
// and anything saved from the controller's stats command.
//
//	dpstat snap.json [more.json...]         render the (merged) report
//	dpstat -json snap.json [more.json...]   re-emit the merge as JSON
//	dpstat -diff old.json new.json          per-metric deltas old → new
//
// Multiple snapshot arguments are merged before rendering, so a
// cluster's per-machine exports aggregate the same way the controller's
// stats command aggregates live machines. Files may hold either the
// JSON export format or the binary wire format (detected by magic).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"dpm/internal/cli"
	"dpm/internal/obs"

	// Link the live-analysis section mergers and renderers, so
	// snapshots carrying live.comm/live.par/live.match sections merge
	// key-wise and render as reports instead of opaque byte counts.
	_ "dpm/internal/analysis/live"
)

func main() {
	asJSON := flag.Bool("json", false, "emit the merged snapshot as JSON instead of a report")
	diff := flag.Bool("diff", false, "diff two snapshots (old new): per-metric deltas")
	flag.Parse()
	if flag.NArg() == 0 || (*diff && flag.NArg() != 2) {
		fmt.Fprintln(os.Stderr, "usage: dpstat [-json] snap.json [more.json...]")
		fmt.Fprintln(os.Stderr, "       dpstat -diff old.json new.json")
		os.Exit(2)
	}

	snaps := make([]*obs.Snapshot, flag.NArg())
	for i, path := range flag.Args() {
		s, err := load(path)
		if err != nil {
			log.Fatalf("dpstat: %s: %v", path, err)
		}
		snaps[i] = s
	}

	if *diff {
		printDiff(snaps[0], snaps[1])
		return
	}
	merged := snaps[0]
	for _, s := range snaps[1:] {
		merged.Merge(s)
	}
	if *asJSON {
		if err := cli.WriteJSON(os.Stdout, merged); err != nil {
			log.Fatal(err)
		}
		return
	}
	merged.Render(os.Stdout)
}

// load reads one snapshot, accepting both formats: the binary wire
// encoding (leads with the "DPOB" magic) and the JSON export.
func load(path string) (*obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(string(data), "DPOB") {
		return obs.ParseSnapshot(data)
	}
	return obs.ParseSnapshotJSON(data)
}

// printDiff reports, per metric name, the old value, the new value,
// and the delta. Metrics present on only one side diff against zero;
// histogram rows diff the observation counts and show the new
// snapshot's quantiles.
func printDiff(oldS, newS *obs.Snapshot) {
	names := map[string]bool{}
	oldVals, newVals := map[string]int64{}, map[string]int64{}
	collect := func(s *obs.Snapshot, into map[string]int64) {
		for _, v := range s.Counters {
			into[v.Name] = v.Value
			names[v.Name] = true
		}
		for _, v := range s.Gauges {
			into[v.Name] = v.Value
			names[v.Name] = true
		}
	}
	collect(oldS, oldVals)
	collect(newS, newVals)
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		o, nv := oldVals[n], newVals[n]
		if o == nv {
			continue
		}
		fmt.Printf("%-40s %12d -> %-12d (%+d)\n", n, o, nv, nv-o)
	}
	oldHists := map[string]*obs.HistValue{}
	for i := range oldS.Hists {
		oldHists[oldS.Hists[i].Name] = &oldS.Hists[i]
	}
	for i := range newS.Hists {
		h := &newS.Hists[i]
		var oc int64
		if oh := oldHists[h.Name]; oh != nil {
			oc = oh.Count
		}
		if h.Count == oc {
			continue
		}
		fmt.Printf("%-40s %12d -> %-12d (%+d obs)  p50=%v p95=%v p99=%v\n",
			h.Name, oc, h.Count, h.Count-oc,
			durns(h.Quantile(0.50)), durns(h.Quantile(0.95)), durns(h.Quantile(0.99)))
	}
}

func durns(ns int64) time.Duration {
	return time.Duration(ns).Round(time.Microsecond)
}
