// session replays the programmer's session of the paper's Appendix B
// on a fresh simulated cluster and prints the transcript followed by
// the retrieved trace file.
package main

import (
	"fmt"
	"log"
	"os"

	"dpm/internal/workloads"
)

func main() {
	traceData, err := workloads.RunAppendixBSession(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretrieved trace file:\n%s", traceData)
}
