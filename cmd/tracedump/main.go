// tracedump decodes a trace and prints one line per event record.
//
// Input is a standard-filter text log, or with -binary a raw meter
// byte stream in the Appendix A message formats (as saved from a meter
// connection). With no file argument it reads standard input.
//
//	tracedump [-binary] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"dpm/internal/trace"
)

func main() {
	binary := flag.Bool("binary", false, "input is a raw meter byte stream (Appendix A formats)")
	event := flag.String("event", "", "only print records of this event type (e.g. SEND)")
	machine := flag.Int("machine", 0, "only print records from this machine id (0 = all)")
	flag.Parse()

	var data []byte
	var err error
	switch flag.NArg() {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(flag.Arg(0))
	default:
		log.Fatal("usage: tracedump [-binary] [file]")
	}
	if err != nil {
		log.Fatal(err)
	}

	var events []trace.Event
	if *binary {
		events, err = trace.ParseBinary(data)
	} else {
		events, err = trace.ParseLog(data)
	}
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	for i := range events {
		if *event != "" && events[i].Event != strings.ToUpper(*event) {
			continue
		}
		if *machine != 0 && events[i].Machine != *machine {
			continue
		}
		fmt.Printf("%5d %s\n", events[i].Seq, events[i].Format())
		printed++
	}
	fmt.Fprintf(os.Stderr, "%d of %d event records\n", printed, len(events))
}
