// Package dpm is a Go reproduction of "A Distributed Programs Monitor
// for Berkeley UNIX" (Miller, Macrander, Sechrest; ICDCS 1985): a
// transparent monitoring system for distributed programs, implemented
// against a simulated 4.2BSD multi-machine substrate.
//
// The implementation lives under internal/ (see DESIGN.md for the
// package map); runnable examples are under examples/, command-line
// tools under cmd/, and the benchmark harness reproducing the paper's
// performance claims is bench_test.go in this directory.
package dpm
