// Acquire: metering an already-running system server.
//
// The paper's motivation for the acquire command (section 4.3):
// "situations may arise in which a process such as a system server is
// an important component of a computation ... Even more simply, a user
// may be interested only in monitoring a system server to better
// understand its behavior."
//
// Here a datagram echo server is started outside the measurement
// system, acquired into a job while running, driven by unmetered
// clients, and released again — it keeps running throughout, and the
// trace shows its request/reply behavior.
//
// Run with: go run ./examples/acquire
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/trace"
	"dpm/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		return err
	}
	defer sys.Shutdown()
	if err := workloads.RegisterEcho(sys); err != nil {
		return err
	}
	red, err := sys.Machine("red")
	if err != nil {
		return err
	}

	// The server exists before (and independent of) any measurement.
	server, err := red.Spawn(kernel.SpawnSpec{
		UID: sys.UID, Name: "echoserver", Path: "/bin/echoserver",
	})
	if err != nil {
		return err
	}
	fmt.Printf("echo server running on red, pid %d\n", server.PID())

	ctl, err := sys.NewController("yellow", os.Stdout)
	if err != nil {
		return err
	}
	// The immediate flag matters here: a long-running server would
	// otherwise hold its last few meter messages in the kernel buffer
	// until the next flush (the paper's default buffers "several
	// messages ... for greater efficiency", Appendix C).
	for _, cmd := range []string{
		"filter f1 blue",
		"newjob watch",
		"setflags watch send receivecall receive immediate",
		fmt.Sprintf("acquire watch red %d", server.PID()),
		"jobs watch",
	} {
		fmt.Printf("<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}

	// Drive the server with ordinary, unmetered clients from two
	// machines.
	const perClient = 6
	for _, mn := range []string{"green", "blue"} {
		m, err := sys.Machine(mn)
		if err != nil {
			return err
		}
		client, err := m.Spawn(kernel.SpawnSpec{
			UID: sys.UID, Name: "echoclient", Path: "/bin/echoclient",
			Args: []string{"red", fmt.Sprint(perClient)},
		})
		if err != nil {
			return err
		}
		if status, _ := client.WaitExit(); status != 0 {
			return fmt.Errorf("client on %s exited with %d", mn, status)
		}
	}

	// The server's behavior, observed without its cooperation.
	events, err := sys.WaitTrace("blue", "f1", 10*time.Second, func(evs []trace.Event) bool {
		st := analysis.Comm(evs)
		return st.Recvs >= 2*perClient && st.Sends >= 2*perClient
	})
	if err != nil {
		return err
	}
	st := analysis.Comm(events)
	fmt.Printf("\nacquired server trace: %d records\n", len(events))
	fmt.Printf("  requests received: %d (%d bytes)\n", st.Recvs, st.BytesRecvd)
	fmt.Printf("  replies sent:      %d (%d bytes)\n", st.Sends, st.BytesSent)
	srcs := make(map[string]int)
	for _, e := range events {
		if e.Type == meter.EvRecv {
			srcs[e.Name("sourceName").String()]++
		}
	}
	fmt.Printf("  distinct clients:  %d\n", len(srcs))

	// Releasing the job takes the meter connection down but leaves the
	// server running.
	fmt.Printf("<Control> removejob watch\n")
	ctl.Exec("removejob watch")
	if exited, _, _ := server.Exited(); exited {
		return fmt.Errorf("server terminated by removejob")
	}
	fmt.Printf("server still running after release (meter connection closed: %v)\n",
		server.MeterSocketID() == 0)

	// Shut it down for a clean exit.
	shooter, err := red.SpawnDetached(sys.UID, "shooter")
	if err != nil {
		return err
	}
	fd, err := shooter.Socket(meter.AFInet, kernel.SockDgram)
	if err != nil {
		return err
	}
	if _, err := shooter.SendTo(fd, []byte("quit"), meter.InetName(red.PrimaryHostID(), workloads.EchoPort)); err != nil {
		return err
	}
	server.WaitExit()
	ctl.Exec("die")
	return nil
}
