// Lossy: observing datagram loss with the monitor.
//
// The paper's communication model (section 3.1) is explicit that
// datagram delivery "is not guaranteed, though it is likely. Nor is
// the order in which a set of datagrams arrive guaranteed to be the
// order in which they were sent." This example runs a one-way
// datagram storm across a network configured to drop and reorder
// traffic, meters both ends, and uses the trace to quantify the loss —
// the sender's send count minus the receiver's receive count — and to
// show that message matching degrades gracefully.
//
// Run with: go run ./examples/lossy [-count N] [-loss P]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/netsim"
	"dpm/internal/trace"
	"dpm/internal/workloads"
)

func main() {
	count := flag.Int("count", 80, "datagrams to send")
	loss := flag.Float64("loss", 0.25, "network loss probability")
	flag.Parse()
	if err := run(*count, *loss); err != nil {
		log.Fatal(err)
	}
}

func run(count int, loss float64) error {
	sys, err := core.NewSystem(core.Config{
		NetOptions: map[string][]netsim.Option{
			"ether0": {netsim.WithLoss(loss), netsim.WithReorder(0.1), netsim.WithSeed(7)},
		},
	})
	if err != nil {
		return err
	}
	defer sys.Shutdown()
	if err := workloads.RegisterStorm(sys); err != nil {
		return err
	}
	ctl, err := sys.NewController("yellow", os.Stdout)
	if err != nil {
		return err
	}
	// The catcher must be listening before the blaster fires: datagrams
	// to an unbound port simply vanish. Two jobs sharing one filter
	// give the controller that ordering.
	for _, cmd := range []string{
		"filter f1 blue",
		"newjob catch",
		"setflags catch send receive immediate",
		"addprocess catch green catcher",
		"startjob catch",
	} {
		fmt.Printf("<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}
	green, err := sys.Machine("green")
	if err != nil {
		return err
	}
	for !green.PortBound(kernel.SockDgram, workloads.StormPort) {
		time.Sleep(time.Millisecond)
	}
	for _, cmd := range []string{
		"newjob storm",
		"setflags storm send receive immediate",
		fmt.Sprintf("addprocess storm red blaster green %d", count),
		"startjob storm",
	} {
		fmt.Printf("<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}

	// The blaster terminates on its own; the catcher runs until the
	// job is stopped and removed.
	deadline := time.Now().Add(time.Minute)
	for {
		done := false
		for _, j := range ctl.Jobs() {
			for _, p := range j.Procs {
				if p.Name == "blaster" && p.State.String() == "killed" {
					done = true
				}
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("blaster never finished")
		}
		time.Sleep(time.Millisecond)
	}
	for _, cmd := range []string{"removejob storm", "stopjob catch", "removejob catch"} {
		fmt.Printf("<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}

	events, err := sys.WaitTrace("blue", "f1", 10*time.Second, func(evs []trace.Event) bool {
		st := analysis.Comm(evs)
		return st.Sends >= count
	})
	if err != nil {
		return err
	}
	st := analysis.Comm(events)
	fmt.Printf("\ntrace: %d records\n", len(events))
	fmt.Printf("datagrams sent:     %d\n", st.Sends)
	fmt.Printf("datagrams received: %d\n", st.Recvs)
	lost := st.Sends - st.Recvs
	fmt.Printf("observed loss:      %d (%.0f%%, configured %.0f%%)\n",
		lost, float64(lost)/float64(st.Sends)*100, loss*100)

	// Matching is best effort under loss: every receive should still
	// find a send (the k-th arrival pairs with the k-th send of the
	// flow), even though some sends have no receive at all.
	matches := analysis.MatchMessages(events, sys.MatchOptions())
	fmt.Printf("matched messages:   %d of %d receives\n", len(matches), st.Recvs)

	ctl.Exec("die")
	return nil
}
