// Pipeline: finding a bottleneck stage with the monitor.
//
// The paper's introduction motivates the tool with exactly this
// problem: "When a program is working, it may be difficult to achieve
// reasonable execution performance. A major cause of these
// difficulties is a lack of tools for the programmer."
//
// Here a three-stage pipeline spans three machines; stage 2 is
// deliberately slow. Without touching the program, the monitor's
// blocked-time analysis (from the receivecall/receive event pairs)
// shows the downstream stage starving, and the per-process CPU times
// point at stage 2 — the measurement that tells the programmer where
// to optimize.
//
// Run with: go run ./examples/pipeline [-items N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/core"
	"dpm/internal/kernel"
	"dpm/internal/workloads"
)

func main() {
	items := flag.Int("items", 12, "items to push through the pipeline")
	flag.Parse()
	if err := run(*items); err != nil {
		log.Fatal(err)
	}
}

func run(items int) error {
	// Wall-paced compute so the stages interleave like real processes.
	sys, err := core.NewSystem(core.Config{Kernel: kernel.Config{ComputeWallScale: 0.02}})
	if err != nil {
		return err
	}
	defer sys.Shutdown()
	if err := workloads.RegisterPipeline(sys); err != nil {
		return err
	}
	ctl, err := sys.NewController("yellow", os.Stdout)
	if err != nil {
		return err
	}
	for _, cmd := range []string{
		"filter f1 yellow",
		"newjob pipe",
		"setflags pipe send receivecall receive termproc",
		fmt.Sprintf("addprocess pipe blue pipestage 3 3 - %d 2", items),
		fmt.Sprintf("addprocess pipe green pipestage 2 3 blue %d 10", items),
		fmt.Sprintf("addprocess pipe red pipestage 1 3 green %d 2", items),
		"startjob pipe",
	} {
		fmt.Printf("<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}
	if err := core.WaitJob(ctl, "pipe", 2*time.Minute); err != nil {
		return err
	}
	events, err := sys.WaitTrace("yellow", "f1", 10*time.Second, core.TermCount(3))
	if err != nil {
		return err
	}

	stage := map[int]string{1: "stage1 (red, 2ms/item)", 2: "stage2 (green, 10ms/item)", 3: "stage3 (blue, 2ms/item)"}
	fmt.Printf("\ntrace: %d records\n\nper-stage profile:\n", len(events))
	waits := analysis.WaitingProfile(events)
	cpu := map[int]int64{}
	for _, e := range events {
		if e.ProcTime > cpu[e.Machine] {
			cpu[e.Machine] = e.ProcTime
		}
	}
	var machines []int
	for m := range stage {
		machines = append(machines, m)
	}
	sort.Ints(machines)
	for _, m := range machines {
		var blocked int64
		var waitsN int
		for k, w := range waits {
			if k.Machine == m {
				blocked, waitsN = w.BlockedMillis, w.Waits
			}
		}
		fmt.Printf("  %-26s cpu=%4d ms   blocked waiting=%4d ms (%d waits)\n",
			stage[m], cpu[m], blocked, waitsN)
	}
	fmt.Printf("\nthe monitor's verdict: the stage with the most CPU and no waiting\n")
	fmt.Printf("is the bottleneck; the stage blocked longest is starved by it.\n")

	fmt.Printf("\n%s", analysis.Timeline(events, 72))

	ctl.Exec("die")
	return nil
}
