// Quickstart: the smallest complete use of the distributed programs
// monitor.
//
// It builds a simulated four-machine 4.2BSD cluster with meterdaemons,
// runs a two-process client/server computation under a job, meters
// every event type, and then runs the three analysis stages over the
// collected trace — the metering → filtering → analysis pipeline of
// the paper's Figure 2.1.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/core"
	"dpm/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A cluster of four machines on one network, each with a
	// meterdaemon and the standard filter files.
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		return err
	}
	defer sys.Shutdown()
	if err := workloads.RegisterPingPong(sys); err != nil {
		return err
	}

	// The user's view (section 4.3): a controller on yellow, driven by
	// the same command set as the paper's manual.
	ctl, err := sys.NewController("yellow", os.Stdout)
	if err != nil {
		return err
	}
	for _, cmd := range []string{
		"filter f1 blue",                 // create a filter process on blue
		"newjob demo",                    // create a job
		"setflags demo all",              // meter every event type
		"addprocess demo green ponger 5", // the server, 5 rounds
		"addprocess demo red pinger green 5",
		"startjob demo",
	} {
		fmt.Printf("<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}
	if err := core.WaitJob(ctl, "demo", 30*time.Second); err != nil {
		return err
	}
	ctl.Exec("removejob demo")

	// Retrieve and analyze the trace.
	events, err := sys.WaitTrace("blue", "f1", 10*time.Second, core.TermCount(2))
	if err != nil {
		return err
	}
	fmt.Printf("\ntrace: %d event records\n\n", len(events))

	st := analysis.Comm(events)
	fmt.Printf("communication statistics:\n")
	fmt.Printf("  sends: %d (%d bytes)   receives: %d (%d bytes)\n",
		st.Sends, st.BytesSent, st.Recvs, st.BytesRecvd)
	for k, pc := range st.PerProcess {
		fmt.Printf("  %s: %d sends / %d recvs\n", k, pc.Sends, pc.Recvs)
	}

	fmt.Printf("\nstructure:\n%s", analysis.Structure(events, sys.MatchOptions()).Render())

	matches := analysis.MatchMessages(events, sys.MatchOptions())
	order, err := analysis.HappenedBefore(events, matches)
	if err != nil {
		return err
	}
	fmt.Printf("\nevent ordering: %d matched messages, %.0f%% of event pairs ordered\n",
		len(matches), order.OrderedFraction()*100)

	par := analysis.MeasureParallelism(events)
	fmt.Printf("parallelism: %d processes, %d ms CPU over %d ms makespan (speedup %.2f)\n",
		par.Processes, par.TotalCPUMillis, par.MakespanMillis, par.Speedup)

	fmt.Printf("<Control> die\n")
	ctl.Exec("die")
	return nil
}
