// Session: the programmer's session of the paper's Appendix B,
// replayed command for command.
//
// The script creates a filter on blue, a job foo with process A on red
// and process B on green, sets the metering flags, starts the job,
// waits for the termination notices, removes the job, retrieves the
// trace, and exits — producing a transcript in the shape of the
// appendix.
//
// Run with: go run ./examples/session
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"dpm/internal/core"
	"dpm/internal/fsys"
	"dpm/internal/trace"
	"dpm/internal/workloads"
)

// script is the Appendix B command sequence (rmjob is the appendix's
// alias for removejob).
var script = []string{
	"filter f1 blue",
	"newjob foo",
	"addprocess foo red A green",
	"addprocess foo green B",
	"setflags foo send receive fork accept connect",
	"startjob foo",
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		return err
	}
	defer sys.Shutdown()
	// A is the client half and B the server half of the computation.
	sys.Cluster.RegisterProgram("progA", workloads.PingerMain)
	sys.Cluster.RegisterProgram("progB", workloads.PongerMain)
	for _, mn := range []string{"red", "green"} {
		m, err := sys.Machine(mn)
		if err != nil {
			return err
		}
		if err := m.FS().CreateExecutable("/bin/A", sys.UID, "progA"); err != nil {
			return err
		}
		if err := m.FS().CreateExecutable("/bin/B", sys.UID, "progB"); err != nil {
			return err
		}
	}

	ctl, err := sys.NewController("yellow", os.Stdout)
	if err != nil {
		return err
	}
	for _, cmd := range script {
		fmt.Printf("<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}
	if err := core.WaitJob(ctl, "foo", 30*time.Second); err != nil {
		return err
	}
	// Give the filter a moment to log the flushed termination records.
	if _, err := sys.WaitTrace("blue", "f1", 10*time.Second, func(evs []trace.Event) bool { return len(evs) >= 4 }); err != nil {
		return err
	}

	for _, cmd := range []string{"rmjob foo", "getlog f1 trace"} {
		fmt.Printf("<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}
	fmt.Printf("<Control> bye\n")
	ctl.Exec("bye")

	// Show the retrieved trace, as the paper's user would inspect it.
	yellow, err := sys.Machine("yellow")
	if err != nil {
		return err
	}
	data, err := yellow.FS().Read("/usr/trace", fsys.Superuser)
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	fmt.Printf("\nretrieved trace (%d records), first records:\n", len(lines))
	for i, l := range lines {
		if i == 8 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + l)
	}
	return nil
}
