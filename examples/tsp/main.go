// TSP: the distributed traveling-salesman computation the paper
// reports as the monitor's first real use (section 5, citing Lai &
// Miller 84).
//
// A master process on red distributes branch-and-bound subtrees to
// worker processes on other machines over stream connections. The
// whole computation runs metered; afterwards the analyses show the
// structure (master as server, workers as clients), the communication
// volume, and the parallelism achieved — the kind of measurement study
// that led Lai & Miller to their performance improvements.
//
// Run with: go run ./examples/tsp [-cities N] [-workers K] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/core"
	"dpm/internal/workloads"
)

func main() {
	cities := flag.Int("cities", 11, "number of cities")
	workers := flag.Int("workers", 3, "number of worker processes")
	seed := flag.Int64("seed", 1, "instance seed")
	flag.Parse()
	if err := run(*cities, *workers, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(cities, workers int, seed int64) error {
	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		return err
	}
	defer sys.Shutdown()
	if err := workloads.RegisterTSP(sys); err != nil {
		return err
	}

	// Sequential baseline, for the comparison the measurement study
	// would make.
	inst := workloads.NewTSPInstance(cities, seed)
	seqStart := time.Now()
	seqCost, _, seqNodes := workloads.SolveSequential(inst)
	seqElapsed := time.Since(seqStart)
	fmt.Printf("sequential: cost=%d nodes=%d (%v)\n", seqCost, seqNodes, seqElapsed)

	ctl, err := sys.NewController("yellow", os.Stdout)
	if err != nil {
		return err
	}
	machines := []string{"green", "blue", "yellow", "red"}
	cmds := []string{
		"filter f1 blue",
		"newjob tsp",
		"setflags tsp all",
		fmt.Sprintf("addprocess tsp red tspmaster %d %d %d", cities, workers, seed),
	}
	for w := 0; w < workers; w++ {
		cmds = append(cmds, fmt.Sprintf("addprocess tsp %s tspworker red", machines[w%len(machines)]))
	}
	cmds = append(cmds, "startjob tsp")
	for _, cmd := range cmds {
		fmt.Printf("<Control> %s\n", cmd)
		ctl.Exec(cmd)
	}
	if err := core.WaitJob(ctl, "tsp", 2*time.Minute); err != nil {
		return err
	}
	ctl.Exec("removejob tsp")

	events, err := sys.WaitTrace("blue", "f1", 10*time.Second, core.TermCount(workers+1))
	if err != nil {
		return err
	}
	fmt.Printf("\ntrace: %d event records\n", len(events))

	st := analysis.Comm(events)
	fmt.Printf("\ncommunication statistics:\n")
	fmt.Printf("  %d sends (%d bytes), %d receives (%d bytes)\n",
		st.Sends, st.BytesSent, st.Recvs, st.BytesRecvd)
	fmt.Printf("  message size histogram (power-of-two buckets): ")
	for b := 0; b <= 16; b++ {
		if n := st.SizeHist[b]; n > 0 {
			fmt.Printf("<=%d:%d ", 1<<b, n)
		}
	}
	fmt.Println()

	fmt.Printf("\nstructure:\n%s", analysis.Structure(events, sys.MatchOptions()).Render())

	par := analysis.MeasureParallelism(events)
	fmt.Printf("\nparallelism: %d processes, %d ms CPU over %d ms makespan (speedup %.2f)\n",
		par.Processes, par.TotalCPUMillis, par.MakespanMillis, par.Speedup)
	levels := ""
	for k := 1; k <= par.Processes; k++ {
		levels += fmt.Sprintf(" %d:%dms", k, par.Histogram[k])
	}
	fmt.Printf("concurrency profile (level:duration):%s\n", levels)

	matches := analysis.MatchMessages(events, sys.MatchOptions())
	order, err := analysis.HappenedBefore(events, matches)
	if err != nil {
		return err
	}
	fmt.Printf("ordering: %d matched messages, %s of event pairs ordered\n",
		len(matches), strconv.FormatFloat(order.OrderedFraction()*100, 'f', 1, 64)+"%")

	ctl.Exec("die")
	return nil
}
