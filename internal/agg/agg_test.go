package agg

import (
	"bytes"
	"fmt"
	"testing"

	"dpm/internal/meter"
	"dpm/internal/obs"
	"dpm/internal/query"
	"dpm/internal/store"
	"dpm/internal/trace"
)

// buildStore writes n synthetic SEND/RECV events into a fresh store
// with small segments, flushed so every segment is sealed and indexed —
// the fixture shape the query package's tests use.
func buildStore(t testing.TB, n int, cfg store.Config) store.Backend {
	t.Helper()
	be := store.NewMemBackend()
	st, err := store.Open(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		typ := meter.EvSend
		if i%2 == 1 {
			typ = meter.EvRecv
		}
		e := trace.Event{
			Seq: i, Type: typ, Event: typ.String(),
			Machine: i%4 + 1, CPUTime: int64(i * 10),
			Fields: map[string]uint64{
				"pid": uint64(100 + i%4), "sock": 3, "msgLength": uint64(64 + i),
			},
			Names: map[string]meter.Name{},
		}
		m := store.Meta{
			Machine: uint16(e.Machine), Time: uint32(e.CPUTime),
			Type: uint32(e.Type), PID: uint32(e.Fields["pid"]),
		}
		if err := st.Append(m, e.Format()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return be
}

// eval compiles and evaluates an aggregate query against a backend.
func eval(t testing.TB, be store.Backend, text string, workers int) (*Partial, query.Stats) {
	t.Helper()
	aq, err := Compile(text)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := store.OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	p, stats, err := Eval(rd, aq, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return p, stats
}

func TestEvalCountByMachine(t *testing.T) {
	be := buildStore(t, 100, store.Config{SegmentCap: 512})
	p, stats := eval(t, be, "agg count by machine", 0)
	if p.Records != 100 || stats.Matched != 100 {
		t.Fatalf("records=%d matched=%d, want 100", p.Records, stats.Matched)
	}
	if len(p.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(p.Groups))
	}
	for key, g := range p.Groups {
		if g.Count != 25 {
			t.Errorf("machine %d count = %d, want 25", key.Vals[0], g.Count)
		}
	}
}

func TestEvalSelectionRulesApply(t *testing.T) {
	be := buildStore(t, 100, store.Config{SegmentCap: 512})
	// Only machine 3's SEND records: machines cycle 1..4 with machine 3
	// on even i, which are all EvSend.
	p, _ := eval(t, be, fmt.Sprintf("machine=3,type=%d\nagg count by machine", int(meter.EvSend)), 0)
	if len(p.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(p.Groups))
	}
	g := p.Groups[GroupKey{Vals: [MaxBy]uint64{3}}]
	if g == nil || g.Count != 25 {
		t.Fatalf("machine 3 group = %+v, want count 25", g)
	}
}

func TestEvalWindows(t *testing.T) {
	be := buildStore(t, 100, store.Config{SegmentCap: 512})
	// cpuTime 0..990 in steps of 10; 250ms windows -> starts 0,250,500,750.
	p, _ := eval(t, be, "agg count window 250ms", 0)
	if len(p.Groups) != 4 {
		t.Fatalf("windows = %d, want 4", len(p.Groups))
	}
	for key, g := range p.Groups {
		if key.Window%250 != 0 {
			t.Errorf("window start %d not on a 250ms boundary", key.Window)
		}
		if g.Count != 25 {
			t.Errorf("window %d count = %d, want 25", key.Window, g.Count)
		}
	}
	if p.MinTime != 0 || p.MaxTime != 990 {
		t.Errorf("time range [%d,%d], want [0,990]", p.MinTime, p.MaxTime)
	}
}

func TestEvalSumMinMax(t *testing.T) {
	be := buildStore(t, 100, store.Config{SegmentCap: 512})
	// msgLength = 64+i for i=0..99.
	p, _ := eval(t, be, "agg sum(msgLength)", 0)
	g := p.Groups[GroupKey{}]
	if g == nil {
		t.Fatal("no group")
	}
	wantSum := int64(0)
	for i := 0; i < 100; i++ {
		wantSum += int64(64 + i)
	}
	if g.Sum != wantSum || g.Min != 64 || g.Max != 163 {
		t.Fatalf("sum=%d min=%d max=%d, want %d/64/163", g.Sum, g.Min, g.Max, wantSum)
	}
}

func TestEvalRate(t *testing.T) {
	be := buildStore(t, 100, store.Config{SegmentCap: 512})
	p, _ := eval(t, be, "agg rate", 0)
	s := mustSpec(t, "agg rate")
	r := NewResult(s, p)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	// 100 records over a 991ms span ≈ 100.9/s.
	got := r.Rows[0].Value
	if got < 100 || got > 102 {
		t.Fatalf("rate = %v, want ~100.9", got)
	}
}

func TestEvalPercentileUpperBound(t *testing.T) {
	be := buildStore(t, 100, store.Config{SegmentCap: 512})
	p, _ := eval(t, be, "agg p95(msgLength)", 0)
	s := mustSpec(t, "agg p95(msgLength)")
	r := NewResult(s, p)
	// The log2 sketch answers with a power-of-two upper bound: the true
	// p95 is 159, so the bound must be >= 159 and <= 2*163.
	v := r.Rows[0].Value
	if v < 159 || v > 326 {
		t.Fatalf("p95 bound = %v, want within [159, 326]", v)
	}
}

func TestEvalTopK(t *testing.T) {
	be := buildStore(t, 100, store.Config{SegmentCap: 512})
	p, _ := eval(t, be, "top 2 machine by sum(msgLength)", 0)
	s := mustSpec(t, "top 2 machine by sum(msgLength)")
	r := NewResult(s, p)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (k cut)", len(r.Rows))
	}
	// Machine 4 sees i%4==3 -> msgLength 67,71,...: the largest sums
	// belong to machines 4 then 3.
	if r.Rows[0].Key["machine"] != 4 || r.Rows[1].Key["machine"] != 3 {
		t.Fatalf("top-2 machines = %d,%d, want 4,3",
			r.Rows[0].Key["machine"], r.Rows[1].Key["machine"])
	}
	if r.Rows[0].Value < r.Rows[1].Value {
		t.Fatal("rows not sorted heaviest first")
	}
}

func TestEvalGroupCapDrops(t *testing.T) {
	be := buildStore(t, 100, store.Config{SegmentCap: 512})
	aq, err := Compile("agg count by cpuTime")
	if err != nil {
		t.Fatal(err)
	}
	aq.Spec.MaxGroups = 10 // 100 distinct cpuTimes against a 10-group cap
	rd, err := store.OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := Eval(rd, aq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 10 {
		t.Fatalf("groups = %d, want 10 (cap)", len(p.Groups))
	}
	if p.Dropped != 90 {
		t.Fatalf("dropped = %d, want 90", p.Dropped)
	}
}

func TestEvalMissingFieldSkips(t *testing.T) {
	be := buildStore(t, 100, store.Config{SegmentCap: 512})
	p, _ := eval(t, be, "agg sum(noSuchField)", 0)
	if p.Skipped != 100 || len(p.Groups) != 0 {
		t.Fatalf("skipped=%d groups=%d, want 100/0", p.Skipped, len(p.Groups))
	}
	p, _ = eval(t, be, "agg count by noSuchField", 0)
	if p.Skipped != 100 {
		t.Fatalf("skipped=%d, want 100", p.Skipped)
	}
}

func TestEvalParallelMatchesSequential(t *testing.T) {
	be := buildStore(t, 400, store.Config{SegmentCap: 512})
	for _, text := range []string{
		"agg count by machine window 100ms",
		"agg p95(msgLength) by machine",
		"top 3 pid by sum(msgLength)",
	} {
		seq, seqStats := eval(t, be, text, 0)
		par, parStats := eval(t, be, text, 4)
		if !bytes.Equal(seq.MarshalBinary(), par.MarshalBinary()) {
			t.Errorf("%q: parallel result differs from sequential", text)
		}
		if seqStats.Matched != parStats.Matched || seqStats.Records != parStats.Records {
			t.Errorf("%q: stats differ: %+v vs %+v", text, seqStats, parStats)
		}
	}
}

func TestEvalPruning(t *testing.T) {
	be := buildStore(t, 400, store.Config{SegmentCap: 512})
	aq, err := Compile("machine=2\nagg count by machine")
	if err != nil {
		t.Fatal(err)
	}
	rd, err := store.OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Eval(rd, aq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned == 0 {
		t.Fatalf("no segments pruned under machine=2: %+v", stats)
	}
}

func TestEvalObsMetrics(t *testing.T) {
	be := buildStore(t, 200, store.Config{SegmentCap: 512})
	reg := obs.NewRegistry()
	aq, err := Compile("agg count by machine")
	if err != nil {
		t.Fatal(err)
	}
	rd, err := store.OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Eval(rd, aq, Options{Workers: 4, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var runs int64
	for _, c := range snap.Counters {
		if c.Name == "agg.runs" {
			runs = c.Value
		}
	}
	if runs != 1 {
		t.Fatalf("agg.runs = %d, want 1", runs)
	}
	var merges int64
	for _, h := range snap.Hists {
		if h.Name == "agg.merge_ns" {
			merges = h.Count
		}
	}
	if merges == 0 {
		t.Fatalf("agg.merge_ns missing or empty: %+v", snap.Hists)
	}
}

func TestCompileRejects(t *testing.T) {
	for _, text := range []string{
		"machine=3",                     // no aggregate line
		"agg count\nagg sum(msgLength)", // two aggregate lines
		"agg bogus",                     // bad spec
		"machine=((\nagg count",         // bad rules
	} {
		if _, err := Compile(text); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", text)
		}
	}
}
