package agg

import (
	"testing"

	"dpm/internal/query"
	"dpm/internal/store"
)

// benchText is the reference aggregate query for the push-down
// benchmark: a cluster-wide per-machine traffic profile.
const benchText = "agg sum(msgLength) by machine window 1s"

// shippedBytes measures what the same answer costs without push-down:
// every matching record crosses the wire and the caller aggregates —
// the only query shape the daemon offered before TAggReq.
func shippedBytes(tb testing.TB, be store.Backend) int {
	tb.Helper()
	q, err := query.Compile("")
	if err != nil {
		tb.Fatal(err)
	}
	rd, err := store.OpenReader(be)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := query.Run(rd, q)
	if err != nil {
		tb.Fatal(err)
	}
	n := 0
	for i := range res.Events {
		n += len(res.Events[i].Format())
	}
	return n
}

// pushdownBytes measures the wire cost with push-down: one encoded
// partial per machine.
func pushdownBytes(tb testing.TB, be store.Backend) int {
	tb.Helper()
	p, _ := eval(tb, be, benchText, 0)
	return len(p.MarshalBinary())
}

// TestAggPushdownBytesReduction pins the acceptance bar: pushing the
// aggregation to the data must move at least 10x fewer bytes than
// shipping the matching records.
func TestAggPushdownBytesReduction(t *testing.T) {
	be := buildStore(t, 5000, store.Config{SegmentCap: 4096})
	shipped := shippedBytes(t, be)
	pushed := pushdownBytes(t, be)
	t.Logf("ship-records=%d bytes, pushdown=%d bytes, reduction=%.1fx",
		shipped, pushed, float64(shipped)/float64(pushed))
	if pushed == 0 || shipped < 10*pushed {
		t.Fatalf("reduction below 10x: shipped=%d pushed=%d", shipped, pushed)
	}
}

// BenchmarkAggPushdown compares the two evaluation strategies for the
// same aggregate answer. The bytes_moved metric is the wire payload
// each strategy ships per evaluated query; scripts/bench_filter.sh
// records both sub-benchmarks in BENCH_filter.json.
func BenchmarkAggPushdown(b *testing.B) {
	be := buildStore(b, 5000, store.Config{SegmentCap: 4096})

	b.Run("pushdown", func(b *testing.B) {
		aq, err := Compile(benchText)
		if err != nil {
			b.Fatal(err)
		}
		rd, err := store.OpenReader(be)
		if err != nil {
			b.Fatal(err)
		}
		var bytes int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, _, err := Eval(rd, aq, Options{})
			if err != nil {
				b.Fatal(err)
			}
			bytes = len(p.MarshalBinary())
		}
		b.ReportMetric(float64(bytes), "bytes_moved")
	})

	b.Run("ship-records", func(b *testing.B) {
		q, err := query.Compile("")
		if err != nil {
			b.Fatal(err)
		}
		rd, err := store.OpenReader(be)
		if err != nil {
			b.Fatal(err)
		}
		var bytes int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := query.Run(rd, q)
			if err != nil {
				b.Fatal(err)
			}
			bytes = 0
			for j := range res.Events {
				bytes += len(res.Events[j].Format())
			}
		}
		b.ReportMetric(float64(bytes), "bytes_moved")
	})
}
