package agg

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"dpm/internal/obs"
	"dpm/internal/query"
	"dpm/internal/store"
	"dpm/internal/trace"
)

// Query is a compiled aggregate query: the selection rules choosing
// the records (compiled to the usual pruning envelopes) and the
// aggregate specification shaping the answer.
type Query struct {
	Sel  *query.Query
	Spec *Spec
}

// Compile parses a full aggregate query text: selection-rule lines in
// the Figure 3.3–3.4 syntax plus exactly one aggregate line ("agg ..."
// or "top ..."), in any order. Text with no aggregate line is an
// error here — plain selection queries belong to the query package.
func Compile(text string) (*Query, error) {
	var ruleLines, aggLines []string
	for _, line := range strings.Split(text, "\n") {
		if IsAggLine(line) {
			aggLines = append(aggLines, strings.TrimSpace(line))
		} else {
			ruleLines = append(ruleLines, line)
		}
	}
	if len(aggLines) == 0 {
		return nil, fmt.Errorf("%w: no aggregate line", ErrSpec)
	}
	if len(aggLines) > 1 {
		return nil, fmt.Errorf("%w: %d aggregate lines, want one", ErrSpec, len(aggLines))
	}
	spec, err := ParseSpec(aggLines[0])
	if err != nil {
		return nil, err
	}
	sel, err := query.Compile(strings.Join(ruleLines, "\n"))
	if err != nil {
		return nil, err
	}
	return &Query{Sel: sel, Spec: spec}, nil
}

// Options tunes one Eval.
type Options struct {
	// Workers sets segment-fold parallelism; 0 or 1 is sequential.
	// Results are identical either way: each worker folds into its own
	// partial and the partials Merge, which is order-independent.
	Workers int
	// Obs, when set, receives agg.runs and the agg.merge_ns latency of
	// the final partial merge.
	Obs *obs.Registry
}

// Eval runs an aggregate query against a store snapshot: admitted
// segments (footer pruning applied) are scanned where they live and
// folded into one bounded partial aggregate — the push-down half of a
// distributed aggregation. The caller ships the partial, not the
// records.
func Eval(rd *store.Reader, aq *Query, opt Options) (*Partial, query.Stats, error) {
	if opt.Obs != nil {
		opt.Obs.Counter("agg.runs").Inc()
	}
	segs, stats := query.Admitted(rd, aq.Sel)
	if opt.Workers > 1 && len(segs) > 1 {
		return evalParallel(segs, aq, opt, stats)
	}
	p := NewPartial(aq.Spec)
	for _, rs := range segs {
		if err := foldSegment(p, rs, aq, &stats); err != nil {
			return nil, stats, err
		}
	}
	return p, stats, nil
}

// evalParallel folds admitted segments on a worker pool, one partial
// per worker, merged at the end — the same shape the controller's
// cross-machine gather has, exercised inside one machine.
func evalParallel(segs []*store.ReaderSegment, aq *Query, opt Options, stats query.Stats) (*Partial, query.Stats, error) {
	workers := opt.Workers
	if workers > len(segs) {
		workers = len(segs)
	}
	parts := make([]*Partial, workers)
	statsv := make([]query.Stats, workers)
	errs := make([]error, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := NewPartial(aq.Spec)
			parts[w] = p
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(segs) {
					return
				}
				if err := foldSegment(p, segs[i], aq, &statsv[w]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	var span obs.Span
	if opt.Obs != nil {
		span = obs.StartSpan(opt.Obs.Histogram("agg.merge_ns"))
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		if err := merged.Merge(p); err != nil {
			return nil, stats, err
		}
	}
	span.End()
	for _, s := range statsv {
		stats.Scanned += s.Scanned
		stats.Blocks += s.Blocks
		stats.BlocksPruned += s.BlocksPruned
		stats.Records += s.Records
		stats.Matched += s.Matched
		stats.BadLines += s.BadLines
	}
	return merged, stats, nil
}

// foldSegment parses one segment and folds its matching records into
// the partial. A torn unsealed tail is tolerated, as everywhere else;
// corruption of a sealed segment is fatal.
func foldSegment(p *Partial, rs *store.ReaderSegment, aq *Query, stats *query.Stats) error {
	stats.Scanned++
	sketch := aq.Spec.Fn.NeedsSketch()
	maxGroups := aq.Spec.maxGroups()
	admit := aq.Sel.Admits
	if aq.Sel.NoPrune {
		admit = nil
	}
	d := store.AcquireDecoder()
	st, err := rs.Scan(d, admit, func(m store.Meta, line []byte) {
		ev, perr := trace.ParseOne(line)
		if perr != nil {
			stats.BadLines++
			return
		}
		ok, _ := aq.Sel.Match(&ev)
		if !ok {
			return
		}
		stats.Matched++
		p.Records++
		p.noteTime(uint64(ev.CPUTime))
		key, ok := aq.Spec.keyOf(&ev)
		if !ok {
			p.Skipped++
			return
		}
		v := uint64(1)
		if aq.Spec.Fn.NeedsField() {
			fv, ok := fieldOf(&ev, aq.Spec.Field)
			if !ok {
				p.Skipped++
				return
			}
			v = fv
		}
		if !p.fold(key, v, sketch, maxGroups) {
			p.Dropped++
		}
	})
	store.ReleaseDecoder(d)
	stats.Records += st.Records
	stats.Blocks += st.Blocks
	stats.BlocksPruned += st.BlocksPruned
	if err != nil && !errors.Is(err, store.ErrTruncated) {
		return err
	}
	return nil
}

// keyOf computes the record's group key, false when a group-by field
// is absent from the record.
func (s *Spec) keyOf(ev *trace.Event) (GroupKey, bool) {
	var key GroupKey
	if s.WindowMS > 0 {
		t := uint64(ev.CPUTime)
		key.Window = t - t%uint64(s.WindowMS)
	}
	for i, f := range s.By {
		v, ok := fieldOf(ev, f)
		if !ok {
			return key, false
		}
		key.Vals[i] = v
	}
	return key, true
}

// fieldOf resolves a record field by name, header fields first —
// the same resolution order the query engine's rule evaluation uses.
func fieldOf(e *trace.Event, name string) (uint64, bool) {
	switch name {
	case "machine":
		return uint64(e.Machine), true
	case "cpuTime":
		return uint64(e.CPUTime), true
	case "procTime":
		return uint64(e.ProcTime), true
	case "type", "traceType":
		return uint64(e.Type), true
	}
	v, ok := e.Fields[name]
	return v, ok
}
