package agg

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzParseSpec hammers the aggregate-spec parser: whatever the input,
// it must return a spec or an error — never panic — and an accepted
// spec must round-trip through its canonical String form.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"agg count by machine window 1s",
		"agg sum(msgLength) by machine,pid",
		"agg p95(msgLength) by type window 250ms",
		"top 10 pid by sum(msgLength)",
		"top 3 machine by count window 2s",
		// Truncated clauses.
		"agg count by",
		"agg count window",
		"top",
		"top 10",
		"top 10 pid",
		"top 10 pid by",
		// Out-of-bounds shapes.
		"top 1000000 pid by count",
		"agg count window 0",
		"agg count window 0s",
		"agg count window -1ms",
		"agg count window 99999999999999999999ms",
		"agg count by a,b,c,d,e",
		"agg sum(",
		"agg sum()",
		"agg count(pid)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		s, err := ParseSpec(line)
		if err != nil {
			return
		}
		if s.WindowMS < 0 {
			t.Fatalf("accepted negative window: %q -> %d", line, s.WindowMS)
		}
		if len(s.By) > MaxBy {
			t.Fatalf("accepted %d group fields: %q", len(s.By), line)
		}
		if s.TopK > MaxTopK {
			t.Fatalf("accepted top-k %d: %q", s.TopK, line)
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %q -> %q: %v", line, canon, err)
		}
		if s2.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q -> %q", line, canon, s2.String())
		}
	})
}

// FuzzParsePartial hammers the binary partial decoder with corrupt and
// mutated encodings: decode must return a partial or ErrPartialCorrupt,
// never panic or over-allocate, and an accepted partial must re-encode
// decodably.
func FuzzParsePartial(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	for _, line := range []string{
		"agg count by machine",
		"agg p95(msgLength) by machine,pid window 100ms",
		"top 10 pid by sum(msgLength)",
	} {
		s, err := ParseSpec(line)
		if err != nil {
			f.Fatal(err)
		}
		enc := randPartial(s, rng, 100).MarshalBinary()
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		mut := append([]byte{}, enc...)
		mut[len(mut)/3] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte("DPAG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePartial(data)
		if err != nil {
			return
		}
		re := p.MarshalBinary()
		p2, err := ParsePartial(re)
		if err != nil {
			t.Fatalf("re-encoding undecodable: %v", err)
		}
		if !bytes.Equal(p2.MarshalBinary(), re) {
			t.Fatal("re-encoding unstable")
		}
	})
}
