package agg

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestMergeOrderIndependence pins the associativity and commutativity
// of Partial.Merge: a set of per-machine partials merged in any
// shuffled order, and under any random reduction-tree shape, encodes
// to byte-identical bytes. This is the property the controller's
// scatter-gather leans on when replies arrive in arbitrary order and
// a degraded subset must still fold deterministically.
func TestMergeOrderIndependence(t *testing.T) {
	specs := []string{
		"agg count by machine",
		"agg sum(msgLength) by machine,pid window 100ms",
		"agg p95(msgLength) by type",
		"agg rate by machine window 1s",
		"top 10 pid by sum(msgLength)",
	}
	rng := rand.New(rand.NewSource(42))
	for _, line := range specs {
		s := mustSpec(t, line)
		// A handful of per-machine partials with overlapping key spaces.
		parts := make([]*Partial, 6)
		for i := range parts {
			parts[i] = randPartial(s, rng, 150)
		}
		var want []byte
		for trial := 0; trial < 200; trial++ {
			// Clone via the wire format — merge must not mutate inputs
			// in ways the next trial sees.
			work := make([]*Partial, len(parts))
			for i, p := range parts {
				dec, err := ParsePartial(p.MarshalBinary())
				if err != nil {
					t.Fatal(err)
				}
				work[i] = dec
			}
			rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
			// Random reduction tree: repeatedly merge a random pair.
			for len(work) > 1 {
				i := rng.Intn(len(work) - 1)
				if err := work[i].Merge(work[i+1]); err != nil {
					t.Fatal(err)
				}
				work = append(work[:i+1], work[i+2:]...)
			}
			got := work[0].MarshalBinary()
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%q: trial %d merged to different bytes", line, trial)
			}
		}
	}
}

// TestMergeIdentity checks that merging an empty partial is a no-op on
// the encoding — the unit of the merge monoid.
func TestMergeIdentity(t *testing.T) {
	s := mustSpec(t, "agg sum(msgLength) by machine")
	p := randPartial(s, rand.New(rand.NewSource(9)), 100)
	want := p.MarshalBinary()
	if err := p.Merge(NewPartial(s)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.MarshalBinary(), want) {
		t.Fatal("merging the empty partial changed the encoding")
	}
}
