package agg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"dpm/internal/obs"
)

// GroupKey identifies one group: the window start (cpuTime ms, 0 when
// unwindowed) and the values of the group-by fields, fixed-width so
// keys are comparable map keys. Unused key slots are zero.
type GroupKey struct {
	Window uint64
	Vals   [MaxBy]uint64
}

// Group is one group's accumulator. Every operator shares the shape —
// count, sum, min, max, and (for percentile operators) the log2
// histogram sketch — so a partial can be rendered under any of the
// spec's views and merges stay operator-independent.
type Group struct {
	Key   GroupKey
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	// hist is the dense log2 sketch, allocated only when the spec's
	// operator needs it: hist[b] counts values v with bits.Len64(v)==b,
	// the bucket rule of obs.Histogram, so quantile bounds come from
	// obs.HistValue.
	hist []int64
}

// observe folds one value into the accumulator.
func (g *Group) observe(v uint64, sketch bool) {
	sv := int64(v)
	if g.Count == 0 || sv < g.Min {
		g.Min = sv
	}
	if g.Count == 0 || sv > g.Max {
		g.Max = sv
	}
	g.Count++
	g.Sum += sv
	if sketch {
		if g.hist == nil {
			g.hist = make([]int64, obs.NumBuckets)
		}
		b := bits.Len64(v)
		if b >= obs.NumBuckets {
			b = obs.NumBuckets - 1
		}
		g.hist[b]++
	}
}

// HistValue adapts the group's sketch to obs.HistValue, whose
// Quantile carries the nearest-rank upper-bound semantics the obs
// layer already pins down.
func (g *Group) HistValue() obs.HistValue {
	hv := obs.HistValue{Count: g.Count, Sum: g.Sum}
	for b, n := range g.hist {
		if n != 0 {
			hv.Buckets = append(hv.Buckets, obs.BucketCount{Bucket: uint8(b), Count: n})
		}
	}
	return hv
}

// Partial is one machine's bounded partial aggregate: the compact
// thing that crosses the wire instead of the matching records. A
// partial is complete for the records its machine scanned; partials
// of different machines (or different segments) Merge into the same
// result in any order.
type Partial struct {
	// Spec is the canonical specification string; Merge refuses
	// partials of different specs.
	Spec string
	// MinTime and MaxTime bound the cpuTime of the folded records;
	// MaxTime < MinTime (the zero state) means no records. Rate
	// rendering without a window divides by this span.
	MinTime uint64
	MaxTime uint64
	// Records counts matched records folded; Skipped counts matched
	// records lacking a group or value field; Dropped counts matched
	// records not attributed because the group table was at MaxGroups —
	// nonzero Dropped marks the answer as approximate.
	Records int64
	Skipped int64
	Dropped int64
	Groups  map[GroupKey]*Group
}

// NewPartial returns an empty partial for a spec.
func NewPartial(s *Spec) *Partial {
	return &Partial{Spec: s.String(), MinTime: ^uint64(0), Groups: make(map[GroupKey]*Group)}
}

// fold attributes one record to its group. Returns false when the
// group table is full and the key is new (the caller counts Dropped).
func (p *Partial) fold(key GroupKey, v uint64, sketch bool, maxGroups int) bool {
	g, ok := p.Groups[key]
	if !ok {
		if len(p.Groups) >= maxGroups {
			return false
		}
		g = &Group{Key: key}
		p.Groups[key] = g
	}
	g.observe(v, sketch)
	return true
}

// noteTime widens the observed time range.
func (p *Partial) noteTime(t uint64) {
	if t < p.MinTime {
		p.MinTime = t
	}
	if t > p.MaxTime {
		p.MaxTime = t
	}
}

// ErrSpecMismatch reports an attempt to merge partials of different
// aggregate specifications.
var ErrSpecMismatch = errors.New("agg: partials have different specs")

// Merge folds other into p: groups merge key-wise (counts and sums
// add, min/max narrow, sketch buckets add), the time range widens,
// and the record counters add — associative and commutative, the
// discipline obs.Snapshot.Merge set, so a scatter-gather can fold
// per-machine partials in whatever order they arrive. Merge never
// evicts a group: the MaxGroups cap applies only while a machine folds
// its own records, so merge order cannot change the result.
func (p *Partial) Merge(other *Partial) error {
	if other == nil {
		return nil
	}
	if p.Spec != other.Spec {
		return fmt.Errorf("%w: %q vs %q", ErrSpecMismatch, p.Spec, other.Spec)
	}
	if other.MinTime < p.MinTime {
		p.MinTime = other.MinTime
	}
	if other.MaxTime > p.MaxTime {
		p.MaxTime = other.MaxTime
	}
	p.Records += other.Records
	p.Skipped += other.Skipped
	p.Dropped += other.Dropped
	for key, og := range other.Groups {
		g, ok := p.Groups[key]
		if !ok {
			g = &Group{Key: key, Min: og.Min, Max: og.Max}
			p.Groups[key] = g
		} else {
			if og.Count > 0 && (g.Count == 0 || og.Min < g.Min) {
				g.Min = og.Min
			}
			if og.Count > 0 && (g.Count == 0 || og.Max > g.Max) {
				g.Max = og.Max
			}
		}
		g.Count += og.Count
		g.Sum += og.Sum
		if og.hist != nil {
			if g.hist == nil {
				g.hist = make([]int64, obs.NumBuckets)
			}
			for b, n := range og.hist {
				g.hist[b] += n
			}
		}
	}
	return nil
}

// Binary partial format, version 1. Little-endian throughout:
//
//	"DPAG" magic, u16 version,
//	string spec (canonical),
//	u64 minTime, u64 maxTime,
//	i64 records, i64 skipped, i64 dropped,
//	u32 n groups × (u64 window, u8 nvals × u64 val,
//	                i64 count, i64 sum, i64 min, i64 max,
//	                u16 n pairs × (u8 bucket, i64 count)).
//
// Strings are u16-length-prefixed. Groups are written in sorted key
// order, so the encoding of a partial is deterministic — the
// randomized merge-order tests compare encodings byte for byte. A
// parser ignores trailing bytes and accepts newer versions by their
// version-1 prefix, the obs snapshot discipline.

// PartialVersion is the binary format version this package writes.
const PartialVersion = 1

var partialMagic = [4]byte{'D', 'P', 'A', 'G'}

// ErrPartialCorrupt reports undecodable partial bytes.
var ErrPartialCorrupt = errors.New("agg: corrupt partial")

// maxPartialGroups bounds the decoded group count against corrupt
// headers; it is far above any legal MaxGroups times a realistic
// machine count.
const maxPartialGroups = 1 << 20

// keyLess orders group keys: window first, then the key values.
func keyLess(a, b GroupKey) bool {
	if a.Window != b.Window {
		return a.Window < b.Window
	}
	for i := 0; i < MaxBy; i++ {
		if a.Vals[i] != b.Vals[i] {
			return a.Vals[i] < b.Vals[i]
		}
	}
	return false
}

// sortedGroups returns the groups in canonical key order.
func (p *Partial) sortedGroups() []*Group {
	out := make([]*Group, 0, len(p.Groups))
	for _, g := range p.Groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// nvals returns how many key slots the spec's by-list uses; encoded so
// a reader does not need the spec to frame the key.
func nvalsOf(spec string) int {
	s, err := ParseSpec(spec)
	if err != nil {
		return MaxBy
	}
	return len(s.By)
}

// MarshalBinary encodes the partial deterministically in the versioned
// binary format.
func (p *Partial) MarshalBinary() []byte {
	le := binary.LittleEndian
	b := make([]byte, 0, 64+48*len(p.Groups))
	b = append(b, partialMagic[:]...)
	b = le.AppendUint16(b, PartialVersion)
	b = le.AppendUint16(b, uint16(len(p.Spec)))
	b = append(b, p.Spec...)
	b = le.AppendUint64(b, p.MinTime)
	b = le.AppendUint64(b, p.MaxTime)
	b = le.AppendUint64(b, uint64(p.Records))
	b = le.AppendUint64(b, uint64(p.Skipped))
	b = le.AppendUint64(b, uint64(p.Dropped))
	nvals := nvalsOf(p.Spec)
	groups := p.sortedGroups()
	b = le.AppendUint32(b, uint32(len(groups)))
	for _, g := range groups {
		b = le.AppendUint64(b, g.Key.Window)
		b = append(b, uint8(nvals))
		for i := 0; i < nvals; i++ {
			b = le.AppendUint64(b, g.Key.Vals[i])
		}
		b = le.AppendUint64(b, uint64(g.Count))
		b = le.AppendUint64(b, uint64(g.Sum))
		b = le.AppendUint64(b, uint64(g.Min))
		b = le.AppendUint64(b, uint64(g.Max))
		pairs := 0
		for _, n := range g.hist {
			if n != 0 {
				pairs++
			}
		}
		b = le.AppendUint16(b, uint16(pairs))
		for bucket, n := range g.hist {
			if n != 0 {
				b = append(b, uint8(bucket))
				b = le.AppendUint64(b, uint64(n))
			}
		}
	}
	return b
}

// reader is a bounds-checked cursor over partial bytes, the same shape
// the obs snapshot decoder uses.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrPartialCorrupt, r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// ParsePartial decodes a binary partial. Trailing bytes beyond the
// known sections are ignored, and newer versions are accepted by
// their version-1 prefix.
func ParsePartial(data []byte) (*Partial, error) {
	r := &reader{b: data}
	magic := r.take(4)
	if r.err != nil {
		return nil, r.err
	}
	if [4]byte(magic) != partialMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrPartialCorrupt)
	}
	if v := r.u16(); v < 1 {
		return nil, fmt.Errorf("%w: version %d", ErrPartialCorrupt, v)
	}
	p := &Partial{Groups: make(map[GroupKey]*Group)}
	p.Spec = string(r.take(int(r.u16())))
	p.MinTime = r.u64()
	p.MaxTime = r.u64()
	p.Records = int64(r.u64())
	p.Skipped = int64(r.u64())
	p.Dropped = int64(r.u64())
	ng := r.u32()
	if ng > maxPartialGroups {
		return nil, fmt.Errorf("%w: %d groups", ErrPartialCorrupt, ng)
	}
	for i := uint32(0); i < ng && r.err == nil; i++ {
		g := &Group{}
		g.Key.Window = r.u64()
		nvals := int(r.u8())
		if nvals > MaxBy {
			return nil, fmt.Errorf("%w: group %d has %d key values", ErrPartialCorrupt, i, nvals)
		}
		for j := 0; j < nvals; j++ {
			g.Key.Vals[j] = r.u64()
		}
		g.Count = int64(r.u64())
		g.Sum = int64(r.u64())
		g.Min = int64(r.u64())
		g.Max = int64(r.u64())
		pairs := int(r.u16())
		for j := 0; j < pairs && r.err == nil; j++ {
			bucket := int(r.u8())
			n := int64(r.u64())
			if bucket >= obs.NumBuckets {
				return nil, fmt.Errorf("%w: bucket %d", ErrPartialCorrupt, bucket)
			}
			if g.hist == nil {
				g.hist = make([]int64, obs.NumBuckets)
			}
			g.hist[bucket] = n
		}
		if r.err == nil {
			p.Groups[g.Key] = g
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}
