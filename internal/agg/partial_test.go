package agg

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// mustSpec parses a spec or fails the test.
func mustSpec(t testing.TB, line string) *Spec {
	t.Helper()
	s, err := ParseSpec(line)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", line, err)
	}
	return s
}

// randPartial folds n pseudo-random records into a fresh partial.
func randPartial(s *Spec, rng *rand.Rand, n int) *Partial {
	p := NewPartial(s)
	sketch := s.Fn.NeedsSketch()
	for i := 0; i < n; i++ {
		var key GroupKey
		if s.WindowMS > 0 {
			t := uint64(rng.Intn(10_000))
			key.Window = t - t%uint64(s.WindowMS)
			p.noteTime(t)
		} else {
			p.noteTime(uint64(rng.Intn(10_000)))
		}
		for j := range s.By {
			key.Vals[j] = uint64(rng.Intn(8))
		}
		p.Records++
		if !p.fold(key, uint64(rng.Intn(1<<20)), sketch, s.maxGroups()) {
			p.Dropped++
		}
	}
	return p
}

func TestPartialRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, line := range []string{
		"agg count by machine",
		"agg sum(msgLength) by machine,pid window 100ms",
		"agg p95(msgLength) by type",
		"top 10 pid by sum(msgLength)",
		"agg count", // zero-group edge: also round-trip an empty partial
	} {
		s := mustSpec(t, line)
		p := randPartial(s, rng, 200)
		if line == "agg count" {
			p = NewPartial(s)
		}
		enc := p.MarshalBinary()
		got, err := ParsePartial(enc)
		if err != nil {
			t.Fatalf("%q: ParsePartial: %v", line, err)
		}
		if !bytes.Equal(got.MarshalBinary(), enc) {
			t.Errorf("%q: re-encoding differs from original", line)
		}
		if got.Spec != p.Spec || got.Records != p.Records || len(got.Groups) != len(p.Groups) {
			t.Errorf("%q: decoded partial differs: %+v vs %+v", line, got, p)
		}
	}
}

func TestPartialTrailingBytesTolerated(t *testing.T) {
	s := mustSpec(t, "agg count by machine")
	p := randPartial(s, rand.New(rand.NewSource(1)), 50)
	enc := append(p.MarshalBinary(), 0xde, 0xad, 0xbe, 0xef)
	got, err := ParsePartial(enc)
	if err != nil {
		t.Fatalf("trailing bytes rejected: %v", err)
	}
	if got.Records != p.Records {
		t.Errorf("records = %d, want %d", got.Records, p.Records)
	}
}

func TestPartialCorrupt(t *testing.T) {
	s := mustSpec(t, "agg p95(msgLength) by machine")
	p := randPartial(s, rand.New(rand.NewSource(2)), 100)
	enc := p.MarshalBinary()

	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(enc); n++ {
		if _, err := ParsePartial(enc[:n]); err == nil {
			// A prefix that still frames completely (e.g. cut inside
			// trailing groups) decodes as truncated content — but the
			// group count header makes any cut mid-stream an error.
			t.Errorf("prefix of %d bytes decoded without error", n)
		}
	}

	bad := [][]byte{
		nil,
		[]byte("DPXX"),
		[]byte("DPAG\x00\x00"), // version 0
	}
	for _, b := range bad {
		if _, err := ParsePartial(b); !errors.Is(err, ErrPartialCorrupt) {
			t.Errorf("ParsePartial(%q) = %v, want ErrPartialCorrupt", b, err)
		}
	}

	// Absurd group count must be rejected before allocation.
	huge := append([]byte{}, enc[:4+2]...) // magic + version
	huge = append(huge, 0, 0)              // empty spec
	huge = append(huge, make([]byte, 8*5)...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff) // ngroups = 2^32-1
	if _, err := ParsePartial(huge); !errors.Is(err, ErrPartialCorrupt) {
		t.Errorf("huge group count: %v, want ErrPartialCorrupt", err)
	}
}

func TestMergeSpecMismatch(t *testing.T) {
	a := NewPartial(mustSpec(t, "agg count by machine"))
	b := NewPartial(mustSpec(t, "agg count by pid"))
	if err := a.Merge(b); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("Merge = %v, want ErrSpecMismatch", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("Merge(nil) = %v", err)
	}
}

func TestMergeNeverEvicts(t *testing.T) {
	s := mustSpec(t, "agg count by machine")
	s.MaxGroups = 4
	a := NewPartial(s)
	b := NewPartial(s)
	for i := 0; i < 4; i++ {
		a.fold(GroupKey{Vals: [MaxBy]uint64{uint64(i)}}, 1, false, s.maxGroups())
		b.fold(GroupKey{Vals: [MaxBy]uint64{uint64(10 + i)}}, 1, false, s.maxGroups())
	}
	// Each side is at its own cap; the merge must keep all 8 groups.
	if !a.fold(GroupKey{Vals: [MaxBy]uint64{99}}, 1, false, s.maxGroups()) {
		a.Dropped++
	} else {
		t.Fatal("fold past cap succeeded")
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 8 {
		t.Fatalf("merged groups = %d, want 8 (Merge must never evict)", len(a.Groups))
	}
	if a.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", a.Dropped)
	}
}
