package agg

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Row is one rendered group: the stable, machine-readable view of a
// merged partial under its spec (the -json output of dpquery and the
// table rows of the controller's aggregate query).
type Row struct {
	// Window is the window start (cpuTime ms); omitted when the spec
	// has no window.
	Window uint64 `json:"window,omitempty"`
	// Key maps each group-by field to its value, in spec order in the
	// text rendering.
	Key map[string]uint64 `json:"key,omitempty"`
	// Count is the records in the group; Value the operator's answer
	// (count, sum, min, max, rate/s, or the percentile bound).
	Count int64   `json:"count"`
	Value float64 `json:"value"`
}

// Result pairs a (merged) partial with its spec for rendering.
type Result struct {
	Spec    *Spec    `json:"-"`
	SpecStr string   `json:"spec"`
	Partial *Partial `json:"-"`
	Rows    []Row    `json:"rows"`
	// Records/Skipped/Dropped restate the partial's counters; Dropped
	// or TopK nonzero means the answer is approximate (docs/query.md,
	// accuracy notes).
	Records int64 `json:"records"`
	Skipped int64 `json:"skipped,omitempty"`
	Dropped int64 `json:"dropped,omitempty"`
}

// NewResult computes the rendered rows of a partial: each group's
// operator value, sorted — heaviest first with the top-k cut applied
// for a top spec, canonical key order otherwise.
func NewResult(s *Spec, p *Partial) *Result {
	r := &Result{
		Spec: s, SpecStr: s.String(), Partial: p,
		Records: p.Records, Skipped: p.Skipped, Dropped: p.Dropped,
	}
	groups := p.sortedGroups()
	rows := make([]Row, 0, len(groups))
	for _, g := range groups {
		row := Row{Window: g.Key.Window, Count: g.Count, Value: s.value(g, p)}
		if len(s.By) > 0 {
			row.Key = make(map[string]uint64, len(s.By))
			for i, f := range s.By {
				row.Key[f] = g.Key.Vals[i]
			}
		}
		rows = append(rows, row)
	}
	if s.TopK > 0 {
		// Heaviest first; the canonical key order of sortedGroups breaks
		// value ties, so the cut is deterministic.
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Value > rows[j].Value })
		if len(rows) > s.TopK {
			rows = rows[:s.TopK]
		}
	}
	r.Rows = rows
	return r
}

// value computes one group's answer under the spec's operator.
func (s *Spec) value(g *Group, p *Partial) float64 {
	switch s.Fn {
	case FnCount:
		return float64(g.Count)
	case FnSum:
		return float64(g.Sum)
	case FnMin:
		return float64(g.Min)
	case FnMax:
		return float64(g.Max)
	case FnRate:
		ms := s.WindowMS
		if ms == 0 {
			if p.MaxTime < p.MinTime {
				return 0
			}
			ms = int64(p.MaxTime-p.MinTime) + 1
		}
		return float64(g.Count) * 1000 / float64(ms)
	case FnP50, FnP95, FnP99:
		hv := g.HistValue()
		return float64(hv.Quantile(s.Fn.Quantile()))
	}
	return 0
}

// formatValue renders a value in the operator's natural precision:
// rates keep fractions, everything else is integral.
func (s *Spec) formatValue(v float64) string {
	if s.Fn == FnRate {
		return strconv.FormatFloat(v, 'f', 3, 64)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// Render writes the result as a readable table: the spec, one row per
// group (window and group-by columns first, then the value and the
// record count), and a summary line carrying the counters that mark a
// degraded or approximate answer.
func (r *Result) Render(w io.Writer) {
	s := r.Spec
	fmt.Fprintf(w, "%s\n", s.String())
	fmt.Fprintf(w, "%-12s", "")
	if s.WindowMS > 0 {
		fmt.Fprintf(w, "%12s ", "window")
	}
	for _, f := range s.By {
		fmt.Fprintf(w, "%12s ", f)
	}
	fmt.Fprintf(w, "%14s %10s\n", s.Fn.String(), "count")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s", "")
		if s.WindowMS > 0 {
			fmt.Fprintf(w, "%12d ", row.Window)
		}
		for _, f := range s.By {
			fmt.Fprintf(w, "%12d ", row.Key[f])
		}
		fmt.Fprintf(w, "%14s %10d\n", s.formatValue(row.Value), row.Count)
	}
	fmt.Fprintf(w, "groups=%d records=%d", len(r.Partial.Groups), r.Records)
	if r.Skipped > 0 {
		fmt.Fprintf(w, " skipped=%d", r.Skipped)
	}
	if r.Dropped > 0 {
		fmt.Fprintf(w, " dropped=%d (approximate: group cap hit)", r.Dropped)
	}
	fmt.Fprintf(w, "\n")
}
