// Package agg is the aggregation push-down subsystem: aggregate
// operators (count, sum, rate, min/max, approximate percentiles, and
// bounded top-k) grouped by any record field over cpuTime windows,
// evaluated per-segment on the machine that stores the data. A query
// that once shipped every matching record back to the caller instead
// ships one compact partial aggregate per machine; the partials merge
// associatively and commutatively (modeled on obs.Snapshot.Merge), so
// a cluster-wide "top-k talkers" answer moves kilobytes instead of
// gigabytes and the controller can fold per-machine replies in any
// order — including a degraded subset when a machine is partitioned.
//
// The aggregate specification extends the Figure 3.3–3.4 rule syntax:
// selection rules choose the records, one aggregate line shapes the
// answer:
//
//	agg count by machine window 1s
//	agg sum(msgLength) by machine,pid
//	agg p95(msgLength) by type
//	top 10 pid by sum(msgLength)
//
// docs/query.md gives the grammar and the accuracy bounds of the
// percentile and top-k sketches.
package agg

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Fn is an aggregate operator.
type Fn int

// Aggregate operators.
const (
	FnCount Fn = iota // records per group
	FnRate            // records per second of window (or of the observed span)
	FnSum             // sum of a field
	FnMin             // minimum of a field
	FnMax             // maximum of a field
	FnP50             // approximate median (log2-histogram sketch)
	FnP95             // approximate 95th percentile
	FnP99             // approximate 99th percentile
)

var fnNames = map[Fn]string{
	FnCount: "count", FnRate: "rate", FnSum: "sum", FnMin: "min",
	FnMax: "max", FnP50: "p50", FnP95: "p95", FnP99: "p99",
}

var fnByName = map[string]Fn{
	"count": FnCount, "rate": FnRate, "sum": FnSum, "min": FnMin,
	"max": FnMax, "p50": FnP50, "p95": FnP95, "p99": FnP99,
}

func (f Fn) String() string { return fnNames[f] }

// NeedsField reports whether the operator reads a value field.
func (f Fn) NeedsField() bool { return f != FnCount && f != FnRate }

// NeedsSketch reports whether the operator needs the per-group
// log2-histogram sketch.
func (f Fn) NeedsSketch() bool { return f == FnP50 || f == FnP95 || f == FnP99 }

// Quantile returns the quantile a percentile operator estimates, 0 for
// the others.
func (f Fn) Quantile() float64 {
	switch f {
	case FnP50:
		return 0.50
	case FnP95:
		return 0.95
	case FnP99:
		return 0.99
	}
	return 0
}

// Limits of the specification language.
const (
	// MaxBy is the most group-by fields one spec may name; group keys
	// are fixed-width arrays so partials merge without allocation games.
	MaxBy = 4
	// MaxTopK bounds a top-k request: a k past it is a record-shipping
	// query wearing an aggregate costume.
	MaxTopK = 1024
	// DefaultMaxGroups caps one partial's group table. The cap applies
	// only while a machine folds its own records (overflowing records
	// are counted, not attributed); Merge never evicts, so merging the
	// same partials in any order yields identical results.
	DefaultMaxGroups = 4096
)

// ErrSpec reports an unparseable or out-of-bounds aggregate
// specification.
var ErrSpec = errors.New("agg: bad aggregate spec")

// Spec is one compiled aggregate specification.
type Spec struct {
	Fn    Fn
	Field string   // value field of sum/min/max/pNN; empty for count/rate
	By    []string // group-by fields, in declaration order
	// WindowMS buckets records into cpuTime windows of this width
	// (milliseconds, the cpuTime unit); 0 means one unbounded window.
	WindowMS int64
	// TopK, when nonzero, keeps only the K heaviest groups (ranked by
	// the operator's value) in the rendered answer; partials still
	// carry their whole bounded group table so merges stay exact.
	TopK int
	// MaxGroups caps the per-partial group table; 0 selects
	// DefaultMaxGroups.
	MaxGroups int
}

// IsAggLine reports whether a query line is an aggregate specification
// rather than a selection rule — the dispatch the extended syntax
// hangs on ("agg ..." or "top ...").
func IsAggLine(line string) bool {
	f := strings.Fields(line)
	return len(f) > 0 && (f[0] == "agg" || f[0] == "top")
}

// ParseSpec parses one aggregate specification line:
//
//	agg <op>[(field)] [by f1[,f2...]] [window <dur>]
//	top <k> <field> by <op>[(field)] [window <dur>]
//
// Durations accept ms/s/m suffixes (bare numbers are milliseconds,
// cpuTime's unit). Errors wrap ErrSpec.
func ParseSpec(line string) (*Spec, error) {
	toks := strings.Fields(line)
	if len(toks) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrSpec)
	}
	s := &Spec{}
	switch toks[0] {
	case "agg":
		if len(toks) < 2 {
			return nil, fmt.Errorf("%w: agg needs an operator", ErrSpec)
		}
		if err := s.parseOp(toks[1]); err != nil {
			return nil, err
		}
		toks = toks[2:]
	case "top":
		if len(toks) < 4 {
			return nil, fmt.Errorf("%w: top needs 'top k field by op'", ErrSpec)
		}
		k, err := strconv.Atoi(toks[1])
		if err != nil || k < 1 {
			return nil, fmt.Errorf("%w: bad top-k count %q", ErrSpec, toks[1])
		}
		if k > MaxTopK {
			return nil, fmt.Errorf("%w: top-k %d exceeds limit %d", ErrSpec, k, MaxTopK)
		}
		if !isIdent(toks[2]) {
			return nil, fmt.Errorf("%w: bad top group field %q", ErrSpec, toks[2])
		}
		if toks[3] != "by" {
			return nil, fmt.Errorf("%w: expected 'by' after top field, got %q", ErrSpec, toks[3])
		}
		if len(toks) < 5 {
			return nil, fmt.Errorf("%w: top needs a ranking operator", ErrSpec)
		}
		s.TopK = k
		s.By = []string{toks[2]}
		if err := s.parseOp(toks[4]); err != nil {
			return nil, err
		}
		toks = toks[5:]
	default:
		return nil, fmt.Errorf("%w: expected 'agg' or 'top', got %q", ErrSpec, toks[0])
	}

	for len(toks) > 0 {
		switch toks[0] {
		case "by":
			if s.TopK > 0 {
				return nil, fmt.Errorf("%w: top already names its group field", ErrSpec)
			}
			if len(s.By) > 0 {
				return nil, fmt.Errorf("%w: duplicate by clause", ErrSpec)
			}
			if len(toks) < 2 {
				return nil, fmt.Errorf("%w: by needs field names", ErrSpec)
			}
			for _, f := range strings.Split(toks[1], ",") {
				if !isIdent(f) {
					return nil, fmt.Errorf("%w: bad group field %q", ErrSpec, f)
				}
				s.By = append(s.By, f)
			}
			if len(s.By) > MaxBy {
				return nil, fmt.Errorf("%w: %d group fields exceeds limit %d", ErrSpec, len(s.By), MaxBy)
			}
			toks = toks[2:]
		case "window":
			if s.WindowMS != 0 {
				return nil, fmt.Errorf("%w: duplicate window clause", ErrSpec)
			}
			if len(toks) < 2 {
				return nil, fmt.Errorf("%w: window needs a duration", ErrSpec)
			}
			ms, err := parseWindow(toks[1])
			if err != nil {
				return nil, err
			}
			s.WindowMS = ms
			toks = toks[2:]
		default:
			return nil, fmt.Errorf("%w: unexpected token %q", ErrSpec, toks[0])
		}
	}
	return s, nil
}

// parseOp parses "count", "rate", or "fn(field)".
func (s *Spec) parseOp(tok string) error {
	open := strings.IndexByte(tok, '(')
	if open < 0 {
		fn, ok := fnByName[tok]
		if !ok {
			return fmt.Errorf("%w: unknown operator %q", ErrSpec, tok)
		}
		if fn.NeedsField() {
			return fmt.Errorf("%w: %s needs a field argument, e.g. %s(msgLength)", ErrSpec, tok, tok)
		}
		s.Fn = fn
		return nil
	}
	if !strings.HasSuffix(tok, ")") {
		return fmt.Errorf("%w: unclosed operator argument in %q", ErrSpec, tok)
	}
	fn, ok := fnByName[tok[:open]]
	if !ok {
		return fmt.Errorf("%w: unknown operator %q", ErrSpec, tok[:open])
	}
	field := tok[open+1 : len(tok)-1]
	if !fn.NeedsField() {
		return fmt.Errorf("%w: %s takes no field argument", ErrSpec, fn)
	}
	if !isIdent(field) {
		return fmt.Errorf("%w: bad field %q in %q", ErrSpec, field, tok)
	}
	s.Fn = fn
	s.Field = field
	return nil
}

// parseWindow parses a window duration into milliseconds. A bare
// number is milliseconds; ms/s/m suffixes scale. Zero-width and
// negative windows are rejected — a window must hold time.
func parseWindow(tok string) (int64, error) {
	scale := int64(1)
	digits := tok
	switch {
	case strings.HasSuffix(tok, "ms"):
		digits = tok[:len(tok)-2]
	case strings.HasSuffix(tok, "s"):
		digits, scale = tok[:len(tok)-1], 1000
	case strings.HasSuffix(tok, "m"):
		digits, scale = tok[:len(tok)-1], 60_000
	}
	v, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad window %q", ErrSpec, tok)
	}
	if v <= 0 || v > (1<<40)/scale {
		return 0, fmt.Errorf("%w: window %q out of range", ErrSpec, tok)
	}
	return v * scale, nil
}

// isIdent matches field names: letter-initial identifiers, the same
// alphabet rule the selection-rule parser applies to field references.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// String renders the spec canonically; ParseSpec(s.String()) yields an
// equal spec, and Merge uses the canonical form to refuse mixing
// partials of different shapes.
func (s *Spec) String() string {
	var b strings.Builder
	op := s.Fn.String()
	if s.Fn.NeedsField() {
		op += "(" + s.Field + ")"
	}
	if s.TopK > 0 {
		fmt.Fprintf(&b, "top %d %s by %s", s.TopK, s.By[0], op)
	} else {
		fmt.Fprintf(&b, "agg %s", op)
		if len(s.By) > 0 {
			fmt.Fprintf(&b, " by %s", strings.Join(s.By, ","))
		}
	}
	if s.WindowMS > 0 {
		fmt.Fprintf(&b, " window %dms", s.WindowMS)
	}
	return b.String()
}

func (s *Spec) maxGroups() int {
	if s.MaxGroups > 0 {
		return s.MaxGroups
	}
	return DefaultMaxGroups
}
