package agg

import (
	"errors"
	"testing"
)

func TestParseSpecValid(t *testing.T) {
	cases := []struct {
		line string
		want Spec
	}{
		{"agg count", Spec{Fn: FnCount}},
		{"agg count by machine", Spec{Fn: FnCount, By: []string{"machine"}}},
		{"agg count by machine window 1s", Spec{Fn: FnCount, By: []string{"machine"}, WindowMS: 1000}},
		{"agg rate by machine window 500ms", Spec{Fn: FnRate, By: []string{"machine"}, WindowMS: 500}},
		{"agg rate window 2m", Spec{Fn: FnRate, WindowMS: 120_000}},
		{"agg sum(msgLength) by machine,pid", Spec{Fn: FnSum, Field: "msgLength", By: []string{"machine", "pid"}}},
		{"agg min(msgLength)", Spec{Fn: FnMin, Field: "msgLength"}},
		{"agg max(msgLength) by type", Spec{Fn: FnMax, Field: "msgLength", By: []string{"type"}}},
		{"agg p50(msgLength) by machine", Spec{Fn: FnP50, Field: "msgLength", By: []string{"machine"}}},
		{"agg p95(msgLength)", Spec{Fn: FnP95, Field: "msgLength"}},
		{"agg p99(msgLength) window 250", Spec{Fn: FnP99, Field: "msgLength", WindowMS: 250}},
		{"top 10 pid by sum(msgLength)", Spec{Fn: FnSum, Field: "msgLength", By: []string{"pid"}, TopK: 10}},
		{"top 3 machine by count window 1s", Spec{Fn: FnCount, By: []string{"machine"}, TopK: 3, WindowMS: 1000}},
		{"  agg   count   by   machine  ", Spec{Fn: FnCount, By: []string{"machine"}}},
	}
	for _, tc := range cases {
		s, err := ParseSpec(tc.line)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.line, err)
			continue
		}
		if s.Fn != tc.want.Fn || s.Field != tc.want.Field || s.WindowMS != tc.want.WindowMS || s.TopK != tc.want.TopK {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.line, s, tc.want)
		}
		if len(s.By) != len(tc.want.By) {
			t.Errorf("ParseSpec(%q) by = %v, want %v", tc.line, s.By, tc.want.By)
			continue
		}
		for i := range s.By {
			if s.By[i] != tc.want.By[i] {
				t.Errorf("ParseSpec(%q) by = %v, want %v", tc.line, s.By, tc.want.By)
			}
		}
	}
}

func TestParseSpecInvalid(t *testing.T) {
	lines := []string{
		"",
		"agg",
		"select count",
		"agg bogus",
		"agg count(pid)",                        // count takes no field
		"agg rate(pid)",                         // rate takes no field
		"agg sum",                               // sum needs a field
		"agg sum(",                              // unclosed
		"agg sum(msgLength",                     // unclosed
		"agg sum()",                             // empty field
		"agg sum(9bad)",                         // bad identifier
		"agg count by",                          // truncated by
		"agg count by 9bad",                     // bad group field
		"agg count by a,b,c,d,e",                // > MaxBy
		"agg count by machine by pid",           // duplicate by
		"agg count window",                      // truncated window
		"agg count window 0",                    // zero-width
		"agg count window 0s",                   // zero-width
		"agg count window -5ms",                 // negative
		"agg count window forever",              // not a number
		"agg count window 99999999999999999999", // overflow
		"agg count window 1s window 2s",         // duplicate window
		"agg count extra",                       // trailing junk
		"top",                                   // truncated top
		"top 10",                                // truncated top
		"top 10 pid",                            // missing by
		"top 10 pid by",                         // missing op
		"top 0 pid by count",                    // k < 1
		"top -3 pid by count",                   // negative k
		"top 99999 pid by count",                // k > MaxTopK
		"top x pid by count",                    // non-numeric k
		"top 10 9bad by count",                  // bad group field
		"top 10 pid from count",                 // wrong keyword
		"top 10 pid by count by machine",        // top already names its group
	}
	for _, line := range lines {
		if _, err := ParseSpec(line); !errors.Is(err, ErrSpec) {
			t.Errorf("ParseSpec(%q) = %v, want ErrSpec", line, err)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	lines := []string{
		"agg count",
		"agg count by machine window 1s",
		"agg sum(msgLength) by machine,pid",
		"agg p95(msgLength) by type window 250ms",
		"top 10 pid by sum(msgLength)",
		"top 5 machine by count window 2s",
	}
	for _, line := range lines {
		s, err := ParseSpec(line)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", line, err)
		}
		s2, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", s.String(), line, err)
		}
		if s.String() != s2.String() {
			t.Errorf("round trip: %q -> %q -> %q", line, s.String(), s2.String())
		}
	}
}

func TestIsAggLine(t *testing.T) {
	cases := map[string]bool{
		"agg count by machine": true,
		"top 10 pid by count":  true,
		"  agg count":          true,
		"machine=3,type=1":     false,
		"aggregate count":      false,
		"":                     false,
	}
	for line, want := range cases {
		if got := IsAggLine(line); got != want {
			t.Errorf("IsAggLine(%q) = %v, want %v", line, got, want)
		}
	}
}
