// Package analysis implements the third stage of the measurement
// model: "the extraction of information from the collected data"
// (section 2.1). The paper's section 3.3 names the analyses performed
// with the tool — communications statistics, measurement of
// parallelism, and structural studies — and section 4.1 describes two
// more analysis tasks: recovering message recipients from the sockets
// paired at connection establishment, and deducing the global ordering
// of events from the constraint that a message must be sent before it
// is received.
package analysis

import (
	"fmt"

	"dpm/internal/meter"
	"dpm/internal/trace"
)

// ProcKey identifies a process cluster-wide: the machine id from the
// meter header plus the process id.
type ProcKey struct {
	Machine int
	PID     int
}

func (k ProcKey) String() string { return fmt.Sprintf("m%d/p%d", k.Machine, k.PID) }

func keyOf(e *trace.Event) ProcKey { return ProcKey{Machine: e.Machine, PID: e.PID()} }

// ProcComm is the communication profile of one process.
type ProcComm struct {
	Sends      int
	Recvs      int
	RecvCalls  int
	BytesSent  int64
	BytesRecvd int64
	Sockets    int // sockets created
	Forks      int
}

// CommStats summarizes the communication activity in a trace.
type CommStats struct {
	Events     int
	Sends      int
	Recvs      int
	BytesSent  int64
	BytesRecvd int64
	PerProcess map[ProcKey]*ProcComm
	// SizeHist buckets message sizes by power of two: bucket k counts
	// messages with 2^(k-1) < size <= 2^k (bucket 0 counts empty
	// messages).
	SizeHist map[int]int
}

// sizeBucket returns the power-of-two histogram bucket for a size.
func sizeBucket(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// Comm computes communication statistics over a trace.
func Comm(events []trace.Event) *CommStats {
	st := &CommStats{
		PerProcess: make(map[ProcKey]*ProcComm),
		SizeHist:   make(map[int]int),
	}
	proc := func(e *trace.Event) *ProcComm {
		k := keyOf(e)
		pc := st.PerProcess[k]
		if pc == nil {
			pc = &ProcComm{}
			st.PerProcess[k] = pc
		}
		return pc
	}
	for i := range events {
		e := &events[i]
		st.Events++
		switch e.Type {
		case meter.EvSend:
			st.Sends++
			st.BytesSent += int64(e.MsgLength())
			st.SizeHist[sizeBucket(e.MsgLength())]++
			p := proc(e)
			p.Sends++
			p.BytesSent += int64(e.MsgLength())
		case meter.EvRecv:
			st.Recvs++
			st.BytesRecvd += int64(e.MsgLength())
			p := proc(e)
			p.Recvs++
			p.BytesRecvd += int64(e.MsgLength())
		case meter.EvRecvCall:
			proc(e).RecvCalls++
		case meter.EvSocket:
			proc(e).Sockets++
		case meter.EvFork:
			proc(e).Forks++
		}
	}
	return st
}

// Connection is a reconstructed stream connection: the pairing of the
// socket that initiated it with the connection socket the accept
// created (section 3.1).
type Connection struct {
	Client     ProcKey
	ClientSock uint32
	Server     ProcKey
	ServerSock uint32 // the new connection socket from the accept event
	ListenSock uint32
	ServerName meter.Name // name bound to the accepting socket
	ClientName meter.Name // name bound to the connecting socket (may be zero)
	ConnectSeq int
	AcceptSeq  int
}

// Connections reconstructs connections by matching connect events to
// accept events: an accept's sockName is the listener's bound name, so
// it pairs with connects whose peerName equals it; the accept's
// peerName (the connector's name) disambiguates among clients when
// present, with FIFO order as the tiebreak.
// Because meter messages are buffered in the kernel, the connect and
// accept records of one connection can arrive at the filter in either
// order; matching therefore collects all of both first.
func Connections(events []trace.Event) []Connection {
	var connects, accepts []int
	for i := range events {
		switch events[i].Type {
		case meter.EvConnect:
			connects = append(connects, i)
		case meter.EvAccept:
			accepts = append(accepts, i)
		}
	}
	used := make(map[int]bool)
	var conns []Connection
	for _, ai := range accepts {
		e := &events[ai]
		listenerName := e.Name("sockName")
		acceptPeer := e.Name("peerName")
		best := -1
		for _, ci := range connects {
			if used[ci] {
				continue
			}
			c := &events[ci]
			if c.Name("peerName") != listenerName {
				continue
			}
			// Prefer an exact client-name match.
			if !acceptPeer.IsZero() && c.Name("sockName") == acceptPeer {
				best = ci
				break
			}
			if best == -1 {
				best = ci
			}
		}
		if best == -1 {
			continue
		}
		used[best] = true
		c := &events[best]
		conns = append(conns, Connection{
			Client:     keyOf(c),
			ClientSock: c.Sock(),
			Server:     keyOf(e),
			ServerSock: uint32(e.Fields["newSock"]),
			ListenSock: e.Sock(),
			ServerName: listenerName,
			ClientName: c.Name("sockName"),
			ConnectSeq: c.Seq,
			AcceptSeq:  e.Seq,
		})
	}
	return conns
}

// endpoint identifies one socket of one process.
type endpoint struct {
	proc ProcKey
	sock uint32
}

// RecoverRecipients maps send and receive events whose name field is
// empty — writes and reads across connections — to the process at the
// other end of the connection. "By examining the sockets that were
// paired when the connection was created, the recipient information
// can be recovered. This is one of the tasks of the analysis
// programs" (section 4.1). The result maps event Seq to the peer
// process.
func RecoverRecipients(events []trace.Event) map[int]ProcKey {
	conns := Connections(events)
	peerOf := make(map[endpoint]ProcKey)
	for _, c := range conns {
		peerOf[endpoint{c.Client, c.ClientSock}] = c.Server
		peerOf[endpoint{c.Server, c.ServerSock}] = c.Client
	}
	out := make(map[int]ProcKey)
	for i := range events {
		e := &events[i]
		var nameField string
		switch e.Type {
		case meter.EvSend:
			nameField = "destName"
		case meter.EvRecv:
			nameField = "sourceName"
		default:
			continue
		}
		if !e.Name(nameField).IsZero() {
			continue
		}
		if peer, ok := peerOf[endpoint{keyOf(e), e.Sock()}]; ok {
			out[e.Seq] = peer
		}
	}
	return out
}
