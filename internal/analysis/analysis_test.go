package analysis

import (
	"testing"

	"dpm/internal/meter"
	"dpm/internal/trace"
)

// tb builds synthetic traces for analysis tests.
type tb struct {
	events []trace.Event
}

func (b *tb) add(typ meter.Type, machine, pid int, cpu int64, fields map[string]uint64, names map[string]meter.Name) int {
	e := trace.Event{
		Seq:     len(b.events),
		Type:    typ,
		Event:   typ.String(),
		Machine: machine,
		CPUTime: cpu,
		Fields:  map[string]uint64{"pid": uint64(pid)},
		Names:   map[string]meter.Name{},
	}
	for k, v := range fields {
		e.Fields[k] = v
	}
	for k, v := range names {
		e.Names[k] = v
	}
	b.events = append(b.events, e)
	return e.Seq
}

func (b *tb) send(machine, pid int, cpu int64, sock uint32, n int, dest meter.Name) int {
	return b.add(meter.EvSend, machine, pid, cpu,
		map[string]uint64{"sock": uint64(sock), "msgLength": uint64(n)},
		map[string]meter.Name{"destName": dest})
}

func (b *tb) recv(machine, pid int, cpu int64, sock uint32, n int, src meter.Name) int {
	return b.add(meter.EvRecv, machine, pid, cpu,
		map[string]uint64{"sock": uint64(sock), "msgLength": uint64(n)},
		map[string]meter.Name{"sourceName": src})
}

func (b *tb) connect(machine, pid int, cpu int64, sock uint32, own, peer meter.Name) int {
	return b.add(meter.EvConnect, machine, pid, cpu,
		map[string]uint64{"sock": uint64(sock)},
		map[string]meter.Name{"sockName": own, "peerName": peer})
}

func (b *tb) accept(machine, pid int, cpu int64, sock, newSock uint32, own, peer meter.Name) int {
	return b.add(meter.EvAccept, machine, pid, cpu,
		map[string]uint64{"sock": uint64(sock), "newSock": uint64(newSock)},
		map[string]meter.Name{"sockName": own, "peerName": peer})
}

// connScenario: a client on machine 1 connects to a server on machine
// 2 and sends 5 bytes over the connection.
func connScenario() *tb {
	b := &tb{}
	srvName := meter.InetName(2, 6000)
	cliName := meter.InetName(1, 1024)
	b.connect(1, 10, 5, 5, cliName, srvName)     // 0
	b.accept(2, 20, 6, 7, 8, srvName, cliName)   // 1
	b.send(1, 10, 7, 5, 5, meter.Name{})         // 2: write on connection, no name
	b.recv(2, 20, 8, 8, 5, meter.Name{})         // 3: read on connection, no name
	b.add(meter.EvTermProc, 1, 10, 9, nil, nil)  // 4
	b.add(meter.EvTermProc, 2, 20, 10, nil, nil) // 5
	return b
}

func TestCommStats(t *testing.T) {
	b := connScenario()
	st := Comm(b.events)
	if st.Events != 6 || st.Sends != 1 || st.Recvs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesSent != 5 || st.BytesRecvd != 5 {
		t.Fatalf("bytes = %d/%d", st.BytesSent, st.BytesRecvd)
	}
	client := st.PerProcess[ProcKey{1, 10}]
	server := st.PerProcess[ProcKey{2, 20}]
	if client == nil || server == nil {
		t.Fatal("missing per-process stats")
	}
	if client.Sends != 1 || client.BytesSent != 5 || server.Recvs != 1 {
		t.Fatalf("client=%+v server=%+v", client, server)
	}
}

func TestSizeHistogram(t *testing.T) {
	b := &tb{}
	for _, n := range []int{0, 1, 2, 3, 4, 1000} {
		b.send(1, 1, 0, 1, n, meter.InetName(2, 1))
	}
	st := Comm(b.events)
	// buckets: size 0->0, 1->0, 2->1, 3->2, 4->2, 1000->10
	want := map[int]int{0: 2, 1: 1, 2: 2, 10: 1}
	for k, v := range want {
		if st.SizeHist[k] != v {
			t.Fatalf("SizeHist = %v, want %v", st.SizeHist, want)
		}
	}
}

func TestConnections(t *testing.T) {
	b := connScenario()
	conns := Connections(b.events)
	if len(conns) != 1 {
		t.Fatalf("found %d connections", len(conns))
	}
	c := conns[0]
	if c.Client != (ProcKey{1, 10}) || c.ClientSock != 5 {
		t.Fatalf("client side = %+v", c)
	}
	if c.Server != (ProcKey{2, 20}) || c.ServerSock != 8 || c.ListenSock != 7 {
		t.Fatalf("server side = %+v", c)
	}
	if c.ConnectSeq != 0 || c.AcceptSeq != 1 {
		t.Fatalf("seqs = %d, %d", c.ConnectSeq, c.AcceptSeq)
	}
}

func TestConnectionsDisambiguateByClientName(t *testing.T) {
	// Two clients race to the same listener; accept events carry the
	// connector's name and must pair correctly even out of order.
	b := &tb{}
	srv := meter.InetName(3, 6000)
	c1 := meter.InetName(1, 1111)
	c2 := meter.InetName(2, 2222)
	b.connect(1, 10, 0, 5, c1, srv) // 0
	b.connect(2, 20, 0, 6, c2, srv) // 1
	// Accepts arrive in reverse order.
	b.accept(3, 30, 1, 7, 9, srv, c2)  // 2
	b.accept(3, 30, 2, 7, 10, srv, c1) // 3
	conns := Connections(b.events)
	if len(conns) != 2 {
		t.Fatalf("found %d connections", len(conns))
	}
	for _, c := range conns {
		switch c.ServerSock {
		case 9:
			if c.Client != (ProcKey{2, 20}) {
				t.Fatalf("sock 9 client = %v", c.Client)
			}
		case 10:
			if c.Client != (ProcKey{1, 10}) {
				t.Fatalf("sock 10 client = %v", c.Client)
			}
		default:
			t.Fatalf("unexpected server sock %d", c.ServerSock)
		}
	}
}

func TestRecoverRecipients(t *testing.T) {
	b := connScenario()
	rec := RecoverRecipients(b.events)
	if got := rec[2]; got != (ProcKey{2, 20}) {
		t.Fatalf("send recipient = %v", got)
	}
	if got := rec[3]; got != (ProcKey{1, 10}) {
		t.Fatalf("recv source = %v", got)
	}
	// Events with explicit names need no recovery.
	if _, ok := rec[0]; ok {
		t.Fatal("connect event in recovery map")
	}
}

func TestRecoverRecipientsBidirectional(t *testing.T) {
	b := connScenario()
	// Server replies over the same connection.
	reply := b.send(2, 20, 11, 8, 3, meter.Name{})
	got := RecoverRecipients(b.events)
	if got[reply] != (ProcKey{1, 10}) {
		t.Fatalf("reply recipient = %v", got[reply])
	}
}
