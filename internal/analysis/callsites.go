package analysis

import (
	"sort"

	"dpm/internal/trace"
)

// Every meter message body carries "the address of the instruction
// that called the system routine" (section 4.1) — the pc field. It
// exists so analyses can attribute communication to program locations:
// which call sites send the traffic, which block.

// CallSite aggregates the events generated from one program location
// of one process.
type CallSite struct {
	Proc   ProcKey
	PC     uint64
	Events int
	// ByType counts events per event name at this site.
	ByType map[string]int
	// Bytes sums message lengths of send/receive events at this site.
	Bytes int64
}

// CallSites groups a trace's events by (process, pc) and returns the
// sites sorted by event count, busiest first.
func CallSites(events []trace.Event) []CallSite {
	type key struct {
		proc ProcKey
		pc   uint64
	}
	sites := make(map[key]*CallSite)
	for i := range events {
		e := &events[i]
		pc, ok := e.Fields["pc"]
		if !ok {
			continue
		}
		k := key{keyOf(e), pc}
		s := sites[k]
		if s == nil {
			s = &CallSite{Proc: k.proc, PC: pc, ByType: make(map[string]int)}
			sites[k] = s
		}
		s.Events++
		s.ByType[e.Event]++
		s.Bytes += int64(e.MsgLength())
	}
	out := make([]CallSite, 0, len(sites))
	for _, s := range sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Events != out[j].Events {
			return out[i].Events > out[j].Events
		}
		if out[i].Proc != out[j].Proc {
			return less(out[i].Proc, out[j].Proc)
		}
		return out[i].PC < out[j].PC
	})
	return out
}
