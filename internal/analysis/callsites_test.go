package analysis

import (
	"testing"

	"dpm/internal/meter"
	"dpm/internal/trace"
)

func pcEvent(machine, pid int, pc uint64, typ meter.Type, length int) trace.Event {
	return trace.Event{
		Type: typ, Event: typ.String(), Machine: machine,
		Fields: map[string]uint64{"pid": uint64(pid), "pc": pc, "msgLength": uint64(length)},
		Names:  map[string]meter.Name{},
	}
}

func TestCallSitesGrouping(t *testing.T) {
	events := []trace.Event{
		pcEvent(1, 10, 0x100, meter.EvSend, 64),
		pcEvent(1, 10, 0x100, meter.EvSend, 64),
		pcEvent(1, 10, 0x100, meter.EvSend, 64),
		pcEvent(1, 10, 0x200, meter.EvRecv, 32),
		pcEvent(2, 20, 0x100, meter.EvSend, 8), // same pc, other process
	}
	sites := CallSites(events)
	if len(sites) != 3 {
		t.Fatalf("sites = %+v", sites)
	}
	// Busiest first.
	top := sites[0]
	if top.Proc != (ProcKey{1, 10}) || top.PC != 0x100 || top.Events != 3 || top.Bytes != 192 {
		t.Fatalf("top site = %+v", top)
	}
	if top.ByType["SEND"] != 3 {
		t.Fatalf("ByType = %v", top.ByType)
	}
}

func TestCallSitesSkipsEventsWithoutPC(t *testing.T) {
	e := pcEvent(1, 10, 0x100, meter.EvSend, 1)
	delete(e.Fields, "pc")
	if sites := CallSites([]trace.Event{e}); len(sites) != 0 {
		t.Fatalf("sites = %+v", sites)
	}
}

func TestCallSitesDeterministicOrder(t *testing.T) {
	events := []trace.Event{
		pcEvent(2, 20, 0x300, meter.EvSend, 1),
		pcEvent(1, 10, 0x100, meter.EvSend, 1),
		pcEvent(1, 10, 0x200, meter.EvSend, 1),
	}
	a := CallSites(events)
	b := CallSites(events)
	for i := range a {
		if a[i].Proc != b[i].Proc || a[i].PC != b[i].PC {
			t.Fatal("nondeterministic order")
		}
	}
	// Equal counts: ordered by process then pc.
	if a[0].Proc != (ProcKey{1, 10}) || a[0].PC != 0x100 {
		t.Fatalf("order = %+v", a)
	}
}
