package analysis

import (
	"os"
	"strings"
	"testing"

	"dpm/internal/trace"
)

// TestGoldenSessionTrace anchors the whole analysis stack against a
// checked-in trace produced by the Appendix B session: any behavioral
// drift in parsing, matching, recovery, or ordering shows up here.
func TestGoldenSessionTrace(t *testing.T) {
	data, err := os.ReadFile("testdata/session.trace")
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ParseLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}

	conns := Connections(events)
	if len(conns) != 1 {
		t.Fatalf("connections = %+v", conns)
	}
	c := conns[0]
	if c.Client != (ProcKey{1, 2}) || c.Server != (ProcKey{2, 2}) || c.ServerSock != 9 {
		t.Fatalf("connection = %+v", c)
	}

	matches := MatchMessages(events, nil)
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}

	rec := RecoverRecipients(events)
	if len(rec) != 4 {
		t.Fatalf("recovered = %v", rec)
	}

	order, err := HappenedBefore(events, matches)
	if err != nil {
		t.Fatal(err)
	}
	if got := order.OrderedFraction(); got < 0.93 || got > 0.94 {
		t.Fatalf("ordered fraction = %v, want ~0.933", got)
	}

	report, err := Report(events, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"trace: 6 event records",
		"m1/p2 (client)",
		"m2/p2 (server)",
		"matched messages:      2",
		"recovered recipients:  4",
		"ordered event pairs:   93.3%",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report lacks %q:\n%s", want, report)
		}
	}

	if diags := Validate(events, nil); countSeverity(diags, Error) != 0 {
		t.Fatalf("golden trace has errors: %v", diags)
	}
}

// TestGoldenTSPTrace anchors the analyses against a frozen trace of a
// real distributed TSP run (master on red, workers on green and blue,
// all events flagged): invariants that must hold for any valid run of
// that workload.
func TestGoldenTSPTrace(t *testing.T) {
	data, err := os.ReadFile("testdata/tsp.trace")
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ParseLog(data)
	if err != nil {
		t.Fatal(err)
	}

	// Three processes: the master accepts two worker connections.
	conns := Connections(events)
	if len(conns) != 2 {
		t.Fatalf("connections = %d", len(conns))
	}
	for _, c := range conns {
		if c.Server.Machine != 1 {
			t.Fatalf("master not on machine 1: %+v", c)
		}
	}

	g := Structure(events, nil)
	if len(g.Procs) != 3 {
		t.Fatalf("procs = %v", g.Procs)
	}
	masters, clients := 0, 0
	for _, r := range g.Roles {
		switch r {
		case RoleServer:
			masters++
		case RoleClient:
			clients++
		}
	}
	if masters != 1 || clients != 2 {
		t.Fatalf("roles = %v", g.Roles)
	}

	// Stream conservation and consistency hold.
	if diags := Validate(events, nil); countSeverity(diags, Error) != 0 {
		t.Fatalf("trace has errors: %v", diags)
	}
	matches := MatchMessages(events, nil)
	order, err := HappenedBefore(events, matches)
	if err != nil {
		t.Fatal(err)
	}
	if frac := order.OrderedFraction(); frac < 0.6 {
		t.Fatalf("ordered fraction = %v", frac)
	}
	// Three terminations, all final per process.
	term := 0
	for _, e := range events {
		if e.Event == "TERMPROC" {
			term++
		}
	}
	if term != 3 {
		t.Fatalf("terminations = %d", term)
	}
	par := MeasureParallelism(events)
	if par.Processes != 3 || par.TotalCPUMillis == 0 {
		t.Fatalf("parallelism = %+v", par)
	}
}
