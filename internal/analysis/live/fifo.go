package live

// fifo is a head-indexed queue over a slice: pops advance an index
// instead of reslicing, and the buffer compacts once the dead prefix
// dominates, so a warmed-up queue pushes and pops with no allocation —
// the property the tap path's alloc gate depends on.
type fifo[T any] struct {
	buf  []T
	head int
}

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

// peek returns the oldest entry; only valid when len() > 0.
func (f *fifo[T]) peek() *T { return &f.buf[f.head] }

func (f *fifo[T]) push(v T) { f.buf = append(f.buf, v) }

func (f *fifo[T]) pop() T {
	v := f.buf[f.head]
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	} else if f.head >= 32 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return v
}

// firstMatch returns the index (relative to the head) of the oldest
// entry satisfying fn, scanning at most limit entries; -1 when none.
func (f *fifo[T]) firstMatch(limit int, fn func(*T) bool) int {
	n := f.len()
	if n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		if fn(&f.buf[f.head+i]) {
			return i
		}
	}
	return -1
}

// remove deletes the i'th entry (relative to the head), preserving
// order.
func (f *fifo[T]) remove(i int) {
	idx := f.head + i
	f.buf = append(f.buf[:idx], f.buf[idx+1:]...)
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
}

// extract walks the queue oldest-first, calling fn on each entry;
// entries for which fn returns true are removed (fn may consume them),
// the rest keep their order.
func (f *fifo[T]) extract(fn func(*T) bool) {
	w := f.head
	for i := f.head; i < len(f.buf); i++ {
		if fn(&f.buf[i]) {
			continue
		}
		f.buf[w] = f.buf[i]
		w++
	}
	f.buf = f.buf[:w]
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
}

type (
	fifoS = fifo[span]
	fifoO = fifo[orphan]
	fifoM = fifo[flowMsg]
)
