// Package live computes the paper's §5 analyses incrementally, on the
// meter stream, as it flows through the filter pipeline — the
// streaming counterpart of internal/analysis, which runs the same
// analyses offline over completed trace files. A Collector attaches to
// a filter through the record-tap seam (filter.TapSource) and
// maintains three operators:
//
//   - a live communication matrix: per-process send/receive counts and
//     per-(src,dst)-machine message/byte counts with power-of-two
//     size-bucket histograms, matching analysis.Comm's bucketing;
//   - a live parallelism curve: per-process [first,last] cpuTime
//     intervals and final procTime readings, from which the
//     time-in-k-processes histogram and speedup derive exactly as in
//     analysis.MeasureParallelism, plus a concurrent-process gauge;
//   - online send/receive matching: connect/accept pairing, per-stream
//     byte-offset matching and per-machine-pair datagram FIFOs, all
//     under a bounded reordering window (match.go) — entries that
//     outlive the window age out into an unmatched counter instead of
//     accumulating, which is what lets the operator run forever where
//     offline MatchMessages assumes a complete sorted trace.
//
// Operator state is small, per-node, and exported as versioned
// sections of obs snapshots (sections.go), so the existing stats
// plumbing — daemon TStatsReq, controller merge, dpmon -watch, dpstat
// — renders cluster-wide live analysis with no new wire types.
//
// The tap path is allocation-conscious and stays off the ingest
// threads: each pipeline worker's Tap copies kept records into a
// fixed-size entry buffer (no allocation, no lock), and at each chunk
// flush the full buffer is swapped against an empty one from a small
// preallocated pool and queued for the collector's drainer goroutine,
// which folds it into the operators in publish order. The ingest
// thread pays only the swap — two slice headers under a short lock —
// so the operators' map lookups and matcher work never slow the
// filter. When the pool is exhausted (the drainer has fallen behind)
// the flush applies inline instead, trading latency for bounded
// memory; nothing is ever dropped. Snapshot captures drain the queue
// first, so an exported section always reflects every flushed record.
// Host addresses map to machine ids by identity, the same default as
// analysis.MatchOptions.
package live

import (
	"math/bits"
	"sync"

	"dpm/internal/filter"
	"dpm/internal/meter"
	"dpm/internal/obs"
)

// Config tunes a Collector. The zero value selects the defaults.
type Config struct {
	// Obs, when non-nil, is where the collector registers its metrics
	// and snapshot sections — the filter machine's registry in a real
	// deployment.
	Obs *obs.Registry
	// WindowMillis is the reordering window of the online matcher, in
	// record cpuTime: an unmatched send, receive, or handshake older
	// than this ages out. Default 2000.
	WindowMillis int64
	// MaxPending bounds each matcher queue (pending handshakes, stream
	// spans per direction, datagram flow FIFOs, orphans): when full,
	// the oldest entry is evicted as aged. Default 1024.
	MaxPending int
	// MaxProcs bounds the per-process tables; processes beyond it fold
	// into an overflow bucket so a runaway workload cannot grow the
	// analysis state without bound. Default 16384.
	MaxProcs int
	// MaxPairs bounds the communication matrix; pairs beyond it fold
	// into the (unknown,unknown) cell. Default 4096.
	MaxPairs int
	// BufEntries is each worker tap's entry buffer. Default 512.
	BufEntries int
}

func (c Config) withDefaults() Config {
	if c.WindowMillis <= 0 {
		c.WindowMillis = 2000
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 16384
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 4096
	}
	if c.BufEntries <= 0 {
		c.BufEntries = 512
	}
	return c
}

// sizeBucket mirrors analysis.sizeBucket: bucket 0 holds sizes <= 1,
// bucket k holds 2^(k-1) < size <= 2^k. bits.Len64(n-1) computes the
// same doubling count without the loop.
func sizeBucket(n int64) int {
	if n <= 1 {
		return 0
	}
	b := bits.Len64(uint64(n - 1))
	if b >= numSizeBuckets {
		return numSizeBuckets - 1
	}
	return b
}

// numSizeBuckets covers 64-bit message lengths, same shape as
// obs.NumBuckets.
const numSizeBuckets = 64

// procKey packs (machine, pid) into one map key.
func procKey(machine uint16, pid uint32) uint64 {
	return uint64(machine)<<32 | uint64(pid)
}

// procCell is one process's accumulated state: the ProcComm counts of
// the communication operator and the lifetime interval of the
// parallelism operator.
type procCell struct {
	machine    uint16
	terminated bool
	pid        uint32
	sends      int64
	recvs      int64
	recvCalls  int64
	sockets    int64
	forks      int64
	bytesSent  int64
	bytesRecvd int64
	first      int64 // earliest cpuTime observed
	last       int64 // latest cpuTime observed
	maxCPU     int64 // final procTime reading
}

// unknownMachine is the matrix row/column for traffic whose peer could
// not be resolved (no name, no established connection).
const unknownMachine = ^uint16(0)

// pairKey packs (src, dst) machine ids.
func pairKey(src, dst uint16) uint32 { return uint32(src)<<16 | uint32(dst) }

// pairCell is one (src,dst) cell of the communication matrix. Sends
// observed at the source and receives observed at the destination
// count separately — under loss or partition the two legs genuinely
// differ, and folding them would hide it.
type pairCell struct {
	src, dst  uint16
	sendMsgs  int64
	sendBytes int64
	recvMsgs  int64
	recvBytes int64
	sizes     [numSizeBuckets]int64 // sent-size histogram
}

// tapEntry is the compact op-log record a worker tap buffers: just the
// fields the operators read, copied out of the pooled extraction
// record.
type tapEntry struct {
	kind    uint8 // meter.Type, 0 for types beyond the standard range
	machine uint16
	pid     uint32
	sock    uint32
	aux     uint32 // msgLength, newSock, newPid, or status — per kind
	cpu     int64
	proc    int64
	name1   meter.Name // destName / sourceName / sockName
	name2   meter.Name // peerName
}

// Collector is the per-filter live-analysis state: operators, their
// obs handles, and the sections they export. One Collector serves all
// of a pipeline's workers; create taps with NewTap.
type Collector struct {
	cfg Config

	mu    sync.Mutex
	clock int64 // watermark: max cpuTime applied
	// Per-process table, shared by the comm and parallelism operators.
	procs    map[uint64]*procCell
	overflow procCell // folds processes beyond MaxProcs
	// Direct-mapped caches over the hot tables. Cells are never
	// deleted, so a cached pointer can only go stale by eviction, never
	// dangle. A handful of processes and one machine pair dominate any
	// chunk, which is what makes these small caches pay.
	procCache [16]*procCell
	lastPairK uint32
	lastPair  *pairCell
	// Global communication totals and matrix.
	events    int64
	sends     int64
	recvs     int64
	bytesSent int64
	bytesRecv int64
	sizes     [numSizeBuckets]int64
	pairs     map[uint32]*pairCell
	// liveProcs tracks started-minus-terminated processes.
	liveProcs int64
	match     matcher

	// Async drain: flushed tap buffers queue on pendingQ and the
	// drainer goroutine applies them, returning them to freeQ. Both
	// slices are preallocated (poolChunks entry buffers plus slack in
	// the headers) so the swap path never allocates. drainMu serializes
	// drain passes between the drainer and snapshot captures so batches
	// apply in publish order.
	qmu       sync.Mutex
	pendingQ  [][]tapEntry
	freeQ     [][]tapEntry
	signal    chan struct{}
	stop      chan struct{}
	closeOnce sync.Once
	drainMu   sync.Mutex
	// Stat accumulators, folded under mu and published by publishStats.
	statRecords int64
	statFlushes int64

	// Obs handles, resolved once; nil-safe via a discard registry.
	tapRecords  *obs.Counter
	tapFlushes  *obs.Counter
	procsLive   *obs.Gauge
	procsSeen   *obs.Gauge
	streamMatch *obs.Counter
	dgramMatch  *obs.Counter
	agedOut     *obs.Counter
	pendingG    *obs.Gauge
}

// NewCollector builds a collector and, when cfg.Obs is set, registers
// its metrics and snapshot sections there. Re-registering on the same
// registry (a restarted filter) replaces the sections of the dead
// collector.
func NewCollector(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{
		cfg:   cfg,
		procs: make(map[uint64]*procCell),
		pairs: make(map[uint32]*pairCell),
	}
	c.overflow = procCell{machine: unknownMachine, pid: ^uint32(0), first: -1}
	c.match.init(cfg)
	c.pendingQ = make([][]tapEntry, 0, poolChunks+poolSlack)
	c.freeQ = make([][]tapEntry, 0, poolChunks+poolSlack)
	for i := 0; i < poolChunks; i++ {
		c.freeQ = append(c.freeQ, make([]tapEntry, 0, cfg.BufEntries))
	}
	c.signal = make(chan struct{}, 1)
	c.stop = make(chan struct{})
	go c.drainer()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c.tapRecords = reg.Counter("live.tap.records")
	c.tapFlushes = reg.Counter("live.tap.flushes")
	c.procsLive = reg.Gauge("live.procs_live")
	c.procsSeen = reg.Gauge("live.procs_seen")
	c.streamMatch = reg.Counter("live.match.stream_matched")
	c.dgramMatch = reg.Counter("live.match.dgram_matched")
	c.agedOut = reg.Counter("live.match.aged_out")
	c.pendingG = reg.Gauge("live.match.pending")
	if cfg.Obs != nil {
		cfg.Obs.RegisterSection(SectionComm, SectionVersion, c.captureComm)
		cfg.Obs.RegisterSection(SectionPar, SectionVersion, c.capturePar)
		cfg.Obs.RegisterSection(SectionMatch, SectionVersion, c.captureMatch)
	}
	return c
}

// NewTap hands out one worker's tap. Implements filter.TapSource.
func (c *Collector) NewTap() filter.RecordTap {
	return &Tap{c: c, buf: make([]tapEntry, 0, c.cfg.BufEntries)}
}

// Tap is one pipeline worker's record observer: a fixed-capacity entry
// buffer that drains into the collector when full and at every chunk
// flush. Single-goroutine, like the engine that owns it.
type Tap struct {
	c   *Collector
	buf []tapEntry
}

// TapRecord copies the fields the operators need out of the pooled
// record. No allocation, no lock; the switch touches only the indices
// the event type carries.
func (t *Tap) TapRecord(info *filter.TapInfo, rec *filter.Record) {
	if len(t.buf) == cap(t.buf) {
		t.flush()
	}
	t.buf = t.buf[:len(t.buf)+1]
	e := &t.buf[len(t.buf)-1]
	*e = tapEntry{machine: rec.Machine, cpu: int64(rec.CPUTime), proc: int64(rec.ProcTime)}
	if ty := info.Type; ty < 256 {
		e.kind = uint8(ty)
	}
	f := rec.Fields
	if i := info.PIDIdx; i >= 0 {
		e.pid = uint32(f[i].Value)
	}
	if i := info.SockIdx; i >= 0 {
		e.sock = uint32(f[i].Value)
	}
	if i := info.LenIdx; i >= 0 {
		e.aux = uint32(f[i].Value)
	} else if i := info.AuxIdx; i >= 0 {
		e.aux = uint32(f[i].Value)
	}
	if i := info.Name1Idx; i >= 0 {
		e.name1 = f[i].Addr
	}
	if i := info.Name2Idx; i >= 0 {
		e.name2 = f[i].Addr
	}
}

// TapFlush publishes the buffered entries to the collector — called by
// the pipeline at every chunk boundary.
func (t *Tap) TapFlush() {
	if len(t.buf) > 0 {
		t.flush()
	}
}

func (t *Tap) flush() {
	t.buf = t.c.publish(t.buf)
}

// poolChunks is the number of entry buffers preallocated for the
// publish/drain exchange; poolSlack pads the queue headers so appends
// never reallocate even with every worker's own buffer in flight.
const (
	poolChunks = 4
	poolSlack  = 32
)

// publish hands a full tap buffer to the drainer, returning an empty
// one in exchange — two slice headers moved under a short lock, the
// whole cost the ingest thread pays for live analysis. When the pool
// is empty the drainer has fallen behind; the flush then applies
// inline, so memory stays bounded and no record is ever dropped.
func (c *Collector) publish(buf []tapEntry) []tapEntry {
	c.qmu.Lock()
	if n := len(c.freeQ); n > 0 {
		next := c.freeQ[n-1]
		c.freeQ = c.freeQ[:n-1]
		c.pendingQ = append(c.pendingQ, buf)
		// Signal only on the empty→non-empty transition; while the
		// queue is non-empty the drainer is already awake or has a
		// wakeup token pending.
		first := len(c.pendingQ) == 1
		c.qmu.Unlock()
		if first {
			select {
			case c.signal <- struct{}{}:
			default:
			}
		}
		return next[:0]
	}
	c.qmu.Unlock()
	// Drain queued batches before folding our own, otherwise this
	// buffer would apply ahead of older ones still in the queue — or
	// still in the drainer's hands — and order-sensitive operators
	// (the stream matcher's byte cursors) would see time run
	// backwards. Holding drainMu across our own apply serializes with
	// an in-flight drainer pass.
	c.drainMu.Lock()
	c.drainQueued()
	c.apply(buf)
	c.drainMu.Unlock()
	return buf[:0]
}

// drainer is the collector's background goroutine: it folds published
// buffers into the operators until Close.
func (c *Collector) drainer() {
	for {
		select {
		case <-c.signal:
			c.drain()
		case <-c.stop:
			c.drain()
			return
		}
	}
}

// drain applies every queued buffer in publish order. Snapshot
// captures call it too, so exports reflect all flushed records even
// when the drainer hasn't been scheduled yet.
func (c *Collector) drain() {
	c.drainMu.Lock()
	applied := c.drainQueued()
	c.drainMu.Unlock()
	if applied {
		c.publishStats()
	}
}

// drainQueued applies every queued batch in publish order; the caller
// holds drainMu.
func (c *Collector) drainQueued() bool {
	applied := false
	for {
		c.qmu.Lock()
		if len(c.pendingQ) == 0 {
			c.qmu.Unlock()
			return applied
		}
		batch := c.pendingQ[0]
		c.pendingQ = c.pendingQ[:copy(c.pendingQ, c.pendingQ[1:])]
		c.qmu.Unlock()
		c.apply(batch)
		applied = true
		c.qmu.Lock()
		c.freeQ = append(c.freeQ, batch[:0])
		c.qmu.Unlock()
	}
}

// sync makes the operators and metrics current: every queued batch is
// applied and the stats published. Section captures call it, so an
// exported snapshot reflects all flushed records — including batches
// applied inline, whose stats publication is deferred to here.
func (c *Collector) sync() {
	c.drain()
	c.publishStats()
}

// Close stops the drainer after a final drain. The pipeline calls it
// (via filter.TapCloser) once the last worker has flushed; captures
// keep working on a closed collector — they drain synchronously.
func (c *Collector) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
}

// apply folds one tap buffer into the operators. One lock acquisition
// per buffer, not per record; the obs metrics are published separately
// (publishStats) so the batch path pays no atomics.
func (c *Collector) apply(entries []tapEntry) {
	c.mu.Lock()
	for i := range entries {
		c.applyOne(&entries[i])
	}
	c.match.sweep(c.clock)
	c.statRecords += int64(len(entries))
	c.statFlushes++
	c.mu.Unlock()
}

// publishStats copies the operators' aggregates into their obs
// handles. Called after a drain pass and at every section capture —
// metric readers all go through Registry.Snapshot, which captures
// sections first, so they always see published values.
func (c *Collector) publishStats() {
	c.mu.Lock()
	recs, flushes := c.statRecords, c.statFlushes
	c.statRecords, c.statFlushes = 0, 0
	nProcs := int64(len(c.procs))
	live := c.liveProcs
	pending := c.match.pending
	stream, dgram, aged := c.match.takeCounts()
	c.mu.Unlock()

	c.tapRecords.Add(recs)
	c.tapFlushes.Add(flushes)
	c.procsSeen.Set(nProcs)
	c.procsLive.Set(live)
	c.pendingG.Set(int64(pending))
	c.streamMatch.Add(stream)
	c.dgramMatch.Add(dgram)
	c.agedOut.Add(aged)
}

// cell returns the process's cell, folding overflow past MaxProcs.
func (c *Collector) cell(machine uint16, pid uint32) *procCell {
	idx := (pid + uint32(machine)*31) & uint32(len(c.procCache)-1)
	if pc := c.procCache[idx]; pc != nil && pc.pid == pid && pc.machine == machine {
		return pc
	}
	k := procKey(machine, pid)
	pc := c.procs[k]
	if pc == nil {
		if len(c.procs) >= c.cfg.MaxProcs {
			return &c.overflow
		}
		pc = &procCell{machine: machine, pid: pid, first: -1}
		c.procs[k] = pc
		c.liveProcs++
	}
	c.procCache[idx] = pc
	return pc
}

func (c *Collector) applyOne(e *tapEntry) {
	c.events++
	if e.cpu > c.clock {
		c.clock = e.cpu
	}
	pc := c.cell(e.machine, e.pid)
	if pc.first < 0 || e.cpu < pc.first {
		pc.first = e.cpu
	}
	if e.cpu > pc.last {
		pc.last = e.cpu
	}
	if e.proc > pc.maxCPU {
		pc.maxCPU = e.proc
	}
	switch meter.Type(e.kind) {
	case meter.EvSend:
		n := int64(e.aux)
		c.sends++
		c.bytesSent += n
		c.sizes[sizeBucket(n)]++
		pc.sends++
		pc.bytesSent += n
		dst := c.match.send(e)
		p := c.pair(e.machine, dst)
		p.sendMsgs++
		p.sendBytes += n
		p.sizes[sizeBucket(n)]++
	case meter.EvRecv:
		n := int64(e.aux)
		c.recvs++
		c.bytesRecv += n
		pc.recvs++
		pc.bytesRecvd += n
		src := c.match.recv(e)
		p := c.pair(src, e.machine)
		p.recvMsgs++
		p.recvBytes += n
	case meter.EvRecvCall:
		pc.recvCalls++
	case meter.EvSocket:
		pc.sockets++
	case meter.EvFork:
		pc.forks++
	case meter.EvTermProc:
		if !pc.terminated {
			pc.terminated = true
			if c.liveProcs > 0 {
				c.liveProcs--
			}
		}
	case meter.EvConnect:
		c.match.connect(e)
	case meter.EvAccept:
		c.match.accept(e)
	}
}

func (c *Collector) pair(src, dst uint16) *pairCell {
	k := pairKey(src, dst)
	if p := c.lastPair; p != nil && c.lastPairK == k {
		return p
	}
	p := c.pairs[k]
	if p == nil {
		if len(c.pairs) >= c.cfg.MaxPairs {
			// Matrix full: fold into the unknown cell rather than
			// growing without bound.
			src, dst = unknownMachine, unknownMachine
			k = pairKey(src, dst)
			if p = c.pairs[k]; p != nil {
				return p
			}
		}
		p = &pairCell{src: src, dst: dst}
		c.pairs[k] = p
	}
	c.lastPairK, c.lastPair = k, p
	return p
}

// hostMachine resolves a socket name to a machine id: AFInet hosts map
// by identity (the single-network default, as in analysis), AFUnix and
// AFPair names are machine-local so they resolve to the observer.
func hostMachine(n *meter.Name, local uint16) uint16 {
	switch n.Family() {
	case meter.AFInet:
		host, _ := n.Inet()
		if host > uint32(unknownMachine-1) {
			return unknownMachine
		}
		return uint16(host)
	case meter.AFUnix, meter.AFPair:
		return local
	}
	return unknownMachine
}
