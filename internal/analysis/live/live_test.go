package live

import (
	"reflect"
	"sort"
	"testing"

	"dpm/internal/analysis"
	"dpm/internal/filter"
	"dpm/internal/meter"
	"dpm/internal/obs"
	"dpm/internal/trace"
)

// goldenMsgs builds the golden workload: three machines, every
// standard event type, one stream connection (connect/accept plus
// unnamed sends and receives) and named datagrams, one of which is
// never received. Returned in global cpuTime order.
func goldenMsgs() []meter.Msg {
	ev := func(machine uint16, cpu, proc uint32, body meter.Body) meter.Msg {
		return meter.Msg{Header: meter.Header{Machine: machine, CPUTime: cpu, ProcTime: proc}, Body: body}
	}
	clientName := meter.InetName(0, 1234)
	serverName := meter.InetName(1, 80)
	return []meter.Msg{
		ev(0, 10, 10, &meter.SocketCrt{PID: 100, Sock: 3, Domain: 2, SockType: 1}),
		ev(1, 20, 10, &meter.SocketCrt{PID: 200, Sock: 5, Domain: 2, SockType: 1}),
		ev(0, 35, 20, &meter.Fork{PID: 100, NewPID: 101}),
		ev(0, 40, 30, &meter.Connect{PID: 100, Sock: 3, SockNameLen: 16, PeerNameLen: 16, SockName: clientName, PeerName: serverName}),
		ev(1, 50, 20, &meter.Accept{PID: 200, Sock: 5, NewSock: 6, SockNameLen: 16, PeerNameLen: 16, SockName: serverName, PeerName: clientName}),
		ev(0, 60, 40, &meter.Send{PID: 100, Sock: 3, MsgLength: 100}),
		ev(1, 65, 30, &meter.RecvCall{PID: 200, Sock: 6}),
		ev(0, 70, 50, &meter.Send{PID: 100, Sock: 3, MsgLength: 200}),
		ev(1, 80, 40, &meter.Recv{PID: 200, Sock: 6, MsgLength: 100}),
		ev(1, 90, 50, &meter.Recv{PID: 200, Sock: 6, MsgLength: 200}),
		ev(1, 95, 60, &meter.Dup{PID: 200, Sock: 6, NewSock: 8}),
		ev(2, 100, 10, &meter.SocketCrt{PID: 300, Sock: 4, Domain: 2, SockType: 2}),
		ev(2, 110, 20, &meter.Send{PID: 300, Sock: 4, MsgLength: 64, DestNameLen: 16, DestName: meter.InetName(0, 999)}),
		ev(0, 120, 10, &meter.Recv{PID: 101, Sock: 7, MsgLength: 64, SourceNameLen: 16, SourceName: meter.InetName(2, 888)}),
		ev(2, 130, 30, &meter.Send{PID: 300, Sock: 4, MsgLength: 500, DestNameLen: 16, DestName: meter.InetName(1, 999)}),
		ev(2, 140, 40, &meter.DestSocket{PID: 300, Sock: 4}),
		ev(1, 145, 10, &meter.RecvCall{PID: 201, Sock: 9}),
		ev(2, 150, 50, &meter.TermProc{PID: 300}),
		ev(0, 160, 20, &meter.TermProc{PID: 101}),
	}
}

func encodeMsgs(msgs []meter.Msg) []byte {
	var stream []byte
	for i := range msgs {
		stream = msgs[i].AppendEncode(stream)
	}
	return stream
}

// runLive pushes the streams through a pipeline with a live collector
// attached and returns the registry snapshot plus the offline analysis
// of the pipeline's own log — the two sides of the equivalence.
func runLive(t *testing.T, workers int, streams [][]byte) (*obs.Snapshot, []trace.Event) {
	t.Helper()
	proto, err := filter.NewEngine([]byte(filter.StandardDescriptions), []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coll := NewCollector(Config{Obs: reg})
	var logBuf []byte
	pipe := filter.NewPipeline(proto, filter.PipelineConfig{Workers: workers, QueueDepth: 4, Obs: reg, Taps: coll},
		filter.Sinks{Log: func(b []byte) error { logBuf = append(logBuf, b...); return nil }}, nil)
	for _, stream := range streams {
		src := pipe.NewSource()
		// Chunks deliberately misaligned with frame boundaries.
		for off := 0; off < len(stream); off += 37 {
			end := off + 37
			if end > len(stream) {
				end = len(stream)
			}
			if !src.Feed(append([]byte(nil), stream[off:end]...)) {
				t.Fatal("pipeline refused feed")
			}
		}
	}
	pipe.Close()
	events, err := trace.ParseLog(logBuf)
	if err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot(), events
}

func decodeSections(t *testing.T, snap *obs.Snapshot) (*CommState, *ParState, *MatchState) {
	t.Helper()
	var comm *CommState
	var par *ParState
	var match *MatchState
	for name, dst := range map[string]any{SectionComm: &comm, SectionPar: &par, SectionMatch: &match} {
		sec := snap.Section(name)
		if sec == nil {
			t.Fatalf("snapshot missing section %s", name)
		}
		if sec.Version != SectionVersion {
			t.Fatalf("section %s version %d", name, sec.Version)
		}
		var err error
		switch d := dst.(type) {
		case **CommState:
			*d, err = DecodeComm(sec.Data)
		case **ParState:
			*d, err = DecodePar(sec.Data)
		case **MatchState:
			*d, err = DecodeMatch(sec.Data)
		}
		if err != nil {
			t.Fatalf("decode %s: %v", name, err)
		}
	}
	return comm, par, match
}

// assertCommMatchesOffline checks the live comm state against the
// offline analysis of the same events: global totals, the per-process
// table, and the send-size histogram must agree exactly.
func assertCommMatchesOffline(t *testing.T, comm *CommState, off *analysis.CommStats) {
	t.Helper()
	if comm.Events != int64(off.Events) || comm.Sends != int64(off.Sends) || comm.Recvs != int64(off.Recvs) {
		t.Fatalf("global counts: live %d/%d/%d, offline %d/%d/%d",
			comm.Events, comm.Sends, comm.Recvs, off.Events, off.Sends, off.Recvs)
	}
	if comm.BytesSent != off.BytesSent || comm.BytesRecvd != off.BytesRecvd {
		t.Fatalf("bytes: live %d/%d, offline %d/%d", comm.BytesSent, comm.BytesRecvd, off.BytesSent, off.BytesRecvd)
	}
	wantSizes := make(map[int]int64, len(off.SizeHist))
	for k, v := range off.SizeHist {
		wantSizes[k] = int64(v)
	}
	got := comm.Sizes
	if got == nil {
		got = map[int]int64{}
	}
	if !reflect.DeepEqual(got, wantSizes) {
		t.Fatalf("size hist: live %v, offline %v", got, wantSizes)
	}
	if len(comm.Procs) != len(off.PerProcess) {
		t.Fatalf("live has %d procs, offline %d", len(comm.Procs), len(off.PerProcess))
	}
	for i := range comm.Procs {
		p := &comm.Procs[i]
		o := off.PerProcess[analysis.ProcKey{Machine: int(p.Machine), PID: int(p.PID)}]
		if o == nil {
			t.Fatalf("live proc m%d/p%d not in offline analysis", p.Machine, p.PID)
		}
		if p.Sends != int64(o.Sends) || p.Recvs != int64(o.Recvs) || p.RecvCalls != int64(o.RecvCalls) ||
			p.Sockets != int64(o.Sockets) || p.Forks != int64(o.Forks) ||
			p.BytesSent != o.BytesSent || p.BytesRecvd != o.BytesRecvd {
			t.Fatalf("proc m%d/p%d: live %+v, offline %+v", p.Machine, p.PID, *p, *o)
		}
	}
}

// assertCurveMatchesOffline checks the parallelism curve derived from
// the live intervals against analysis.MeasureParallelism.
func assertCurveMatchesOffline(t *testing.T, par *ParState, events []trace.Event) {
	t.Helper()
	curve := par.Curve()
	off := analysis.MeasureParallelism(events)
	if curve.Processes != off.Processes || curve.TotalCPUMillis != off.TotalCPUMillis ||
		curve.MakespanMillis != off.MakespanMillis || curve.Speedup != off.Speedup {
		t.Fatalf("curve: live %+v, offline %+v", curve, off)
	}
	if !reflect.DeepEqual(curve.Histogram, off.Histogram) {
		t.Fatalf("concurrency histogram: live %v, offline %v", curve.Histogram, off.Histogram)
	}
}

// TestGoldenEquivalence replays the golden trace as one ordered source
// (one meter connection) across worker counts: the live operators must
// reproduce the offline analysis of the pipeline's own log exactly —
// including the matrix and matcher state, which are deterministic for
// an ordered stream.
func TestGoldenEquivalence(t *testing.T) {
	stream := encodeMsgs(goldenMsgs())
	for _, workers := range []int{1, 2, 8} {
		snap, events := runLive(t, workers, [][]byte{stream})
		comm, par, match := decodeSections(t, snap)
		assertCommMatchesOffline(t, comm, analysis.Comm(events))
		assertCurveMatchesOffline(t, par, events)

		// Matrix: the stream sends resolve through the established
		// connection, the datagrams through their names.
		type leg struct{ sm, sb, rm, rb int64 }
		want := map[[2]uint16]leg{
			{0, 1}: {sm: 2, sb: 300, rm: 2, rb: 300},
			{2, 0}: {sm: 1, sb: 64, rm: 1, rb: 64},
			{2, 1}: {sm: 1, sb: 500},
		}
		if len(comm.Pairs) != len(want) {
			t.Fatalf("workers=%d: %d matrix pairs, want %d: %+v", workers, len(comm.Pairs), len(want), comm.Pairs)
		}
		for i := range comm.Pairs {
			p := &comm.Pairs[i]
			w, ok := want[[2]uint16{p.Src, p.Dst}]
			if !ok {
				t.Fatalf("workers=%d: unexpected pair %d->%d", workers, p.Src, p.Dst)
			}
			if p.SendMsgs != w.sm || p.SendBytes != w.sb || p.RecvMsgs != w.rm || p.RecvBytes != w.rb {
				t.Fatalf("workers=%d: pair %d->%d = %+v, want %+v", workers, p.Src, p.Dst, *p, w)
			}
		}

		if match.Conns != 1 || match.StreamMatched != 2 || match.DgramMatched != 1 ||
			match.AgedOut != 0 || match.Pending != 1 {
			t.Fatalf("workers=%d: match state %+v", workers, *match)
		}

		// The live gauges agree with the decoded sections.
		seen := int64(-1)
		for _, g := range snap.Gauges {
			if g.Name == "live.procs_seen" {
				seen = g.Value
			}
		}
		if seen != 5 {
			t.Fatalf("workers=%d: procs_seen gauge %d, want 5", workers, seen)
		}
		if par.Running() != 3 {
			t.Fatalf("workers=%d: %d running procs, want 3", workers, par.Running())
		}
	}
}

// TestGoldenEquivalenceMultiSource splits the golden trace into one
// source per machine, so chunks interleave arbitrarily across workers.
// The order-independent results — comm totals, per-proc counts, size
// histogram, parallelism curve, and the matcher's final tallies — must
// still equal the offline analysis; only transient matrix attribution
// may differ with interleaving.
func TestGoldenEquivalenceMultiSource(t *testing.T) {
	msgs := goldenMsgs()
	perMachine := map[uint16][]meter.Msg{}
	for _, m := range msgs {
		perMachine[m.Header.Machine] = append(perMachine[m.Header.Machine], m)
	}
	var streams [][]byte
	machines := make([]int, 0, len(perMachine))
	for m := range perMachine {
		machines = append(machines, int(m))
	}
	sort.Ints(machines)
	for _, m := range machines {
		streams = append(streams, encodeMsgs(perMachine[uint16(m)]))
	}
	for _, workers := range []int{1, 2, 8} {
		snap, events := runLive(t, workers, streams)
		comm, par, match := decodeSections(t, snap)
		assertCommMatchesOffline(t, comm, analysis.Comm(events))
		assertCurveMatchesOffline(t, par, events)

		// The matrix row sums always equal the global counts, whatever
		// the interleaving attributed each message to.
		var sm, sb, rm, rb int64
		for i := range comm.Pairs {
			sm += comm.Pairs[i].SendMsgs
			sb += comm.Pairs[i].SendBytes
			rm += comm.Pairs[i].RecvMsgs
			rb += comm.Pairs[i].RecvBytes
		}
		if sm != comm.Sends || sb != comm.BytesSent || rm != comm.Recvs || rb != comm.BytesRecvd {
			t.Fatalf("workers=%d: matrix sums %d/%d/%d/%d vs totals %d/%d/%d/%d",
				workers, sm, sb, rm, rb, comm.Sends, comm.BytesSent, comm.Recvs, comm.BytesRecvd)
		}
		// Once the whole trace is in, the matcher's results are
		// order-independent: orphans replay on establish, late datagram
		// legs pair from either side.
		if match.Conns != 1 || match.StreamMatched != 2 || match.DgramMatched != 1 ||
			match.AgedOut != 0 || match.Pending != 1 {
			t.Fatalf("workers=%d: match state %+v", workers, *match)
		}
	}
}

// TestTapPathZeroAllocs locks in the allocation budget of the tap hot
// path: once buffers and tables are warm, buffering a record and
// flushing a chunk must not touch the heap.
func TestTapPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	c := NewCollector(Config{})
	tap := c.NewTap().(*Tap)
	info := &filter.TapInfo{Type: meter.EvSend, PIDIdx: 0, SockIdx: 2, LenIdx: 3, AuxIdx: -1, Name1Idx: -1, Name2Idx: -1}
	rec := &filter.Record{
		Machine: 1, CPUTime: 100, ProcTime: 10,
		Fields: []filter.RecordField{{Value: 42}, {Value: 0x400}, {Value: 3}, {Value: 64}},
	}
	round := func() {
		for i := 0; i < 256; i++ {
			tap.TapRecord(info, rec)
		}
		tap.TapFlush()
	}
	// Warm: proc and pair cells, orphan fifo at its steady-state
	// capacity (the unnamed sends never connect, so the orphan queue
	// runs pinned at MaxPending with one eviction per push).
	for i := 0; i < 32; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("tap path allocates: %v allocs per 256-record round", allocs)
	}
}
