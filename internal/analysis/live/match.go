package live

import (
	"dpm/internal/meter"
)

// The online matcher pairs sends with receives as records arrive,
// where offline analysis.MatchMessages assumes a complete, sorted
// trace. Three mechanisms, all bounded:
//
//   - Handshake pairing: CONNECT and ACCEPT records meet by socket
//     name (an accept whose listener name equals a connect's peer
//     name), establishing a connection that maps both endpoints —
//     (machine, pid, sock) triples — to a shared byte-cursor pair.
//   - Stream matching: an unnamed send on a connected endpoint pushes
//     a byte span; receives on the other endpoint advance the
//     direction's received cursor, and every span the cursor covers is
//     one matched message. Sends and receives observed before the
//     handshake wait in a per-endpoint orphan queue and replay when
//     the connection establishes.
//   - Datagram matching: a named send joins the (src,dst) machine-pair
//     FIFO; a receive matches the oldest pending send whose length can
//     carry it (receives may truncate, mirroring offline
//     lengthsCompatible), and symmetrically a send arriving late
//     matches the oldest pending receive.
//
// Everything pending is subject to the reordering window: entries
// whose cpuTime falls behind the collector's watermark by more than
// WindowMillis age out into the unmatched counter, and every queue
// evicts its oldest entry as aged when MaxPending would be exceeded.
// The matcher therefore reaches a steady-state footprint no matter how
// long the stream runs or how much of it never pairs up — the property
// the offline matcher, which buffers whole flows, cannot have.

// endpoint identifies one socket of one process.
type endpoint struct {
	machine uint16
	pid     uint32
	sock    uint32
}

// span is one pending stream send: the direction's cumulative byte
// offset after it, and when it entered.
type span struct {
	end int64
	t   int64
}

// connDir is one direction of a connection's byte stream.
type connDir struct {
	sent  int64 // cumulative bytes sent
	recvd int64 // cumulative bytes received
	pend  fifoS // spans sent but not yet fully received
}

// conn joins two endpoints. Direction 0 carries a→b, direction 1 b→a.
type conn struct {
	a, b endpoint
	dirs [2]connDir
}

// half locates one endpoint's side of its connection.
type half struct {
	c    *conn
	side int // 0: this endpoint is a, 1: b
}

// pendHS is a connect or accept waiting for its counterpart.
type pendHS struct {
	ep       endpoint
	sockName meter.Name
	peerName meter.Name
	t        int64
}

// orphan is an unnamed send or receive on a not-yet-connected
// endpoint.
type orphan struct {
	ep     endpoint
	bytes  int64
	t      int64
	isSend bool
	peer   uint16 // resolved peer machine once known, unknownMachine otherwise
}

// flowMsg is one pending datagram.
type flowMsg struct {
	bytes int64
	t     int64
}

// matcher is the collector's online matching state. All methods run
// under the collector's mutex.
type matcher struct {
	window   int64
	maxPend  int
	maxConns int

	pendConnects []pendHS
	pendAccepts  []pendHS
	endpoints    map[endpoint]half
	conns        int64
	orphans      fifoO
	dgramSend    map[uint32]*fifoM // keyed by pairKey(src,dst)
	dgramRecv    map[uint32]*fifoM

	// Hot-path cache: the last machine pair's datagram FIFOs. Traffic
	// between a machine pair is bursty, so one entry removes two map
	// lookups from most named sends and receives. The cached pointers
	// stay valid forever — flows are drained in place, never deleted.
	lastFlowOK   bool
	lastFlowKey  uint32
	lastFlowSend *fifoM
	lastFlowRecv *fifoM

	// pending is the total queued entries across all structures — the
	// bound the gauge and the sweep maintain. streamPend is the subset
	// held as stream spans, so sweeps skip the connection walk when
	// every stream is drained.
	pending    int
	streamPend int
	lastSweep  int64

	// Deltas since the last takeCounts, drained outside the lock into
	// obs counters; the t-totals accumulate what was drained so the
	// snapshot section can report cumulative counts.
	dStream int64
	dDgram  int64
	dAged   int64
	tStream int64
	tDgram  int64
	tAged   int64
}

func (m *matcher) init(cfg Config) {
	m.window = cfg.WindowMillis
	m.maxPend = cfg.MaxPending
	m.maxConns = cfg.MaxProcs
	m.endpoints = make(map[endpoint]half)
	m.dgramSend = make(map[uint32]*fifoM)
	m.dgramRecv = make(map[uint32]*fifoM)
}

func (m *matcher) takeCounts() (stream, dgram, aged int64) {
	stream, dgram, aged = m.dStream, m.dDgram, m.dAged
	m.tStream += stream
	m.tDgram += dgram
	m.tAged += aged
	m.dStream, m.dDgram, m.dAged = 0, 0, 0
	return
}

// connect records a CONNECT: pair with a waiting accept, else queue.
// e.name1 is the connector's own socket name, e.name2 the peer
// (listener) name.
func (m *matcher) connect(e *tapEntry) {
	ep := endpoint{e.machine, e.pid, e.sock}
	hs := pendHS{ep: ep, sockName: e.name1, peerName: e.name2, t: e.cpu}
	// An accept matches when its listener-side name is the address this
	// connect dialed; prefer the one that already names us as peer.
	best := -1
	for i := range m.pendAccepts {
		a := &m.pendAccepts[i]
		if a.sockName != hs.peerName {
			continue
		}
		if a.peerName == hs.sockName {
			best = i
			break
		}
		if best < 0 {
			best = i
		}
	}
	if best >= 0 {
		a := m.pendAccepts[best]
		m.pendAccepts = append(m.pendAccepts[:best], m.pendAccepts[best+1:]...)
		m.pending--
		m.establish(hs.ep, a.ep)
		return
	}
	if len(m.pendConnects) >= m.maxPend {
		m.pendConnects = m.pendConnects[1:]
		m.dAged++
		m.pending--
	}
	m.pendConnects = append(m.pendConnects, hs)
	m.pending++
}

// accept records an ACCEPT. e.name1 is the listener's socket name,
// e.name2 the connector's name, e.aux the new (accepted) descriptor.
func (m *matcher) accept(e *tapEntry) {
	ep := endpoint{e.machine, e.pid, e.aux}
	hs := pendHS{ep: ep, sockName: e.name1, peerName: e.name2, t: e.cpu}
	best := -1
	for i := range m.pendConnects {
		c := &m.pendConnects[i]
		if c.peerName != hs.sockName {
			continue
		}
		if c.sockName == hs.peerName {
			best = i
			break
		}
		if best < 0 {
			best = i
		}
	}
	if best >= 0 {
		c := m.pendConnects[best]
		m.pendConnects = append(m.pendConnects[:best], m.pendConnects[best+1:]...)
		m.pending--
		m.establish(c.ep, hs.ep)
		return
	}
	if len(m.pendAccepts) >= m.maxPend {
		m.pendAccepts = m.pendAccepts[1:]
		m.dAged++
		m.pending--
	}
	m.pendAccepts = append(m.pendAccepts, hs)
	m.pending++
}

// establish wires a client/server endpoint pair and replays any
// orphaned stream traffic that was waiting for it.
func (m *matcher) establish(client, server endpoint) {
	if int64(len(m.endpoints)) >= 2*int64(m.maxConns) {
		// Connection table full: drop the handshake as aged rather
		// than growing without bound.
		m.dAged++
		return
	}
	c := &conn{a: client, b: server}
	m.endpoints[client] = half{c: c, side: 0}
	m.endpoints[server] = half{c: c, side: 1}
	m.conns++
	// Replay orphans for these endpoints in arrival order.
	m.orphans.extract(func(o *orphan) bool {
		if o.ep != client && o.ep != server {
			return false
		}
		m.pending--
		m.streamTraffic(m.endpoints[o.ep], o.bytes, o.t, o.isSend)
		return true
	})
}

// send observes a send and returns the destination machine for the
// matrix: from the destination name when present, from the connection
// when established, unknown otherwise.
func (m *matcher) send(e *tapEntry) uint16 {
	if !e.name1.IsZero() {
		dst := hostMachine(&e.name1, e.machine)
		m.dgram(pairKey(e.machine, dst), int64(e.aux), e.cpu, true)
		return dst
	}
	ep := endpoint{e.machine, e.pid, e.sock}
	if h, ok := m.endpoints[ep]; ok {
		m.streamTraffic(h, int64(e.aux), e.cpu, true)
		return m.peerOf(h).machine
	}
	m.orphan(ep, int64(e.aux), e.cpu, true)
	return unknownMachine
}

// recv observes a receive and returns the source machine for the
// matrix.
func (m *matcher) recv(e *tapEntry) uint16 {
	if !e.name1.IsZero() {
		src := hostMachine(&e.name1, e.machine)
		m.dgram(pairKey(src, e.machine), int64(e.aux), e.cpu, false)
		return src
	}
	ep := endpoint{e.machine, e.pid, e.sock}
	if h, ok := m.endpoints[ep]; ok {
		m.streamTraffic(h, int64(e.aux), e.cpu, false)
		return m.peerOf(h).machine
	}
	m.orphan(ep, int64(e.aux), e.cpu, false)
	return unknownMachine
}

func (m *matcher) peerOf(h half) endpoint {
	if h.side == 0 {
		return h.c.b
	}
	return h.c.a
}

// streamTraffic advances a connection's byte cursors. A send at an
// endpoint feeds the direction it transmits on; a receive drains the
// opposite direction. The caller passes the endpoint's half, already
// in hand from its own routing lookup.
func (m *matcher) streamTraffic(h half, n, t int64, isSend bool) {
	if h.c == nil {
		return
	}
	dir := h.side // side 0 sends on dir 0, side 1 on dir 1
	if !isSend {
		dir = 1 - h.side // side 0 receives what dir 1 carries
	}
	d := &h.c.dirs[dir]
	if isSend {
		d.sent += n
		if d.pend.len() >= m.maxPend {
			// Evict the oldest unreceived span as aged; skip the
			// receive cursor past it so later spans stay matchable.
			s := d.pend.pop()
			m.dAged++
			m.pending--
			m.streamPend--
			if d.recvd < s.end {
				d.recvd = s.end
			}
		}
		d.pend.push(span{end: d.sent, t: t})
		m.pending++
		m.streamPend++
	} else {
		d.recvd += n
	}
	for d.pend.len() > 0 && d.pend.peek().end <= d.recvd {
		d.pend.pop()
		m.dStream++
		m.pending--
		m.streamPend--
	}
}

// orphan queues unnamed traffic on an unconnected endpoint.
func (m *matcher) orphan(ep endpoint, n, t int64, isSend bool) {
	if m.orphans.len() >= m.maxPend {
		m.orphans.pop()
		m.dAged++
		m.pending--
	}
	m.orphans.push(orphan{ep: ep, bytes: n, t: t, isSend: isSend, peer: unknownMachine})
	m.pending++
}

// dgram runs the machine-pair FIFO for one named datagram leg. A
// receive pairs with the oldest pending send of length >= its own
// (receives truncate, never grow); a send pairs with the oldest
// pending receive it can carry.
func (m *matcher) dgram(key uint32, n, t int64, isSend bool) {
	var sq, rq *fifoM
	if m.lastFlowOK && key == m.lastFlowKey {
		sq, rq = m.lastFlowSend, m.lastFlowRecv
	} else {
		sq, rq = m.dgramSend[key], m.dgramRecv[key]
		m.lastFlowOK, m.lastFlowKey = true, key
		m.lastFlowSend, m.lastFlowRecv = sq, rq
	}
	mine, theirs := sq, rq
	if !isSend {
		mine, theirs = rq, sq
	}
	if theirs != nil {
		// Bounded scan: reordering within the window means the match
		// may not be at the head, but an unbounded scan would make a
		// flood of incompatible lengths quadratic.
		if i := theirs.firstMatch(32, func(f *flowMsg) bool {
			if isSend {
				return f.bytes <= n // pending recv needs a send big enough
			}
			return f.bytes >= n // pending send must carry this recv
		}); i >= 0 {
			theirs.remove(i)
			m.dDgram++
			m.pending--
			return
		}
	}
	if mine == nil {
		mine = &fifoM{}
		if isSend {
			m.dgramSend[key] = mine
			m.lastFlowSend = mine
		} else {
			m.dgramRecv[key] = mine
			m.lastFlowRecv = mine
		}
	}
	if mine.len() >= m.maxPend {
		mine.pop()
		m.dAged++
		m.pending--
	}
	mine.push(flowMsg{bytes: n, t: t})
	m.pending++
}

// sweep ages out everything older than now minus the window. Queues
// are pushed in roughly cpuTime order, so each drains from its head.
// Sweeps are rate-limited to once per quarter window, so the
// per-flush cost of calling this is one comparison.
func (m *matcher) sweep(now int64) {
	horizon := now - m.window
	if horizon <= 0 || horizon < m.lastSweep+m.window/4 {
		return
	}
	m.lastSweep = horizon
	for len(m.pendConnects) > 0 && m.pendConnects[0].t < horizon {
		m.pendConnects = m.pendConnects[1:]
		m.dAged++
		m.pending--
	}
	for len(m.pendAccepts) > 0 && m.pendAccepts[0].t < horizon {
		m.pendAccepts = m.pendAccepts[1:]
		m.dAged++
		m.pending--
	}
	for m.orphans.len() > 0 && m.orphans.peek().t < horizon {
		m.orphans.pop()
		m.dAged++
		m.pending--
	}
	for _, q := range m.dgramSend {
		for q.len() > 0 && q.peek().t < horizon {
			q.pop()
			m.dAged++
			m.pending--
		}
	}
	for _, q := range m.dgramRecv {
		for q.len() > 0 && q.peek().t < horizon {
			q.pop()
			m.dAged++
			m.pending--
		}
	}
	// Stream spans: only walk connections while spans are outstanding.
	if m.streamPend == 0 {
		return
	}
	seen := make(map[*conn]bool, len(m.endpoints)/2)
	for _, h := range m.endpoints {
		if seen[h.c] {
			continue
		}
		seen[h.c] = true
		for dir := range h.c.dirs {
			d := &h.c.dirs[dir]
			for d.pend.len() > 0 && d.pend.peek().t < horizon {
				s := d.pend.pop()
				m.dAged++
				m.pending--
				m.streamPend--
				if d.recvd < s.end {
					d.recvd = s.end
				}
			}
		}
	}
}
