package live

import (
	"testing"

	"dpm/internal/meter"
)

// Matcher-level tests drive the collector through apply with
// hand-built tap entries — the same seam the worker taps use — so each
// behavior is exercised without a pipeline.

func entry(kind meter.Type, machine uint16, pid, sock, aux uint32, cpu int64) tapEntry {
	return tapEntry{kind: uint8(kind), machine: machine, pid: pid, sock: sock, aux: aux, cpu: cpu}
}

func (c *Collector) matchState(t *testing.T) *MatchState {
	t.Helper()
	st, err := DecodeMatch(c.captureMatch())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMatchOrphanReplay sends stream traffic before the handshake
// completes: the orphaned bytes must replay and match once connect and
// accept meet.
func TestMatchOrphanReplay(t *testing.T) {
	c := NewCollector(Config{})
	cn := meter.InetName(0, 10)
	sn := meter.InetName(1, 20)
	// Sends and even the receive arrive before the handshake pairs.
	send1 := entry(meter.EvSend, 0, 1, 3, 100, 10)
	send2 := entry(meter.EvSend, 0, 1, 3, 50, 20)
	recv1 := entry(meter.EvRecv, 1, 2, 6, 100, 30)
	conn := entry(meter.EvConnect, 0, 1, 3, 0, 40)
	conn.name1, conn.name2 = cn, sn
	acc := entry(meter.EvAccept, 1, 2, 0, 6, 50) // aux carries newSock
	acc.name1, acc.name2 = sn, cn
	c.apply([]tapEntry{send1, send2, recv1})
	if st := c.matchState(t); st.Conns != 0 || st.StreamMatched != 0 || st.Pending != 3 {
		t.Fatalf("before handshake: %+v", *st)
	}
	c.apply([]tapEntry{conn, acc})
	// Replay: recv of 100 covers send1 exactly; send2 stays pending.
	if st := c.matchState(t); st.Conns != 1 || st.StreamMatched != 1 || st.Pending != 1 {
		t.Fatalf("after handshake: %+v", *st)
	}
	// The rest of the stream drains.
	recv2 := entry(meter.EvRecv, 1, 2, 6, 50, 60)
	c.apply([]tapEntry{recv2})
	if st := c.matchState(t); st.StreamMatched != 2 || st.Pending != 0 {
		t.Fatalf("after drain: %+v", *st)
	}
}

// TestMatchAcceptBeforeConnect pairs the handshake in either arrival
// order.
func TestMatchAcceptBeforeConnect(t *testing.T) {
	c := NewCollector(Config{})
	cn := meter.InetName(0, 10)
	sn := meter.InetName(1, 20)
	acc := entry(meter.EvAccept, 1, 2, 0, 6, 10)
	acc.name1, acc.name2 = sn, cn
	conn := entry(meter.EvConnect, 0, 1, 3, 0, 20)
	conn.name1, conn.name2 = cn, sn
	c.apply([]tapEntry{acc, conn})
	if st := c.matchState(t); st.Conns != 1 || st.Pending != 0 {
		t.Fatalf("accept-first handshake: %+v", *st)
	}
}

// TestMatchDgramTruncation enforces the datagram length rule: a
// receive may be shorter than the send that carried it, never longer.
func TestMatchDgramTruncation(t *testing.T) {
	c := NewCollector(Config{})
	dst := meter.InetName(1, 99)
	src := meter.InetName(0, 99)
	send := entry(meter.EvSend, 0, 1, 3, 200, 10)
	send.name1 = dst
	big := entry(meter.EvRecv, 1, 2, 6, 300, 20) // longer than any send
	big.name1 = src
	small := entry(meter.EvRecv, 1, 2, 6, 150, 30) // truncated receipt
	small.name1 = src
	c.apply([]tapEntry{send, big})
	if st := c.matchState(t); st.DgramMatched != 0 || st.Pending != 2 {
		t.Fatalf("oversized recv must not match: %+v", *st)
	}
	c.apply([]tapEntry{small})
	if st := c.matchState(t); st.DgramMatched != 1 || st.Pending != 1 {
		t.Fatalf("truncated recv must match: %+v", *st)
	}
}

// TestMatchWindowAging advances the clock past the reordering window
// and checks that pending entries age out into the counter instead of
// accumulating.
func TestMatchWindowAging(t *testing.T) {
	c := NewCollector(Config{WindowMillis: 100})
	send := entry(meter.EvSend, 0, 1, 3, 64, 10)
	send.name1 = meter.InetName(1, 99)
	conn := entry(meter.EvConnect, 0, 1, 4, 0, 12)
	conn.name1, conn.name2 = meter.InetName(0, 1), meter.InetName(1, 2)
	orph := entry(meter.EvSend, 0, 2, 5, 32, 14) // unnamed, unconnected
	c.apply([]tapEntry{send, conn, orph})
	if st := c.matchState(t); st.Pending != 3 || st.AgedOut != 0 {
		t.Fatalf("before aging: %+v", *st)
	}
	// A much later event pushes the watermark past the window.
	late := entry(meter.EvRecvCall, 0, 3, 9, 0, 500)
	c.apply([]tapEntry{late})
	if st := c.matchState(t); st.Pending != 0 || st.AgedOut != 3 {
		t.Fatalf("after aging: %+v", *st)
	}
}

// TestMatchStreamSpanAging ages pending stream spans: the receive
// cursor skips past the evicted span so later traffic still matches.
func TestMatchStreamSpanAging(t *testing.T) {
	c := NewCollector(Config{WindowMillis: 100})
	cn := meter.InetName(0, 10)
	sn := meter.InetName(1, 20)
	conn := entry(meter.EvConnect, 0, 1, 3, 0, 10)
	conn.name1, conn.name2 = cn, sn
	acc := entry(meter.EvAccept, 1, 2, 0, 6, 11)
	acc.name1, acc.name2 = sn, cn
	lost := entry(meter.EvSend, 0, 1, 3, 100, 12) // never received
	c.apply([]tapEntry{conn, acc, lost})
	late := entry(meter.EvRecvCall, 0, 3, 9, 0, 500)
	c.apply([]tapEntry{late})
	if st := c.matchState(t); st.AgedOut != 1 || st.Pending != 0 {
		t.Fatalf("span did not age: %+v", *st)
	}
	// New traffic on the same stream still matches: the cursor skipped
	// the lost bytes.
	send := entry(meter.EvSend, 0, 1, 3, 40, 510)
	recv := entry(meter.EvRecv, 1, 2, 6, 40, 520)
	c.apply([]tapEntry{send, recv})
	if st := c.matchState(t); st.StreamMatched != 1 || st.Pending != 0 {
		t.Fatalf("stream dead after aging: %+v", *st)
	}
}

// TestMatchMaxPendingEviction fills a datagram FIFO past MaxPending:
// the oldest entry is evicted as aged and the queue stays bounded.
func TestMatchMaxPendingEviction(t *testing.T) {
	c := NewCollector(Config{MaxPending: 4})
	dst := meter.InetName(1, 99)
	var batch []tapEntry
	for i := 0; i < 10; i++ {
		e := entry(meter.EvSend, 0, 1, 3, 64, int64(10+i))
		e.name1 = dst
		batch = append(batch, e)
	}
	c.apply(batch)
	if st := c.matchState(t); st.Pending != 4 || st.AgedOut != 6 {
		t.Fatalf("eviction: %+v", *st)
	}
}

// TestProcOverflowFold sends events for more processes than MaxProcs:
// the surplus folds into one overflow cell and the totals still add
// up.
func TestProcOverflowFold(t *testing.T) {
	c := NewCollector(Config{MaxProcs: 4})
	var batch []tapEntry
	for i := 0; i < 10; i++ {
		batch = append(batch, entry(meter.EvRecvCall, 0, uint32(100+i), 3, 0, int64(10+i)))
	}
	c.apply(batch)
	st, err := DecodeComm(c.captureComm())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Procs) != 5 { // 4 real cells + the overflow fold
		t.Fatalf("%d proc cells, want 5", len(st.Procs))
	}
	var calls int64
	for i := range st.Procs {
		calls += st.Procs[i].RecvCalls
	}
	if calls != 10 || st.Events != 10 {
		t.Fatalf("recvCalls %d events %d, want 10/10", calls, st.Events)
	}
	ov := st.Procs[len(st.Procs)-1]
	if ov.Machine != UnknownMachine || ov.RecvCalls != 6 {
		t.Fatalf("overflow cell %+v", ov)
	}
}

// TestPairOverflowFold bounds the matrix: pairs past MaxPairs land in
// the (unknown,unknown) cell.
func TestPairOverflowFold(t *testing.T) {
	c := NewCollector(Config{MaxPairs: 3})
	var batch []tapEntry
	for i := 0; i < 8; i++ {
		e := entry(meter.EvSend, uint16(i), 1, 3, 10, int64(10+i))
		e.name1 = meter.InetName(uint32(100+i), 9)
		batch = append(batch, e)
	}
	c.apply(batch)
	st, err := DecodeComm(c.captureComm())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Pairs) != 4 { // 3 real pairs + the unknown fold
		t.Fatalf("%d pairs, want 4: %+v", len(st.Pairs), st.Pairs)
	}
	var msgs int64
	var fold *PairState
	for i := range st.Pairs {
		msgs += st.Pairs[i].SendMsgs
		if st.Pairs[i].Src == UnknownMachine && st.Pairs[i].Dst == UnknownMachine {
			fold = &st.Pairs[i]
		}
	}
	if msgs != 8 || fold == nil || fold.SendMsgs != 5 {
		t.Fatalf("fold cell %+v, total %d", fold, msgs)
	}
}
