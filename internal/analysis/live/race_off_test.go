//go:build !race

package live

// raceEnabled reports whether this test binary was built with the race
// detector. The tap-path allocation gate skips under race — the race
// runtime adds bookkeeping allocations — while the non-race CI step
// still enforces it on every push.
const raceEnabled = false
