package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"dpm/internal/analysis"
	"dpm/internal/filter"
	"dpm/internal/obs"
)

// Snapshot section names and the shared payload version. Payloads are
// little-endian, bounds-checked on decode, and merge by key-wise
// summation (comm), interval union (par), and counter addition
// (match) — all associative and commutative, the contract
// obs.SectionMerger requires. A decoder rejects corrupt bytes with
// ErrBadSection; the obs merge then degrades to carrying both inputs
// instead of dropping state.
const (
	SectionComm  = "live.comm"
	SectionPar   = "live.par"
	SectionMatch = "live.match"
	// SectionVersion is the payload version this package writes. A
	// section arriving with a different version is left unmerged and
	// unrendered (carried opaquely), so mixed-version clusters degrade
	// instead of misparsing.
	SectionVersion = 1
)

// ErrBadSection reports an undecodable live-analysis payload.
var ErrBadSection = errors.New("live: corrupt section")

// maxSectionEntries bounds decoded tables against corrupt counts.
const maxSectionEntries = 1 << 20

func init() {
	obs.RegisterSectionMerger(SectionComm, mergeCommPayload)
	obs.RegisterSectionMerger(SectionPar, mergeParPayload)
	obs.RegisterSectionMerger(SectionMatch, mergeMatchPayload)
	obs.RegisterSectionRenderer(SectionComm, renderComm)
	obs.RegisterSectionRenderer(SectionPar, renderPar)
	obs.RegisterSectionRenderer(SectionMatch, renderMatch)
}

// Factory returns the filter.TapFactory that equips every standard
// filter with a live-analysis collector on its machine's registry —
// what internal/core installs at cluster construction.
func Factory() filter.TapFactory {
	return func(reg *obs.Registry, _ string) filter.TapSource {
		return NewCollector(Config{Obs: reg})
	}
}

// ProcCommState is one process's row of the decoded communication
// state.
type ProcCommState struct {
	Machine    uint16
	PID        uint32
	Sends      int64
	Recvs      int64
	RecvCalls  int64
	Sockets    int64
	Forks      int64
	BytesSent  int64
	BytesRecvd int64
}

// PairState is one (src,dst) cell of the decoded matrix. Dst or Src
// equal to UnknownMachine mark unresolved peers.
type PairState struct {
	Src, Dst  uint16
	SendMsgs  int64
	SendBytes int64
	RecvMsgs  int64
	RecvBytes int64
	Sizes     map[int]int64
}

// UnknownMachine is the matrix id for an unresolvable peer.
const UnknownMachine = unknownMachine

// CommState is the decoded live.comm section.
type CommState struct {
	Events     int64
	Sends      int64
	Recvs      int64
	BytesSent  int64
	BytesRecvd int64
	Sizes      map[int]int64
	Procs      []ProcCommState
	Pairs      []PairState
}

// ProcInterval is one process's lifetime in the decoded live.par
// section.
type ProcInterval struct {
	Machine    uint16
	PID        uint32
	Terminated bool
	First      int64
	Last       int64
	MaxCPU     int64
}

// ParState is the decoded live.par section.
type ParState struct {
	Procs []ProcInterval
}

// MatchState is the decoded live.match section.
type MatchState struct {
	Conns         int64
	StreamMatched int64
	DgramMatched  int64
	AgedOut       int64
	Pending       int64
}

// Curve derives the parallelism profile from the merged intervals —
// the same computation analysis.MeasureParallelism runs over a trace,
// so on a completed stream the two agree exactly.
func (p *ParState) Curve() *analysis.Parallelism {
	out := &analysis.Parallelism{Histogram: make(map[int]int64)}
	if len(p.Procs) == 0 {
		return out
	}
	out.Processes = len(p.Procs)
	minT, maxT := p.Procs[0].First, p.Procs[0].Last
	type edge struct {
		t     int64
		delta int
	}
	edges := make([]edge, 0, 2*len(p.Procs))
	for i := range p.Procs {
		iv := &p.Procs[i]
		out.TotalCPUMillis += iv.MaxCPU
		if iv.First < minT {
			minT = iv.First
		}
		if iv.Last > maxT {
			maxT = iv.Last
		}
		edges = append(edges, edge{iv.First, +1}, edge{iv.Last, -1})
	}
	out.MakespanMillis = maxT - minT
	if out.MakespanMillis > 0 {
		out.Speedup = float64(out.TotalCPUMillis) / float64(out.MakespanMillis)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta > edges[j].delta // starts before ends
	})
	level := 0
	prev := int64(-1)
	for _, e := range edges {
		if prev >= 0 && e.t > prev && level > 0 {
			out.Histogram[level] += e.t - prev
		}
		level += e.delta
		prev = e.t
	}
	return out
}

// Running counts the intervals not yet terminated — the merged form of
// the live.procs_live gauge.
func (p *ParState) Running() int {
	n := 0
	for i := range p.Procs {
		if !p.Procs[i].Terminated {
			n++
		}
	}
	return n
}

// ---- encoding ----

type sreader struct {
	b   []byte
	off int
	err error
}

func (r *sreader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrBadSection, r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *sreader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *sreader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *sreader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *sreader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *sreader) count() uint32 {
	n := r.u32()
	if r.err == nil && n > maxSectionEntries {
		r.err = fmt.Errorf("%w: count %d", ErrBadSection, n)
		return 0
	}
	return n
}

func appendSizes(b []byte, sizes *[numSizeBuckets]int64) []byte {
	le := binary.LittleEndian
	n := 0
	for _, v := range sizes {
		if v != 0 {
			n++
		}
	}
	b = le.AppendUint16(b, uint16(n))
	for i, v := range sizes {
		if v != 0 {
			b = append(b, uint8(i))
			b = le.AppendUint64(b, uint64(v))
		}
	}
	return b
}

func readSizes(r *sreader) map[int]int64 {
	n := int(r.u16())
	var out map[int]int64
	for i := 0; i < n && r.err == nil; i++ {
		bucket := int(r.u8())
		v := r.i64()
		if r.err == nil {
			if out == nil {
				out = make(map[int]int64, n)
			}
			out[bucket] += v
		}
	}
	return out
}

// captureComm encodes the live.comm payload:
//
//	i64 events, sends, recvs, bytesSent, bytesRecvd,
//	u16 n sizes × (u8 bucket, i64 count),
//	u32 n procs × (u16 machine, u32 pid, i64 sends, recvs, recvCalls,
//	               sockets, forks, bytesSent, bytesRecvd),
//	u32 n pairs × (u16 src, u16 dst, i64 sendMsgs, sendBytes,
//	               recvMsgs, recvBytes, u16 n sizes × (u8, i64)).
func (c *Collector) captureComm() []byte {
	c.sync()
	c.mu.Lock()
	defer c.mu.Unlock()
	le := binary.LittleEndian
	b := make([]byte, 0, 64+70*len(c.procs)+80*len(c.pairs))
	b = le.AppendUint64(b, uint64(c.events))
	b = le.AppendUint64(b, uint64(c.sends))
	b = le.AppendUint64(b, uint64(c.recvs))
	b = le.AppendUint64(b, uint64(c.bytesSent))
	b = le.AppendUint64(b, uint64(c.bytesRecv))
	b = appendSizes(b, &c.sizes)

	cells := c.sortedCells()
	b = le.AppendUint32(b, uint32(len(cells)))
	for _, pc := range cells {
		b = le.AppendUint16(b, pc.machine)
		b = le.AppendUint32(b, pc.pid)
		for _, v := range [7]int64{pc.sends, pc.recvs, pc.recvCalls, pc.sockets, pc.forks, pc.bytesSent, pc.bytesRecvd} {
			b = le.AppendUint64(b, uint64(v))
		}
	}
	keys := make([]uint32, 0, len(c.pairs))
	for k := range c.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b = le.AppendUint32(b, uint32(len(keys)))
	for _, k := range keys {
		p := c.pairs[k]
		b = le.AppendUint16(b, p.src)
		b = le.AppendUint16(b, p.dst)
		b = le.AppendUint64(b, uint64(p.sendMsgs))
		b = le.AppendUint64(b, uint64(p.sendBytes))
		b = le.AppendUint64(b, uint64(p.recvMsgs))
		b = le.AppendUint64(b, uint64(p.recvBytes))
		b = appendSizes(b, &p.sizes)
	}
	return b
}

// sortedCells returns the proc cells (plus the overflow fold when it
// absorbed anything) ordered by (machine, pid) for deterministic
// encodes.
func (c *Collector) sortedCells() []*procCell {
	cells := make([]*procCell, 0, len(c.procs)+1)
	for _, pc := range c.procs {
		cells = append(cells, pc)
	}
	if ov := &c.overflow; ov.first >= 0 {
		cells = append(cells, ov)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].machine != cells[j].machine {
			return cells[i].machine < cells[j].machine
		}
		return cells[i].pid < cells[j].pid
	})
	return cells
}

// DecodeComm parses a live.comm payload.
func DecodeComm(data []byte) (*CommState, error) {
	r := &sreader{b: data}
	st := &CommState{
		Events:     r.i64(),
		Sends:      r.i64(),
		Recvs:      r.i64(),
		BytesSent:  r.i64(),
		BytesRecvd: r.i64(),
	}
	st.Sizes = readSizes(r)
	np := r.count()
	for i := uint32(0); i < np && r.err == nil; i++ {
		p := ProcCommState{Machine: r.u16(), PID: r.u32()}
		p.Sends, p.Recvs, p.RecvCalls = r.i64(), r.i64(), r.i64()
		p.Sockets, p.Forks = r.i64(), r.i64()
		p.BytesSent, p.BytesRecvd = r.i64(), r.i64()
		if r.err == nil {
			st.Procs = append(st.Procs, p)
		}
	}
	npairs := r.count()
	for i := uint32(0); i < npairs && r.err == nil; i++ {
		p := PairState{Src: r.u16(), Dst: r.u16()}
		p.SendMsgs, p.SendBytes = r.i64(), r.i64()
		p.RecvMsgs, p.RecvBytes = r.i64(), r.i64()
		p.Sizes = readSizes(r)
		if r.err == nil {
			st.Pairs = append(st.Pairs, p)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return st, nil
}

// capturePar encodes the live.par payload:
//
//	u32 n procs × (u16 machine, u32 pid, u8 terminated,
//	               i64 first, last, maxCPU).
func (c *Collector) capturePar() []byte {
	c.sync()
	c.mu.Lock()
	defer c.mu.Unlock()
	le := binary.LittleEndian
	cells := c.sortedCells()
	b := make([]byte, 0, 8+31*len(cells))
	b = le.AppendUint32(b, uint32(len(cells)))
	for _, pc := range cells {
		b = le.AppendUint16(b, pc.machine)
		b = le.AppendUint32(b, pc.pid)
		var term uint8
		if pc.terminated {
			term = 1
		}
		b = append(b, term)
		first := pc.first
		if first < 0 {
			first = 0
		}
		b = le.AppendUint64(b, uint64(first))
		b = le.AppendUint64(b, uint64(pc.last))
		b = le.AppendUint64(b, uint64(pc.maxCPU))
	}
	return b
}

// DecodePar parses a live.par payload.
func DecodePar(data []byte) (*ParState, error) {
	r := &sreader{b: data}
	st := &ParState{}
	n := r.count()
	for i := uint32(0); i < n && r.err == nil; i++ {
		iv := ProcInterval{Machine: r.u16(), PID: r.u32(), Terminated: r.u8() != 0}
		iv.First, iv.Last, iv.MaxCPU = r.i64(), r.i64(), r.i64()
		if r.err == nil {
			st.Procs = append(st.Procs, iv)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return st, nil
}

// captureMatch encodes the live.match payload:
//
//	i64 conns, streamMatched, dgramMatched, agedOut, pending.
func (c *Collector) captureMatch() []byte {
	c.sync()
	c.mu.Lock()
	defer c.mu.Unlock()
	le := binary.LittleEndian
	m := &c.match
	b := make([]byte, 0, 40)
	b = le.AppendUint64(b, uint64(m.conns))
	b = le.AppendUint64(b, uint64(m.tStream+m.dStream))
	b = le.AppendUint64(b, uint64(m.tDgram+m.dDgram))
	b = le.AppendUint64(b, uint64(m.tAged+m.dAged))
	b = le.AppendUint64(b, uint64(m.pending))
	return b
}

// DecodeMatch parses a live.match payload.
func DecodeMatch(data []byte) (*MatchState, error) {
	r := &sreader{b: data}
	st := &MatchState{
		Conns:         r.i64(),
		StreamMatched: r.i64(),
		DgramMatched:  r.i64(),
		AgedOut:       r.i64(),
		Pending:       r.i64(),
	}
	if r.err != nil {
		return nil, r.err
	}
	return st, nil
}

// ---- merging ----

func mergeCommPayload(a, b []byte) ([]byte, error) {
	sa, err := DecodeComm(a)
	if err != nil {
		return nil, err
	}
	sb, err := DecodeComm(b)
	if err != nil {
		return nil, err
	}
	sa.Events += sb.Events
	sa.Sends += sb.Sends
	sa.Recvs += sb.Recvs
	sa.BytesSent += sb.BytesSent
	sa.BytesRecvd += sb.BytesRecvd
	if sa.Sizes == nil && sb.Sizes != nil {
		sa.Sizes = make(map[int]int64, len(sb.Sizes))
	}
	for k, v := range sb.Sizes {
		sa.Sizes[k] += v
	}
	procs := make(map[uint64]*ProcCommState, len(sa.Procs)+len(sb.Procs))
	for i := range sa.Procs {
		p := &sa.Procs[i]
		procs[procKey(p.Machine, p.PID)] = p
	}
	var extra []ProcCommState
	for i := range sb.Procs {
		p := &sb.Procs[i]
		if dst, ok := procs[procKey(p.Machine, p.PID)]; ok {
			dst.Sends += p.Sends
			dst.Recvs += p.Recvs
			dst.RecvCalls += p.RecvCalls
			dst.Sockets += p.Sockets
			dst.Forks += p.Forks
			dst.BytesSent += p.BytesSent
			dst.BytesRecvd += p.BytesRecvd
		} else {
			extra = append(extra, *p)
		}
	}
	sa.Procs = append(sa.Procs, extra...)
	pairs := make(map[uint32]*PairState, len(sa.Pairs)+len(sb.Pairs))
	for i := range sa.Pairs {
		p := &sa.Pairs[i]
		pairs[pairKey(p.Src, p.Dst)] = p
	}
	var extraPairs []PairState
	for i := range sb.Pairs {
		p := &sb.Pairs[i]
		if dst, ok := pairs[pairKey(p.Src, p.Dst)]; ok {
			dst.SendMsgs += p.SendMsgs
			dst.SendBytes += p.SendBytes
			dst.RecvMsgs += p.RecvMsgs
			dst.RecvBytes += p.RecvBytes
			if dst.Sizes == nil && p.Sizes != nil {
				dst.Sizes = make(map[int]int64, len(p.Sizes))
			}
			for k, v := range p.Sizes {
				dst.Sizes[k] += v
			}
		} else {
			extraPairs = append(extraPairs, *p)
		}
	}
	sa.Pairs = append(sa.Pairs, extraPairs...)
	return encodeCommState(sa), nil
}

func encodeCommState(st *CommState) []byte {
	le := binary.LittleEndian
	b := make([]byte, 0, 64+70*len(st.Procs)+80*len(st.Pairs))
	b = le.AppendUint64(b, uint64(st.Events))
	b = le.AppendUint64(b, uint64(st.Sends))
	b = le.AppendUint64(b, uint64(st.Recvs))
	b = le.AppendUint64(b, uint64(st.BytesSent))
	b = le.AppendUint64(b, uint64(st.BytesRecvd))
	b = appendSizeMap(b, st.Sizes)
	sort.Slice(st.Procs, func(i, j int) bool {
		if st.Procs[i].Machine != st.Procs[j].Machine {
			return st.Procs[i].Machine < st.Procs[j].Machine
		}
		return st.Procs[i].PID < st.Procs[j].PID
	})
	b = le.AppendUint32(b, uint32(len(st.Procs)))
	for i := range st.Procs {
		p := &st.Procs[i]
		b = le.AppendUint16(b, p.Machine)
		b = le.AppendUint32(b, p.PID)
		for _, v := range [7]int64{p.Sends, p.Recvs, p.RecvCalls, p.Sockets, p.Forks, p.BytesSent, p.BytesRecvd} {
			b = le.AppendUint64(b, uint64(v))
		}
	}
	sort.Slice(st.Pairs, func(i, j int) bool {
		return pairKey(st.Pairs[i].Src, st.Pairs[i].Dst) < pairKey(st.Pairs[j].Src, st.Pairs[j].Dst)
	})
	b = le.AppendUint32(b, uint32(len(st.Pairs)))
	for i := range st.Pairs {
		p := &st.Pairs[i]
		b = le.AppendUint16(b, p.Src)
		b = le.AppendUint16(b, p.Dst)
		b = le.AppendUint64(b, uint64(p.SendMsgs))
		b = le.AppendUint64(b, uint64(p.SendBytes))
		b = le.AppendUint64(b, uint64(p.RecvMsgs))
		b = le.AppendUint64(b, uint64(p.RecvBytes))
		b = appendSizeMap(b, p.Sizes)
	}
	return b
}

func appendSizeMap(b []byte, sizes map[int]int64) []byte {
	le := binary.LittleEndian
	keys := make([]int, 0, len(sizes))
	for k, v := range sizes {
		if v != 0 && k >= 0 && k < numSizeBuckets {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	b = le.AppendUint16(b, uint16(len(keys)))
	for _, k := range keys {
		b = append(b, uint8(k))
		b = le.AppendUint64(b, uint64(sizes[k]))
	}
	return b
}

func mergeParPayload(a, b []byte) ([]byte, error) {
	sa, err := DecodePar(a)
	if err != nil {
		return nil, err
	}
	sb, err := DecodePar(b)
	if err != nil {
		return nil, err
	}
	procs := make(map[uint64]*ProcInterval, len(sa.Procs)+len(sb.Procs))
	for i := range sa.Procs {
		p := &sa.Procs[i]
		procs[procKey(p.Machine, p.PID)] = p
	}
	var extra []ProcInterval
	for i := range sb.Procs {
		p := &sb.Procs[i]
		if dst, ok := procs[procKey(p.Machine, p.PID)]; ok {
			if p.First < dst.First {
				dst.First = p.First
			}
			if p.Last > dst.Last {
				dst.Last = p.Last
			}
			if p.MaxCPU > dst.MaxCPU {
				dst.MaxCPU = p.MaxCPU
			}
			dst.Terminated = dst.Terminated || p.Terminated
		} else {
			extra = append(extra, *p)
		}
	}
	sa.Procs = append(sa.Procs, extra...)
	sort.Slice(sa.Procs, func(i, j int) bool {
		if sa.Procs[i].Machine != sa.Procs[j].Machine {
			return sa.Procs[i].Machine < sa.Procs[j].Machine
		}
		return sa.Procs[i].PID < sa.Procs[j].PID
	})
	le := binary.LittleEndian
	out := make([]byte, 0, 8+31*len(sa.Procs))
	out = le.AppendUint32(out, uint32(len(sa.Procs)))
	for i := range sa.Procs {
		p := &sa.Procs[i]
		out = le.AppendUint16(out, p.Machine)
		out = le.AppendUint32(out, p.PID)
		var term uint8
		if p.Terminated {
			term = 1
		}
		out = append(out, term)
		out = le.AppendUint64(out, uint64(p.First))
		out = le.AppendUint64(out, uint64(p.Last))
		out = le.AppendUint64(out, uint64(p.MaxCPU))
	}
	return out, nil
}

func mergeMatchPayload(a, b []byte) ([]byte, error) {
	sa, err := DecodeMatch(a)
	if err != nil {
		return nil, err
	}
	sb, err := DecodeMatch(b)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	out := make([]byte, 0, 40)
	out = le.AppendUint64(out, uint64(sa.Conns+sb.Conns))
	out = le.AppendUint64(out, uint64(sa.StreamMatched+sb.StreamMatched))
	out = le.AppendUint64(out, uint64(sa.DgramMatched+sb.DgramMatched))
	out = le.AppendUint64(out, uint64(sa.AgedOut+sb.AgedOut))
	out = le.AppendUint64(out, uint64(sa.Pending+sb.Pending))
	return out, nil
}

// ---- rendering ----

// renderMaxPairs bounds the matrix rows a report prints; the full
// matrix stays in the section.
const renderMaxPairs = 16

func machLabel(m uint16) string {
	if m == unknownMachine {
		return "?"
	}
	return fmt.Sprintf("m%d", m)
}

func renderComm(w io.Writer, s *obs.Section) {
	if s.Version != SectionVersion {
		fmt.Fprintf(w, "live communication: unsupported payload v%d (%d bytes)\n", s.Version, len(s.Data))
		return
	}
	st, err := DecodeComm(s.Data)
	if err != nil {
		fmt.Fprintf(w, "live communication: %v\n", err)
		return
	}
	fmt.Fprintf(w, "live communication: %d events, %d procs, sends %d (%d B), recvs %d (%d B)\n",
		st.Events, len(st.Procs), st.Sends, st.BytesSent, st.Recvs, st.BytesRecvd)
	if len(st.Sizes) > 0 {
		keys := make([]int, 0, len(st.Sizes))
		for k := range st.Sizes {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		fmt.Fprintf(w, "  send sizes:")
		for _, k := range keys {
			fmt.Fprintf(w, " <=2^%d:%d", k, st.Sizes[k])
		}
		fmt.Fprintf(w, "\n")
	}
	if len(st.Pairs) == 0 {
		return
	}
	pairs := st.Pairs
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].SendBytes != pairs[j].SendBytes {
			return pairs[i].SendBytes > pairs[j].SendBytes
		}
		return pairKey(pairs[i].Src, pairs[i].Dst) < pairKey(pairs[j].Src, pairs[j].Dst)
	})
	fmt.Fprintf(w, "  matrix %-12s %22s %22s\n", "(src->dst)", "sent msgs/bytes", "recvd msgs/bytes")
	shown := pairs
	if len(shown) > renderMaxPairs {
		shown = shown[:renderMaxPairs]
	}
	for i := range shown {
		p := &shown[i]
		fmt.Fprintf(w, "  %-19s %15d/%-10d %11d/%-10d\n",
			machLabel(p.Src)+"->"+machLabel(p.Dst), p.SendMsgs, p.SendBytes, p.RecvMsgs, p.RecvBytes)
	}
	if n := len(pairs) - len(shown); n > 0 {
		fmt.Fprintf(w, "  ... and %d more pairs\n", n)
	}
}

func renderPar(w io.Writer, s *obs.Section) {
	if s.Version != SectionVersion {
		fmt.Fprintf(w, "live parallelism: unsupported payload v%d (%d bytes)\n", s.Version, len(s.Data))
		return
	}
	st, err := DecodePar(s.Data)
	if err != nil {
		fmt.Fprintf(w, "live parallelism: %v\n", err)
		return
	}
	curve := st.Curve()
	fmt.Fprintf(w, "live parallelism: %d procs (%d running), cpu %d ms over %d ms, speedup %.2f\n",
		curve.Processes, st.Running(), curve.TotalCPUMillis, curve.MakespanMillis, curve.Speedup)
	if len(curve.Histogram) > 0 {
		ks := make([]int, 0, len(curve.Histogram))
		for k := range curve.Histogram {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		fmt.Fprintf(w, "  concurrency:")
		for _, k := range ks {
			fmt.Fprintf(w, " %dx:%dms", k, curve.Histogram[k])
		}
		fmt.Fprintf(w, "\n")
	}
}

func renderMatch(w io.Writer, s *obs.Section) {
	if s.Version != SectionVersion {
		fmt.Fprintf(w, "live matching: unsupported payload v%d (%d bytes)\n", s.Version, len(s.Data))
		return
	}
	st, err := DecodeMatch(s.Data)
	if err != nil {
		fmt.Fprintf(w, "live matching: %v\n", err)
		return
	}
	fmt.Fprintf(w, "live matching: %d conns, stream %d, dgram %d, aged out %d, pending %d\n",
		st.Conns, st.StreamMatched, st.DgramMatched, st.AgedOut, st.Pending)
}
