package live

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dpm/internal/meter"
	"dpm/internal/obs"
)

// sampleCollector builds a collector holding a little of everything:
// procs, pairs, a connection, matched and pending traffic.
func sampleCollector(seed uint16) *Collector {
	c := NewCollector(Config{})
	cn := meter.InetName(uint32(seed), 10)
	sn := meter.InetName(uint32(seed+1), 20)
	conn := entry(meter.EvConnect, seed, 1, 3, 0, 10)
	conn.name1, conn.name2 = cn, sn
	acc := entry(meter.EvAccept, seed+1, 2, 0, 6, 20)
	acc.name1, acc.name2 = sn, cn
	send := entry(meter.EvSend, seed, 1, 3, 100, 30)
	recv := entry(meter.EvRecv, seed+1, 2, 6, 100, 40)
	dg := entry(meter.EvSend, seed, 1, 9, 64, 50)
	dg.name1 = meter.InetName(uint32(seed+2), 30)
	term := entry(meter.EvTermProc, seed, 1, 0, 0, 60)
	c.apply([]tapEntry{conn, acc, send, recv, dg, term})
	return c
}

// TestSectionMergeCommutativeAssociative checks the obs.SectionMerger
// contract for all three payloads: merging in any order or grouping
// yields the same decoded state.
func TestSectionMergeCommutativeAssociative(t *testing.T) {
	captures := map[string][]func() []byte{}
	for _, seed := range []uint16{0, 5, 9} {
		c := sampleCollector(seed)
		captures[SectionComm] = append(captures[SectionComm], c.captureComm)
		captures[SectionPar] = append(captures[SectionPar], c.capturePar)
		captures[SectionMatch] = append(captures[SectionMatch], c.captureMatch)
	}
	mergers := map[string]func(a, b []byte) ([]byte, error){
		SectionComm:  mergeCommPayload,
		SectionPar:   mergeParPayload,
		SectionMatch: mergeMatchPayload,
	}
	for name, caps := range captures {
		merge := mergers[name]
		a, b, c := caps[0](), caps[1](), caps[2]()
		ab, err := merge(a, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ba, err := merge(b, a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(ab, ba) {
			t.Fatalf("%s: merge not commutative", name)
		}
		abc1, err := merge(ab, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bc, err := merge(b, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		abc2, err := merge(a, bc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(abc1, abc2) {
			t.Fatalf("%s: merge not associative", name)
		}
	}
}

// TestMergeThroughSnapshots runs the real cluster path: two machines'
// registry snapshots, marshalled, parsed, and merged — the decoded
// live state must be the key-wise sum/union of the two.
func TestMergeThroughSnapshots(t *testing.T) {
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	ca := NewCollector(Config{Obs: regA})
	cb := NewCollector(Config{Obs: regB})
	ca.apply([]tapEntry{entry(meter.EvRecvCall, 0, 100, 3, 0, 10)})
	cb.apply([]tapEntry{entry(meter.EvRecvCall, 1, 200, 3, 0, 30)})
	cb.apply([]tapEntry{entry(meter.EvRecvCall, 0, 100, 3, 0, 50)}) // same proc seen remotely
	sa, err := obs.ParseSnapshot(regA.Snapshot().MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := obs.ParseSnapshot(regB.Snapshot().MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	sa.Merge(sb)
	sec := sa.Section(SectionComm)
	if sec == nil || len(sa.Sections) != 3 {
		t.Fatalf("merged snapshot sections: %+v", sa.Sections)
	}
	st, err := DecodeComm(sec.Data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 3 || len(st.Procs) != 2 {
		t.Fatalf("merged comm: %+v", st)
	}
	for i := range st.Procs {
		p := &st.Procs[i]
		want := int64(1)
		if p.Machine == 0 && p.PID == 100 {
			want = 2
		}
		if p.RecvCalls != want {
			t.Fatalf("proc m%d/p%d recvCalls %d, want %d", p.Machine, p.PID, p.RecvCalls, want)
		}
	}
	par, err := DecodePar(sa.Section(SectionPar).Data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Procs {
		p := &par.Procs[i]
		if p.Machine == 0 && p.PID == 100 {
			if p.First != 10 || p.Last != 50 {
				t.Fatalf("interval union: %+v", *p)
			}
		}
	}
}

// TestCorruptPayloadsRejected pins the decoder behavior on the fuzz
// corpus shapes: truncation and oversized counts fail with
// ErrBadSection rather than panicking or misreading.
func TestCorruptPayloadsRejected(t *testing.T) {
	c := sampleCollector(0)
	for name, data := range map[string][]byte{
		SectionComm:  c.captureComm(),
		SectionPar:   c.capturePar(),
		SectionMatch: c.captureMatch(),
	} {
		decode := func(b []byte) error {
			var err error
			switch name {
			case SectionComm:
				_, err = DecodeComm(b)
			case SectionPar:
				_, err = DecodePar(b)
			case SectionMatch:
				_, err = DecodeMatch(b)
			}
			return err
		}
		if err := decode(data); err != nil {
			t.Fatalf("%s: valid payload rejected: %v", name, err)
		}
		for cut := 1; cut <= len(data); cut++ {
			if err := decode(data[:len(data)-cut]); !errors.Is(err, ErrBadSection) {
				t.Fatalf("%s: truncated by %d: err=%v", name, cut, err)
			}
		}
	}
	// A corrupt count field must be bounded, not allocated.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := DecodePar(huge); !errors.Is(err, ErrBadSection) {
		t.Fatalf("oversized count: %v", err)
	}
	// Merging corrupt bytes degrades: the obs layer keeps both inputs.
	good := c.capturePar()
	if _, err := mergeParPayload(good, []byte{1, 2, 3}); !errors.Is(err, ErrBadSection) {
		t.Fatalf("merge of corrupt payload must error: %v", err)
	}
	sa := &obs.Snapshot{Sections: []obs.Section{{Name: SectionPar, Version: SectionVersion, Data: good}}}
	sb := &obs.Snapshot{Sections: []obs.Section{{Name: SectionPar, Version: SectionVersion, Data: []byte{1, 2, 3}}}}
	sa.Merge(sb)
	if len(sa.Sections) != 2 {
		t.Fatalf("corrupt merge must keep both sections, got %+v", sa.Sections)
	}
}

// TestUnknownVersionCarried checks mixed-version tolerance end to end:
// a future payload version is merged as an opaque extra section and
// rendered as unsupported, never decoded.
func TestUnknownVersionCarried(t *testing.T) {
	cur := obs.Section{Name: SectionMatch, Version: SectionVersion, Data: sampleCollector(0).captureMatch()}
	future := obs.Section{Name: SectionMatch, Version: SectionVersion + 1, Data: []byte("opaque-future-bytes")}
	sa := &obs.Snapshot{Sections: []obs.Section{cur}}
	sb := &obs.Snapshot{Sections: []obs.Section{future}}
	sa.Merge(sb)
	if len(sa.Sections) != 2 {
		t.Fatalf("future version must be carried: %+v", sa.Sections)
	}
	var out strings.Builder
	sa.Render(&out)
	if !strings.Contains(out.String(), "unsupported payload v2") {
		t.Fatalf("render: %q", out.String())
	}
	if !strings.Contains(out.String(), "live matching:") {
		t.Fatalf("current version must still render: %q", out.String())
	}
}

// TestRenderSections spot-checks the human-readable render of all
// three operators.
func TestRenderSections(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(Config{Obs: reg})
	send := entry(meter.EvSend, 0, 1, 3, 100, 10)
	send.name1 = meter.InetName(1, 99)
	c.apply([]tapEntry{send})
	var out strings.Builder
	reg.Snapshot().Render(&out)
	s := out.String()
	for _, want := range []string{
		"live communication: 1 events, 1 procs, sends 1 (100 B)",
		"send sizes: <=2^7:1",
		"m0->m1",
		"live parallelism: 1 procs (1 running)",
		"live matching: 0 conns, stream 0, dgram 0, aged out 0, pending 1",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

// TestSectionRoundTrip re-encodes decoded state through the mergers
// with an empty counterpart and checks nothing changes — the encode
// and decode are exact inverses on canonical payloads.
func TestSectionRoundTrip(t *testing.T) {
	c := sampleCollector(3)
	comm := c.captureComm()
	st, err := DecodeComm(comm)
	if err != nil {
		t.Fatal(err)
	}
	again := encodeCommState(st)
	if !bytes.Equal(comm, again) {
		t.Fatalf("comm payload not canonical:\n%x\n%x", comm, again)
	}
	st2, err := DecodeComm(again)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("comm state changed across round trip")
	}
}
