package analysis

import (
	"sort"

	"dpm/internal/meter"
	"dpm/internal/trace"
)

// Match pairs one receive event with the send event (or one of the
// send events, for streams) that produced its data.
type Match struct {
	SendSeq int
	RecvSeq int
	Bytes   int
}

// MatchOptions configures message matching.
type MatchOptions struct {
	// HostToMachine maps network host addresses (as they appear in
	// socket names) to the machine ids of meter headers. When nil,
	// the identity map is used, which is correct for single-network
	// clusters whose machines were created in order.
	HostToMachine map[uint32]int
}

func (o *MatchOptions) machineOf(host uint32) int {
	if o == nil || o.HostToMachine == nil {
		return int(host)
	}
	if m, ok := o.HostToMachine[host]; ok {
		return m
	}
	return int(host)
}

// MatchMessages pairs sends with receives. Stream traffic is matched
// through reconstructed connections by byte position — exact, because
// streams are reliable and ordered. Datagram traffic is matched by
// the names carried in the events (the send's destination name and the
// receive's source name) in FIFO order per socket pair; loss and
// reordering make this a best effort, as it was for the paper's
// analyses.
func MatchMessages(events []trace.Event, opts *MatchOptions) []Match {
	matches := matchStreams(events)
	matches = append(matches, matchDatagrams(events, opts)...)
	sort.Slice(matches, func(i, j int) bool { return matches[i].RecvSeq < matches[j].RecvSeq })
	return matches
}

// matchStreams matches sends to receives along each direction of each
// connection by cumulative byte offset.
func matchStreams(events []trace.Event) []Match {
	conns := Connections(events)
	// Map each connection endpoint to a direction id; collect sends
	// and recvs per direction.
	type dir struct {
		sends []int // event indexes
		recvs []int
	}
	dirOf := make(map[endpoint]*[2]dir) // two directions per connection
	sideOf := make(map[endpoint]int)
	for i := range conns {
		c := &conns[i]
		d := &[2]dir{}
		dirOf[endpoint{c.Client, c.ClientSock}] = d
		dirOf[endpoint{c.Server, c.ServerSock}] = d
		sideOf[endpoint{c.Client, c.ClientSock}] = 0
		sideOf[endpoint{c.Server, c.ServerSock}] = 1
	}
	for i := range events {
		e := &events[i]
		ep := endpoint{keyOf(e), e.Sock()}
		d, ok := dirOf[ep]
		if !ok {
			continue
		}
		side := sideOf[ep]
		switch e.Type {
		case meter.EvSend:
			if e.Name("destName").IsZero() {
				d[side].sends = append(d[side].sends, i)
			}
		case meter.EvRecv:
			if e.Name("sourceName").IsZero() {
				d[1-side].recvs = append(d[1-side].recvs, i)
			}
		}
	}
	var out []Match
	seen := make(map[*[2]dir]bool)
	for _, d := range dirOf {
		if seen[d] {
			continue
		}
		seen[d] = true
		for side := 0; side < 2; side++ {
			out = append(out, matchByteSpans(events, d[side].sends, d[side].recvs)...)
		}
	}
	return out
}

// matchByteSpans pairs sends and recvs sharing one byte stream: the
// k-th byte sent is the k-th byte received, so a receive matches every
// send whose span overlaps its own.
func matchByteSpans(events []trace.Event, sends, recvs []int) []Match {
	type span struct {
		idx      int
		from, to int64 // [from, to)
	}
	var sendSpans []span
	var off int64
	for _, i := range sends {
		n := int64(events[i].MsgLength())
		sendSpans = append(sendSpans, span{i, off, off + n})
		off += n
	}
	var out []Match
	var roff int64
	si := 0
	for _, ri := range recvs {
		n := int64(events[ri].MsgLength())
		rfrom, rto := roff, roff+n
		roff = rto
		for si < len(sendSpans) && sendSpans[si].to <= rfrom {
			si++
		}
		for j := si; j < len(sendSpans) && sendSpans[j].from < rto; j++ {
			overlap := minI64(rto, sendSpans[j].to) - maxI64(rfrom, sendSpans[j].from)
			if overlap > 0 {
				out = append(out, Match{SendSeq: events[sendSpans[j].idx].Seq, RecvSeq: events[ri].Seq, Bytes: int(overlap)})
			}
		}
	}
	return out
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// matchDatagrams pairs datagram sends and receives. A receive's
// sourceName names the sending socket; a send's destName names the
// receiving socket. Each (sender socket, destName) group is one flow;
// it is joined to the (receiver socket, sourceName) group whose
// machines correspond, FIFO within the flow.
func matchDatagrams(events []trace.Event, opts *MatchOptions) []Match {
	type sendKey struct {
		proc ProcKey
		sock uint32
		dest meter.Name
	}
	type recvKey struct {
		proc ProcKey
		sock uint32
		src  meter.Name
	}
	sendGroups := make(map[sendKey][]int)
	var sendOrder []sendKey
	recvGroups := make(map[recvKey][]int)
	var recvOrder []recvKey
	for i := range events {
		e := &events[i]
		switch e.Type {
		case meter.EvSend:
			d := e.Name("destName")
			if d.IsZero() {
				continue
			}
			k := sendKey{keyOf(e), e.Sock(), d}
			if _, ok := sendGroups[k]; !ok {
				sendOrder = append(sendOrder, k)
			}
			sendGroups[k] = append(sendGroups[k], i)
		case meter.EvRecv:
			s := e.Name("sourceName")
			if s.IsZero() {
				continue
			}
			k := recvKey{keyOf(e), e.Sock(), s}
			if _, ok := recvGroups[k]; !ok {
				recvOrder = append(recvOrder, k)
			}
			recvGroups[k] = append(recvGroups[k], i)
		}
	}
	var out []Match
	usedSend := make(map[sendKey]bool)
	for _, rk := range recvOrder {
		// The source name's host identifies the sender's machine; find
		// the unused send flow from that machine whose destination is
		// on the receiver's machine and whose message lengths line up.
		var srcMachine = -1
		if rk.src.Family() == meter.AFInet {
			h, _ := rk.src.Inet()
			srcMachine = opts.machineOf(h)
		}
		var best sendKey
		found := false
		for _, sk := range sendOrder {
			if usedSend[sk] {
				continue
			}
			if srcMachine >= 0 && sk.proc.Machine != srcMachine {
				continue
			}
			if sk.dest.Family() == meter.AFInet {
				h, _ := sk.dest.Inet()
				if opts.machineOf(h) != rk.proc.Machine {
					continue
				}
			}
			if !lengthsCompatible(events, sendGroups[sk], recvGroups[rk]) {
				continue
			}
			best = sk
			found = true
			break
		}
		if !found {
			continue
		}
		usedSend[best] = true
		sends, recvs := sendGroups[best], recvGroups[rk]
		for i := 0; i < len(recvs) && i < len(sends); i++ {
			out = append(out, Match{
				SendSeq: events[sends[i]].Seq,
				RecvSeq: events[recvs[i]].Seq,
				Bytes:   events[recvs[i]].MsgLength(),
			})
		}
	}
	return out
}

// lengthsCompatible reports whether the k-th received length never
// exceeds the k-th sent length (receives may truncate, and trailing
// sends may have been lost, but a receive cannot grow a datagram).
func lengthsCompatible(events []trace.Event, sends, recvs []int) bool {
	if len(recvs) > len(sends) {
		return false
	}
	for i, ri := range recvs {
		if events[ri].MsgLength() > events[sends[i]].MsgLength() {
			return false
		}
	}
	return true
}
