package analysis

import (
	"testing"

	"dpm/internal/meter"
)

func TestMatchStreamSimple(t *testing.T) {
	b := connScenario()
	matches := MatchMessages(b.events, nil)
	if len(matches) != 1 {
		t.Fatalf("matches = %+v", matches)
	}
	m := matches[0]
	if m.SendSeq != 2 || m.RecvSeq != 3 || m.Bytes != 5 {
		t.Fatalf("match = %+v", m)
	}
}

func TestMatchStreamPartialReads(t *testing.T) {
	// One 6-byte send read as 2 + 4 bytes: both reads match the send.
	b := &tb{}
	srv := meter.InetName(2, 6000)
	cli := meter.InetName(1, 1024)
	b.connect(1, 10, 0, 5, cli, srv)
	b.accept(2, 20, 1, 7, 8, srv, cli)
	send := b.send(1, 10, 2, 5, 6, meter.Name{})
	r1 := b.recv(2, 20, 3, 8, 2, meter.Name{})
	r2 := b.recv(2, 20, 4, 8, 4, meter.Name{})
	matches := MatchMessages(b.events, nil)
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
	if matches[0].SendSeq != send || matches[0].RecvSeq != r1 || matches[0].Bytes != 2 {
		t.Fatalf("first = %+v", matches[0])
	}
	if matches[1].SendSeq != send || matches[1].RecvSeq != r2 || matches[1].Bytes != 4 {
		t.Fatalf("second = %+v", matches[1])
	}
}

func TestMatchStreamCoalescedReads(t *testing.T) {
	// Two 3-byte sends read as one 6-byte read: the read matches both.
	b := &tb{}
	srv := meter.InetName(2, 6000)
	cli := meter.InetName(1, 1024)
	b.connect(1, 10, 0, 5, cli, srv)
	b.accept(2, 20, 1, 7, 8, srv, cli)
	s1 := b.send(1, 10, 2, 5, 3, meter.Name{})
	s2 := b.send(1, 10, 3, 5, 3, meter.Name{})
	r := b.recv(2, 20, 4, 8, 6, meter.Name{})
	matches := MatchMessages(b.events, nil)
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
	for _, m := range matches {
		if m.RecvSeq != r || m.Bytes != 3 {
			t.Fatalf("match = %+v", m)
		}
		if m.SendSeq != s1 && m.SendSeq != s2 {
			t.Fatalf("match send = %d", m.SendSeq)
		}
	}
}

func TestMatchStreamBothDirections(t *testing.T) {
	b := connScenario()
	reply := b.send(2, 20, 11, 8, 3, meter.Name{})
	got := b.recv(1, 10, 12, 5, 3, meter.Name{})
	matches := MatchMessages(b.events, nil)
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
	found := false
	for _, m := range matches {
		if m.SendSeq == reply && m.RecvSeq == got && m.Bytes == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reply direction unmatched: %+v", matches)
	}
}

func TestMatchDatagrams(t *testing.T) {
	b := &tb{}
	recvName := meter.InetName(2, 5000)
	sendName := meter.InetName(1, 1024)
	s1 := b.send(1, 10, 0, 3, 4, recvName)
	s2 := b.send(1, 10, 1, 3, 9, recvName)
	r1 := b.recv(2, 20, 2, 9, 4, sendName)
	r2 := b.recv(2, 20, 3, 9, 9, sendName)
	matches := MatchMessages(b.events, nil)
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
	if matches[0].SendSeq != s1 || matches[0].RecvSeq != r1 {
		t.Fatalf("first = %+v", matches[0])
	}
	if matches[1].SendSeq != s2 || matches[1].RecvSeq != r2 {
		t.Fatalf("second = %+v", matches[1])
	}
}

func TestMatchDatagramsWithLoss(t *testing.T) {
	// Three sends, first two received (the third was lost): only two
	// matches, in order.
	b := &tb{}
	recvName := meter.InetName(2, 5000)
	sendName := meter.InetName(1, 1024)
	b.send(1, 10, 0, 3, 4, recvName)
	b.send(1, 10, 1, 3, 4, recvName)
	b.send(1, 10, 2, 3, 4, recvName)
	b.recv(2, 20, 3, 9, 4, sendName)
	b.recv(2, 20, 4, 9, 4, sendName)
	matches := MatchMessages(b.events, nil)
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
}

func TestMatchDatagramsWrongMachineRejected(t *testing.T) {
	// A receive whose source host does not map to the sender's machine
	// must not match.
	b := &tb{}
	recvName := meter.InetName(2, 5000)
	b.send(1, 10, 0, 3, 4, recvName)
	b.recv(2, 20, 1, 9, 4, meter.InetName(7, 1024)) // source host 7: no machine 7 sender
	matches := MatchMessages(b.events, nil)
	if len(matches) != 0 {
		t.Fatalf("matches = %+v", matches)
	}
}

func TestMatchDatagramsHostMap(t *testing.T) {
	// With an explicit host→machine map, a multi-homed host's second
	// address still matches.
	b := &tb{}
	recvName := meter.InetName(12, 5000) // host 12 is machine 2
	sendName := meter.InetName(11, 1024) // host 11 is machine 1
	b.send(1, 10, 0, 3, 4, recvName)
	b.recv(2, 20, 1, 9, 4, sendName)
	opts := &MatchOptions{HostToMachine: map[uint32]int{11: 1, 12: 2}}
	matches := MatchMessages(b.events, opts)
	if len(matches) != 1 {
		t.Fatalf("matches = %+v", matches)
	}
}

func TestMatchTruncatedDatagram(t *testing.T) {
	// A 10-byte datagram received as 4 bytes still matches (receives
	// may truncate); a receive longer than the send cannot match.
	b := &tb{}
	recvName := meter.InetName(2, 5000)
	sendName := meter.InetName(1, 1024)
	b.send(1, 10, 0, 3, 10, recvName)
	b.recv(2, 20, 1, 9, 4, sendName)
	if matches := MatchMessages(b.events, nil); len(matches) != 1 {
		t.Fatalf("truncated recv unmatched: %+v", matches)
	}

	b2 := &tb{}
	b2.send(1, 10, 0, 3, 4, recvName)
	b2.recv(2, 20, 1, 9, 10, sendName)
	if matches := MatchMessages(b2.events, nil); len(matches) != 0 {
		t.Fatalf("grown recv matched: %+v", matches)
	}
}
