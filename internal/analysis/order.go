package analysis

import (
	"errors"
	"math/bits"

	"dpm/internal/meter"
	"dpm/internal/trace"
)

// Order is the happened-before partial order deduced from a trace.
// Section 4.1: "Statements regarding the global ordering of events can
// only be made on the basis of evidence within the trace. For
// example, since a message must be sent before it may be received, the
// times of sending and receiving a message can always be ordered
// relative to one another. Given these constraints, much of the
// global ordering can be deduced."
type Order struct {
	n    int
	succ [][]int
	// Lamport[i] is a logical timestamp consistent with the partial
	// order (Lamport 78).
	Lamport []int
	// reach[i] is the bitset of events reachable from i.
	reach [][]uint64
}

// ErrCycle reports an inconsistent trace whose deduced order is
// cyclic.
var ErrCycle = errors.New("analysis: trace implies a cyclic event order")

// HappenedBefore builds the partial order from three kinds of
// evidence: program order within each process, send-before-receive
// edges from matched messages, and the synchronization edges of
// connection establishment (connect before accept returns) and fork
// (the fork event precedes every event of the child).
func HappenedBefore(events []trace.Event, matches []Match) (*Order, error) {
	n := len(events)
	o := &Order{n: n, succ: make([][]int, n)}
	addEdge := func(from, to int) {
		if from >= 0 && to >= 0 && from < n && to < n && from != to {
			o.succ[from] = append(o.succ[from], to)
		}
	}

	// Program order per process.
	last := make(map[ProcKey]int)
	firstOf := make(map[ProcKey]int)
	for i := range events {
		k := keyOf(&events[i])
		if prev, ok := last[k]; ok {
			addEdge(prev, i)
		} else {
			firstOf[k] = i
		}
		last[k] = i
	}

	// Message edges.
	for _, m := range matches {
		addEdge(m.SendSeq, m.RecvSeq)
	}

	// Connection establishment synchronizes the two processes.
	for _, c := range Connections(events) {
		addEdge(c.ConnectSeq, c.AcceptSeq)
	}

	// A fork precedes everything its child does.
	for i := range events {
		e := &events[i]
		if e.Type != meter.EvFork {
			continue
		}
		child := ProcKey{Machine: e.Machine, PID: int(e.Fields["newPid"])}
		if f, ok := firstOf[child]; ok {
			addEdge(i, f)
		}
	}

	if err := o.computeLamport(); err != nil {
		return nil, err
	}
	o.computeReach()
	return o, nil
}

// computeLamport assigns logical clocks via a Kahn topological sweep;
// it also detects cycles.
func (o *Order) computeLamport() error {
	indeg := make([]int, o.n)
	for _, succs := range o.succ {
		for _, t := range succs {
			indeg[t]++
		}
	}
	o.Lamport = make([]int, o.n)
	var queue []int
	for i := 0; i < o.n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
			o.Lamport[i] = 1
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, t := range o.succ[v] {
			if o.Lamport[v]+1 > o.Lamport[t] {
				o.Lamport[t] = o.Lamport[v] + 1
			}
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if seen != o.n {
		return ErrCycle
	}
	return nil
}

// computeReach builds per-event reachability bitsets in reverse
// topological order (events are processed by decreasing Lamport time).
func (o *Order) computeReach() {
	words := (o.n + 63) / 64
	o.reach = make([][]uint64, o.n)
	for i := range o.reach {
		o.reach[i] = make([]uint64, words)
	}
	// Order events by decreasing Lamport timestamp so successors are
	// complete before predecessors.
	byLamport := make([]int, o.n)
	for i := range byLamport {
		byLamport[i] = i
	}
	// Counting sort on Lamport values.
	maxL := 0
	for _, l := range o.Lamport {
		if l > maxL {
			maxL = l
		}
	}
	buckets := make([][]int, maxL+1)
	for i, l := range o.Lamport {
		buckets[l] = append(buckets[l], i)
	}
	for l := maxL; l >= 1; l-- {
		for _, v := range buckets[l] {
			for _, t := range o.succ[v] {
				o.reach[v][t/64] |= 1 << (t % 64)
				for w := range o.reach[v] {
					o.reach[v][w] |= o.reach[t][w]
				}
			}
		}
	}
}

// Ordered reports whether event a happened before event b (by Seq).
func (o *Order) Ordered(a, b int) bool {
	if a < 0 || b < 0 || a >= o.n || b >= o.n {
		return false
	}
	return o.reach[a][b/64]&(1<<(b%64)) != 0
}

// Concurrent reports whether neither event precedes the other — the
// pairs a distributed debugger must treat as racing.
func (o *Order) Concurrent(a, b int) bool {
	return a != b && !o.Ordered(a, b) && !o.Ordered(b, a)
}

// OrderedFraction returns the fraction of distinct event pairs that
// the deduced partial order resolves — how much of the global ordering
// "can be deduced" from the trace.
func (o *Order) OrderedFraction() float64 {
	if o.n < 2 {
		return 1
	}
	var ordered int64
	for i := 0; i < o.n; i++ {
		for _, w := range o.reach[i] {
			ordered += int64(bits.OnesCount64(w))
		}
	}
	total := int64(o.n) * int64(o.n-1) / 2
	return float64(ordered) / float64(total)
}

// N returns the number of events in the order.
func (o *Order) N() int { return o.n }
