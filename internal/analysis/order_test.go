package analysis

import (
	"errors"
	"testing"

	"dpm/internal/meter"
)

func mustOrder(t *testing.T, b *tb) *Order {
	t.Helper()
	o, err := HappenedBefore(b.events, MatchMessages(b.events, nil))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestHappenedBeforeOrdersConnScenario(t *testing.T) {
	b := connScenario()
	o := mustOrder(t, b)
	// connect(0)→accept(1), send(2)→recv(3), and program order chain
	// everything except the two termination events (4 and 5), which
	// are genuinely concurrent: 11 of the 15 pairs are ordered.
	if got, want := o.OrderedFraction(), 11.0/15.0; got != want {
		t.Fatalf("OrderedFraction = %v, want %v", got, want)
	}
	if !o.Ordered(0, 5) || !o.Ordered(2, 3) || !o.Ordered(0, 1) {
		t.Fatal("expected orderings missing")
	}
	if o.Ordered(3, 2) {
		t.Fatal("receive ordered before its send")
	}
	if !o.Concurrent(4, 5) {
		t.Fatal("independent terminations not concurrent")
	}
}

func TestSendBeforeReceiveDespiteLogOrder(t *testing.T) {
	// The receive appears in the trace before the send (buffered meter
	// messages arrive late); the deduced order must still place the
	// send first.
	b := &tb{}
	recvName := meter.InetName(2, 5000)
	sendName := meter.InetName(1, 1024)
	r := b.recv(2, 20, 0, 9, 4, sendName)
	s := b.send(1, 10, 1, 3, 4, recvName)
	o := mustOrder(t, b)
	if !o.Ordered(s, r) {
		t.Fatal("send not ordered before receive")
	}
	if o.Ordered(r, s) {
		t.Fatal("receive ordered before send")
	}
}

func TestIndependentProcessesConcurrent(t *testing.T) {
	b := &tb{}
	a1 := b.send(1, 10, 0, 3, 4, meter.InetName(9, 1))
	a2 := b.send(1, 10, 1, 3, 4, meter.InetName(9, 1))
	c1 := b.send(2, 20, 0, 4, 4, meter.InetName(9, 2))
	o := mustOrder(t, b)
	if !o.Ordered(a1, a2) {
		t.Fatal("program order missing")
	}
	if !o.Concurrent(a1, c1) || !o.Concurrent(a2, c1) {
		t.Fatal("independent processes not concurrent")
	}
	frac := o.OrderedFraction()
	if frac >= 1.0 || frac <= 0 {
		t.Fatalf("OrderedFraction = %v, want partial", frac)
	}
}

func TestForkEdge(t *testing.T) {
	b := &tb{}
	f := b.add(meter.EvFork, 1, 10, 0, map[string]uint64{"newPid": 11}, nil)
	childEv := b.send(1, 11, 1, 3, 4, meter.InetName(9, 1))
	o := mustOrder(t, b)
	if !o.Ordered(f, childEv) {
		t.Fatal("fork not ordered before child's first event")
	}
}

func TestLamportRespectsOrder(t *testing.T) {
	b := connScenario()
	o := mustOrder(t, b)
	for i := 0; i < o.N(); i++ {
		for j := 0; j < o.N(); j++ {
			if o.Ordered(i, j) && o.Lamport[i] >= o.Lamport[j] {
				t.Fatalf("Lamport[%d]=%d not < Lamport[%d]=%d despite ordering",
					i, o.Lamport[i], j, o.Lamport[j])
			}
		}
	}
}

func TestCycleDetected(t *testing.T) {
	// An inconsistent trace: process 1's first event "receives" a
	// message that its own later event sent.
	b := &tb{}
	recvName := meter.InetName(1, 5000)
	sendName := meter.InetName(1, 1024)
	b.recv(1, 10, 0, 9, 4, sendName)
	b.send(1, 10, 1, 3, 4, recvName)
	// Force the pathological match directly.
	matches := []Match{{SendSeq: 1, RecvSeq: 0, Bytes: 4}}
	if _, err := HappenedBefore(b.events, matches); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestOrderedFractionEmptyAndSingle(t *testing.T) {
	o, err := HappenedBefore(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.OrderedFraction() != 1 {
		t.Fatal("empty trace fraction != 1")
	}
	b := &tb{}
	b.send(1, 1, 0, 1, 1, meter.InetName(2, 2))
	o = mustOrder(t, b)
	if o.OrderedFraction() != 1 {
		t.Fatal("single event fraction != 1")
	}
}

func TestOrderedOutOfRange(t *testing.T) {
	b := connScenario()
	o := mustOrder(t, b)
	if o.Ordered(-1, 0) || o.Ordered(0, 99) {
		t.Fatal("out-of-range Ordered returned true")
	}
}

func TestTransitivity(t *testing.T) {
	// Three processes chained by messages: a→b→c implies a→c.
	b := &tb{}
	n2 := meter.InetName(2, 5000)
	n3 := meter.InetName(3, 5000)
	s1 := b.send(1, 10, 0, 3, 4, n2)
	r1 := b.recv(2, 20, 1, 9, 4, meter.InetName(1, 1024))
	s2 := b.send(2, 20, 2, 9, 4, n3)
	r2 := b.recv(3, 30, 3, 5, 4, meter.InetName(2, 5000))
	o := mustOrder(t, b)
	_ = r1
	_ = s2
	if !o.Ordered(s1, r2) {
		t.Fatal("transitive ordering s1→r2 missing")
	}
}
