package analysis

import (
	"sort"

	"dpm/internal/trace"
)

// Parallelism is the measurement-of-parallelism analysis of section
// 3.3: how much concurrent execution a computation achieved.
//
// Per-machine clocks only roughly correspond (section 4.1), so the
// measure treats them as comparable — the same approximation the
// paper's analyses accepted — and procTime carries the kernel's 10 ms
// accounting granularity.
type Parallelism struct {
	// Processes is the number of distinct processes observed.
	Processes int
	// TotalCPUMillis is the summed CPU time charged to all processes
	// (their final procTime readings).
	TotalCPUMillis int64
	// MakespanMillis spans the earliest and latest event timestamps.
	MakespanMillis int64
	// Speedup is TotalCPU/Makespan — the average parallelism, 1.0
	// meaning fully serial execution.
	Speedup float64
	// Histogram[k] is how many milliseconds of the makespan had
	// exactly k processes live (between their first and last events).
	Histogram map[int]int64
}

// MeasureParallelism computes the parallelism profile of a trace.
func MeasureParallelism(events []trace.Event) *Parallelism {
	p := &Parallelism{Histogram: make(map[int]int64)}
	if len(events) == 0 {
		return p
	}
	type interval struct {
		first, last int64
		maxCPU      int64
	}
	procs := make(map[ProcKey]*interval)
	minT, maxT := events[0].CPUTime, events[0].CPUTime
	for i := range events {
		e := &events[i]
		k := keyOf(e)
		iv := procs[k]
		if iv == nil {
			iv = &interval{first: e.CPUTime, last: e.CPUTime}
			procs[k] = iv
		}
		if e.CPUTime < iv.first {
			iv.first = e.CPUTime
		}
		if e.CPUTime > iv.last {
			iv.last = e.CPUTime
		}
		if e.ProcTime > iv.maxCPU {
			iv.maxCPU = e.ProcTime
		}
		if e.CPUTime < minT {
			minT = e.CPUTime
		}
		if e.CPUTime > maxT {
			maxT = e.CPUTime
		}
	}
	p.Processes = len(procs)
	for _, iv := range procs {
		p.TotalCPUMillis += iv.maxCPU
	}
	p.MakespanMillis = maxT - minT
	if p.MakespanMillis > 0 {
		p.Speedup = float64(p.TotalCPUMillis) / float64(p.MakespanMillis)
	}

	// Sweep line over process lifetimes for the concurrency histogram.
	type edge struct {
		t     int64
		delta int
	}
	var edges []edge
	for _, iv := range procs {
		edges = append(edges, edge{iv.first, +1}, edge{iv.last, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta > edges[j].delta // starts before ends at the same instant
	})
	level := 0
	prev := int64(-1)
	for _, e := range edges {
		if prev >= 0 && e.t > prev && level > 0 {
			p.Histogram[level] += e.t - prev
		}
		level += e.delta
		prev = e.t
	}
	return p
}
