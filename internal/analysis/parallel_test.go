package analysis

import (
	"strings"
	"testing"

	"dpm/internal/meter"
)

// procSpan emits two events bracketing a process's life with the
// given CPU accumulation.
func (b *tb) procSpan(machine, pid int, first, last, cpu int64) {
	b.add(meter.EvSocket, machine, pid, first, map[string]uint64{"sock": 1}, nil)
	e := b.add(meter.EvTermProc, machine, pid, last, map[string]uint64{"status": 0}, nil)
	b.events[e].ProcTime = cpu
}

func TestParallelismSerial(t *testing.T) {
	// Two processes running back to back: speedup ~1.
	b := &tb{}
	b.procSpan(1, 10, 0, 100, 100)
	b.procSpan(1, 11, 100, 200, 100)
	p := MeasureParallelism(b.events)
	if p.Processes != 2 {
		t.Fatalf("Processes = %d", p.Processes)
	}
	if p.TotalCPUMillis != 200 || p.MakespanMillis != 200 {
		t.Fatalf("cpu=%d makespan=%d", p.TotalCPUMillis, p.MakespanMillis)
	}
	if p.Speedup != 1.0 {
		t.Fatalf("Speedup = %v, want 1.0", p.Speedup)
	}
	if p.Histogram[1] != 200 || p.Histogram[2] != 0 {
		t.Fatalf("Histogram = %v", p.Histogram)
	}
}

func TestParallelismConcurrent(t *testing.T) {
	// Two processes fully overlapping on different machines: speedup 2.
	b := &tb{}
	b.procSpan(1, 10, 0, 100, 100)
	b.procSpan(2, 20, 0, 100, 100)
	p := MeasureParallelism(b.events)
	if p.Speedup != 2.0 {
		t.Fatalf("Speedup = %v, want 2.0", p.Speedup)
	}
	if p.Histogram[2] != 100 {
		t.Fatalf("Histogram = %v", p.Histogram)
	}
}

func TestParallelismPartialOverlap(t *testing.T) {
	b := &tb{}
	b.procSpan(1, 10, 0, 100, 0)
	b.procSpan(2, 20, 50, 150, 0)
	p := MeasureParallelism(b.events)
	if p.Histogram[1] != 100 || p.Histogram[2] != 50 {
		t.Fatalf("Histogram = %v", p.Histogram)
	}
	if p.MakespanMillis != 150 {
		t.Fatalf("makespan = %d", p.MakespanMillis)
	}
}

func TestParallelismEmpty(t *testing.T) {
	p := MeasureParallelism(nil)
	if p.Processes != 0 || p.Speedup != 0 {
		t.Fatalf("empty = %+v", p)
	}
}

func TestStructureRolesAndEdges(t *testing.T) {
	b := connScenario()
	b.send(2, 20, 11, 8, 3, meter.Name{})
	b.recv(1, 10, 12, 5, 3, meter.Name{})
	g := Structure(b.events, nil)
	if len(g.Procs) != 2 {
		t.Fatalf("procs = %v", g.Procs)
	}
	if g.Roles[ProcKey{1, 10}] != RoleClient {
		t.Fatalf("client role = %v", g.Roles[ProcKey{1, 10}])
	}
	if g.Roles[ProcKey{2, 20}] != RoleServer {
		t.Fatalf("server role = %v", g.Roles[ProcKey{2, 20}])
	}
	if g.Conns[[2]ProcKey{{1, 10}, {2, 20}}] != 1 {
		t.Fatalf("conns = %v", g.Conns)
	}
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %+v", g.Edges)
	}
	for _, e := range g.Edges {
		switch e.From {
		case ProcKey{1, 10}:
			if e.Msgs != 1 || e.Bytes != 5 {
				t.Fatalf("forward edge = %+v", e)
			}
		case ProcKey{2, 20}:
			if e.Msgs != 1 || e.Bytes != 3 {
				t.Fatalf("reply edge = %+v", e)
			}
		}
	}
}

func TestStructureRender(t *testing.T) {
	b := connScenario()
	out := Structure(b.events, nil).Render()
	for _, want := range []string{"m1/p10 (client)", "m2/p20 (server)", "traffic:", "connections:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestStructureDot(t *testing.T) {
	b := connScenario()
	dot := Structure(b.events, nil).Dot()
	for _, want := range []string{
		"digraph computation",
		`"m1/p10" [shape=ellipse`,
		`"m2/p20" [shape=box`,
		`"m1/p10" -> "m2/p20" [label="1 msgs, 5B"]`,
		"style=dashed",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot lacks %q:\n%s", want, dot)
		}
	}
}

func TestStructurePeerRoleForDatagramOnly(t *testing.T) {
	b := &tb{}
	b.send(1, 10, 0, 3, 4, meter.InetName(2, 5000))
	b.recv(2, 20, 1, 9, 4, meter.InetName(1, 1024))
	g := Structure(b.events, nil)
	if g.Roles[ProcKey{1, 10}] != RolePeer || g.Roles[ProcKey{2, 20}] != RolePeer {
		t.Fatalf("roles = %v", g.Roles)
	}
	if len(g.Edges) != 1 || g.Edges[0].Msgs != 1 {
		t.Fatalf("edges = %+v", g.Edges)
	}
}
