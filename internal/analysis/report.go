package analysis

import (
	"fmt"
	"sort"
	"strings"

	"dpm/internal/trace"
)

// Report renders the complete analysis suite over a trace as a
// human-readable text report — the output of the analyze tool and the
// programmatic equivalent of running each analysis by hand.
func Report(events []trace.Event, opts *MatchOptions) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d event records\n\n", len(events))

	st := Comm(events)
	fmt.Fprintf(&b, "communication statistics\n")
	fmt.Fprintf(&b, "  sends:    %6d  (%d bytes)\n", st.Sends, st.BytesSent)
	fmt.Fprintf(&b, "  receives: %6d  (%d bytes)\n", st.Recvs, st.BytesRecvd)
	for _, k := range sortedProcKeys(st.PerProcess) {
		pc := st.PerProcess[k]
		fmt.Fprintf(&b, "  %-10s %4d sends %4d recvs %4d recv-calls %3d sockets %2d forks\n",
			k.String()+":", pc.Sends, pc.Recvs, pc.RecvCalls, pc.Sockets, pc.Forks)
	}
	if len(st.SizeHist) > 0 {
		fmt.Fprintf(&b, "  message sizes (power-of-two buckets):")
		var buckets []int
		for bk := range st.SizeHist {
			buckets = append(buckets, bk)
		}
		sort.Ints(buckets)
		for _, bk := range buckets {
			fmt.Fprintf(&b, " <=%d:%d", 1<<bk, st.SizeHist[bk])
		}
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "\nstructure\n%s", Structure(events, opts).Render())

	par := MeasureParallelism(events)
	fmt.Fprintf(&b, "\nparallelism\n")
	fmt.Fprintf(&b, "  processes: %d\n", par.Processes)
	fmt.Fprintf(&b, "  total CPU: %d ms over a %d ms makespan (speedup %.2f)\n",
		par.TotalCPUMillis, par.MakespanMillis, par.Speedup)
	for k := 1; k <= par.Processes; k++ {
		if par.Histogram[k] > 0 {
			fmt.Fprintf(&b, "  %d processes live: %d ms\n", k, par.Histogram[k])
		}
	}

	waits := WaitingProfile(events)
	if len(waits) > 0 {
		fmt.Fprintf(&b, "\nblocked time (receivecall -> receive)\n")
		for _, k := range sortedProcKeys(waits) {
			w := waits[k]
			fmt.Fprintf(&b, "  %-10s %4d waits, %5d ms blocked (mean %.1f ms, max %d ms)",
				k.String()+":", w.Waits, w.BlockedMillis, w.Mean(), w.MaxBlockedMillis)
			if w.Unmatched > 0 {
				fmt.Fprintf(&b, ", %d still blocked at end of trace", w.Unmatched)
			}
			b.WriteByte('\n')
		}
	}

	if sites := CallSites(events); len(sites) > 0 {
		fmt.Fprintf(&b, "\nbusiest call sites (process, pc)\n")
		for i, s := range sites {
			if i == 8 {
				fmt.Fprintf(&b, "  ... %d more\n", len(sites)-i)
				break
			}
			fmt.Fprintf(&b, "  %-10s pc=%#x: %d events, %d bytes\n", s.Proc.String()+":", s.PC, s.Events, s.Bytes)
		}
	}

	matches := MatchMessages(events, opts)
	order, err := HappenedBefore(events, matches)
	if err != nil {
		return "", err
	}
	rec := RecoverRecipients(events)
	fmt.Fprintf(&b, "\nevent ordering\n")
	fmt.Fprintf(&b, "  matched messages:      %d\n", len(matches))
	fmt.Fprintf(&b, "  recovered recipients:  %d\n", len(rec))
	fmt.Fprintf(&b, "  ordered event pairs:   %.1f%%\n", order.OrderedFraction()*100)
	return b.String(), nil
}

// sortedProcKeys returns map keys in (machine, pid) order; it accepts
// any map keyed by ProcKey.
func sortedProcKeys[V any](m map[ProcKey]V) []ProcKey {
	keys := make([]ProcKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
