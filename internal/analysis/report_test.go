package analysis

import (
	"strings"
	"testing"

	"dpm/internal/meter"
)

func TestReportSections(t *testing.T) {
	b := connScenario()
	report, err := Report(b.events, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"trace: 6 event records",
		"communication statistics",
		"sends:",
		"m1/p10:",
		"structure",
		"m1/p10 (client)",
		"parallelism",
		"event ordering",
		"matched messages:      1",
		"recovered recipients:  2",
		"ordered event pairs:   73.3%",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
}

func TestReportIncludesWaitingWhenPresent(t *testing.T) {
	b := &tb{}
	b.recvCall(1, 10, 100, 5)
	b.recv(1, 10, 130, 5, 8, meter.Name{})
	report, err := Report(b.events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "blocked time") || !strings.Contains(report, "30 ms blocked") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestReportEmptyTrace(t *testing.T) {
	report, err := Report(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "trace: 0 event records") {
		t.Fatalf("report:\n%s", report)
	}
	if strings.Contains(report, "blocked time") {
		t.Fatal("empty trace has a waiting section")
	}
}

func TestReportInconsistentTrace(t *testing.T) {
	// A cyclic order is reported as an error, not a bogus report: one
	// process connected to itself receives, in program order, the
	// bytes of its own *later* send — program order says recv before
	// send, the stream match says send before recv.
	srv := meter.InetName(2, 6000)
	b := &tb{}
	b.connect(1, 10, 0, 5, meter.InetName(1, 1), srv)
	b.accept(1, 10, 1, 7, 8, srv, meter.InetName(1, 1))
	b.recv(1, 10, 2, 8, 4, meter.Name{})
	b.send(1, 10, 3, 5, 4, meter.Name{})
	if _, err := Report(b.events, nil); err == nil {
		t.Fatal("cyclic trace produced a report")
	}
}
