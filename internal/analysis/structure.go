package analysis

import (
	"fmt"
	"sort"
	"strings"

	"dpm/internal/trace"
)

// Role classifies a process's position in the computation's
// communication structure.
type Role int

// Roles. A process that only initiates connections is a client, one
// that only accepts is a server; processes that do both (or that we
// saw only exchanging datagrams) are peers.
const (
	RolePeer Role = iota
	RoleClient
	RoleServer
)

var roleNames = map[Role]string{RolePeer: "peer", RoleClient: "client", RoleServer: "server"}

func (r Role) String() string { return roleNames[r] }

// Edge is directed who-talks-to-whom traffic between two processes.
type Edge struct {
	From  ProcKey
	To    ProcKey
	Msgs  int
	Bytes int64
}

// Graph is the structural study of section 3.3: the process-level
// communication topology reconstructed from a trace.
type Graph struct {
	Procs []ProcKey
	Edges []Edge
	Roles map[ProcKey]Role
	// Conns counts stream connections between each (client, server)
	// pair.
	Conns map[[2]ProcKey]int
}

// Structure reconstructs the communication graph of a computation
// from matched messages, recovered recipients, and connections.
func Structure(events []trace.Event, opts *MatchOptions) *Graph {
	g := &Graph{Roles: make(map[ProcKey]Role), Conns: make(map[[2]ProcKey]int)}
	procSet := make(map[ProcKey]bool)
	for i := range events {
		procSet[keyOf(&events[i])] = true
	}

	conns := Connections(events)
	connected := make(map[ProcKey]struct{ initiated, accepted bool })
	for _, c := range conns {
		g.Conns[[2]ProcKey{c.Client, c.Server}]++
		ci := connected[c.Client]
		ci.initiated = true
		connected[c.Client] = ci
		si := connected[c.Server]
		si.accepted = true
		connected[c.Server] = si
	}
	for k, v := range connected {
		switch {
		case v.initiated && !v.accepted:
			g.Roles[k] = RoleClient
		case v.accepted && !v.initiated:
			g.Roles[k] = RoleServer
		default:
			g.Roles[k] = RolePeer
		}
	}

	// Traffic edges from matched messages.
	edgeMap := make(map[[2]ProcKey]*Edge)
	for _, m := range MatchMessages(events, opts) {
		from := keyOf(&events[m.SendSeq])
		to := keyOf(&events[m.RecvSeq])
		key := [2]ProcKey{from, to}
		e := edgeMap[key]
		if e == nil {
			e = &Edge{From: from, To: to}
			edgeMap[key] = e
		}
		e.Msgs++
		e.Bytes += int64(m.Bytes)
	}
	for _, e := range edgeMap {
		g.Edges = append(g.Edges, *e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].From != g.Edges[j].From {
			return less(g.Edges[i].From, g.Edges[j].From)
		}
		return less(g.Edges[i].To, g.Edges[j].To)
	})

	for k := range procSet {
		g.Procs = append(g.Procs, k)
		if _, ok := g.Roles[k]; !ok {
			g.Roles[k] = RolePeer
		}
	}
	sort.Slice(g.Procs, func(i, j int) bool { return less(g.Procs[i], g.Procs[j]) })
	return g
}

func less(a, b ProcKey) bool {
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	return a.PID < b.PID
}

// Dot renders the graph in Graphviz dot form: processes as nodes
// (servers boxed), message traffic as labeled edges, and stream
// connections as dashed edges.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph computation {\n  rankdir=LR;\n")
	for _, p := range g.Procs {
		shape := "ellipse"
		if g.Roles[p] == RoleServer {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %q [shape=%s label=\"%s\\n(%s)\"];\n", p.String(), shape, p, g.Roles[p])
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%d msgs, %dB\"];\n", e.From.String(), e.To.String(), e.Msgs, e.Bytes)
	}
	type ck struct {
		pair [2]ProcKey
		n    int
	}
	var cs []ck
	for pair, n := range g.Conns {
		cs = append(cs, ck{pair, n})
	}
	sort.Slice(cs, func(i, j int) bool { return less(cs[i].pair[0], cs[j].pair[0]) })
	for _, c := range cs {
		fmt.Fprintf(&b, "  %q -> %q [style=dashed label=\"%d conn\"];\n", c.pair[0].String(), c.pair[1].String(), c.n)
	}
	b.WriteString("}\n")
	return b.String()
}

// Render prints the graph in a compact text form for the analysis
// tools.
func (g *Graph) Render() string {
	var b strings.Builder
	b.WriteString("processes:\n")
	for _, p := range g.Procs {
		fmt.Fprintf(&b, "  %s (%s)\n", p, g.Roles[p])
	}
	b.WriteString("traffic:\n")
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %s -> %s: %d msgs, %d bytes\n", e.From, e.To, e.Msgs, e.Bytes)
	}
	if len(g.Conns) > 0 {
		b.WriteString("connections:\n")
		type ck struct {
			pair [2]ProcKey
			n    int
		}
		var cs []ck
		for pair, n := range g.Conns {
			cs = append(cs, ck{pair, n})
		}
		sort.Slice(cs, func(i, j int) bool { return less(cs[i].pair[0], cs[j].pair[0]) })
		for _, c := range cs {
			fmt.Fprintf(&b, "  %s => %s: %d\n", c.pair[0], c.pair[1], c.n)
		}
	}
	return b.String()
}
