package analysis

import (
	"fmt"
	"strings"

	"dpm/internal/meter"
	"dpm/internal/trace"
)

// Timeline renders per-process event lanes over (virtual) time — a
// text form of the time-line displays distributed-program monitors
// grew into. Each lane is one process; columns are equal slices of
// the trace's time span on the machines' clocks (which the paper
// reminds us only roughly correspond across machines, section 4.1).
//
// Lane characters: c connect, a accept, S send, r receive call,
// R receive, s socket, d dup, x close, F fork, T termination,
// * several events in one column, . no event.
func Timeline(events []trace.Event, width int) string {
	if width < 8 {
		width = 8
	}
	if len(events) == 0 {
		return "(empty trace)\n"
	}
	minT, maxT := events[0].CPUTime, events[0].CPUTime
	lanes := make(map[ProcKey][]byte)
	for i := range events {
		if events[i].CPUTime < minT {
			minT = events[i].CPUTime
		}
		if events[i].CPUTime > maxT {
			maxT = events[i].CPUTime
		}
	}
	span := maxT - minT
	col := func(t int64) int {
		if span == 0 {
			return 0
		}
		c := int((t - minT) * int64(width) / (span + 1))
		if c >= width {
			c = width - 1
		}
		return c
	}
	glyphs := map[meter.Type]byte{
		meter.EvConnect:    'c',
		meter.EvAccept:     'a',
		meter.EvSend:       'S',
		meter.EvRecvCall:   'r',
		meter.EvRecv:       'R',
		meter.EvSocket:     's',
		meter.EvDup:        'd',
		meter.EvDestSocket: 'x',
		meter.EvFork:       'F',
		meter.EvTermProc:   'T',
	}
	for i := range events {
		e := &events[i]
		k := keyOf(e)
		lane := lanes[k]
		if lane == nil {
			lane = []byte(strings.Repeat(".", width))
			lanes[k] = lane
		}
		c := col(e.CPUTime)
		g := glyphs[e.Type]
		if g == 0 {
			g = '?'
		}
		if lane[c] == '.' {
			lane[c] = g
		} else if lane[c] != g {
			lane[c] = '*'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d ms .. %d ms (machine clocks), %d columns\n", minT, maxT, width)
	for _, k := range sortedProcKeys(lanes) {
		fmt.Fprintf(&b, "  %-10s |%s|\n", k, lanes[k])
	}
	b.WriteString("  legend: c connect, a accept, S send, r recv-call, R recv, s socket, d dup, x close, F fork, T term, * several\n")
	return b.String()
}
