package analysis

import (
	"strings"
	"testing"

	"dpm/internal/meter"
)

func TestTimelineLanes(t *testing.T) {
	b := connScenario()
	out := Timeline(b.events, 40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header, two lanes, legend.
	if len(lines) != 4 {
		t.Fatalf("timeline:\n%s", out)
	}
	var lane1, lane2 string
	for _, l := range lines {
		if strings.Contains(l, "m1/p10") {
			lane1 = l
		}
		if strings.Contains(l, "m2/p20") {
			lane2 = l
		}
	}
	if lane1 == "" || lane2 == "" {
		t.Fatalf("missing lanes:\n%s", out)
	}
	// The client's lane shows connect, send, termination; the
	// server's accept, receive, termination.
	for _, g := range []string{"c", "S", "T"} {
		if !strings.Contains(lane1, g) {
			t.Errorf("client lane lacks %q: %s", g, lane1)
		}
	}
	for _, g := range []string{"a", "R", "T"} {
		if !strings.Contains(lane2, g) {
			t.Errorf("server lane lacks %q: %s", g, lane2)
		}
	}
}

func TestTimelineOrderWithinLane(t *testing.T) {
	b := connScenario()
	out := Timeline(b.events, 60)
	for _, l := range strings.Split(out, "\n") {
		if !strings.Contains(l, "m1/p10") {
			continue
		}
		// connect (cpu 5) precedes send (cpu 7) precedes term (cpu 9).
		c := strings.IndexByte(l, 'c')
		s := strings.IndexByte(l, 'S')
		x := strings.IndexByte(l, 'T')
		if !(c < s && s < x) {
			t.Fatalf("lane order wrong: %q", l)
		}
	}
}

func TestTimelineCollision(t *testing.T) {
	// Two different events in the same column render '*'.
	b := &tb{}
	b.send(1, 10, 100, 3, 4, meter.InetName(2, 1))
	b.recv(1, 10, 100, 3, 4, meter.InetName(2, 1))
	b.send(1, 10, 900, 3, 4, meter.InetName(2, 1)) // stretch the span
	out := Timeline(b.events, 10)
	if !strings.Contains(out, "*") {
		t.Fatalf("no collision marker:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	if out := Timeline(nil, 40); !strings.Contains(out, "empty trace") {
		t.Fatalf("out = %q", out)
	}
}

func TestTimelineZeroSpan(t *testing.T) {
	b := &tb{}
	b.send(1, 10, 50, 3, 4, meter.InetName(2, 1))
	out := Timeline(b.events, 16)
	if !strings.Contains(out, "S") {
		t.Fatalf("out = %q", out)
	}
}

func TestTimelineMinWidth(t *testing.T) {
	b := connScenario()
	out := Timeline(b.events, 1) // clamped to 8
	if !strings.Contains(out, "8 columns") {
		t.Fatalf("out = %q", out)
	}
}
