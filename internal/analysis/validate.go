package analysis

import (
	"errors"
	"fmt"
	"sort"

	"dpm/internal/meter"
	"dpm/internal/trace"
)

// The paper reports that the tools were useful "for measurement
// studies, as well as for program debugging" (section 5). Validate is
// the debugging half: a consistency check over a trace that flags the
// impossible (more bytes received than sent on a reliable stream,
// events after termination, a cyclic event order) and the suspicious
// (connections never accepted, processes still blocked at the end).

// Severity classifies a diagnostic.
type Severity int

// Severities.
const (
	Info Severity = iota
	Warning
	Error
)

var severityNames = map[Severity]string{Info: "info", Warning: "warning", Error: "error"}

func (s Severity) String() string { return severityNames[s] }

// Diagnostic is one finding of Validate.
type Diagnostic struct {
	Severity Severity
	// Seq is the event the finding anchors to, or -1 for trace-wide
	// findings.
	Seq     int
	Message string
}

func (d Diagnostic) String() string {
	if d.Seq >= 0 {
		return fmt.Sprintf("%s at event %d: %s", d.Severity, d.Seq, d.Message)
	}
	return fmt.Sprintf("%s: %s", d.Severity, d.Message)
}

// Validate checks a trace for internal consistency and returns the
// findings, most severe first.
func Validate(events []trace.Event, opts *MatchOptions) []Diagnostic {
	var diags []Diagnostic
	add := func(sev Severity, seq int, format string, args ...any) {
		diags = append(diags, Diagnostic{Severity: sev, Seq: seq, Message: fmt.Sprintf(format, args...)})
	}

	// Events after a process's termination are impossible: termination
	// flushes the last meter messages.
	terminated := make(map[ProcKey]int)
	for i := range events {
		e := &events[i]
		k := keyOf(e)
		if t, done := terminated[k]; done {
			add(Error, e.Seq, "process %s has a %s event after its termination at event %d", k, e.Event, t)
		}
		if e.Type == meter.EvTermProc {
			terminated[k] = e.Seq
		}
	}

	// Stream conservation: on each connection direction, the receiver
	// cannot consume more bytes than the sender wrote.
	conns := Connections(events)
	type dirKey struct {
		conn int
		side int
	}
	sent := make(map[dirKey]int64)
	recvd := make(map[dirKey]int64)
	endSide := make(map[endpoint][2]int)
	for i, c := range conns {
		endSide[endpoint{c.Client, c.ClientSock}] = [2]int{i, 0}
		endSide[endpoint{c.Server, c.ServerSock}] = [2]int{i, 1}
	}
	for i := range events {
		e := &events[i]
		ep := endpoint{keyOf(e), e.Sock()}
		cs, ok := endSide[ep]
		if !ok {
			continue
		}
		switch e.Type {
		case meter.EvSend:
			if e.Name("destName").IsZero() {
				sent[dirKey{cs[0], cs[1]}] += int64(e.MsgLength())
			}
		case meter.EvRecv:
			if e.Name("sourceName").IsZero() {
				recvd[dirKey{cs[0], 1 - cs[1]}] += int64(e.MsgLength())
			}
		}
	}
	for dk, r := range recvd {
		if s := sent[dk]; r > s {
			c := conns[dk.conn]
			add(Error, c.AcceptSeq, "connection %s=>%s: %d bytes received but only %d sent (direction %d)",
				c.Client, c.Server, r, s, dk.side)
		}
	}

	// Accepts that matched no connect suggest lost connect records.
	matchedAccepts := make(map[int]bool)
	for _, c := range conns {
		matchedAccepts[c.AcceptSeq] = true
	}
	for i := range events {
		e := &events[i]
		if e.Type == meter.EvAccept && !matchedAccepts[e.Seq] {
			add(Warning, e.Seq, "accept by %s has no matching connect record (connect events unflagged or lost?)", keyOf(e))
		}
	}

	// A cyclic deduced order means the trace is inconsistent with
	// message causality.
	matches := MatchMessages(events, opts)
	if _, err := HappenedBefore(events, matches); err != nil {
		if errors.Is(err, ErrCycle) {
			add(Error, -1, "the trace implies a cyclic event order: send/receive records are inconsistent")
		} else {
			add(Error, -1, "ordering failed: %v", err)
		}
	}

	// Processes still blocked in a receive at the end of the trace.
	for k, w := range WaitingProfile(events) {
		if w.Unmatched > 0 {
			add(Info, -1, "process %s was still waiting in %d receive call(s) at the end of the trace", k, w.Unmatched)
		}
	}

	// Processes that never terminated in the trace (still running, or
	// the termproc flag was off).
	procs := make(map[ProcKey]bool)
	for i := range events {
		procs[keyOf(&events[i])] = true
	}
	anyTerm := len(terminated) > 0
	for k := range procs {
		if _, done := terminated[k]; anyTerm && !done {
			add(Info, -1, "process %s has no termination record", k)
		}
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Severity > diags[j].Severity })
	return diags
}
