package analysis

import (
	"strings"
	"testing"

	"dpm/internal/meter"
)

func countSeverity(diags []Diagnostic, s Severity) int {
	n := 0
	for _, d := range diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

func TestValidateCleanTrace(t *testing.T) {
	b := connScenario()
	diags := Validate(b.events, nil)
	if countSeverity(diags, Error) != 0 || countSeverity(diags, Warning) != 0 {
		t.Fatalf("clean trace produced findings: %v", diags)
	}
}

func TestValidateEventAfterTermination(t *testing.T) {
	b := connScenario()
	// The client sends after its own termination record.
	b.send(1, 10, 99, 5, 1, meter.Name{})
	diags := Validate(b.events, nil)
	found := false
	for _, d := range diags {
		if d.Severity == Error && strings.Contains(d.Message, "after its termination") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diags = %v", diags)
	}
}

func TestValidateStreamConservation(t *testing.T) {
	b := connScenario()
	// The server receives 100 more bytes than were ever sent.
	b.recv(2, 20, 8, 8, 100, meter.Name{})
	diags := Validate(b.events, nil)
	found := false
	for _, d := range diags {
		if d.Severity == Error && strings.Contains(d.Message, "received but only") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diags = %v", diags)
	}
}

func TestValidateOrphanAccept(t *testing.T) {
	b := &tb{}
	b.accept(2, 20, 1, 7, 8, meter.InetName(2, 6000), meter.InetName(1, 1024))
	diags := Validate(b.events, nil)
	found := false
	for _, d := range diags {
		if d.Severity == Warning && strings.Contains(d.Message, "no matching connect") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diags = %v", diags)
	}
}

func TestValidateCycle(t *testing.T) {
	// One process, connected to itself, whose recv precedes its send
	// in program order while the stream match orders them oppositely.
	srv := meter.InetName(2, 6000)
	b := &tb{}
	b.connect(1, 10, 0, 5, meter.InetName(1, 1), srv)
	b.accept(1, 10, 1, 7, 8, srv, meter.InetName(1, 1))
	b.recv(1, 10, 2, 8, 4, meter.Name{})
	b.send(1, 10, 3, 5, 4, meter.Name{})
	diags := Validate(b.events, nil)
	found := false
	for _, d := range diags {
		if d.Severity == Error && strings.Contains(d.Message, "cyclic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diags = %v", diags)
	}
}

func TestValidateStillWaiting(t *testing.T) {
	b := &tb{}
	b.recvCall(1, 10, 100, 5)
	diags := Validate(b.events, nil)
	found := false
	for _, d := range diags {
		if d.Severity == Info && strings.Contains(d.Message, "still waiting") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diags = %v", diags)
	}
}

func TestValidateMissingTermination(t *testing.T) {
	b := connScenario() // both processes terminate
	// A third process appears but never terminates.
	b.send(3, 30, 5, 2, 1, meter.InetName(1, 1))
	diags := Validate(b.events, nil)
	found := false
	for _, d := range diags {
		if d.Severity == Info && strings.Contains(d.Message, "no termination record") {
			if !strings.Contains(d.Message, "m3/p30") {
				t.Fatalf("wrong process flagged: %v", d)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("diags = %v", diags)
	}
}

func TestValidateSortsMostSevereFirst(t *testing.T) {
	b := connScenario()
	b.recvCall(2, 20, 50, 99)             // info: still waiting
	b.send(1, 10, 99, 5, 1, meter.Name{}) // error: after termination
	diags := Validate(b.events, nil)
	if len(diags) < 2 {
		t.Fatalf("diags = %v", diags)
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Severity > diags[i-1].Severity {
			t.Fatalf("not sorted by severity: %v", diags)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: Error, Seq: 5, Message: "boom"}
	if d.String() != "error at event 5: boom" {
		t.Fatalf("String = %q", d.String())
	}
	d2 := Diagnostic{Severity: Info, Seq: -1, Message: "note"}
	if d2.String() != "info: note" {
		t.Fatalf("String = %q", d2.String())
	}
}
