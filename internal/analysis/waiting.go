package analysis

import (
	"dpm/internal/meter"
	"dpm/internal/trace"
)

// The meter records a receive in two events: the receivecall when the
// process asks for a message and the receive when one is delivered
// (section 3.2's flag table lists them separately). The gap between
// the two on the process's machine clock is the time the process spent
// blocked waiting for communication — the quantity a performance study
// of a distributed program most wants (a process that computes little
// and waits long is starved; one that never waits is the bottleneck).

// ProcWaiting is the blocked-time profile of one process.
type ProcWaiting struct {
	// Waits is the number of receivecall→receive pairs observed.
	Waits int
	// BlockedMillis is the summed machine-clock time between each
	// receivecall and its receive.
	BlockedMillis int64
	// MaxBlockedMillis is the longest single wait.
	MaxBlockedMillis int64
	// Unmatched counts receivecalls with no following receive (the
	// process was killed or the trace ends while it blocks).
	Unmatched int
}

// Mean returns the mean blocked time per wait in milliseconds.
func (w *ProcWaiting) Mean() float64 {
	if w.Waits == 0 {
		return 0
	}
	return float64(w.BlockedMillis) / float64(w.Waits)
}

// WaitingProfile computes per-process blocked time from
// receivecall/receive pairs. Pairs are matched per (process, socket)
// in program order; both timestamps come from the same machine's
// clock, so skew between machines does not distort the measure.
func WaitingProfile(events []trace.Event) map[ProcKey]*ProcWaiting {
	out := make(map[ProcKey]*ProcWaiting)
	type sockKey struct {
		proc ProcKey
		sock uint32
	}
	pendingCall := make(map[sockKey]int64) // machine-clock time of the open receivecall
	openCalls := make(map[ProcKey]int)
	get := func(k ProcKey) *ProcWaiting {
		w := out[k]
		if w == nil {
			w = &ProcWaiting{}
			out[k] = w
		}
		return w
	}
	for i := range events {
		e := &events[i]
		k := keyOf(e)
		switch e.Type {
		case meter.EvRecvCall:
			sk := sockKey{k, e.Sock()}
			if _, open := pendingCall[sk]; !open {
				openCalls[k]++
			}
			pendingCall[sk] = e.CPUTime
		case meter.EvRecv:
			sk := sockKey{k, e.Sock()}
			start, ok := pendingCall[sk]
			if !ok {
				continue // receive without a metered call (flag off)
			}
			delete(pendingCall, sk)
			openCalls[k]--
			w := get(k)
			w.Waits++
			blocked := e.CPUTime - start
			if blocked < 0 {
				blocked = 0
			}
			w.BlockedMillis += blocked
			if blocked > w.MaxBlockedMillis {
				w.MaxBlockedMillis = blocked
			}
		}
	}
	for k, n := range openCalls {
		if n > 0 {
			get(k).Unmatched += n
		}
	}
	return out
}
