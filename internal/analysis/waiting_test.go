package analysis

import (
	"testing"

	"dpm/internal/meter"
)

func (b *tb) recvCall(machine, pid int, cpu int64, sock uint32) int {
	return b.add(meter.EvRecvCall, machine, pid, cpu,
		map[string]uint64{"sock": uint64(sock)}, nil)
}

func TestWaitingProfileBasic(t *testing.T) {
	b := &tb{}
	b.recvCall(1, 10, 100, 5)
	b.recv(1, 10, 130, 5, 8, meter.Name{}) // 30ms blocked
	b.recvCall(1, 10, 200, 5)
	b.recv(1, 10, 210, 5, 8, meter.Name{}) // 10ms blocked
	w := WaitingProfile(b.events)[ProcKey{1, 10}]
	if w == nil {
		t.Fatal("no profile")
	}
	if w.Waits != 2 || w.BlockedMillis != 40 || w.MaxBlockedMillis != 30 {
		t.Fatalf("profile = %+v", w)
	}
	if w.Mean() != 20 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if w.Unmatched != 0 {
		t.Fatalf("unmatched = %d", w.Unmatched)
	}
}

func TestWaitingProfilePerSocket(t *testing.T) {
	// Calls on different sockets do not pair with each other's
	// receives.
	b := &tb{}
	b.recvCall(1, 10, 100, 5)
	b.recvCall(1, 10, 105, 6)
	b.recv(1, 10, 120, 6, 1, meter.Name{}) // 15ms on sock 6
	b.recv(1, 10, 150, 5, 1, meter.Name{}) // 50ms on sock 5
	w := WaitingProfile(b.events)[ProcKey{1, 10}]
	if w.Waits != 2 || w.BlockedMillis != 65 {
		t.Fatalf("profile = %+v", w)
	}
}

func TestWaitingProfileUnmatchedCall(t *testing.T) {
	// A process killed while blocked leaves an open receivecall.
	b := &tb{}
	b.recvCall(1, 10, 100, 5)
	w := WaitingProfile(b.events)[ProcKey{1, 10}]
	if w == nil || w.Unmatched != 1 || w.Waits != 0 {
		t.Fatalf("profile = %+v", w)
	}
}

func TestWaitingProfileRecvWithoutCall(t *testing.T) {
	// With the receivecall flag off, receives alone produce no waits.
	b := &tb{}
	b.recv(1, 10, 100, 5, 1, meter.Name{})
	if w := WaitingProfile(b.events)[ProcKey{1, 10}]; w != nil {
		t.Fatalf("profile = %+v", w)
	}
}

func TestWaitingProfileSeparatesProcesses(t *testing.T) {
	b := &tb{}
	b.recvCall(1, 10, 100, 5)
	b.recvCall(2, 20, 100, 5)
	b.recv(1, 10, 110, 5, 1, meter.Name{})
	b.recv(2, 20, 180, 5, 1, meter.Name{})
	profiles := WaitingProfile(b.events)
	if profiles[ProcKey{1, 10}].BlockedMillis != 10 {
		t.Fatalf("p1 = %+v", profiles[ProcKey{1, 10}])
	}
	if profiles[ProcKey{2, 20}].BlockedMillis != 80 {
		t.Fatalf("p2 = %+v", profiles[ProcKey{2, 20}])
	}
}

func TestWaitingProfileNegativeClamped(t *testing.T) {
	// Out-of-order timestamps (possible with discarded fields or
	// hand-edited traces) never produce negative blocked time.
	b := &tb{}
	b.recvCall(1, 10, 500, 5)
	b.recv(1, 10, 400, 5, 1, meter.Name{})
	w := WaitingProfile(b.events)[ProcKey{1, 10}]
	if w.BlockedMillis != 0 || w.Waits != 1 {
		t.Fatalf("profile = %+v", w)
	}
}
