// Package cli holds small helpers shared by the command-line tools
// (cmd/dpquery, cmd/dpstat, cmd/dpmon).
package cli

import (
	"encoding/json"
	"io"
)

// WriteJSON emits v as indented JSON with a trailing newline — the
// shared -json machine-readable output mode of the tools, so scripts
// parse one shape whichever tool produced it.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
