package cli

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	v := map[string]any{"spec": "agg count by machine", "records": 40}
	if err := WriteJSON(&b, v); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("no trailing newline")
	}
	var back map[string]any
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatalf("output does not re-parse: %v", err)
	}
	if back["spec"] != "agg count by machine" {
		t.Fatalf("round trip lost data: %v", back)
	}
}
