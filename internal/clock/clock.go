// Package clock models per-machine time for the simulated 4.2BSD cluster.
//
// The paper (section 1.1) stresses that a distributed system has no
// universal time base: per-machine clocks can be kept only approximately
// synchronized (it cites Lamport 78 and the TEMPO work of Gusella &
// Zatti 83). Section 4.1 adds that the kernel charges CPU time to a
// process in increments of 10 ms, so estimates based on procTime must
// recognize that granularity.
//
// This package reproduces both properties:
//
//   - MachineClock is a virtual wall clock private to one machine. It
//     advances only when the simulation tells it to (syscalls and
//     explicit compute steps advance it), and it may be configured with
//     a fixed offset and a drift rate so that clocks on different
//     machines only roughly correspond, exactly as the paper assumes.
//   - CPUCounter accumulates the CPU time charged to one process and
//     reports it quantized to the 10 ms scheduling quantum.
package clock

import (
	"sync"
	"time"
)

// Quantum is the granularity at which 4.2BSD updated per-process CPU
// accounting (paper section 4.1: "CPU use is updated in increments of
// 10ms").
const Quantum = 10 * time.Millisecond

// MachineClock is the virtual local clock of one simulated machine.
//
// The clock is purely logical: it advances by explicit Advance calls,
// scaled by the configured drift and shifted by the configured offset.
// Readings from clocks on different machines therefore diverge over the
// course of a computation, which is what forces the analysis stage to
// deduce global orderings from message causality rather than from
// timestamps (paper section 4.1).
type MachineClock struct {
	mu sync.Mutex
	// now is the current virtual reading, including offset and all
	// drift-scaled advances so far.
	now time.Duration
	// driftPPM expresses the clock's rate error in parts per million:
	// an advance of d adds d*(1e6+driftPPM)/1e6.
	driftPPM int64
}

// Option configures a MachineClock.
type Option func(*MachineClock)

// WithOffset starts the clock at the given reading instead of zero,
// modelling imperfect initial synchronization between machines.
func WithOffset(d time.Duration) Option {
	return func(c *MachineClock) { c.now = d }
}

// WithDriftPPM sets the clock's rate error in parts per million. A
// positive value makes the clock run fast relative to true simulated
// time; a negative value makes it run slow.
func WithDriftPPM(ppm int64) Option {
	return func(c *MachineClock) { c.driftPPM = ppm }
}

// New returns a machine clock reading zero (unless offset) with no
// drift (unless configured).
func New(opts ...Option) *MachineClock {
	c := &MachineClock{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Advance moves the clock forward by the drift-scaled equivalent of d
// units of true simulated time and returns the new reading. Advancing
// by a non-positive duration is a no-op that returns the current
// reading.
func (c *MachineClock) Advance(d time.Duration) time.Duration {
	if d <= 0 {
		return c.Now()
	}
	scaled := d + time.Duration(int64(d)*c.driftPPM/1_000_000)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += scaled
	return c.now
}

// AdvanceTo raises the clock to at least the given reading; it never
// moves the clock backward. The kernel calls it when a message
// arrives from another machine, so a machine whose processes are all
// blocked still sees time pass — the loose synchronization that
// message traffic gives real clusters (and that tools like TEMPO
// formalized).
func (c *MachineClock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// Now returns the clock's current virtual reading.
func (c *MachineClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NowMillis returns the current reading in integer milliseconds, the
// unit used in meter message headers (the cpuTime header field).
func (c *MachineClock) NowMillis() int64 {
	return int64(c.Now() / time.Millisecond)
}

// CPUCounter accumulates CPU time charged to a single process.
//
// The raw accumulation is exact; Quantized and QuantizedMillis report
// it rounded down to the 10 ms quantum, matching what the 4.2BSD kernel
// exposed (and therefore what meter messages carry in procTime).
type CPUCounter struct {
	mu  sync.Mutex
	raw time.Duration
}

// Charge adds d to the process's accumulated CPU time. Non-positive
// charges are ignored.
func (c *CPUCounter) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.raw += d
}

// Raw returns the exact accumulated CPU time.
func (c *CPUCounter) Raw() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.raw
}

// Quantized returns the accumulated CPU time rounded down to the 10 ms
// accounting quantum.
func (c *CPUCounter) Quantized() time.Duration {
	return c.Raw() / Quantum * Quantum
}

// QuantizedMillis returns Quantized in integer milliseconds, the unit
// carried in the procTime field of meter message headers.
func (c *CPUCounter) QuantizedMillis() int64 {
	return int64(c.Quantized() / time.Millisecond)
}
