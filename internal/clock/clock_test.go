package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestWithOffset(t *testing.T) {
	c := New(WithOffset(5 * time.Second))
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", got)
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(10 * time.Millisecond)
	c.Advance(15 * time.Millisecond)
	if got := c.Now(); got != 25*time.Millisecond {
		t.Fatalf("Now() = %v, want 25ms", got)
	}
}

func TestAdvanceReturnsNewReading(t *testing.T) {
	c := New()
	if got := c.Advance(time.Second); got != time.Second {
		t.Fatalf("Advance returned %v, want 1s", got)
	}
}

func TestAdvanceNonPositiveIsNoOp(t *testing.T) {
	c := New(WithOffset(time.Second))
	if got := c.Advance(0); got != time.Second {
		t.Fatalf("Advance(0) = %v, want 1s", got)
	}
	if got := c.Advance(-time.Second); got != time.Second {
		t.Fatalf("Advance(-1s) = %v, want 1s", got)
	}
}

func TestDriftFast(t *testing.T) {
	// +100000 ppm = 10% fast: advancing 1s should add 1.1s.
	c := New(WithDriftPPM(100_000))
	c.Advance(time.Second)
	if got := c.Now(); got != 1100*time.Millisecond {
		t.Fatalf("Now() = %v, want 1.1s", got)
	}
}

func TestDriftSlow(t *testing.T) {
	c := New(WithDriftPPM(-100_000))
	c.Advance(time.Second)
	if got := c.Now(); got != 900*time.Millisecond {
		t.Fatalf("Now() = %v, want 0.9s", got)
	}
}

func TestTwoClocksDiverge(t *testing.T) {
	// The paper's premise: separate machines' clocks only roughly
	// correspond. Two clocks with different drift fed the same true
	// time must diverge.
	a := New(WithDriftPPM(500))
	b := New(WithDriftPPM(-500))
	for i := 0; i < 100; i++ {
		a.Advance(10 * time.Millisecond)
		b.Advance(10 * time.Millisecond)
	}
	if a.Now() <= b.Now() {
		t.Fatalf("fast clock %v not ahead of slow clock %v", a.Now(), b.Now())
	}
}

func TestAdvanceToRaises(t *testing.T) {
	c := New()
	c.AdvanceTo(50 * time.Millisecond)
	if got := c.Now(); got != 50*time.Millisecond {
		t.Fatalf("Now() = %v, want 50ms", got)
	}
}

func TestAdvanceToNeverGoesBackward(t *testing.T) {
	c := New(WithOffset(100 * time.Millisecond))
	c.AdvanceTo(40 * time.Millisecond)
	if got := c.Now(); got != 100*time.Millisecond {
		t.Fatalf("AdvanceTo moved the clock backward: %v", got)
	}
}

func TestAdvanceToThenAdvance(t *testing.T) {
	// Gossip followed by local work: both accumulate.
	c := New()
	c.AdvanceTo(30 * time.Millisecond)
	c.Advance(10 * time.Millisecond)
	if got := c.Now(); got != 40*time.Millisecond {
		t.Fatalf("Now() = %v, want 40ms", got)
	}
}

func TestAdvanceToMonotonicProperty(t *testing.T) {
	f := func(ops []int16) bool {
		c := New()
		prev := c.Now()
		for _, op := range ops {
			if op >= 0 {
				c.Advance(time.Duration(op) * time.Microsecond)
			} else {
				c.AdvanceTo(time.Duration(-op) * time.Microsecond)
			}
			cur := c.Now()
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNowMillis(t *testing.T) {
	c := New()
	c.Advance(1234567 * time.Microsecond)
	if got := c.NowMillis(); got != 1234 {
		t.Fatalf("NowMillis() = %d, want 1234", got)
	}
}

func TestCPUCounterCharge(t *testing.T) {
	var cc CPUCounter
	cc.Charge(3 * time.Millisecond)
	cc.Charge(4 * time.Millisecond)
	if got := cc.Raw(); got != 7*time.Millisecond {
		t.Fatalf("Raw() = %v, want 7ms", got)
	}
}

func TestCPUCounterIgnoresNonPositive(t *testing.T) {
	var cc CPUCounter
	cc.Charge(-time.Second)
	cc.Charge(0)
	if got := cc.Raw(); got != 0 {
		t.Fatalf("Raw() = %v, want 0", got)
	}
}

func TestCPUCounterQuantized(t *testing.T) {
	var cc CPUCounter
	cc.Charge(34 * time.Millisecond)
	if got := cc.Quantized(); got != 30*time.Millisecond {
		t.Fatalf("Quantized() = %v, want 30ms", got)
	}
	if got := cc.QuantizedMillis(); got != 30 {
		t.Fatalf("QuantizedMillis() = %d, want 30", got)
	}
}

func TestCPUCounterUnderQuantumReportsZero(t *testing.T) {
	// Paper section 4.1: estimates based on procTime must recognize
	// the 10 ms granularity — sub-quantum work is invisible.
	var cc CPUCounter
	cc.Charge(9 * time.Millisecond)
	if got := cc.Quantized(); got != 0 {
		t.Fatalf("Quantized() = %v, want 0", got)
	}
}

func TestQuantizedNeverExceedsRaw(t *testing.T) {
	f := func(charges []uint16) bool {
		var cc CPUCounter
		for _, ch := range charges {
			cc.Charge(time.Duration(ch) * time.Microsecond)
		}
		q, r := cc.Quantized(), cc.Raw()
		return q <= r && r-q < Quantum && q%Quantum == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	f := func(steps []uint16, ppm int16) bool {
		c := New(WithDriftPPM(int64(ppm)))
		prev := c.Now()
		for _, s := range steps {
			cur := c.Advance(time.Duration(s) * time.Microsecond)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAdvanceSafe(t *testing.T) {
	c := New()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := c.Now(); got != 4000*time.Microsecond {
		t.Fatalf("Now() = %v, want 4ms", got)
	}
}
