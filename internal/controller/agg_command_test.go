package controller

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dpm/internal/filter"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/store"
)

// populateFilterStore writes n synthetic events into a filter's event
// store on its machine, flushed so segments are sealed and indexed.
func populateFilterStore(t *testing.T, c *kernel.Cluster, machine, filterName string, n int) {
	t.Helper()
	m, err := c.Machine(machine)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.NewFsysBackend(m.FS(), testUID, filter.StorePath(filterName)), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		typ := meter.EvSend
		if i%2 == 1 {
			typ = meter.EvRecv
		}
		storeEvent(t, st, i%4+1, int64(i*100), typ, uint64(200+i%4))
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryAggCommand(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	populateFilterStore(t, c, "blue", "f1", 40)

	// Plain group-by count, pushed down to blue's daemon.
	ctl.Exec("query f1 aggout agg count by machine")
	if !strings.Contains(out.String(), "agg 'agg count by machine': 1/1 filters reporting (f1@blue)") {
		t.Fatalf("no reporting summary: %s", out.String())
	}
	body := readDest(t, ctl, "/usr/aggout")
	if !strings.Contains(body, "agg count by machine") || !strings.Contains(body, "records=40") {
		t.Fatalf("rendered table wrong: %s", body)
	}
	// Four machines, ten records each: every row's count is 10.
	if strings.Count(body, " 10\n") != 4 {
		t.Fatalf("want 4 groups of count 10: %s", body)
	}

	// Selection rules compose with the aggregate clause.
	ctl.Exec(fmt.Sprintf("query f1 aggsel machine=3,type=%d agg count by machine", int(meter.EvSend)))
	sel := readDest(t, ctl, "/usr/aggsel")
	if !strings.Contains(sel, "records=10") || strings.Count(sel, "\n") < 3 {
		t.Fatalf("rule-filtered aggregate wrong: %s", sel)
	}

	// Top-k with an operator argument exercises the '(' ')' lexing.
	ctl.Exec("query f1 aggtop top 2 machine by sum(pid)")
	topBody := readDest(t, ctl, "/usr/aggtop")
	if !strings.Contains(topBody, "top 2 machine by sum(pid)") {
		t.Fatalf("top-k spec missing from render: %s", topBody)
	}

	// A bad spec is rejected locally, before any fan-out.
	ctl.Exec("query f1 aggbad agg count window 0")
	if !strings.Contains(out.String(), "bad aggregate spec") {
		t.Fatalf("bad spec not rejected: %s", out.String())
	}
}

func TestQueryAggAllFanout(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("filter f2 green")
	populateFilterStore(t, c, "blue", "f1", 40)
	populateFilterStore(t, c, "green", "f2", 40)

	ctl.Exec("query all aggall agg count by machine")
	if !strings.Contains(out.String(), "agg 'agg count by machine': 2/2 filters reporting (f1@blue f2@green)") {
		t.Fatalf("fan-out summary wrong: %s", out.String())
	}
	body := readDest(t, ctl, "/usr/aggall")
	// Partials merged: 10 records per machine per filter -> 20 each.
	if !strings.Contains(body, "records=80") || strings.Count(body, " 20\n") != 4 {
		t.Fatalf("merged aggregate wrong: %s", body)
	}
}

// TestAggDegradedMerge is the acceptance run for degraded aggregation:
// filters on three machines, one machine crashed and one partitioned
// mid-aggregation. The scatter-gather must return within the retry
// deadline with error slots for the dead machines while the surviving
// partial merges into a deterministic (degraded) answer.
func TestAggDegradedMerge(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)
	ctl.SetSessionConfig(fastSessionCfg)
	ctl.Exec("filter f1 red")
	ctl.Exec("filter f2 green")
	ctl.Exec("filter f3 blue")
	populateFilterStore(t, c, "red", "f1", 40)
	populateFilterStore(t, c, "green", "f2", 40)
	populateFilterStore(t, c, "blue", "f3", 40)
	ctl.Exec("status") // warm the sessions so the faults strike live connections

	if err := c.CrashMachine("red"); err != nil {
		t.Fatal(err)
	}
	cutFrom(t, c, ctl, "green")

	start := time.Now()
	ctl.Exec("query all aggdeg agg count by machine")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("degraded aggregate took %v, want bounded by retry deadline", elapsed)
	}
	if !strings.Contains(out.String(), "agg 'agg count by machine': 1/3 filters reporting (f3@blue)") {
		t.Fatalf("degraded summary wrong: %s", out.String())
	}
	if !strings.Contains(out.String(), "agg: degraded, missing f1@red f2@green") {
		t.Fatalf("missing slots not reported: %s", out.String())
	}
	// The surviving partial still merges deterministically: blue's 40
	// records, 10 per machine.
	body := readDest(t, ctl, "/usr/aggdeg")
	if !strings.Contains(body, "records=40") || strings.Count(body, " 10\n") != 4 {
		t.Fatalf("degraded merge wrong: %s", body)
	}
}

func TestWatchCommand(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	populateFilterStore(t, c, "blue", "f1", 8)

	ctl.Exec("watch 2 1 query f1 wout agg count by machine")
	s := out.String()
	if !strings.Contains(s, "watch 1/2:") || !strings.Contains(s, "watch 2/2:") {
		t.Fatalf("watch rounds missing: %s", s)
	}
	if strings.Count(s, "agg 'agg count by machine'") != 2 {
		t.Fatalf("wrapped query did not run each round: %s", s)
	}

	ctl.Exec("watch x 1 status")
	if !strings.Contains(out.String(), "usage: watch") {
		t.Fatalf("bad rounds accepted: %s", out.String())
	}
	ctl.Exec("watch 2 1 watch 2 1 status")
	if !strings.Contains(out.String(), "watch does not nest") {
		t.Fatalf("nested watch accepted: %s", out.String())
	}
}
