package controller

// Scatter-gather fan-out over persistent daemon sessions. The
// controller keeps one supervised session per machine (daemon
// package, session.go) and broadcasts multi-machine commands —
// status, stats, startjob, setflags — concurrently instead of
// machine by machine: results gather into per-host slots, a machine
// that cannot answer contributes an error slot within the retry
// policy's deadline, and the merged report is degraded rather than
// hung.

import (
	"sync"

	"dpm/internal/daemon"
)

// session returns the controller's persistent session to host's
// daemon, dialing one on first use. It returns nil — sending the
// caller down the one-shot exchange path — when the host is unknown
// (that path fails fast with the right error) or the controller has
// shut down.
func (c *Controller) session(host string) *daemon.Session {
	if _, err := c.cluster.Machine(host); err != nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	if s, ok := c.sessions[host]; ok {
		return s
	}
	s := daemon.DialSession(c.cmd, host, c.sessionCfg)
	c.sessions[host] = s
	return s
}

// SetSessionConfig tunes sessions dialed from now on; tests and soaks
// shorten the liveness timings.
func (c *Controller) SetSessionConfig(cfg daemon.SessionConfig) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sessionCfg = cfg
}

// closeSessions retires every session; part of controller exit.
func (c *Controller) closeSessions() {
	c.mu.Lock()
	sess := c.sessions
	c.sessions = make(map[string]*daemon.Session)
	c.mu.Unlock()
	for _, s := range sess {
		s.Close()
	}
}

// hostResult is one slot of a broadcast: the reply or the error that
// stands in for it.
type hostResult struct {
	Host string
	Rep  *daemon.Reply
	Err  error
}

// target is one fan-out destination: the host whose daemon receives
// the request, and a label the report names the slot by. The label and
// host differ when several filters (distinct targets) live on one
// machine — an aggregate query fans out per filter, not per host.
type target struct {
	Label string
	Host  string
}

// broadcast fans one request per host out concurrently and gathers
// the replies into per-host slots, returned in hosts order so report
// output stays deterministic. Each slot is bounded by the exchange
// retry policy, so the gather always completes; a broadcast with any
// failed slot counts under broadcast.degraded.
func (c *Controller) broadcast(hosts []string, mk func(host string) *daemon.WireMsg) []hostResult {
	ts := make([]target, len(hosts))
	for i, h := range hosts {
		ts[i] = target{Label: h, Host: h}
	}
	return c.broadcastTargets(ts, func(t target) *daemon.WireMsg { return mk(t.Host) })
}

// broadcastTargets is the general scatter-gather: one request per
// target, slots in target order, labels naming the slots. The degraded
// discipline is broadcast's: every slot resolves within the retry
// policy's deadline, error slots included.
func (c *Controller) broadcastTargets(targets []target, mk func(t target) *daemon.WireMsg) []hostResult {
	out := make([]hostResult, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t target) {
			defer wg.Done()
			rep, err := c.exchange(t.Host, mk(t))
			out[i] = hostResult{Host: t.Label, Rep: rep, Err: err}
		}(i, t)
	}
	wg.Wait()
	for _, r := range out {
		if r.Err != nil {
			c.machine.Obs().Counter("broadcast.degraded").Inc()
			break
		}
	}
	return out
}
