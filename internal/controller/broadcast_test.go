package controller

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"dpm/internal/daemon"
	"dpm/internal/kernel"
)

// fastSessionCfg shortens the session liveness timings so fault tests
// observe suspect/down transitions in milliseconds.
var fastSessionCfg = daemon.SessionConfig{
	HeartbeatInterval: 25 * time.Millisecond,
	HeartbeatTimeout:  50 * time.Millisecond,
	HelloTimeout:      250 * time.Millisecond,
	Backoff: daemon.RetryPolicy{
		BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond,
	},
	DownAfter:    3,
	CircuitAfter: 1000,
	CircuitHold:  500 * time.Millisecond,
}

// TestBroadcastDegradedSlots is the acceptance run for degraded
// fan-out: with warm sessions to every machine, red crashes and green
// is partitioned away, and the very next broadcast must come back
// within the retry deadline carrying an error slot for each of them
// and a real reply from blue — degraded, never hung, never missing a
// machine.
func TestBroadcastDegradedSlots(t *testing.T) {
	c, ctl, _ := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)
	ctl.SetSessionConfig(fastSessionCfg)

	// Warm the sessions so the faults strike established connections:
	// the session layer still believes both machines are up when the
	// broadcast below goes out.
	ctl.Exec("status")

	if err := c.CrashMachine("red"); err != nil {
		t.Fatal(err)
	}
	cutFrom(t, c, ctl, "green")

	hosts := []string{"red", "green", "blue"}
	start := time.Now()
	res := ctl.broadcast(hosts, func(string) *daemon.WireMsg {
		return (&daemon.ProcReq{Type: daemon.TListReq, UID: testUID}).Wire()
	})
	elapsed := time.Since(start)

	// Bounded by the retry policy, not by any machine's silence. The
	// deadline here is generous — the point is "milliseconds, not
	// minutes"; the slot checks below carry the real assertions.
	if elapsed > 2*time.Second {
		t.Fatalf("degraded broadcast took %v, want bounded by retry deadline", elapsed)
	}
	if len(res) != len(hosts) {
		t.Fatalf("broadcast returned %d slots for %d hosts", len(res), len(hosts))
	}
	for i, h := range hosts {
		if res[i].Host != h {
			t.Fatalf("slot %d is %q, want %q (order must be deterministic)", i, res[i].Host, h)
		}
	}
	if res[0].Err == nil {
		t.Error("crashed red produced no error slot")
	}
	if res[1].Err == nil {
		t.Error("partitioned green produced no error slot")
	}
	if res[2].Err != nil || res[2].Rep == nil || !res[2].Rep.OK() {
		t.Errorf("healthy blue slot = {rep %v err %v}, want ok reply", res[2].Rep, res[2].Err)
	}
	if n := ctl.machine.Obs().Counter("broadcast.degraded").Load(); n == 0 {
		t.Error("broadcast.degraded counter not bumped")
	}
}

// TestSoakSessionFlap flaps the controller↔green link while status
// and stats broadcasts run back to back. Every broadcast must
// complete within the retry deadline and report every machine —
// green as reachable or unreachable depending on where the flap
// caught it, but never silently absent — and after the final heal
// the reachability record converges to empty.
func TestSoakSessionFlap(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)
	ctl.SetSessionConfig(fastSessionCfg)
	ctl.Exec("status") // warm sessions

	n, err := c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	yellow := ctl.machine.PrimaryHostID()
	green, err := c.Machine("green")
	if err != nil {
		t.Fatal(err)
	}
	greenID := green.PrimaryHostID()

	stop := make(chan struct{})
	flapDone := make(chan struct{})
	go func() {
		defer close(flapDone)
		for {
			select {
			case <-stop:
				n.Heal()
				return
			default:
			}
			n.Partition(yellow, greenID)
			time.Sleep(7 * time.Millisecond)
			n.Heal()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	for i := 0; i < rounds; i++ {
		before := len(out.String())
		start := time.Now()
		ctl.Exec("status")
		ctl.Exec("stats")
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("round %d: broadcasts took %v under flapping link", i, elapsed)
		}
		delta := out.String()[before:]
		for _, m := range []string{"yellow", "red", "green", "blue"} {
			if !strings.Contains(delta, "machine "+m+":") {
				t.Fatalf("round %d: status is missing machine %s:\n%s", i, m, delta)
			}
		}
	}
	close(stop)
	<-flapDone

	// Healed world: the next sweeps converge the reachability record.
	waitFor(t, "reachability converged after flapping", func() bool {
		ctl.Exec("status")
		return len(ctl.Unreachable()) == 0
	})
}

// benchSystem builds a star of n machines plus a controller hub, all
// with daemons, for fan-out benchmarks.
func benchSystem(b *testing.B, n int) (*kernel.Cluster, *Controller, []string) {
	b.Helper()
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	names := make([]string, 0, n)
	for i := 0; i <= n; i++ {
		name := "hub"
		if i > 0 {
			name = fmt.Sprintf("m%02d", i)
			names = append(names, name)
		}
		m, err := c.AddMachine(name, nil, "ether0")
		if err != nil {
			b.Fatal(err)
		}
		m.AddAccount(testUID, "user")
		if _, err := daemon.Install(c, m); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(c.Shutdown)
	ctl, err := New(c, "hub", testUID, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	return c, ctl, names
}

// BenchmarkBroadcast16 measures a 16-machine status sweep: the
// scatter-gather fan-out against the sequential one-machine-at-a-time
// baseline it replaced. The concurrent sweep should cost about one
// round trip; the sequential loop, sixteen.
func BenchmarkBroadcast16(b *testing.B) {
	mk := func(string) *daemon.WireMsg {
		return (&daemon.ProcReq{Type: daemon.TListReq, UID: testUID}).Wire()
	}
	b.Run("one-rtt", func(b *testing.B) {
		_, ctl, hosts := benchSystem(b, 16)
		ctl.broadcast(hosts, mk) // warm sessions
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctl.exchange(hosts[0], mk(hosts[0])); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scatter-gather", func(b *testing.B) {
		_, ctl, hosts := benchSystem(b, 16)
		ctl.broadcast(hosts, mk) // warm sessions
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := ctl.broadcast(hosts, mk)
			for _, r := range res {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		_, ctl, hosts := benchSystem(b, 16)
		ctl.broadcast(hosts, mk) // warm sessions
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, h := range hosts {
				if _, err := ctl.exchange(h, mk(h)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
