package controller

import (
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpm/internal/agg"
	"dpm/internal/daemon"
	"dpm/internal/filter"
	"dpm/internal/fsys"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/obs"
)

// This file implements the control commands of the user's manual
// (section 4.3), with the output shapes of the Appendix B transcript.

func (c *Controller) cmdHelp() {
	c.printf(`Commands:
  help                                               this menu
  filter [name [machine [filterfile [descr [tmpl]]]]] create a filter, or list filters
  newjob name [filtername]                           create a job
  addprocess name machine processfile [parms...]     add a process to a job
  acquire name machine pid                           meter an existing process
  setflags name flag1 [flag2...]                     set metering flags on a job
  startjob name                                      start a job's processes
  stopjob name                                       stop a job's processes
  removejob name                                     remove a completed job
  removeprocess name machine pid                     remove one process
  jobs [name...]                                     show job status
  status                                             show per-machine reachability
  stats [machine|jobname]                            show merged per-machine metrics
  ps machine                                         list a machine's processes
  stdin jobname machine pid word...                  send input to a process
  getlog filtername destfile                         retrieve a filter's trace log (incremental)
  query filtername destfile [rule...]                query a filter's event store
  query name|all destfile [rule...] agg ...          aggregate at the data (see docs/query.md)
  watch rounds intervalms command...                 re-run a command on an interval
  source filename                                    run a command script
  sink [filename]                                    redirect command output
  die                                                exit the controller
Meter flags:
  %s
`, strings.Join(meter.AllFlagNames(), " "))
}

// cmdFilter creates a filter process or, with no parameters, lists the
// existing filters (section 4.3).
func (c *Controller) cmdFilter(args []string) {
	if len(args) == 0 {
		c.mu.Lock()
		for _, n := range c.filterOrder {
			f := c.filters[n]
			c.mu.Unlock()
			c.printf("%d '%s' on %s\n", f.PID, f.Name, f.Machine)
			c.mu.Lock()
		}
		c.mu.Unlock()
		return
	}
	name := args[0]
	machineName := c.machine.Name()
	if len(args) > 1 {
		machineName = args[1]
	}
	filterFile := defaultFilterFile
	if len(args) > 2 {
		filterFile = resolvePath(args[2])
	}
	descFile, tmplFile := "", ""
	if len(args) > 3 {
		descFile = resolvePath(args[3])
	}
	if len(args) > 4 {
		tmplFile = resolvePath(args[4])
	}

	c.mu.Lock()
	if _, dup := c.filters[name]; dup {
		c.mu.Unlock()
		c.printf("filter '%s' already exists\n", name)
		return
	}
	c.nextPort++
	port := c.nextPort
	c.mu.Unlock()

	if err := c.ensureFile(machineName, filterFile); err != nil {
		c.printf("filter '%s' not created: %v\n", name, err)
		return
	}
	req := &daemon.CreateReq{
		Filename:    filterFile,
		Params:      []string{name, strconv.Itoa(int(port)), descFile, tmplFile},
		ControlPort: c.notifyPort,
		ControlHost: c.machine.Name(),
		UID:         c.uid,
		Token:       c.newToken(),
	}
	rep, err := c.exchange(machineName, req.Wire())
	if err != nil {
		c.printf("filter '%s' not created: %v\n", name, err)
		return
	}
	if !rep.OK() {
		c.printf("filter '%s' not created: %s\n", name, rep.Status)
		return
	}
	// Processes are created suspended; a filter should run at once.
	start := &daemon.ProcReq{Type: daemon.TStartReq, PID: rep.PID, UID: c.uid}
	if srep, err := c.exchange(machineName, start.Wire()); err != nil || !srep.OK() {
		c.printf("filter '%s' not started\n", name)
		return
	}
	info := &FilterInfo{Name: name, PID: rep.PID, Machine: machineName, Port: port}
	c.mu.Lock()
	c.filters[name] = info
	c.filterOrder = append(c.filterOrder, name)
	if c.defaultFilter == "" {
		c.defaultFilter = name
	}
	c.mu.Unlock()
	c.printf("filter '%s' ... created: identifier = %d\n", name, rep.PID)
}

// ensureFile copies a file to the target machine if it is present
// locally but missing there — the rcp fallback of section 3.5.3.
func (c *Controller) ensureFile(machineName, path string) error {
	target, err := c.cluster.Machine(machineName)
	if err != nil {
		return err
	}
	if target.FS().Exists(path) {
		return nil
	}
	if !c.machine.FS().Exists(path) {
		return fmt.Errorf("%s not found on %s or locally", path, machineName)
	}
	return c.cluster.Rcp(c.machine.Name(), path, machineName, path, c.uid)
}

func (c *Controller) cmdNewJob(args []string) {
	if len(args) < 1 || len(args) > 2 {
		c.printf("usage: newjob jobname [filtername]\n")
		return
	}
	name := args[0]
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.jobs[name]; dup {
		fmt.Fprintf(c.sink, "job '%s' already exists\n", name)
		return
	}
	// "A job cannot be created if a filter has not been created."
	fname := c.defaultFilter
	if len(args) == 2 {
		fname = args[1]
	}
	f, ok := c.filters[fname]
	if !ok {
		fmt.Fprintf(c.sink, "no filter; create a filter before newjob\n")
		return
	}
	c.nextJobNo++
	c.jobs[name] = &Job{Name: name, Filter: f}
	c.jobOrder = append(c.jobOrder, name)
}

func (c *Controller) cmdAddProcess(args []string) {
	if len(args) < 3 {
		c.printf("usage: addprocess jobname machine processfile [parms...]\n")
		return
	}
	jobName, machineName, procFile := args[0], args[1], resolvePath(args[2])
	params := args[3:]
	c.mu.Lock()
	job, ok := c.jobs[jobName]
	flags := uint32(0)
	var fi *FilterInfo
	if ok {
		flags = uint32(job.Flags)
		fi = job.Filter
	}
	c.mu.Unlock()
	if !ok {
		c.printf("no job '%s'\n", jobName)
		return
	}
	if err := c.ensureFile(machineName, procFile); err != nil {
		c.printf("process '%s' not created: %v\n", args[2], err)
		return
	}
	req := &daemon.CreateReq{
		Filename:    procFile,
		Params:      params,
		FilterPort:  fi.Port,
		FilterHost:  fi.Machine,
		MeterFlags:  flags,
		ControlPort: c.notifyPort,
		ControlHost: c.machine.Name(),
		UID:         c.uid,
		Token:       c.newToken(),
	}
	rep, err := c.exchange(machineName, req.Wire())
	if err != nil {
		c.printf("process '%s' not created: %v\n", args[2], err)
		return
	}
	if !rep.OK() {
		c.printf("process '%s' not created: %s\n", args[2], rep.Status)
		return
	}
	c.mu.Lock()
	// "A process does not begin executing at this time, and its
	// process state is new. The process is connected to jobname's
	// filter and inherits the flags of job jobname."
	job.Procs = append(job.Procs, &JobProc{
		Name: args[2], PID: rep.PID, Machine: machineName,
		State: StateNew, Flags: meter.Flag(flags),
	})
	c.mu.Unlock()
	c.printf("process '%s' ... created: identifier = %d\n", args[2], rep.PID)
}

func (c *Controller) cmdAcquire(args []string) {
	if len(args) != 3 {
		c.printf("usage: acquire jobname machine pid\n")
		return
	}
	jobName, machineName := args[0], args[1]
	pid, err := strconv.Atoi(args[2])
	if err != nil {
		c.printf("bad process identifier '%s'\n", args[2])
		return
	}
	c.mu.Lock()
	job, ok := c.jobs[jobName]
	var flags uint32
	var fi *FilterInfo
	if ok {
		flags = uint32(job.Flags)
		fi = job.Filter
	}
	c.mu.Unlock()
	if !ok {
		c.printf("no job '%s'\n", jobName)
		return
	}
	req := &daemon.ProcReq{
		Type: daemon.TAcquireReq, PID: pid, UID: c.uid,
		Flags: flags, FilterPort: fi.Port, FilterHost: fi.Machine,
	}
	rep, err := c.exchange(machineName, req.Wire())
	if err != nil {
		c.printf("process %d not acquired: %v\n", pid, err)
		return
	}
	if !rep.OK() {
		c.printf("process %d not acquired: %s\n", pid, rep.Status)
		return
	}
	c.mu.Lock()
	job.Procs = append(job.Procs, &JobProc{
		Name: strconv.Itoa(pid), PID: pid, Machine: machineName,
		State: StateAcquired, Flags: meter.Flag(flags),
	})
	c.mu.Unlock()
	c.printf("process %d ... acquired\n", pid)
}

func (c *Controller) cmdSetFlags(args []string) {
	if len(args) < 2 {
		c.printf("usage: setflags jobname flag1 [flag2...]\n")
		return
	}
	jobName := args[0]
	c.mu.Lock()
	job, ok := c.jobs[jobName]
	c.mu.Unlock()
	if !ok {
		c.printf("no job '%s'\n", jobName)
		return
	}
	// "The effect of setflags is to record the flag set ... and then
	// set the flags for each process which is part of jobname." Flags
	// accumulate: the active set is the union unless reset with '-'.
	c.mu.Lock()
	flags := job.Flags
	c.mu.Unlock()
	for _, tok := range args[1:] {
		bits, clear, err := meter.ParseFlag(tok)
		if err != nil {
			c.printf("%v\n", err)
			return
		}
		if clear {
			flags &^= bits
		} else {
			flags |= bits
		}
	}
	c.mu.Lock()
	job.Flags = flags
	procs := append([]*JobProc(nil), job.Procs...)
	c.mu.Unlock()
	c.printf("new job flags = %s\n", strings.Join(flags.FlagNames(), " "))
	// Scatter the per-process flag updates, gather the per-process
	// report in table order.
	lines := make([]string, len(procs))
	var wg sync.WaitGroup
	for i, p := range procs {
		wg.Add(1)
		go func(i int, p *JobProc) {
			defer wg.Done()
			req := &daemon.ProcReq{Type: daemon.TSetFlagsReq, PID: p.PID, UID: c.uid, Flags: uint32(flags)}
			rep, err := c.exchange(p.Machine, req.Wire())
			switch {
			case err != nil:
				lines[i] = fmt.Sprintf("Process '%s' : %v\n", p.Name, err)
			case !rep.OK():
				lines[i] = fmt.Sprintf("Process '%s' : %s\n", p.Name, rep.Status)
			default:
				c.mu.Lock()
				p.Flags = flags
				c.mu.Unlock()
				lines[i] = fmt.Sprintf("Process '%s' : Flags set\n", p.Name)
			}
		}(i, p)
	}
	wg.Wait()
	for _, l := range lines {
		c.printf("%s", l)
	}
}

// signalJob implements startjob and stopjob: every process in an
// eligible state is signaled, and the user is informed of each
// process's status.
func (c *Controller) signalJob(jobName string, to State, reqType daemon.MsgType, verb string) {
	c.mu.Lock()
	job, ok := c.jobs[jobName]
	var procs []*JobProc
	if ok {
		procs = append(procs, job.Procs...)
	}
	c.mu.Unlock()
	if !ok {
		c.printf("no job '%s'\n", jobName)
		return
	}
	// Scatter: every eligible process is signaled concurrently, so one
	// dead machine's retries no longer serialize the rest of the job.
	// Gather: the per-process report still prints in table order (the
	// Appendix B transcript shape), whatever order the replies land.
	lines := make([]string, len(procs))
	var wg sync.WaitGroup
	for i, p := range procs {
		c.mu.Lock()
		from := p.State
		c.mu.Unlock()
		if !CanTransition(from, to) {
			// "Processes that are running, killed, or acquired cannot
			// be started"; stopjob ignores killed and acquired.
			lines[i] = fmt.Sprintf("'%s' not %s (%s).\n", p.Name, verb, from)
			continue
		}
		wg.Add(1)
		go func(i int, p *JobProc, from State) {
			defer wg.Done()
			req := &daemon.ProcReq{Type: reqType, PID: p.PID, UID: c.uid}
			rep, err := c.exchange(p.Machine, req.Wire())
			switch {
			case err != nil:
				lines[i] = fmt.Sprintf("'%s' not %s: %v\n", p.Name, verb, err)
			case !rep.OK():
				lines[i] = fmt.Sprintf("'%s' not %s: %s\n", p.Name, verb, rep.Status)
			default:
				c.mu.Lock()
				// The process may have terminated in the meantime; never
				// overwrite killed.
				if p.State == from {
					p.State = to
				}
				c.mu.Unlock()
				lines[i] = fmt.Sprintf("'%s' %s.\n", p.Name, verb)
			}
		}(i, p, from)
	}
	wg.Wait()
	for _, l := range lines {
		c.printf("%s", l)
	}
}

func (c *Controller) cmdStartJob(args []string) {
	if len(args) != 1 {
		c.printf("usage: startjob jobname\n")
		return
	}
	c.signalJob(args[0], StateRunning, daemon.TStartReq, "started")
}

func (c *Controller) cmdStopJob(args []string) {
	if len(args) != 1 {
		c.printf("usage: stopjob jobname\n")
		return
	}
	c.signalJob(args[0], StateStopped, daemon.TStopReq, "stopped")
}

// removeProc performs the per-process half of removejob: stopped
// processes are killed (stopped→killed is a legal Figure 4.2 edge),
// acquired processes have their filter connection taken down but
// continue to execute. A lost process gets a best-effort kill: if its
// machine answers, the process returns to a known (killed) state; if
// not, it stays lost and the removal fails.
func (c *Controller) removeProc(p *JobProc) bool {
	switch p.State {
	case StateKilled:
		return true
	case StateStopped, StateLost:
		req := &daemon.ProcReq{Type: daemon.TKillReq, PID: p.PID, UID: c.uid}
		rep, err := c.exchange(p.Machine, req.Wire())
		if err != nil || !rep.OK() {
			return false
		}
		c.mu.Lock()
		p.State = StateKilled
		c.mu.Unlock()
		return true
	case StateAcquired:
		req := &daemon.ProcReq{Type: daemon.TReleaseReq, PID: p.PID, UID: c.uid}
		rep, err := c.exchange(p.Machine, req.Wire())
		return err == nil && rep.OK()
	default:
		return false
	}
}

func (c *Controller) cmdRemoveJob(args []string) {
	if len(args) != 1 {
		c.printf("usage: removejob jobname\n")
		return
	}
	jobName := args[0]
	c.mu.Lock()
	job, ok := c.jobs[jobName]
	var procs []*JobProc
	if ok {
		procs = append(procs, job.Procs...)
	}
	c.mu.Unlock()
	if !ok {
		c.printf("no job '%s'\n", jobName)
		return
	}
	// "A job can only be removed if all of its processes are in one of
	// the states killed, stopped, or acquired."
	for _, p := range procs {
		c.mu.Lock()
		st := p.State
		c.mu.Unlock()
		if st == StateRunning || st == StateNew {
			c.printf("job '%s' not removed: process '%s' is %s\n", jobName, p.Name, st)
			return
		}
	}
	allRemoved := true
	for _, p := range procs {
		if c.removeProc(p) {
			c.printf("'%s' removed\n", p.Name)
		} else {
			c.printf("'%s' not removed\n", p.Name)
			allRemoved = false
		}
	}
	// Keep the job while any process resisted removal (a lost process
	// on an unreachable machine, say) — deleting it would orphan the
	// controller's only record of that process.
	if !allRemoved {
		c.printf("job '%s' not removed\n", jobName)
		return
	}
	c.mu.Lock()
	delete(c.jobs, jobName)
	for i, n := range c.jobOrder {
		if n == jobName {
			c.jobOrder = append(c.jobOrder[:i], c.jobOrder[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

func (c *Controller) cmdRemoveProcess(args []string) {
	if len(args) != 3 {
		c.printf("usage: removeprocess jobname machine pid\n")
		return
	}
	jobName, machineName := args[0], args[1]
	pid, err := strconv.Atoi(args[2])
	if err != nil {
		c.printf("bad process identifier '%s'\n", args[2])
		return
	}
	c.mu.Lock()
	job, ok := c.jobs[jobName]
	var target *JobProc
	if ok {
		target = job.proc(machineName, pid)
	}
	c.mu.Unlock()
	if !ok {
		c.printf("no job '%s'\n", jobName)
		return
	}
	if target == nil {
		c.printf("no process %d on %s in job '%s'\n", pid, machineName, jobName)
		return
	}
	c.mu.Lock()
	st := target.State
	c.mu.Unlock()
	if st == StateRunning || st == StateNew {
		c.printf("process '%s' not removed: it is %s\n", target.Name, st)
		return
	}
	if !c.removeProc(target) {
		c.printf("'%s' not removed\n", target.Name)
		return
	}
	c.mu.Lock()
	for i, p := range job.Procs {
		if p == target {
			job.Procs = append(job.Procs[:i], job.Procs[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	c.printf("'%s' removed\n", target.Name)
}

// jobTrouble lists the unreachable machines a job depends on — its
// processes' machines plus its filter's. Callers hold c.mu.
func (c *Controller) jobTrouble(j *Job) []string {
	var out []string
	seen := map[string]bool{}
	note := func(m string) {
		if c.unreachable[m] && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	note(j.Filter.Machine)
	for _, p := range j.Procs {
		note(p.Machine)
	}
	return out
}

func (c *Controller) cmdJobs(args []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(args) == 0 {
		// "a list of the current jobs ... the number, the name, and
		// the filter for each job." A job touching an unreachable
		// machine is flagged degraded.
		for i, n := range c.jobOrder {
			j := c.jobs[n]
			tag := ""
			if len(c.jobTrouble(j)) > 0 {
				tag = " [degraded]"
			}
			fmt.Fprintf(c.sink, "%d '%s' filter '%s'%s\n", i+1, j.Name, j.Filter.Name, tag)
		}
		return
	}
	for _, n := range args {
		j, ok := c.jobs[n]
		if !ok {
			fmt.Fprintf(c.sink, "no job '%s'\n", n)
			continue
		}
		fmt.Fprintf(c.sink, "job '%s':\n", n)
		for _, p := range j.Procs {
			fmt.Fprintf(c.sink, "  %d %s '%s' on %s flags = %s\n",
				p.PID, p.State, p.Name, p.Machine, strings.Join(p.Flags.FlagNames(), " "))
		}
		for _, m := range c.jobTrouble(j) {
			fmt.Fprintf(c.sink, "  degraded: machine %s unreachable\n", m)
		}
	}
}

// cmdStatus probes each machine's meterdaemon and reports per-machine
// reachability — the operator's view of the control plane. All
// machines are probed concurrently (one broadcast, roughly one round
// trip) and the report prints in machine order. Probing goes through
// the normal exchange path, so a machine that fails its probe is
// marked unreachable (and its processes lost), and a machine that
// answers is marked reachable again.
func (c *Controller) cmdStatus() {
	var remote []string
	for _, m := range c.cluster.Machines() {
		if m.Name() != c.machine.Name() {
			remote = append(remote, m.Name())
		}
	}
	res := c.broadcast(remote, func(string) *daemon.WireMsg {
		return (&daemon.ProcReq{Type: daemon.TListReq, UID: c.uid}).Wire()
	})
	byHost := make(map[string]hostResult, len(res))
	for _, r := range res {
		byHost[r.Host] = r
	}
	for _, m := range c.cluster.Machines() {
		name := m.Name()
		switch {
		case name == c.machine.Name():
			c.printf("machine %s: reachable (controller)\n", name)
		case byHost[name].Err != nil:
			c.printf("machine %s: unreachable\n", name)
		default:
			c.printf("machine %s: reachable\n", name)
		}
	}
}

// cmdStats fetches each target machine's metrics snapshot over the
// daemon wire (TStatsReq), merges the replies, and renders the
// aggregate report: counters, gauges, and latency histograms with
// p50/p95/p99. With no argument every machine in the cluster reports;
// a machine name narrows the set to that machine, and a job name
// narrows it to the machines the job's processes and filter run on. A
// machine that does not answer within the retry policy degrades the
// report — it is listed as missing — rather than hanging the command.
func (c *Controller) cmdStats(args []string) {
	if len(args) > 1 {
		c.printf("usage: stats [machine|jobname]\n")
		return
	}
	targets, err := c.statsTargets(args)
	if err != nil {
		c.printf("stats: %v\n", err)
		return
	}
	// One broadcast instead of a machine-by-machine poll: the fan-out
	// takes roughly one round trip, and the merge below walks the
	// gathered slots in target order so the report is deterministic.
	res := c.broadcast(targets, func(string) *daemon.WireMsg {
		return (&daemon.StatsReq{UID: c.uid}).Wire()
	})
	var merged *obs.Snapshot
	var reporting, missing []string
	for _, r := range res {
		if r.Err != nil || !r.Rep.OK() {
			missing = append(missing, r.Host)
			continue
		}
		s, perr := obs.ParseSnapshot([]byte(r.Rep.Data))
		if perr != nil {
			missing = append(missing, r.Host)
			continue
		}
		reporting = append(reporting, r.Host)
		if merged == nil {
			merged = s
		} else {
			merged.Merge(s)
		}
	}
	c.printf("stats: %d/%d machines reporting (%s)\n",
		len(reporting), len(targets), strings.Join(reporting, " "))
	if len(missing) > 0 {
		c.printf("stats: degraded, missing %s\n", strings.Join(missing, " "))
	}
	if merged == nil {
		return
	}
	var buf strings.Builder
	merged.Render(&buf)
	c.printf("%s", buf.String())
}

// statsTargets resolves the stats command's optional argument to the
// machines to poll.
func (c *Controller) statsTargets(args []string) ([]string, error) {
	if len(args) == 0 {
		var all []string
		for _, m := range c.cluster.Machines() {
			all = append(all, m.Name())
		}
		return all, nil
	}
	name := args[0]
	c.mu.Lock()
	j := c.jobs[name]
	c.mu.Unlock()
	if j != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		seen := make(map[string]bool)
		var targets []string
		for _, p := range j.Procs {
			if !seen[p.Machine] {
				seen[p.Machine] = true
				targets = append(targets, p.Machine)
			}
		}
		if j.Filter != nil && !seen[j.Filter.Machine] {
			targets = append(targets, j.Filter.Machine)
		}
		return targets, nil
	}
	if _, err := c.cluster.Machine(name); err == nil {
		return []string{name}, nil
	}
	return nil, fmt.Errorf("no machine or job named '%s'", name)
}

// cmdPs lists the processes on a machine (pid, uid, name) through its
// meterdaemon — an extension to the paper's command set so the user
// can find the identifier the acquire command needs.
func (c *Controller) cmdPs(args []string) {
	if len(args) != 1 {
		c.printf("usage: ps machine\n")
		return
	}
	rep, err := c.exchange(args[0], (&daemon.ProcReq{Type: daemon.TListReq, UID: c.uid}).Wire())
	if err != nil {
		c.printf("ps: %v\n", err)
		return
	}
	if !rep.OK() {
		c.printf("ps: %s\n", rep.Status)
		return
	}
	c.printf("%s", rep.Data)
}

// cmdStdin sends input to a process's standard input — the reverse of
// the output-forwarding path: the daemon delivers the text through the
// process's I/O gateway socket (section 3.5.2).
func (c *Controller) cmdStdin(args []string) {
	if len(args) < 4 {
		c.printf("usage: stdin jobname machine pid word [word...]\n")
		return
	}
	jobName, machineName := args[0], args[1]
	pid, err := strconv.Atoi(args[2])
	if err != nil {
		c.printf("bad process identifier '%s'\n", args[2])
		return
	}
	c.mu.Lock()
	job, ok := c.jobs[jobName]
	var target *JobProc
	if ok {
		target = job.proc(machineName, pid)
	}
	c.mu.Unlock()
	if !ok {
		c.printf("no job '%s'\n", jobName)
		return
	}
	if target == nil {
		c.printf("no process %d on %s in job '%s'\n", pid, machineName, jobName)
		return
	}
	text := strings.Join(args[3:], " ") + "\n"
	req := &daemon.ProcReq{Type: daemon.TStdinReq, PID: pid, UID: c.uid, Path: text}
	rep, err := c.exchange(machineName, req.Wire())
	switch {
	case err != nil:
		c.printf("stdin: %v\n", err)
	case !rep.OK():
		c.printf("stdin: %s\n", rep.Status)
	}
}

// cmdGetLog retrieves a filter's log, incrementally when possible: the
// controller remembers how many bytes it has already fetched into the
// destination (and their CRC), asks the daemon for only the bytes past
// that offset, and appends them. The daemon echoes the total file size
// and the CRC of the skipped prefix; a mismatch in either (the log
// shrank, or was rewritten in place at the same length, as the counting
// filter does every batch) falls back to a full transfer. Daemons
// predating the offset extension ignore the trailing field and return
// the whole file with no size echo, which also lands on the full-copy
// path.
func (c *Controller) cmdGetLog(args []string) {
	if len(args) != 2 {
		c.printf("usage: getlog filtername destfile\n")
		return
	}
	c.mu.Lock()
	f, ok := c.filters[args[0]]
	var off int
	var prefixCRC uint32
	if ok {
		off = f.LogOffset
		prefixCRC = f.LogCRC
	}
	c.mu.Unlock()
	if !ok {
		c.printf("no filter '%s'\n", args[0])
		return
	}
	dest := args[1]
	if !strings.HasPrefix(dest, "/") {
		dest = "/usr/" + dest
	}
	c.mu.Lock()
	if f.LogDest != dest {
		// New destination: the remembered offset describes a different
		// file, so fetch from the top.
		off, prefixCRC = 0, 0
	}
	c.mu.Unlock()

	req := &daemon.ProcReq{Type: daemon.TGetFileReq, UID: c.uid, Path: filter.LogPath(f.Name), Offset: off}
	rep, err := c.exchange(f.Machine, req.Wire())
	if err != nil {
		c.printf("getlog: %v\n", err)
		return
	}
	if !rep.OK() {
		c.printf("getlog: %s\n", rep.Status)
		return
	}
	total := rep.PID // daemon echoes the full file size here
	data := []byte(rep.Data)
	incremental := off > 0 && total == off+len(data) &&
		rep.Aux == strconv.FormatUint(uint64(prefixCRC), 10)
	if incremental {
		if len(data) > 0 {
			if err := c.machine.FS().Append(dest, c.uid, data); err != nil {
				c.printf("getlog: %v\n", err)
				return
			}
		}
	} else {
		// Full copy: either the first fetch, a prefix mismatch, or a
		// daemon that did not understand the offset (total == 0). When
		// the daemon honoured an offset we no longer trust, refetch the
		// whole file.
		if off > 0 && total > 0 && len(data) < total {
			req.Offset = 0
			rep, err = c.exchange(f.Machine, req.Wire())
			if err != nil {
				c.printf("getlog: %v\n", err)
				return
			}
			if !rep.OK() {
				c.printf("getlog: %s\n", rep.Status)
				return
			}
			total = rep.PID
			data = []byte(rep.Data)
		}
		if err := c.machine.FS().Create(dest, c.uid, fsys.PrivateMode, data); err != nil {
			c.printf("getlog: %v\n", err)
			return
		}
		off, prefixCRC = 0, 0
	}
	c.mu.Lock()
	f.LogDest = dest
	if total >= off+len(data) && total > 0 {
		f.LogOffset = off + len(data)
		f.LogCRC = crc32.Update(prefixCRC, crc32.IEEETable, data)
	} else {
		// Legacy daemon (no size echo): do not track an offset; the next
		// getlog is another full transfer.
		f.LogOffset, f.LogCRC = 0, 0
	}
	c.mu.Unlock()
}

// cmdQuery runs selection rules against a filter's event store. The
// rules travel to the daemon on the filter's machine and execute there
// against the indexed store — only matching records cross the network,
// the point of the store's segment indexes. Each rule argument is one
// alternative (an OR line of the templates file); within a rule,
// conditions are comma-separated with no spaces, e.g.
//
//	query f1 out machine=2,cpuTime>=5000 type=4
//
// With no rules, every stored record is returned. The matching records
// land in destfile in trace-log format; the match statistics print to
// the terminal.
//
// A trailing aggregate clause ("agg ..." or "top ...", the extended
// syntax of docs/query.md) switches to push-down evaluation: each
// filter's daemon folds its matching records into a partial aggregate
// and only the partial crosses the network — cmdQueryAgg. There the
// filtername may be 'all', fanning the query out over every filter.
func (c *Controller) cmdQuery(args []string) {
	if len(args) < 2 {
		c.printf("usage: query filtername|all destfile [rule...] [agg ...|top k ...]\n")
		return
	}
	for i := 2; i < len(args); i++ {
		if args[i] == "agg" || args[i] == "top" {
			c.cmdQueryAgg(args, i)
			return
		}
	}
	c.mu.Lock()
	f, ok := c.filters[args[0]]
	c.mu.Unlock()
	if !ok {
		c.printf("no filter '%s'\n", args[0])
		return
	}
	req := &daemon.QueryReq{
		Dir:   filter.StorePath(f.Name),
		Rules: strings.Join(args[2:], "\n"),
		UID:   c.uid,
	}
	rep, err := c.exchange(f.Machine, req.Wire())
	if err != nil {
		c.printf("query: %v\n", err)
		return
	}
	if !rep.OK() {
		c.printf("query: %s\n", rep.Status)
		return
	}
	// The reply is one stats line followed by the matching records.
	stats, body, _ := strings.Cut(rep.Data, "\n")
	dest := args[1]
	if !strings.HasPrefix(dest, "/") {
		dest = "/usr/" + dest
	}
	if err := c.machine.FS().Create(dest, c.uid, fsys.PrivateMode, []byte(body)); err != nil {
		c.printf("query: %v\n", err)
		return
	}
	c.printf("query '%s': %s\n", f.Name, stats)
}

// cmdQueryAgg runs an aggregate query pushed down to the data: one
// TAggReq per target filter (all of them for 'all'), fanned out as a
// broadcast, each daemon returning a compact partial aggregate. The
// partials merge associatively in arrival-slot order — a crashed or
// partitioned machine contributes an error slot within the retry
// deadline and the merged answer is degraded, never hung, the cmdStats
// discipline. The rendered table lands in destfile; the reporting
// summary prints to the terminal.
func (c *Controller) cmdQueryAgg(args []string, specAt int) {
	name, dest := args[0], args[1]
	rules := strings.Join(args[2:specAt], "\n")
	spec, err := agg.ParseSpec(strings.Join(args[specAt:], " "))
	if err != nil {
		c.printf("query: %v\n", err)
		return
	}
	c.mu.Lock()
	var filters []*FilterInfo
	if name == "all" {
		for _, n := range c.filterOrder {
			filters = append(filters, c.filters[n])
		}
	} else if f, ok := c.filters[name]; ok {
		filters = append(filters, f)
	}
	c.mu.Unlock()
	if len(filters) == 0 {
		c.printf("no filter '%s'\n", name)
		return
	}
	targets := make([]target, len(filters))
	for i, f := range filters {
		targets[i] = target{Label: f.Name + "@" + f.Machine, Host: f.Machine}
	}
	byLabel := make(map[string]*FilterInfo, len(filters))
	for i, f := range filters {
		byLabel[targets[i].Label] = f
	}
	res := c.broadcastTargets(targets, func(t target) *daemon.WireMsg {
		return (&daemon.AggReq{
			Dir:   filter.StorePath(byLabel[t.Label].Name),
			Rules: rules,
			Spec:  spec.String(),
			UID:   c.uid,
		}).Wire()
	})
	merged := agg.NewPartial(spec)
	var reporting, missing []string
	for _, r := range res {
		if r.Err != nil || !r.Rep.OK() {
			missing = append(missing, r.Host)
			continue
		}
		p, perr := agg.ParsePartial([]byte(r.Rep.Data))
		if perr != nil {
			missing = append(missing, r.Host)
			continue
		}
		if merr := merged.Merge(p); merr != nil {
			missing = append(missing, r.Host)
			continue
		}
		reporting = append(reporting, r.Host)
	}
	c.printf("agg '%s': %d/%d filters reporting (%s)\n",
		spec.String(), len(reporting), len(targets), strings.Join(reporting, " "))
	if len(missing) > 0 {
		c.printf("agg: degraded, missing %s\n", strings.Join(missing, " "))
	}
	var buf strings.Builder
	agg.NewResult(spec, merged).Render(&buf)
	if !strings.HasPrefix(dest, "/") {
		dest = "/usr/" + dest
	}
	if err := c.machine.FS().Create(dest, c.uid, fsys.PrivateMode, []byte(buf.String())); err != nil {
		c.printf("query: %v\n", err)
	}
}

// cmdWatch re-runs one command on an interval: "watch rounds
// intervalms command...". It drives the live aggregate mode of dpmon —
// a periodically refreshed cluster-wide aggregate — but wraps any
// command. Watch does not nest.
func (c *Controller) cmdWatch(args []string, depth int) {
	if len(args) < 3 {
		c.printf("usage: watch rounds intervalms command...\n")
		return
	}
	rounds, err1 := strconv.Atoi(args[0])
	interval, err2 := strconv.Atoi(args[1])
	if err1 != nil || err2 != nil || rounds < 1 || rounds > 100000 || interval < 0 {
		c.printf("usage: watch rounds intervalms command...\n")
		return
	}
	if strings.EqualFold(args[2], "watch") {
		c.printf("watch does not nest\n")
		return
	}
	line := strings.Join(args[2:], " ")
	for i := 0; i < rounds; i++ {
		if i > 0 {
			time.Sleep(time.Duration(interval) * time.Millisecond)
		}
		c.printf("watch %d/%d:\n", i+1, rounds)
		if !c.exec(line, depth+1) {
			return
		}
	}
}

func (c *Controller) cmdSource(args []string, depth int) {
	if len(args) != 1 {
		c.printf("usage: source filename\n")
		return
	}
	if depth >= MaxSourceDepth {
		c.printf("source nesting deeper than %d\n", MaxSourceDepth)
		return
	}
	path := args[0]
	if !strings.HasPrefix(path, "/") {
		path = "/usr/" + path
	}
	data, err := c.machine.FS().Read(path, c.uid)
	if err != nil {
		c.printf("source: %v\n", err)
		return
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !c.exec(line, depth+1) {
			return
		}
	}
}

func (c *Controller) cmdSink(args []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(args) == 0 {
		// "output is directed back to the terminal when a destination
		// filename is not specified."
		c.sink = c.terminal
		c.sinkPath = ""
		return
	}
	path := args[0]
	if !strings.HasPrefix(path, "/") {
		path = "/usr/" + path
	}
	c.sink = &fileSink{c: c, path: path}
	c.sinkPath = path
}

// fileSink appends controller output to a file on the controller's
// machine.
type fileSink struct {
	c    *Controller
	path string
}

func (s *fileSink) Write(p []byte) (int, error) {
	if err := s.c.machine.FS().Append(s.path, s.c.uid, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// cmdDie returns true when the controller actually exits. "If there
// are still active processes ..., the user is warned, and the
// controller does not exit. If the user immediately repeats the die
// command ... the controller ... exits with the processes active."
func (c *Controller) cmdDie() bool {
	c.mu.Lock()
	active := false
	for _, j := range c.jobs {
		for _, p := range j.Procs {
			if p.State.Active() {
				active = true
			}
		}
	}
	armed := c.dieArmed
	c.mu.Unlock()
	if active && !armed {
		c.mu.Lock()
		c.dieArmed = true
		c.mu.Unlock()
		c.printf("active processes exist; repeat die to exit anyway\n")
		return false
	}
	// "Upon exit, all executing filter processes are removed."
	c.mu.Lock()
	filters := append([]string(nil), c.filterOrder...)
	c.mu.Unlock()
	for _, n := range filters {
		c.mu.Lock()
		f := c.filters[n]
		c.mu.Unlock()
		req := &daemon.ProcReq{Type: daemon.TKillReq, PID: f.PID, UID: c.uid}
		_, _ = c.exchange(f.Machine, req.Wire())
	}
	// Retire the persistent sessions before the command process exits;
	// a session supervisor outliving its process would hold cluster
	// shutdown hostage.
	c.closeSessions()
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	// Shut down the controller's own kernel presence.
	_ = c.machine.Signal(c.notify.PID(), kernel.SIGKILL)
	c.notify.Exit(0)
	c.cmd.Exit(0)
	return true
}
