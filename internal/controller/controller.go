package controller

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"dpm/internal/daemon"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// MaxSourceDepth is the nesting limit for source scripts ("Source
// commands may be nested within scripts to a maximum depth of
// sixteen", section 4.3).
const MaxSourceDepth = 16

// FilterInfo is the controller's record of a filter process.
type FilterInfo struct {
	Name    string
	PID     int
	Machine string
	Port    uint16
	// LogOffset, LogCRC and LogDest track incremental getlog state: how
	// many bytes of the filter's log have already been fetched, the CRC
	// of those bytes, and the destination file they went to. A repeat
	// getlog to the same destination transfers only the bytes past
	// LogOffset.
	LogOffset int
	LogCRC    uint32
	LogDest   string
}

// JobProc is the controller's record of one process in a job.
type JobProc struct {
	Name    string
	PID     int
	Machine string
	State   State
	Flags   meter.Flag
}

// Job is a named computation: a collection of processes and the filter
// their traces are directed to (section 4.2).
type Job struct {
	Name   string
	Filter *FilterInfo
	Flags  meter.Flag
	Procs  []*JobProc
}

func (j *Job) proc(machine string, pid int) *JobProc {
	for _, p := range j.Procs {
		if p.Machine == machine && p.PID == pid {
			return p
		}
	}
	return nil
}

// Controller is the control process: a command interpreter that
// organizes the parts of the measurement system (section 3.3).
type Controller struct {
	mu      sync.Mutex
	cluster *kernel.Cluster
	machine *kernel.Machine
	uid     int

	cmd        *kernel.Process // issues daemon exchanges
	notify     *kernel.Process // owns the notification socket
	notifyPort uint16

	terminal io.Writer
	sink     io.Writer // current output destination (terminal or sink file)
	sinkPath string

	filters       map[string]*FilterInfo
	filterOrder   []string
	defaultFilter string
	jobs          map[string]*Job
	jobOrder      []string
	nextJobNo     int
	nextPort      uint16
	nextToken     int

	// retry governs daemon exchanges; unreachable records machines whose
	// exchanges have exhausted their retries. A machine leaves the set
	// the next time an exchange to it succeeds.
	retry       daemon.RetryPolicy
	unreachable map[string]bool

	// sessions holds one persistent supervised session per machine,
	// dialed lazily (broadcast.go); sessionCfg tunes new ones.
	sessions   map[string]*daemon.Session
	sessionCfg daemon.SessionConfig

	dieArmed bool
	closed   bool
}

// New creates a controller for the given user on the given machine.
// The controller maintains an IPC socket for state-change reports and
// listens to it on a background goroutine (section 3.5.1).
func New(cluster *kernel.Cluster, machineName string, uid int, terminal io.Writer) (*Controller, error) {
	m, err := cluster.Machine(machineName)
	if err != nil {
		return nil, err
	}
	cmd, err := m.SpawnDetached(uid, "controller")
	if err != nil {
		return nil, err
	}
	notify, err := m.SpawnDetached(uid, "controller-notify")
	if err != nil {
		return nil, err
	}
	nfd, err := notify.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		return nil, err
	}
	if err := notify.BindPort(nfd, 0); err != nil {
		return nil, err
	}
	if err := notify.Listen(nfd, 32); err != nil {
		return nil, err
	}
	nname, err := notify.SocketName(nfd)
	if err != nil {
		return nil, err
	}
	_, port := nname.Inet()

	c := &Controller{
		cluster:     cluster,
		machine:     m,
		uid:         uid,
		cmd:         cmd,
		notify:      notify,
		notifyPort:  port,
		terminal:    terminal,
		sink:        terminal,
		filters:     make(map[string]*FilterInfo),
		jobs:        make(map[string]*Job),
		nextPort:    9000,
		unreachable: make(map[string]bool),
		sessions:    make(map[string]*daemon.Session),
	}
	go c.notifyLoop(nfd)
	return c, nil
}

// notifyLoop accepts daemon-initiated connections and applies their
// state-change and I/O messages. Daemons keep their notification
// connection open across messages, so each accepted connection gets
// its own drainer goroutine that reads until EOF — one daemon's idle
// connection must not block another's notifications. It ends when the
// notify process is killed (controller shutdown).
func (c *Controller) notifyLoop(nfd int) {
	for {
		conn, _, err := c.notify.Accept(nfd)
		if err != nil {
			return
		}
		c.notify.Go(func() { c.drainNotify(conn) })
	}
}

// drainNotify applies every message arriving on one notification
// connection until the peer closes it.
func (c *Controller) drainNotify(conn int) {
	defer func() { _ = c.notify.Close(conn) }()
	var buf []byte
	for {
		msg, n, err := daemon.DecodeWire(buf)
		if err != nil {
			if !errors.Is(err, daemon.ErrWireShort) {
				return
			}
			data, rerr := c.notify.Recv(conn, 8192)
			if rerr != nil {
				return
			}
			buf = append(buf, data...)
			continue
		}
		buf = buf[n:]
		switch msg.Type {
		case daemon.TStateChange:
			sc := daemon.ParseStateChange(msg)
			c.applyStateChange(sc)
		case daemon.TIOData:
			iod := daemon.ParseIOData(msg)
			c.mu.Lock()
			fmt.Fprintf(c.sink, "%s", iod.Data)
			c.mu.Unlock()
		}
	}
}

// applyStateChange moves a terminated process to the killed state and
// informs the user ("The controller informs the user of the new state
// of his computation upon being notified of a termination").
func (c *Controller) applyStateChange(sc *daemon.StateChange) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, jn := range c.jobOrder {
		j := c.jobs[jn]
		if p := j.proc(sc.Machine, sc.PID); p != nil {
			p.State = StateKilled
			fmt.Fprintf(c.sink, "DONE: process %s in job '%s' terminated: reason: %s\n", p.Name, j.Name, sc.Reason)
			return
		}
	}
}

// validToken checks the command-parameter lexical rules: "Command
// parameters must be literals formed from the digits 0 through 9, the
// upper and lower case letters, and the characters '/' and '.'"
// (section 4.3). The '-' is additionally accepted so flag resets
// ("-send") can be written.
func validToken(tok string) bool {
	for _, r := range tok {
		switch {
		case r >= '0' && r <= '9':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r == '/' || r == '.' || r == '-':
		default:
			return false
		}
	}
	return tok != ""
}

// validRuleToken checks the looser lexical rules of query selection
// rules: beyond the literal characters, the Figure 3.3/3.4 template
// syntax needs its operators ('=', '!', '<', '>'), the wildcard '*',
// the discard marker '#', and the condition separator ','. The
// aggregate extension adds the operator-argument parentheses
// ("sum(msgLength)").
func validRuleToken(tok string) bool {
	for _, r := range tok {
		switch {
		case r >= '0' && r <= '9':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r == '/' || r == '.' || r == '-':
		case r == '=' || r == '!' || r == '<' || r == '>':
		case r == '*' || r == '#' || r == ',':
		case r == '(' || r == ')':
		default:
			return false
		}
	}
	return tok != ""
}

// Exec executes one command line and returns false when the
// controller has exited (die).
func (c *Controller) Exec(line string) bool {
	return c.exec(line, 0)
}

func (c *Controller) exec(line string, depth int) bool {
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return true
	}
	// Query selection rules and aggregate specs (everything after
	// "query name dest") use the template syntax, whose operators fall
	// outside the section 4.3 literal alphabet. A query wrapped in
	// watch shifts by the wrapper's two parameters.
	queryAt := -1
	if strings.EqualFold(fields[0], "query") {
		queryAt = 0
	} else if strings.EqualFold(fields[0], "watch") && len(fields) >= 4 && strings.EqualFold(fields[3], "query") {
		queryAt = 3
	}
	for i, tok := range fields {
		if queryAt >= 0 && i >= queryAt+3 {
			if !validRuleToken(tok) {
				c.printf("bad token '%s'\n", tok)
				return true
			}
			continue
		}
		if !validToken(tok) {
			c.printf("bad token '%s'\n", tok)
			return true
		}
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	if cmd != "die" && cmd != "exit" && cmd != "bye" {
		c.mu.Lock()
		c.dieArmed = false
		c.mu.Unlock()
	}
	switch cmd {
	case "help":
		c.cmdHelp()
	case "filter":
		c.cmdFilter(args)
	case "newjob":
		c.cmdNewJob(args)
	case "addprocess", "add":
		c.cmdAddProcess(args)
	case "acquire":
		c.cmdAcquire(args)
	case "setflags":
		c.cmdSetFlags(args)
	case "startjob":
		c.cmdStartJob(args)
	case "stopjob":
		c.cmdStopJob(args)
	case "removejob", "rmjob":
		c.cmdRemoveJob(args)
	case "removeprocess", "rmprocess":
		c.cmdRemoveProcess(args)
	case "jobs":
		c.cmdJobs(args)
	case "status":
		c.cmdStatus()
	case "stats":
		c.cmdStats(args)
	case "ps":
		c.cmdPs(args)
	case "stdin":
		c.cmdStdin(args)
	case "getlog":
		c.cmdGetLog(args)
	case "query":
		c.cmdQuery(args)
	case "watch":
		c.cmdWatch(args, depth)
	case "source":
		c.cmdSource(args, depth)
	case "sink":
		c.cmdSink(args)
	case "die", "exit", "bye":
		return !c.cmdDie()
	default:
		c.printf("unknown command '%s'; try help\n", cmd)
	}
	return true
}

// Run reads commands until die or end of input, prompting with
// "<Control>" as in the Appendix B transcript.
func (c *Controller) Run(in io.Reader) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	for {
		c.printf("<Control> ")
		if !sc.Scan() {
			c.printf("\n")
			return
		}
		if !c.exec(sc.Text(), 0) {
			return
		}
	}
}

// printf writes to the current output sink.
func (c *Controller) printf(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.sink, format, args...)
}

// exchange performs one controller↔daemon RPC, hardened with the
// controller's retry policy. Requests normally ride the persistent
// session to the host's daemon; a peer that turns out to speak only
// one-shot exchanges gets the legacy path instead. A machine whose
// exchange exhausts every retry is marked unreachable and its
// processes become lost; a later successful exchange marks it
// reachable again.
func (c *Controller) exchange(host string, req *daemon.WireMsg) (*daemon.Reply, error) {
	c.mu.Lock()
	rp := c.retry
	c.mu.Unlock()
	var rep *daemon.Reply
	var err error
	if s := c.session(host); s != nil {
		rep, err = daemon.SessionExchange(s, req, rp)
		if errors.Is(err, daemon.ErrSessionLegacy) {
			rep, err = daemon.ExchangeRetry(c.cmd, host, req, rp)
		}
	} else {
		rep, err = daemon.ExchangeRetry(c.cmd, host, req, rp)
	}
	c.noteExchange(host, err)
	return rep, err
}

// noteExchange updates the reachability record from an exchange result.
func (c *Controller) noteExchange(host string, err error) {
	if err != nil && !errors.Is(err, daemon.ErrExhausted) {
		return // a permanent failure says nothing about reachability
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		if c.unreachable[host] {
			delete(c.unreachable, host)
			fmt.Fprintf(c.sink, "NOTE: machine %s is reachable again\n", host)
		}
		return
	}
	if !c.unreachable[host] {
		c.unreachable[host] = true
		fmt.Fprintf(c.sink, "WARNING: machine %s is unreachable\n", host)
	}
	// Every non-killed process on the machine is now in an unknown
	// state — mark it lost rather than pretend we still know.
	for _, jn := range c.jobOrder {
		j := c.jobs[jn]
		for _, p := range j.Procs {
			if p.Machine == host && p.State != StateKilled && p.State != StateLost {
				p.State = StateLost
				fmt.Fprintf(c.sink, "LOST: process %s in job '%s' on %s\n", p.Name, j.Name, host)
			}
		}
	}
}

// SetRetryPolicy overrides the exchange retry policy; tests and
// embedding programs use it to bound fault-handling latency. The zero
// policy selects the daemon package defaults.
func (c *Controller) SetRetryPolicy(rp daemon.RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = rp
}

// Unreachable returns the machines currently marked unreachable,
// sorted by name.
func (c *Controller) Unreachable() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.unreachable))
	for h := range c.unreachable {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// newToken issues a create idempotency token, unique per controller
// instance (the controller's machine and pid disambiguate instances).
func (c *Controller) newToken() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextToken++
	return fmt.Sprintf("%s.%d.%d", c.machine.Name(), c.cmd.PID(), c.nextToken)
}

// Closed reports whether die has completed.
func (c *Controller) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// NotifyPort exposes the state-change socket's port, for tests.
func (c *Controller) NotifyPort() uint16 { return c.notifyPort }

// Jobs returns a snapshot of the job table, for tests and embedding
// programs.
func (c *Controller) Jobs() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Job, 0, len(c.jobOrder))
	for _, n := range c.jobOrder {
		j := c.jobs[n]
		cp := &Job{Name: j.Name, Filter: j.Filter, Flags: j.Flags}
		for _, p := range j.Procs {
			pc := *p
			cp.Procs = append(cp.Procs, &pc)
		}
		out = append(out, cp)
	}
	return out
}

// Filters returns a snapshot of the filter table.
func (c *Controller) Filters() []*FilterInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*FilterInfo, 0, len(c.filterOrder))
	for _, n := range c.filterOrder {
		f := *c.filters[n]
		out = append(out, &f)
	}
	return out
}

// defaultFilterFile is the executable used when no filterfile is
// given ("If no filterfile has been specified, the default file
// 'filter' is used").
const defaultFilterFile = "/bin/filter"

// resolvePath maps a bare file name onto /bin, mirroring the paper's
// reliance on the user's search path.
func resolvePath(name string) string {
	if strings.HasPrefix(name, "/") {
		return name
	}
	return "/bin/" + name
}
