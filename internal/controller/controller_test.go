package controller

import (
	"bytes"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dpm/internal/daemon"
	"dpm/internal/filter"
	"dpm/internal/fsys"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

const testUID = 100

// syncWriter is a threadsafe output buffer (controller output and
// daemon notifications interleave).
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// newSystem builds the Appendix B world: machines red, green, blue and
// yellow on one network, meterdaemons everywhere, the standard filter
// files installed, and the A/B example computation registered. The
// controller runs on yellow, as in Figure 4.3.
func newSystem(t *testing.T) (*kernel.Cluster, *Controller, *syncWriter) {
	t.Helper()
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	for _, name := range []string{"red", "green", "blue", "yellow"} {
		m, err := c.AddMachine(name, nil, "ether0")
		if err != nil {
			t.Fatal(err)
		}
		m.AddAccount(testUID, "user")
		if _, err := daemon.Install(c, m); err != nil {
			t.Fatal(err)
		}
		if err := filter.Install(c, m, 0); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(c.Shutdown)
	registerAB(t, c)

	out := &syncWriter{}
	ctl, err := New(c, "yellow", testUID, out)
	if err != nil {
		t.Fatal(err)
	}
	return c, ctl, out
}

// registerAB installs the two-process computation of the Appendix B
// session: B is a datagram server on a well-known port; A sends it a
// message and waits for the echo.
func registerAB(t *testing.T, c *kernel.Cluster) {
	t.Helper()
	const portB = 6100
	c.RegisterProgram("progB", func(p *kernel.Process) int {
		rfd, err := p.Socket(meter.AFInet, kernel.SockDgram)
		if err != nil {
			return 1
		}
		if err := p.BindPort(rfd, portB); err != nil {
			return 1
		}
		data, src, err := p.RecvFrom(rfd, 100)
		if err != nil {
			return 1
		}
		if _, err := p.SendTo(rfd, data, src); err != nil {
			return 1
		}
		return 0
	})
	c.RegisterProgram("progA", func(p *kernel.Process) int {
		host, _, err := p.Machine().Cluster().ResolveFrom(p.Machine(), "green")
		if err != nil {
			return 1
		}
		sfd, err := p.Socket(meter.AFInet, kernel.SockDgram)
		if err != nil {
			return 1
		}
		if err := p.BindPort(sfd, 0); err != nil {
			return 1
		}
		dest := meter.InetName(host, portB)
		// B may not have bound yet (A and B start concurrently), and
		// datagrams to an unbound port vanish; retry until the echo
		// arrives.
		for i := 0; i < 1000; i++ {
			if _, err := p.SendTo(sfd, []byte("work"), dest); err != nil {
				return 1
			}
			s, err := p.SocketOf(sfd)
			if err != nil {
				return 1
			}
			deadline := time.Now().Add(5 * time.Millisecond)
			for !s.Readable() && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
			if s.Readable() {
				if _, err := p.Recv(sfd, 100); err != nil {
					return 1
				}
				return 0
			}
		}
		return 1
	})
	for _, mn := range []string{"red", "green"} {
		m, err := c.Machine(mn)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FS().CreateExecutable("/bin/A", testUID, "progA"); err != nil {
			t.Fatal(err)
		}
		if err := m.FS().CreateExecutable("/bin/B", testUID, "progB"); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFor polls until the predicate holds.
func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// jobDone reports whether every process of the job is killed.
func jobDone(ctl *Controller, job string) func() bool {
	return func() bool {
		for _, j := range ctl.Jobs() {
			if j.Name != job {
				continue
			}
			for _, p := range j.Procs {
				if p.State != StateKilled {
					return false
				}
			}
			return true
		}
		return false
	}
}

// TestAppendixBSession replays the scripted example session of
// Appendix B and checks the controller's responses against the
// transcript (process identifiers differ; message shapes must match).
func TestAppendixBSession(t *testing.T) {
	_, ctl, out := newSystem(t)

	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red A")
	ctl.Exec("addprocess foo green B")
	ctl.Exec("setflags foo send receive fork accept connect")
	ctl.Exec("startjob foo")
	waitFor(t, "job foo to complete", jobDone(ctl, "foo"))
	ctl.Exec("rmjob foo")
	// The filter logs asynchronously; retry getlog until the trace has
	// the events (the paper's user simply waits for the computation to
	// finish before retrieving the log).
	waitFor(t, "trace file", func() bool {
		ctl.Exec("getlog f1 trace")
		data, err := ctl.machine.FS().Read("/usr/trace", testUID)
		return err == nil && strings.Contains(string(data), "RECEIVE")
	})
	if !ctl.Exec("bye") {
		// bye returns false when the controller exits: expected.
	} else {
		t.Fatal("bye did not exit the controller")
	}

	text := out.String()
	patterns := []string{
		`filter 'f1' \.\.\. created: identifier = \d+`,
		`process 'A' \.\.\. created: identifier = \d+`,
		`process 'B' \.\.\. created: identifier = \d+`,
		`new job flags = fork send receive accept connect`,
		`Process 'A' : Flags set`,
		`Process 'B' : Flags set`,
		`'A' started\.`,
		`'B' started\.`,
		`DONE: process A in job 'foo' terminated: reason: normal`,
		`DONE: process B in job 'foo' terminated: reason: normal`,
		`'A' removed`,
		`'B' removed`,
	}
	for _, pat := range patterns {
		if !regexp.MustCompile(pat).MatchString(text) {
			t.Errorf("transcript lacks %q:\n%s", pat, text)
		}
	}
	if !ctl.Closed() {
		t.Fatal("controller not closed after bye")
	}
	// getlog wrote the trace file on the controller's machine.
	m, _ := ctlMachine(ctl)
	data, err := m.FS().Read("/usr/trace", testUID)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	trace := string(data)
	for _, ev := range []string{"SEND", "RECEIVE"} {
		if !strings.Contains(trace, ev+" ") {
			t.Errorf("trace lacks %s events:\n%s", ev, trace)
		}
	}
	// The flags did not include socket creation, so no SOCKET records
	// may appear — selection is the filter's job.
	if strings.Contains(trace, "SOCKET ") {
		t.Errorf("unflagged SOCKET events in trace:\n%s", trace)
	}
}

func ctlMachine(c *Controller) (*kernel.Machine, error) { return c.machine, nil }

func TestNewJobRequiresFilter(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("newjob foo")
	if !strings.Contains(out.String(), "no filter") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestFilterListAndDuplicate(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("filter f1 green")
	if !strings.Contains(out.String(), "filter 'f1' already exists") {
		t.Fatalf("output = %q", out.String())
	}
	ctl.Exec("filter f2")
	ctl.Exec("filter")
	text := out.String()
	if !strings.Contains(text, "'f1' on blue") || !strings.Contains(text, "'f2' on yellow") {
		t.Fatalf("filter listing wrong:\n%s", text)
	}
}

func TestAddProcessCopiesExecutable(t *testing.T) {
	// blue has no /bin/A; the controller must rcp it from its own
	// machine (section 3.5.3). Place it on yellow first.
	c, ctl, out := newSystem(t)
	yellow, _ := c.Machine("yellow")
	if err := yellow.FS().CreateExecutable("/bin/A", testUID, "progA"); err != nil {
		t.Fatal(err)
	}
	blue, _ := c.Machine("blue")
	if blue.FS().Exists("/bin/A") {
		t.Fatal("precondition: /bin/A already on blue")
	}
	ctl.Exec("filter f1")
	ctl.Exec("newjob j")
	ctl.Exec("addprocess j blue A")
	if !strings.Contains(out.String(), "process 'A' ... created") {
		t.Fatalf("output = %q", out.String())
	}
	if !blue.FS().Exists("/bin/A") {
		t.Fatal("executable not copied to blue")
	}
}

func TestAddProcessMissingEverywhere(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1")
	ctl.Exec("newjob j")
	ctl.Exec("addprocess j red nonesuch")
	if !strings.Contains(out.String(), "not created") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRemoveJobRefusedWhileActive(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red A")
	// Process is new: removejob must refuse (new->killed is illegal).
	ctl.Exec("removejob foo")
	if !strings.Contains(out.String(), "not removed") {
		t.Fatalf("output = %q", out.String())
	}
	if len(ctl.Jobs()) != 1 {
		t.Fatal("job vanished despite refusal")
	}
}

func TestStopThenRemoveKillsProcesses(t *testing.T) {
	c, ctl, out := newSystem(t)
	c.RegisterProgram("spin", func(p *kernel.Process) int {
		for {
			p.Compute(time.Millisecond)
		}
	})
	red, _ := c.Machine("red")
	if err := red.FS().CreateExecutable("/bin/spin", testUID, "spin"); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red spin")
	ctl.Exec("startjob foo")
	ctl.Exec("stopjob foo")
	ctl.Exec("removejob foo")
	text := out.String()
	if !strings.Contains(text, "'spin' stopped.") || !strings.Contains(text, "'spin' removed") {
		t.Fatalf("output:\n%s", text)
	}
	if len(ctl.Jobs()) != 0 {
		t.Fatal("job not removed")
	}
}

func TestStartJobStateRules(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red A")
	ctl.Exec("addprocess foo green B")
	ctl.Exec("startjob foo")
	waitFor(t, "completion", jobDone(ctl, "foo"))
	// Killed processes cannot be started.
	ctl.Exec("startjob foo")
	if !strings.Contains(out.String(), "'A' not started (killed).") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestJobsListing(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("newjob bar")
	ctl.Exec("addprocess foo red A")
	ctl.Exec("jobs")
	ctl.Exec("jobs foo")
	text := out.String()
	if !strings.Contains(text, "1 'foo' filter 'f1'") || !strings.Contains(text, "2 'bar' filter 'f1'") {
		t.Fatalf("jobs listing:\n%s", text)
	}
	if !strings.Contains(text, "new 'A' on red") {
		t.Fatalf("job detail listing:\n%s", text)
	}
}

func TestSetFlagsUnionAndReset(t *testing.T) {
	_, ctl, _ := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("setflags foo send receive")
	ctl.Exec("setflags foo fork")
	jobs := ctl.Jobs()
	want := meter.MSend | meter.MReceive | meter.MFork
	if jobs[0].Flags != want {
		t.Fatalf("flags = %b, want %b (union semantics)", jobs[0].Flags, want)
	}
	ctl.Exec("setflags foo -send")
	if got := ctl.Jobs()[0].Flags; got != meter.MReceive|meter.MFork {
		t.Fatalf("flags after -send = %b", got)
	}
	ctl.Exec("setflags foo -all")
	if got := ctl.Jobs()[0].Flags; got != 0 {
		t.Fatalf("flags after -all = %b", got)
	}
}

func TestFlagsInheritedByAddedProcess(t *testing.T) {
	_, ctl, _ := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("setflags foo send receive")
	ctl.Exec("addprocess foo red A")
	p := ctl.Jobs()[0].Procs[0]
	if p.Flags != meter.MSend|meter.MReceive {
		t.Fatalf("process flags = %b", p.Flags)
	}
}

func TestSourceAndSink(t *testing.T) {
	c, ctl, out := newSystem(t)
	yellow, _ := c.Machine("yellow")
	script := "sink /usr/out.txt\nfilter f1 blue\nsink\n"
	if err := yellow.FS().Create("/usr/script", testUID, fsys.DefaultMode, []byte(script)); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("source script")
	// The filter-created message went to the sink file, not the
	// terminal.
	if strings.Contains(out.String(), "created") {
		t.Fatalf("sinked output leaked to terminal: %q", out.String())
	}
	data, err := yellow.FS().Read("/usr/out.txt", testUID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "filter 'f1' ... created") {
		t.Fatalf("sink file contents = %q", data)
	}
	// After "sink" with no argument, output returns to the terminal.
	ctl.Exec("jobs")
	ctl.Exec("filter f9 nowhere")
	if !strings.Contains(out.String(), "not created") {
		t.Fatal("post-sink output did not return to terminal")
	}
}

func TestSourceNestingLimit(t *testing.T) {
	c, ctl, out := newSystem(t)
	yellow, _ := c.Machine("yellow")
	// A self-sourcing script recurses past the limit of 16.
	if err := yellow.FS().Create("/usr/loop", testUID, fsys.DefaultMode, []byte("source loop\n")); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("source loop")
	if !strings.Contains(out.String(), "nesting deeper than 16") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestDieWarnsWithActiveProcesses(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red A")
	if !ctl.Exec("die") {
		t.Fatal("first die exited despite active processes")
	}
	if !strings.Contains(out.String(), "active processes exist") {
		t.Fatalf("output = %q", out.String())
	}
	// An intervening command disarms the repeat.
	ctl.Exec("jobs")
	if !ctl.Exec("die") {
		t.Fatal("die after disarm exited immediately")
	}
	// Immediate repetition exits.
	if ctl.Exec("die") {
		t.Fatal("repeated die did not exit")
	}
}

func TestDieKillsFilters(t *testing.T) {
	c, ctl, _ := newSystem(t)
	ctl.Exec("filter f1 blue")
	pid := ctl.Filters()[0].PID
	blue, _ := c.Machine("blue")
	if _, err := blue.Proc(pid); err != nil {
		t.Fatal("filter not running before die")
	}
	if ctl.Exec("die") {
		t.Fatal("die did not exit")
	}
	waitFor(t, "filter to be killed", func() bool {
		_, err := blue.Proc(pid)
		return err != nil
	})
}

func TestBadTokensRejected(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("newjob foo;bar")
	if !strings.Contains(out.String(), "bad token") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestUnknownCommand(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("frobnicate")
	if !strings.Contains(out.String(), "unknown command") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestHelpListsCommandsAndFlags(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("help")
	text := out.String()
	for _, cmd := range []string{"filter", "newjob", "addprocess", "acquire", "setflags",
		"startjob", "stopjob", "removejob", "jobs", "getlog", "source", "sink", "die"} {
		if !strings.Contains(text, cmd) {
			t.Errorf("help lacks %s", cmd)
		}
	}
	names := meter.AllFlagNames()
	sort.Strings(names)
	for _, f := range names {
		if !strings.Contains(text, f) {
			t.Errorf("help lacks flag %s", f)
		}
	}
}

func TestRunREPL(t *testing.T) {
	_, ctl, out := newSystem(t)
	in := strings.NewReader("filter f1 blue\nbye\n")
	ctl.Run(in)
	text := out.String()
	if !strings.Contains(text, "<Control> ") {
		t.Fatalf("no prompt in output: %q", text)
	}
	if !ctl.Closed() {
		t.Fatal("REPL did not exit on bye")
	}
}

func TestRemoveProcessSingle(t *testing.T) {
	c, ctl, out := newSystem(t)
	c.RegisterProgram("spin2", func(p *kernel.Process) int {
		for {
			p.Compute(time.Millisecond)
		}
	})
	red, _ := c.Machine("red")
	if err := red.FS().CreateExecutable("/bin/spin2", testUID, "spin2"); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red spin2")
	pid := ctl.Jobs()[0].Procs[0].PID
	ctl.Exec("startjob foo")
	// Running: refuse.
	ctl.Exec("removeprocess foo red " + strconv.Itoa(pid))
	if !strings.Contains(out.String(), "not removed") {
		t.Fatalf("output = %q", out.String())
	}
	ctl.Exec("stopjob foo")
	ctl.Exec("removeprocess foo red " + strconv.Itoa(pid))
	if got := len(ctl.Jobs()[0].Procs); got != 0 {
		t.Fatalf("%d procs left in job", got)
	}
}
