package controller

import (
	"strconv"
	"strings"
	"testing"

	"dpm/internal/fsys"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

func TestCommandsOnUnknownJob(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	for _, cmd := range []string{
		"addprocess nojob red A",
		"acquire nojob red 5",
		"setflags nojob send",
		"startjob nojob",
		"stopjob nojob",
		"removejob nojob",
		"removeprocess nojob red 5",
	} {
		ctl.Exec(cmd)
	}
	if got := strings.Count(out.String(), "no job 'nojob'"); got != 7 {
		t.Fatalf("%d 'no job' messages:\n%s", got, out.String())
	}
}

func TestUsageMessages(t *testing.T) {
	_, ctl, out := newSystem(t)
	for _, cmd := range []string{
		"newjob",
		"addprocess onlyjob",
		"acquire a b",
		"setflags onlyjob",
		"startjob",
		"stopjob",
		"removejob",
		"removeprocess a b",
		"getlog onlyone",
		"source",
	} {
		ctl.Exec(cmd)
	}
	if got := strings.Count(out.String(), "usage:"); got != 10 {
		t.Fatalf("%d usage messages:\n%s", got, out.String())
	}
}

func TestAddProcessUnknownMachine(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob j")
	ctl.Exec("addprocess j mars A")
	if !strings.Contains(out.String(), "not created") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestAcquireUnknownPid(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob j")
	ctl.Exec("acquire j red 98765")
	if !strings.Contains(out.String(), "not acquired") {
		t.Fatalf("output = %q", out.String())
	}
	ctl.Exec("acquire j red notanumber")
	if !strings.Contains(out.String(), "bad process identifier") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestGetLogBeforeAnyTrace(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("getlog f1 dest")
	if !strings.Contains(out.String(), "getlog:") {
		t.Fatalf("output = %q", out.String())
	}
	ctl.Exec("getlog nosuch dest")
	if !strings.Contains(out.String(), "no filter 'nosuch'") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestSetFlagsBadFlag(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob j")
	ctl.Exec("setflags j bogusflag")
	if !strings.Contains(out.String(), "unknown flag") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestFilterOnUnknownMachine(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 mars")
	if !strings.Contains(out.String(), "not created") {
		t.Fatalf("output = %q", out.String())
	}
	if len(ctl.Filters()) != 0 {
		t.Fatal("failed filter recorded")
	}
}

func TestFilterWithExplicitFiles(t *testing.T) {
	// The five-argument form: filter name machine filterfile
	// descriptions templates (section 4.3). A selective template keeps
	// only send events.
	c, ctl, _ := newSystem(t)
	blue, _ := c.Machine("blue")
	if err := blue.FS().Create("/etc/sendonly", testUID, fsys.DefaultMode, []byte("type=1\n")); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter fsel blue /bin/filter /etc/meter/descriptions /etc/sendonly")
	if len(ctl.Filters()) != 1 {
		t.Fatal("filter not created")
	}
	ctl.Exec("newjob j")
	ctl.Exec("setflags j all")
	ctl.Exec("addprocess j red A green")
	ctl.Exec("addprocess j green B")
	ctl.Exec("startjob j")
	waitFor(t, "job", jobDone(ctl, "j"))
	waitFor(t, "selective trace", func() bool {
		data, err := blue.FS().Read("/usr/tmp/fsel.log", 0)
		if err != nil || len(data) == 0 {
			return false
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if !strings.HasPrefix(line, "SEND ") {
				t.Fatalf("non-send record with send-only template: %q", line)
			}
		}
		return true
	})
}

func TestStopJobIgnoresAcquired(t *testing.T) {
	c, ctl, out := newSystem(t)
	red, _ := c.Machine("red")
	victim, err := red.SpawnDetached(testUID, "server")
	if err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob j")
	ctl.Exec("acquire j red " + strconv.Itoa(victim.PID()))
	ctl.Exec("stopjob j")
	if !strings.Contains(out.String(), "not stopped (acquired)") {
		t.Fatalf("output = %q", out.String())
	}
	// And startjob cannot start it either.
	ctl.Exec("startjob j")
	if !strings.Contains(out.String(), "not started (acquired)") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestPsListsProcesses(t *testing.T) {
	c, ctl, out := newSystem(t)
	red, _ := c.Machine("red")
	server, err := red.SpawnDetached(testUID, "someserver")
	if err != nil {
		t.Fatal(err)
	}
	ctl.Exec("ps red")
	text := out.String()
	if !strings.Contains(text, strconv.Itoa(server.PID())+" "+strconv.Itoa(testUID)+" someserver") {
		t.Fatalf("ps output lacks server:\n%s", text)
	}
	if !strings.Contains(text, "meterdaemon") {
		t.Fatalf("ps output lacks daemon:\n%s", text)
	}
	ctl.Exec("ps mars")
	if !strings.Contains(out.String(), "ps: ") {
		t.Fatal("ps of unknown machine did not error")
	}
	ctl.Exec("ps")
	if !strings.Contains(out.String(), "usage: ps") {
		t.Fatal("no usage message")
	}
}

func TestStdinRoundTrip(t *testing.T) {
	// The full interactive loop of section 3.5.2: user input flows
	// controller → daemon → process stdin; the process's reply flows
	// stdout → gateway → daemon → controller.
	c, ctl, out := newSystem(t)
	c.RegisterProgram("parrot", func(p *kernel.Process) int {
		data, err := p.Read(0, 256)
		if err != nil {
			return 1
		}
		p.Printf("parrot says: %s", data)
		return 0
	})
	red, _ := c.Machine("red")
	if err := red.FS().CreateExecutable("/bin/parrot", testUID, "parrot"); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob talk")
	ctl.Exec("addprocess talk red parrot")
	pid := ctl.Jobs()[0].Procs[0].PID
	ctl.Exec("startjob talk")
	ctl.Exec("stdin talk red " + strconv.Itoa(pid) + " hello there")
	waitFor(t, "parrot reply", func() bool {
		return strings.Contains(out.String(), "parrot says: hello there")
	})
	waitFor(t, "parrot exit", jobDone(ctl, "talk"))
}

func TestStdinErrors(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob j")
	ctl.Exec("stdin j red 99 hi")
	if !strings.Contains(out.String(), "no process 99") {
		t.Fatalf("output = %q", out.String())
	}
	ctl.Exec("stdin j red notanumber hi")
	if !strings.Contains(out.String(), "bad process identifier") {
		t.Fatalf("output = %q", out.String())
	}
	ctl.Exec("stdin j red")
	if !strings.Contains(out.String(), "usage: stdin") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestStdinToAcquiredProcessRefused(t *testing.T) {
	// An acquired process was not created by the daemon; its stdio is
	// untouched ("no changes are made to the handling of the
	// processes' I/O", section 3.5.2), so stdin forwarding must be
	// refused, not misdelivered.
	c, ctl, out := newSystem(t)
	red, _ := c.Machine("red")
	server, err := red.SpawnDetached(testUID, "srv")
	if err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob j")
	ctl.Exec("acquire j red " + strconv.Itoa(server.PID()))
	ctl.Exec("stdin j red " + strconv.Itoa(server.PID()) + " boo")
	if !strings.Contains(out.String(), "not created by this meterdaemon") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestJobsUnknownName(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.Exec("jobs ghost")
	if !strings.Contains(out.String(), "no job 'ghost'") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestSinkAppendsAcrossCommands(t *testing.T) {
	c, ctl, _ := newSystem(t)
	yellow, _ := c.Machine("yellow")
	ctl.Exec("sink /usr/log1")
	ctl.Exec("filter f1 blue")
	ctl.Exec("filter f1 blue") // duplicate: second message
	ctl.Exec("sink")
	data, err := yellow.FS().Read("/usr/log1", testUID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "created") || !strings.Contains(string(data), "already exists") {
		t.Fatalf("sink file = %q", data)
	}
}

func TestMeterFlagsReachKernel(t *testing.T) {
	// setflags on a job must change the actual kernel flag mask of its
	// processes.
	c, ctl, _ := newSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob j")
	ctl.Exec("addprocess j red A green")
	red, _ := c.Machine("red")
	pid := ctl.Jobs()[0].Procs[0].PID
	proc, err := red.Proc(pid)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Exec("setflags j send accept")
	if got := proc.MeterFlags(); got != meter.MSend|meter.MAccept {
		t.Fatalf("kernel flags = %b", got)
	}
	ctl.Exec("setflags j -accept fork")
	if got := proc.MeterFlags(); got != meter.MSend|meter.MFork {
		t.Fatalf("kernel flags = %b", got)
	}
	ctl.Exec("stopjob j")
	ctl.Exec("removejob j")
}
