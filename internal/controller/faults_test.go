package controller

import (
	"strings"
	"testing"
	"time"

	"dpm/internal/daemon"
	"dpm/internal/kernel"
	"dpm/internal/netsim"
)

// shortRetry keeps fault-path tests fast: two attempts, millisecond
// backoff, short reply deadline.
var shortRetry = daemon.RetryPolicy{
	MaxAttempts: 2, BaseDelay: time.Millisecond,
	MaxDelay: 2 * time.Millisecond, ReplyTimeout: 100 * time.Millisecond,
}

// cutFrom partitions the controller's machine from the named machine
// on ether0 and returns the network for healing.
func cutFrom(t *testing.T, c *kernel.Cluster, ctl *Controller, victim string) *netsim.Network {
	t.Helper()
	n, err := c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Machine(victim)
	if err != nil {
		t.Fatal(err)
	}
	n.Partition(ctl.machine.PrimaryHostID(), m.PrimaryHostID())
	return n
}

// TestMachineLostAndRecovered walks the degradation round trip: a
// partition makes exchanges to red exhaust their retries, red is
// marked unreachable and its process becomes lost; after the heal a
// successful exchange marks red reachable and the user restarts the
// lost process.
func TestMachineLostAndRecovered(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red B")

	n := cutFrom(t, c, ctl, "red")
	ctl.Exec("stopjob foo")

	if got := ctl.Unreachable(); len(got) != 1 || got[0] != "red" {
		t.Fatalf("Unreachable() = %v, want [red]", got)
	}
	var proc *JobProc
	for _, j := range ctl.Jobs() {
		if j.Name == "foo" {
			proc = j.Procs[0]
		}
	}
	if proc == nil || proc.State != StateLost {
		t.Fatalf("process = %+v, want state lost", proc)
	}
	text := out.String()
	for _, want := range []string{
		"WARNING: machine red is unreachable",
		"LOST: process B in job 'foo' on red",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}

	// The job listing flags the degradation both ways.
	ctl.Exec("jobs")
	ctl.Exec("jobs foo")
	text = out.String()
	if !strings.Contains(text, "'foo' filter 'f1' [degraded]") {
		t.Errorf("jobs list not degraded:\n%s", text)
	}
	if !strings.Contains(text, "degraded: machine red unreachable") {
		t.Errorf("jobs detail lacks degradation note:\n%s", text)
	}

	// Heal; the next successful exchange clears the mark, and the lost
	// process can be driven back to a known state.
	n.Heal()
	ctl.Exec("status")
	if got := ctl.Unreachable(); len(got) != 0 {
		t.Fatalf("Unreachable() after heal = %v, want empty", got)
	}
	if !strings.Contains(out.String(), "NOTE: machine red is reachable again") {
		t.Errorf("no recovery note:\n%s", out.String())
	}
	ctl.Exec("startjob foo")
	waitFor(t, "lost process restarted", func() bool {
		for _, j := range ctl.Jobs() {
			if j.Name == "foo" && len(j.Procs) == 1 {
				s := j.Procs[0].State
				return s == StateRunning || s == StateKilled
			}
		}
		return false
	})
}

// TestStatusCommand checks the per-machine reachability report.
func TestStatusCommand(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)

	ctl.Exec("status")
	text := out.String()
	for _, want := range []string{
		"machine yellow: reachable (controller)",
		"machine red: reachable",
		"machine green: reachable",
		"machine blue: reachable",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("status lacks %q:\n%s", want, text)
		}
	}

	cutFrom(t, c, ctl, "green")
	ctl.Exec("status")
	if !strings.Contains(out.String(), "machine green: unreachable") {
		t.Errorf("status after partition:\n%s", out.String())
	}
	if got := ctl.Unreachable(); len(got) != 1 || got[0] != "green" {
		t.Fatalf("Unreachable() = %v, want [green]", got)
	}
}

// TestStatusAfterCrash: a crashed machine shows unreachable; after a
// restart (which reinstalls its daemon) it answers again.
func TestStatusAfterCrash(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)

	if err := c.CrashMachine("red"); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("status")
	if !strings.Contains(out.String(), "machine red: unreachable") {
		t.Errorf("status after crash:\n%s", out.String())
	}

	m, err := c.RestartMachine("red")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := daemon.Install(c, m); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("status")
	if !strings.Contains(out.String(), "machine red: reachable\n") {
		t.Errorf("status after restart:\n%s", out.String())
	}
}

// TestRemoveLostProcess: removing a lost process fails while its
// machine is cut off — and the job survives, so the controller keeps
// its record of the process — then succeeds (killing the real process)
// after the heal.
func TestRemoveLostProcess(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red B")

	var pid int
	for _, j := range ctl.Jobs() {
		if j.Name == "foo" {
			pid = j.Procs[0].PID
		}
	}
	n := cutFrom(t, c, ctl, "red")
	ctl.Exec("stopjob foo") // exhausts retries, marks B lost

	ctl.Exec("removejob foo")
	text := out.String()
	if !strings.Contains(text, "'B' not removed") || !strings.Contains(text, "job 'foo' not removed") {
		t.Errorf("lost process removed while unreachable:\n%s", text)
	}
	if len(ctl.Jobs()) != 1 {
		t.Fatal("job deleted despite unremovable lost process")
	}

	n.Heal()
	ctl.Exec("removejob foo")
	if len(ctl.Jobs()) != 0 {
		t.Fatalf("job not removed after heal:\n%s", out.String())
	}
	red, err := c.Machine("red")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "daemon-side process gone", func() bool {
		_, err := red.Proc(pid)
		return err != nil
	})
}
