package controller

import (
	"strings"
	"testing"

	"dpm/internal/filter"
	"dpm/internal/fsys"
	"dpm/internal/meter"
	"dpm/internal/store"
	"dpm/internal/trace"
)

// logState returns the incremental-getlog bookkeeping for a filter.
func logState(t *testing.T, ctl *Controller, name string) *FilterInfo {
	t.Helper()
	for _, f := range ctl.Filters() {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no filter %q", name)
	return nil
}

func readDest(t *testing.T, ctl *Controller, path string) string {
	t.Helper()
	data, err := ctl.machine.FS().Read(path, testUID)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(data)
}

func TestGetLogIncremental(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	if !strings.Contains(out.String(), "created") {
		t.Fatalf("filter not created: %s", out.String())
	}
	blue, err := c.Machine("blue")
	if err != nil {
		t.Fatal(err)
	}
	log := filter.LogPath("f1")

	// First fetch: a full copy, and the offset starts tracking.
	if err := blue.FS().Append(log, testUID, []byte("line one\n")); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("getlog f1 out")
	if got := readDest(t, ctl, "/usr/out"); got != "line one\n" {
		t.Fatalf("first getlog content %q", got)
	}
	if f := logState(t, ctl, "f1"); f.LogOffset != len("line one\n") {
		t.Fatalf("LogOffset after first getlog = %d", f.LogOffset)
	}

	// Second fetch must transfer only the delta. Plant a marker in the
	// destination: an incremental fetch appends after it, a full copy
	// would wipe it.
	if err := ctl.machine.FS().Remove("/usr/out", testUID); err != nil {
		t.Fatal(err)
	}
	if err := ctl.machine.FS().Create("/usr/out", testUID, fsys.PrivateMode, []byte("MARKER")); err != nil {
		t.Fatal(err)
	}
	if err := blue.FS().Append(log, testUID, []byte("line two\n")); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("getlog f1 out")
	if got := readDest(t, ctl, "/usr/out"); got != "MARKERline two\n" {
		t.Fatalf("incremental getlog did not splice: %q", got)
	}
	if f := logState(t, ctl, "f1"); f.LogOffset != len("line one\nline two\n") {
		t.Fatalf("LogOffset after second getlog = %d", f.LogOffset)
	}

	// An unchanged log transfers nothing and disturbs nothing.
	ctl.Exec("getlog f1 out")
	if got := readDest(t, ctl, "/usr/out"); got != "MARKERline two\n" {
		t.Fatalf("no-op getlog rewrote the destination: %q", got)
	}

	// A same-length in-place rewrite (the counting filter does this
	// every batch) must be detected by the prefix CRC and refetched
	// whole, not spliced.
	rewritten := "LINE ONE\nLINE TWO\n" // same length as the old content
	if err := blue.FS().Remove(log, testUID); err != nil {
		t.Fatal(err)
	}
	if err := blue.FS().Append(log, testUID, []byte(rewritten)); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("getlog f1 out")
	if got := readDest(t, ctl, "/usr/out"); got != rewritten {
		t.Fatalf("same-length rewrite not detected: %q", got)
	}

	// A shrunken log also falls back to a full copy.
	if err := blue.FS().Remove(log, testUID); err != nil {
		t.Fatal(err)
	}
	if err := blue.FS().Append(log, testUID, []byte("short\n")); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("getlog f1 out")
	if got := readDest(t, ctl, "/usr/out"); got != "short\n" {
		t.Fatalf("shrink not detected: %q", got)
	}
	if f := logState(t, ctl, "f1"); f.LogOffset != len("short\n") {
		t.Fatalf("LogOffset after shrink = %d", f.LogOffset)
	}

	// A different destination restarts from the top: the remembered
	// offset describes the old file, not this one.
	ctl.Exec("getlog f1 elsewhere")
	if got := readDest(t, ctl, "/usr/elsewhere"); got != "short\n" {
		t.Fatalf("new destination got %q", got)
	}
	if f := logState(t, ctl, "f1"); f.LogDest != "/usr/elsewhere" {
		t.Fatalf("LogDest = %q", f.LogDest)
	}
}

// storeEvent writes one synthetic event into a store with consistent
// frame metadata.
func storeEvent(t *testing.T, st *store.Store, machine int, cpuTime int64, typ meter.Type, pid uint64) {
	t.Helper()
	e := trace.Event{
		Type: typ, Event: typ.String(), Machine: machine, CPUTime: cpuTime,
		Fields: map[string]uint64{"pid": pid, "sock": 3},
		Names:  map[string]meter.Name{},
	}
	m := store.Meta{Machine: uint16(machine), Time: uint32(cpuTime), Type: uint32(typ), PID: uint32(pid)}
	if err := st.Append(m, e.Format()); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCommand(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.Exec("filter f1 blue")
	blue, err := c.Machine("blue")
	if err != nil {
		t.Fatal(err)
	}
	// Populate the filter's store directly — the daemon-side query path
	// is what's under test, not the filter's meter loop.
	st, err := store.Open(store.NewFsysBackend(blue.FS(), testUID, filter.StorePath("f1")), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		typ := meter.EvSend
		if i%2 == 1 {
			typ = meter.EvRecv
		}
		storeEvent(t, st, i%4+1, int64(i*100), typ, uint64(200+i%4))
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	ctl.Exec("query f1 qout machine=3,type=1")
	if !strings.Contains(out.String(), "query 'f1': segments=") {
		t.Fatalf("no stats line: %s", out.String())
	}
	body := readDest(t, ctl, "/usr/qout")
	events, err := trace.ParseLog([]byte(body))
	if err != nil {
		t.Fatalf("query output does not parse as a trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("selective query matched nothing")
	}
	for _, e := range events {
		if e.Machine != 3 || e.Type != meter.EvSend {
			t.Fatalf("query result leaked machine=%d type=%v", e.Machine, e.Type)
		}
	}

	// No rules: everything comes back, in cpuTime order.
	ctl.Exec("query f1 qall")
	all, err := trace.ParseLog([]byte(readDest(t, ctl, "/usr/qall")))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 30 {
		t.Fatalf("match-all query returned %d events, want 30", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].CPUTime < all[i-1].CPUTime {
			t.Fatalf("query results out of order at %d", i)
		}
	}

	// The rule alphabet is accepted by the command parser, but only
	// after the destination argument.
	ctl.Exec("query f1 qnone machine=1,machine=2")
	if got := readDest(t, ctl, "/usr/qnone"); got != "" {
		t.Fatalf("contradictory query wrote %q", got)
	}
	before := out.String()
	ctl.Exec("query f=1 dest machine=1")
	if !strings.Contains(strings.TrimPrefix(out.String(), before), "bad token") {
		t.Fatal("operator characters accepted in the filter-name position")
	}

	// Unknown filter.
	before = out.String()
	ctl.Exec("query nosuch dest")
	if !strings.Contains(strings.TrimPrefix(out.String(), before), "no filter 'nosuch'") {
		t.Fatalf("unknown filter: %s", strings.TrimPrefix(out.String(), before))
	}
}
