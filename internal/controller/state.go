// Package controller implements the user interface of the measurement
// system: the command interpreter the paper calls the control process
// (sections 3.5 and 4.2–4.4).
//
// The controller organizes metered computations into jobs, creates
// filter processes and metered processes through the meterdaemons,
// tracks each process through the state machine of Figure 4.2, and
// provides the command set of the user's manual (section 4.3).
package controller

import "fmt"

// State is a controller-tracked process state — the five states of
// Figure 4.2.
type State int

// Process states.
const (
	// StateNew: "the execution environment has been set up, but the
	// process is suspended prior to the execution of the first
	// instruction."
	StateNew State = iota + 1
	// StateAcquired: a previously existing process (such as a system
	// server) being metered; it can only be metered, never stopped or
	// killed.
	StateAcquired
	// StateRunning: the process is executing.
	StateRunning
	// StateStopped: suspended; it may resume.
	StateStopped
	// StateKilled: the process has completed or been removed; it
	// cannot be restarted.
	StateKilled
	// StateLost is an extension to Figure 4.2 for a fabric the paper
	// assumed away: the process's machine stopped answering its
	// meterdaemon exchanges, so the controller no longer knows the
	// process's true state. The process may well still be executing.
	// A lost process returns to a known state when its machine answers
	// again (the user drives it with startjob/stopjob/removejob) or
	// when a termination notice finally arrives.
	StateLost
)

var stateNames = map[State]string{
	StateNew:      "new",
	StateAcquired: "acquired",
	StateRunning:  "running",
	StateStopped:  "stopped",
	StateKilled:   "killed",
	StateLost:     "lost",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// legalTransitions encodes the edges of Figure 4.2. Notably absent:
// new→killed ("This restriction is enforced as a precautionary
// measure, ensuring that the user does not accidentally remove a
// computation that is in progress"), anything out of killed ("A
// process cannot be restarted once it has been killed"), and any
// transition for acquired processes ("An acquired process cannot be
// stopped or killed, it can only be metered").
// The lost extension: entering lost is administrative (the controller
// marks a machine's processes lost when exchanges to it exhaust their
// retries), so no edge leads in; every user-driven edge leads out, so
// a recovered machine's processes can be restarted, stopped, or
// cleaned up once it answers again.
var legalTransitions = map[State][]State{
	StateNew:     {StateRunning, StateStopped},
	StateRunning: {StateStopped, StateKilled},
	StateStopped: {StateRunning, StateKilled},
	StateLost:    {StateRunning, StateStopped, StateKilled},
}

// CanTransition reports whether Figure 4.2 permits moving a process
// from one state to another.
func CanTransition(from, to State) bool {
	for _, t := range legalTransitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// Active reports whether a process in this state counts as active for
// the die command's warning ("If there are still active processes
// (new, stopped, running, or acquired), the user is warned"). A lost
// process counts: it may still be executing somewhere the controller
// cannot see.
func (s State) Active() bool {
	return s == StateNew || s == StateStopped || s == StateRunning ||
		s == StateAcquired || s == StateLost
}
