package controller

import "testing"

func TestFigure42Transitions(t *testing.T) {
	type edge struct {
		from, to State
	}
	legal := []edge{
		{StateNew, StateRunning},
		{StateNew, StateStopped},
		{StateRunning, StateStopped},
		{StateStopped, StateRunning},
		{StateRunning, StateKilled},
		{StateStopped, StateKilled},
	}
	legalSet := make(map[edge]bool)
	for _, e := range legal {
		legalSet[e] = true
		if !CanTransition(e.from, e.to) {
			t.Errorf("legal edge %v->%v rejected", e.from, e.to)
		}
	}
	all := []State{StateNew, StateAcquired, StateRunning, StateStopped, StateKilled}
	for _, from := range all {
		for _, to := range all {
			if !legalSet[edge{from, to}] && CanTransition(from, to) {
				t.Errorf("illegal edge %v->%v allowed", from, to)
			}
		}
	}
}

func TestNewCannotBeKilledDirectly(t *testing.T) {
	// "A process cannot move directly to the killed state from the new
	// state. This restriction is enforced as a precautionary measure."
	if CanTransition(StateNew, StateKilled) {
		t.Fatal("new->killed allowed")
	}
}

func TestKilledIsTerminal(t *testing.T) {
	for _, to := range []State{StateNew, StateRunning, StateStopped, StateAcquired} {
		if CanTransition(StateKilled, to) {
			t.Errorf("killed->%v allowed", to)
		}
	}
}

func TestAcquiredCannotBeControlled(t *testing.T) {
	// "An acquired process cannot be stopped or killed, it can only be
	// metered."
	for _, to := range []State{StateRunning, StateStopped, StateKilled} {
		if CanTransition(StateAcquired, to) {
			t.Errorf("acquired->%v allowed", to)
		}
	}
}

func TestActiveStates(t *testing.T) {
	for s, want := range map[State]bool{
		StateNew: true, StateAcquired: true, StateRunning: true, StateStopped: true,
		StateKilled: false,
	} {
		if s.Active() != want {
			t.Errorf("%v.Active() = %v, want %v", s, s.Active(), want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	if StateNew.String() != "new" || StateKilled.String() != "killed" || StateAcquired.String() != "acquired" {
		t.Fatal("state names wrong")
	}
	if State(99).String() != "state(99)" {
		t.Fatal("unknown state name wrong")
	}
}

func TestValidToken(t *testing.T) {
	// Section 4.3's literal rules: digits, letters, '/' and '.'
	// (plus '-' for flag resets).
	for _, ok := range []string{"foo", "A", "red", "/bin/filter", "file.txt", "-send", "123"} {
		if !validToken(ok) {
			t.Errorf("validToken(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "a b", "x;y", "nam*e", "q!", "päth"} {
		if validToken(bad) {
			t.Errorf("validToken(%q) = true", bad)
		}
	}
}
