package controller

import (
	"strings"
	"testing"
)

// TestStatsCommand: the stats command polls every machine's
// meterdaemon over the wire, merges the snapshots, and renders the
// aggregate report with counters and histogram quantiles.
func TestStatsCommand(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)

	// A status probe first, so every machine has served at least one
	// list request and the merged report has a known nonzero counter.
	ctl.Exec("status")
	ctl.Exec("stats")
	text := out.String()
	if !strings.Contains(text, "stats: 4/4 machines reporting") {
		t.Fatalf("stats header:\n%s", text)
	}
	for _, want := range []string{
		"daemon.req.list",  // counted by the probed daemons
		"daemon.req.stats", // counted by serving this very command
		"daemon.rtt.list",  // controller-side round-trip histogram
		"p50", "p95", "p99",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stats report lacks %q:\n%s", want, text)
		}
	}

	// Narrowed to one machine the report is that machine's alone.
	ctl.Exec("stats red")
	if !strings.Contains(out.String(), "stats: 1/1 machines reporting (red)") {
		t.Errorf("single-machine stats:\n%s", out.String())
	}

	// An unknown target is an error, not a hang.
	ctl.Exec("stats nosuch")
	if !strings.Contains(out.String(), "stats: no machine or job named 'nosuch'") {
		t.Errorf("bad target:\n%s", out.String())
	}
}

// TestStatsJobTarget: a job name narrows the poll to the machines the
// job's processes and its filter run on.
func TestStatsJobTarget(t *testing.T) {
	_, ctl, out := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red B")

	ctl.Exec("stats foo")
	text := out.String()
	if !strings.Contains(text, "stats: 2/2 machines reporting (red blue)") {
		t.Fatalf("job-scoped stats:\n%s", text)
	}
}

// TestStatsUnderPartition: a machine cut off mid-poll degrades the
// report — it is listed as missing, the survivors still merge — and
// the command returns within the retry policy instead of hanging.
func TestStatsUnderPartition(t *testing.T) {
	c, ctl, out := newSystem(t)
	ctl.SetRetryPolicy(shortRetry)

	cutFrom(t, c, ctl, "green")
	ctl.Exec("stats")
	text := out.String()
	if !strings.Contains(text, "stats: 3/4 machines reporting") {
		t.Fatalf("degraded header:\n%s", text)
	}
	if !strings.Contains(text, "stats: degraded, missing green") {
		t.Fatalf("missing list:\n%s", text)
	}
	if !strings.Contains(text, "daemon.req.stats") {
		t.Errorf("degraded report still renders survivors:\n%s", text)
	}
}
