package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"dpm/internal/controller"
	"dpm/internal/daemon"
	"dpm/internal/filter"
	"dpm/internal/fsys"
	"dpm/internal/kernel"
	"dpm/internal/obs"
	"dpm/internal/query"
	"dpm/internal/store"
	"dpm/internal/trace"
)

// TestChaosSoak drives concurrent metered jobs while a fault injector
// randomly crashes and restarts one machine and cuts and heals the
// controller's link to another. Invariants checked at the end, with
// the fabric healed:
//
//   - the control plane never wedges (the test completes),
//   - no create was ever duplicated on the surviving machine,
//   - the reachability record converges to "everything reachable",
//   - the filter's trace still parses (a torn tail is tolerated,
//     corruption is not).
func TestChaosSoak(t *testing.T) {
	s, ctl, out := newTestSystem(t)
	ctl.SetRetryPolicy(daemon.RetryPolicy{
		MaxAttempts: 3, BaseDelay: 2 * time.Millisecond,
		MaxDelay: 10 * time.Millisecond, ReplyTimeout: 500 * time.Millisecond,
	})

	// beacon runs until killed, sending steadily so metering exercises
	// the filter connection throughout the faults.
	s.Cluster.RegisterProgram("beacon", func(p *kernel.Process) int {
		f1, f2, err := p.SocketPair()
		if err != nil {
			return 1
		}
		for {
			if _, err := p.Send(f1, []byte("b")); err != nil {
				return 1
			}
			if _, err := p.Recv(f2, 4); err != nil {
				return 1
			}
			p.Compute(200 * time.Microsecond)
		}
	})
	for _, mn := range []string{"red", "green"} {
		m, err := s.Machine(mn)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FS().CreateExecutable("/bin/beacon", s.UID, "beacon"); err != nil {
			t.Fatal(err)
		}
	}

	// Controller and filter live on yellow, which is never faulted.
	// red gets crashed and restarted; the yellow↔green link gets cut
	// and healed.
	ctl.Exec("filter f yellow")

	iterations := 8
	if testing.Short() {
		iterations = 4
	}

	stop := make(chan struct{})
	faultDone := make(chan struct{})
	var crashes, restarts int
	go func() {
		defer close(faultDone)
		rng := rand.New(rand.NewSource(42))
		redDown, cut := false, false
		for {
			select {
			case <-stop:
				// Leave the world healed and whole.
				if cut {
					s.Heal()
				}
				if redDown {
					if err := s.RestartMachine("red"); err != nil {
						t.Error(err)
					} else {
						restarts++
					}
				}
				return
			default:
			}
			switch rng.Intn(4) {
			case 0:
				if !redDown {
					if err := s.CrashMachine("red"); err != nil {
						t.Error(err)
						return
					}
					redDown = true
					crashes++
				}
			case 1:
				if redDown {
					if err := s.RestartMachine("red"); err != nil {
						t.Error(err)
						return
					}
					redDown = false
					restarts++
				}
			case 2:
				if !cut {
					if err := s.Partition("yellow", "green"); err != nil {
						t.Error(err)
						return
					}
					cut = true
				}
			case 3:
				if cut {
					s.Heal()
					cut = false
				}
			}
			time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
		}
	}()

	for i := 0; i < iterations; i++ {
		job := fmt.Sprintf("job%d", i)
		ctl.Exec("newjob " + job)
		ctl.Exec("setflags " + job + " send receive termproc")
		ctl.Exec("addprocess " + job + " green beacon")
		ctl.Exec("addprocess " + job + " red beacon")
		ctl.Exec("startjob " + job)
		ctl.Exec("status")
		ctl.Exec("jobs")
		ctl.Exec("jobs " + job)
	}
	close(stop)
	<-faultDone

	// With everything healed and restarted, a status sweep must
	// converge the reachability record to empty.
	ctl.Exec("status")
	if got := ctl.Unreachable(); len(got) != 0 {
		t.Fatalf("Unreachable() = %v after heal and restart\n%s", got, out.String())
	}

	// No double-create: green was never crashed, so every beacon its
	// daemon ever created is still alive there, and the count must
	// match the controller's records exactly — a retried create that
	// double-created would leave an extra live process.
	green, err := s.Machine("green")
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, p := range green.Procs() {
		if p.Name() == "/bin/beacon" {
			live++
		}
	}
	recorded := 0
	pids := make(map[int]bool)
	for _, j := range ctl.Jobs() {
		for _, p := range j.Procs {
			if p.Machine == "green" {
				recorded++
				if pids[p.PID] {
					t.Fatalf("duplicate pid %d recorded on green", p.PID)
				}
				pids[p.PID] = true
			}
		}
	}
	if live != recorded {
		t.Fatalf("green has %d live beacons but the controller recorded %d creates\n%s",
			live, recorded, out.String())
	}
	if recorded == 0 {
		t.Fatalf("no green creates survived the soak — faults starved the control plane\n%s", out.String())
	}

	// The fault counters saw every injected fault.
	stats := s.FaultStats()
	if int(stats.Crashes) != crashes || int(stats.Restarts) != restarts {
		t.Fatalf("FaultStats = %+v, injected %d crashes %d restarts", stats, crashes, restarts)
	}

	// With the fabric healed, one more job must go through cleanly —
	// and guarantees the filter has events to log, however unlucky the
	// random faults were for the earlier startjobs.
	ctl.Exec("newjob final")
	ctl.Exec("setflags final send receive")
	ctl.Exec("addprocess final green beacon")
	ctl.Exec("startjob final")
	waitFor(t, "final job running", func() bool {
		for _, j := range ctl.Jobs() {
			if j.Name == "final" && len(j.Procs) == 1 {
				return j.Procs[0].State == controller.StateRunning
			}
		}
		return false
	})

	// Quiesce the load generators before the verification scans below:
	// every beacon spins at full tilt until told otherwise, and on a
	// small machine a dozen of them starve the store reader while
	// growing the very store it is trying to scan. Stopping the jobs
	// freezes both trace sinks at a matched point without killing
	// anything the invariants above counted.
	for _, j := range ctl.Jobs() {
		ctl.Exec("stopjob " + j.Name)
	}

	// The filter's trace parses; a tail torn by a crash is tolerated.
	var logged []trace.Event
	deadline := time.Now().Add(5 * time.Second)
	for {
		events, err := s.ReadTrace("yellow", "f")
		if (err == nil || errors.Is(err, trace.ErrTruncated)) && len(events) > 0 {
			logged = events
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no parseable trace: %v", err)
		}
		time.Sleep(time.Millisecond)
	}

	// The filter dual-writes through the event store (store first, flat
	// log second within each batch), so everything the flat log showed
	// must be queryable from the store — the soak's proof that the
	// store-backed sink survives the same faults the log does.
	be := store.NewFsysBackend(yellow(t, s).FS(), s.UID, filter.StorePath("f"))
	matchAll, err := query.Compile("")
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		var stored int
		rd, rerr := store.OpenReader(be)
		if rerr == nil {
			if res, qerr := query.Run(rd, matchAll); qerr == nil {
				stored = len(res.Events)
			}
		}
		if stored >= len(logged) && stored > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("store holds %d events, flat log had %d", stored, len(logged))
		}
		time.Sleep(time.Millisecond)
	}

	// The stats command works over the healed fabric: every machine
	// reports, and the merged report carries the daemon's request
	// accounting with round-trip quantiles.
	ctl.Exec("stats")
	text := out.String()
	if !strings.Contains(text, "stats: 4/4 machines reporting") {
		t.Fatalf("stats after heal:\n%s", text)
	}
	for _, want := range []string{"daemon.req.create", "daemon.rtt.create", "p99"} {
		if !strings.Contains(text, want) {
			t.Errorf("stats report lacks %q", want)
		}
	}

	// The live-analysis sections rode through every crash, restart and
	// partition of the soak: the filter on yellow kept its collector,
	// and the merged report renders the streaming §5 operators.
	for _, want := range []string{"live communication:", "live parallelism:", "live matching:"} {
		if !strings.Contains(text, want) {
			t.Errorf("stats report lacks live section %q", want)
		}
	}

	// Under a fresh partition the stats command degrades instead of
	// hanging — and the reachable side still merges and renders its
	// live sections.
	if err := s.Partition("yellow", "green"); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	ctl.Exec("stats")
	partText := out.String()
	s.Heal()
	if !strings.Contains(partText, "stats: 3/4 machines reporting") ||
		!strings.Contains(partText, "stats: degraded, missing green") {
		t.Fatalf("stats under partition:\n%s", partText)
	}
	for _, want := range []string{"live communication:", "live parallelism:"} {
		if !strings.Contains(partText, want) {
			t.Errorf("partitioned stats report lacks %q", want)
		}
	}

	// The per-machine registries agree with the injected fault history
	// (FaultStats is now a view over the same counters), and the merge
	// of all machines exports for CI when DPM_STATS_OUT names a file.
	var merged *obs.Snapshot
	for _, m := range s.Cluster.Machines() {
		snap := m.Obs().Snapshot()
		snap.Machine = m.Name()
		if merged == nil {
			merged = snap
		} else {
			merged.Merge(snap)
		}
	}
	if v, _ := merged.Get("faults.crashes"); int(v) != crashes {
		t.Errorf("merged faults.crashes = %d, injected %d", v, crashes)
	}
	if v, ok := merged.Get("filter.received"); !ok || v <= 0 {
		t.Errorf("merged filter.received = %d, want > 0", v)
	}
	if path := os.Getenv("DPM_STATS_OUT"); path != "" {
		if err := os.WriteFile(path, merged.EncodeJSON(), 0o644); err != nil {
			t.Errorf("DPM_STATS_OUT: %v", err)
		}
	}

	// Controller shutdown kills the filter over the wire; the filter's
	// deferred export then writes its machine's snapshot beside the
	// logs, where post-mortem tooling (dpstat) can read it.
	ctl.Exec("die")
	ctl.Exec("die") // armed: active beacons still exist
	waitFor(t, "filter stats export", func() bool {
		data, err := yellow(t, s).FS().Read(filter.StatsPath("f"), fsys.Superuser)
		if err != nil {
			return false
		}
		snap, err := obs.ParseSnapshotJSON(data)
		if err != nil {
			return false
		}
		v, ok := snap.Get("filter.received")
		return ok && v > 0
	})
}

// yellow fetches the controller's machine, failing the test on error.
func yellow(t *testing.T, s *System) *kernel.Machine {
	t.Helper()
	m, err := s.Machine("yellow")
	if err != nil {
		t.Fatal(err)
	}
	return m
}
