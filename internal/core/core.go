// Package core assembles the complete measurement system of the paper:
// a simulated Berkeley UNIX 4.2BSD cluster with metering in each
// kernel, a meterdaemon on every machine, the standard filter
// installed, and controllers on demand — the one-call facade the
// examples, command-line tools, and benchmarks build on.
package core

import (
	"fmt"
	"io"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/analysis/live"
	"dpm/internal/clock"
	"dpm/internal/controller"
	"dpm/internal/daemon"
	"dpm/internal/filter"
	"dpm/internal/fsys"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/netsim"
	"dpm/internal/trace"
)

// DefaultUID is the account installed on every machine of a system.
const DefaultUID = 100

// Config describes the cluster to build.
type Config struct {
	// Machines lists host names; the default is the four machines of
	// the paper's example session: red, green, blue and yellow.
	Machines []string
	// Networks maps a network name to the machines attached to it.
	// The default attaches every machine to one network, "ether0".
	Networks map[string][]string
	// NetOptions configures individual networks (loss, latency,
	// reordering).
	NetOptions map[string][]netsim.Option
	// UID is the user account created on every machine (DefaultUID if
	// zero).
	UID int
	// Kernel carries cluster-wide kernel parameters.
	Kernel kernel.Config
	// PerfectClocks disables the default per-machine clock skew.
	// By default machine i starts with a small offset and drift, so
	// traces exhibit the imperfect synchronization the paper's
	// analyses must cope with (section 1.1).
	PerfectClocks bool
}

// System is a running measurement installation.
type System struct {
	Cluster *kernel.Cluster
	UID     int
	Daemons map[string]*kernel.Process

	machines []string
}

// NewSystem builds and starts a system: machines, networks, accounts,
// meterdaemons, and the standard filter files on every machine.
func NewSystem(cfg Config) (*System, error) {
	// Every filter started on this system gets a live-analysis
	// collector on its machine's registry, so `stats`, dpmon -watch,
	// and dpstat report the §5 analyses cluster-wide as the trace
	// streams in. Idempotent: the factory is a process-wide seam.
	filter.SetTapFactory(live.Factory())
	if len(cfg.Machines) == 0 {
		cfg.Machines = []string{"red", "green", "blue", "yellow"}
	}
	if cfg.Networks == nil {
		cfg.Networks = map[string][]string{"ether0": cfg.Machines}
	}
	if cfg.UID == 0 {
		cfg.UID = DefaultUID
	}
	c := kernel.NewCluster(cfg.Kernel)
	for net := range cfg.Networks {
		c.AddNetwork(net, cfg.NetOptions[net]...)
	}
	known := make(map[string]bool, len(cfg.Machines))
	for _, m := range cfg.Machines {
		known[m] = true
	}
	attachments := make(map[string][]string) // machine -> networks
	for net, machines := range cfg.Networks {
		for _, m := range machines {
			if !known[m] {
				return nil, fmt.Errorf("core: network %q names unknown machine %q", net, m)
			}
			attachments[m] = append(attachments[m], net)
		}
	}
	s := &System{Cluster: c, UID: cfg.UID, Daemons: make(map[string]*kernel.Process), machines: cfg.Machines}
	for i, name := range cfg.Machines {
		var clk *clock.MachineClock
		if !cfg.PerfectClocks {
			// Deterministic skew: machine i starts 13i ms late and
			// drifts (100i - 150) ppm, so separate machines' clocks
			// only roughly correspond (paper section 4.1).
			clk = clock.New(
				clock.WithOffset(time.Duration(i)*13*time.Millisecond),
				clock.WithDriftPPM(int64(100*i-150)),
			)
		}
		m, err := c.AddMachine(name, clk, attachments[name]...)
		if err != nil {
			return nil, err
		}
		m.AddAccount(cfg.UID, "user")
		d, err := daemon.Install(c, m)
		if err != nil {
			return nil, err
		}
		s.Daemons[name] = d
		if err := filter.Install(c, m, 0); err != nil {
			return nil, err
		}
		if err := filter.InstallCounting(c, m, 0); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Machine returns a machine by name.
func (s *System) Machine(name string) (*kernel.Machine, error) {
	return s.Cluster.Machine(name)
}

// NewController starts a controller for the system's user on the
// given machine, writing to out.
func (s *System) NewController(machine string, out io.Writer) (*controller.Controller, error) {
	return controller.New(s.Cluster, machine, s.UID, out)
}

// RegisterWorkload registers a program and installs it as an
// executable file /bin/<name> on the given machines (all machines when
// none are named).
func (s *System) RegisterWorkload(name string, prog kernel.Program, machines ...string) error {
	s.Cluster.RegisterProgram(name, prog)
	if len(machines) == 0 {
		machines = s.machines
	}
	for _, mn := range machines {
		m, err := s.Cluster.Machine(mn)
		if err != nil {
			return err
		}
		if err := m.FS().CreateExecutable("/bin/"+name, s.UID, name); err != nil {
			return err
		}
	}
	return nil
}

// ReadTrace reads and parses a filter's trace log from the machine it
// runs on.
func (s *System) ReadTrace(machine, filterName string) ([]trace.Event, error) {
	m, err := s.Cluster.Machine(machine)
	if err != nil {
		return nil, err
	}
	data, err := m.FS().Read(filter.LogPath(filterName), fsys.Superuser)
	if err != nil {
		return nil, err
	}
	return trace.ParseLog(data)
}

// MatchOptions returns analysis options with this cluster's host→
// machine mapping, so multi-network systems analyze correctly.
func (s *System) MatchOptions() *analysis.MatchOptions {
	hostToMachine := make(map[uint32]int)
	for _, m := range s.Cluster.Machines() {
		hostToMachine[m.PrimaryHostID()] = int(m.ID())
	}
	return &analysis.MatchOptions{HostToMachine: hostToMachine}
}

// Shutdown stops everything.
func (s *System) Shutdown() { s.Cluster.Shutdown() }

// WaitJob polls a controller until every process of the named job has
// terminated (entered the killed state), or the timeout expires.
func WaitJob(ctl *controller.Controller, job string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		found, done := false, true
		for _, j := range ctl.Jobs() {
			if j.Name != job {
				continue
			}
			found = true
			for _, p := range j.Procs {
				if p.State != controller.StateKilled {
					done = false
				}
			}
		}
		if found && done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: job %q did not complete within %v", job, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// WaitTrace polls until the named filter's trace satisfies the
// predicate, returning the parsed events.
func (s *System) WaitTrace(machine, filterName string, timeout time.Duration, ok func([]trace.Event) bool) ([]trace.Event, error) {
	deadline := time.Now().Add(timeout)
	for {
		events, err := s.ReadTrace(machine, filterName)
		if err == nil && ok(events) {
			return events, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return nil, fmt.Errorf("core: trace %s/%s unavailable: %w", machine, filterName, err)
			}
			return events, fmt.Errorf("core: trace %s/%s incomplete after %v", machine, filterName, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// TermCount returns a WaitTrace predicate satisfied once n termproc
// records are present — i.e. n metered processes have finished and
// flushed.
func TermCount(n int) func([]trace.Event) bool {
	return func(events []trace.Event) bool {
		c := 0
		for _, e := range events {
			if e.Type == meter.EvTermProc {
				c++
			}
		}
		return c >= n
	}
}

// RunScript drives a controller through a command script and returns
// an error if the controller exited early.
func RunScript(ctl *controller.Controller, lines []string) error {
	for _, line := range lines {
		if !ctl.Exec(line) {
			return nil
		}
	}
	return fmt.Errorf("core: script ended without die")
}
