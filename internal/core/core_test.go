package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/analysis/live"
	"dpm/internal/controller"
	"dpm/internal/daemon"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/trace"
)

// testOut is a threadsafe writer for controller output.
type testOut struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *testOut) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *testOut) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func (w *testOut) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Reset()
}

const pongPort = 7000

// registerPingPong installs a stream client/server pair: ponger
// listens, echoes one message with a reply prefix, and exits; pinger
// connects (with retry while the server comes up), sends, awaits the
// reply, and exits.
func registerPingPong(t *testing.T, s *System) {
	t.Helper()
	if err := s.RegisterWorkload("ponger", func(p *kernel.Process) int {
		lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			return 1
		}
		if err := p.BindPort(lfd, pongPort); err != nil {
			return 1
		}
		if err := p.Listen(lfd, 4); err != nil {
			return 1
		}
		cfd, _, err := p.Accept(lfd)
		if err != nil {
			return 1
		}
		data, err := p.Recv(cfd, 256)
		if err != nil {
			return 1
		}
		p.Compute(20 * time.Millisecond)
		if _, err := p.Send(cfd, append([]byte("re: "), data...)); err != nil {
			return 1
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterWorkload("pinger", func(p *kernel.Process) int {
		args := p.Args()
		server := "green"
		if len(args) > 0 {
			server = args[0]
		}
		host, _, err := p.Machine().Cluster().ResolveFrom(p.Machine(), server)
		if err != nil {
			return 1
		}
		name := meter.InetName(host, pongPort)
		var fd int
		for i := 0; ; i++ {
			fd, err = p.Socket(meter.AFInet, kernel.SockStream)
			if err != nil {
				return 1
			}
			if err = p.Connect(fd, name); err == nil {
				break
			}
			_ = p.Close(fd)
			if i > 5000 {
				return 1
			}
			time.Sleep(time.Millisecond)
		}
		p.Compute(30 * time.Millisecond)
		if _, err := p.Send(fd, []byte("hello")); err != nil {
			return 1
		}
		if _, err := p.Recv(fd, 256); err != nil {
			return 1
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
}

func newTestSystem(t *testing.T) (*System, *controller.Controller, *testOut) {
	t.Helper()
	s, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	registerPingPong(t, s)
	out := &testOut{}
	ctl, err := s.NewController("yellow", out)
	if err != nil {
		t.Fatal(err)
	}
	return s, ctl, out
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func jobDone(ctl *controller.Controller, job string) func() bool {
	return func() bool {
		for _, j := range ctl.Jobs() {
			if j.Name != job {
				continue
			}
			for _, p := range j.Procs {
				if p.State != controller.StateKilled {
					return false
				}
			}
			return true
		}
		return false
	}
}

// TestPipelineStages reproduces Figure 2.1: metering extracts events
// in the kernel, filtering selects and stores them, and analysis
// extracts information from the collected data — three separable
// stages exercised end to end.
func TestPipelineStages(t *testing.T) {
	s, ctl, _ := newTestSystem(t)
	ctl.Exec("filter f1 blue")
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo green ponger")
	ctl.Exec("addprocess foo red pinger green")
	ctl.Exec("setflags foo all")
	ctl.Exec("startjob foo")
	waitFor(t, "job completion", jobDone(ctl, "foo"))

	// Stage 2 output: the filter's log on blue.
	waitFor(t, "trace to fill", func() bool {
		evs, err := s.ReadTrace("blue", "f1")
		if err != nil {
			return false
		}
		term := 0
		for _, e := range evs {
			if e.Type == meter.EvTermProc {
				term++
			}
		}
		return term >= 2
	})
	events, err := s.ReadTrace("blue", "f1")
	if err != nil {
		t.Fatal(err)
	}

	// Stage 3: every analysis produces sensible results.
	st := analysis.Comm(events)
	if st.Sends < 2 || st.Recvs < 2 {
		t.Fatalf("comm stats = %+v", st)
	}
	conns := analysis.Connections(events)
	if len(conns) != 1 {
		t.Fatalf("connections = %+v", conns)
	}
	matches := analysis.MatchMessages(events, s.MatchOptions())
	if len(matches) < 2 {
		t.Fatalf("matches = %+v", matches)
	}
	order, err := analysis.HappenedBefore(events, matches)
	if err != nil {
		t.Fatal(err)
	}
	if frac := order.OrderedFraction(); frac < 0.5 {
		t.Fatalf("ordered fraction = %v", frac)
	}
	rec := analysis.RecoverRecipients(events)
	if len(rec) < 2 {
		t.Fatalf("recovered recipients = %v", rec)
	}
	g := analysis.Structure(events, s.MatchOptions())
	if len(g.Procs) != 2 || len(g.Edges) < 2 {
		t.Fatalf("structure = %+v", g)
	}

	// The live operators attached to the filter agree with the offline
	// analysis of the filter's own log — the streaming counterpart of
	// stage 3, computed as the records flowed through. Poll until the
	// asynchronous log sink catches up with the taps.
	blue, err := s.Machine("blue")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live/offline convergence", func() bool {
		evs, rerr := s.ReadTrace("blue", "f1")
		if rerr != nil {
			return false
		}
		sec := blue.Obs().Snapshot().Section(live.SectionComm)
		if sec == nil {
			return false
		}
		lc, derr := live.DecodeComm(sec.Data)
		if derr != nil {
			t.Fatalf("live comm: %v", derr)
		}
		off := analysis.Comm(evs)
		return lc.Events == int64(off.Events) && lc.Sends == int64(off.Sends) &&
			lc.Recvs == int64(off.Recvs) && lc.BytesSent == off.BytesSent &&
			lc.BytesRecvd == off.BytesRecvd
	})
	sec := blue.Obs().Snapshot().Section(live.SectionPar)
	if sec == nil {
		t.Fatal("no live.par section on blue")
	}
	lp, err := live.DecodePar(sec.Data)
	if err != nil {
		t.Fatal(err)
	}
	events, err = s.ReadTrace("blue", "f1")
	if err != nil {
		t.Fatal(err)
	}
	curve, off := lp.Curve(), analysis.MeasureParallelism(events)
	if curve.Processes != off.Processes || curve.TotalCPUMillis != off.TotalCPUMillis ||
		curve.MakespanMillis != off.MakespanMillis {
		t.Fatalf("live curve %+v, offline %+v", curve, off)
	}
}

// TestTopology reproduces Figure 3.1: during a metering session the
// live structure is metered processes with hidden meter connections,
// a filter process receiving them, meterdaemons on each machine, and
// the control process.
func TestTopology(t *testing.T) {
	s, ctl, _ := newTestSystem(t)
	// Daemons listen on every machine.
	for _, mn := range []string{"red", "green", "blue", "yellow"} {
		m, _ := s.Machine(mn)
		if !m.PortBound(kernel.SockStream, daemon.Port) {
			t.Fatalf("no meterdaemon listening on %s", mn)
		}
	}
	ctl.Exec("filter f1 blue")
	blue, _ := s.Machine("blue")
	fpid := ctl.Filters()[0].PID
	if _, err := blue.Proc(fpid); err != nil {
		t.Fatal("filter process not running on blue")
	}
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo green ponger")
	green, _ := s.Machine("green")
	procPID := ctl.Jobs()[0].Procs[0].PID
	proc, err := green.Proc(procPID)
	if err != nil {
		t.Fatal(err)
	}
	// The meter connection exists and is invisible to the process.
	msid := proc.MeterSocketID()
	if msid == 0 {
		t.Fatal("metered process has no meter socket")
	}
	if proc.HasSocketFD(msid) {
		t.Fatal("meter socket visible in descriptor table")
	}
	// Kill the suspended process via its daemon so shutdown is clean.
	ctl.Exec("stopjob foo")
	ctl.Exec("removejob foo")
}

// TestSessionStages walks the Figures 4.3–4.6 progression: filter
// creation, process A, process B, then communication under metering.
func TestSessionStages(t *testing.T) {
	s, ctl, _ := newTestSystem(t)

	// Figure 4.3: filter created on blue.
	ctl.Exec("filter f1 blue")
	blue, _ := s.Machine("blue")
	waitFor(t, "filter port", func() bool {
		return blue.PortBound(kernel.SockStream, ctl.Filters()[0].Port)
	})

	// Figure 4.4: process A created (suspended) on red.
	ctl.Exec("newjob foo")
	ctl.Exec("addprocess foo red pinger green")
	if st := ctl.Jobs()[0].Procs[0].State; st != controller.StateNew {
		t.Fatalf("A state = %v, want new", st)
	}

	// Figure 4.5: process B added on green.
	ctl.Exec("addprocess foo green ponger")
	if n := len(ctl.Jobs()[0].Procs); n != 2 {
		t.Fatalf("%d processes", n)
	}

	// Figure 4.6: metering set, processes run, meter messages flow to
	// the filter.
	ctl.Exec("setflags foo send receive accept connect")
	ctl.Exec("startjob foo")
	waitFor(t, "completion", jobDone(ctl, "foo"))
	waitFor(t, "trace", func() bool {
		evs, err := s.ReadTrace("blue", "f1")
		return err == nil && len(evs) >= 6
	})
	events, _ := s.ReadTrace("blue", "f1")
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Event)
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"CONNECT", "ACCEPT", "SEND", "RECEIVE"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace lacks %s: %s", want, joined)
		}
	}
}

// TestFilterPlacement reproduces the section 3.4 flexibility claims: a
// filter may run on a machine disjoint from the computation, and one
// filter may collect data from several computations.
func TestFilterPlacement(t *testing.T) {
	s, ctl, _ := newTestSystem(t)
	// blue runs only the filter; the computation is on red and green.
	ctl.Exec("filter shared blue")
	ctl.Exec("newjob one")
	ctl.Exec("newjob two")
	for _, job := range []string{"one", "two"} {
		ctl.Exec("setflags " + job + " send receive")
	}
	ctl.Exec("addprocess one green ponger")
	ctl.Exec("addprocess one red pinger green")
	ctl.Exec("startjob one")
	waitFor(t, "job one", jobDone(ctl, "one"))
	// A second computation into the same filter: ponger runs on red
	// this time.
	ctl.Exec("addprocess two red ponger")
	ctl.Exec("addprocess two yellow pinger red")
	ctl.Exec("startjob two")
	waitFor(t, "job two", jobDone(ctl, "two"))

	waitFor(t, "combined trace", func() bool {
		evs, err := s.ReadTrace("blue", "shared")
		if err != nil {
			return false
		}
		machines := make(map[int]bool)
		for _, e := range evs {
			machines[e.Machine] = true
		}
		return len(machines) >= 3
	})
}

func TestMultiNetworkMeteringEndToEnd(t *testing.T) {
	// A multi-homed gateway carries the filter; the computation runs
	// on a machine that reaches the gateway only through netA while
	// the controller sits on netB. Socket-name resolution must build
	// per-network addresses (the section 3.5.4 rule) through the whole
	// stack.
	s, err := NewSystem(Config{
		Machines: []string{"alpha", "gw", "beta"},
		Networks: map[string][]string{
			"netA": {"alpha", "gw"},
			"netB": {"gw", "beta"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	registerPingPong(t, s)
	// The gateway has two host ids.
	gw, _ := s.Machine("gw")
	alpha, _ := s.Machine("alpha")
	beta, _ := s.Machine("beta")
	if gw.PrimaryHostID() == alpha.PrimaryHostID() || alpha.PrimaryHostID() == beta.PrimaryHostID() {
		t.Fatal("host ids not distinct")
	}

	out := &testOut{}
	ctl, err := s.NewController("beta", out)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter f1 gw")
	ctl.Exec("newjob x")
	ctl.Exec("setflags x all")
	ctl.Exec("addprocess x gw ponger")
	ctl.Exec("addprocess x alpha pinger gw")
	ctl.Exec("startjob x")
	waitFor(t, "multi-network job", jobDone(ctl, "x"))
	events, err := s.WaitTrace("gw", "f1", 10*time.Second, TermCount(2))
	if err != nil {
		t.Fatal(err)
	}
	st := analysis.Comm(events)
	if st.Sends < 2 || st.Recvs < 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The analysis host map handles the gateway's primary address.
	if len(analysis.Connections(events)) != 1 {
		t.Fatalf("connections = %+v", analysis.Connections(events))
	}
}

func TestClockSkewDefault(t *testing.T) {
	s, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	red, _ := s.Machine("red")
	green, _ := s.Machine("green")
	if red.Clock().Now() == green.Clock().Now() {
		t.Fatal("default clocks perfectly synchronized; skew expected")
	}
	s2, err := NewSystem(Config{Machines: []string{"a", "b"}, PerfectClocks: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	a, _ := s2.Machine("a")
	b, _ := s2.Machine("b")
	if a.Clock().Now() != b.Clock().Now() {
		t.Fatal("PerfectClocks still skewed")
	}
}

func TestRunScript(t *testing.T) {
	_, ctl, out := newTestSystem(t)
	err := RunScript(ctl, []string{"filter f1 blue", "newjob foo", "die"})
	if err != nil {
		t.Fatal(err)
	}
	if !ctl.Closed() {
		t.Fatal("script die did not close controller")
	}
	if !strings.Contains(out.String(), "filter 'f1' ... created") {
		t.Fatalf("output = %q", out.String())
	}
	// A script without die reports an error.
	s2, err := NewSystem(Config{Machines: []string{"m1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	ctl2, err := s2.NewController("m1", &testOut{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunScript(ctl2, []string{"help"}); err == nil {
		t.Fatal("script without die succeeded")
	}
}

func TestNewSystemBadConfig(t *testing.T) {
	// A network naming an unknown machine.
	if _, err := NewSystem(Config{
		Machines: []string{"a"},
		Networks: map[string][]string{"net": {"a", "ghost"}},
	}); err == nil {
		t.Fatal("unknown machine in network accepted")
	}
	// Duplicate machine names.
	if _, err := NewSystem(Config{Machines: []string{"a", "a"}}); err == nil {
		t.Fatal("duplicate machine accepted")
	}
}

func TestReadTraceErrors(t *testing.T) {
	s, err := NewSystem(Config{Machines: []string{"m"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if _, err := s.ReadTrace("ghost", "f"); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := s.ReadTrace("m", "nofilter"); err == nil {
		t.Fatal("missing log accepted")
	}
}

func TestRegisterWorkloadUnknownMachine(t *testing.T) {
	s, err := NewSystem(Config{Machines: []string{"m"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if err := s.RegisterWorkload("x", func(*kernel.Process) int { return 0 }, "ghost"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestWaitJobUnknownTimesOut(t *testing.T) {
	_, ctl, _ := newTestSystem(t)
	if err := WaitJob(ctl, "nonexistent", 50*time.Millisecond); err == nil {
		t.Fatal("WaitJob for unknown job succeeded")
	}
}

func TestWaitTraceTimeout(t *testing.T) {
	s, _, _ := newTestSystem(t)
	if _, err := s.WaitTrace("blue", "nofilter", 50*time.Millisecond, TermCount(1)); err == nil {
		t.Fatal("WaitTrace for missing log succeeded")
	}
}

func TestTermCountPredicate(t *testing.T) {
	pred := TermCount(2)
	var evs []trace.Event
	if pred(evs) {
		t.Fatal("empty trace satisfied TermCount(2)")
	}
	for i := 0; i < 2; i++ {
		evs = append(evs, trace.Event{Type: meter.EvTermProc})
	}
	if !pred(evs) {
		t.Fatal("two termprocs did not satisfy TermCount(2)")
	}
}

func TestRegisterWorkloadSelectedMachines(t *testing.T) {
	s, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if err := s.RegisterWorkload("only-red", func(*kernel.Process) int { return 0 }, "red"); err != nil {
		t.Fatal(err)
	}
	red, _ := s.Machine("red")
	green, _ := s.Machine("green")
	if !red.FS().Exists("/bin/only-red") {
		t.Fatal("missing on red")
	}
	if green.FS().Exists("/bin/only-red") {
		t.Fatal("present on green")
	}
}
