package core

import (
	"fmt"

	"dpm/internal/daemon"
	"dpm/internal/kernel"
)

// This file is the system-level fault-injection surface: partitions,
// machine crashes and restarts, and the fault statistics the kernels
// accumulate. The paper's system assumed a well-behaved fabric; these
// entry points let tests and experiments take that assumption away.

// Partition cuts connectivity between two machines on every network
// they share: datagrams between them vanish and new stream connections
// fail, in both directions, until Heal.
func (s *System) Partition(a, b string) error {
	ma, err := s.Cluster.Machine(a)
	if err != nil {
		return err
	}
	mb, err := s.Cluster.Machine(b)
	if err != nil {
		return err
	}
	shared := 0
	for _, n := range s.Cluster.Networks() {
		ha, oka := ma.HostIDOn(n.Name())
		hb, okb := mb.HostIDOn(n.Name())
		if oka && okb {
			n.Partition(ha, hb)
			shared++
		}
	}
	if shared == 0 {
		return fmt.Errorf("core: %s and %s share no network", a, b)
	}
	return nil
}

// Heal removes every partition and downed link on every network.
// Machines that were crashed stay down; RestartMachine revives those.
func (s *System) Heal() {
	for _, n := range s.Cluster.Networks() {
		n.Heal()
	}
}

// CrashMachine fail-stops a machine: every process on it is killed,
// meter buffers flush where the filter is still reachable, and the
// machine detaches from its networks. The machine's meterdaemon dies
// with it.
func (s *System) CrashMachine(name string) error {
	return s.Cluster.CrashMachine(name)
}

// RestartMachine brings a crashed machine back: it reattaches to its
// networks with its old addresses and gets a fresh meterdaemon, so the
// control plane can reach it again. Processes killed by the crash stay
// dead — recovering the computation is the controller's (or the
// user's) business.
func (s *System) RestartMachine(name string) error {
	m, err := s.Cluster.RestartMachine(name)
	if err != nil {
		return err
	}
	d, err := daemon.Install(s.Cluster, m)
	if err != nil {
		return err
	}
	s.Daemons[name] = d
	return nil
}

// FaultStats returns the cluster's fault counters.
func (s *System) FaultStats() kernel.FaultStats {
	return s.Cluster.FaultStats()
}
