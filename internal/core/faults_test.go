package core

import (
	"testing"
)

// TestSystemFaultSurface exercises the system-level fault entry points
// directly: partition and heal at the network layer, crash and restart
// with daemon reinstallation, and the fault counters.
func TestSystemFaultSurface(t *testing.T) {
	s, _, _ := newTestSystem(t)

	if err := s.Partition("red", "absent"); err == nil {
		t.Fatal("partition naming an unknown machine succeeded")
	}
	if err := s.Partition("red", "green"); err != nil {
		t.Fatal(err)
	}
	n, err := s.Cluster.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	red, err := s.Machine("red")
	if err != nil {
		t.Fatal(err)
	}
	green, err := s.Machine("green")
	if err != nil {
		t.Fatal(err)
	}
	if n.Reachable(red.PrimaryHostID(), green.PrimaryHostID()) {
		t.Fatal("red and green still reachable after Partition")
	}
	s.Heal()
	if !n.Reachable(red.PrimaryHostID(), green.PrimaryHostID()) {
		t.Fatal("red and green not reachable after Heal")
	}

	oldDaemon := s.Daemons["red"]
	if err := s.CrashMachine("red"); err != nil {
		t.Fatal(err)
	}
	if !red.Down() {
		t.Fatal("red not down after crash")
	}
	if err := s.RestartMachine("red"); err != nil {
		t.Fatal(err)
	}
	if red.Down() {
		t.Fatal("red still down after restart")
	}
	// The restart installed a fresh meterdaemon.
	d := s.Daemons["red"]
	if d == nil || d == oldDaemon {
		t.Fatalf("daemon not replaced on restart (old %v, new %v)", oldDaemon, d)
	}
	if _, err := red.Proc(d.PID()); err != nil {
		t.Fatalf("new daemon pid %d not alive: %v", d.PID(), err)
	}

	stats := s.FaultStats()
	if stats.Crashes != 1 || stats.Restarts != 1 {
		t.Fatalf("FaultStats = %+v, want 1 crash and 1 restart", stats)
	}
}
