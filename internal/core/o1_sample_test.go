package core

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"dpm/internal/kernel"
)

// TestO1SampleStatsReport is the generator for the EXPERIMENTS.md O1
// sample: a three-machine run (filter on one machine, senders on the
// other two) followed by the controller's aggregated stats report.
// Set DPM_O1_SAMPLE=1 to print the report; otherwise the test only
// asserts the report is produced.
func TestO1SampleStatsReport(t *testing.T) {
	s, err := NewSystem(Config{Machines: []string{"red", "green", "blue"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	s.Cluster.RegisterProgram("chatter", func(p *kernel.Process) int {
		f1, f2, err := p.SocketPair()
		if err != nil {
			return 1
		}
		for i := 0; i < 50; i++ {
			if _, err := p.Send(f1, []byte("ping")); err != nil {
				return 1
			}
			if _, err := p.Recv(f2, 16); err != nil {
				return 1
			}
			p.Compute(100 * time.Microsecond)
		}
		return 0
	})
	for _, mn := range []string{"green", "blue"} {
		m, err := s.Machine(mn)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.FS().CreateExecutable("/bin/chatter", s.UID, "chatter"); err != nil {
			t.Fatal(err)
		}
	}
	out := &testOut{}
	ctl, err := s.NewController("red", out)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunScript(ctl, []string{
		"filter f red",
		"newjob demo",
		"setflags demo send receive termproc",
		"addprocess demo green chatter",
		"addprocess demo blue chatter",
		"startjob demo",
	}); err == nil {
		t.Fatal("script hit die unexpectedly")
	}
	if err := WaitJob(ctl, "demo", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitTrace("red", "f", 10*time.Second, TermCount(2)); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("stats")
	report := out.String()
	if idx := strings.Index(report, "stats:"); idx >= 0 {
		report = report[idx:]
	} else {
		t.Fatalf("no stats report in output:\n%s", report)
	}
	if os.Getenv("DPM_O1_SAMPLE") != "" {
		fmt.Println(report)
	}
}
