package core

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

const o2Port = 7100

// TestO2SampleLiveReport is the generator for the EXPERIMENTS.md O2
// sample: a three-machine run with cross-machine stream traffic
// (echo server on green, client on blue, filter on red), the
// controller's stats report with its live-analysis sections, and the
// equivalence assert — the live communication and parallelism lines
// must carry exactly the numbers the offline analyzer computes from
// the fetched trace. Set DPM_O2_SAMPLE=1 to print the report.
func TestO2SampleLiveReport(t *testing.T) {
	const rounds = 25
	s, err := NewSystem(Config{Machines: []string{"red", "green", "blue"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if err := s.RegisterWorkload("echoserver", func(p *kernel.Process) int {
		lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			return 1
		}
		if err := p.BindPort(lfd, o2Port); err != nil {
			return 1
		}
		if err := p.Listen(lfd, 4); err != nil {
			return 1
		}
		cfd, _, err := p.Accept(lfd)
		if err != nil {
			return 1
		}
		for i := 0; i < rounds; i++ {
			data, err := p.Recv(cfd, 256)
			if err != nil {
				return 1
			}
			p.Compute(500 * time.Microsecond)
			if _, err := p.Send(cfd, append([]byte("re: "), data...)); err != nil {
				return 1
			}
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterWorkload("echoclient", func(p *kernel.Process) int {
		host, _, err := p.Machine().Cluster().ResolveFrom(p.Machine(), "green")
		if err != nil {
			return 1
		}
		name := meter.InetName(host, o2Port)
		var fd int
		for i := 0; ; i++ {
			fd, err = p.Socket(meter.AFInet, kernel.SockStream)
			if err != nil {
				return 1
			}
			if err = p.Connect(fd, name); err == nil {
				break
			}
			_ = p.Close(fd)
			if i > 5000 {
				return 1
			}
			time.Sleep(time.Millisecond)
		}
		for i := 0; i < rounds; i++ {
			if _, err := p.Send(fd, []byte("ping-0123456789")); err != nil {
				return 1
			}
			if _, err := p.Recv(fd, 256); err != nil {
				return 1
			}
			p.Compute(300 * time.Microsecond)
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	out := &testOut{}
	ctl, err := s.NewController("red", out)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunScript(ctl, []string{
		"filter f red",
		"newjob echo",
		"setflags echo socket connect accept send receive termproc",
		"addprocess echo green echoserver",
		"addprocess echo blue echoclient",
		"startjob echo",
	}); err == nil {
		t.Fatal("script hit die unexpectedly")
	}
	if err := WaitJob(ctl, "echo", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	events, err := s.WaitTrace("red", "f", 10*time.Second, TermCount(2))
	if err != nil {
		t.Fatal(err)
	}
	ctl.Exec("stats")
	report := out.String()
	if idx := strings.Index(report, "stats:"); idx >= 0 {
		report = report[idx:]
	} else {
		t.Fatalf("no stats report in output:\n%s", report)
	}

	// The live sections in the cluster-wide report must agree, number
	// for number, with the offline analysis of the fetched trace.
	comm := analysis.Comm(events)
	wantComm := fmt.Sprintf("live communication: %d events, %d procs, sends %d (%d B), recvs %d (%d B)",
		comm.Events, len(comm.PerProcess), comm.Sends, comm.BytesSent, comm.Recvs, comm.BytesRecvd)
	if !strings.Contains(report, wantComm) {
		t.Fatalf("report missing %q:\n%s", wantComm, report)
	}
	par := analysis.MeasureParallelism(events)
	wantPar := fmt.Sprintf("live parallelism: %d procs (", par.Processes)
	wantCurve := fmt.Sprintf("cpu %d ms over %d ms, speedup %.2f",
		par.TotalCPUMillis, par.MakespanMillis, par.Speedup)
	if !strings.Contains(report, wantPar) || !strings.Contains(report, wantCurve) {
		t.Fatalf("report missing %q / %q:\n%s", wantPar, wantCurve, report)
	}
	if !strings.Contains(report, "live matching: 1 conns, stream ") ||
		!strings.Contains(report, "aged out 0, pending 0") {
		t.Fatalf("report missing matcher line:\n%s", report)
	}
	if os.Getenv("DPM_O2_SAMPLE") != "" {
		fmt.Println(report)
	}
}
