package core_test

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"dpm/internal/filter"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/netsim"
	"dpm/internal/workloads"
)

// TestScaleSoak is the cluster-density soak: it boots DPM_SCALE_MACHINES
// simulated machines (default 1000) — every one metered — drives
// sustained cross-machine datagram traffic through the delivery fabric
// and the meter streams through real filter engines, and pins the two
// resource ceilings the event-driven scheduler and batched fabric
// exist to provide:
//
//   - goroutines sub-linear in machine count (tasks and detached
//     processes hold none; only the scheduler pool, the fabric, and
//     the runtime remain), and
//   - idle heap at most 64 KiB per machine.
//
// It lives in package core_test so it can borrow the workloads traffic
// shapes without an import cycle. CI runs it race-off under a hard
// timeout; see .github/workflows/ci.yml.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("scale soak")
	}
	machines := 1000
	if v := os.Getenv("DPM_SCALE_MACHINES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 8 {
			t.Fatalf("bad DPM_SCALE_MACHINES %q", v)
		}
		machines = n
	}
	const (
		filterMachines = 4
		sinkPort       = 7100
		uid            = 100
	)
	leaves := machines - filterMachines

	var baseMem runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&baseMem)
	baseGoroutines := runtime.NumGoroutine()

	bootStart := time.Now()
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0", netsim.WithLatency(2*time.Millisecond, time.Millisecond))
	defer c.Shutdown()

	// Filter tier: each filter machine runs one event-driven collector
	// task that accepts meter-stream connections and runs every byte
	// through a compiled filter engine.
	var recordsFiltered atomic.Int64
	filterNames := make([]meter.Name, filterMachines)
	colReady := make([]*atomic.Bool, filterMachines)
	for f := 0; f < filterMachines; f++ {
		fm, err := c.AddMachine(fmt.Sprintf("filter-%d", f), nil, "ether0")
		if err != nil {
			t.Fatal(err)
		}
		eng, err := filter.NewEngine([]byte(filter.StandardDescriptions), []byte("pid>=0\n"))
		if err != nil {
			t.Fatal(err)
		}
		colReady[f] = new(atomic.Bool)
		filterNames[f] = meter.InetName(fm.PrimaryHostID(), 7200)
		if _, err := fm.SpawnTask(0, "collector", newCollectorTask(eng, 7200, colReady[f], &recordsFiltered)); err != nil {
			t.Fatal(err)
		}
	}
	// The listener is created by the collector's own first step (Park
	// watches the task's own descriptors); wait for every tier member
	// to be accepting before the leaves dial in.
	for f, ready := range colReady {
		deadline := time.Now().Add(5 * time.Second)
		for !ready.Load() {
			if time.Now().After(deadline) {
				t.Fatalf("collector %d never started listening", f)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Leaf tier: every leaf machine runs a metered traffic source and a
	// sink, both as tasks. Sources send to the next leaf's sink — a
	// ring of cross-machine datagrams through the fabric — and their
	// syscalls are metered to one of the filter machines.
	stats := &workloads.TrafficStats{}
	perLeaf := 5000.0 / float64(leaves) // ~5k datagrams/s offered, whatever the scale
	if perLeaf < 1 {
		perLeaf = 1
	}
	leafMachines := make([]*kernel.Machine, leaves)
	for i := 0; i < leaves; i++ {
		m, err := c.AddMachine(fmt.Sprintf("leaf-%04d", i), nil, "ether0")
		if err != nil {
			t.Fatal(err)
		}
		m.AddAccount(uid, "user")
		leafMachines[i] = m
	}
	shape := workloads.Steady{PerSec: perLeaf}
	for i, m := range leafMachines {
		if _, err := m.SpawnTask(uid, "sink", workloads.NewSinkTask(sinkPort, stats)); err != nil {
			t.Fatal(err)
		}
		dest := meter.InetName(leafMachines[(i+1)%leaves].PrimaryHostID(), sinkPort)
		gen, err := m.SpawnTask(uid, "gen", workloads.NewTrafficTask(shape, dest, 64, stats))
		if err != nil {
			t.Fatal(err)
		}
		// Meter the source's send/receive traffic to a filter machine,
		// exactly as setmeter(2) wires a monitored process. Immediate
		// delivery, not the 8-message kernel buffer: at 10k machines a
		// leaf offers well under one datagram per second, and a buffered
		// meter stream would not flush once inside the soak window.
		root, err := m.SpawnDetached(0, "root")
		if err != nil {
			t.Fatal(err)
		}
		msfd, err := root.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			t.Fatal(err)
		}
		if err := root.Connect(msfd, filterNames[i%filterMachines]); err != nil {
			t.Fatal(err)
		}
		if err := root.Setmeter(gen.PID(), int(meter.MSend|meter.MReceive|meter.MImmediate), msfd); err != nil {
			t.Fatal(err)
		}
		if err := root.Close(msfd); err != nil {
			t.Fatal(err)
		}
	}
	bootMS := time.Since(bootStart).Milliseconds()

	// Idle ceiling: everything is booted and parked; the heap bill per
	// machine must fit the 64 KiB budget.
	runtime.GC()
	var idleMem runtime.MemStats
	runtime.ReadMemStats(&idleMem)
	idlePerMachine := int64(idleMem.HeapAlloc-baseMem.HeapAlloc) / int64(machines)
	if idlePerMachine > 64*1024 {
		t.Fatalf("idle heap %d bytes/machine, budget is 64 KiB", idlePerMachine)
	}

	// Goroutine ceiling: scheduler pool + fabric + runtime, regardless
	// of machine count.
	grew := runtime.NumGoroutine() - baseGoroutines
	if grew > 128 || grew > machines/4 {
		t.Fatalf("%d machines grew goroutines by %d: not sub-linear", machines, grew)
	}

	// Soak: sustained traffic through fabric and filters.
	soak := 3 * time.Second
	deadline := time.Now().Add(soak)
	for time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
	}
	received := stats.Received.Load()
	sent := stats.Sent.Load()
	filtered := recordsFiltered.Load()
	if received < int64(leaves) {
		t.Fatalf("soak moved %d datagrams end to end (sent %d), want >= %d", received, sent, leaves)
	}
	if filtered < int64(leaves) {
		t.Fatalf("filters processed %d meter records, want >= %d", filtered, leaves)
	}

	runtime.GC()
	var soakMem runtime.MemStats
	runtime.ReadMemStats(&soakMem)
	soakPerMachine := int64(soakMem.HeapAlloc-baseMem.HeapAlloc) / int64(machines)

	t.Logf("machines=%d boot_ms=%d idle_heap_per_machine=%d soak_heap_per_machine=%d goroutines_grew=%d sent=%d received=%d filtered=%d throughput=%.0f/s",
		machines, bootMS, idlePerMachine, soakPerMachine, grew, sent, received, filtered,
		float64(received)/soak.Seconds())
}

// newCollectorTask builds the filter machine's event-driven ingest: a
// task that listens for meter-stream connections, accepts every one,
// and runs the bytes through a filter engine, parking on all of its
// sockets between arrivals. The listener is created inside the task's
// first step because Park resolves descriptors through the task's own
// process. One goroutine-free process stands where the seed spent a
// drainer goroutine per connection.
func newCollectorTask(eng *filter.Engine, port uint16, ready *atomic.Bool, processed *atomic.Int64) kernel.TaskFunc {
	var (
		lfd     int
		init    bool
		conns   []int
		carries map[int][]byte
		batch   filter.Batch
	)
	carries = make(map[int][]byte)
	return func(tk *kernel.Task) kernel.Poll {
		p := tk.Proc()
		if !init {
			var err error
			if lfd, err = p.Socket(meter.AFInet, kernel.SockStream); err != nil {
				return kernel.PollDone
			}
			if err := p.BindPort(lfd, port); err != nil {
				return kernel.PollDone
			}
			if err := p.Listen(lfd, 1024); err != nil {
				return kernel.PollDone
			}
			ready.Store(true)
			init = true
		}
		for {
			conn, _, err := p.TryAccept(lfd)
			if err != nil {
				if errors.Is(err, kernel.ErrWouldBlock) {
					break
				}
				return kernel.PollDone
			}
			conns = append(conns, conn)
		}
		for _, fd := range conns {
			for {
				data, _, err := p.TryRecvFrom(fd, 65536)
				if err != nil {
					break // would-block, or the peer machine went away
				}
				buf := data
				if carry := carries[fd]; len(carry) > 0 {
					buf = append(carry, data...)
				}
				before := eng.Received
				batch.Reset()
				rest, err := eng.ProcessBatch(buf, &batch)
				if err != nil {
					carries[fd] = nil
					break
				}
				processed.Add(int64(eng.Received - before))
				carries[fd] = append(carries[fd][:0], rest...)
			}
		}
		return tk.Park(append([]int{lfd}, conns...)...)
	}
}
