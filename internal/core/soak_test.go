package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dpm/internal/analysis"
	"dpm/internal/kernel"
)

// TestSoakConcurrentJobs drives several metered computations at once
// while a second controller pokes the daemons, then checks that every
// trace parses, every job completes, and shutdown is clean — the
// multi-computation usage the paper allows ("Many computations could
// be executing simultaneously, having traces collected by different
// filters", section 4.3).
func TestSoakConcurrentJobs(t *testing.T) {
	s, ctl, _ := newTestSystem(t)

	const jobs = 4
	for j := 0; j < jobs; j++ {
		fname := fmt.Sprintf("f%d", j)
		jname := fmt.Sprintf("job%d", j)
		ctl.Exec(fmt.Sprintf("filter %s blue", fname))
		ctl.Exec(fmt.Sprintf("newjob %s %s", jname, fname))
		ctl.Exec(fmt.Sprintf("setflags %s all", jname))
	}
	// Each job is a ping-pong pair on its own port... the ponger binds
	// a fixed port, so run the jobs serially but keep all their
	// filters and traces live simultaneously.
	for j := 0; j < jobs; j++ {
		jname := fmt.Sprintf("job%d", j)
		ctl.Exec(fmt.Sprintf("addprocess %s green ponger 2", jname))
		ctl.Exec(fmt.Sprintf("addprocess %s red pinger green 2", jname))
		ctl.Exec("startjob " + jname)
		waitFor(t, jname, jobDone(ctl, jname))
		ctl.Exec("removejob " + jname)
	}

	// Every filter produced a parsable trace with a full conversation.
	for j := 0; j < jobs; j++ {
		fname := fmt.Sprintf("f%d", j)
		events, err := s.WaitTrace("blue", fname, 10*time.Second, TermCount(2))
		if err != nil {
			t.Fatalf("%s: %v", fname, err)
		}
		kinds := make(map[string]bool)
		for _, e := range events {
			kinds[e.Event] = true
		}
		for _, want := range []string{"CONNECT", "ACCEPT", "SEND", "RECEIVE", "TERMPROC"} {
			if !kinds[want] {
				t.Fatalf("%s trace lacks %s", fname, want)
			}
		}
	}
}

// TestSoakRandomSignals stops and starts a long-running job at random,
// interleaved with other commands, and verifies the controller's state
// machine never wedges and the process ends exactly once.
func TestSoakRandomSignals(t *testing.T) {
	s, ctl, out := newTestSystem(t)
	s.Cluster.RegisterProgram("spin", func(p *kernel.Process) int {
		for {
			p.Compute(time.Millisecond)
		}
	})
	red, _ := s.Machine("red")
	if err := red.FS().CreateExecutable("/bin/spin", s.UID, "spin"); err != nil {
		t.Fatal(err)
	}
	ctl.Exec("filter f blue")
	ctl.Exec("newjob soak")
	ctl.Exec("setflags soak termproc")
	ctl.Exec("addprocess soak red spin")
	ctl.Exec("startjob soak")

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		switch rng.Intn(4) {
		case 0:
			ctl.Exec("stopjob soak")
		case 1:
			ctl.Exec("startjob soak")
		case 2:
			ctl.Exec("jobs soak")
		case 3:
			ctl.Exec("setflags soak send")
		}
	}
	// Whatever state the random walk left, this sequence must always
	// terminate the job.
	ctl.Exec("stopjob soak")
	ctl.Exec("removejob soak")
	waitFor(t, "job gone", func() bool { return len(ctl.Jobs()) == 0 })
	red.Clock() // touch: machine still reachable
	if strings.Contains(out.String(), "panic") {
		t.Fatalf("output shows a panic:\n%s", out.String())
	}
}

// TestSoakManyProcessesOneJob runs a job with many processes across
// all machines through one shared filter.
func TestSoakManyProcessesOneJob(t *testing.T) {
	s, ctl, _ := newTestSystem(t)
	s.Cluster.RegisterProgram("chatter", func(p *kernel.Process) int {
		f1, f2, err := p.SocketPair()
		if err != nil {
			return 1
		}
		for i := 0; i < 10; i++ {
			if _, err := p.Send(f1, []byte("x")); err != nil {
				return 1
			}
			if _, err := p.Recv(f2, 10); err != nil {
				return 1
			}
		}
		return 0
	})
	for _, mn := range []string{"red", "green", "blue", "yellow"} {
		m, _ := s.Machine(mn)
		if err := m.FS().CreateExecutable("/bin/chatter", s.UID, "chatter"); err != nil {
			t.Fatal(err)
		}
	}
	ctl.Exec("filter f blue")
	ctl.Exec("newjob big")
	ctl.Exec("setflags big send receive termproc")
	const perMachine = 3
	for _, mn := range []string{"red", "green", "blue", "yellow"} {
		for i := 0; i < perMachine; i++ {
			ctl.Exec("addprocess big " + mn + " chatter")
		}
	}
	if got := len(ctl.Jobs()[0].Procs); got != 4*perMachine {
		t.Fatalf("%d processes created", got)
	}
	ctl.Exec("startjob big")
	waitFor(t, "big job", jobDone(ctl, "big"))
	events, err := s.WaitTrace("blue", "f", 10*time.Second, TermCount(4*perMachine))
	if err != nil {
		t.Fatal(err)
	}
	// 12 processes × (10 sends + 10 recvs) + 12 termprocs.
	sends := 0
	for _, e := range events {
		if e.Event == "SEND" {
			sends++
		}
	}
	if sends != 4*perMachine*10 {
		t.Fatalf("sends = %d, want %d", sends, 4*perMachine*10)
	}
	// The trace must be internally consistent for the analyses.
	if _, err := analysis.Report(events, s.MatchOptions()); err != nil {
		t.Fatal(err)
	}
}
