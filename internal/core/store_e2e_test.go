package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dpm/internal/filter"
	"dpm/internal/fsys"
	"dpm/internal/meter"
	"dpm/internal/query"
	"dpm/internal/store"
	"dpm/internal/trace"
)

// TestStoreDiscardEndToEnd drives a discard-prefix template through
// the whole stack: the kernel meters a ping-pong job, the filter's
// selection keeps only SEND records with their pid field dropped
// ('#'), the surviving records land in the filter's event store, and
// the controller's query command reads them back out.
func TestStoreDiscardEndToEnd(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	registerPingPong(t, sys)
	var out bytes.Buffer
	ctl, err := sys.NewController("yellow", &out)
	if err != nil {
		t.Fatal(err)
	}
	yellow, err := sys.Machine("yellow")
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 3.4 template: keep SEND records, discard their pid.
	if err := yellow.FS().Create("/usr/tmpl", sys.UID, fsys.PrivateMode,
		[]byte("type=1, pid=#*\n")); err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{
		"filter f1 yellow filter /etc/meter/descriptions /usr/tmpl",
		"newjob pp f1",
		"setflags pp send receive termproc",
		"addprocess pp green ponger",
		"addprocess pp red pinger green",
		"startjob pp",
	} {
		ctl.Exec(cmd)
	}
	if err := WaitJob(ctl, "pp", time.Minute); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}

	// The filter appends to its store in the same batch loop as the
	// flat log; wait for the stored records to show up.
	be := store.NewFsysBackend(yellow.FS(), sys.UID, filter.StorePath("f1"))
	matchAll, err := query.Compile("")
	if err != nil {
		t.Fatal(err)
	}
	var stored []trace.Event
	deadline := time.Now().Add(10 * time.Second)
	for {
		rd, err := store.OpenReader(be)
		if err == nil {
			if res, qerr := query.Run(rd, matchAll); qerr == nil && len(res.Events) > 0 {
				stored = res.Events
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no records reached the store\n%s", out.String())
		}
		time.Sleep(time.Millisecond)
	}
	// The selection ran before storage: only SENDs, no pid anywhere.
	for _, e := range stored {
		if e.Type != meter.EvSend {
			t.Fatalf("non-SEND record stored: %v", e.Event)
		}
		if _, ok := e.Fields["pid"]; ok {
			t.Fatalf("pid survived the '#' discard into the store: %v", e.Fields)
		}
	}

	// And the user-facing path: the controller's query command against
	// the live store.
	before := out.String()
	ctl.Exec("query f1 qdump")
	statsLine := strings.TrimPrefix(out.String(), before)
	if !strings.Contains(statsLine, "query 'f1': segments=") {
		t.Fatalf("no stats line: %s", statsLine)
	}
	data, err := yellow.FS().Read("/usr/qdump", sys.UID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ParseLog(data)
	if err != nil {
		t.Fatalf("query output does not parse: %v", err)
	}
	if len(got) != len(stored) {
		t.Fatalf("query returned %d events, store holds %d", len(got), len(stored))
	}
	for _, e := range got {
		if e.Type != meter.EvSend {
			t.Fatalf("query leaked a %v record", e.Event)
		}
		if _, ok := e.Fields["pid"]; ok {
			t.Fatalf("pid came back through query: %v", e.Fields)
		}
	}
}
