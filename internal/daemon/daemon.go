package daemon

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpm/internal/agg"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/obs"
	"dpm/internal/query"
	"dpm/internal/store"
)

// Port is the well-known port every meterdaemon listens on. "A
// meterdaemon spends most of its time listening for an IPC connection
// request from a controller process" (section 3.5.1).
const Port = 551

// ProgramName is the registry name of the meterdaemon program.
const ProgramName = "dpm-meterdaemon"

// StatsPath is where a meterdaemon exports its machine's metrics
// snapshot (JSON) when it shuts down — beside the filter logs in
// /usr/tmp, so a chaos soak's wreckage includes the numbers.
const StatsPath = "/usr/tmp/meterdaemon.stats.json"

// Install registers the daemon program with the cluster and starts a
// meterdaemon (as root) on the given machine, returning once it is
// listening. "There must be a meterdaemon on each machine that
// supports the measurement system."
func Install(c *kernel.Cluster, m *kernel.Machine) (*kernel.Process, error) {
	c.RegisterProgram(ProgramName, Main)
	p, err := m.Spawn(kernel.SpawnSpec{UID: 0, Name: "meterdaemon", Program: Main})
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for !m.PortBound(kernel.SockStream, Port) {
		if exited, status, _ := p.Exited(); exited {
			return nil, fmt.Errorf("daemon: meterdaemon on %s exited with status %d", m.Name(), status)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("daemon: meterdaemon on %s never started listening", m.Name())
		}
		time.Sleep(time.Millisecond)
	}
	return p, nil
}

// childInfo is the daemon's record of one process it created.
type childInfo struct {
	pid         int
	uid         int
	controlHost string
	controlPort uint16
	stdioPort   uint16 // the child's end of the I/O gateway
}

// exitNotePrefix marks kernel-injected child exit notes on the gateway
// socket (the simulation's SIGCHLD).
const exitNotePrefix = "X "

// Main is the meterdaemon program. It accepts controller connections
// and serves each on an auxiliary goroutine: legacy one-shot exchanges
// (one request per temporary connection, section 3.5.1) and persistent
// multiplexed sessions (frame.go) are distinguished by sniffing the
// first four bytes. It also forwards child standard output to the
// controllers and reports child terminations by connecting to the
// responsible controller's notification socket.
func Main(p *kernel.Process) int {
	d := &daemonState{
		p:            p,
		children:     make(map[int]*childInfo),
		byStdio:      make(map[uint16]*childInfo),
		creates:      make(map[string]*Reply),
		notifyFDs:    make(map[string]int),
		notifyFailed: p.Machine().Obs().Counter("daemon.notify_failed"),
	}
	lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		return 1
	}
	if err := p.BindPort(lfd, Port); err != nil {
		p.Printf("meterdaemon: %v\n", err)
		return 1
	}
	if err := p.Listen(lfd, 32); err != nil {
		return 1
	}
	gfd, err := p.Socket(meter.AFInet, kernel.SockDgram)
	if err != nil {
		return 1
	}
	if err := p.BindPort(gfd, 0); err != nil {
		return 1
	}
	gname, err := p.SocketName(gfd)
	if err != nil {
		return 1
	}
	_, d.gatewayPort = gname.Inet()
	d.gatewayName = gname
	d.gfd = gfd

	// End-of-run snapshot export: runs whether the Select loop returns
	// on kill or the process unwinds from a deeper syscall, and writes
	// through the machine FS directly (process syscalls are unusable
	// mid-unwind).
	defer p.Machine().ExportStats(StatsPath, 0)

	for {
		ready, err := p.Select([]int{lfd, gfd})
		if err != nil {
			return 0 // killed at shutdown
		}
		for _, fd := range ready {
			switch fd {
			case lfd:
				conn, _, err := p.Accept(lfd)
				if err != nil {
					return 0
				}
				// Each connection gets its own goroutine, so a slow
				// request (or a whole session) never blocks the accept
				// loop or the gateway.
				p.Go(func() { d.serveConn(conn) })
			case gfd:
				data, src, err := p.RecvFrom(gfd, 8192)
				if err != nil {
					return 0
				}
				d.handleGateway(data, src)
			}
		}
	}
}

type daemonState struct {
	p           *kernel.Process
	gfd         int // the gateway datagram socket
	gatewayPort uint16
	gatewayName meter.Name

	// mu guards the child tables, the idempotency ledger, and the
	// notification connection cache — connections are served on
	// concurrent goroutines since the session layer arrived.
	mu       sync.Mutex
	children map[int]*childInfo
	byStdio  map[uint16]*childInfo

	// Idempotency ledger: token -> the reply of the create that already
	// ran under it. A create retried after a lost reply finds its
	// original outcome here instead of creating a second process.
	// createMu serializes whole creates, so a retry arriving on a new
	// session connection while the original is still executing cannot
	// slip past the ledger check and create a second process.
	createMu   sync.Mutex
	creates    map[string]*Reply
	tokenOrder []string // FIFO for bounding the ledger

	// Persistent notification connections, one per controller
	// (host, port). The paper's daemon opened a temporary connection
	// per state change; keeping it open makes the common notification
	// one send, and a failure is retried once on a fresh connection
	// before being counted under daemon.notify_failed.
	notifyFDs    map[string]int
	notifyFailed *obs.Counter
}

// maxCreateTokens bounds the idempotency ledger; the oldest entries
// are evicted first, long after any plausible retry of them.
const maxCreateTokens = 1024

// rememberCreate records a successful create under its token.
func (d *daemonState) rememberCreate(token string, rep *Reply) {
	if token == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tokenOrder) >= maxCreateTokens {
		delete(d.creates, d.tokenOrder[0])
		d.tokenOrder = d.tokenOrder[1:]
	}
	d.creates[token] = rep
	d.tokenOrder = append(d.tokenOrder, token)
}

// lookupCreate consults the idempotency ledger.
func (d *daemonState) lookupCreate(token string) (*Reply, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep, ok := d.creates[token]
	return rep, ok
}

// serveConn serves one accepted connection. The first four bytes pick
// the protocol: the session magic starts a persistent multiplexed
// session; anything else is a legacy one-shot exchange — read one
// request, execute it, reply, close (section 3.5.1). Old controllers
// therefore keep working against new daemons unchanged.
func (d *daemonState) serveConn(conn int) {
	defer func() { _ = d.p.Close(conn) }()
	var buf []byte
	for len(buf) < 4 {
		data, err := d.p.Recv(conn, 8192)
		if err != nil {
			return
		}
		buf = append(buf, data...)
	}
	if isFrameMagic(buf) {
		d.serveSession(conn, buf[4:])
		return
	}
	req, err := readWireBuf(d.p, conn, buf)
	if err != nil {
		return
	}
	rep := d.handle(req)
	_, _ = d.p.Send(conn, rep.Wire().Encode())
}

func (d *daemonState) handle(w *WireMsg) *Reply {
	d.p.Machine().Obs().Counter(reqCounterName(w.Type)).Inc()
	switch w.Type {
	case TCreateReq:
		req, err := ParseCreateReq(w)
		if err != nil {
			return &Reply{Type: TCreateRep, Status: err.Error()}
		}
		return d.handleCreate(req)
	case TSetFlagsReq:
		return d.handleSetFlags(ParseProcReq(w))
	case TStartReq:
		return d.handleSignal(ParseProcReq(w), kernel.SIGCONT, TStartRep)
	case TStopReq:
		return d.handleSignal(ParseProcReq(w), kernel.SIGSTOP, TStopRep)
	case TKillReq:
		return d.handleSignal(ParseProcReq(w), kernel.SIGKILL, TKillRep)
	case TAcquireReq:
		return d.handleAcquire(ParseProcReq(w))
	case TGetFileReq:
		return d.handleGetFile(ParseProcReq(w))
	case TReleaseReq:
		return d.handleRelease(ParseProcReq(w))
	case TListReq:
		return d.handleList()
	case TStdinReq:
		return d.handleStdin(ParseProcReq(w))
	case TQueryReq:
		req, err := ParseQueryReq(w)
		if err != nil {
			return &Reply{Type: TQueryRep, Status: err.Error()}
		}
		return d.handleQuery(req)
	case TAggReq:
		req, err := ParseAggReq(w)
		if err != nil {
			return &Reply{Type: TAggRep, Status: err.Error()}
		}
		return d.handleAgg(req)
	case TStatsReq:
		if _, err := ParseStatsReq(w); err != nil {
			return &Reply{Type: TStatsRep, Status: err.Error()}
		}
		return d.handleStats()
	default:
		return &Reply{Type: TCreateRep, Status: fmt.Sprintf("unknown request %v", w.Type)}
	}
}

// connectMeterSocket creates a stream socket connected to a filter,
// retrying briefly while the (asynchronously created) filter comes up.
func (d *daemonState) connectMeterSocket(host string, port uint16) (int, error) {
	hostID, _, err := d.p.Machine().Cluster().ResolveFrom(d.p.Machine(), host)
	if err != nil {
		return -1, err
	}
	name := meter.InetName(hostID, port)
	deadline := time.Now().Add(2 * time.Second)
	for {
		fd, err := d.p.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			return -1, err
		}
		err = d.p.Connect(fd, name)
		if err == nil {
			return fd, nil
		}
		_ = d.p.Close(fd)
		if !errors.Is(err, kernel.ErrConnRefused) || time.Now().After(deadline) {
			return -1, err
		}
		time.Sleep(time.Millisecond)
	}
}

func (d *daemonState) handleCreate(req *CreateReq) *Reply {
	// One create at a time: the token check and the spawn must be
	// atomic against a transparently re-issued duplicate of the same
	// request arriving on another connection.
	d.createMu.Lock()
	defer d.createMu.Unlock()
	if rep, ok := d.lookupCreate(req.Token); ok && req.Token != "" {
		return rep
	}
	m := d.p.Machine()
	if !m.HasAccount(req.UID) {
		return &Reply{Type: TCreateRep, Status: fmt.Sprintf("uid %d has no account on %s", req.UID, m.Name())}
	}
	if _, err := m.FS().Executable(req.Filename, req.UID); err != nil {
		return &Reply{Type: TCreateRep, Status: err.Error()}
	}

	// The per-process I/O gateway socket (section 3.5.2): a datagram
	// socket connected back to the daemon's gateway, installed as the
	// child's standard descriptors. Datagram links are reliable
	// within a single machine.
	sfd, err := d.p.Socket(meter.AFInet, kernel.SockDgram)
	if err != nil {
		return &Reply{Type: TCreateRep, Status: err.Error()}
	}
	if err := d.p.BindPort(sfd, 0); err != nil {
		return &Reply{Type: TCreateRep, Status: err.Error()}
	}
	if err := d.p.Connect(sfd, d.gatewayName); err != nil {
		return &Reply{Type: TCreateRep, Status: err.Error()}
	}
	stdioName, _ := d.p.SocketName(sfd)
	_, stdioPort := stdioName.Inet()
	stdio, err := d.p.SocketOf(sfd)
	if err != nil {
		return &Reply{Type: TCreateRep, Status: err.Error()}
	}

	// Standard input redirected from a file, if requested: the file
	// was copied to this machine by the controller and is opened by
	// the meterdaemon (section 3.5.2).
	var stdin io.Reader
	if req.StdinFile != "" {
		data, err := m.FS().Read(req.StdinFile, req.UID)
		if err != nil {
			return &Reply{Type: TCreateRep, Status: err.Error()}
		}
		stdin = bytes.NewReader(data)
	}

	child, err := m.Spawn(kernel.SpawnSpec{
		UID:       req.UID,
		Name:      req.Filename,
		Args:      req.Params,
		Path:      req.Filename,
		Suspended: true,
		Stdio:     stdio,
		Stdin:     stdin,
		PPID:      d.p.PID(),
	})
	if err != nil {
		return &Reply{Type: TCreateRep, Status: err.Error()}
	}

	// Wire up the meter connection before the process can run its
	// first instruction: the process is connected to its job's filter
	// at creation time even if no flags are set yet — setflags can
	// turn events on at any point during execution (section 4.3).
	if req.FilterHost != "" {
		msfd, err := d.connectMeterSocket(req.FilterHost, req.FilterPort)
		if err != nil {
			_ = m.Signal(child.PID(), kernel.SIGKILL)
			return &Reply{Type: TCreateRep, Status: fmt.Sprintf("meter connection: %v", err)}
		}
		if err := d.p.Setmeter(child.PID(), int(req.MeterFlags), msfd); err != nil {
			_ = m.Signal(child.PID(), kernel.SIGKILL)
			return &Reply{Type: TCreateRep, Status: err.Error()}
		}
		if err := d.p.Close(msfd); err != nil {
			return &Reply{Type: TCreateRep, Status: err.Error()}
		}
	}

	info := &childInfo{
		pid:         child.PID(),
		uid:         req.UID,
		controlHost: req.ControlHost,
		controlPort: req.ControlPort,
		stdioPort:   stdioPort,
	}
	d.mu.Lock()
	d.children[info.pid] = info
	d.byStdio[info.stdioPort] = info
	d.mu.Unlock()

	// The simulation's SIGCHLD: the kernel pokes the daemon's gateway
	// when the child terminates; the daemon then connects to the
	// controller and reports the state change (section 3.5.1).
	gatewayPort := d.gatewayPort
	child.OnExit(func(cp *kernel.Process, status int, reason string) {
		note := fmt.Sprintf("%s%d %d %s", exitNotePrefix, cp.PID(), status, reason)
		m.InjectDgram(gatewayPort, []byte(note), meter.Name{})
	})

	rep := &Reply{Type: TCreateRep, PID: child.PID(), Status: "ok"}
	d.rememberCreate(req.Token, rep)
	return rep
}

// checkTarget verifies the request's uid may control the target pid.
func (d *daemonState) checkTarget(req *ProcReq, repType MsgType) (*kernel.Process, *Reply) {
	target, err := d.p.Machine().Proc(req.PID)
	if err != nil {
		return nil, &Reply{Type: repType, PID: req.PID, Status: err.Error()}
	}
	if req.UID != 0 && target.UID() != req.UID {
		return nil, &Reply{Type: repType, PID: req.PID, Status: "permission denied"}
	}
	return target, nil
}

func (d *daemonState) handleSetFlags(req *ProcReq) *Reply {
	if _, rep := d.checkTarget(req, TSetFlagsRep); rep != nil {
		return rep
	}
	if err := d.p.Setmeter(req.PID, int(req.Flags), kernel.NoChange); err != nil {
		return &Reply{Type: TSetFlagsRep, PID: req.PID, Status: err.Error()}
	}
	return &Reply{Type: TSetFlagsRep, PID: req.PID, Status: "ok"}
}

func (d *daemonState) handleSignal(req *ProcReq, sig kernel.Signal, repType MsgType) *Reply {
	if _, rep := d.checkTarget(req, repType); rep != nil {
		return rep
	}
	if err := d.p.Machine().Signal(req.PID, sig); err != nil {
		return &Reply{Type: repType, PID: req.PID, Status: err.Error()}
	}
	return &Reply{Type: repType, PID: req.PID, Status: "ok"}
}

// handleAcquire meters an already-executing process: its meter
// connection is established and flags set, but its execution state is
// never touched (section 3.5.2: "no changes are made to the handling
// of the processes' I/O ... the user is not allowed to modify the
// processes' execution state").
func (d *daemonState) handleAcquire(req *ProcReq) *Reply {
	if _, rep := d.checkTarget(req, TAcquireRep); rep != nil {
		return rep
	}
	if req.FilterHost == "" {
		return &Reply{Type: TAcquireRep, PID: req.PID, Status: "no filter specified"}
	}
	msfd, err := d.connectMeterSocket(req.FilterHost, req.FilterPort)
	if err != nil {
		return &Reply{Type: TAcquireRep, PID: req.PID, Status: err.Error()}
	}
	if err := d.p.Setmeter(req.PID, int(req.Flags), msfd); err != nil {
		_ = d.p.Close(msfd)
		return &Reply{Type: TAcquireRep, PID: req.PID, Status: err.Error()}
	}
	if err := d.p.Close(msfd); err != nil {
		return &Reply{Type: TAcquireRep, PID: req.PID, Status: err.Error()}
	}
	return &Reply{Type: TAcquireRep, PID: req.PID, Status: "ok"}
}

// handleRelease stops metering a process: all flags off and the meter
// connection closed. The process itself continues to execute.
func (d *daemonState) handleRelease(req *ProcReq) *Reply {
	if _, rep := d.checkTarget(req, TReleaseRep); rep != nil {
		return rep
	}
	if err := d.p.Setmeter(req.PID, kernel.FlagsNone, kernel.SockNone); err != nil {
		return &Reply{Type: TReleaseRep, PID: req.PID, Status: err.Error()}
	}
	return &Reply{Type: TReleaseRep, PID: req.PID, Status: "ok"}
}

// handleStdin forwards user input to a child's standard descriptors:
// the daemon sends it as a datagram to the child's end of the I/O
// gateway, where the process's next read of descriptor 0 picks it up.
// Only processes this daemon created (and whose stdio is the gateway)
// can receive input this way. The text travels in the request's Path
// field.
func (d *daemonState) handleStdin(req *ProcReq) *Reply {
	if _, rep := d.checkTarget(req, TStdinRep); rep != nil {
		return rep
	}
	d.mu.Lock()
	info := d.children[req.PID]
	d.mu.Unlock()
	if info == nil {
		return &Reply{Type: TStdinRep, PID: req.PID, Status: "process was not created by this meterdaemon"}
	}
	dest := meter.InetName(d.p.Machine().PrimaryHostID(), info.stdioPort)
	if _, err := d.p.SendTo(d.gfd, []byte(req.Path), dest); err != nil {
		return &Reply{Type: TStdinRep, PID: req.PID, Status: err.Error()}
	}
	return &Reply{Type: TStdinRep, PID: req.PID, Status: "ok"}
}

// handleList reports the machine's live processes, one per line:
// "pid uid name", sorted by pid.
func (d *daemonState) handleList() *Reply {
	procs := d.p.Machine().Procs()
	sort.Slice(procs, func(i, j int) bool { return procs[i].PID() < procs[j].PID() })
	var b strings.Builder
	for _, proc := range procs {
		fmt.Fprintf(&b, "%d %d %s\n", proc.PID(), proc.UID(), proc.Name())
	}
	return &Reply{Type: TListRep, Status: "ok", Data: b.String()}
}

func (d *daemonState) handleGetFile(req *ProcReq) *Reply {
	data, err := d.p.Machine().FS().Read(req.Path, req.UID)
	if err != nil {
		return &Reply{Type: TGetFileRep, Status: err.Error()}
	}
	// Incremental retrieval: resume from the requested offset when it
	// still lies within the file; a shrunken file resets to a full
	// transfer. The reply's PID carries the file's total size and Aux
	// the CRC of the skipped prefix, so the requester can verify the
	// splice (and detect an in-place rewrite) before appending.
	off := req.Offset
	if off < 0 || off > len(data) {
		off = 0
	}
	return &Reply{
		Type: TGetFileRep, PID: len(data), Status: "ok",
		Data: string(data[off:]),
		Aux:  strconv.FormatUint(uint64(crc32.ChecksumIEEE(data[:off])), 10),
	}
}

// handleQuery runs a selection-rule query against an event store on
// this machine — the query layer's whole point is that this executes
// where the data lives, so only matching records travel back. The
// reply Data is one statistics line followed by the matching records.
func (d *daemonState) handleQuery(req *QueryReq) *Reply {
	q, err := query.Compile(req.Rules)
	if err != nil {
		return &Reply{Type: TQueryRep, Status: err.Error()}
	}
	q.NoPrune = req.NoPrune
	q.Workers = req.Workers
	rd, err := store.OpenReader(store.NewFsysBackend(d.p.Machine().FS(), req.UID, req.Dir))
	if err != nil {
		return &Reply{Type: TQueryRep, Status: err.Error()}
	}
	res, err := query.Run(rd, q)
	if err != nil {
		return &Reply{Type: TQueryRep, Status: err.Error()}
	}
	var b strings.Builder
	b.WriteString(res.Stats.String())
	b.WriteByte('\n')
	for i := range res.Events {
		b.WriteString(res.Events[i].Format())
		b.WriteByte('\n')
	}
	return &Reply{Type: TQueryRep, Status: "ok", Data: b.String()}
}

// handleAgg runs an aggregate query against an event store on this
// machine and ships back the bounded partial aggregate instead of the
// matching records — the push-down that turns a cluster-wide group-by
// into kilobytes per machine. Reply Data is the binary partial, Aux
// the scan-statistics line.
func (d *daemonState) handleAgg(req *AggReq) *Reply {
	aq, err := agg.Compile(req.Rules + "\n" + req.Spec)
	if err != nil {
		return &Reply{Type: TAggRep, Status: err.Error()}
	}
	aq.Sel.NoPrune = req.NoPrune
	rd, err := store.OpenReader(store.NewFsysBackend(d.p.Machine().FS(), req.UID, req.Dir))
	if err != nil {
		return &Reply{Type: TAggRep, Status: err.Error()}
	}
	reg := d.p.Machine().Obs()
	p, stats, err := agg.Eval(rd, aq, agg.Options{Workers: req.Workers, Obs: reg})
	if err != nil {
		return &Reply{Type: TAggRep, Status: err.Error()}
	}
	data := p.MarshalBinary()
	reg.Counter("agg.partial_bytes").Add(int64(len(data)))
	return &Reply{Type: TAggRep, Status: "ok", Data: string(data), Aux: stats.String()}
}

// handleStats snapshots this machine's metrics registry and ships it
// in the versioned binary snapshot format. Everything running on the
// machine — kernel meter buffers, filters, stores, queries, and this
// daemon's own request counters — shares the registry, so one reply
// describes the whole node. The daemon never interprets the metrics;
// merging and rendering are the controller's business.
func (d *daemonState) handleStats() *Reply {
	s := d.p.Machine().Obs().Snapshot()
	s.Machine = d.p.Machine().Name()
	return &Reply{Type: TStatsRep, Status: "ok", Data: string(s.MarshalBinary())}
}

// handleGateway dispatches datagrams arriving on the gateway socket:
// kernel-injected child exit notes, or child standard output to be
// forwarded to the controller.
func (d *daemonState) handleGateway(data []byte, src meter.Name) {
	if src.IsZero() && strings.HasPrefix(string(data), exitNotePrefix) {
		parts := strings.Fields(string(data[len(exitNotePrefix):]))
		if len(parts) != 3 {
			return
		}
		pid, _ := strconv.Atoi(parts[0])
		status, _ := strconv.Atoi(parts[1])
		d.mu.Lock()
		info := d.children[pid]
		if info != nil {
			delete(d.children, pid)
			delete(d.byStdio, info.stdioPort)
		}
		d.mu.Unlock()
		if info == nil || info.controlHost == "" {
			return
		}
		sc := &StateChange{Machine: d.p.Machine().Name(), PID: pid, Reason: parts[2], Status: status}
		_ = d.notifyController(info, sc.Wire())
		return
	}
	if src.Family() == meter.AFInet {
		_, port := src.Inet()
		d.mu.Lock()
		info := d.byStdio[port]
		d.mu.Unlock()
		if info == nil || info.controlHost == "" {
			return
		}
		iod := &IOData{Machine: d.p.Machine().Name(), PID: info.pid, Data: string(data)}
		_ = d.notifyController(info, iod.Wire())
	}
}

// notifyController delivers one daemon-initiated message (state change
// or forwarded output) to a controller's notification socket. The
// connection persists across notifications; a send that fails — the
// controller restarted, or the old connection was severed by a
// partition — is retried once on a fresh connection, and only then is
// the notification counted lost under daemon.notify_failed. (The
// paper's daemon opened a temporary connection each time and an error
// dropped the notification silently.)
func (d *daemonState) notifyController(info *childInfo, msg *WireMsg) error {
	key := fmt.Sprintf("%s:%d", info.controlHost, info.controlPort)
	payload := msg.Encode()

	d.mu.Lock()
	fd, cached := d.notifyFDs[key]
	d.mu.Unlock()
	if cached {
		if _, err := d.p.Send(fd, payload); err == nil {
			return nil
		}
		// Stale connection: drop it and fall through to a fresh dial.
		d.dropNotifyFD(key, fd)
	}

	fd, err := d.dialNotify(info)
	if err != nil {
		d.notifyFailed.Inc()
		return err
	}
	d.mu.Lock()
	d.notifyFDs[key] = fd
	d.mu.Unlock()
	if _, err := d.p.Send(fd, payload); err != nil {
		d.dropNotifyFD(key, fd)
		d.notifyFailed.Inc()
		return err
	}
	return nil
}

// dialNotify opens a stream connection to a controller's notification
// socket.
func (d *daemonState) dialNotify(info *childInfo) (int, error) {
	hostID, _, err := d.p.Machine().Cluster().ResolveFrom(d.p.Machine(), info.controlHost)
	if err != nil {
		return -1, err
	}
	fd, err := d.p.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		return -1, err
	}
	if err := d.p.Connect(fd, meter.InetName(hostID, info.controlPort)); err != nil {
		_ = d.p.Close(fd)
		return -1, err
	}
	return fd, nil
}

// dropNotifyFD closes a dead notification connection and forgets it if
// it is still the cached one.
func (d *daemonState) dropNotifyFD(key string, fd int) {
	d.mu.Lock()
	if d.notifyFDs[key] == fd {
		delete(d.notifyFDs, key)
	}
	d.mu.Unlock()
	_ = d.p.Close(fd)
}

// readWire accumulates stream bytes on a connection until one complete
// wire message is decoded.
func readWire(p *kernel.Process, fd int) (*WireMsg, error) {
	return readWireBuf(p, fd, nil)
}

// readWireBuf is readWire starting from already-buffered bytes.
func readWireBuf(p *kernel.Process, fd int, buf []byte) (*WireMsg, error) {
	for {
		msg, _, err := DecodeWire(buf)
		if err == nil {
			return msg, nil
		}
		if !errors.Is(err, ErrWireShort) {
			return nil, err
		}
		data, rerr := p.Recv(fd, 8192)
		if rerr != nil {
			return nil, rerr
		}
		buf = append(buf, data...)
	}
}

// Exchange performs one controller-side RPC: connect to the daemon on
// host, send the request, read the reply, and close the connection
// ("The stream connection between the controller and a meterdaemon
// exists for the duration of a single exchange of messages", section
// 3.5.1). It makes a single attempt with no deadline; ExchangeRetry
// adds both.
func Exchange(p *kernel.Process, host string, req *WireMsg) (*Reply, error) {
	return exchangeOnce(p, host, req, 0)
}

// exchangeOnce is one connect/send/read/close round trip. A positive
// timeout bounds the wait for the reply; zero waits forever. A
// successful round trip lands its latency in the calling machine's
// daemon.rtt.<type> histogram.
func exchangeOnce(p *kernel.Process, host string, req *WireMsg, timeout time.Duration) (*Reply, error) {
	start := time.Now()
	hostID, _, err := p.Machine().Cluster().ResolveFrom(p.Machine(), host)
	if err != nil {
		return nil, err
	}
	fd, err := p.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		return nil, err
	}
	defer func() { _ = p.Close(fd) }()
	if err := p.Connect(fd, meter.InetName(hostID, Port)); err != nil {
		return nil, fmt.Errorf("daemon on %s: %w", host, err)
	}
	if _, err := p.Send(fd, req.Encode()); err != nil {
		return nil, err
	}
	var w *WireMsg
	if timeout > 0 {
		w, err = readWireTimeout(p, fd, timeout)
	} else {
		w, err = readWire(p, fd)
	}
	if err != nil {
		return nil, err
	}
	p.Machine().Obs().Histogram(rttHistName(req.Type)).Since(start)
	return ParseReply(w), nil
}

// readWireTimeout is readWire under an overall deadline.
func readWireTimeout(p *kernel.Process, fd int, timeout time.Duration) (*WireMsg, error) {
	deadline := time.Now().Add(timeout)
	var buf []byte
	for {
		msg, _, err := DecodeWire(buf)
		if err == nil {
			return msg, nil
		}
		if !errors.Is(err, ErrWireShort) {
			return nil, err
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, kernel.ErrTimedOut
		}
		data, _, rerr := p.RecvTimeout(fd, 8192, remaining)
		if rerr != nil {
			return nil, rerr
		}
		buf = append(buf, data...)
	}
}
