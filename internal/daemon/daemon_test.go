package daemon

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"dpm/internal/filter"
	"dpm/internal/fsys"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

const testUID = 100

// testRig is a two-machine cluster with meterdaemons, the standard
// filter installed, and a controller-side detached process with a
// notification listener.
type testRig struct {
	t          *testing.T
	c          *kernel.Cluster
	red, green *kernel.Machine
	ctl        *kernel.Process // issues Exchange calls (on machine "yellow")
	yellow     *kernel.Machine
	notifyPort uint16
	notifyCh   chan *WireMsg
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	red, err := c.AddMachine("red", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	green, err := c.AddMachine("green", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	yellow, err := c.AddMachine("yellow", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*kernel.Machine{red, green, yellow} {
		m.AddAccount(testUID, "user")
		if _, err := Install(c, m); err != nil {
			t.Fatal(err)
		}
		if err := filter.Install(c, m, 0); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(c.Shutdown)

	ctl, err := yellow.SpawnDetached(testUID, "controller")
	if err != nil {
		t.Fatal(err)
	}

	// Notification listener: a goroutine-driven detached process that
	// accepts daemon-initiated connections and surfaces their
	// messages.
	notify, err := yellow.SpawnDetached(testUID, "controller-notify")
	if err != nil {
		t.Fatal(err)
	}
	nfd, err := notify.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := notify.BindPort(nfd, 0); err != nil {
		t.Fatal(err)
	}
	if err := notify.Listen(nfd, 16); err != nil {
		t.Fatal(err)
	}
	nname, err := notify.SocketName(nfd)
	if err != nil {
		t.Fatal(err)
	}
	_, notifyPort := nname.Inet()

	// Daemons hold their notification connection open and send many
	// messages on it, so each accepted connection is drained until EOF
	// on its own goroutine.
	ch := make(chan *WireMsg, 64)
	go func() {
		for {
			conn, _, err := notify.Accept(nfd)
			if err != nil {
				return
			}
			notify.Go(func() {
				defer func() { _ = notify.Close(conn) }()
				var buf []byte
				for {
					msg, n, err := DecodeWire(buf)
					if err == nil {
						buf = buf[n:]
						ch <- msg
						continue
					}
					if !errors.Is(err, ErrWireShort) {
						return
					}
					data, rerr := notify.Recv(conn, 8192)
					if rerr != nil {
						return
					}
					buf = append(buf, data...)
				}
			})
		}
	}()

	return &testRig{t: t, c: c, red: red, green: green, yellow: yellow,
		ctl: ctl, notifyPort: notifyPort, notifyCh: ch}
}

// createFilter creates a standard filter process via the daemon on
// machine and returns its listen port.
func (r *testRig) createFilter(machine, name string, port uint16) int {
	r.t.Helper()
	req := &CreateReq{
		Filename: "/bin/filter",
		Params:   []string{name, strconv.Itoa(int(port))},
		UID:      0, // filters run as root in the rig (they own the standard files)
	}
	rep, err := Exchange(r.ctl, machine, req.Wire())
	if err != nil {
		r.t.Fatal(err)
	}
	if !rep.OK() {
		r.t.Fatalf("filter create failed: %s", rep.Status)
	}
	// The filter is created suspended; start it.
	r.signal(machine, rep.PID, 0, TStartReq)
	m, _ := r.c.Machine(machine)
	deadline := time.Now().Add(2 * time.Second)
	for !m.PortBound(kernel.SockStream, port) {
		if time.Now().After(deadline) {
			r.t.Fatal("filter never bound")
		}
		time.Sleep(time.Millisecond)
	}
	return rep.PID
}

func (r *testRig) signal(machine string, pid, uid int, typ MsgType) *Reply {
	r.t.Helper()
	rep, err := Exchange(r.ctl, machine, (&ProcReq{Type: typ, PID: pid, UID: uid}).Wire())
	if err != nil {
		r.t.Fatal(err)
	}
	return rep
}

// pingProgram registers a workload that sends one datagram message to
// itself and exits.
func registerPing(c *kernel.Cluster) {
	c.RegisterProgram("ping", func(p *kernel.Process) int {
		rfd, err := p.Socket(meter.AFInet, kernel.SockDgram)
		if err != nil {
			return 1
		}
		if err := p.BindPort(rfd, 0); err != nil {
			return 1
		}
		name, err := p.SocketName(rfd)
		if err != nil {
			return 1
		}
		sfd, err := p.Socket(meter.AFInet, kernel.SockDgram)
		if err != nil {
			return 1
		}
		if _, err := p.SendTo(sfd, []byte("ping"), name); err != nil {
			return 1
		}
		if _, err := p.Recv(rfd, 100); err != nil {
			return 1
		}
		return 0
	})
}

func TestRemoteCreateStartTerminate(t *testing.T) {
	// The Figure 3.5 scenario: the controller on machine yellow (here,
	// the rig's control process) drives process control on machine
	// red through red's meterdaemon.
	r := newRig(t)
	registerPing(r.c)
	if err := r.red.FS().CreateExecutable("/bin/ping", testUID, "ping"); err != nil {
		t.Fatal(err)
	}
	r.createFilter("green", "f1", 9000)

	req := &CreateReq{
		Filename:    "/bin/ping",
		FilterPort:  9000,
		FilterHost:  "green",
		MeterFlags:  uint32(meter.MAll | meter.MImmediate),
		ControlPort: r.notifyPort,
		ControlHost: "yellow",
		UID:         testUID,
	}
	rep, err := Exchange(r.ctl, "red", req.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.PID == 0 {
		t.Fatalf("create reply = %+v", rep)
	}

	// The process is suspended; no state change may arrive yet.
	select {
	case m := <-r.notifyCh:
		t.Fatalf("premature notification: %+v", m)
	case <-time.After(20 * time.Millisecond):
	}

	if rep := r.signal("red", rep.PID, testUID, TStartReq); !rep.OK() {
		t.Fatalf("start failed: %s", rep.Status)
	}

	// Termination must be reported by a daemon-initiated connection.
	select {
	case m := <-r.notifyCh:
		sc := ParseStateChange(m)
		if sc.Machine != "red" || sc.PID != rep.PID || sc.Reason != "normal" || sc.Status != 0 {
			t.Fatalf("state change = %+v", sc)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no termination notification")
	}

	// The filter's log on green must contain the ping's events;
	// retrieve it with a getfile exchange as getlog would.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rep, err := Exchange(r.ctl, "green", (&ProcReq{Type: TGetFileReq, UID: 0, Path: filter.LogPath("f1")}).Wire())
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() && strings.Contains(rep.Data, "SEND") && strings.Contains(rep.Data, "TERMPROC") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace incomplete: %+v", rep)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCreateMissingExecutable(t *testing.T) {
	r := newRig(t)
	rep, err := Exchange(r.ctl, "red", (&CreateReq{Filename: "/bin/nothing", UID: testUID}).Wire())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("create of missing executable succeeded")
	}
}

func TestCreateWithoutAccount(t *testing.T) {
	r := newRig(t)
	registerPing(r.c)
	if err := r.red.FS().CreateExecutable("/bin/ping", testUID, "ping"); err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&CreateReq{Filename: "/bin/ping", UID: 555}).Wire())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.Status, "no account") {
		t.Fatalf("reply = %+v", rep)
	}
}

func TestSignalPermissionDenied(t *testing.T) {
	r := newRig(t)
	registerPing(r.c)
	if err := r.red.FS().CreateExecutable("/bin/ping", testUID, "ping"); err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&CreateReq{Filename: "/bin/ping", UID: testUID}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("create: %v %+v", err, rep)
	}
	if got := r.signal("red", rep.PID, 555, TKillReq); got.OK() {
		t.Fatal("foreign uid killed another user's process")
	}
	if got := r.signal("red", rep.PID, testUID, TKillReq); !got.OK() {
		t.Fatalf("owner kill failed: %s", got.Status)
	}
}

func TestStopAndStartViaDaemon(t *testing.T) {
	r := newRig(t)
	// The spinner computes forever (virtual time costs no wall time);
	// only signals end it.
	r.c.RegisterProgram("spinner", func(p *kernel.Process) int {
		for {
			p.Compute(time.Millisecond)
		}
	})
	if err := r.red.FS().CreateExecutable("/bin/spinner", testUID, "spinner"); err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&CreateReq{
		Filename: "/bin/spinner", UID: testUID,
		ControlHost: "yellow", ControlPort: r.notifyPort,
	}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("create: %v %+v", err, rep)
	}
	pid := rep.PID
	if got := r.signal("red", pid, testUID, TStartReq); !got.OK() {
		t.Fatal(got.Status)
	}
	if got := r.signal("red", pid, testUID, TStopReq); !got.OK() {
		t.Fatal(got.Status)
	}
	// While stopped, no termination notification.
	select {
	case <-r.notifyCh:
		t.Fatal("stopped process terminated")
	case <-time.After(30 * time.Millisecond):
	}
	if got := r.signal("red", pid, testUID, TStartReq); !got.OK() {
		t.Fatal(got.Status)
	}
	if got := r.signal("red", pid, testUID, TKillReq); !got.OK() {
		t.Fatal(got.Status)
	}
	select {
	case m := <-r.notifyCh:
		sc := ParseStateChange(m)
		if sc.PID != pid || sc.Reason != "killed" {
			t.Fatalf("state change = %+v", sc)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no termination after kill")
	}
}

func TestAcquireRunningProcess(t *testing.T) {
	// Section 4.3's acquire: meter an already-executing server without
	// touching its execution state.
	r := newRig(t)
	r.createFilter("green", "facq", 9100)
	started := make(chan int, 1)
	server, err := r.red.Spawn(kernel.SpawnSpec{UID: testUID, Name: "server", Program: func(p *kernel.Process) int {
		rfd, err := p.Socket(meter.AFInet, kernel.SockDgram)
		if err != nil {
			return 1
		}
		if err := p.BindPort(rfd, 8800); err != nil {
			return 1
		}
		started <- p.PID()
		for {
			data, src, err := p.RecvFrom(rfd, 100)
			if err != nil {
				return 0
			}
			if string(data) == "quit" {
				return 0
			}
			if _, err := p.SendTo(rfd, data, src); err != nil {
				return 1
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	pid := <-started

	rep, err := Exchange(r.ctl, "red", (&ProcReq{
		Type: TAcquireReq, PID: pid, UID: testUID,
		Flags: uint32(meter.MAll | meter.MImmediate), FilterPort: 9100, FilterHost: "green",
	}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("acquire: %v %+v", err, rep)
	}

	// Drive the server; its events must reach the filter log.
	client, err := r.red.SpawnDetached(testUID, "client")
	if err != nil {
		t.Fatal(err)
	}
	cfd, _ := client.Socket(meter.AFInet, kernel.SockDgram)
	if _, err := client.SendTo(cfd, []byte("echo"), meter.InetName(r.red.PrimaryHostID(), 8800)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		rep, err := Exchange(r.ctl, "green", (&ProcReq{Type: TGetFileReq, UID: 0, Path: filter.LogPath("facq")}).Wire())
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() && strings.Contains(rep.Data, "RECEIVE") && strings.Contains(rep.Data, "SEND") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acquired process produced no trace: %+v", rep)
		}
		time.Sleep(time.Millisecond)
	}
	// Send quit so the server exits before cluster shutdown.
	if _, err := client.SendTo(cfd, []byte("quit"), meter.InetName(r.red.PrimaryHostID(), 8800)); err != nil {
		t.Fatal(err)
	}
	server.WaitExit()
}

func TestAcquireForeignProcessDenied(t *testing.T) {
	r := newRig(t)
	r.red.AddAccount(200, "other")
	victim, err := r.red.SpawnDetached(200, "victim")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&ProcReq{
		Type: TAcquireReq, PID: victim.PID(), UID: testUID,
		Flags: uint32(meter.MAll), FilterPort: 9000, FilterHost: "green",
	}).Wire())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("acquired another user's process")
	}
}

func TestSetFlagsViaDaemon(t *testing.T) {
	r := newRig(t)
	target, err := r.red.SpawnDetached(testUID, "t")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&ProcReq{
		Type: TSetFlagsReq, PID: target.PID(), UID: testUID,
		Flags: uint32(meter.MSend | meter.MFork),
	}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("setflags: %v %+v", err, rep)
	}
	if target.MeterFlags() != meter.MSend|meter.MFork {
		t.Fatalf("flags = %b", target.MeterFlags())
	}
}

func TestStdoutForwardedToController(t *testing.T) {
	r := newRig(t)
	r.c.RegisterProgram("talker", func(p *kernel.Process) int {
		p.Printf("hello from talker")
		return 0
	})
	if err := r.red.FS().CreateExecutable("/bin/talker", testUID, "talker"); err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&CreateReq{
		Filename: "/bin/talker", UID: testUID,
		ControlHost: "yellow", ControlPort: r.notifyPort,
	}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("create: %v %+v", err, rep)
	}
	r.signal("red", rep.PID, testUID, TStartReq)
	var sawOutput bool
	deadline := time.After(2 * time.Second)
	for !sawOutput {
		select {
		case m := <-r.notifyCh:
			if m.Type == TIOData {
				iod := ParseIOData(m)
				if iod.Data == "hello from talker" && iod.PID == rep.PID {
					sawOutput = true
				}
			}
		case <-deadline:
			t.Fatal("stdout never forwarded")
		}
	}
}

func TestStdinRedirectedFromFile(t *testing.T) {
	r := newRig(t)
	echoed := make(chan string, 1)
	r.c.RegisterProgram("stdin-reader", func(p *kernel.Process) int {
		data, err := p.Read(0, 100)
		if err != nil {
			echoed <- "ERR " + err.Error()
			return 1
		}
		echoed <- string(data)
		return 0
	})
	if err := r.red.FS().CreateExecutable("/bin/stdin-reader", testUID, "stdin-reader"); err != nil {
		t.Fatal(err)
	}
	if err := r.red.FS().Create("/tmp/input", testUID, fsys.DefaultMode, []byte("redirected input")); err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&CreateReq{
		Filename: "/bin/stdin-reader", UID: testUID, StdinFile: "/tmp/input",
	}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("create: %v %+v", err, rep)
	}
	r.signal("red", rep.PID, testUID, TStartReq)
	select {
	case got := <-echoed:
		if got != "redirected input" {
			t.Fatalf("stdin = %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stdin reader never ran")
	}
}

func TestGetFileMissing(t *testing.T) {
	r := newRig(t)
	rep, err := Exchange(r.ctl, "red", (&ProcReq{Type: TGetFileReq, UID: testUID, Path: "/no/such"}).Wire())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("getfile of missing file succeeded")
	}
}
