package daemon

// The session framing layer. A persistent control-plane session
// carries the legacy wire messages of Figure 3.6 inside length-prefixed
// frames tagged with a request id, so many requests can be in flight on
// one connection and replies can return in completion order:
//
//	size     uint32 LE   total frame length, including this word
//	kind     uint32 LE   frame kind (hello, request, reply, ping, pong)
//	request  uint64 LE   request id, matching replies to requests
//	payload  bytes       request/reply: one encoded WireMsg; hello: version
//
// A session opens with a 4-byte magic, "DPMX", before the first frame.
// Read as a legacy message size the magic is 0x584D5044 — far above
// maxWireSize — so a legacy daemon rejects it as corrupt and closes,
// which is exactly the signal the dialer needs to fall back to one-shot
// exchanges. Conversely no legacy message can begin with the magic
// bytes, so a daemon can sniff the first four bytes of a connection and
// serve either protocol. This is the same trailing-compatibility
// discipline as QueryReq's optional field 5: new capability is
// detectable by the old parser as a clean, non-destructive failure.
//
// Unknown frame kinds are skipped by both sides (forward
// compatibility); a hello payload may grow trailing data that old
// peers ignore.

import "encoding/binary"

// Frame kinds.
const (
	// FrameHello opens a session in each direction; the payload is the
	// speaker's protocol version.
	FrameHello uint32 = 1
	// FrameReq carries one encoded request WireMsg; the reply returns
	// under the same request id.
	FrameReq uint32 = 2
	// FrameRep carries one encoded reply WireMsg.
	FrameRep uint32 = 3
	// FramePing and FramePong are the heartbeat: a ping sent on an idle
	// session must come back as a pong with the same id before the
	// heartbeat deadline, or the peer is suspect.
	FramePing uint32 = 4
	FramePong uint32 = 5
)

// frameMagic precedes the first frame of a session in each direction.
const frameMagic = "DPMX"

// frameHeader is the fixed frame prefix: size, kind, request id.
const frameHeader = 16

// maxFramePayload bounds one frame's payload; a frame carries at most
// one wire message.
const maxFramePayload = maxWireSize

// sessionVersion is the framing protocol version carried in hello
// frames. Parsers accept any version whose leading byte they know,
// ignoring trailing payload.
const sessionVersion = "1"

// Frame is one parsed session frame.
type Frame struct {
	Kind    uint32
	ID      uint64
	Payload []byte
}

// AppendFrame appends one encoded frame to buf and returns the
// extended slice.
func AppendFrame(buf []byte, kind uint32, id uint64, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(frameHeader+len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	return append(buf, payload...)
}

// ParseFrame decodes the first frame in buf, returning the frame and
// the number of bytes it consumed. It returns ErrWireShort when buf
// holds only a prefix of a frame (read more and retry) and
// ErrWireCorrupt when buf cannot begin a valid frame (tear down the
// connection). The payload is copied, so the caller may reuse buf.
func ParseFrame(buf []byte) (Frame, int, error) {
	if len(buf) < 4 {
		return Frame{}, 0, ErrWireShort
	}
	size := binary.LittleEndian.Uint32(buf)
	if size < frameHeader || size > frameHeader+maxFramePayload {
		return Frame{}, 0, ErrWireCorrupt
	}
	if len(buf) < int(size) {
		return Frame{}, 0, ErrWireShort
	}
	f := Frame{
		Kind:    binary.LittleEndian.Uint32(buf[4:]),
		ID:      binary.LittleEndian.Uint64(buf[8:]),
		Payload: append([]byte(nil), buf[frameHeader:size]...),
	}
	return f, int(size), nil
}

// isFrameMagic reports whether buf begins with the session magic.
// Callers must have at least 4 bytes buffered.
func isFrameMagic(buf []byte) bool {
	return len(buf) >= 4 && string(buf[:4]) == frameMagic
}

// appendHello appends the magic preamble and a hello frame — the
// opening bytes of a session in either direction.
func appendHello(buf []byte) []byte {
	buf = append(buf, frameMagic...)
	return AppendFrame(buf, FrameHello, 0, []byte(sessionVersion))
}

// helloOK reports whether a hello payload announces a version this
// implementation speaks. Trailing payload beyond the version byte is
// ignored, so the hello can grow fields without breaking old peers.
func helloOK(payload []byte) bool {
	return len(payload) >= 1 && payload[0] == sessionVersion[0]
}
