package daemon

import (
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := (&CreateReq{Filename: "/bin/x", Params: []string{"a"}, UID: 1}).Wire().Encode()
	buf := AppendFrame(nil, FrameReq, 42, payload)
	buf = AppendFrame(buf, FramePing, 7, nil)

	f, n, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameReq || f.ID != 42 || string(f.Payload) != string(payload) {
		t.Fatalf("frame = %+v", f)
	}
	f2, n2, err := ParseFrame(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if f2.Kind != FramePing || f2.ID != 7 || len(f2.Payload) != 0 {
		t.Fatalf("second frame = %+v", f2)
	}
	if n+n2 != len(buf) {
		t.Fatalf("consumed %d+%d of %d", n, n2, len(buf))
	}
}

func TestParseFrameShortAndCorrupt(t *testing.T) {
	whole := AppendFrame(nil, FrameRep, 9, []byte("payload"))
	for cut := 0; cut < len(whole); cut++ {
		if _, _, err := ParseFrame(whole[:cut]); !errors.Is(err, ErrWireShort) {
			t.Fatalf("truncated at %d: %v, want ErrWireShort", cut, err)
		}
	}

	// A size below the header or above the payload bound is corrupt,
	// not short: waiting for more bytes would wait forever.
	small := binary.LittleEndian.AppendUint32(nil, frameHeader-1)
	small = append(small, make([]byte, 12)...)
	if _, _, err := ParseFrame(small); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("undersize frame: %v, want ErrWireCorrupt", err)
	}
	huge := binary.LittleEndian.AppendUint32(nil, frameHeader+maxFramePayload+1)
	if _, _, err := ParseFrame(huge); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("oversize frame: %v, want ErrWireCorrupt", err)
	}

	// The magic preamble itself is corrupt as a legacy message *and* as
	// a frame — it is consumed before framing starts.
	if _, _, err := ParseFrame([]byte(frameMagic + "....????????....")); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("magic as frame: %v, want ErrWireCorrupt", err)
	}
	if _, _, err := DecodeWire([]byte(frameMagic + "....????????....")); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("magic as legacy message: %v, want ErrWireCorrupt", err)
	}
}

func TestHello(t *testing.T) {
	buf := appendHello(nil)
	if !isFrameMagic(buf) {
		t.Fatal("hello does not start with the magic")
	}
	f, n, err := ParseFrame(buf[4:])
	if err != nil || n != len(buf)-4 {
		t.Fatalf("hello frame: %v, consumed %d of %d", err, n, len(buf)-4)
	}
	if f.Kind != FrameHello || !helloOK(f.Payload) {
		t.Fatalf("hello frame = %+v", f)
	}
	// Trailing hello payload from a future version is ignored.
	if !helloOK([]byte(sessionVersion + "+future-extension")) {
		t.Fatal("extended hello rejected")
	}
	if helloOK(nil) || helloOK([]byte("9")) {
		t.Fatal("bad hello accepted")
	}
}

// FuzzParseFrame checks the session frame parser on arbitrary bytes,
// mirroring FuzzDecodeWire: no panics, exact consumption, re-encode
// match, and short-vs-corrupt discipline (a short result must become a
// parse once enough bytes arrive; corrupt must not depend on length).
func FuzzParseFrame(f *testing.F) {
	// Well-formed request and reply frames.
	f.Add(AppendFrame(nil, FrameReq, 1, (&CreateReq{Filename: "/bin/x", UID: 1}).Wire().Encode()))
	f.Add(AppendFrame(nil, FrameRep, 1, (&Reply{Type: TCreateRep, PID: 7}).Wire().Encode()))
	// Truncated frame: header promises more bytes than follow.
	f.Add(AppendFrame(nil, FrameRep, 2, []byte("payload"))[:10])
	// Length overflow: size field far beyond the payload bound.
	f.Add(binary.LittleEndian.AppendUint32(nil, ^uint32(0)))
	// Unknown frame kind and unknown msgType in the payload — both must
	// parse (forward compatibility; the dispatch layer skips them).
	f.Add(AppendFrame(nil, 99, 3, []byte("future")))
	f.Add(AppendFrame(nil, FrameReq, 4, (&WireMsg{Type: MsgType(250), Fields: []string{"x"}}).Encode()))
	// Duplicate and unknown request ids back to back (dispatch-layer
	// concerns; the parser must hand both over unchanged).
	dup := AppendFrame(nil, FramePong, 5, nil)
	f.Add(append(append([]byte(nil), dup...), dup...))
	f.Add(AppendFrame(nil, FrameRep, ^uint64(0), nil))
	f.Add([]byte(frameMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ParseFrame(data)
		if err != nil {
			if !errors.Is(err, ErrWireShort) && !errors.Is(err, ErrWireCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < frameHeader || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := AppendFrame(nil, fr.Kind, fr.ID, fr.Payload)
		if len(re) != n {
			t.Fatalf("re-encode %d != consumed %d", len(re), n)
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("byte %d changed", i)
			}
		}
		// The payload is a copy: scribbling on the input must not
		// change the parsed frame.
		if len(fr.Payload) > 0 {
			old := fr.Payload[0]
			data[frameHeader] ^= 0xFF
			if fr.Payload[0] != old {
				t.Fatal("payload aliases the input buffer")
			}
		}
	})
}
