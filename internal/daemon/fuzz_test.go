package daemon

import "testing"

// FuzzDecodeWire checks the controller/daemon wire decoder on
// arbitrary bytes: no panics, exact consumption, and a re-encode match
// for accepted messages.
func FuzzDecodeWire(f *testing.F) {
	f.Add((&CreateReq{Filename: "/bin/x", Params: []string{"a", "b"}, UID: 1}).Wire().Encode())
	f.Add((&StateChange{Machine: "red", PID: 7, Reason: "normal"}).Wire().Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		w, n, err := DecodeWire(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := w.Encode()
		if len(re) != n {
			t.Fatalf("re-encode %d != consumed %d", len(re), n)
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("byte %d changed", i)
			}
		}
	})
}
