package daemon

// The daemon half of the persistent control-plane session: one
// connection carries many concurrent requests, each tagged with a
// request id, and replies return in completion order. The controller
// half lives in session.go; the frame format in frame.go.

import (
	"errors"
	"sync"
)

// serveSession serves one persistent multiplexed session. buf holds
// bytes already read past the magic preamble. Each request frame is
// executed on its own goroutine so a slow request (a query scanning a
// large store, say) never blocks the others — the pipelining that a
// one-shot exchange per connection cannot offer. The connection is
// closed by the caller only after every outstanding handler finished,
// so a late reply can never land on a recycled descriptor.
func (d *daemonState) serveSession(conn int, buf []byte) {
	var handlers sync.WaitGroup
	defer handlers.Wait()
	saidHello := false
	for {
		f, n, err := ParseFrame(buf)
		if errors.Is(err, ErrWireShort) {
			data, rerr := d.p.Recv(conn, 8192)
			if rerr != nil {
				return // EOF or peer gone: the session is over
			}
			buf = append(buf, data...)
			continue
		}
		if err != nil {
			return // corrupt framing: tear the session down
		}
		buf = buf[n:]
		switch f.Kind {
		case FrameHello:
			if !helloOK(f.Payload) {
				return // a version we do not speak
			}
			if !saidHello {
				saidHello = true
				if _, err := d.p.Send(conn, appendHello(nil)); err != nil {
					return
				}
			}
		case FramePing:
			// Heartbeat: echo the id back. Answered inline — a session
			// wedged behind a slow handler is exactly what the
			// heartbeat must NOT report as alive, but the handlers run
			// concurrently, so only a genuinely dead daemon misses one.
			if _, err := d.p.Send(conn, AppendFrame(nil, FramePong, f.ID, nil)); err != nil {
				return
			}
		case FrameReq:
			w, _, err := DecodeWire(f.Payload)
			if err != nil {
				return // corrupt payload: tear the session down
			}
			id := f.ID
			handlers.Add(1)
			d.p.Go(func() {
				defer handlers.Done()
				rep := d.handle(w)
				// One Send per frame: kernel sends are atomic, so
				// concurrent repliers cannot interleave frame bytes.
				_, _ = d.p.Send(conn, AppendFrame(nil, FrameRep, id, rep.Wire().Encode()))
			})
		default:
			// Unknown frame kinds are skipped for forward compatibility,
			// the discipline QueryReq field 5 established for the body
			// formats.
		}
	}
}
