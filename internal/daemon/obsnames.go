package daemon

// Per-message-type metric names, precomputed so request accounting
// performs no string building per request. The daemon side counts
// arrivals under daemon.req.<slug>; the controller side times round
// trips under daemon.rtt.<slug>.

var typeSlugs = map[MsgType]string{
	TCreateReq:   "create",
	TSetFlagsReq: "setflags",
	TStartReq:    "start",
	TStopReq:     "stop",
	TKillReq:     "kill",
	TAcquireReq:  "acquire",
	TGetFileReq:  "getfile",
	TReleaseReq:  "release",
	TListReq:     "list",
	TStdinReq:    "stdin",
	TQueryReq:    "query",
	TStatsReq:    "stats",
}

var (
	reqCounterNames = make(map[MsgType]string, len(typeSlugs))
	rttHistNames    = make(map[MsgType]string, len(typeSlugs))
)

func init() {
	for t, slug := range typeSlugs {
		reqCounterNames[t] = "daemon.req." + slug
		rttHistNames[t] = "daemon.rtt." + slug
	}
}

func reqCounterName(t MsgType) string {
	if s, ok := reqCounterNames[t]; ok {
		return s
	}
	return "daemon.req.unknown"
}

func rttHistName(t MsgType) string {
	if s, ok := rttHistNames[t]; ok {
		return s
	}
	return "daemon.rtt.unknown"
}
