package daemon

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dpm/internal/kernel"
)

// RetryPolicy bounds a hardened controller↔daemon exchange. The
// paper's exchanges assume the fabric works; against crashes and
// partitions each request gets a reply deadline and transient failures
// are retried with exponential backoff plus jitter, up to MaxAttempts.
// The zero value selects the defaults.
type RetryPolicy struct {
	MaxAttempts  int           // total tries; default 4
	BaseDelay    time.Duration // first backoff; default 10ms
	MaxDelay     time.Duration // backoff ceiling; default 500ms
	ReplyTimeout time.Duration // per-attempt reply deadline; default 2s
	// Rand supplies the backoff jitter; nil uses the global math/rand
	// source. Tests and soaks inject a seeded source so retry timing is
	// reproducible. Session reconnect backoff shares it.
	Rand JitterSource
}

// JitterSource is the randomness a retry policy draws jitter from;
// *math/rand.Rand satisfies it.
type JitterSource interface {
	Int63n(n int64) int64
}

// globalJitter adapts the global math/rand source.
type globalJitter struct{}

func (globalJitter) Int63n(n int64) int64 { return rand.Int63n(n) }

// jitter returns a uniform jitter in [0, d) from the policy's source.
func (rp RetryPolicy) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	src := rp.Rand
	if src == nil {
		src = globalJitter{}
	}
	return time.Duration(src.Int63n(int64(d)))
}

// ErrExhausted wraps an exchange failure that persisted through every
// retry the policy allowed. Callers (the controller) use it to tell
// "the machine is not answering" from a request that failed outright.
var ErrExhausted = errors.New("daemon: retries exhausted")

// DefaultRetryPolicy returns the default policy values.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 500 * time.Millisecond, ReplyTimeout: 2 * time.Second}
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = def.MaxAttempts
	}
	if rp.BaseDelay <= 0 {
		rp.BaseDelay = def.BaseDelay
	}
	if rp.MaxDelay <= 0 {
		rp.MaxDelay = def.MaxDelay
	}
	if rp.ReplyTimeout <= 0 {
		rp.ReplyTimeout = def.ReplyTimeout
	}
	return rp
}

// transientExchangeErr classifies an exchange failure. Connection
// refusals, unreachable hosts, timeouts, and connections that died
// mid-exchange can all clear up (the daemon restarts, the partition
// heals); anything else — a process kill, an unknown machine name, a
// corrupt message — will not.
func transientExchangeErr(err error) bool {
	return errors.Is(err, ErrSessionDown) ||
		errors.Is(err, kernel.ErrConnRefused) ||
		errors.Is(err, kernel.ErrHostUnreach) ||
		errors.Is(err, kernel.ErrTimedOut) ||
		errors.Is(err, kernel.ErrNotConn) ||
		errors.Is(err, kernel.ErrPipe) ||
		errors.Is(err, io.EOF)
}

// ExchangeRetry is Exchange hardened for a faulty fabric: each attempt
// runs under the policy's reply deadline, transient failures back off
// exponentially with jitter, and the final error wraps the last
// failure. Requests must be idempotent under retry — the daemon's
// non-create requests naturally are, and creates carry an idempotency
// token (CreateReq.Token) for exactly this reason.
func ExchangeRetry(p *kernel.Process, host string, req *WireMsg, rp RetryPolicy) (*Reply, error) {
	rp = rp.withDefaults()
	reg := p.Machine().Obs()
	delay := rp.BaseDelay
	var lastErr error
	for attempt := 0; attempt < rp.MaxAttempts; attempt++ {
		if attempt > 0 {
			reg.Counter("daemon.retries").Inc()
			time.Sleep(delay + rp.jitter(delay))
			if delay *= 2; delay > rp.MaxDelay {
				delay = rp.MaxDelay
			}
		}
		rep, err := exchangeOnce(p, host, req, rp.ReplyTimeout)
		if err == nil {
			return rep, nil
		}
		lastErr = err
		if !transientExchangeErr(err) {
			return nil, err
		}
	}
	reg.Counter("daemon.exhausted").Inc()
	return nil, fmt.Errorf("%w: %v to %s failed after %d attempts: %w",
		ErrExhausted, req.Type, host, rp.MaxAttempts, lastErr)
}
