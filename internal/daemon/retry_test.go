package daemon

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// pingCount counts live processes running /bin/ping on a machine.
func pingCount(m *kernel.Machine) int {
	n := 0
	for _, p := range m.Procs() {
		if p.Name() == "/bin/ping" {
			n++
		}
	}
	return n
}

func (r *testRig) pingOn(m *kernel.Machine) {
	r.t.Helper()
	registerPing(r.c)
	if err := m.FS().CreateExecutable("/bin/ping", testUID, "ping"); err != nil {
		r.t.Fatal(err)
	}
}

func TestExchangeRetrySurvivesPartition(t *testing.T) {
	r := newRig(t)
	n, err := r.c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition(r.yellow.PrimaryHostID(), r.red.PrimaryHostID())

	done := make(chan error, 1)
	go func() {
		rep, err := ExchangeRetry(r.ctl, "red", (&WireMsg{Type: TListReq}), RetryPolicy{
			MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond,
		})
		if err == nil && !rep.OK() {
			err = errors.New(rep.Status)
		}
		done <- err
	}()

	time.Sleep(20 * time.Millisecond)
	n.Heal()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exchange after heal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exchange never completed after heal")
	}
}

func TestExchangeRetryExhaustsWithWrappedError(t *testing.T) {
	r := newRig(t)
	n, err := r.c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition(r.yellow.PrimaryHostID(), r.red.PrimaryHostID())

	_, err = ExchangeRetry(r.ctl, "red", (&WireMsg{Type: TListReq}), RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	})
	if !errors.Is(err, kernel.ErrHostUnreach) {
		t.Fatalf("err = %v, want wrapped ErrHostUnreach", err)
	}
	if !strings.Contains(err.Error(), "2 attempts") {
		t.Fatalf("err = %v, want attempt count in message", err)
	}
}

func TestExchangeRetryPermanentErrorNotRetried(t *testing.T) {
	r := newRig(t)
	start := time.Now()
	_, err := ExchangeRetry(r.ctl, "no-such-machine", (&WireMsg{Type: TListReq}), RetryPolicy{
		MaxAttempts: 10, BaseDelay: 200 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("exchange with unknown machine succeeded")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("unknown machine took %v — it was retried", elapsed)
	}
}

// recordingJitter is a seedable JitterSource that records the bounds
// and values it was asked for.
type recordingJitter struct {
	r      *rand.Rand
	bounds []int64
	draws  []int64
}

func (j *recordingJitter) Int63n(n int64) int64 {
	v := j.r.Int63n(n)
	j.bounds = append(j.bounds, n)
	j.draws = append(j.draws, v)
	return v
}

// TestRetryJitterSeedable: backoff jitter comes from the policy's
// injected source, following the exponential schedule, and two runs
// with the same seed draw identical jitter — the reproducibility the
// chaos soak depends on.
func TestRetryJitterSeedable(t *testing.T) {
	r := newRig(t)
	n, err := r.c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition(r.yellow.PrimaryHostID(), r.red.PrimaryHostID())

	run := func(seed int64) *recordingJitter {
		j := &recordingJitter{r: rand.New(rand.NewSource(seed))}
		_, err := ExchangeRetry(r.ctl, "red", (&WireMsg{Type: TListReq}), RetryPolicy{
			MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Rand: j,
		})
		if !errors.Is(err, ErrExhausted) {
			t.Fatalf("exchange across partition: %v, want ErrExhausted", err)
		}
		return j
	}

	j1 := run(7)
	wantBounds := []int64{int64(time.Millisecond), int64(2 * time.Millisecond), int64(4 * time.Millisecond)}
	if len(j1.bounds) != len(wantBounds) {
		t.Fatalf("jitter drawn %d times, want %d", len(j1.bounds), len(wantBounds))
	}
	for i, b := range wantBounds {
		if j1.bounds[i] != b {
			t.Fatalf("jitter bound %d = %d, want %d (exponential schedule)", i, j1.bounds[i], b)
		}
	}

	j2 := run(7)
	for i := range j1.draws {
		if j1.draws[i] != j2.draws[i] {
			t.Fatalf("draw %d differs across identically-seeded runs: %d vs %d", i, j1.draws[i], j2.draws[i])
		}
	}
	if j3 := run(8); len(j3.draws) != len(j1.draws) {
		t.Fatalf("draw count differs across seeds: %d vs %d", len(j3.draws), len(j1.draws))
	}
}

// TestCreateTokenPreventsDoubleCreate is the lost-reply scenario: the
// first create request reaches the daemon but the connection dies (as
// in a partition mid-exchange) before the reply comes back, so the
// controller retries with the same token. Exactly one process must
// exist, and the retried create must report the original pid.
func TestCreateTokenPreventsDoubleCreate(t *testing.T) {
	r := newRig(t)
	r.pingOn(r.red)

	req := &CreateReq{Filename: "/bin/ping", UID: testUID, Token: "job1-red-0"}

	// First attempt: deliver the request, then tear the connection down
	// without reading the reply — the reply is lost in the "partition".
	hostID, _, err := r.c.ResolveFrom(r.yellow, "red")
	if err != nil {
		t.Fatal(err)
	}
	fd, err := r.ctl.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.Connect(fd, meter.InetName(hostID, Port)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ctl.Send(fd, req.Wire().Encode()); err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.Close(fd); err != nil {
		t.Fatal(err)
	}

	// Retry with the same token: the daemon must recognize it.
	rep, err := ExchangeRetry(r.ctl, "red", req.Wire(), RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.PID == 0 {
		t.Fatalf("retried create reply = %+v", rep)
	}
	if got := pingCount(r.red); got != 1 {
		t.Fatalf("%d ping processes after retried create, want exactly 1", got)
	}
	if _, err := r.red.Proc(rep.PID); err != nil {
		t.Fatalf("reported pid %d not alive: %v", rep.PID, err)
	}

	// A third identical create is still the same process.
	rep2, err := Exchange(r.ctl, "red", req.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.PID != rep.PID {
		t.Fatalf("token reuse created pid %d, want %d", rep2.PID, rep.PID)
	}
	if got := pingCount(r.red); got != 1 {
		t.Fatalf("%d ping processes after third create, want 1", got)
	}

	// Distinct tokens still create distinct processes.
	req2 := &CreateReq{Filename: "/bin/ping", UID: testUID, Token: "job1-red-1"}
	rep3, err := Exchange(r.ctl, "red", req2.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.OK() || rep3.PID == rep.PID {
		t.Fatalf("distinct token reply = %+v (first pid %d)", rep3, rep.PID)
	}
	if got := pingCount(r.red); got != 2 {
		t.Fatalf("%d ping processes after distinct-token create, want 2", got)
	}
}

// TestCreateRetryAcrossPartition drives a tokened create through
// ExchangeRetry while the controller↔daemon link is cut, heals the
// link mid-retry, and checks exactly one process results.
func TestCreateRetryAcrossPartition(t *testing.T) {
	r := newRig(t)
	r.pingOn(r.green)
	n, err := r.c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition(r.yellow.PrimaryHostID(), r.green.PrimaryHostID())

	req := &CreateReq{Filename: "/bin/ping", UID: testUID, Token: "job2-green-0"}
	done := make(chan *Reply, 1)
	go func() {
		rep, err := ExchangeRetry(r.ctl, "green", req.Wire(), RetryPolicy{
			MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond,
		})
		if err != nil {
			t.Errorf("create across partition: %v", err)
			done <- nil
			return
		}
		done <- rep
	}()
	time.Sleep(20 * time.Millisecond)
	n.Heal()

	select {
	case rep := <-done:
		if rep == nil {
			return // goroutine already reported the failure
		}
		if !rep.OK() {
			t.Fatalf("create reply: %s", rep.Status)
		}
		if got := pingCount(r.green); got != 1 {
			t.Fatalf("%d ping processes, want exactly 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("create never completed after heal")
	}
}
