package daemon

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dpm/internal/kernel"
	"dpm/internal/meter"
)

func TestDaemonSurvivesGarbageConnection(t *testing.T) {
	r := newRig(t)
	red, _ := r.c.Machine("red")
	// Open a raw connection and send bytes that decode to nothing.
	prober, err := red.SpawnDetached(testUID, "prober")
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := prober.Socket(meter.AFInet, kernel.SockStream)
	if err := prober.Connect(fd, meter.InetName(red.PrimaryHostID(), Port)); err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 64)
	garbage[0] = 3 // size field below minimum: corrupt
	if _, err := prober.Send(fd, garbage); err != nil {
		t.Fatal(err)
	}
	if err := prober.Close(fd); err != nil {
		t.Fatal(err)
	}
	// The daemon must still answer real requests.
	target, err := red.SpawnDetached(testUID, "t")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&ProcReq{Type: TSetFlagsReq, PID: target.PID(), UID: testUID, Flags: 1}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("daemon dead after garbage: %v %+v", err, rep)
	}
}

func TestDaemonUnknownRequestType(t *testing.T) {
	r := newRig(t)
	rep, err := Exchange(r.ctl, "red", &WireMsg{Type: 99, Fields: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.Status, "unknown request") {
		t.Fatalf("reply = %+v", rep)
	}
}

func TestDaemonAbandonedConnection(t *testing.T) {
	// A controller that connects and goes away without sending a
	// request must not wedge the daemon.
	r := newRig(t)
	red, _ := r.c.Machine("red")
	ghost, err := red.SpawnDetached(testUID, "ghost")
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := ghost.Socket(meter.AFInet, kernel.SockStream)
	if err := ghost.Connect(fd, meter.InetName(red.PrimaryHostID(), Port)); err != nil {
		t.Fatal(err)
	}
	if err := ghost.Close(fd); err != nil {
		t.Fatal(err)
	}
	target, err := red.SpawnDetached(testUID, "t")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&ProcReq{Type: TSetFlagsReq, PID: target.PID(), UID: testUID, Flags: 1}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("daemon wedged by abandoned connection: %v %+v", err, rep)
	}
}

func TestConcurrentExchanges(t *testing.T) {
	// Several controllers issuing requests at once: the daemon serves
	// one connection at a time but every request completes.
	r := newRig(t)
	red, _ := r.c.Machine("red")
	yellow, _ := r.c.Machine("yellow")
	target, err := red.SpawnDetached(testUID, "t")
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		ctl, err := yellow.SpawnDetached(testUID, "ctl")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				rep, err := Exchange(ctl, "red", (&ProcReq{Type: TSetFlagsReq, PID: target.PID(), UID: testUID, Flags: 1}).Wire())
				if err != nil || !rep.OK() {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent exchange failed: %v", err)
	}
}

func TestExchangeNoDaemonMachine(t *testing.T) {
	r := newRig(t)
	if _, err := Exchange(r.ctl, "mars", &WireMsg{Type: TStartReq}); err == nil {
		t.Fatal("exchange with unknown machine succeeded")
	}
}

func TestSignalRequestsForUnknownPid(t *testing.T) {
	r := newRig(t)
	for _, typ := range []MsgType{TStartReq, TStopReq, TKillReq, TSetFlagsReq, TReleaseReq} {
		rep, err := Exchange(r.ctl, "red", (&ProcReq{Type: typ, PID: 99999, UID: testUID}).Wire())
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatalf("%v for unknown pid succeeded", typ)
		}
	}
}

func TestListViaDaemon(t *testing.T) {
	r := newRig(t)
	target, err := r.red.SpawnDetached(testUID, "listed-proc")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&ProcReq{Type: TListReq, UID: testUID}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("list: %v %+v", err, rep)
	}
	want := strconv.Itoa(target.PID()) + " " + strconv.Itoa(testUID) + " listed-proc"
	if !strings.Contains(rep.Data, want) {
		t.Fatalf("list lacks %q:\n%s", want, rep.Data)
	}
	if !strings.Contains(rep.Data, "meterdaemon") {
		t.Fatalf("list lacks the daemon itself:\n%s", rep.Data)
	}
}

func TestStdinViaDaemon(t *testing.T) {
	r := newRig(t)
	r.c.RegisterProgram("echoer", func(p *kernel.Process) int {
		data, err := p.Read(0, 256)
		if err != nil {
			return 1
		}
		p.Printf("got:%s", data)
		return 0
	})
	if err := r.red.FS().CreateExecutable("/bin/echoer", testUID, "echoer"); err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&CreateReq{
		Filename: "/bin/echoer", UID: testUID,
		ControlHost: "yellow", ControlPort: r.notifyPort,
	}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("create: %v %+v", err, rep)
	}
	pid := rep.PID
	r.signal("red", pid, testUID, TStartReq)
	srep, err := Exchange(r.ctl, "red", (&ProcReq{Type: TStdinReq, PID: pid, UID: testUID, Path: "typed line"}).Wire())
	if err != nil || !srep.OK() {
		t.Fatalf("stdin: %v %+v", err, srep)
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case m := <-r.notifyCh:
			if m.Type == TIOData {
				iod := ParseIOData(m)
				if iod.Data == "got:typed line" && iod.PID == pid {
					return
				}
			}
		case <-deadline:
			t.Fatal("echo never arrived")
		}
	}
}

func TestStdinUnknownPidViaDaemon(t *testing.T) {
	r := newRig(t)
	rep, err := Exchange(r.ctl, "red", (&ProcReq{Type: TStdinReq, PID: 4242, UID: testUID, Path: "x"}).Wire())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("stdin to unknown pid succeeded")
	}
}

func TestReleaseViaDaemon(t *testing.T) {
	r := newRig(t)
	r.createFilter("green", "frel", 9200)
	target, err := r.red.SpawnDetached(testUID, "t")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Exchange(r.ctl, "red", (&ProcReq{
		Type: TAcquireReq, PID: target.PID(), UID: testUID,
		Flags: uint32(meter.MAll), FilterPort: 9200, FilterHost: "green",
	}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("acquire: %v %+v", err, rep)
	}
	if target.MeterSocketID() == 0 {
		t.Fatal("not metered after acquire")
	}
	rep, err = Exchange(r.ctl, "red", (&ProcReq{Type: TReleaseReq, PID: target.PID(), UID: testUID}).Wire())
	if err != nil || !rep.OK() {
		t.Fatalf("release: %v %+v", err, rep)
	}
	if target.MeterSocketID() != 0 {
		t.Fatal("meter connection survives release")
	}
	if target.MeterFlags() != 0 {
		t.Fatal("flags survive release")
	}
}
