package daemon

// The controller half of the persistent control-plane session: a
// supervised connection to one machine's daemon that carries many
// concurrent requests (frame.go has the framing, mux.go the daemon
// half). A supervisor goroutine owns the connection and walks the
// session through connecting → up → suspect → down: heartbeat pings
// probe an idle link, a missed pong marks it suspect, and reconnects
// back off exponentially with jitter behind a circuit breaker.
// Requests still in flight when a connection dies are re-issued
// transparently on the next one — safe because every daemon request
// is idempotent (creates carry CreateReq.Token for exactly this).

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/obs"
)

// SessionState is where a session's supervisor is in its lifecycle.
type SessionState int

// Explicit values keep the session.state gauge readable.
const (
	// StateConnecting: no connection; a dial is imminent or underway.
	StateConnecting SessionState = 0
	// StateUp: handshake done, requests flow.
	StateUp SessionState = 1
	// StateSuspect: the connection died or missed a heartbeat;
	// in-flight requests are held for re-issue on the next connection.
	StateSuspect SessionState = 2
	// StateDown: repeated dial failures; calls fail with a retryable
	// error until a dial succeeds.
	StateDown SessionState = 3
)

func (s SessionState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// SessionConfig tunes a session's liveness machinery. The zero value
// selects the defaults; docs/controlplane.md discusses the trade-offs.
type SessionConfig struct {
	HeartbeatInterval time.Duration // idle gap before a ping; default 250ms
	HeartbeatTimeout  time.Duration // missed-pong deadline → suspect; default 500ms
	HelloTimeout      time.Duration // handshake reply deadline; default 1s
	Backoff           RetryPolicy   // reconnect pacing: BaseDelay, MaxDelay, Rand
	DownAfter         int           // consecutive failed dials → down; default 3
	CircuitAfter      int           // consecutive failed dials → breaker opens; default 6
	CircuitHold       time.Duration // breaker hold-off between background dials (demand probes cut it short); default 2s
	Port              uint16        // daemon port; default Port
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 500 * time.Millisecond
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = time.Second
	}
	c.Backoff = c.Backoff.withDefaults()
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.CircuitAfter <= 0 {
		c.CircuitAfter = 6
	}
	if c.CircuitHold <= 0 {
		c.CircuitHold = 2 * time.Second
	}
	if c.Port == 0 {
		c.Port = Port
	}
	return c
}

var (
	// ErrSessionDown fails a call fast while the circuit breaker holds
	// the session off, and fails held in-flights when the session goes
	// down. It is transient: ExchangeRetry/SessionExchange retry it.
	ErrSessionDown = errors.New("daemon: session down")
	// ErrSessionClosed fails calls on a session after Close.
	ErrSessionClosed = errors.New("daemon: session closed")
	// ErrSessionLegacy marks a peer that only speaks one-shot
	// exchanges; the caller should fall back to ExchangeRetry.
	ErrSessionLegacy = errors.New("daemon: peer speaks one-shot exchanges only")

	// errLegacyPeer is the dial-time signal: the peer closed the
	// handshake without answering our hello.
	errLegacyPeer = errors.New("daemon: peer closed the session handshake")
	// errHeartbeatMissed tears a connection down from the inside.
	errHeartbeatMissed = errors.New("daemon: heartbeat missed")
)

type callResult struct {
	rep *Reply
	err error
}

// call is one in-flight request: its encoded frame (kept for re-issue
// on reconnect) and the channel its reply lands on.
type call struct {
	frame []byte
	done  chan callResult // buffered 1; sender removes the call from inflight first
}

// Session is a supervised persistent connection to one machine's
// daemon. Safe for concurrent use; Call pipelines freely.
type Session struct {
	p    *kernel.Process
	host string
	cfg  SessionConfig

	reg        *obs.Registry
	reconnects *obs.Counter   // session.reconnects
	hbRTT      *obs.Histogram // session.heartbeat_rtt
	inflightHW *obs.Gauge     // session.inflight (high-water)
	stateGauge *obs.Gauge     // session.state (current, by value)

	mu       sync.Mutex
	state    SessionState
	history  []SessionState // every transition, for tests and postmortems
	nextID   uint64         // request and ping ids share one sequence
	inflight map[uint64]*call
	fd       int // current connection, -1 when none
	closed   bool
	legacy   bool
	everUp   bool

	stopCh chan struct{} // closed by Close
	wake   chan struct{} // demand probe: cuts a supervisor sleep short
}

// DialSession starts a session to host's daemon and returns
// immediately; the supervisor goroutine dials, handshakes, and keeps
// the session alive until Close (or the owning process dies). Calls
// made before the first connection is up are queued and sent once it
// is.
func DialSession(p *kernel.Process, host string, cfg SessionConfig) *Session {
	cfg = cfg.withDefaults()
	reg := p.Machine().Obs()
	s := &Session{
		p:          p,
		host:       host,
		cfg:        cfg,
		reg:        reg,
		reconnects: reg.Counter("session.reconnects"),
		hbRTT:      reg.Histogram("session.heartbeat_rtt"),
		inflightHW: reg.Gauge("session.inflight"),
		stateGauge: reg.Gauge("session.state"),
		state:      StateConnecting,
		history:    []SessionState{StateConnecting},
		inflight:   make(map[uint64]*call),
		fd:         -1,
		stopCh:     make(chan struct{}),
		wake:       make(chan struct{}, 1),
	}
	s.stateGauge.Set(int64(StateConnecting))
	reg.Counter("session.state.connecting").Inc()
	p.Go(s.run)
	return s
}

// Host returns the machine this session serves.
func (s *Session) Host() string { return s.host }

// State returns the session's current lifecycle state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// History returns every state transition so far, oldest first.
func (s *Session) History() []SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionState, len(s.history))
	copy(out, s.history)
	return out
}

// Legacy reports whether the peer turned out to speak only one-shot
// exchanges; calls on a legacy session fail with ErrSessionLegacy and
// the caller should use ExchangeRetry instead.
func (s *Session) Legacy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.legacy
}

// Close shuts the session down: the connection is closed, the
// supervisor exits, and pending calls fail with ErrSessionClosed.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	fd := s.fd
	s.fd = -1
	close(s.stopCh)
	s.mu.Unlock()
	if fd >= 0 {
		_ = s.p.Close(fd)
	}
	s.failPending(ErrSessionClosed)
}

// Call sends one request over the session and waits for its reply up
// to timeout (zero picks the default reply deadline). If the
// connection dies first, the request stays in flight and is re-issued
// on the next connection. A call made while the session is not up
// wakes the supervisor to dial immediately: against a dead machine
// the dial fails at once and the call gets the retryable
// ErrSessionDown, so callers never wait out the deadline just to
// learn the machine is gone.
func (s *Session) Call(req *WireMsg, timeout time.Duration) (*Reply, error) {
	if timeout <= 0 {
		timeout = DefaultRetryPolicy().ReplyTimeout
	}
	start := time.Now()
	payload := req.Encode()

	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return nil, ErrSessionClosed
	case s.legacy:
		s.mu.Unlock()
		return nil, ErrSessionLegacy
	}
	s.nextID++
	id := s.nextID
	c := &call{frame: AppendFrame(nil, FrameReq, id, payload), done: make(chan callResult, 1)}
	s.inflight[id] = c
	s.inflightHW.SetMax(int64(len(s.inflight)))
	fd := -1
	if s.state == StateUp {
		fd = s.fd
	}
	s.mu.Unlock()

	if fd >= 0 {
		// A send failure means the connection just died under us; the
		// supervisor notices, reconnects, and re-issues this call.
		_, _ = s.p.Send(fd, c.frame)
	} else {
		// Demand probe: wake the supervisor out of its backoff or
		// breaker hold so the dial happens now. Against a machine that
		// is really down the dial fails immediately and this call gets
		// its retryable error; against one that just healed the session
		// comes up and the call goes out.
		s.poke()
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-c.done:
		if res.err == nil {
			s.reg.Histogram(rttHistName(req.Type)).Since(start)
		}
		return res.rep, res.err
	case <-timer.C:
		s.forget(id)
		select { // the reply may have raced the deadline
		case res := <-c.done:
			return res.rep, res.err
		default:
		}
		return nil, fmt.Errorf("session to %s: %w", s.host, kernel.ErrTimedOut)
	case <-s.p.KillChan():
		s.forget(id)
		return nil, kernel.ErrKilled
	}
}

// SessionExchange is ExchangeRetry over a session: each attempt runs
// under the policy's reply deadline and transient failures — a
// session down, a timed-out reply — back off and retry.
func SessionExchange(s *Session, req *WireMsg, rp RetryPolicy) (*Reply, error) {
	rp = rp.withDefaults()
	delay := rp.BaseDelay
	var lastErr error
	for attempt := 0; attempt < rp.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.reg.Counter("daemon.retries").Inc()
			time.Sleep(delay + rp.jitter(delay))
			if delay *= 2; delay > rp.MaxDelay {
				delay = rp.MaxDelay
			}
		}
		rep, err := s.Call(req, rp.ReplyTimeout)
		if err == nil {
			return rep, nil
		}
		lastErr = err
		if !transientExchangeErr(err) {
			return nil, err
		}
	}
	s.reg.Counter("daemon.exhausted").Inc()
	return nil, fmt.Errorf("%w: %v to %s failed after %d attempts: %w",
		ErrExhausted, req.Type, s.host, rp.MaxAttempts, lastErr)
}

// --- supervisor ---

// run is the supervisor: dial, pump, reconnect, forever. It exits on
// Close, process death, or a peer proven legacy.
func (s *Session) run() {
	fails := 0
	legacyStrikes := 0
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		s.mu.Lock()
		// Down persists across reconnect attempts — down means "dials
		// keep failing", not "between dials"; anything milder becomes
		// connecting.
		if s.state != StateDown {
			s.setStateLocked(StateConnecting)
		}
		s.mu.Unlock()

		fd, leftover, err := s.dialSession()
		if err != nil {
			if errors.Is(err, kernel.ErrKilled) {
				return
			}
			if errors.Is(err, errLegacyPeer) {
				// One EOF could be a daemon dying mid-handshake; two in a
				// row is a peer that reads our magic as garbage.
				if legacyStrikes++; legacyStrikes >= 2 {
					s.markLegacy()
					return
				}
			} else {
				legacyStrikes = 0
			}
			fails++
			if fails >= s.cfg.DownAfter {
				s.transitionDown()
			}
			var wait time.Duration
			if fails >= s.cfg.CircuitAfter {
				s.openCircuit()
				wait = s.cfg.CircuitHold
			} else {
				wait = s.backoff(fails)
			}
			if !s.sleep(wait) {
				return
			}
			continue
		}
		legacyStrikes, fails = 0, 0
		if !s.attach(fd) {
			return // closed while dialing
		}
		err = s.readLoop(fd, leftover)
		s.detach(fd)
		if errors.Is(err, kernel.ErrKilled) || s.isClosed() {
			return
		}
		s.setState(StateSuspect)
	}
}

// dialSession connects, sends the magic preamble plus hello, and waits
// for the daemon's hello back. It returns the connection and any bytes
// read past the handshake. errLegacyPeer means the peer either closed
// on our magic or answered with something other than a session hello.
func (s *Session) dialSession() (int, []byte, error) {
	hostID, _, err := s.p.Machine().Cluster().ResolveFrom(s.p.Machine(), s.host)
	if err != nil {
		return -1, nil, err
	}
	fd, err := s.p.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		return -1, nil, err
	}
	fail := func(err error) (int, []byte, error) {
		_ = s.p.Close(fd)
		return -1, nil, err
	}
	if err := s.p.Connect(fd, meter.InetName(hostID, s.cfg.Port)); err != nil {
		return fail(fmt.Errorf("session to %s: %w", s.host, err))
	}
	if _, err := s.p.Send(fd, appendHello(nil)); err != nil {
		return fail(err)
	}
	deadline := time.Now().Add(s.cfg.HelloTimeout)
	var buf []byte
	sawMagic := false
	for {
		if !sawMagic && len(buf) >= 4 {
			if !isFrameMagic(buf) {
				return fail(errLegacyPeer)
			}
			buf = buf[4:]
			sawMagic = true
		}
		if sawMagic {
			f, n, perr := ParseFrame(buf)
			if perr == nil {
				if f.Kind != FrameHello || !helloOK(f.Payload) {
					return fail(errLegacyPeer)
				}
				return fd, buf[n:], nil
			}
			if !errors.Is(perr, ErrWireShort) {
				return fail(errLegacyPeer)
			}
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fail(kernel.ErrTimedOut)
		}
		data, _, rerr := s.p.RecvTimeout(fd, 8192, remaining)
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				// A legacy daemon reads our magic as an over-size legacy
				// message, calls it corrupt, and closes.
				return fail(errLegacyPeer)
			}
			return fail(rerr)
		}
		buf = append(buf, data...)
	}
}

// attach installs a fresh connection, flips the session up, and
// re-issues every request still in flight from the previous one.
// Reports false if the session was closed while dialing.
func (s *Session) attach(fd int) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = s.p.Close(fd)
		return false
	}
	s.fd = fd
	wasUp := s.everUp
	s.everUp = true
	frames := make([][]byte, 0, len(s.inflight))
	for _, c := range s.inflight {
		frames = append(frames, c.frame)
	}
	s.setStateLocked(StateUp)
	s.mu.Unlock()
	if wasUp {
		s.reconnects.Inc()
	}
	for _, fr := range frames {
		if _, err := s.p.Send(fd, fr); err != nil {
			break // the read loop will notice and reconnect again
		}
	}
	return true
}

// detach retires a connection if the session still owns it (Close may
// have taken it already — and its descriptor may since have been
// recycled, so closing unconditionally would hit a stranger's socket).
func (s *Session) detach(fd int) {
	s.mu.Lock()
	owned := s.fd == fd
	if owned {
		s.fd = -1
	}
	s.mu.Unlock()
	if owned {
		_ = s.p.Close(fd)
	}
}

// readLoop pumps one connection: it matches reply frames to in-flight
// calls and runs the heartbeat — after HeartbeatInterval of silence a
// ping goes out, and a pong missing for HeartbeatTimeout kills the
// connection from our side (the peer is wedged or the path is gone).
func (s *Session) readLoop(fd int, buf []byte) error {
	idle := time.Now()
	var pingID uint64
	var pingSent time.Time
	pingOut := false
	for {
		for {
			f, n, err := ParseFrame(buf)
			if errors.Is(err, ErrWireShort) {
				break
			}
			if err != nil {
				return err // corrupt framing: tear the connection down
			}
			buf = buf[n:]
			idle = time.Now()
			switch f.Kind {
			case FrameRep:
				s.deliver(f)
			case FramePong:
				if pingOut && f.ID == pingID {
					pingOut = false
					s.hbRTT.Since(pingSent)
				}
			default:
				// Unknown frame kinds are skipped, as in the daemon mux.
			}
		}
		now := time.Now()
		var wait time.Duration
		if pingOut {
			pongBy := pingSent.Add(s.cfg.HeartbeatTimeout)
			if !now.Before(pongBy) {
				return errHeartbeatMissed
			}
			wait = pongBy.Sub(now)
		} else if next := idle.Add(s.cfg.HeartbeatInterval); !now.Before(next) {
			s.mu.Lock()
			s.nextID++
			pingID = s.nextID
			s.mu.Unlock()
			pingSent, pingOut = now, true
			if _, err := s.p.Send(fd, AppendFrame(nil, FramePing, pingID, nil)); err != nil {
				return err
			}
			wait = s.cfg.HeartbeatTimeout
		} else {
			wait = next.Sub(now)
		}
		data, _, err := s.p.RecvTimeout(fd, 8192, wait)
		if err != nil {
			if errors.Is(err, kernel.ErrTimedOut) {
				continue // just the heartbeat timer firing
			}
			return err
		}
		buf = append(buf, data...)
	}
}

// deliver resolves a reply frame against the in-flight table. Replies
// with no matching call — a duplicate after re-issue, or one whose
// caller gave up — are dropped.
func (s *Session) deliver(f Frame) {
	s.mu.Lock()
	c := s.inflight[f.ID]
	delete(s.inflight, f.ID)
	s.mu.Unlock()
	if c == nil {
		return
	}
	w, _, err := DecodeWire(f.Payload)
	if err != nil {
		c.done <- callResult{err: err}
		return
	}
	c.done <- callResult{rep: ParseReply(w)}
}

func (s *Session) forget(id uint64) {
	s.mu.Lock()
	delete(s.inflight, id)
	s.mu.Unlock()
}

// failPending drains the in-flight table, failing every call with err.
func (s *Session) failPending(err error) {
	s.mu.Lock()
	calls := make([]*call, 0, len(s.inflight))
	for id, c := range s.inflight {
		delete(s.inflight, id)
		calls = append(calls, c)
	}
	s.mu.Unlock()
	for _, c := range calls {
		c.done <- callResult{err: err}
	}
}

// transitionDown marks the session down and fails held in-flights
// with the retryable ErrSessionDown — callers stop waiting for a
// reconnect that is not coming soon.
func (s *Session) transitionDown() {
	s.setState(StateDown)
	s.failPending(fmt.Errorf("session to %s: %w", s.host, ErrSessionDown))
}

// openCircuit starts a breaker hold-off: background redialing slows
// to CircuitHold so a dead machine is not hammered, and anything
// still queued is shed. Demand probes (Call's poke) cut the hold
// short, so a machine that comes back is noticed as soon as someone
// wants it.
func (s *Session) openCircuit() {
	s.failPending(fmt.Errorf("session to %s: %w", s.host, ErrSessionDown))
}

// markLegacy retires the session permanently: the peer does not speak
// the session protocol.
func (s *Session) markLegacy() {
	s.mu.Lock()
	s.legacy = true
	s.setStateLocked(StateDown)
	s.mu.Unlock()
	s.failPending(ErrSessionLegacy)
}

func (s *Session) setState(st SessionState) {
	s.mu.Lock()
	s.setStateLocked(st)
	s.mu.Unlock()
}

func (s *Session) setStateLocked(st SessionState) {
	if s.state == st {
		return
	}
	s.state = st
	// Bound the transition record: a session flapping against a dead
	// machine for hours must not grow memory without limit.
	if len(s.history) >= 4096 {
		s.history = append([]SessionState(nil), s.history[2048:]...)
	}
	s.history = append(s.history, st)
	s.stateGauge.Set(int64(st))
	s.reg.Counter("session.state." + st.String()).Inc()
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// backoff is the reconnect delay after the fails-th consecutive dial
// failure: exponential from the policy's base, capped, plus jitter.
func (s *Session) backoff(fails int) time.Duration {
	rp := s.cfg.Backoff
	d := rp.BaseDelay
	for i := 1; i < fails && d < rp.MaxDelay; i++ {
		d *= 2
	}
	if d > rp.MaxDelay {
		d = rp.MaxDelay
	}
	return d + rp.jitter(d)
}

// poke cuts the supervisor's current (or next) sleep short.
func (s *Session) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// sleep pauses the supervisor, waking early on a demand probe and
// aborting if the session closes or the owning process dies. Reports
// false if the supervisor should exit.
func (s *Session) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.wake:
		return true
	case <-s.stopCh:
		return false
	case <-s.p.KillChan():
		return false
	}
}
