package daemon

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// fastSession is a config tuned for test time scales: quick
// heartbeats, quick reconnects, no circuit breaker surprises.
func fastSession() SessionConfig {
	return SessionConfig{
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  50 * time.Millisecond,
		HelloTimeout:      250 * time.Millisecond,
		Backoff:           RetryPolicy{BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		DownAfter:         3,
		CircuitAfter:      1000, // effectively off unless a test wants it
		CircuitHold:       time.Second,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// hasStateSubsequence reports whether hist contains want as a
// (not necessarily contiguous) subsequence.
func hasStateSubsequence(hist []SessionState, want ...SessionState) bool {
	i := 0
	for _, st := range hist {
		if i < len(want) && st == want[i] {
			i++
		}
	}
	return i == len(want)
}

func TestSessionBasicCall(t *testing.T) {
	r := newRig(t)
	s := DialSession(r.ctl, "red", fastSession())
	defer s.Close()

	rep, err := s.Call(&WireMsg{Type: TListReq}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("list over session: %s", rep.Status)
	}
	if got := s.State(); got != StateUp {
		t.Fatalf("state after successful call = %v, want up", got)
	}

	rep, err = SessionExchange(s, &WireMsg{Type: TStatsReq}, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("stats over session: %s", rep.Status)
	}

	s.Close()
	if _, err := s.Call(&WireMsg{Type: TListReq}, time.Second); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("call after close: %v, want ErrSessionClosed", err)
	}
	s.Close() // idempotent
}

// TestSessionPipelinedCreates runs many concurrent creates over one
// session and checks each reply went back to the caller that asked
// for it: the daemon's token ledger must agree, request by request,
// with the pid the session call reported.
func TestSessionPipelinedCreates(t *testing.T) {
	r := newRig(t)
	r.pingOn(r.red)
	s := DialSession(r.ctl, "red", fastSession())
	defer s.Close()

	const n = 8
	pids := make([]int, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			req := &CreateReq{Filename: "/bin/ping", UID: testUID,
				Token: fmt.Sprintf("pipeline-%d", i)}
			rep, err := s.Call(req.Wire(), 2*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			if !rep.OK() {
				errs[i] = errors.New(rep.Status)
				return
			}
			pids[i] = rep.PID
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if got := pingCount(r.red); got != n {
		t.Fatalf("%d ping processes, want %d", got, n)
	}
	// Cross-check reply matching against the ledger via the legacy
	// one-shot path: the same token must report the same pid.
	for i := 0; i < n; i++ {
		req := &CreateReq{Filename: "/bin/ping", UID: testUID,
			Token: fmt.Sprintf("pipeline-%d", i)}
		rep, err := Exchange(r.ctl, "red", req.Wire())
		if err != nil {
			t.Fatal(err)
		}
		if rep.PID != pids[i] {
			t.Fatalf("call %d got pid %d but ledger says %d — replies crossed", i, pids[i], rep.PID)
		}
	}
	if hw := r.yellow.Obs().Gauge("session.inflight").Load(); hw < 1 {
		t.Fatalf("session.inflight high-water = %d, want >= 1", hw)
	}
}

// TestSessionStateMachineAcrossRestart pins the lifecycle: a session
// that was up goes suspect when its machine crashes, down after
// enough failed dials, and up again once the machine restarts and a
// daemon is listening.
func TestSessionStateMachineAcrossRestart(t *testing.T) {
	r := newRig(t)
	s := DialSession(r.ctl, "red", fastSession())
	defer s.Close()

	if rep, err := s.Call(&WireMsg{Type: TListReq}, time.Second); err != nil || !rep.OK() {
		t.Fatalf("list before crash: %v", err)
	}

	if err := r.c.CrashMachine("red"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "session down after crash", func() bool {
		return s.State() == StateDown
	})

	m2, err := r.c.RestartMachine("red")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Install(r.c, m2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "session up after restart", func() bool {
		return s.State() == StateUp
	})

	if rep, err := s.Call(&WireMsg{Type: TListReq}, time.Second); err != nil || !rep.OK() {
		t.Fatalf("list after restart: %v", err)
	}
	if hist := s.History(); !hasStateSubsequence(hist, StateUp, StateSuspect, StateDown, StateUp) {
		t.Fatalf("history %v missing up → suspect → down → up", hist)
	}
}

// spawnMuteDaemon runs a fake daemon that completes the session
// handshake and then ignores everything — the wedged-peer case only a
// heartbeat can detect.
func spawnMuteDaemon(t *testing.T, m *kernel.Machine, port uint16) {
	t.Helper()
	_, err := m.Spawn(kernel.SpawnSpec{UID: 0, Name: "muted", Program: func(p *kernel.Process) int {
		lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			return 1
		}
		if err := p.BindPort(lfd, port); err != nil {
			return 1
		}
		if err := p.Listen(lfd, 8); err != nil {
			return 1
		}
		for {
			conn, _, err := p.Accept(lfd)
			if err != nil {
				return 0
			}
			p.Go(func() {
				var buf []byte
				for {
					if len(buf) >= 4 && isFrameMagic(buf) {
						if _, n, err := ParseFrame(buf[4:]); err == nil {
							buf = buf[4+n:]
							break
						}
					}
					data, rerr := p.Recv(conn, 8192)
					if rerr != nil {
						return
					}
					buf = append(buf, data...)
				}
				if _, err := p.Send(conn, appendHello(nil)); err != nil {
					return
				}
				for { // swallow pings and requests alike
					if _, err := p.Recv(conn, 8192); err != nil {
						return
					}
				}
			})
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "mute daemon listening", func() bool {
		return m.PortBound(kernel.SockStream, port)
	})
}

// TestSessionHeartbeatSuspect: a peer that answers the handshake but
// nothing else must be detected by the heartbeat — the session goes
// suspect and keeps reconnecting.
func TestSessionHeartbeatSuspect(t *testing.T) {
	r := newRig(t)
	const mutePort = 9990
	spawnMuteDaemon(t, r.red, mutePort)

	cfg := fastSession()
	cfg.Port = mutePort
	s := DialSession(r.ctl, "red", cfg)
	defer s.Close()

	waitFor(t, 2*time.Second, "heartbeat-driven suspect", func() bool {
		return hasStateSubsequence(s.History(), StateUp, StateSuspect)
	})
	waitFor(t, 2*time.Second, "reconnect after suspect", func() bool {
		return r.yellow.Obs().Counter("session.reconnects").Load() >= 1
	})
	if got := r.yellow.Obs().Histogram("session.heartbeat_rtt").Count(); got != 0 {
		t.Fatalf("heartbeat_rtt observed %d times against a mute peer", got)
	}
}

// spawnLegacyDaemon runs a fake daemon that predates sessions: it
// reads one legacy message per connection and closes on anything it
// cannot decode — which is exactly what the session magic looks like
// to it.
func spawnLegacyDaemon(t *testing.T, m *kernel.Machine, port uint16) {
	t.Helper()
	_, err := m.Spawn(kernel.SpawnSpec{UID: 0, Name: "legacyd", Program: func(p *kernel.Process) int {
		lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
		if err != nil {
			return 1
		}
		if err := p.BindPort(lfd, port); err != nil {
			return 1
		}
		if err := p.Listen(lfd, 8); err != nil {
			return 1
		}
		for {
			conn, _, err := p.Accept(lfd)
			if err != nil {
				return 0
			}
			p.Go(func() {
				defer func() { _ = p.Close(conn) }()
				var buf []byte
				for {
					w, _, derr := DecodeWire(buf)
					if derr == nil {
						_ = w
						rep := &Reply{Status: "ok"}
						_, _ = p.Send(conn, rep.Wire().Encode())
						return
					}
					if !errors.Is(derr, ErrWireShort) {
						return // the magic preamble lands here
					}
					data, rerr := p.Recv(conn, 8192)
					if rerr != nil {
						return
					}
					buf = append(buf, data...)
				}
			})
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "legacy daemon listening", func() bool {
		return m.PortBound(kernel.SockStream, port)
	})
}

// TestSessionLegacyFallback: against a peer that only speaks one-shot
// exchanges the session marks itself legacy (after two handshake
// rejections, so one mid-handshake crash does not condemn a peer) and
// calls fail with ErrSessionLegacy so the caller can fall back.
func TestSessionLegacyFallback(t *testing.T) {
	r := newRig(t)
	const legacyPort = 9991
	spawnLegacyDaemon(t, r.red, legacyPort)

	cfg := fastSession()
	cfg.Port = legacyPort
	s := DialSession(r.ctl, "red", cfg)
	defer s.Close()

	waitFor(t, 2*time.Second, "legacy detection", s.Legacy)
	if _, err := s.Call(&WireMsg{Type: TListReq}, time.Second); !errors.Is(err, ErrSessionLegacy) {
		t.Fatalf("call on legacy session: %v, want ErrSessionLegacy", err)
	}
}

// TestSessionCreateAcrossFlap is the transparent re-issue guarantee:
// a create driven through a session while its link flaps lands
// exactly once, and the caller gets the reply.
func TestSessionCreateAcrossFlap(t *testing.T) {
	r := newRig(t)
	r.pingOn(r.green)
	s := DialSession(r.ctl, "green", fastSession())
	defer s.Close()

	if rep, err := s.Call(&WireMsg{Type: TListReq}, time.Second); err != nil || !rep.OK() {
		t.Fatalf("list before flap: %v", err)
	}

	n, err := r.c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition(r.yellow.PrimaryHostID(), r.green.PrimaryHostID())

	req := &CreateReq{Filename: "/bin/ping", UID: testUID, Token: "flap-green-0"}
	done := make(chan error, 1)
	go func() {
		rep, err := SessionExchange(s, req.Wire(), RetryPolicy{
			MaxAttempts: 50, BaseDelay: 5 * time.Millisecond,
			MaxDelay: 10 * time.Millisecond, ReplyTimeout: 250 * time.Millisecond,
		})
		if err == nil && !rep.OK() {
			err = errors.New(rep.Status)
		}
		done <- err
	}()

	time.Sleep(30 * time.Millisecond)
	n.Heal()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("create across flap: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("create never completed after heal")
	}
	if got := pingCount(r.green); got != 1 {
		t.Fatalf("%d ping processes after flap, want exactly 1", got)
	}
	if hist := s.History(); !hasStateSubsequence(hist, StateUp, StateSuspect) {
		t.Fatalf("history %v shows no suspect during the flap", hist)
	}
	waitFor(t, 2*time.Second, "session back up after heal", func() bool {
		return s.State() == StateUp
	})
}

// TestSessionDownFailsFast: a call against a down session (here held
// off by the open circuit breaker) triggers an immediate demand-probe
// dial and fails with the retryable ErrSessionDown as soon as the
// dial does — it never sits out its reply deadline.
func TestSessionDownFailsFast(t *testing.T) {
	r := newRig(t)
	n, err := r.c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition(r.yellow.PrimaryHostID(), r.red.PrimaryHostID())

	cfg := fastSession()
	cfg.DownAfter = 2
	cfg.CircuitAfter = 3
	cfg.CircuitHold = 300 * time.Millisecond
	cfg.Backoff = RetryPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 4 * time.Millisecond}
	s := DialSession(r.ctl, "red", cfg)
	defer s.Close()

	waitFor(t, 2*time.Second, "session down across partition", func() bool {
		return s.State() == StateDown
	})
	time.Sleep(50 * time.Millisecond) // well inside a breaker hold-off
	start := time.Now()
	_, err = s.Call(&WireMsg{Type: TListReq}, 5*time.Second)
	if !errors.Is(err, ErrSessionDown) {
		t.Fatalf("call while held off: %v, want ErrSessionDown", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("call against down session took %v — it waited instead of failing fast", elapsed)
	}
	if !transientExchangeErr(err) {
		t.Fatal("ErrSessionDown must be retryable")
	}

	n.Heal()
	waitFor(t, 3*time.Second, "session recovers after heal", func() bool {
		return s.State() == StateUp
	})
}
