// Package daemon implements the meterdaemon and the controller↔daemon
// communication protocol of the paper (section 3.5).
//
// A meterdaemon runs on each machine that supports the measurement
// system; its sole purpose is to carry out control functions for the
// controller: creating processes (suspended, with their metering and
// standard I/O wired up), setting meter flags, starting, stopping and
// killing processes, acquiring already-running processes for metering,
// and reporting state changes back to the controller. Exchanges are
// structured as remote procedure calls over a temporary stream
// connection per request (section 3.5.1). As an extension, the same
// messages can ride a persistent multiplexed session — one supervised
// connection per machine with heartbeats and reconnect — framed as in
// frame.go and supervised as in session.go; the daemon sniffs the
// first bytes of each accepted connection and serves either protocol
// (docs/controlplane.md).
package daemon

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
)

// MsgType identifies a controller/daemon message. The numbering is
// anchored by Figure 3.6, which shows type 11 for the create request
// and type 18 for the create reply; the other requests and replies
// fill the ranges around those two.
type MsgType uint32

// Protocol message types.
const (
	TCreateReq   MsgType = 11
	TSetFlagsReq MsgType = 12
	TStartReq    MsgType = 13
	TStopReq     MsgType = 14
	TKillReq     MsgType = 15
	TAcquireReq  MsgType = 16
	TGetFileReq  MsgType = 17
	TCreateRep   MsgType = 18
	TSetFlagsRep MsgType = 19
	TStartRep    MsgType = 20
	TStopRep     MsgType = 21
	TKillRep     MsgType = 22
	TAcquireRep  MsgType = 23
	TGetFileRep  MsgType = 24
	// TStateChange is the one daemon-initiated message: sent to the
	// controller's notification socket when a child process changes
	// state (section 3.5.1).
	TStateChange MsgType = 25
	// TIOData forwards a process's standard output to its controller
	// through the daemon gateway (section 3.5.2).
	TIOData MsgType = 26
	// TReleaseReq/TReleaseRep take down a process's meter connection:
	// "When an acquired process is removed, the control program
	// insures that the filter connection of that process is taken down
	// ... but the process continues to execute" (section 4.3).
	TReleaseReq MsgType = 27
	TReleaseRep MsgType = 28
	// TListReq/TListRep enumerate a machine's processes — an extension
	// beyond the paper's protocol, needed so a user can discover the
	// process identifier the acquire command requires.
	TListReq MsgType = 29
	TListRep MsgType = 30
	// TStdinReq/TStdinRep carry user input to a process's standard
	// input — the reverse of the output path: "The reverse path is
	// traversed when sending standard input from the user to the
	// process" (section 3.5.2).
	TStdinReq MsgType = 31
	TStdinRep MsgType = 32
	// TQueryReq/TQueryRep run a selection-rule query against an event
	// store on the daemon's machine. The query executes where the data
	// lives; only the matching records and the scan statistics travel
	// back — the opposite of getfile's ship-the-whole-log discipline.
	TQueryReq MsgType = 33
	TQueryRep MsgType = 34
	// TStatsReq/TStatsRep fetch the machine's metrics registry — the
	// monitor monitoring itself. The reply's Data carries a versioned
	// binary obs.Snapshot (merge-able histograms), so the controller can
	// aggregate the cluster's stats without the daemon knowing which
	// metrics exist.
	TStatsReq MsgType = 35
	TStatsRep MsgType = 36
	// TAggReq/TAggRep run an aggregate query (group-by, windows, top-k)
	// against an event store on the daemon's machine — the aggregation
	// push-down path. The daemon folds matching records into one bounded
	// partial aggregate; the reply's Data carries the agg binary partial
	// (docs/query.md), kilobytes where TQueryRep would ship every record.
	// Partials merge associatively, so the controller folds per-machine
	// replies in arrival order.
	TAggReq MsgType = 37
	TAggRep MsgType = 38
)

var typeNames = map[MsgType]string{
	TCreateReq: "create request", TCreateRep: "create reply",
	TSetFlagsReq: "setflags request", TSetFlagsRep: "setflags reply",
	TStartReq: "start request", TStartRep: "start reply",
	TStopReq: "stop request", TStopRep: "stop reply",
	TKillReq: "kill request", TKillRep: "kill reply",
	TAcquireReq: "acquire request", TAcquireRep: "acquire reply",
	TGetFileReq: "getfile request", TGetFileRep: "getfile reply",
	TStateChange: "state change", TIOData: "io data",
	TReleaseReq: "release request", TReleaseRep: "release reply",
	TListReq: "list request", TListRep: "list reply",
	TStdinReq: "stdin request", TStdinRep: "stdin reply",
	TQueryReq: "query request", TQueryRep: "query reply",
	TStatsReq: "stats request", TStatsRep: "stats reply",
	TAggReq: "agg request", TAggRep: "agg reply",
}

func (t MsgType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("type(%d)", uint32(t))
}

// WireMsg is one protocol message: a type and a variable-format body,
// carried as a list of fields (Figure 3.6: "The remainder of the
// message, the body, is variable format and depends on the message
// type").
type WireMsg struct {
	Type   MsgType
	Fields []string
}

// Errors from wire decoding.
var (
	ErrWireShort   = errors.New("daemon: incomplete wire message")
	ErrWireCorrupt = errors.New("daemon: corrupt wire message")
)

// maxWireSize bounds one message (a getlog reply carries a whole trace
// file).
const maxWireSize = 16 << 20

// Encode serializes the message: total size, type, field count, then
// length-prefixed fields.
func (w *WireMsg) Encode() []byte {
	size := 12
	for _, f := range w.Fields {
		size += 4 + len(f)
	}
	b := make([]byte, 0, size)
	le := binary.LittleEndian
	b = le.AppendUint32(b, uint32(size))
	b = le.AppendUint32(b, uint32(w.Type))
	b = le.AppendUint32(b, uint32(len(w.Fields)))
	for _, f := range w.Fields {
		b = le.AppendUint32(b, uint32(len(f)))
		b = append(b, f...)
	}
	return b
}

// DecodeWire parses one message from the front of buf, returning the
// bytes consumed. ErrWireShort means more bytes are needed.
func DecodeWire(buf []byte) (*WireMsg, int, error) {
	le := binary.LittleEndian
	if len(buf) < 12 {
		return nil, 0, ErrWireShort
	}
	size := int(le.Uint32(buf[0:4]))
	if size < 12 || size > maxWireSize {
		return nil, 0, fmt.Errorf("%w: size %d", ErrWireCorrupt, size)
	}
	if len(buf) < size {
		return nil, 0, ErrWireShort
	}
	w := &WireMsg{Type: MsgType(le.Uint32(buf[4:8]))}
	count := int(le.Uint32(buf[8:12]))
	if count < 0 || count > 1<<16 {
		return nil, 0, fmt.Errorf("%w: field count %d", ErrWireCorrupt, count)
	}
	off := 12
	for i := 0; i < count; i++ {
		if off+4 > size {
			return nil, 0, fmt.Errorf("%w: truncated field %d", ErrWireCorrupt, i)
		}
		flen := int(le.Uint32(buf[off : off+4]))
		off += 4
		if flen < 0 || off+flen > size {
			return nil, 0, fmt.Errorf("%w: field %d overruns message", ErrWireCorrupt, i)
		}
		w.Fields = append(w.Fields, string(buf[off:off+flen]))
		off += flen
	}
	if off != size {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrWireCorrupt, size-off)
	}
	return w, size, nil
}

// field accessors with bounds checking.

func (w *WireMsg) str(i int) string {
	if i < len(w.Fields) {
		return w.Fields[i]
	}
	return ""
}

func (w *WireMsg) num(i int) int {
	v, _ := strconv.Atoi(w.str(i))
	return v
}

// CreateReq mirrors Figure 3.6's create request body: filename,
// parameter count + list, filter port, filter host, meter flags,
// control port, control host — plus the requesting uid and an optional
// stdin file (section 3.5.2's input redirection).
type CreateReq struct {
	Filename    string
	Params      []string
	FilterPort  uint16
	FilterHost  string
	MeterFlags  uint32
	ControlPort uint16
	ControlHost string
	UID         int
	StdinFile   string
	// Token is an idempotency key: a daemon that has already executed a
	// create with this token returns the original reply instead of
	// creating a second process. Controllers set it so a create retried
	// after a lost reply cannot double-create. It rides as a trailing
	// field, which old parsers ignore and old encoders omit.
	Token string
}

// Wire encodes the request.
func (r *CreateReq) Wire() *WireMsg {
	fields := []string{
		r.Filename,
		strconv.Itoa(len(r.Params)),
	}
	fields = append(fields, r.Params...)
	fields = append(fields,
		strconv.Itoa(int(r.FilterPort)),
		r.FilterHost,
		strconv.FormatUint(uint64(r.MeterFlags), 10),
		strconv.Itoa(int(r.ControlPort)),
		r.ControlHost,
		strconv.Itoa(r.UID),
		r.StdinFile,
		r.Token,
	)
	return &WireMsg{Type: TCreateReq, Fields: fields}
}

// ParseCreateReq decodes a create request body.
func ParseCreateReq(w *WireMsg) (*CreateReq, error) {
	if w.Type != TCreateReq {
		return nil, fmt.Errorf("%w: not a create request", ErrWireCorrupt)
	}
	n := w.num(1)
	if n < 0 || 2+n+7 > len(w.Fields) {
		return nil, fmt.Errorf("%w: bad parameter count", ErrWireCorrupt)
	}
	r := &CreateReq{Filename: w.str(0)}
	r.Params = append(r.Params, w.Fields[2:2+n]...)
	base := 2 + n
	r.FilterPort = uint16(w.num(base))
	r.FilterHost = w.str(base + 1)
	flags, _ := strconv.ParseUint(w.str(base+2), 10, 32)
	r.MeterFlags = uint32(flags)
	r.ControlPort = uint16(w.num(base + 3))
	r.ControlHost = w.str(base + 4)
	r.UID = w.num(base + 5)
	r.StdinFile = w.str(base + 6)
	r.Token = w.str(base + 7)
	return r, nil
}

// Reply is the common reply shape: Figure 3.6's create reply carries
// pid and status; the other replies carry a status and, for getfile,
// the file contents.
type Reply struct {
	Type   MsgType
	PID    int
	Status string // "ok" or an error description
	Data   string // getfile contents
	// Aux carries reply-type-specific extra data as a trailing wire
	// field old parsers ignore. An incremental getfile reply uses it
	// for the CRC of the file prefix the requested offset skipped, so
	// the requester can detect an in-place rewrite.
	Aux string
}

// OK reports whether the reply indicates success.
func (r *Reply) OK() bool { return r.Status == "ok" }

// Wire encodes the reply.
func (r *Reply) Wire() *WireMsg {
	return &WireMsg{Type: r.Type, Fields: []string{strconv.Itoa(r.PID), r.Status, r.Data, r.Aux}}
}

// ParseReply decodes any reply-shaped message.
func ParseReply(w *WireMsg) *Reply {
	return &Reply{Type: w.Type, PID: w.num(0), Status: w.str(1), Data: w.str(2), Aux: w.str(3)}
}

// ProcReq is the common request shape for setflags, start, stop, kill,
// acquire, and getfile: a target (pid or path), the requesting uid,
// and for setflags/acquire the flags and filter coordinates.
type ProcReq struct {
	Type       MsgType
	PID        int
	UID        int
	Flags      uint32
	FilterPort uint16
	FilterHost string
	Path       string // getfile
	// Offset is the byte offset a getfile request resumes from, so
	// repeated retrievals of a growing log transfer only the new bytes.
	// It rides as a trailing field old parsers ignore (and old encoders
	// omit, which reads as zero: a full transfer).
	Offset int
}

// Wire encodes the request.
func (r *ProcReq) Wire() *WireMsg {
	return &WireMsg{Type: r.Type, Fields: []string{
		strconv.Itoa(r.PID),
		strconv.Itoa(r.UID),
		strconv.FormatUint(uint64(r.Flags), 10),
		strconv.Itoa(int(r.FilterPort)),
		r.FilterHost,
		r.Path,
		strconv.Itoa(r.Offset),
	}}
}

// ParseProcReq decodes a process-targeted request.
func ParseProcReq(w *WireMsg) *ProcReq {
	flags, _ := strconv.ParseUint(w.str(2), 10, 32)
	return &ProcReq{
		Type:       w.Type,
		PID:        w.num(0),
		UID:        w.num(1),
		Flags:      uint32(flags),
		FilterPort: uint16(w.num(3)),
		FilterHost: w.str(4),
		Path:       w.str(5),
		Offset:     w.num(6),
	}
}

// QueryReq asks a daemon to run a selection-rule query against an
// event store on its machine. Rules use the Figure 3.3–3.4 templates
// syntax, one rule per line. The reply's Data carries one statistics
// line ("segments=... scanned=... pruned=... records=... matched=...")
// followed by the matching records in standard log-line format.
type QueryReq struct {
	Dir     string // store directory on the daemon's machine
	Rules   string // selection rules; empty selects everything
	UID     int
	NoPrune bool // diagnostic: scan every segment
	Workers int  // segment-scan parallelism; 0 or 1 is sequential
}

// Wire encodes the request. Workers rides as a trailing field: an old
// daemon ignores it, and a new daemon parsing an old request reads the
// missing field as zero (sequential), so the knob is compatible in
// both directions.
func (r *QueryReq) Wire() *WireMsg {
	noPrune := "0"
	if r.NoPrune {
		noPrune = "1"
	}
	return &WireMsg{Type: TQueryReq, Fields: []string{
		r.Dir, r.Rules, strconv.Itoa(r.UID), noPrune, strconv.Itoa(r.Workers),
	}}
}

// ParseQueryReq decodes a query request body.
func ParseQueryReq(w *WireMsg) (*QueryReq, error) {
	if w.Type != TQueryReq {
		return nil, fmt.Errorf("%w: not a query request", ErrWireCorrupt)
	}
	return &QueryReq{
		Dir:     w.str(0),
		Rules:   w.str(1),
		UID:     w.num(2),
		NoPrune: w.str(3) == "1",
		Workers: w.num(4),
	}, nil
}

// AggReq asks a daemon to run an aggregate query against an event
// store on its machine. Rules use the Figure 3.3–3.4 templates syntax;
// Spec is one aggregate line in the extended syntax ("agg ..." or
// "top ..."). The reply's Data carries the binary partial aggregate
// and its Aux the scan-statistics line.
type AggReq struct {
	Dir     string // store directory on the daemon's machine
	Rules   string // selection rules; empty selects everything
	Spec    string // aggregate specification line
	UID     int
	NoPrune bool // diagnostic: scan every segment
	Workers int  // segment-fold parallelism; 0 or 1 is sequential
}

// Wire encodes the request, Workers trailing as in QueryReq.
func (r *AggReq) Wire() *WireMsg {
	noPrune := "0"
	if r.NoPrune {
		noPrune = "1"
	}
	return &WireMsg{Type: TAggReq, Fields: []string{
		r.Dir, r.Rules, r.Spec, strconv.Itoa(r.UID), noPrune, strconv.Itoa(r.Workers),
	}}
}

// ParseAggReq decodes an aggregate query request body.
func ParseAggReq(w *WireMsg) (*AggReq, error) {
	if w.Type != TAggReq {
		return nil, fmt.Errorf("%w: not an agg request", ErrWireCorrupt)
	}
	return &AggReq{
		Dir:     w.str(0),
		Rules:   w.str(1),
		Spec:    w.str(2),
		UID:     w.num(3),
		NoPrune: w.str(4) == "1",
		Workers: w.num(5),
	}, nil
}

// StatsReq asks a daemon for a snapshot of its machine's metrics
// registry. The reply's Data carries the obs binary snapshot format,
// which is itself versioned and trailing-tolerant, so the wire message
// needs no fields beyond the requester's uid.
type StatsReq struct {
	UID int
}

// Wire encodes the request.
func (r *StatsReq) Wire() *WireMsg {
	return &WireMsg{Type: TStatsReq, Fields: []string{strconv.Itoa(r.UID)}}
}

// ParseStatsReq decodes a stats request body. Extra trailing fields —
// what a future controller might append, in the QueryReq-field-5
// discipline — are ignored.
func ParseStatsReq(w *WireMsg) (*StatsReq, error) {
	if w.Type != TStatsReq {
		return nil, fmt.Errorf("%w: not a stats request", ErrWireCorrupt)
	}
	return &StatsReq{UID: w.num(0)}, nil
}

// StateChange is the daemon-initiated notification that a process has
// terminated (or otherwise changed state).
type StateChange struct {
	Machine string
	PID     int
	Reason  string
	Status  int
}

// Wire encodes the notification.
func (s *StateChange) Wire() *WireMsg {
	return &WireMsg{Type: TStateChange, Fields: []string{
		s.Machine, strconv.Itoa(s.PID), s.Reason, strconv.Itoa(s.Status),
	}}
}

// ParseStateChange decodes a state change notification.
func ParseStateChange(w *WireMsg) *StateChange {
	return &StateChange{Machine: w.str(0), PID: w.num(1), Reason: w.str(2), Status: w.num(3)}
}

// IOData is a chunk of a process's standard output forwarded to the
// controller.
type IOData struct {
	Machine string
	PID     int
	Data    string
}

// Wire encodes the chunk.
func (d *IOData) Wire() *WireMsg {
	return &WireMsg{Type: TIOData, Fields: []string{d.Machine, strconv.Itoa(d.PID), d.Data}}
}

// ParseIOData decodes a forwarded output chunk.
func ParseIOData(w *WireMsg) *IOData {
	return &IOData{Machine: w.str(0), PID: w.num(1), Data: w.str(2)}
}
