package daemon

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFigure36TypeCodes(t *testing.T) {
	// Figure 3.6 shows "11: create request" and "18: create reply".
	if TCreateReq != 11 {
		t.Errorf("TCreateReq = %d, want 11", TCreateReq)
	}
	if TCreateRep != 18 {
		t.Errorf("TCreateRep = %d, want 18", TCreateRep)
	}
}

func TestWireRoundTrip(t *testing.T) {
	w := &WireMsg{Type: TCreateReq, Fields: []string{"a", "", "third field with spaces"}}
	enc := w.Encode()
	got, n, err := DecodeWire(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatalf("round trip: %+v != %+v", got, w)
	}
}

func TestWireShort(t *testing.T) {
	w := &WireMsg{Type: TStartReq, Fields: []string{"123"}}
	enc := w.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeWire(enc[:cut]); !errors.Is(err, ErrWireShort) {
			t.Fatalf("cut %d: err = %v, want ErrWireShort", cut, err)
		}
	}
}

func TestWireCorrupt(t *testing.T) {
	w := &WireMsg{Type: TStartReq, Fields: []string{"123"}}
	enc := w.Encode()
	enc[0] = 5 // size below minimum
	enc[1], enc[2], enc[3] = 0, 0, 0
	if _, _, err := DecodeWire(enc); !errors.Is(err, ErrWireCorrupt) {
		t.Fatalf("err = %v, want ErrWireCorrupt", err)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(typ uint8, fields []string) bool {
		w := &WireMsg{Type: MsgType(typ), Fields: fields}
		got, n, err := DecodeWire(w.Encode())
		if err != nil || n != len(w.Encode()) {
			return false
		}
		if len(fields) == 0 {
			return len(got.Fields) == 0
		}
		return reflect.DeepEqual(got.Fields, fields)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCreateReqRoundTrip(t *testing.T) {
	req := &CreateReq{
		Filename:    "/bin/worker",
		Params:      []string{"p1", "p2", "p3"},
		FilterPort:  9000,
		FilterHost:  "blue",
		MeterFlags:  0x2ff,
		ControlPort: 7700,
		ControlHost: "yellow",
		UID:         100,
		StdinFile:   "/tmp/in",
	}
	got, err := ParseCreateReq(req.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
	}
}

func TestCreateReqNoParams(t *testing.T) {
	req := &CreateReq{Filename: "/bin/x", UID: 1}
	got, err := ParseCreateReq(req.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if got.Filename != "/bin/x" || len(got.Params) != 0 || got.UID != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestParseCreateReqWrongType(t *testing.T) {
	if _, err := ParseCreateReq(&WireMsg{Type: TStartReq}); err == nil {
		t.Fatal("wrong type accepted")
	}
}

func TestParseCreateReqTruncated(t *testing.T) {
	w := &WireMsg{Type: TCreateReq, Fields: []string{"/bin/x", "5", "only-one-param"}}
	if _, err := ParseCreateReq(w); err == nil {
		t.Fatal("truncated parameter list accepted")
	}
}

func TestProcReqRoundTrip(t *testing.T) {
	req := &ProcReq{Type: TAcquireReq, PID: 42, UID: 7, Flags: 0x1ff, FilterPort: 900, FilterHost: "blue", Path: "/usr/tmp/f1.log"}
	got := ParseProcReq(req.Wire())
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
	}
}

func TestQueryReqRoundTrip(t *testing.T) {
	req := &QueryReq{Dir: "/usr/tmp/f1.store", Rules: "machine=2,cpuTime>=100\n", UID: 7, NoPrune: true, Workers: 8}
	got, err := ParseQueryReq(req.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
	}
	// A request from an old peer lacks the trailing Workers field; it
	// must parse as sequential, not fail.
	old := req.Wire()
	old.Fields = old.Fields[:4]
	got, err = ParseQueryReq(old)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 0 || got.Dir != req.Dir || !got.NoPrune {
		t.Fatalf("legacy parse: %+v", got)
	}
}

func TestAggReqRoundTrip(t *testing.T) {
	req := &AggReq{
		Dir: "/usr/tmp/f1.store", Rules: "machine=2,cpuTime>=100\n",
		Spec: "agg sum(msgLength) by machine window 1s",
		UID:  7, NoPrune: true, Workers: 8,
	}
	got, err := ParseAggReq(req.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
	}
	// A request from an old peer lacks the trailing Workers field; it
	// must parse as sequential, not fail — the QueryReq discipline.
	old := req.Wire()
	old.Fields = old.Fields[:5]
	got, err = ParseAggReq(old)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 0 || got.Spec != req.Spec || !got.NoPrune {
		t.Fatalf("legacy parse: %+v", got)
	}
	if _, err := ParseAggReq(&WireMsg{Type: TQueryReq}); err == nil {
		t.Fatal("wrong type accepted")
	}
}

func TestStatsReqRoundTrip(t *testing.T) {
	req := &StatsReq{UID: 42}
	got, err := ParseStatsReq(req.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
	}
	// A request from a newer peer may carry trailing fields this version
	// does not know; they must be ignored, not rejected — the same
	// discipline QueryReq applies to its optional Workers field.
	future := req.Wire()
	future.Fields = append(future.Fields, "some-future-field")
	got, err = ParseStatsReq(future)
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != 42 {
		t.Fatalf("future parse: %+v", got)
	}
	// The wrong message type is rejected; a malformed numeric field
	// degrades to zero, the same lenient convention every other parser
	// in this file follows.
	if _, err := ParseStatsReq(&WireMsg{Type: TListReq, Fields: []string{"1"}}); err == nil {
		t.Fatal("wrong type accepted")
	}
	got, err = ParseStatsReq(&WireMsg{Type: TStatsReq, Fields: []string{"bogus"}})
	if err != nil || got.UID != 0 {
		t.Fatalf("malformed uid: got %+v, err %v", got, err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	rep := &Reply{Type: TGetFileRep, PID: 9, Status: "ok", Data: "file contents\nline 2"}
	got := ParseReply(rep.Wire())
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip: %+v != %+v", got, rep)
	}
	if !rep.OK() {
		t.Fatal("OK() = false for ok reply")
	}
	if (&Reply{Status: "nope"}).OK() {
		t.Fatal("OK() = true for failed reply")
	}
}

func TestStateChangeRoundTrip(t *testing.T) {
	sc := &StateChange{Machine: "red", PID: 2120, Reason: "normal", Status: 0}
	got := ParseStateChange(sc.Wire())
	if !reflect.DeepEqual(got, sc) {
		t.Fatalf("round trip: %+v != %+v", got, sc)
	}
}

func TestIODataRoundTrip(t *testing.T) {
	d := &IOData{Machine: "green", PID: 5, Data: "output line\n"}
	got := ParseIOData(d.Wire())
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip: %+v != %+v", got, d)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if TCreateReq.String() != "create request" || TCreateRep.String() != "create reply" {
		t.Fatal("figure 3.6 names wrong")
	}
	if MsgType(99).String() != "type(99)" {
		t.Fatalf("unknown = %q", MsgType(99).String())
	}
}
