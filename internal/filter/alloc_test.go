package filter

import (
	"testing"

	"dpm/internal/meter"
)

// These tests lock in the zero-allocation guarantee of the filter hot
// path: extraction, selection, and formatting of a record must not
// touch the heap once buffers are warm. They are regression gates — CI
// fails if an allocation creeps back in.

func allocStream(n int) []byte {
	var stream []byte
	dest := meter.InetName(228320140, 512)
	for i := 0; i < n; i++ {
		m := meter.Msg{
			Header: meter.Header{Machine: uint16(i % 4), CPUTime: uint32(100 * i), ProcTime: uint32(i)},
			Body:   &meter.Send{PID: uint32(i), PC: 0x400, Sock: 3, MsgLength: uint32(64 + i), DestNameLen: 16, DestName: dest},
		}
		stream = m.AppendEncode(stream)
	}
	return stream
}

func TestExtractSelectFormatZeroAllocs(t *testing.T) {
	d, err := ParseDescriptions([]byte(StandardDescriptions))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules([]byte("machine=1, cpuTime<100000, msgLength=#*\npid>=0\n"))
	if err != nil {
		t.Fatal(err)
	}
	prog := CompileProgram(d, rs)
	raw := allocStream(1)
	rec := &Record{}
	pl, err := prog.ExtractInto(rec, raw)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, 1024)

	if n := testing.AllocsPerRun(200, func() {
		if _, err := prog.ExtractInto(rec, raw); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ExtractInto allocates %v per record, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		pl.selectRec(rec)
	}); n != 0 {
		t.Fatalf("selectRec allocates %v per record, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		dst = rec.AppendFormat(dst[:0], 1)
	}); n != 0 {
		t.Fatalf("AppendFormat allocates %v per record, want 0", n)
	}
}

func TestProcessBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; allocation gate runs in the non-race pass")
	}
	eng, err := NewEngine([]byte(StandardDescriptions), []byte("machine>=0, msgLength=#*\n"))
	if err != nil {
		t.Fatal(err)
	}
	stream := allocStream(16)
	var batch Batch
	// Warm the batch and pool so every buffer reaches steady-state
	// capacity.
	if _, err := eng.ProcessBatch(stream, &batch); err != nil {
		t.Fatal(err)
	}
	batch.StoreRecs()

	if n := testing.AllocsPerRun(100, func() {
		batch.Reset()
		rest, err := eng.ProcessBatch(stream, &batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatal("stream not fully consumed")
		}
		batch.StoreRecs()
	}); n != 0 {
		t.Fatalf("ProcessBatch allocates %v per 16-record flush, want 0", n)
	}
}

// TestProcessEachZeroAllocs gates the per-record callback path — the
// one Process and the parallel pipeline's workers run — at zero heap
// allocations per record once the shared line buffer is warm.
func TestProcessEachZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; allocation gate runs in the non-race pass")
	}
	eng, err := NewEngine([]byte(StandardDescriptions), []byte("machine>=0, msgLength=#*\n"))
	if err != nil {
		t.Fatal(err)
	}
	stream := allocStream(16)
	emitted := 0
	emit := func(_ *Record, line []byte) {
		if len(line) == 0 {
			t.Fatal("empty line emitted")
		}
		emitted++
	}
	// Warm the pooled record and the engine's line buffer.
	if _, err := eng.ProcessEach(stream, emit); err != nil {
		t.Fatal(err)
	}
	if emitted != 16 {
		t.Fatalf("emitted %d records, want 16", emitted)
	}

	if n := testing.AllocsPerRun(100, func() {
		rest, err := eng.ProcessEach(stream, emit)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatal("stream not fully consumed")
		}
	}); n != 0 {
		t.Fatalf("ProcessEach allocates %v per 16-record stream, want 0", n)
	}
}

// TestRulesSelectNoDiscardNoAlloc guards the interpreter-side fix:
// a matching rule without '#' conditions must not allocate a discard
// map per record.
func TestRulesSelectNoDiscardNoAlloc(t *testing.T) {
	d, err := ParseDescriptions([]byte(StandardDescriptions))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules([]byte("machine>=0\n"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := d.Extract(allocStream(1))
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		keep, discards := rs.Select(rec)
		if !keep || discards != nil {
			t.Fatal("unexpected selection result")
		}
	}); n != 0 {
		t.Fatalf("Select allocates %v per record with no discards, want 0", n)
	}
}

// TestBufferAddSteadyStateZeroAllocs guards the meter buffer's batch
// recycling: once the pending and spare buffers are grown, Add and the
// flush cycle allocate nothing.
func TestBufferAddSteadyStateZeroAllocs(t *testing.T) {
	b := meter.NewBuffer(8, func([]byte) {})
	m := &meter.Msg{Header: meter.Header{Machine: 1}, Body: &meter.Fork{PID: 9, NewPID: 10}}
	for i := 0; i < 32; i++ {
		b.Add(m, false)
	}
	if n := testing.AllocsPerRun(160, func() {
		b.Add(m, false)
	}); n != 0 {
		t.Fatalf("Buffer.Add allocates %v per message at steady state, want 0", n)
	}
}
