package filter

import (
	"fmt"

	"dpm/internal/meter"
)

// This file compiles Descriptions + Rules into an index-based program,
// the filter's steady-state hot path. The interpreter in rules.go
// resolves every field by string name per record and allocates a
// discard map per match; the compiled form resolves each condition's
// field references to integer slots once, at filter start, and
// represents discard sets as per-rule bitmasks. Selection then runs
// against the extracted record with no map, no string comparison, and
// no allocation. The interpreter remains the semantic reference: the
// equivalence tests in compile_test.go prove the two agree
// byte-for-byte across the Figure 3.3–3.4 operator matrix.

// Field slots. The five header fields get fixed slots; an event's body
// fields follow in description order.
const (
	slotSize = iota
	slotMachine
	slotCPUTime
	slotProcTime
	slotType
	numHeaderSlots
)

// slotVal reads a slot's numeric value from an extracted record.
// Body-field slots index Fields directly; name fields yield their
// numeric Value, exactly as Record.Field does.
func (r *Record) slotVal(slot int32) uint64 {
	switch slot {
	case slotSize:
		return uint64(r.Size)
	case slotMachine:
		return uint64(r.Machine)
	case slotCPUTime:
		return uint64(r.CPUTime)
	case slotProcTime:
		return uint64(r.ProcTime)
	case slotType:
		return uint64(r.Type)
	}
	return r.Fields[slot-numHeaderSlots].Value
}

// slotOf resolves a field name against an event description: header
// names first (they shadow body fields, as in Record.Field), then body
// fields in order. isName reports a 16-byte socket-name field.
func slotOf(ev *EventDesc, name string) (slot int32, isName, ok bool) {
	switch name {
	case "size":
		return slotSize, false, true
	case "machine":
		return slotMachine, false, true
	case "cpuTime":
		return slotCPUTime, false, true
	case "procTime":
		return slotProcTime, false, true
	case "type", "traceType":
		return slotType, false, true
	}
	for i := range ev.Fields {
		if ev.Fields[i].Name == name {
			return int32(numHeaderSlots + i), ev.Fields[i].Length == meter.NameSize, true
		}
	}
	return 0, false, false
}

// condKind discriminates the compiled condition forms. Wildcards on
// present fields and name comparisons under operators other than = and
// != always pass and compile away entirely.
type condKind uint8

const (
	condNum    condKind = iota // slot op literal value
	condNumRef                 // slot op refSlot (numeric values)
	condNameEQ                 // Fields[slot] and Fields[refSlot] 16-byte equal
	condNameNE                 // ... not equal
)

// progCond is one compiled condition.
type progCond struct {
	kind    condKind
	op      Op
	slot    int32 // left-hand slot (body-field index for name compares)
	refSlot int32
	value   uint64
}

// progRule is one rule compiled against one event type.
type progRule struct {
	// never marks a rule that cannot match this event type — it
	// references a field the type does not carry.
	never bool
	conds []progCond
	// mask is the rule's discard set over the event's body fields (bit
	// i drops Fields[i]); header-field discards are no-ops in Format
	// and are dropped here too.
	mask uint64
	// discards carries the interpreter-form discard set for the rare
	// wide event type (>64 body fields) the mask cannot represent.
	discards map[string]bool
}

// eventPlan is the compiled program for one event type.
type eventPlan struct {
	ev *EventDesc
	// wide marks an event description with more than 64 body fields;
	// formatting then falls back to the interpreter's map-based
	// discards (selection still runs compiled).
	wide bool
	// pidIdx is the body-field index of "pid" (-1 when the type does
	// not carry one), resolved once so the store metadata extraction
	// needs no name lookup.
	pidIdx int
	// tapInfo is the precomputed index table record taps read through
	// (tap.go), resolved here for the same no-lookup-on-hot-path reason
	// as pidIdx.
	tapInfo TapInfo
	rules   []progRule
}

// Program is a rule set compiled against a description set: one
// eventPlan per described event type.
type Program struct {
	desc  *Descriptions
	rules Rules
	// plans is dense, indexed by event type, when types are small;
	// planMap is the fallback for outlandish type numbers.
	plans   []*eventPlan
	planMap map[meter.Type]*eventPlan
}

// maxDensePlanType bounds the dense plan table; standard types are
// 1..10, so this is generous while keeping a hostile descriptions file
// from inflating the table.
const maxDensePlanType = 4096

// CompileProgram compiles rules against descriptions. Compilation
// cannot fail: a rule referencing a field an event type lacks simply
// never matches that type, exactly as in the interpreter.
func CompileProgram(d *Descriptions, rs Rules) *Program {
	p := &Program{desc: d, rules: rs}
	maxType := meter.Type(0)
	dense := true
	for t := range d.events {
		if t > maxType {
			maxType = t
		}
		if t >= maxDensePlanType {
			dense = false
		}
	}
	if dense {
		p.plans = make([]*eventPlan, maxType+1)
	} else {
		p.planMap = make(map[meter.Type]*eventPlan, len(d.events))
	}
	for t, ev := range d.events {
		pl := compilePlan(ev, rs)
		if dense {
			p.plans[t] = pl
		} else {
			p.planMap[t] = pl
		}
	}
	return p
}

func compilePlan(ev *EventDesc, rs Rules) *eventPlan {
	pl := &eventPlan{ev: ev, wide: len(ev.Fields) > 64, pidIdx: -1, tapInfo: buildTapInfo(ev)}
	for i := range ev.Fields {
		if ev.Fields[i].Name == "pid" {
			pl.pidIdx = i
			break
		}
	}
	for _, r := range rs {
		pl.rules = append(pl.rules, compileRule(ev, r, pl.wide))
	}
	return pl
}

func compileRule(ev *EventDesc, r Rule, wide bool) progRule {
	pr := progRule{}
	for _, c := range r {
		slot, leftName, leftOK := slotOf(ev, c.Field)
		if c.Discard {
			if wide {
				if pr.discards == nil {
					pr.discards = make(map[string]bool)
				}
				pr.discards[c.Field] = true
			} else {
				// Format drops every body field bearing the discarded
				// name (header shadowing does not protect a body field
				// from a same-named discard), so the mask covers them
				// all, not just the slot the name resolves to.
				for i := range ev.Fields {
					if ev.Fields[i].Name == c.Field {
						pr.mask |= 1 << uint(i)
					}
				}
			}
		}
		switch {
		case c.Wildcard:
			// '*' matches any value, but the field must exist.
			if !leftOK {
				pr.never = true
			}
		case c.FieldRef != "":
			refSlot, refName, refOK := slotOf(ev, c.FieldRef)
			if leftOK && leftName {
				// Name-to-name comparison: the peer must also be a
				// name field. Only = and != constrain; the
				// interpreter lets other operators pass.
				if !refOK || !refName {
					pr.never = true
					break
				}
				switch c.Op {
				case OpEQ:
					pr.conds = append(pr.conds, progCond{kind: condNameEQ,
						slot: slot - numHeaderSlots, refSlot: refSlot - numHeaderSlots})
				case OpNE:
					pr.conds = append(pr.conds, progCond{kind: condNameNE,
						slot: slot - numHeaderSlots, refSlot: refSlot - numHeaderSlots})
				}
				break
			}
			if !leftOK || !refOK {
				pr.never = true
				break
			}
			pr.conds = append(pr.conds, progCond{kind: condNumRef, op: c.Op, slot: slot, refSlot: refSlot})
		default:
			if !leftOK {
				pr.never = true
				break
			}
			pr.conds = append(pr.conds, progCond{kind: condNum, op: c.Op, slot: slot, value: c.Value})
		}
		if pr.never {
			// The rule can never match this event type; no point
			// compiling the rest.
			pr.conds = nil
			break
		}
	}
	return pr
}

// match evaluates a compiled rule against a record. Zero allocations.
func (pr *progRule) match(r *Record) bool {
	for i := range pr.conds {
		c := &pr.conds[i]
		switch c.kind {
		case condNum:
			if !c.op.eval(r.slotVal(c.slot), c.value) {
				return false
			}
		case condNumRef:
			if !c.op.eval(r.slotVal(c.slot), r.slotVal(c.refSlot)) {
				return false
			}
		case condNameEQ:
			if r.Fields[c.slot].Addr != r.Fields[c.refSlot].Addr {
				return false
			}
		case condNameNE:
			if r.Fields[c.slot].Addr == r.Fields[c.refSlot].Addr {
				return false
			}
		}
	}
	return true
}

// selectRec decides whether a record is kept and, if so, under which
// rule's discard mask — the compiled counterpart of Rules.Select. With
// no rules at all every record is kept unedited.
func (pl *eventPlan) selectRec(r *Record) (keep bool, rule int) {
	if len(pl.rules) == 0 {
		return true, -1
	}
	for i := range pl.rules {
		pr := &pl.rules[i]
		if pr.never {
			continue
		}
		if pr.match(r) {
			return true, i
		}
	}
	return false, -1
}

// plan returns the compiled plan for an event type, or nil when the
// descriptions do not cover it.
func (p *Program) plan(t meter.Type) *eventPlan {
	if p.plans != nil {
		if int(t) < len(p.plans) {
			return p.plans[t]
		}
		return nil
	}
	return p.planMap[t]
}

// ExtractInto extracts one encoded meter message into a caller-owned
// record and returns the event's compiled plan. It is
// Descriptions.ExtractInto fused with the plan lookup, so the hot path
// touches the type table once per record.
func (p *Program) ExtractInto(rec *Record, raw []byte) (*eventPlan, error) {
	if len(raw) < meter.HeaderSize {
		return nil, fmt.Errorf("filter: message shorter than header (%d bytes)", len(raw))
	}
	rec.Size = uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24
	rec.Machine = uint16(raw[4]) | uint16(raw[5])<<8
	rec.CPUTime = uint32(raw[8]) | uint32(raw[9])<<8 | uint32(raw[10])<<16 | uint32(raw[11])<<24
	rec.ProcTime = uint32(raw[16]) | uint32(raw[17])<<8 | uint32(raw[18])<<16 | uint32(raw[19])<<24
	rec.Type = meter.Type(uint32(raw[20]) | uint32(raw[21])<<8 | uint32(raw[22])<<16 | uint32(raw[23])<<24)
	rec.Fields = rec.Fields[:0]
	pl := p.plan(rec.Type)
	if pl == nil {
		return nil, fmt.Errorf("filter: no description for type %d", rec.Type)
	}
	if err := extractBody(rec, pl.ev, raw[meter.HeaderSize:]); err != nil {
		return nil, err
	}
	return pl, nil
}

// pid returns the record's pid field value under this plan (0 when the
// event type carries none), for store metadata.
func (pl *eventPlan) pid(r *Record) uint32 {
	if pl.pidIdx < 0 {
		return 0
	}
	return uint32(r.Fields[pl.pidIdx].Value)
}
