package filter

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dpm/internal/meter"
)

// The compiled program (compile.go) must select, discard, and format
// byte-identically to the interpreter (rules.go + Record.Format) — the
// interpreter is the semantic reference, the program is the hot path.
// These tests sweep the Figure 3.3–3.4 operator matrix over a message
// corpus covering every standard event type and compare the two
// pipelines record by record.

// corpusMessages builds encoded meter messages spanning every standard
// event type, with header and body values chosen to straddle the rule
// thresholds used in equivalenceRuleSets.
func corpusMessages() [][]byte {
	inetA := meter.InetName(228320140, 512)
	inetB := meter.InetName(228320140, 513)
	unixA := meter.UnixName("/tmp/a")
	unixB := meter.UnixName("/tmp/b")
	var zero meter.Name

	var msgs [][]byte
	add := func(h meter.Header, body meter.Body) {
		m := meter.Msg{Header: h, Body: body}
		msgs = append(msgs, m.AppendEncode(nil))
	}
	headers := []meter.Header{
		{Machine: 5, CPUTime: 900, ProcTime: 30},
		{Machine: 5, CPUTime: 10000, ProcTime: 0},
		{Machine: 2, CPUTime: 123456, ProcTime: 99},
		{Machine: 0, CPUTime: 0, ProcTime: 0},
	}
	for _, h := range headers {
		for _, name := range []meter.Name{inetA, unixA, zero} {
			add(h, &meter.Send{PID: 3, PC: 0x1234, Sock: 4, MsgLength: 512, DestNameLen: 16, DestName: name})
			add(h, &meter.Send{PID: 7, PC: 0, Sock: 1, MsgLength: 511, DestNameLen: 16, DestName: name})
			add(h, &meter.Recv{PID: 3, PC: 8, Sock: 4, MsgLength: 600, SourceNameLen: 16, SourceName: name})
		}
		add(h, &meter.RecvCall{PID: 3, PC: 1, Sock: 4})
		add(h, &meter.SocketCrt{PID: 3, PC: 2, Sock: 4, Domain: 2, SockType: 1, Protocol: 0})
		add(h, &meter.Dup{PID: 3, PC: 3, Sock: 4, NewSock: 5})
		add(h, &meter.Dup{PID: 3, PC: 3, Sock: 6, NewSock: 6})
		add(h, &meter.DestSocket{PID: 3, PC: 4, Sock: 4})
		add(h, &meter.Connect{PID: 3, PC: 5, Sock: 4, SockNameLen: 16, PeerNameLen: 16, SockName: inetA, PeerName: inetB})
		add(h, &meter.Accept{PID: 3, PC: 6, Sock: 4, NewSock: 7, SockNameLen: 16, PeerNameLen: 16, SockName: unixA, PeerName: unixA})
		add(h, &meter.Accept{PID: 3, PC: 6, Sock: 4, NewSock: 7, SockNameLen: 16, PeerNameLen: 16, SockName: unixA, PeerName: unixB})
		add(h, &meter.Fork{PID: 3, PC: 7, NewPID: 44})
		add(h, &meter.TermProc{PID: 3, PC: 9, Status: 1})
	}
	return msgs
}

// equivalenceRuleSets sweeps the operator matrix: every comparison
// operator against literals, the '*' wildcard, numeric and socket-name
// field references, '#' discards (body, name, header, and wildcard
// forms), alternatives, and rules over fields some types lack.
var equivalenceRuleSets = []string{
	"",                                       // no rules: keep everything
	"machine=5, cpuTime<10000",               // Figure 3.3, first rule
	"type=1, msgLength>=512",                 // Figure 3.3, second rule
	"machine=5, cpuTime<10000, msgLength=#*", // Figure 3.4, wildcard discard
	"type=8, sockName=peerName",              // Figure 3.4, name-to-name equality
	"sockName!=peerName",
	"sockName>peerName", // non-EQ/NE name comparison: always passes (interpreter quirk)
	"sockName<=peerName",
	"sock=newSock", // numeric field-to-field
	"pid<newPid",
	"pid=3",
	"pid!=3",
	"pid>3",
	"pid<3",
	"pid>=3",
	"pid<=3",
	"traceType=9",
	"procTime>50",
	"size>=40",
	"msgLength=512",      // field only SEND/RECEIVE carry
	"newSock=*",          // wildcard over a sometimes-missing field
	"sock=missing",       // reference to a nonexistent field: never matches
	"destName=228320140", // name field compared as its Inet host value
	"destName=pid",       // name-to-scalar reference: never matches
	"pid=destName",       // scalar-to-name reference: numeric comparison
	"machine=*, pid=#*",
	"type=1, destName=#*",                // discard a name field
	"machine=#5, cpuTime<10000",          // header discard: a formatting no-op
	"pid=#3, sock=#4",                    // multiple discards in one rule
	"machine=2\nmachine=5, pid>1\npid=7", // alternatives; first match wins discards
	"pid=#3\npid=3",                      // same condition, different discards by order
	"cpuTime>=900, cpuTime<=123456",
}

// interpretStream runs the reference pipeline — Descriptions.Extract,
// Rules.Select, Record.Format — over a frame stream and returns the
// kept lines.
func interpretStream(t *testing.T, d *Descriptions, rs Rules, msgs [][]byte) []string {
	t.Helper()
	var lines []string
	for _, raw := range msgs {
		rec, err := d.Extract(raw)
		if err != nil {
			t.Fatal(err)
		}
		keep, discards := rs.Select(rec)
		if !keep {
			continue
		}
		lines = append(lines, rec.Format(discards))
	}
	return lines
}

func TestCompiledProgramEquivalence(t *testing.T) {
	d, err := ParseDescriptions([]byte(StandardDescriptions))
	if err != nil {
		t.Fatal(err)
	}
	msgs := corpusMessages()
	for _, text := range equivalenceRuleSets {
		rs, err := ParseRules([]byte(text))
		if err != nil {
			t.Fatalf("rules %q: %v", text, err)
		}
		prog := CompileProgram(d, rs)
		want := interpretStream(t, d, rs, msgs)

		// Compiled path, record by record.
		var got []string
		rec := &Record{}
		for i, raw := range msgs {
			pl, err := prog.ExtractInto(rec, raw)
			if err != nil {
				t.Fatalf("rules %q msg %d: %v", text, i, err)
			}
			ikeep, irule := rs.SelectSource(rec)
			keep, rule := pl.selectRec(rec)
			if keep != ikeep || rule != irule {
				t.Fatalf("rules %q msg %d: compiled (%v,%d) vs interpreter (%v,%d)",
					text, i, keep, rule, ikeep, irule)
			}
			if !keep {
				continue
			}
			var mask uint64
			if rule >= 0 {
				mask = pl.rules[rule].mask
			}
			got = append(got, string(rec.AppendFormat(nil, mask)))
		}
		if len(got) != len(want) {
			t.Fatalf("rules %q: compiled kept %d records, interpreter %d", text, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rules %q record %d:\ncompiled    %q\ninterpreter %q", text, i, got[i], want[i])
			}
		}
	}
}

// TestProcessBatchEquivalence proves the whole batch pipeline — the
// path the standard filter runs — produces the same flat-log bytes and
// store metadata as the interpreter composition.
func TestProcessBatchEquivalence(t *testing.T) {
	d, err := ParseDescriptions([]byte(StandardDescriptions))
	if err != nil {
		t.Fatal(err)
	}
	msgs := corpusMessages()
	var stream []byte
	for _, raw := range msgs {
		stream = append(stream, raw...)
	}
	for _, text := range equivalenceRuleSets {
		eng, err := NewEngine([]byte(StandardDescriptions), []byte(text))
		if err != nil {
			t.Fatalf("rules %q: %v", text, err)
		}
		want := interpretStream(t, d, eng.rules, msgs)
		wantLog := ""
		if len(want) > 0 {
			wantLog = strings.Join(want, "\n") + "\n"
		}

		var batch Batch
		rest, err := eng.ProcessBatch(stream, &batch)
		if err != nil {
			t.Fatalf("rules %q: %v", text, err)
		}
		if len(rest) != 0 {
			t.Fatalf("rules %q: %d bytes unconsumed", text, len(rest))
		}
		if string(batch.Lines) != wantLog {
			t.Fatalf("rules %q: batch log bytes differ\ngot  %q\nwant %q", text, batch.Lines, wantLog)
		}
		if batch.Len() != len(want) {
			t.Fatalf("rules %q: batch has %d records, want %d", text, batch.Len(), len(want))
		}
		for i := range want {
			if string(batch.Line(i)) != want[i] {
				t.Fatalf("rules %q record %d: %q want %q", text, i, batch.Line(i), want[i])
			}
		}
		// Store metadata: machine/time/type from the header, pid from
		// the record when the type carries one.
		recs := batch.StoreRecs()
		j := 0
		for _, raw := range msgs {
			rec, err := d.Extract(raw)
			if err != nil {
				t.Fatal(err)
			}
			keep, _ := eng.rules.Select(rec)
			if !keep {
				continue
			}
			m := recs[j].Meta
			pid, _ := rec.Field("pid")
			if m.Machine != rec.Machine || m.Time != rec.CPUTime ||
				m.Type != uint32(rec.Type) || m.PID != uint32(pid) {
				t.Fatalf("rules %q record %d: meta %+v vs record %+v pid=%d", text, j, m, rec, pid)
			}
			j++
		}
	}
}

// TestCompiledProgramEquivalenceRandom cross-checks compiled selection
// against the interpreter over randomly generated rule sets, a wider
// net than the curated matrix.
func TestCompiledProgramEquivalenceRandom(t *testing.T) {
	d, err := ParseDescriptions([]byte(StandardDescriptions))
	if err != nil {
		t.Fatal(err)
	}
	msgs := corpusMessages()
	rng := rand.New(rand.NewSource(7))
	fields := []string{"machine", "cpuTime", "procTime", "type", "pid", "pc", "sock",
		"newSock", "msgLength", "destName", "sockName", "peerName", "nosuch"}
	ops := []string{"=", "!=", ">", "<", ">=", "<="}
	rec := &Record{}
	for trial := 0; trial < 200; trial++ {
		var lines []string
		for r := 0; r < rng.Intn(3)+1; r++ {
			var parts []string
			for c := 0; c < rng.Intn(3)+1; c++ {
				f := fields[rng.Intn(len(fields))]
				op := ops[rng.Intn(len(ops))]
				var rhs string
				switch rng.Intn(4) {
				case 0:
					rhs = "*"
				case 1:
					rhs = fields[rng.Intn(len(fields))]
				default:
					rhs = fmt.Sprintf("%d", rng.Intn(1024))
				}
				if rng.Intn(4) == 0 {
					rhs = "#" + rhs
				}
				parts = append(parts, f+op+rhs)
			}
			lines = append(lines, strings.Join(parts, ", "))
		}
		text := strings.Join(lines, "\n") + "\n"
		rs, err := ParseRules([]byte(text))
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, text, err)
		}
		prog := CompileProgram(d, rs)
		for i, raw := range msgs {
			pl, err := prog.ExtractInto(rec, raw)
			if err != nil {
				t.Fatal(err)
			}
			ikeep, irule := rs.SelectSource(rec)
			keep, rule := pl.selectRec(rec)
			if keep != ikeep || rule != irule {
				t.Fatalf("trial %d rules %q msg %d: compiled (%v,%d) vs interpreter (%v,%d)",
					trial, text, i, keep, rule, ikeep, irule)
			}
			if !keep || rule < 0 {
				continue
			}
			want := rec.Format(rs[rule].DiscardSet())
			got := string(rec.AppendFormat(nil, pl.rules[rule].mask))
			if got != want {
				t.Fatalf("trial %d rules %q msg %d:\ncompiled    %q\ninterpreter %q",
					trial, text, i, got, want)
			}
		}
	}
}

// TestAppendFormatMatchesFormat pins the append-based formatter to the
// string-building reference over every corpus record with no discards.
func TestAppendFormatMatchesFormat(t *testing.T) {
	d, err := ParseDescriptions([]byte(StandardDescriptions))
	if err != nil {
		t.Fatal(err)
	}
	for i, raw := range corpusMessages() {
		rec, err := d.Extract(raw)
		if err != nil {
			t.Fatal(err)
		}
		want := rec.Format(nil)
		got := string(rec.AppendFormat(nil, 0))
		if got != want {
			t.Fatalf("msg %d: AppendFormat %q, Format %q", i, got, want)
		}
	}
}
