package filter

import (
	"sort"
	"strconv"

	"dpm/internal/kernel"
	"dpm/internal/meter"
)

// This file demonstrates the paper's custom-filter support: "Different
// filter processes can be used in the measurement system. Given one
// basic constraint, a user can write a custom filter. This one
// constraint is that a filter process must listen to its standard
// input in order to receive meter messages from the kernel meter"
// (section 3.4) — in this reproduction's terms, it must accept meter
// connections on the port it is given and consume the Appendix A
// stream. What it does with the records is its own business.

// CountingMain is a custom filter that reduces the trace to per-event
// per-machine counts instead of storing records — the kind of cheap
// summarizing filter the user would write when only aggregate behavior
// matters. args: name, port. It rewrites its whole log on each batch
// so the user can getlog at any time.
func CountingMain(p *kernel.Process) int {
	args := p.Args()
	if len(args) < 2 {
		return 1
	}
	name := args[0]
	port64, err := strconv.ParseUint(args[1], 10, 16)
	if err != nil {
		return 1
	}
	lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		return 1
	}
	if err := p.BindPort(lfd, uint16(port64)); err != nil {
		return 1
	}
	if err := p.Listen(lfd, 32); err != nil {
		return 1
	}

	logPath := LogPath(name)
	type key struct {
		machine uint16
		typ     meter.Type
	}
	counts := make(map[key]int)
	conns := make(map[int][]byte)
	// keys and out are reused across rewrites; the lines are appended
	// with strconv, not fmt, so a rewrite costs no per-line garbage.
	var (
		keys []key
		out  []byte
	)
	rewrite := func() {
		keys = keys[:0]
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].machine != keys[j].machine {
				return keys[i].machine < keys[j].machine
			}
			return keys[i].typ < keys[j].typ
		})
		out = out[:0]
		for _, k := range keys {
			out = append(out, "count machine="...)
			out = strconv.AppendUint(out, uint64(k.machine), 10)
			out = append(out, " event="...)
			out = append(out, k.typ.String()...)
			out = append(out, " n="...)
			out = strconv.AppendInt(out, int64(counts[k]), 10)
			out = append(out, '\n')
		}
		fs := p.Machine().FS()
		if fs.Exists(logPath) {
			_ = fs.Remove(logPath, p.UID())
		}
		_ = p.AppendFile(logPath, out)
	}

	for {
		fds := make([]int, 0, len(conns)+1)
		fds = append(fds, lfd)
		for fd := range conns {
			fds = append(fds, fd)
		}
		ready, err := p.Select(fds)
		if err != nil {
			return 0
		}
		for _, fd := range ready {
			if fd == lfd {
				nfd, _, err := p.Accept(lfd)
				if err != nil {
					return 0
				}
				conns[nfd] = nil
				continue
			}
			data, err := p.Recv(fd, 8192)
			if err != nil {
				_ = p.Close(fd)
				delete(conns, fd)
				continue
			}
			buf := append(conns[fd], data...)
			msgs, rest, err := meter.DecodeStream(buf)
			if err != nil {
				_ = p.Close(fd)
				delete(conns, fd)
				continue
			}
			conns[fd] = rest
			for _, m := range msgs {
				counts[key{m.Header.Machine, m.Header.TraceType}]++
			}
			if len(msgs) > 0 {
				rewrite()
			}
		}
	}
}

// CountingProgramName is the registry name of the counting filter.
const CountingProgramName = "dpm-countfilter"

// InstallCounting registers the counting filter and installs it as
// /bin/countfilter on a machine, so a user can create it with
// "filter fc <machine> countfilter".
func InstallCounting(c *kernel.Cluster, m *kernel.Machine, uid int) error {
	c.RegisterProgram(CountingProgramName, CountingMain)
	return m.FS().CreateExecutable("/bin/countfilter", uid, CountingProgramName)
}
