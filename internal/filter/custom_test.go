package filter

import (
	"strings"
	"testing"
	"time"

	"dpm/internal/kernel"
	"dpm/internal/meter"
)

func TestCountingFilterEndToEnd(t *testing.T) {
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	red, err := c.AddMachine("red", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	red.AddAccount(100, "user")
	t.Cleanup(c.Shutdown)
	if err := InstallCounting(c, red, 0); err != nil {
		t.Fatal(err)
	}

	fp, err := red.Spawn(kernel.SpawnSpec{
		UID: 100, Name: "countfilter", Path: "/bin/countfilter",
		Args: []string{"fc", "9300"},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !red.PortBound(kernel.SockStream, 9300) {
		if exited, st, _ := fp.Exited(); exited {
			t.Fatalf("counting filter exited %d", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("counting filter never bound")
		}
		time.Sleep(time.Millisecond)
	}

	// Meter a process into the counting filter.
	target, err := red.SpawnDetached(100, "target")
	if err != nil {
		t.Fatal(err)
	}
	root, err := red.SpawnDetached(0, "root")
	if err != nil {
		t.Fatal(err)
	}
	msfd, _ := root.Socket(meter.AFInet, kernel.SockStream)
	if err := root.Connect(msfd, meter.InetName(red.PrimaryHostID(), 9300)); err != nil {
		t.Fatal(err)
	}
	if err := root.Setmeter(target.PID(), int(meter.MAll|meter.MImmediate), msfd); err != nil {
		t.Fatal(err)
	}

	f1, f2, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := target.Send(f1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := target.Recv(f2, 10); err != nil {
			t.Fatal(err)
		}
	}

	deadline = time.Now().Add(2 * time.Second)
	for {
		data, err := red.FS().Read(LogPath("fc"), 0)
		if err == nil && strings.Contains(string(data), "event=SEND n=3") {
			if !strings.Contains(string(data), "event=RECEIVE n=3") {
				t.Fatalf("log = %s", data)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counting filter log incomplete: %v %q", err, data)
		}
		time.Sleep(time.Millisecond)
	}
}
