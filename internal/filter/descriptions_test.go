package filter

import (
	"strings"
	"testing"

	"dpm/internal/meter"
)

func stdDesc(t *testing.T) *Descriptions {
	t.Helper()
	d, err := ParseDescriptions([]byte(StandardDescriptions))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseStandardDescriptions(t *testing.T) {
	d := stdDesc(t)
	wantHeader := []string{"size", "machine", "cpuTime", "procTime", "traceType"}
	if len(d.Header) != len(wantHeader) {
		t.Fatalf("header = %v", d.Header)
	}
	for i := range wantHeader {
		if d.Header[i] != wantHeader[i] {
			t.Fatalf("header = %v, want %v", d.Header, wantHeader)
		}
	}
	for typ := meter.EvSend; typ <= meter.EvTermProc; typ++ {
		if _, ok := d.Event(typ); !ok {
			t.Errorf("no description for %v", typ)
		}
	}
}

func TestSendDescriptionMatchesFigure32(t *testing.T) {
	// Figure 3.2's description of the send event, field for field.
	d := stdDesc(t)
	ev, ok := d.Event(meter.EvSend)
	if !ok {
		t.Fatal("no SEND description")
	}
	want := []FieldDesc{
		{"pid", 0, 4, 10},
		{"pc", 4, 4, 10},
		{"sock", 8, 4, 10},
		{"msgLength", 12, 4, 10},
		{"destNameLen", 16, 4, 10},
		{"destName", 20, 16, 16},
	}
	if ev.Name != "SEND" || len(ev.Fields) != len(want) {
		t.Fatalf("SEND description = %+v", ev)
	}
	for i, f := range want {
		if ev.Fields[i] != f {
			t.Errorf("field %d = %+v, want %+v", i, ev.Fields[i], f)
		}
	}
}

// TestExtractAgreesWithMeterDecoder is the protocol cross-check of
// section 3.4: the description file and the kernel's encoders must
// describe the same byte layout. Every event type is encoded by the
// meter package and re-extracted via the descriptions; every scalar
// field must agree.
func TestExtractAgreesWithMeterDecoder(t *testing.T) {
	d := stdDesc(t)
	sn := meter.InetName(228320140, 3000)
	pn := meter.UnixName("/tmp/srv")
	bodies := []meter.Body{
		&meter.Send{PID: 2120, PC: 0x40a0, Sock: 4, MsgLength: 512, DestNameLen: 16, DestName: sn},
		&meter.RecvCall{PID: 2120, PC: 1, Sock: 4},
		&meter.Recv{PID: 2, PC: 3, Sock: 5, MsgLength: 99, SourceNameLen: 16, SourceName: sn},
		&meter.SocketCrt{PID: 9, PC: 8, Sock: 7, Domain: 2, SockType: 1, Protocol: 0},
		&meter.Dup{PID: 1, PC: 2, Sock: 3, NewSock: 4},
		&meter.DestSocket{PID: 5, PC: 6, Sock: 7},
		&meter.Connect{PID: 1, PC: 2, Sock: 3, SockNameLen: 16, PeerNameLen: 16, SockName: sn, PeerName: pn},
		&meter.Accept{PID: 1, PC: 2, Sock: 3, NewSock: 4, SockNameLen: 16, PeerNameLen: 16, SockName: pn, PeerName: sn},
		&meter.Fork{PID: 10, PC: 11, NewPID: 12},
		&meter.TermProc{PID: 13, PC: 14, Status: 0},
	}
	for _, b := range bodies {
		msg := meter.Msg{Header: meter.Header{Machine: 5, CPUTime: 777, ProcTime: 40}, Body: b}
		rec, err := d.Extract(msg.Encode())
		if err != nil {
			t.Fatalf("%v: %v", b.EventType(), err)
		}
		if rec.Type != b.EventType() || rec.Machine != 5 || rec.CPUTime != 777 || rec.ProcTime != 40 {
			t.Fatalf("%v: header mismatch: %+v", b.EventType(), rec)
		}
		truth := b.Fields()
		if len(truth) != len(rec.Fields) {
			t.Fatalf("%v: %d fields extracted, want %d", b.EventType(), len(rec.Fields), len(truth))
		}
		for i, f := range truth {
			got := rec.Fields[i]
			if got.Name != f.Name {
				t.Fatalf("%v field %d: name %q, want %q", b.EventType(), i, got.Name, f.Name)
			}
			if f.IsName {
				if !got.IsName || got.Addr != f.Addr {
					t.Fatalf("%v field %s: name value %v, want %v", b.EventType(), f.Name, got.Addr, f.Addr)
				}
			} else if got.Value != uint64(f.Value) {
				t.Fatalf("%v field %s: %d, want %d", b.EventType(), f.Name, got.Value, f.Value)
			}
		}
	}
}

func TestExtractTruncatedMessage(t *testing.T) {
	d := stdDesc(t)
	msg := meter.Msg{Header: meter.Header{}, Body: &meter.Fork{PID: 1}}
	enc := msg.Encode()
	if _, err := d.Extract(enc[:10]); err == nil {
		t.Fatal("extract of truncated message succeeded")
	}
	// Size claims more body than present.
	enc2 := enc[:meter.HeaderSize]
	if _, err := d.Extract(enc2); err == nil {
		t.Fatal("extract with missing body succeeded")
	}
}

func TestExtractUnknownType(t *testing.T) {
	d := stdDesc(t)
	msg := meter.Msg{Header: meter.Header{}, Body: &meter.Fork{}}
	enc := msg.Encode()
	enc[20] = 200
	if _, err := d.Extract(enc); err == nil {
		t.Fatal("extract of undescribed type succeeded")
	}
}

func TestParseDescriptionsErrors(t *testing.T) {
	cases := map[string]string{
		"no header":       "SEND 1, pid,0,4,10\n",
		"bad type":        "HEADER size\nSEND x, pid,0,4,10\n",
		"bad field tuple": "HEADER size\nSEND 1, pid,0,4\n",
		"bad offset":      "HEADER size\nSEND 1, pid,a,4,10\n",
		"duplicate type":  "HEADER size\nSEND 1, pid,0,4,10\nSND 1, pid,0,4,10\n",
	}
	for name, data := range cases {
		if _, err := ParseDescriptions([]byte(data)); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestRecordFieldLookup(t *testing.T) {
	d := stdDesc(t)
	msg := meter.Msg{Header: meter.Header{Machine: 5, CPUTime: 9}, Body: &meter.Send{PID: 7, Sock: 4, MsgLength: 100}}
	rec, err := d.Extract(msg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]uint64{
		"machine": 5, "cpuTime": 9, "type": 1, "pid": 7, "sock": 4, "msgLength": 100,
	} {
		if v, ok := rec.Field(name); !ok || v != want {
			t.Errorf("Field(%s) = (%d, %v), want %d", name, v, ok, want)
		}
	}
	if _, ok := rec.Field("nonexistent"); ok {
		t.Error("lookup of nonexistent field succeeded")
	}
}

func TestFormatAndDiscard(t *testing.T) {
	d := stdDesc(t)
	dest := meter.InetName(99, 7)
	msg := meter.Msg{Header: meter.Header{Machine: 2, CPUTime: 10, ProcTime: 0},
		Body: &meter.Send{PID: 44, PC: 4, Sock: 3, MsgLength: 5, DestNameLen: 16, DestName: dest}}
	rec, err := d.Extract(msg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	full := rec.Format(nil)
	if !strings.HasPrefix(full, "SEND machine=2 cpuTime=10 procTime=0 pid=44") {
		t.Fatalf("Format = %q", full)
	}
	if !strings.Contains(full, "destName=inet:99:7") {
		t.Fatalf("Format lacks name rendering: %q", full)
	}
	reduced := rec.Format(map[string]bool{"pid": true, "destName": true})
	if strings.Contains(reduced, "pid=") || strings.Contains(reduced, "destName=") {
		t.Fatalf("discarded fields present: %q", reduced)
	}
	if !strings.Contains(reduced, "msgLength=5") {
		t.Fatalf("undiscarded field missing: %q", reduced)
	}
}
