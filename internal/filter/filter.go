package filter

import (
	"fmt"
	"strconv"
	"sync"

	"dpm/internal/fsys"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/store"
)

// LogPath returns the log file a filter of the given name writes, in
// the /usr/tmp directory the paper specifies (section 3.4).
func LogPath(name string) string { return "/usr/tmp/" + name + ".log" }

// StorePath returns the event-store directory a filter of the given
// name writes beside its flat log. The flat log remains the
// compatibility surface (getlog, ReadTrace); the store is the indexed
// form queries run against.
func StorePath(name string) string { return "/usr/tmp/" + name + ".store" }

// StatsPath returns the JSON metrics snapshot a filter of the given
// name exports beside its log at shutdown — the forensic record a
// chaos soak inspects after the fact.
func StatsPath(name string) string { return "/usr/tmp/" + name + ".stats.json" }

// DefaultDescriptionsPath and DefaultTemplatesPath are the standard
// file names the controller falls back to ("standard filenames
// ('templates' and 'descriptions') are used", section 4.3).
const (
	DefaultDescriptionsPath = "/etc/meter/descriptions"
	DefaultTemplatesPath    = "/etc/meter/templates"
)

// Engine is the reusable selection/reduction core of a filter: framing
// of the meter byte stream, record extraction via descriptions, and
// rule evaluation. The standard filter drives it from a socket loop;
// custom filters (section 3.4 allows them, "given a few basic
// constraints") can drive it from anything that yields meter bytes.
//
// At construction the descriptions and rules are compiled into an
// index-based program (compile.go); the steady-state batch path
// extracts, selects, and formats records with zero heap allocations
// per record.
type Engine struct {
	desc  *Descriptions
	rules Rules
	prog  *Program

	// lineBuf is the reused formatting buffer of the compatibility
	// (per-line string) path.
	lineBuf []byte

	// tap, when non-nil, observes every kept record (tap.go). Not
	// carried by Clone — pipeline workers each get their own.
	tap RecordTap

	// Stats counts the engine's record traffic.
	Received  int
	Kept      int
	Discarded int
}

// NewEngine builds an engine from descriptions and templates file
// contents. Empty templates select everything.
func NewEngine(descData, tmplData []byte) (*Engine, error) {
	d, err := ParseDescriptions(descData)
	if err != nil {
		return nil, err
	}
	r, err := ParseRules(tmplData)
	if err != nil {
		return nil, err
	}
	return &Engine{desc: d, rules: r, prog: CompileProgram(d, r)}, nil
}

// Clone returns an engine sharing this engine's descriptions, rules,
// and compiled program — all immutable after construction — but with
// independent statistics and formatting buffers. The parallel ingest
// pipeline gives each worker a clone so selection runs without any
// cross-worker state.
func (e *Engine) Clone() *Engine {
	return &Engine{desc: e.desc, rules: e.rules, prog: e.prog}
}

// recordPool recycles extraction records across engines; one filter
// holds a record only for the duration of a Process* call, so a
// machine full of filters shares a handful of records instead of
// allocating one per message.
var recordPool = sync.Pool{New: func() any { return new(Record) }}

// GetRecord takes a reusable record from the pool; custom filters
// driving Descriptions.ExtractInto themselves should pair it with
// PutRecord.
func GetRecord() *Record { return recordPool.Get().(*Record) }

// PutRecord returns a record to the pool. The caller must not retain
// the record or its fields afterwards.
func PutRecord(r *Record) { recordPool.Put(r) }

// Batch accumulates one flush's worth of surviving records: the
// concatenated '\n'-terminated log lines (the flat-log image, written
// with a single file append) and the per-record store metadata. A
// Batch is reused across flushes via Reset, so the steady state
// allocates nothing.
type Batch struct {
	// Lines is the flat-log image: each record's formatted line
	// followed by '\n'.
	Lines []byte
	metas []store.Meta
	ends  []int // end offset of each record's line in Lines, excluding '\n'
	recs  []store.BatchRec
}

// Reset empties the batch, retaining capacity.
func (b *Batch) Reset() {
	b.Lines = b.Lines[:0]
	b.metas = b.metas[:0]
	b.ends = b.ends[:0]
}

// Len returns the number of records in the batch.
func (b *Batch) Len() int { return len(b.ends) }

// Line returns the i'th record's formatted line (no trailing '\n').
// The slice aliases the batch and is valid until the next Reset.
func (b *Batch) Line(i int) []byte {
	start := 0
	if i > 0 {
		start = b.ends[i-1] + 1
	}
	return b.Lines[start:b.ends[i]]
}

// StoreRecs materializes the batch as store append records. The
// returned slice and its lines alias the batch; hand it straight to
// Store.AppendBatch before the next Reset.
func (b *Batch) StoreRecs() []store.BatchRec {
	b.recs = b.recs[:0]
	start := 0
	for i, end := range b.ends {
		b.recs = append(b.recs, store.BatchRec{Meta: b.metas[i], Line: b.Lines[start:end]})
		start = end + 1
	}
	return b.recs
}

// frameSize validates and returns the size field of the frame at the
// front of buf; n == 0 means incomplete.
func frameSize(buf []byte) (int, error) {
	size, err := meter.PeekSize(buf)
	if err != nil {
		return 0, fmt.Errorf("filter: corrupt size field: %w", err)
	}
	return size, nil
}

// ProcessBatch consumes raw meter-stream bytes and appends every
// surviving record's formatted line and store metadata to the batch,
// returning the unconsumed tail. This is the filter's hot path: with
// the batch's buffers at capacity it performs zero heap allocations
// per record.
func (e *Engine) ProcessBatch(buf []byte, b *Batch) (rest []byte, err error) {
	rec := GetRecord()
	defer PutRecord(rec)
	for {
		size, err := frameSize(buf)
		if err != nil || size == 0 {
			return buf, err
		}
		pl, err := e.prog.ExtractInto(rec, buf[:size])
		if err != nil {
			return buf, err
		}
		buf = buf[size:]
		e.Received++
		if pl.wide {
			// Wide event type (>64 body fields): discard sets exceed the
			// mask; selection still runs compiled, formatting takes the
			// map-based path.
			keep, rule := pl.selectRec(rec)
			if !keep {
				e.Discarded++
				continue
			}
			e.Kept++
			if e.tap != nil {
				e.tap.TapRecord(&pl.tapInfo, rec)
			}
			var discards map[string]bool
			if rule >= 0 {
				discards = pl.rules[rule].discards
			}
			b.Lines = append(b.Lines, rec.Format(discards)...)
			b.ends = append(b.ends, len(b.Lines))
			b.Lines = append(b.Lines, '\n')
			b.metas = append(b.metas, store.Meta{
				Machine: rec.Machine, Time: rec.CPUTime,
				Type: uint32(rec.Type), PID: pl.pid(rec),
			})
			continue
		}
		keep, mask := e.selectCompiled(pl, rec)
		if !keep {
			e.Discarded++
			continue
		}
		e.Kept++
		if e.tap != nil {
			e.tap.TapRecord(&pl.tapInfo, rec)
		}
		b.Lines = rec.AppendFormat(b.Lines, mask)
		b.ends = append(b.ends, len(b.Lines))
		b.Lines = append(b.Lines, '\n')
		b.metas = append(b.metas, store.Meta{
			Machine: rec.Machine, Time: rec.CPUTime,
			Type: uint32(rec.Type), PID: pl.pid(rec),
		})
	}
}

// selectCompiled runs the compiled selection for one record and
// returns the matched rule's discard mask. The rare wide event type
// (>64 body fields) formats through the interpreter's map path
// instead; the mask is then unused because AppendFormat ignores bits
// beyond 64 — callers detect wide plans via pl.wide.
func (e *Engine) selectCompiled(pl *eventPlan, rec *Record) (keep bool, mask uint64) {
	keep, rule := pl.selectRec(rec)
	if !keep || rule < 0 {
		return keep, 0
	}
	return true, pl.rules[rule].mask
}

// Process consumes raw meter-stream bytes carried over from previous
// calls plus the new data, and returns the formatted log lines of the
// records that survive selection, together with the unconsumed tail.
// The only allocations are the returned strings themselves; the
// extraction and formatting underneath run through the pooled
// zero-allocation machinery.
func (e *Engine) Process(buf []byte) (lines []string, rest []byte, err error) {
	rest, err = e.ProcessEach(buf, func(_ *Record, line []byte) {
		lines = append(lines, string(line))
	})
	return lines, rest, err
}

// ProcessEach is Process with a per-record callback: each surviving
// record and its formatted log line are handed to emit as they are
// extracted, so a caller can fan one record out to several sinks
// without a second framing pass. The record is pooled and the line
// aliases a reused buffer: emit must not retain either past the
// callback (copy the line if it must outlive the call). With buffers
// warm, ProcessEach performs zero heap allocations per record; callers
// that want the whole flush as one image should use ProcessBatch.
func (e *Engine) ProcessEach(buf []byte, emit func(rec *Record, line []byte)) (rest []byte, err error) {
	rec := GetRecord()
	defer PutRecord(rec)
	for {
		size, err := frameSize(buf)
		if err != nil || size == 0 {
			return buf, err
		}
		pl, err := e.prog.ExtractInto(rec, buf[:size])
		if err != nil {
			return buf, err
		}
		buf = buf[size:]
		e.Received++
		if pl.wide {
			// Wide event type: discard sets exceed the mask; selection
			// still runs compiled, formatting takes the map-based path.
			keep, rule := pl.selectRec(rec)
			if !keep {
				e.Discarded++
				continue
			}
			var discards map[string]bool
			if rule >= 0 {
				discards = pl.rules[rule].discards
			}
			e.lineBuf = append(e.lineBuf[:0], rec.Format(discards)...)
		} else {
			keep, mask := e.selectCompiled(pl, rec)
			if !keep {
				e.Discarded++
				continue
			}
			e.lineBuf = rec.AppendFormat(e.lineBuf[:0], mask)
		}
		e.Kept++
		if e.tap != nil {
			e.tap.TapRecord(&pl.tapInfo, rec)
		}
		emit(rec, e.lineBuf)
	}
}

// Main is the standard filter program. Its arguments are
//
//	args[0] filter name (determines the log file)
//	args[1] listen port
//	args[2] descriptions file path (optional; default standard file)
//	args[3] templates file path (optional; default standard file)
//	args[4] ingest workers (optional; default GOMAXPROCS)
//
// It binds a stream socket, accepts one meter connection per metered
// process creation, applies selection, and appends surviving records
// to its log file. Each connection is drained by its own goroutine
// into a bounded-parallelism Pipeline: selection and formatting run on
// the pipeline's workers, store appends land concurrently on the
// sharded store, and the flat log is written by one serialized writer
// that preserves per-connection record order. It runs until killed;
// "The events detected and logged by the filter process are not seen
// by the user as they occur" (section 3.4) — the user retrieves the
// log afterwards with getlog.
func Main(p *kernel.Process) int {
	args := p.Args()
	if len(args) < 2 {
		p.Printf("filter: usage: name port [descriptions [templates [workers]]]\n")
		return 1
	}
	name := args[0]
	port64, err := strconv.ParseUint(args[1], 10, 16)
	if err != nil {
		p.Printf("filter: bad port %q\n", args[1])
		return 1
	}
	descPath, tmplPath := DefaultDescriptionsPath, DefaultTemplatesPath
	if len(args) > 2 && args[2] != "" {
		descPath = args[2]
	}
	if len(args) > 3 && args[3] != "" {
		tmplPath = args[3]
	}
	workers := 0 // 0: PipelineConfig default (GOMAXPROCS)
	if len(args) > 4 && args[4] != "" {
		w, err := strconv.Atoi(args[4])
		if err != nil || w < 0 {
			p.Printf("filter: bad worker count %q\n", args[4])
			return 1
		}
		workers = w
	}

	descData, err := p.ReadFile(descPath)
	if err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}
	// A missing templates file means no selection: keep everything.
	tmplData, err := p.ReadFile(tmplPath)
	if err != nil {
		tmplData = nil
	}
	eng, err := NewEngine(descData, tmplData)
	if err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}

	// The event store rides beside the flat log: same records, framed
	// and indexed so queries can prune segments instead of shipping the
	// whole log (internal/store). Opening recovers any segments a
	// previous incarnation left unsealed. Every subsystem of the filter
	// hangs its metrics on the machine's registry, so one stats request
	// to the local daemon sees the whole node.
	reg := p.Machine().Obs()
	// Sealed segments are block-compressed, and segments a cpuTime
	// half-minute colder than the newest record roll into the archival
	// tier; records are never expired here (RetainFor stays 0 — the
	// flat log and the store must answer identically).
	st, err := store.Open(store.NewFsysBackend(p.Machine().FS(), p.UID(), StorePath(name)), store.Config{
		Obs:          reg,
		Compress:     store.CompressBlocks,
		ArchiveAfter: 30_000,
	})
	if err != nil {
		p.Printf("filter: store: %v\n", err)
		return 1
	}

	lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}
	if err := p.BindPort(lfd, uint16(port64)); err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}
	if err := p.Listen(lfd, 32); err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}

	// Live streaming analysis taps the pipeline when a factory is
	// installed (core wires internal/analysis/live here); the section
	// providers it registers on reg ride every stats snapshot.
	var taps TapSource
	if fn := loadTapFactory(); fn != nil {
		taps = fn(reg, name)
	}

	logPath := LogPath(name)
	pipe := NewPipeline(eng, PipelineConfig{Workers: workers, Obs: reg, Taps: taps}, Sinks{
		Store: st,
		Log:   func(lines []byte) error { return p.AppendFile(logPath, lines) },
	}, p.Go)
	// On kill the Accept below unwinds; draining the pipeline before
	// the process finishes keeps shutdown orderly (no worker left
	// blocked on a queue the cluster's shutdown would wait on). The
	// snapshot export runs after the drain so its counters are final,
	// and writes through the machine's file system directly — process
	// syscalls are unusable during a kill unwind, and the forensic
	// record matters most when the filter died by fault injection.
	defer p.Machine().ExportStats(StatsPath(name), p.UID())
	defer pipe.Close()

	for {
		nfd, _, err := p.Accept(lfd)
		if err != nil {
			return 0 // killed: normal filter shutdown
		}
		fd := nfd
		src := pipe.NewSource()
		p.Go(func() {
			defer func() { _ = p.Close(fd) }()
			for {
				// A large Recv drains whole meter-buffer flushes in
				// one call, handing the engine maximal contiguous
				// frame runs.
				data, err := p.Recv(fd, 65536)
				if err != nil {
					// EOF or error: the metered process (and every
					// holder of its meter socket) is gone.
					return
				}
				if !src.Feed(data) {
					return
				}
			}
		})
	}
}

// ProgramName is the registry name of the standard filter program; the
// default filter executable file refers to it.
const ProgramName = "dpm-filter"

// Install registers the standard filter program with a cluster and
// writes the standard descriptions and (empty) templates files plus
// the default filter executable onto a machine. uid owns the files.
func Install(c *kernel.Cluster, m *kernel.Machine, uid int) error {
	c.RegisterProgram(ProgramName, Main)
	if err := m.FS().Create(DefaultDescriptionsPath, uid, fsys.DefaultMode, []byte(StandardDescriptions)); err != nil {
		return err
	}
	if !m.FS().Exists(DefaultTemplatesPath) {
		if err := m.FS().Create(DefaultTemplatesPath, uid, fsys.DefaultMode, nil); err != nil {
			return err
		}
	}
	return m.FS().CreateExecutable("/bin/filter", uid, ProgramName)
}
