package filter

import (
	"fmt"
	"strconv"

	"dpm/internal/fsys"
	"dpm/internal/kernel"
	"dpm/internal/meter"
	"dpm/internal/store"
)

// LogPath returns the log file a filter of the given name writes, in
// the /usr/tmp directory the paper specifies (section 3.4).
func LogPath(name string) string { return "/usr/tmp/" + name + ".log" }

// StorePath returns the event-store directory a filter of the given
// name writes beside its flat log. The flat log remains the
// compatibility surface (getlog, ReadTrace); the store is the indexed
// form queries run against.
func StorePath(name string) string { return "/usr/tmp/" + name + ".store" }

// DefaultDescriptionsPath and DefaultTemplatesPath are the standard
// file names the controller falls back to ("standard filenames
// ('templates' and 'descriptions') are used", section 4.3).
const (
	DefaultDescriptionsPath = "/etc/meter/descriptions"
	DefaultTemplatesPath    = "/etc/meter/templates"
)

// Engine is the reusable selection/reduction core of a filter: framing
// of the meter byte stream, record extraction via descriptions, and
// rule evaluation. The standard filter drives it from a socket loop;
// custom filters (section 3.4 allows them, "given a few basic
// constraints") can drive it from anything that yields meter bytes.
type Engine struct {
	desc  *Descriptions
	rules Rules

	// Stats counts the engine's record traffic.
	Received  int
	Kept      int
	Discarded int
}

// NewEngine builds an engine from descriptions and templates file
// contents. Empty templates select everything.
func NewEngine(descData, tmplData []byte) (*Engine, error) {
	d, err := ParseDescriptions(descData)
	if err != nil {
		return nil, err
	}
	r, err := ParseRules(tmplData)
	if err != nil {
		return nil, err
	}
	return &Engine{desc: d, rules: r}, nil
}

// Process consumes raw meter-stream bytes carried over from previous
// calls plus the new data, and returns the formatted log lines of the
// records that survive selection, together with the unconsumed tail.
func (e *Engine) Process(buf []byte) (lines []string, rest []byte, err error) {
	rest, err = e.ProcessEach(buf, func(_ *Record, line string) {
		lines = append(lines, line)
	})
	return lines, rest, err
}

// ProcessEach is Process with a per-record callback: each surviving
// record and its formatted log line are handed to emit as they are
// extracted, so a caller can fan one record out to several sinks (the
// flat log and the event store) without a second framing pass.
func (e *Engine) ProcessEach(buf []byte, emit func(rec *Record, line string)) (rest []byte, err error) {
	for {
		if len(buf) < meter.HeaderSize {
			return buf, nil
		}
		size := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
		if size < meter.HeaderSize || size > meter.MaxMsgSize {
			return buf, fmt.Errorf("filter: corrupt size field %d", size)
		}
		if len(buf) < size {
			return buf, nil
		}
		rec, err := e.desc.Extract(buf[:size])
		if err != nil {
			return buf, err
		}
		buf = buf[size:]
		e.Received++
		keep, discards := e.rules.Select(rec)
		if !keep {
			e.Discarded++
			continue
		}
		e.Kept++
		emit(rec, rec.Format(discards))
	}
}

// Main is the standard filter program. Its arguments are
//
//	args[0] filter name (determines the log file)
//	args[1] listen port
//	args[2] descriptions file path (optional; default standard file)
//	args[3] templates file path (optional; default standard file)
//
// It binds a stream socket, accepts one meter connection per metered
// process creation, applies selection, and appends surviving records
// to its log file. It runs until killed; "The events detected and
// logged by the filter process are not seen by the user as they occur"
// (section 3.4) — the user retrieves the log afterwards with getlog.
func Main(p *kernel.Process) int {
	args := p.Args()
	if len(args) < 2 {
		p.Printf("filter: usage: name port [descriptions [templates]]\n")
		return 1
	}
	name := args[0]
	port64, err := strconv.ParseUint(args[1], 10, 16)
	if err != nil {
		p.Printf("filter: bad port %q\n", args[1])
		return 1
	}
	descPath, tmplPath := DefaultDescriptionsPath, DefaultTemplatesPath
	if len(args) > 2 && args[2] != "" {
		descPath = args[2]
	}
	if len(args) > 3 && args[3] != "" {
		tmplPath = args[3]
	}

	descData, err := p.ReadFile(descPath)
	if err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}
	// A missing templates file means no selection: keep everything.
	tmplData, err := p.ReadFile(tmplPath)
	if err != nil {
		tmplData = nil
	}
	eng, err := NewEngine(descData, tmplData)
	if err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}

	// The event store rides beside the flat log: same records, framed
	// and indexed so queries can prune segments instead of shipping the
	// whole log (internal/store). Opening recovers any segments a
	// previous incarnation left unsealed.
	st, err := store.Open(store.NewFsysBackend(p.Machine().FS(), p.UID(), StorePath(name)), store.Config{})
	if err != nil {
		p.Printf("filter: store: %v\n", err)
		return 1
	}

	lfd, err := p.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}
	if err := p.BindPort(lfd, uint16(port64)); err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}
	if err := p.Listen(lfd, 32); err != nil {
		p.Printf("filter: %v\n", err)
		return 1
	}

	logPath := LogPath(name)
	conns := make(map[int][]byte) // meter connection fd -> partial frame
	for {
		fds := make([]int, 0, len(conns)+1)
		fds = append(fds, lfd)
		for fd := range conns {
			fds = append(fds, fd)
		}
		ready, err := p.Select(fds)
		if err != nil {
			return 0 // killed: normal filter shutdown
		}
		for _, fd := range ready {
			if fd == lfd {
				nfd, _, err := p.Accept(lfd)
				if err != nil {
					return 0
				}
				conns[nfd] = nil
				continue
			}
			data, err := p.Recv(fd, 8192)
			if err != nil {
				// EOF or error: the metered process (and every holder
				// of its meter socket) is gone.
				_ = p.Close(fd)
				delete(conns, fd)
				continue
			}
			buf := append(conns[fd], data...)
			var out []byte
			var storeErr error
			rest, err := eng.ProcessEach(buf, func(rec *Record, line string) {
				out = append(out, line...)
				out = append(out, '\n')
				pid, _ := rec.Field("pid")
				m := store.Meta{
					Machine: rec.Machine, Time: rec.CPUTime,
					Type: uint32(rec.Type), PID: uint32(pid),
				}
				if err := st.Append(m, line); err != nil && storeErr == nil {
					storeErr = err
				}
			})
			if err != nil {
				p.Printf("filter: %v\n", err)
				_ = p.Close(fd)
				delete(conns, fd)
				continue
			}
			conns[fd] = rest
			if storeErr != nil {
				p.Printf("filter: store append: %v\n", storeErr)
			}
			if len(out) > 0 {
				if err := p.AppendFile(logPath, out); err != nil {
					p.Printf("filter: log append: %v\n", err)
				}
			}
		}
	}
}

// ProgramName is the registry name of the standard filter program; the
// default filter executable file refers to it.
const ProgramName = "dpm-filter"

// Install registers the standard filter program with a cluster and
// writes the standard descriptions and (empty) templates files plus
// the default filter executable onto a machine. uid owns the files.
func Install(c *kernel.Cluster, m *kernel.Machine, uid int) error {
	c.RegisterProgram(ProgramName, Main)
	if err := m.FS().Create(DefaultDescriptionsPath, uid, fsys.DefaultMode, []byte(StandardDescriptions)); err != nil {
		return err
	}
	if !m.FS().Exists(DefaultTemplatesPath) {
		if err := m.FS().Create(DefaultTemplatesPath, uid, fsys.DefaultMode, nil); err != nil {
			return err
		}
	}
	return m.FS().CreateExecutable("/bin/filter", uid, ProgramName)
}
