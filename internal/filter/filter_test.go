package filter

import (
	"strings"
	"testing"
	"time"

	"dpm/internal/fsys"
	"dpm/internal/kernel"
	"dpm/internal/meter"
)

func TestEngineFramingAcrossSplits(t *testing.T) {
	eng, err := NewEngine([]byte(StandardDescriptions), nil)
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	const n = 5
	for i := 0; i < n; i++ {
		m := meter.Msg{Header: meter.Header{Machine: 1}, Body: &meter.Fork{PID: uint32(i)}}
		stream = m.AppendEncode(stream)
	}
	// Feed the stream one byte at a time; all records must emerge.
	var lines []string
	var buf []byte
	for _, b := range stream {
		buf = append(buf, b)
		got, rest, err := eng.Process(buf)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, got...)
		buf = rest
	}
	if len(lines) != n {
		t.Fatalf("recovered %d records, want %d", len(lines), n)
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left over", len(buf))
	}
	if eng.Received != n || eng.Kept != n {
		t.Fatalf("stats = %+v", eng)
	}
}

func TestEngineCorruptStream(t *testing.T) {
	eng, err := NewEngine([]byte(StandardDescriptions), nil)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 64) // size field 0 < HeaderSize
	if _, _, err := eng.Process(junk); err == nil {
		t.Fatal("corrupt stream accepted")
	}
}

func TestEngineSelectionCounts(t *testing.T) {
	eng, err := NewEngine([]byte(StandardDescriptions), []byte("machine=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	for _, m := range []uint16{1, 2, 1, 3} {
		msg := meter.Msg{Header: meter.Header{Machine: m}, Body: &meter.Fork{}}
		stream = msg.AppendEncode(stream)
	}
	lines, rest, err := eng.Process(stream)
	if err != nil || len(rest) != 0 {
		t.Fatalf("err=%v rest=%d", err, len(rest))
	}
	if len(lines) != 2 || eng.Kept != 2 || eng.Discarded != 2 || eng.Received != 4 {
		t.Fatalf("lines=%d stats=%+v", len(lines), eng)
	}
}

// startFilter spawns the standard filter program on m listening on
// port, and waits for it to come up.
func startFilter(t *testing.T, c *kernel.Cluster, m *kernel.Machine, name string, port uint16, templates string) *kernel.Process {
	t.Helper()
	if err := Install(c, m, 0); err != nil {
		t.Fatal(err)
	}
	if templates != "" {
		if err := m.FS().Create(DefaultTemplatesPath, 0, fsys.DefaultMode, []byte(templates)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := m.Spawn(kernel.SpawnSpec{
		UID: 0, Name: "filter", Path: "/bin/filter",
		Args: []string{name, "9000"},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !m.PortBound(kernel.SockStream, port) {
		if time.Now().After(deadline) {
			t.Fatal("filter never bound its port")
		}
		time.Sleep(time.Millisecond)
	}
	return p
}

func TestStandardFilterEndToEnd(t *testing.T) {
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	red, err := c.AddMachine("red", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	blue, err := c.AddMachine("blue", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	red.AddAccount(100, "user")
	blue.AddAccount(100, "user")
	t.Cleanup(c.Shutdown)

	startFilter(t, c, blue, "f1", 9000, "")

	// A metered process on red, its meter connection wired to the
	// filter on blue exactly as the meterdaemon would do it.
	target, err := red.SpawnDetached(100, "target")
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := red.SpawnDetached(0, "daemon")
	if err != nil {
		t.Fatal(err)
	}
	msfd, err := daemon.Socket(meter.AFInet, kernel.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	host, _, err := c.ResolveFrom(red, "blue")
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Connect(msfd, meter.InetName(host, 9000)); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Setmeter(target.PID(), int(meter.MAll|meter.MImmediate), msfd); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Close(msfd); err != nil {
		t.Fatal(err)
	}

	// Generate events.
	f1, f2, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Send(f1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := target.Recv(f2, 100); err != nil {
		t.Fatal(err)
	}

	// The filter logs asynchronously; poll the log file.
	logPath := LogPath("f1")
	deadline := time.Now().Add(2 * time.Second)
	var log string
	for {
		if data, err := blue.FS().Read(logPath, 0); err == nil {
			log = string(data)
			if strings.Count(log, "\n") >= 7 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("filter log incomplete after deadline:\n%s", log)
		}
		time.Sleep(time.Millisecond)
	}
	lines := strings.Split(strings.TrimSpace(log), "\n")
	wantPrefixes := []string{"SOCKET", "SOCKET", "CONNECT", "ACCEPT", "SEND", "RECEIVECALL", "RECEIVE"}
	if len(lines) != len(wantPrefixes) {
		t.Fatalf("log has %d lines:\n%s", len(lines), log)
	}
	for i, w := range wantPrefixes {
		if !strings.HasPrefix(lines[i], w+" ") {
			t.Fatalf("line %d = %q, want %s event", i, lines[i], w)
		}
	}
	if !strings.Contains(lines[4], "msgLength=5") {
		t.Fatalf("send record lacks length: %q", lines[4])
	}
}

func TestStandardFilterAppliesTemplates(t *testing.T) {
	c := kernel.NewCluster(kernel.Config{})
	c.AddNetwork("ether0")
	red, err := c.AddMachine("red", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	red.AddAccount(100, "user")
	t.Cleanup(c.Shutdown)

	// Only send events survive the template.
	startFilter(t, c, red, "f2", 9000, "type=1\n")

	target, err := red.SpawnDetached(100, "target")
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := red.SpawnDetached(0, "daemon")
	if err != nil {
		t.Fatal(err)
	}
	msfd, _ := daemon.Socket(meter.AFInet, kernel.SockStream)
	if err := daemon.Connect(msfd, meter.InetName(red.PrimaryHostID(), 9000)); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Setmeter(target.PID(), int(meter.MAll|meter.MImmediate), msfd); err != nil {
		t.Fatal(err)
	}
	f1, f2, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Send(f1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := target.Recv(f2, 10); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	var log string
	for {
		if data, err := red.FS().Read(LogPath("f2"), 0); err == nil && len(data) > 0 {
			log = string(data)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no log output")
		}
		time.Sleep(time.Millisecond)
	}
	for _, line := range strings.Split(strings.TrimSpace(log), "\n") {
		if !strings.HasPrefix(line, "SEND ") {
			t.Fatalf("non-send record in filtered log: %q", line)
		}
	}
}
