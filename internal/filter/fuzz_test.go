package filter

import (
	"testing"

	"dpm/internal/meter"
)

// FuzzParseRules checks the selection-rule parser never panics and
// that accepted rule sets evaluate without panicking.
func FuzzParseRules(f *testing.F) {
	f.Add("machine=5, cpuTime<10000\n")
	f.Add("machine=#*, type=1, pid=#*, msgLength>=512\ntype=8, sockName=peerName\n")
	f.Add("a!=b, c>=#3")
	// Aggregate-syntax lines (the extended query grammar of
	// internal/agg) are not selection rules; they reach this parser when
	// a query text is mis-split, so it must reject them cleanly —
	// including truncated clauses, oversize k, and zero-width windows.
	f.Add("agg count by machine window 1s\n")
	f.Add("top 10 pid by sum(msgLength)\n")
	f.Add("agg count by\n")
	f.Add("agg count window\n")
	f.Add("top 10 pid by\n")
	f.Add("top 1000000 pid by count\n")
	f.Add("agg count window 0\n")
	f.Add("machine=3\nagg sum(msgLength) by machine,pid window 0ms\n")
	f.Fuzz(func(t *testing.T, text string) {
		rules, err := ParseRules([]byte(text))
		if err != nil {
			return
		}
		rec := sendRec(1, 2, 3, 4, 5, meter.Name{})
		keep, discards := rules.Select(rec)
		_ = keep
		_ = discards
	})
}

// FuzzParseDescriptions checks the descriptions parser on arbitrary
// input, and that accepted descriptions extract from arbitrary bytes
// without panicking.
func FuzzParseDescriptions(f *testing.F) {
	f.Add(StandardDescriptions, []byte{})
	f.Fuzz(func(t *testing.T, text string, raw []byte) {
		d, err := ParseDescriptions([]byte(text))
		if err != nil {
			return
		}
		_, _ = d.Extract(raw)
	})
}

// FuzzEngineProcess drives the whole filter engine on arbitrary meter
// streams.
func FuzzEngineProcess(f *testing.F) {
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		eng, err := NewEngine([]byte(StandardDescriptions), nil)
		if err != nil {
			t.Fatal(err)
		}
		lines, rest, err := eng.Process(stream)
		if err != nil {
			return
		}
		_ = lines
		if len(rest) > len(stream) {
			t.Fatal("rest grew")
		}
	})
}
