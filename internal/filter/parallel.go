package filter

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"dpm/internal/obs"
	"dpm/internal/store"
)

// This file is the filter's multicore execution layer. The classic
// Main loop decoded, selected, formatted, and flushed every
// connection's frames on a single goroutine; a Pipeline spreads that
// work over a bounded set of workers while preserving the two ordering
// guarantees the rest of the system depends on:
//
//   - per-connection record order: each source (meter connection) is
//     pinned to exactly one worker, and a worker processes its
//     sources' chunks in arrival order;
//   - store-before-log: a batch's records reach the event store before
//     its lines are queued for the flat log, so the store never holds
//     fewer records than the log (the chaos soak's invariant).
//
// The store sink is written concurrently by the workers — the store's
// per-shard locks already make AppendBatch safe and mostly
// uncontended — while the flat log, which is one shared append-only
// file, is fed through a single writer goroutine behind a bounded
// queue. Every queue in the pipeline is bounded, so a slow sink
// degrades throughput (feeds block) instead of growing memory; the
// stalls and drops are counted in FaultStats-style counters.

// PipelineConfig tunes a Pipeline. The zero value selects the
// defaults.
type PipelineConfig struct {
	// Workers is the number of processing goroutines; each source is
	// pinned to one worker. Defaults to GOMAXPROCS.
	Workers int
	// QueueDepth bounds each worker's input queue and the log writer's
	// queue, in chunks/batches. Defaults to 16.
	QueueDepth int
	// Obs is the registry the pipeline's counters live in — on a real
	// deployment the machine's registry, so a filter's metrics are
	// queryable over the daemon wire. Nil gets a fresh private registry,
	// which keeps Stats() per-pipeline in tests that run several
	// pipelines side by side.
	Obs *obs.Registry
	// Taps, when non-nil, supplies one RecordTap per worker; each
	// worker's engine calls its tap for every kept record and flushes
	// it after every processed chunk. This is how live streaming
	// analysis observes the record flow (internal/analysis/live).
	Taps TapSource
}

// DefaultQueueDepth is the bounded-queue depth used when
// PipelineConfig.QueueDepth is zero.
const DefaultQueueDepth = 16

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	return c
}

// Sinks is where a Pipeline delivers surviving records. Either sink
// may be nil. Store appends run concurrently from the workers (the
// store's per-shard locks serialize what must be serialized); Log is
// called from a single writer goroutine, one call per batch, with a
// buffer that is only valid for the duration of the call.
type Sinks struct {
	Store *store.Store
	Log   func(lines []byte) error
}

// PipelineStats is a snapshot of a pipeline's counters, in the style
// of kernel.FaultStats.
type PipelineStats struct {
	Workers        int
	Sources        int64 // sources ever attached
	Chunks         int64 // chunks fed
	Received       int64 // records decoded
	Kept           int64 // records that survived selection
	Discarded      int64 // records selection dropped
	Batches        int64 // non-empty batches flushed to the sinks
	FeedStalls     int64 // feeds that blocked on a full worker queue
	LogStalls      int64 // flushes that blocked on a full log queue
	Drops          int64 // chunks abandoned because the pipeline was shutting down
	StreamErrors   int64 // sources cut off by a corrupt meter stream
	SinkErrors     int64 // store or log append failures
	QueueDepth     int64 // instantaneous chunks+batches queued
	QueueHighWater int64 // maximum observed single-queue depth
}

// pipeItem is one unit of worker input: a chunk of meter-stream bytes
// from one source.
type pipeItem struct {
	src  *Source
	data []byte
}

// pipeWorker is one processing goroutine's state. Its per-worker
// counters (filter.worker<i>.*) expose skew between workers — a hot
// source pins its records to one worker, and without the breakdown a
// balanced-looking total can hide one saturated queue.
type pipeWorker struct {
	eng *Engine
	in  chan pipeItem

	received  *obs.Counter
	kept      *obs.Counter
	discarded *obs.Counter
}

// Pipeline is the bounded-parallelism ingest engine. Construct with
// NewPipeline, attach sources with NewSource, feed each source its
// connection's bytes in order, and Close when done (Close drains the
// queues and flushes the sinks).
type Pipeline struct {
	cfg     PipelineConfig
	sinks   Sinks
	workers []*pipeWorker
	logQ    chan *Batch
	quit    chan struct{}

	wg    sync.WaitGroup // workers
	logWg sync.WaitGroup // log writer

	closeOnce sync.Once
	batchPool sync.Pool

	nextWorker atomic.Int64
	logDead    atomic.Bool

	// All counters live in an obs registry (cfg.Obs or a private one);
	// the handles are resolved once here, never on the hot path. The
	// former bespoke atomics are these counters now — Stats() is a view.
	obs          *obs.Registry
	sources      *obs.Counter
	chunks       *obs.Counter
	received     *obs.Counter
	kept         *obs.Counter
	discarded    *obs.Counter
	batches      *obs.Counter
	feedStalls   *obs.Counter
	logStalls    *obs.Counter
	drops        *obs.Counter
	streamErrors *obs.Counter
	sinkErrors   *obs.Counter
	queueDepth   *obs.Gauge
	highWater    *obs.Gauge
	flushNS      *obs.Histogram
}

// NewPipeline builds a pipeline around an engine prototype: each
// worker gets a Clone sharing the compiled program. spawn launches the
// pipeline's goroutines (workers plus, when Sinks.Log is set, the log
// writer); nil means plain `go`. A filter running inside the simulated
// kernel passes kernel.Process.Go so the goroutines unwind cleanly
// when the process is killed.
func NewPipeline(proto *Engine, cfg PipelineConfig, sinks Sinks, spawn func(func())) *Pipeline {
	cfg = cfg.withDefaults()
	if spawn == nil {
		spawn = func(fn func()) { go fn() }
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	pl := &Pipeline{
		cfg:   cfg,
		sinks: sinks,
		logQ:  make(chan *Batch, cfg.QueueDepth),
		quit:  make(chan struct{}),

		obs:          reg,
		sources:      reg.Counter("filter.sources"),
		chunks:       reg.Counter("filter.chunks"),
		received:     reg.Counter("filter.received"),
		kept:         reg.Counter("filter.kept"),
		discarded:    reg.Counter("filter.discarded"),
		batches:      reg.Counter("filter.batches"),
		feedStalls:   reg.Counter("filter.feed_stalls"),
		logStalls:    reg.Counter("filter.log_stalls"),
		drops:        reg.Counter("filter.drops"),
		streamErrors: reg.Counter("filter.stream_errors"),
		sinkErrors:   reg.Counter("filter.sink_errors"),
		queueDepth:   reg.Gauge("filter.queue_depth"),
		highWater:    reg.Gauge("filter.queue_high_water"),
		flushNS:      reg.Histogram("filter.flush_ns"),
	}
	pl.batchPool.New = func() any { return new(Batch) }
	for i := 0; i < cfg.Workers; i++ {
		prefix := "filter.worker" + strconv.Itoa(i)
		w := &pipeWorker{
			eng:       proto.Clone(),
			in:        make(chan pipeItem, cfg.QueueDepth),
			received:  reg.Counter(prefix + ".received"),
			kept:      reg.Counter(prefix + ".kept"),
			discarded: reg.Counter(prefix + ".discarded"),
		}
		if cfg.Taps != nil {
			w.eng.SetTap(cfg.Taps.NewTap())
		}
		pl.workers = append(pl.workers, w)
		pl.wg.Add(1)
		spawn(func() { pl.runWorker(w) })
	}
	if sinks.Log != nil {
		pl.logWg.Add(1)
		spawn(pl.runLogWriter)
	}
	return pl
}

// Source is one ordered stream of meter bytes — a meter connection.
// All of a source's chunks are processed by one worker in feed order,
// so its records keep their wire order in both sinks. A Source's
// methods must be called from a single goroutine (the connection's
// drainer).
type Source struct {
	pl *Pipeline
	w  *pipeWorker
	// carry holds the partial trailing frame between chunks; only the
	// owning worker touches it.
	carry []byte
	// dead marks a source cut off by a corrupt stream; set and read by
	// the owning worker only.
	dead bool
}

// NewSource attaches a new source, assigning it to a worker
// round-robin.
func (pl *Pipeline) NewSource() *Source {
	pl.sources.Inc()
	n := pl.nextWorker.Add(1) - 1
	return &Source{pl: pl, w: pl.workers[int(n)%len(pl.workers)]}
}

// Feed hands the source's next chunk of meter-stream bytes to its
// worker, blocking when the worker's queue is full — backpressure
// that ultimately parks the meter connection's bytes in the kernel
// socket buffer. The pipeline owns data from this point until the
// chunk is processed; callers must not modify it afterwards (the
// kernel's Recv hands out a fresh slice per call, so the filter's
// drainers satisfy this for free). Feed returns false when the
// pipeline is shutting down and the chunk was not accepted.
func (s *Source) Feed(data []byte) bool {
	pl := s.pl
	select {
	case <-pl.quit:
		pl.drops.Inc()
		return false
	default:
	}
	it := pipeItem{src: s, data: data}
	select {
	case s.w.in <- it:
	default:
		pl.feedStalls.Inc()
		select {
		case s.w.in <- it:
		case <-pl.quit:
			pl.drops.Inc()
			return false
		}
	}
	pl.chunks.Inc()
	pl.noteDepth(int64(len(s.w.in)))
	return true
}

// noteDepth records an observed queue depth: the instantaneous gauge
// and the high-water mark.
func (pl *Pipeline) noteDepth(d int64) {
	pl.queueDepth.Set(d)
	pl.highWater.SetMax(d)
}

// runWorker drains the worker's queue. After quit, remaining queued
// chunks are processed (no silent loss on a graceful Close) and the
// worker exits.
func (pl *Pipeline) runWorker(w *pipeWorker) {
	defer pl.wg.Done()
	for {
		select {
		case it := <-w.in:
			pl.process(w, it)
		case <-pl.quit:
			for {
				select {
				case it := <-w.in:
					pl.process(w, it)
				default:
					return
				}
			}
		}
	}
}

// process runs one chunk end-to-end: carry splice, decode, select,
// format, store append, log enqueue.
func (pl *Pipeline) process(w *pipeWorker, it pipeItem) {
	s := it.src
	if s.dead {
		return
	}
	buf := it.data
	if len(s.carry) > 0 {
		s.carry = append(s.carry, it.data...)
		buf = s.carry
	}
	b := pl.batchPool.Get().(*Batch)
	b.Reset()
	recvBefore, keptBefore, discBefore := w.eng.Received, w.eng.Kept, w.eng.Discarded
	rest, err := w.eng.ProcessBatch(buf, b)
	recv := int64(w.eng.Received - recvBefore)
	kept := int64(w.eng.Kept - keptBefore)
	disc := int64(w.eng.Discarded - discBefore)
	pl.received.Add(recv)
	pl.kept.Add(kept)
	pl.discarded.Add(disc)
	w.received.Add(recv)
	w.kept.Add(kept)
	w.discarded.Add(disc)
	// Chunk boundary: publish whatever the worker's tap buffered, even
	// when the stream just turned out to be corrupt — records tapped
	// before the bad frame are real.
	w.eng.TapFlush()
	if err != nil {
		// A corrupt stream kills the source, exactly as the sequential
		// loop closed the connection; later chunks from it are ignored.
		s.dead = true
		s.carry = nil
		pl.streamErrors.Inc()
		pl.putBatch(b)
		return
	}
	// Keep only the partial tail; copy-down so nothing retains the fed
	// chunk.
	s.carry = append(s.carry[:0], rest...)
	if b.Len() == 0 {
		pl.putBatch(b)
		return
	}
	pl.batches.Inc()
	// Store first, then log: the store must never hold fewer records
	// than the flat log. The flush span covers the store append and the
	// log handoff — the full time a worker is occupied delivering one
	// batch downstream.
	flush := obs.StartSpan(pl.flushNS)
	if pl.sinks.Store != nil {
		if err := pl.sinks.Store.AppendBatch(b.StoreRecs()); err != nil {
			pl.sinkErrors.Inc()
		}
	}
	if pl.sinks.Log != nil {
		select {
		case pl.logQ <- b:
		default:
			pl.logStalls.Inc()
			pl.logQ <- b
		}
		pl.noteDepth(int64(len(pl.logQ)))
		flush.End()
		return
	}
	flush.End()
	pl.putBatch(b)
}

// runLogWriter is the single goroutine serializing flat-log appends.
// It exits when Close closes the queue, after the workers have
// drained.
func (pl *Pipeline) runLogWriter() {
	defer pl.logWg.Done()
	for b := range pl.logQ {
		pl.writeLog(b)
	}
}

// writeLog appends one batch's lines to the flat log. The Log callback
// runs inside the simulated kernel and unwinds with a panic when the
// filter process is killed mid-write; that only disables the sink —
// the writer keeps draining so no worker blocks forever on the queue.
func (pl *Pipeline) writeLog(b *Batch) {
	defer pl.putBatch(b)
	if pl.logDead.Load() {
		pl.drops.Inc()
		return
	}
	defer func() {
		if recover() != nil {
			pl.logDead.Store(true)
		}
	}()
	if err := pl.sinks.Log(b.Lines); err != nil {
		pl.sinkErrors.Inc()
	}
}

func (pl *Pipeline) putBatch(b *Batch) {
	b.Reset()
	pl.batchPool.Put(b)
}

// Close shuts the pipeline down: new feeds are refused, queued chunks
// are processed, the log queue is flushed, and the goroutines exit.
// Sources still feeding concurrently race the shutdown — their chunks
// are either processed or counted as drops. Close does not flush the
// store's active segments; callers that want footers call
// Store.Flush themselves.
func (pl *Pipeline) Close() {
	pl.closeOnce.Do(func() {
		close(pl.quit)
		pl.wg.Wait()
		close(pl.logQ)
		pl.logWg.Wait()
		// Workers are done, so every tap has issued its final flush;
		// a closable tap source may now stop its background work.
		if tc, ok := pl.cfg.Taps.(TapCloser); ok {
			tc.Close()
		}
	})
}

// Obs returns the registry the pipeline's counters live in — cfg.Obs,
// or the private registry created when cfg.Obs was nil.
func (pl *Pipeline) Obs() *obs.Registry { return pl.obs }

// Stats returns a snapshot of the pipeline's counters — a thin view
// over the obs registry, kept for the callers and tests that predate
// it.
func (pl *Pipeline) Stats() PipelineStats {
	st := PipelineStats{
		Workers:        len(pl.workers),
		Sources:        pl.sources.Load(),
		Chunks:         pl.chunks.Load(),
		Received:       pl.received.Load(),
		Kept:           pl.kept.Load(),
		Discarded:      pl.discarded.Load(),
		Batches:        pl.batches.Load(),
		FeedStalls:     pl.feedStalls.Load(),
		LogStalls:      pl.logStalls.Load(),
		Drops:          pl.drops.Load(),
		StreamErrors:   pl.streamErrors.Load(),
		SinkErrors:     pl.sinkErrors.Load(),
		QueueHighWater: pl.highWater.Load(),
	}
	for _, w := range pl.workers {
		st.QueueDepth += int64(len(w.in))
	}
	st.QueueDepth += int64(len(pl.logQ))
	return st
}
