package filter

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dpm/internal/meter"
	"dpm/internal/store"
)

// sourceStream builds one connection's meter stream: n messages tagged
// with the source's machine id and a per-source pid space, so every
// formatted line is globally unique and attributable.
func sourceStream(src, n int) []byte {
	var stream []byte
	dest := meter.InetName(228320140, 512)
	for i := 0; i < n; i++ {
		m := meter.Msg{
			Header: meter.Header{Machine: uint16(src + 1), CPUTime: uint32(i*10 + src), ProcTime: uint32(i)},
			Body:   &meter.Send{PID: uint32(src*1000 + i), PC: 0x400, Sock: 3, MsgLength: uint32(64 + i), DestNameLen: 16, DestName: dest},
		}
		stream = m.AppendEncode(stream)
	}
	return stream
}

// expectLines runs a fresh sequential engine over a whole stream and
// returns the formatted lines — the reference the pipeline must match.
func expectLines(t *testing.T, rules string, stream []byte) []string {
	t.Helper()
	eng, err := NewEngine([]byte(StandardDescriptions), []byte(rules))
	if err != nil {
		t.Fatal(err)
	}
	lines, rest, err := eng.Process(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatal("reference stream not fully consumed")
	}
	return lines
}

// feedChunks feeds a stream to a source in fixed-size chunks that do
// not align with frame boundaries, exercising the per-source carry.
func feedChunks(s *Source, stream []byte, chunk int) bool {
	for off := 0; off < len(stream); off += chunk {
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		// Feed owns its chunk from the call on; hand it a copy the way
		// the kernel's Recv hands the drainer a fresh slice.
		c := append([]byte(nil), stream[off:end]...)
		if !s.Feed(c) {
			return false
		}
	}
	return true
}

// TestPipelineEquivalence drives several sources through a multi-worker
// pipeline with deliberately misaligned chunking and asserts both sinks
// hold exactly the sequential result: the flat log's per-source line
// subsequence equals the sequential engine's output for that source,
// and the store holds every kept record in per-source time order.
func TestPipelineEquivalence(t *testing.T) {
	const (
		nsources = 7
		nmsgs    = 50
		rules    = "machine>=0, msgLength=#*\n"
	)
	proto, err := NewEngine([]byte(StandardDescriptions), []byte(rules))
	if err != nil {
		t.Fatal(err)
	}
	be := store.NewMemBackend()
	st, err := store.Open(be, store.Config{SegmentCap: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf []byte
	pipe := NewPipeline(proto, PipelineConfig{Workers: 4, QueueDepth: 4}, Sinks{
		Store: st,
		Log:   func(b []byte) error { logBuf = append(logBuf, b...); return nil },
	}, nil)

	// Reference lines per source, and a reverse map line -> source.
	expected := make([][]string, nsources)
	owner := map[string]int{}
	streams := make([][]byte, nsources)
	for s := 0; s < nsources; s++ {
		streams[s] = sourceStream(s, nmsgs)
		expected[s] = expectLines(t, rules, streams[s])
		if len(expected[s]) != nmsgs {
			t.Fatalf("source %d reference kept %d of %d", s, len(expected[s]), nmsgs)
		}
		for _, ln := range expected[s] {
			if _, dup := owner[ln]; dup {
				t.Fatalf("line not globally unique: %q", ln)
			}
			owner[ln] = s
		}
	}

	// Each source feeds from its own goroutine (as each connection's
	// drainer does), with a chunk size that splits frames.
	var wg sync.WaitGroup
	for s := 0; s < nsources; s++ {
		src := pipe.NewSource()
		wg.Add(1)
		go func(s int, src *Source) {
			defer wg.Done()
			if !feedChunks(src, streams[s], 37+s) {
				t.Errorf("source %d: pipeline refused feed", s)
			}
		}(s, src)
	}
	wg.Wait()
	pipe.Close()

	// Flat log: per-source subsequences must equal the reference.
	got := make([][]string, nsources)
	for _, ln := range strings.Split(strings.TrimSuffix(string(logBuf), "\n"), "\n") {
		s, ok := owner[ln]
		if !ok {
			t.Fatalf("log line not produced by any sequential reference: %q", ln)
		}
		got[s] = append(got[s], ln)
	}
	for s := 0; s < nsources; s++ {
		if len(got[s]) != len(expected[s]) {
			t.Fatalf("source %d: %d log lines, want %d", s, len(got[s]), len(expected[s]))
		}
		for i := range got[s] {
			if got[s][i] != expected[s][i] {
				t.Fatalf("source %d line %d out of order or mangled:\n got %q\nwant %q", s, i, got[s][i], expected[s][i])
			}
		}
	}

	// Store: every record present, in per-source (machine) time order.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := store.OpenReader(be)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	lastTime := map[uint16]uint32{}
	for _, segs := range rd.Shards() {
		for _, rs := range segs {
			seg, err := rs.Load()
			if err != nil {
				t.Fatalf("segment %s: %v", rs.Name, err)
			}
			for _, r := range seg.Recs {
				if last, ok := lastTime[r.Meta.Machine]; ok && r.Meta.Time <= last {
					t.Fatalf("machine %d: time %d after %d", r.Meta.Machine, r.Meta.Time, last)
				}
				lastTime[r.Meta.Machine] = r.Meta.Time
				count++
			}
		}
	}
	if want := nsources * nmsgs; count != want {
		t.Fatalf("store holds %d records, want %d", count, want)
	}

	stats := pipe.Stats()
	if stats.Sources != nsources {
		t.Fatalf("stats.Sources = %d, want %d", stats.Sources, nsources)
	}
	if stats.Received != int64(nsources*nmsgs) || stats.Kept != int64(nsources*nmsgs) {
		t.Fatalf("stats received=%d kept=%d, want %d each", stats.Received, stats.Kept, nsources*nmsgs)
	}
	if stats.StreamErrors != 0 || stats.SinkErrors != 0 || stats.Drops != 0 {
		t.Fatalf("unexpected error counters: %+v", stats)
	}
}

// TestPipelineStreamError cuts one source off mid-stream with corrupt
// bytes and asserts the damage is contained: the poisoned source stops
// at the corruption, the healthy source is untouched, and the error is
// counted.
func TestPipelineStreamError(t *testing.T) {
	proto, err := NewEngine([]byte(StandardDescriptions), nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var logBuf []byte
	pipe := NewPipeline(proto, PipelineConfig{Workers: 2}, Sinks{
		Log: func(b []byte) error { mu.Lock(); logBuf = append(logBuf, b...); mu.Unlock(); return nil },
	}, nil)

	good, bad := pipe.NewSource(), pipe.NewSource()
	goodStream := sourceStream(0, 30)
	badPrefix := sourceStream(1, 5)

	if !bad.Feed(append([]byte(nil), badPrefix...)) {
		t.Fatal("feed refused")
	}
	// A size field below the header minimum is unambiguous corruption.
	if !bad.Feed([]byte{1, 0, 0, 0, 9, 9, 9, 9}) {
		t.Fatal("feed refused")
	}
	// Later bytes from the dead source must be ignored, not parsed.
	bad.Feed(append([]byte(nil), badPrefix...))
	if !feedChunks(good, goodStream, 41) {
		t.Fatal("good source refused")
	}
	pipe.Close()

	goodLines := expectLines(t, "", goodStream)
	gotLog := string(logBuf)
	for _, ln := range goodLines {
		if !strings.Contains(gotLog, ln+"\n") {
			t.Fatalf("healthy source lost line %q", ln)
		}
	}
	stats := pipe.Stats()
	if stats.StreamErrors != 1 {
		t.Fatalf("StreamErrors = %d, want 1", stats.StreamErrors)
	}
	// 30 good + 5 bad-prefix records got through; the post-corruption
	// replay of the prefix must not have been decoded.
	if stats.Received != 35 {
		t.Fatalf("Received = %d, want 35", stats.Received)
	}
}

// TestPipelineBackpressure wedges the log sink and asserts the bounded
// queues push back — feeds stall rather than buffering without limit —
// and that every record still lands once the sink recovers.
func TestPipelineBackpressure(t *testing.T) {
	proto, err := NewEngine([]byte(StandardDescriptions), nil)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var blocked sync.Once
	var logBuf []byte
	pipe := NewPipeline(proto, PipelineConfig{Workers: 1, QueueDepth: 1}, Sinks{
		Log: func(b []byte) error {
			blocked.Do(func() { <-release })
			logBuf = append(logBuf, b...)
			return nil
		},
	}, nil)

	const nmsgs = 40
	stream := sourceStream(0, nmsgs)
	src := pipe.NewSource()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// One frame per feed: each chunk becomes its own batch, so the
		// single-slot queues fill as soon as the writer wedges.
		off := 0
		for off < len(stream) {
			size, err := meter.PeekSize(stream[off:])
			if err != nil || size == 0 {
				t.Errorf("bad frame at %d: %v", off, err)
				return
			}
			if !src.Feed(append([]byte(nil), stream[off:off+size]...)) {
				t.Error("pipeline refused feed")
				return
			}
			off += size
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		s := pipe.Stats()
		if s.FeedStalls > 0 || s.LogStalls > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no stalls recorded while the log sink was wedged")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	pipe.Close()

	if got, want := strings.Count(string(logBuf), "\n"), nmsgs; got != want {
		t.Fatalf("log holds %d lines after recovery, want %d", got, want)
	}
	s := pipe.Stats()
	if s.FeedStalls+s.LogStalls == 0 {
		t.Fatal("stall counters empty after wedged sink")
	}
	if s.QueueHighWater == 0 {
		t.Fatal("queue high-water mark never observed")
	}
}

// TestPipelineCloseRefusesFeeds verifies shutdown semantics: after
// Close, Feed reports refusal and counts a drop instead of blocking.
func TestPipelineCloseRefusesFeeds(t *testing.T) {
	proto, err := NewEngine([]byte(StandardDescriptions), nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipeline(proto, PipelineConfig{Workers: 2}, Sinks{}, nil)
	src := pipe.NewSource()
	pipe.Close()
	if src.Feed(sourceStream(0, 1)) {
		t.Fatal("Feed accepted a chunk after Close")
	}
	if pipe.Stats().Drops == 0 {
		t.Fatal("refused feed not counted as a drop")
	}
}
