//go:build !race

package filter

// raceEnabled reports whether this test binary was built with the race
// detector. The AllocsPerRun gates that exercise sync.Pool paths skip
// under race: race-mode pools deliberately drop a fraction of Puts, so
// a zero-allocation guarantee is not measurable there. The non-race CI
// step still enforces the gates on every push.
const raceEnabled = false
