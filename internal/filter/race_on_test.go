//go:build race

package filter

// See race_off_test.go.
const raceEnabled = true
