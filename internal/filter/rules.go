package filter

import (
	"fmt"
	"strconv"
	"strings"

	"dpm/internal/meter"
)

// Op is a comparison operator in a selection rule. "The conditions
// that may be used to specify selection criteria in a template are
// >, <, =, !=, >=, and <=" (section 3.4).
type Op int

// Comparison operators. Order matters in the parser: two-character
// operators must be tried first.
const (
	OpEQ Op = iota
	OpNE
	OpGE
	OpLE
	OpGT
	OpLT
)

var opNames = map[Op]string{OpEQ: "=", OpNE: "!=", OpGE: ">=", OpLE: "<=", OpGT: ">", OpLT: "<"}

func (o Op) String() string { return opNames[o] }

// Eval applies the comparison to two values. It is exported so other
// rule evaluators (the query engine runs these rules against stored
// trace events) share the exact operator semantics.
func (o Op) Eval(a, b uint64) bool { return o.eval(a, b) }

func (o Op) eval(a, b uint64) bool {
	switch o {
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	case OpGE:
		return a >= b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpLT:
		return a < b
	}
	return false
}

// Condition is one field test within a rule.
type Condition struct {
	Field string
	Op    Op
	// Exactly one of the following describes the right-hand side.
	Value    uint64 // literal numeric value
	Wildcard bool   // '*': matches any value
	FieldRef string // another field's name (e.g. sockName=peerName)
	// Discard marks the '#' prefix: if the rule accepts the record,
	// this field is dropped from the saved record.
	Discard bool
}

// Rule is a conjunction of conditions; a record matches the rule when
// every condition holds.
type Rule []Condition

// Rules is a whole templates file: a record is selected when any rule
// matches (each line of the file is an alternative).
type Rules []Rule

// ParseRules parses a selection-rules (templates) file: one rule per
// line, conditions separated by commas, in the syntax of Figures 3.3
// and 3.4 ("machine=5, cpuTime<10000"; wildcard '*'; discard '#').
func ParseRules(data []byte) (Rules, error) {
	var rules Rules
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var rule Rule
		for _, part := range strings.Split(line, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			cond, err := parseCondition(part)
			if err != nil {
				return nil, fmt.Errorf("filter: templates line %d: %w", lineNo+1, err)
			}
			rule = append(rule, cond)
		}
		if len(rule) > 0 {
			rules = append(rules, rule)
		}
	}
	return rules, nil
}

func parseCondition(s string) (Condition, error) {
	// Two-character operators first so "!=", ">=", "<=" are not
	// mis-split at "=", ">", "<".
	for _, probe := range []struct {
		text string
		op   Op
	}{{"!=", OpNE}, {">=", OpGE}, {"<=", OpLE}, {">", OpGT}, {"<", OpLT}, {"=", OpEQ}} {
		idx := strings.Index(s, probe.text)
		if idx <= 0 {
			continue
		}
		cond := Condition{Field: strings.TrimSpace(s[:idx]), Op: probe.op}
		rhs := strings.TrimSpace(s[idx+len(probe.text):])
		if strings.HasPrefix(rhs, "#") {
			cond.Discard = true
			rhs = rhs[1:]
		}
		switch {
		case rhs == "*":
			cond.Wildcard = true
		default:
			if v, err := strconv.ParseUint(rhs, 10, 64); err == nil {
				cond.Value = v
			} else if isFieldName(rhs) {
				cond.FieldRef = rhs
			} else {
				return Condition{}, fmt.Errorf("bad right-hand side %q", rhs)
			}
		}
		return cond, nil
	}
	return Condition{}, fmt.Errorf("no operator in condition %q", s)
}

// isFieldName reports whether a right-hand side is a field reference:
// a letter-initial identifier.
func isFieldName(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// FieldSource is the record-shaped value rules evaluate against: the
// filter's extracted Records implement it directly, and the query
// engine adapts stored trace events to it, so both stages share one
// rule evaluator and cannot drift apart.
type FieldSource interface {
	// Field returns the numeric value of a named field, header fields
	// included; socket-name fields yield their numeric value.
	Field(name string) (uint64, bool)
	// NameField returns the decoded socket name of a name field.
	NameField(name string) (meter.Name, bool)
}

// MatchSource evaluates the rule's conditions against any field
// source. It performs no discard bookkeeping and allocates nothing;
// callers that need the discard set apply DiscardSet on a match.
func (r Rule) MatchSource(src FieldSource) bool {
	for _, c := range r {
		if c.Wildcard {
			// '*' matches any value, but the field must exist.
			if _, ok := src.Field(c.Field); !ok {
				return false
			}
			continue
		}
		if c.FieldRef != "" {
			// Field-to-field comparison; socket-name fields compare
			// their full 16-byte names (e.g. sockName=peerName).
			if an, aok := src.NameField(c.Field); aok {
				bn, bok := src.NameField(c.FieldRef)
				if !bok {
					return false
				}
				eq := an == bn
				if (c.Op == OpEQ && !eq) || (c.Op == OpNE && eq) {
					return false
				}
				continue
			}
			a, aok := src.Field(c.Field)
			b, bok := src.Field(c.FieldRef)
			if !aok || !bok || !c.Op.eval(a, b) {
				return false
			}
			continue
		}
		v, ok := src.Field(c.Field)
		if !ok || !c.Op.eval(v, c.Value) {
			return false
		}
	}
	return true
}

// HasDiscards reports whether any condition carries the '#' prefix.
func (r Rule) HasDiscards() bool {
	for _, c := range r {
		if c.Discard {
			return true
		}
	}
	return false
}

// DiscardSet returns the set of fields the rule's '#' markers drop,
// or nil when it has none. The map is freshly built on each call;
// callers on a hot path should build it once per rule (the compiled
// program uses bitmasks instead).
func (r Rule) DiscardSet() map[string]bool {
	var discards map[string]bool
	for _, c := range r {
		if c.Discard {
			if discards == nil {
				discards = make(map[string]bool)
			}
			discards[c.Field] = true
		}
	}
	return discards
}

// SelectSource returns the index of the first rule matching the
// source, or -1. An empty rule set selects everything, reported as
// rule -1 with keep true.
func (rs Rules) SelectSource(src FieldSource) (keep bool, rule int) {
	if len(rs) == 0 {
		return true, -1
	}
	for i, r := range rs {
		if r.MatchSource(src) {
			return true, i
		}
	}
	return false, -1
}

// Select decides whether a record is kept. With no rules at all,
// every record is kept unedited. Otherwise the record is kept if any
// rule matches, with that rule's discards applied. A matching rule
// without '#' conditions reports a nil discard set, allocating no map.
func (rs Rules) Select(rec *Record) (keep bool, discards map[string]bool) {
	keep, rule := rs.SelectSource(rec)
	if !keep || rule < 0 {
		return keep, nil
	}
	return true, rs[rule].DiscardSet()
}
