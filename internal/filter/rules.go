package filter

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is a comparison operator in a selection rule. "The conditions
// that may be used to specify selection criteria in a template are
// >, <, =, !=, >=, and <=" (section 3.4).
type Op int

// Comparison operators. Order matters in the parser: two-character
// operators must be tried first.
const (
	OpEQ Op = iota
	OpNE
	OpGE
	OpLE
	OpGT
	OpLT
)

var opNames = map[Op]string{OpEQ: "=", OpNE: "!=", OpGE: ">=", OpLE: "<=", OpGT: ">", OpLT: "<"}

func (o Op) String() string { return opNames[o] }

// Eval applies the comparison to two values. It is exported so other
// rule evaluators (the query engine runs these rules against stored
// trace events) share the exact operator semantics.
func (o Op) Eval(a, b uint64) bool { return o.eval(a, b) }

func (o Op) eval(a, b uint64) bool {
	switch o {
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	case OpGE:
		return a >= b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpLT:
		return a < b
	}
	return false
}

// Condition is one field test within a rule.
type Condition struct {
	Field string
	Op    Op
	// Exactly one of the following describes the right-hand side.
	Value    uint64 // literal numeric value
	Wildcard bool   // '*': matches any value
	FieldRef string // another field's name (e.g. sockName=peerName)
	// Discard marks the '#' prefix: if the rule accepts the record,
	// this field is dropped from the saved record.
	Discard bool
}

// Rule is a conjunction of conditions; a record matches the rule when
// every condition holds.
type Rule []Condition

// Rules is a whole templates file: a record is selected when any rule
// matches (each line of the file is an alternative).
type Rules []Rule

// ParseRules parses a selection-rules (templates) file: one rule per
// line, conditions separated by commas, in the syntax of Figures 3.3
// and 3.4 ("machine=5, cpuTime<10000"; wildcard '*'; discard '#').
func ParseRules(data []byte) (Rules, error) {
	var rules Rules
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var rule Rule
		for _, part := range strings.Split(line, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			cond, err := parseCondition(part)
			if err != nil {
				return nil, fmt.Errorf("filter: templates line %d: %w", lineNo+1, err)
			}
			rule = append(rule, cond)
		}
		if len(rule) > 0 {
			rules = append(rules, rule)
		}
	}
	return rules, nil
}

func parseCondition(s string) (Condition, error) {
	// Two-character operators first so "!=", ">=", "<=" are not
	// mis-split at "=", ">", "<".
	for _, probe := range []struct {
		text string
		op   Op
	}{{"!=", OpNE}, {">=", OpGE}, {"<=", OpLE}, {">", OpGT}, {"<", OpLT}, {"=", OpEQ}} {
		idx := strings.Index(s, probe.text)
		if idx <= 0 {
			continue
		}
		cond := Condition{Field: strings.TrimSpace(s[:idx]), Op: probe.op}
		rhs := strings.TrimSpace(s[idx+len(probe.text):])
		if strings.HasPrefix(rhs, "#") {
			cond.Discard = true
			rhs = rhs[1:]
		}
		switch {
		case rhs == "*":
			cond.Wildcard = true
		default:
			if v, err := strconv.ParseUint(rhs, 10, 64); err == nil {
				cond.Value = v
			} else if isFieldName(rhs) {
				cond.FieldRef = rhs
			} else {
				return Condition{}, fmt.Errorf("bad right-hand side %q", rhs)
			}
		}
		return cond, nil
	}
	return Condition{}, fmt.Errorf("no operator in condition %q", s)
}

// isFieldName reports whether a right-hand side is a field reference:
// a letter-initial identifier.
func isFieldName(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// matches evaluates one rule against a record, returning whether it
// matched and, if it did, the set of fields its discard markers drop.
func (r Rule) matches(rec *Record) (bool, map[string]bool) {
	discards := make(map[string]bool)
	for _, c := range r {
		if c.Discard {
			discards[c.Field] = true
		}
		if c.Wildcard {
			// '*' matches any value, but the field must exist.
			if _, ok := rec.Field(c.Field); !ok {
				return false, nil
			}
			continue
		}
		if c.FieldRef != "" {
			// Field-to-field comparison; socket-name fields compare
			// their full 16-byte names (e.g. sockName=peerName).
			if an, aok := rec.NameField(c.Field); aok {
				bn, bok := rec.NameField(c.FieldRef)
				if !bok {
					return false, nil
				}
				eq := an == bn
				if (c.Op == OpEQ && !eq) || (c.Op == OpNE && eq) {
					return false, nil
				}
				continue
			}
			a, aok := rec.Field(c.Field)
			b, bok := rec.Field(c.FieldRef)
			if !aok || !bok || !c.Op.eval(a, b) {
				return false, nil
			}
			continue
		}
		v, ok := rec.Field(c.Field)
		if !ok || !c.Op.eval(v, c.Value) {
			return false, nil
		}
	}
	return true, discards
}

// Select decides whether a record is kept. With no rules at all,
// every record is kept unedited. Otherwise the record is kept if any
// rule matches, with that rule's discards applied.
func (rs Rules) Select(rec *Record) (keep bool, discards map[string]bool) {
	if len(rs) == 0 {
		return true, nil
	}
	for _, r := range rs {
		if ok, d := r.matches(rec); ok {
			return true, d
		}
	}
	return false, nil
}
