package filter

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dpm/internal/meter"
)

// TestRulesMatchReferenceProperty cross-checks the rule evaluator
// against a naive reference over randomly generated rule sets and
// records.
func TestRulesMatchReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fields := []string{"machine", "cpuTime", "type", "pid", "sock", "msgLength"}
	ops := []string{"=", "!=", ">", "<", ">=", "<="}

	type cond struct {
		field string
		op    string
		val   uint64
	}
	genRules := func() ([][]cond, string) {
		nRules := rng.Intn(3) + 1
		var rules [][]cond
		var lines []string
		for r := 0; r < nRules; r++ {
			nConds := rng.Intn(3) + 1
			var rule []cond
			var parts []string
			for c := 0; c < nConds; c++ {
				cc := cond{
					field: fields[rng.Intn(len(fields))],
					op:    ops[rng.Intn(len(ops))],
					val:   uint64(rng.Intn(8)),
				}
				rule = append(rule, cc)
				parts = append(parts, fmt.Sprintf("%s%s%d", cc.field, cc.op, cc.val))
			}
			rules = append(rules, rule)
			lines = append(lines, strings.Join(parts, ", "))
		}
		return rules, strings.Join(lines, "\n") + "\n"
	}

	evalCond := func(c cond, rec *Record) bool {
		v, ok := rec.Field(c.field)
		if !ok {
			return false
		}
		switch c.op {
		case "=":
			return v == c.val
		case "!=":
			return v != c.val
		case ">":
			return v > c.val
		case "<":
			return v < c.val
		case ">=":
			return v >= c.val
		case "<=":
			return v <= c.val
		}
		return false
	}

	f := func(machine, cpu, pid, sock, length uint8) bool {
		ref, text := genRules()
		rs, err := ParseRules([]byte(text))
		if err != nil {
			return false
		}
		rec := sendRec(uint16(machine%8), uint32(cpu%8), uint32(pid%8), uint32(sock%8), uint32(length%8), meter.Name{})
		want := false
		for _, rule := range ref {
			all := true
			for _, c := range rule {
				if !evalCond(c, rec) {
					all = false
					break
				}
			}
			if all {
				want = true
				break
			}
		}
		got, _ := rs.Select(rec)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestParseRulesRoundTripProperty: formatting a parsed rule set and
// re-parsing it yields identical selection behavior.
func TestParseRulesStability(t *testing.T) {
	text := "machine=5, cpuTime<10000\ntype=1, msgLength>=512\ntype=8, sockName=peerName\n"
	rs1, err := ParseRules([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := ParseRules([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		sendRec(5, 500, 1, 1, 1, meter.Name{}),
		sendRec(0, 0, 1, 1, 600, meter.Name{}),
		acceptRec(meter.UnixName("/a"), meter.UnixName("/a")),
		acceptRec(meter.UnixName("/a"), meter.UnixName("/b")),
		sendRec(9, 99999, 1, 1, 1, meter.Name{}),
	}
	for i, rec := range recs {
		k1, _ := rs1.Select(rec)
		k2, _ := rs2.Select(rec)
		if k1 != k2 {
			t.Fatalf("record %d: inconsistent selection", i)
		}
	}
}
