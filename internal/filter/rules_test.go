package filter

import (
	"testing"

	"dpm/internal/meter"
)

// rec builds a Record for rule tests.
func sendRec(machine uint16, cpu uint32, pid, sock, size uint32, dest meter.Name) *Record {
	d := &Descriptions{}
	_ = d
	destVal := uint64(0)
	if dest.Family() == meter.AFInet {
		h, _ := dest.Inet()
		destVal = uint64(h)
	}
	return &Record{
		Event: "SEND", Type: meter.EvSend, Machine: machine, CPUTime: cpu,
		Fields: []RecordField{
			{Name: "pid", Value: uint64(pid)},
			{Name: "pc", Value: 4},
			{Name: "sock", Value: uint64(sock)},
			{Name: "msgLength", Value: uint64(size)},
			{Name: "destNameLen", Value: 16},
			{Name: "destName", IsName: true, Addr: dest, Value: destVal},
		},
	}
}

func acceptRec(sockName, peerName meter.Name) *Record {
	return &Record{
		Event: "ACCEPT", Type: meter.EvAccept, Machine: 0,
		Fields: []RecordField{
			{Name: "pid", Value: 1},
			{Name: "pc", Value: 2},
			{Name: "sock", Value: 3},
			{Name: "newSock", Value: 4},
			{Name: "sockName", IsName: true, Addr: sockName},
			{Name: "peerName", IsName: true, Addr: peerName},
		},
	}
}

func mustRules(t *testing.T, text string) Rules {
	t.Helper()
	rs, err := ParseRules([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestFigure33FirstRule(t *testing.T) {
	// "machine=5, cpuTime<10000" matches any event records received
	// from machine 5 time stamped with a cpuTime under 10000 ms.
	rs := mustRules(t, "machine=5, cpuTime<10000\n")
	if keep, _ := rs.Select(sendRec(5, 9999, 1, 1, 1, meter.Name{})); !keep {
		t.Fatal("matching record rejected")
	}
	if keep, _ := rs.Select(sendRec(5, 10000, 1, 1, 1, meter.Name{})); keep {
		t.Fatal("cpuTime=10000 accepted by <10000")
	}
	if keep, _ := rs.Select(sendRec(4, 1, 1, 1, 1, meter.Name{})); keep {
		t.Fatal("wrong machine accepted")
	}
}

func TestFigure33SecondRule(t *testing.T) {
	// "machine=0, type=1, sock=4, destName=228320140" specifically
	// matches a send event on machine 0, socket 4, to that host.
	rs := mustRules(t, "machine=0, type=1, sock=4, destName=228320140\n")
	dest := meter.InetName(228320140, 21)
	if keep, _ := rs.Select(sendRec(0, 5, 9, 4, 100, dest)); !keep {
		t.Fatal("matching send rejected")
	}
	other := meter.InetName(12345, 21)
	if keep, _ := rs.Select(sendRec(0, 5, 9, 4, 100, other)); keep {
		t.Fatal("send to other destination accepted")
	}
	if keep, _ := rs.Select(sendRec(0, 5, 9, 5, 100, dest)); keep {
		t.Fatal("send on other socket accepted")
	}
}

func TestFigure34WildcardAndDiscard(t *testing.T) {
	// "machine=#*, type=1, pid=#*, size>=512": match any machine and
	// pid (discarding both fields) but only sends of at least 512
	// bytes. Our records call the length field msgLength.
	rs := mustRules(t, "machine=#*, type=1, pid=#*, msgLength>=512\n")
	keep, discards := rs.Select(sendRec(3, 1, 77, 1, 512, meter.Name{}))
	if !keep {
		t.Fatal("matching record rejected")
	}
	if !discards["machine"] || !discards["pid"] {
		t.Fatalf("discards = %v, want machine and pid", discards)
	}
	if keep, _ := rs.Select(sendRec(3, 1, 77, 1, 511, meter.Name{})); keep {
		t.Fatal("undersized send accepted")
	}
}

func TestFigure34FieldToField(t *testing.T) {
	// "type=8, sockName=peerName": accepts whose two names coincide.
	rs := mustRules(t, "type=8, sockName=peerName\n")
	same := meter.UnixName("/tmp/x")
	if keep, _ := rs.Select(acceptRec(same, same)); !keep {
		t.Fatal("equal names rejected")
	}
	if keep, _ := rs.Select(acceptRec(same, meter.UnixName("/tmp/y"))); keep {
		t.Fatal("different names accepted")
	}
}

func TestFieldToFieldInequality(t *testing.T) {
	rs := mustRules(t, "type=8, sockName!=peerName\n")
	a, b := meter.UnixName("/tmp/x"), meter.UnixName("/tmp/y")
	if keep, _ := rs.Select(acceptRec(a, b)); !keep {
		t.Fatal("different names rejected by !=")
	}
	if keep, _ := rs.Select(acceptRec(a, a)); keep {
		t.Fatal("equal names accepted by !=")
	}
}

func TestScalarFieldToField(t *testing.T) {
	rs := mustRules(t, "sock=newSock\n")
	r := acceptRec(meter.Name{}, meter.Name{})
	if keep, _ := rs.Select(r); keep {
		t.Fatal("sock=3 newSock=4 accepted by sock=newSock")
	}
	r.Fields[3].Value = 3
	if keep, _ := rs.Select(r); !keep {
		t.Fatal("equal scalar fields rejected")
	}
}

func TestRulesAreAlternatives(t *testing.T) {
	rs := mustRules(t, "machine=1\nmachine=2\n")
	if keep, _ := rs.Select(sendRec(1, 0, 1, 1, 1, meter.Name{})); !keep {
		t.Fatal("first alternative rejected")
	}
	if keep, _ := rs.Select(sendRec(2, 0, 1, 1, 1, meter.Name{})); !keep {
		t.Fatal("second alternative rejected")
	}
	if keep, _ := rs.Select(sendRec(3, 0, 1, 1, 1, meter.Name{})); keep {
		t.Fatal("unmatched record accepted")
	}
}

func TestEmptyRulesKeepEverything(t *testing.T) {
	rs := mustRules(t, "\n# comment only\n")
	if keep, _ := rs.Select(sendRec(9, 9, 9, 9, 9, meter.Name{})); !keep {
		t.Fatal("empty templates must select everything")
	}
}

func TestAllOperators(t *testing.T) {
	rec := sendRec(5, 100, 1, 1, 1, meter.Name{})
	cases := map[string]bool{
		"cpuTime=100\n":  true,
		"cpuTime=99\n":   false,
		"cpuTime!=99\n":  true,
		"cpuTime!=100\n": false,
		"cpuTime>99\n":   true,
		"cpuTime>100\n":  false,
		"cpuTime<101\n":  true,
		"cpuTime<100\n":  false,
		"cpuTime>=100\n": true,
		"cpuTime>=101\n": false,
		"cpuTime<=100\n": true,
		"cpuTime<=99\n":  false,
	}
	for text, want := range cases {
		rs := mustRules(t, text)
		if keep, _ := rs.Select(rec); keep != want {
			t.Errorf("%q: keep = %v, want %v", text, keep, want)
		}
	}
}

func TestWildcardRequiresFieldPresence(t *testing.T) {
	rs := mustRules(t, "newPid=*\n")
	if keep, _ := rs.Select(sendRec(1, 1, 1, 1, 1, meter.Name{})); keep {
		t.Fatal("wildcard matched a record lacking the field")
	}
}

func TestMissingFieldFailsCondition(t *testing.T) {
	rs := mustRules(t, "newPid=7\n")
	if keep, _ := rs.Select(sendRec(1, 1, 1, 1, 1, meter.Name{})); keep {
		t.Fatal("condition on missing field matched")
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, text := range []string{"machine\n", "machine=%\n", "=5\n"} {
		if _, err := ParseRules([]byte(text)); err == nil {
			t.Errorf("ParseRules(%q) succeeded", text)
		}
	}
}

func TestDiscardWithValueCondition(t *testing.T) {
	// A '#'-prefixed literal both conditions and discards: "pid=#7"
	// matches pid 7 and drops the field on acceptance.
	rs := mustRules(t, "pid=#7\n")
	keep, discards := rs.Select(sendRec(1, 1, 7, 1, 1, meter.Name{}))
	if !keep || !discards["pid"] {
		t.Fatalf("keep=%v discards=%v", keep, discards)
	}
	if keep, _ := rs.Select(sendRec(1, 1, 8, 1, 1, meter.Name{})); keep {
		t.Fatal("pid=#7 matched pid 8")
	}
}
