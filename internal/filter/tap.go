package filter

import (
	"sync/atomic"

	"dpm/internal/meter"
	"dpm/internal/obs"
)

// The record tap is the hook live streaming analysis hangs on: an
// observer that sees every record surviving selection, on the hot path,
// cheap enough to leave on. The engine never interprets what a tap
// does; it only promises two things. First, TapRecord is called with
// the record still in its extracted (pre-discard-mask) form plus the
// plan's TapInfo, so a tap reads fields by precomputed index — no
// string comparison, no map lookup, no allocation on the engine side.
// Second, the record and its fields are only valid for the duration of
// the call (they alias the pooled extraction record), so a tap must
// copy what it keeps.
//
// Taps are per-engine and engines are per-worker in the parallel
// pipeline, so TapRecord needs no internal locking for the per-record
// path; cross-worker aggregation happens in TapFlush, which the
// pipeline calls once per processed chunk — the natural batch boundary
// to amortize a lock over.

// TapInfo is the per-event-type index table a tap reads records
// through, computed once at compile time. Each index is the position
// in Record.Fields of the named field, -1 when the event type does not
// carry it. The indices cover the standard-description vocabulary;
// custom descriptions using the same field names get tapped the same
// way, and fields under other names simply stay -1.
type TapInfo struct {
	// Type is the event type this plan describes.
	Type meter.Type
	// PIDIdx is "pid" — the acting process.
	PIDIdx int16
	// SockIdx is "sock" — the acting descriptor.
	SockIdx int16
	// LenIdx is "msgLength" (SEND/RECEIVE).
	LenIdx int16
	// AuxIdx is the type's auxiliary numeric: "newSock" (DUP/ACCEPT),
	// "newPid" (FORK), or "status" (TERMPROC).
	AuxIdx int16
	// Name1Idx is the type's primary socket name: "destName" (SEND),
	// "sourceName" (RECEIVE), or "sockName" (CONNECT/ACCEPT).
	Name1Idx int16
	// Name2Idx is "peerName" (CONNECT/ACCEPT).
	Name2Idx int16
}

// tapIndexOf resolves one body-field name to its index, -1 when absent.
func tapIndexOf(ev *EventDesc, names ...string) int16 {
	for _, name := range names {
		for i := range ev.Fields {
			if ev.Fields[i].Name == name {
				return int16(i)
			}
		}
	}
	return -1
}

// buildTapInfo computes a plan's tap index table from its description.
func buildTapInfo(ev *EventDesc) TapInfo {
	return TapInfo{
		Type:     ev.Type,
		PIDIdx:   tapIndexOf(ev, "pid"),
		SockIdx:  tapIndexOf(ev, "sock"),
		LenIdx:   tapIndexOf(ev, "msgLength"),
		AuxIdx:   tapIndexOf(ev, "newSock", "newPid", "status"),
		Name1Idx: tapIndexOf(ev, "destName", "sourceName", "sockName"),
		Name2Idx: tapIndexOf(ev, "peerName"),
	}
}

// RecordTap observes records that survive selection. Implementations
// live in internal/analysis/live; the engine only calls through this
// interface.
type RecordTap interface {
	// TapRecord sees one kept record. info and rec are valid only for
	// the duration of the call.
	TapRecord(info *TapInfo, rec *Record)
	// TapFlush marks a batch boundary: the pipeline calls it after each
	// processed chunk, and Close-time drains end with one. A tap
	// buffering records locally publishes them here.
	TapFlush()
}

// TapSource hands out one RecordTap per pipeline worker, so the
// per-record path stays single-threaded per tap.
type TapSource interface {
	NewTap() RecordTap
}

// TapCloser is an optional extension of TapSource: a source running
// background work (the live collector's drainer) implements Close, and
// the pipeline calls it once after the last worker has drained and
// issued its final TapFlush. A closed source must keep serving
// captures — only its background activity stops.
type TapCloser interface {
	Close()
}

// SetTap attaches a tap to this engine (nil detaches). Clone does not
// carry the tap: each pipeline worker's engine gets its own via
// PipelineConfig.Taps.
func (e *Engine) SetTap(t RecordTap) { e.tap = t }

// TapFlush signals a batch boundary to the attached tap, if any.
// Sequential callers driving ProcessBatch/ProcessEach directly should
// call it at their own flush points.
func (e *Engine) TapFlush() {
	if e.tap != nil {
		e.tap.TapFlush()
	}
}

// TapFactory builds a tap source for one standard filter; reg is the
// filter's machine registry, so the taps' metrics and snapshot
// sections land where the daemon's stats handler will find them.
type TapFactory func(reg *obs.Registry, filterName string) TapSource

// tapFactory, when set, supplies the tap source for every standard
// filter started by Main — the seam through which internal/core wires
// live analysis into filters without this package importing it (the
// live operators import filter for Record and TapInfo, so the
// dependency cannot point the other way). Atomic because clusters are
// constructed while other clusters' filters may be running.
var tapFactory atomic.Pointer[TapFactory]

// SetTapFactory installs the factory Main consults when building its
// pipeline; nil disables tapping.
func SetTapFactory(fn TapFactory) {
	if fn == nil {
		tapFactory.Store(nil)
		return
	}
	tapFactory.Store(&fn)
}

// loadTapFactory returns the installed factory, nil when none.
func loadTapFactory() TapFactory {
	if p := tapFactory.Load(); p != nil {
		return *p
	}
	return nil
}
