// Package fsys provides the per-machine simulated file system used by
// the monitor reproduction.
//
// The paper depends on files in several places: filter processes read
// their event-record descriptions and selection-rule templates from
// files and write their trace logs to files under /usr/tmp (section
// 3.4); executables must be present on the machine where a process is
// created, and 4.2BSD's lack of a remote file system forced the
// controller to copy them with rcp (section 3.5.3); standard input can
// be redirected from a file that is first copied to the target machine
// (section 3.5.2); and all file access is checked against the user's
// account privileges (section 3.5.5).
//
// FS models exactly that much of a file system: a flat path→file map
// with an owner uid, simple read/write permission bits, executable
// entries that name a registered program, and a Copy helper standing in
// for rcp.
package fsys

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors reported by file operations, mirroring the UNIX errno values
// the paper's system would have produced.
var (
	ErrNotExist = errors.New("fsys: file does not exist (ENOENT)")
	ErrExist    = errors.New("fsys: file exists (EEXIST)")
	ErrPerm     = errors.New("fsys: permission denied (EACCES)")
	ErrNotExec  = errors.New("fsys: not an executable (ENOEXEC)")
	ErrBadPath  = errors.New("fsys: bad path name")
)

// Superuser is the uid that bypasses permission checks, as in UNIX.
const Superuser = 0

// Mode holds the simplified permission bits of a file.
type Mode struct {
	OwnerRead  bool
	OwnerWrite bool
	WorldRead  bool
	WorldWrite bool
}

// DefaultMode is owner read/write, world read — the common case for
// program and data files in the paper's environment.
var DefaultMode = Mode{OwnerRead: true, OwnerWrite: true, WorldRead: true}

// PrivateMode is owner read/write only, used for trace logs.
var PrivateMode = Mode{OwnerRead: true, OwnerWrite: true}

// File is one entry in a machine's file system.
type File struct {
	Path string
	// Owner is the uid of the file's owner; permission checks compare
	// against it (section 3.5.5).
	Owner int
	Mode  Mode
	// Data holds the file contents for data files.
	Data []byte
	// Program, when non-empty, marks the file executable: it names a
	// program registered with the cluster's program registry. Copying
	// the file (rcp) carries the program name along, which is how an
	// executable becomes runnable on a remote machine.
	Program string
}

// FS is the file system of one simulated machine. The zero value is
// not usable; call New.
type FS struct {
	mu    sync.Mutex
	files map[string]*File
}

// New returns an empty file system.
func New() *FS {
	return &FS{files: make(map[string]*File)}
}

func validPath(path string) error {
	if path == "" || !strings.HasPrefix(path, "/") {
		return fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	return nil
}

func (m Mode) readableBy(uid, owner int) bool {
	if uid == Superuser {
		return true
	}
	if uid == owner {
		return m.OwnerRead
	}
	return m.WorldRead
}

func (m Mode) writableBy(uid, owner int) bool {
	if uid == Superuser {
		return true
	}
	if uid == owner {
		return m.OwnerWrite
	}
	return m.WorldWrite
}

// Create creates or replaces a file owned by uid. Replacing an
// existing file requires write permission on it.
func (fs *FS) Create(path string, uid int, mode Mode, data []byte) error {
	if err := validPath(path); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if old, ok := fs.files[path]; ok && !old.Mode.writableBy(uid, old.Owner) {
		return fmt.Errorf("%w: %s", ErrPerm, path)
	}
	fs.files[path] = &File{Path: path, Owner: uid, Mode: mode, Data: append([]byte(nil), data...)}
	return nil
}

// CreateExecutable creates an executable file bound to the named
// registered program.
func (fs *FS) CreateExecutable(path string, uid int, program string) error {
	if err := validPath(path); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if old, ok := fs.files[path]; ok && !old.Mode.writableBy(uid, old.Owner) {
		return fmt.Errorf("%w: %s", ErrPerm, path)
	}
	fs.files[path] = &File{Path: path, Owner: uid, Mode: DefaultMode, Program: program}
	return nil
}

// Read returns a copy of the file's contents, checking read permission
// for uid.
func (fs *FS) Read(path string, uid int) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if !f.Mode.readableBy(uid, f.Owner) {
		return nil, fmt.Errorf("%w: %s", ErrPerm, path)
	}
	return append([]byte(nil), f.Data...), nil
}

// Append appends data to an existing file, checking write permission.
// If the file does not exist it is created owned by uid with
// PrivateMode, matching how filter log files appear under /usr/tmp.
func (fs *FS) Append(path string, uid int, data []byte) error {
	if err := validPath(path); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		fs.files[path] = &File{Path: path, Owner: uid, Mode: PrivateMode, Data: append([]byte(nil), data...)}
		return nil
	}
	if !f.Mode.writableBy(uid, f.Owner) {
		return fmt.Errorf("%w: %s", ErrPerm, path)
	}
	f.Data = append(f.Data, data...)
	return nil
}

// Remove deletes a file, checking write permission.
func (fs *FS) Remove(path string, uid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if !f.Mode.writableBy(uid, f.Owner) {
		return fmt.Errorf("%w: %s", ErrPerm, path)
	}
	delete(fs.files, path)
	return nil
}

// Exists reports whether a file is present, without permission checks
// (existence was visible to everyone in the paper's environment).
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Executable returns the registered program name bound to an
// executable file, checking read permission for uid.
func (fs *FS) Executable(path string, uid int) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if !f.Mode.readableBy(uid, f.Owner) {
		return "", fmt.Errorf("%w: %s", ErrPerm, path)
	}
	if f.Program == "" {
		return "", fmt.Errorf("%w: %s", ErrNotExec, path)
	}
	return f.Program, nil
}

// Stat returns a copy of the file's metadata and contents.
func (fs *FS) Stat(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return File{}, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	cp := *f
	cp.Data = append([]byte(nil), f.Data...)
	return cp, nil
}

// List returns the sorted paths with the given prefix.
func (fs *FS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Copy copies a file between (possibly different) file systems — the
// stand-in for the rcp utility the controller used when an executable
// or input file was not present on the target machine (section 3.5.3).
// The caller must be able to read the source; the copy is owned by uid
// on the destination.
func Copy(src *FS, srcPath string, dst *FS, dstPath string, uid int) error {
	f, err := src.Stat(srcPath)
	if err != nil {
		return err
	}
	if !f.Mode.readableBy(uid, f.Owner) {
		return fmt.Errorf("%w: %s", ErrPerm, srcPath)
	}
	if f.Program != "" {
		return dst.CreateExecutable(dstPath, uid, f.Program)
	}
	return dst.Create(dstPath, uid, f.Mode, f.Data)
}
