package fsys

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

const (
	alice = 101
	bob   = 102
)

func TestCreateAndRead(t *testing.T) {
	fs := New()
	if err := fs.Create("/a", alice, DefaultMode, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.Read("/a", alice)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("hello")) {
		t.Fatalf("Read = %q, want hello", data)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	if _, err := fs.Read("/missing", alice); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestBadPath(t *testing.T) {
	fs := New()
	for _, p := range []string{"", "relative", "no/slash"} {
		if err := fs.Create(p, alice, DefaultMode, nil); !errors.Is(err, ErrBadPath) {
			t.Errorf("Create(%q) err = %v, want ErrBadPath", p, err)
		}
	}
}

func TestWorldReadable(t *testing.T) {
	fs := New()
	if err := fs.Create("/pub", alice, DefaultMode, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/pub", bob); err != nil {
		t.Fatalf("world-readable file not readable by other user: %v", err)
	}
}

func TestPrivateNotReadableByOthers(t *testing.T) {
	fs := New()
	if err := fs.Create("/priv", alice, PrivateMode, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/priv", bob); !errors.Is(err, ErrPerm) {
		t.Fatalf("err = %v, want ErrPerm", err)
	}
}

func TestSuperuserBypassesPermissions(t *testing.T) {
	fs := New()
	if err := fs.Create("/priv", alice, PrivateMode, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/priv", Superuser); err != nil {
		t.Fatalf("superuser read failed: %v", err)
	}
	if err := fs.Remove("/priv", Superuser); err != nil {
		t.Fatalf("superuser remove failed: %v", err)
	}
}

func TestOverwriteRequiresWritePermission(t *testing.T) {
	fs := New()
	if err := fs.Create("/f", alice, PrivateMode, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/f", bob, DefaultMode, []byte("y")); !errors.Is(err, ErrPerm) {
		t.Fatalf("err = %v, want ErrPerm", err)
	}
}

func TestAppendCreatesWithPrivateMode(t *testing.T) {
	fs := New()
	if err := fs.Append("/usr/tmp/log1", alice, []byte("rec1\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/usr/tmp/log1", alice, []byte("rec2\n")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.Read("/usr/tmp/log1", alice)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "rec1\nrec2\n" {
		t.Fatalf("log contents = %q", data)
	}
	if _, err := fs.Read("/usr/tmp/log1", bob); !errors.Is(err, ErrPerm) {
		t.Fatalf("trace log readable by other user: %v", err)
	}
}

func TestAppendDeniedWithoutWrite(t *testing.T) {
	fs := New()
	if err := fs.Create("/f", alice, PrivateMode, nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("/f", bob, []byte("x")); !errors.Is(err, ErrPerm) {
		t.Fatalf("err = %v, want ErrPerm", err)
	}
}

func TestExecutable(t *testing.T) {
	fs := New()
	if err := fs.CreateExecutable("/bin/worker", alice, "worker-v1"); err != nil {
		t.Fatal(err)
	}
	prog, err := fs.Executable("/bin/worker", bob)
	if err != nil {
		t.Fatal(err)
	}
	if prog != "worker-v1" {
		t.Fatalf("Executable = %q, want worker-v1", prog)
	}
}

func TestExecutableOnDataFile(t *testing.T) {
	fs := New()
	if err := fs.Create("/data", alice, DefaultMode, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Executable("/data", alice); !errors.Is(err, ErrNotExec) {
		t.Fatalf("err = %v, want ErrNotExec", err)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	if err := fs.Create("/f", alice, DefaultMode, nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f", alice); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/f") {
		t.Fatal("file still exists after Remove")
	}
	if err := fs.Remove("/f", alice); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestList(t *testing.T) {
	fs := New()
	for _, p := range []string{"/usr/tmp/b", "/usr/tmp/a", "/etc/x"} {
		if err := fs.Create(p, alice, DefaultMode, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("/usr/tmp/")
	if len(got) != 2 || got[0] != "/usr/tmp/a" || got[1] != "/usr/tmp/b" {
		t.Fatalf("List = %v", got)
	}
}

func TestCopyDataFile(t *testing.T) {
	src, dst := New(), New()
	if err := src.Create("/f", alice, DefaultMode, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := Copy(src, "/f", dst, "/f", bob); err != nil {
		t.Fatal(err)
	}
	data, err := dst.Read("/f", bob)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" {
		t.Fatalf("copied data = %q", data)
	}
}

func TestCopyExecutableCarriesProgram(t *testing.T) {
	// rcp of an executable must leave it runnable on the remote
	// machine (paper section 3.5.3).
	src, dst := New(), New()
	if err := src.CreateExecutable("/bin/p", alice, "prog"); err != nil {
		t.Fatal(err)
	}
	if err := Copy(src, "/bin/p", dst, "/bin/p", alice); err != nil {
		t.Fatal(err)
	}
	prog, err := dst.Executable("/bin/p", alice)
	if err != nil {
		t.Fatal(err)
	}
	if prog != "prog" {
		t.Fatalf("program = %q, want prog", prog)
	}
}

func TestCopyDeniedWithoutReadAccess(t *testing.T) {
	src, dst := New(), New()
	if err := src.Create("/priv", alice, PrivateMode, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := Copy(src, "/priv", dst, "/priv", bob); !errors.Is(err, ErrPerm) {
		t.Fatalf("err = %v, want ErrPerm", err)
	}
}

func TestCopyMissingSource(t *testing.T) {
	src, dst := New(), New()
	if err := Copy(src, "/nope", dst, "/nope", alice); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	fs := New()
	if err := fs.Create("/f", alice, DefaultMode, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.Read("/f", alice)
	data[0] = 'X'
	again, _ := fs.Read("/f", alice)
	if string(again) != "abc" {
		t.Fatal("Read exposed internal buffer")
	}
}

func TestCreateReadRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		fs := New()
		if err := fs.Create("/f", alice, DefaultMode, data); err != nil {
			return false
		}
		got, err := fs.Read("/f", alice)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendOrderPreserved(t *testing.T) {
	f := func(chunks [][]byte) bool {
		fs := New()
		var want []byte
		for _, c := range chunks {
			if err := fs.Append("/log", alice, c); err != nil {
				return false
			}
			want = append(want, c...)
		}
		if len(chunks) == 0 {
			return true
		}
		got, err := fs.Read("/log", alice)
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
