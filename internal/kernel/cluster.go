package kernel

import (
	"fmt"
	"sync"
	"time"

	"dpm/internal/clock"
	"dpm/internal/fsys"
	"dpm/internal/netsim"
	"dpm/internal/obs"
)

// Config carries cluster-wide simulation parameters.
type Config struct {
	// SyscallCost is the machine-clock and CPU time charged per system
	// call. The default (200µs) makes a few thousand syscalls add up
	// to the tenths-of-seconds the paper's cpuTime examples show.
	SyscallCost time.Duration
	// MeterBufferCount overrides the kernel's meter message buffering
	// threshold; zero uses meter.DefaultBufferCount.
	MeterBufferCount int
	// ComputeWallScale, when positive, makes Compute(d) also sleep
	// d*scale of real time. By default compute is purely virtual
	// (instantaneous in wall time), which is fast but means processes
	// on different machines do not interleave realistically; workloads
	// whose *timing* is under study (pipelines, starvation) set a
	// small scale (e.g. 0.01) so execution paces out.
	ComputeWallScale float64
	// SchedWorkers is the size of the cluster's task-scheduler worker
	// pool (Machine.SpawnTask); zero uses min(8, max(2, GOMAXPROCS)).
	SchedWorkers int
	// DgramQueueCap bounds each socket's queue of undelivered
	// datagrams: deliveries beyond it are shed (counted in
	// mem.shed_dgrams) so one unread socket cannot grow a machine's
	// footprint without limit. Zero uses DefaultDgramQueueCap; a
	// negative value removes the bound.
	DgramQueueCap int
}

// DefaultDgramQueueCap is the per-socket datagram queue budget used
// when Config.DgramQueueCap is zero. At the fabric's 8 KiB maximum
// datagram it bounds one socket at 32 MiB, but typical meter-sized
// datagrams keep a full queue in the hundreds of kilobytes.
const DefaultDgramQueueCap = 4096

// DefaultSyscallCost is used when Config.SyscallCost is zero.
const DefaultSyscallCost = 200 * time.Microsecond

// Cluster is the whole simulated installation: machines, the networks
// joining them, and the registry of programs that executable files
// refer to.
type Cluster struct {
	cfg Config

	mu       sync.Mutex
	machines map[string]*Machine
	byID     []*Machine
	networks map[string]*netsim.Network
	programs map[string]Program
	hostToM  map[uint32]*Machine
	hostNet  map[uint32]string // host id -> network it is an address on
	nextHost uint32

	schedMu   sync.Mutex
	scheduler *scheduler // lazily started by the first SpawnTask

	wg sync.WaitGroup // all process goroutines across all machines
}

// NewCluster returns an empty cluster.
func NewCluster(cfg Config) *Cluster {
	if cfg.SyscallCost == 0 {
		cfg.SyscallCost = DefaultSyscallCost
	}
	return &Cluster{
		cfg:      cfg,
		machines: make(map[string]*Machine),
		networks: make(map[string]*netsim.Network),
		programs: make(map[string]Program),
		hostToM:  make(map[uint32]*Machine),
		hostNet:  make(map[uint32]string),
	}
}

// AddNetwork creates a network in the cluster. The cluster installs a
// cut hook so that partitioning the network also resets established
// stream connections between machines left with no path to each other
// (see streamCutHook in faults.go).
func (c *Cluster) AddNetwork(name string, opts ...netsim.Option) *netsim.Network {
	n := netsim.New(name, opts...)
	n.SetCutHook(c.streamCutHook)
	c.mu.Lock()
	c.networks[name] = n
	c.mu.Unlock()
	return n
}

// Networks returns every network in the cluster.
func (c *Cluster) Networks() []*netsim.Network {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*netsim.Network, 0, len(c.networks))
	for _, n := range c.networks {
		out = append(out, n)
	}
	return out
}

// Network returns a network by name.
func (c *Cluster) Network(name string) (*netsim.Network, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.networks[name]
	if !ok {
		return nil, fmt.Errorf("kernel: no network %q", name)
	}
	return n, nil
}

// AddMachine creates a machine attached to the given networks (which
// must already exist). The machine id is its creation order, starting
// at 1; meter message headers carry it.
func (c *Cluster) AddMachine(name string, clk *clock.MachineClock, networks ...string) (*Machine, error) {
	if clk == nil {
		clk = clock.New()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.machines[name]; ok {
		return nil, fmt.Errorf("kernel: machine %q already exists", name)
	}
	reg := obs.NewRegistry()
	m := &Machine{
		name:      name,
		id:        uint16(len(c.byID) + 1),
		cluster:   c,
		clock:     clk,
		fs:        fsys.New(),
		obs:       reg,
		faults:    newMachineFaults(reg),
		mem:       newMachineMem(reg),
		procs:     make(map[int]*Process),
		accounts:  make(map[int]string),
		hostIDs:   make(map[string]uint32),
		ports:     make(map[portKey]*Socket),
		unixSocks: make(map[string]*Socket),
		nextPort:  ephemeralBase,
		wg:        &c.wg,
	}
	for _, nn := range networks {
		n, ok := c.networks[nn]
		if !ok {
			return nil, fmt.Errorf("kernel: no network %q", nn)
		}
		c.nextHost++
		host := c.nextHost
		if err := n.Attach(host, m); err != nil {
			return nil, err
		}
		m.hostIDs[nn] = host
		m.netOrder = append(m.netOrder, nn)
		c.hostToM[host] = m
		c.hostNet[host] = nn
	}
	c.machines[name] = m
	c.byID = append(c.byID, m)
	return m, nil
}

// Machine returns a machine by host name.
func (c *Cluster) Machine(name string) (*Machine, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.machines[name]
	if !ok {
		return nil, fmt.Errorf("kernel: no machine %q", name)
	}
	return m, nil
}

// MachineByID returns a machine by its meter-header id.
func (c *Cluster) MachineByID(id uint16) (*Machine, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == 0 || int(id) > len(c.byID) {
		return nil, fmt.Errorf("kernel: no machine id %d", id)
	}
	return c.byID[id-1], nil
}

// Machines returns the machines in creation (id) order.
func (c *Cluster) Machines() []*Machine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Machine(nil), c.byID...)
}

// machineByHost maps a network host id back to its machine.
func (c *Cluster) machineByHost(host uint32) *Machine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hostToM[host]
}

// RegisterProgram installs a program in the cluster-wide registry;
// executable files refer to programs by this name.
func (c *Cluster) RegisterProgram(name string, p Program) {
	c.mu.Lock()
	c.programs[name] = p
	c.mu.Unlock()
}

func (c *Cluster) program(name string) Program {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.programs[name]
}

// ResolveFrom constructs, from machine `from`'s point of view, the
// address of `host`. This is the paper's rule for exchanging socket
// names across machines: because a multi-homed host has a different
// address on each network, "the literal name of the host and the
// number of the port are exchanged. The receiving process then
// constructs the socket name using its own host address for the
// specified machine" (section 3.5.4). The returned host id is the
// target's address on a network shared with `from` (or the target's
// primary address when from is nil or shares no network — the
// "gateway" case).
func (c *Cluster) ResolveFrom(from *Machine, host string) (uint32, *Machine, error) {
	target, err := c.Machine(host)
	if err != nil {
		return 0, nil, err
	}
	if from != nil {
		from.mu.Lock()
		fromNets := append([]string(nil), from.netOrder...)
		from.mu.Unlock()
		for _, nn := range fromNets {
			if h, ok := target.hostIDOn(nn); ok {
				return h, target, nil
			}
		}
	}
	return target.PrimaryHostID(), target, nil
}

// Rcp copies a file between machines, as the controller did with the
// rcp utility when a file was not present on a target machine
// (section 3.5.3).
func (c *Cluster) Rcp(srcMachine, srcPath, dstMachine, dstPath string, uid int) error {
	src, err := c.Machine(srcMachine)
	if err != nil {
		return err
	}
	dst, err := c.Machine(dstMachine)
	if err != nil {
		return err
	}
	return fsys.Copy(src.fs, srcPath, dst.fs, dstPath, uid)
}

// SyscallCost returns the configured per-syscall charge.
func (c *Cluster) SyscallCost() time.Duration { return c.cfg.SyscallCost }

// meterBufferCount returns the kernel meter buffering threshold.
func (c *Cluster) meterBufferCount() int {
	if c.cfg.MeterBufferCount > 0 {
		return c.cfg.MeterBufferCount
	}
	return 0 // caller substitutes meter.DefaultBufferCount
}

// dgramQueueCap returns the per-socket datagram queue budget; <= 0
// means unbounded.
func (c *Cluster) dgramQueueCap() int {
	if c.cfg.DgramQueueCap != 0 {
		return c.cfg.DgramQueueCap
	}
	return DefaultDgramQueueCap
}

// sched returns the cluster's task scheduler, starting it on first
// use so clusters that never SpawnTask cost no goroutines.
func (c *Cluster) sched() *scheduler {
	c.schedMu.Lock()
	defer c.schedMu.Unlock()
	if c.scheduler == nil {
		c.scheduler = newScheduler(c.cfg.SchedWorkers)
	}
	return c.scheduler
}

// Shutdown kills every live process, waits for their goroutines, and
// closes the networks, so a simulation never leaks goroutines. Task
// processes are retired by the scheduler's workers (a kill wakes a
// parked task), after which the worker pool itself is stopped.
func (c *Cluster) Shutdown() {
	for _, m := range c.Machines() {
		for _, p := range m.Procs() {
			p.signal(SIGKILL)
		}
	}
	c.wg.Wait()
	c.schedMu.Lock()
	sched := c.scheduler
	c.scheduler = nil
	c.schedMu.Unlock()
	if sched != nil {
		sched.stop()
	}
	c.mu.Lock()
	nets := make([]*netsim.Network, 0, len(c.networks))
	for _, n := range c.networks {
		nets = append(nets, n)
	}
	c.mu.Unlock()
	for _, n := range nets {
		n.Close()
	}
}
