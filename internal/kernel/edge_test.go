package kernel

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dpm/internal/fsys"
	"dpm/internal/meter"
)

func TestListenOnConnectedSocket(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	_, lname := listenStream(t, p, 3000)
	cfd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	// The implicitly bound, connected socket cannot become a listener.
	if err := p.Listen(cfd, 1); !errors.Is(err, ErrInval) {
		t.Fatalf("err = %v, want ErrInval", err)
	}
}

func TestListenOnUnboundSocket(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.Listen(fd, 1); !errors.Is(err, ErrInval) {
		t.Fatalf("err = %v, want ErrInval", err)
	}
}

func TestListenOnDgramSocket(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd, _ := p.Socket(meter.AFInet, SockDgram)
	if err := p.BindPort(fd, 3000); err != nil {
		t.Fatal(err)
	}
	if err := p.Listen(fd, 1); !errors.Is(err, ErrOpNotSupp) {
		t.Fatalf("err = %v, want ErrOpNotSupp", err)
	}
}

func TestConnectToBoundButNotListening(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	sfd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.BindPort(sfd, 3000); err != nil {
		t.Fatal(err)
	}
	s, _ := p.sockFD(sfd)
	cfd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.Connect(cfd, s.BoundName()); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestAcceptOnNonListener(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd, _ := p.Socket(meter.AFInet, SockStream)
	if _, _, err := p.Accept(fd); !errors.Is(err, ErrInval) {
		t.Fatalf("err = %v, want ErrInval", err)
	}
}

func TestConnectOnListener(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	lfd, lname := listenStream(t, p, 3000)
	if err := p.Connect(lfd, lname); !errors.Is(err, ErrOpNotSupp) {
		t.Fatalf("err = %v, want ErrOpNotSupp", err)
	}
}

func TestSendOnUnconnectedStream(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd, _ := p.Socket(meter.AFInet, SockStream)
	if _, err := p.Send(fd, []byte("x")); !errors.Is(err, ErrNotConn) {
		t.Fatalf("err = %v, want ErrNotConn", err)
	}
	if _, err := p.Recv(fd, 10); !errors.Is(err, ErrNotConn) {
		t.Fatalf("recv err = %v, want ErrNotConn", err)
	}
}

func TestBadSocketArguments(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	if _, err := p.Socket(77, SockStream); !errors.Is(err, ErrAfNoSupport) {
		t.Fatalf("bad domain err = %v", err)
	}
	if _, err := p.Socket(meter.AFInet, 9); !errors.Is(err, ErrInval) {
		t.Fatalf("bad type err = %v", err)
	}
}

func TestBindDomainMismatch(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	ifd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.Bind(ifd, meter.UnixName("/tmp/x")); !errors.Is(err, ErrAfNoSupport) {
		t.Fatalf("err = %v, want ErrAfNoSupport", err)
	}
	ufd, _ := p.Socket(meter.AFUnix, SockStream)
	if err := p.Bind(ufd, meter.InetName(0, 3000)); !errors.Is(err, ErrAfNoSupport) {
		t.Fatalf("err = %v, want ErrAfNoSupport", err)
	}
}

func TestDoubleBind(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.BindPort(fd, 3000); err != nil {
		t.Fatal(err)
	}
	if err := p.BindPort(fd, 3001); !errors.Is(err, ErrInval) {
		t.Fatalf("err = %v, want ErrInval", err)
	}
}

func TestRecvZeroMax(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd1, _, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Recv(fd1, 0); !errors.Is(err, ErrInval) {
		t.Fatalf("err = %v, want ErrInval", err)
	}
}

func TestSendToOnStream(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd, _ := p.Socket(meter.AFInet, SockStream)
	if _, err := p.SendTo(fd, []byte("x"), meter.InetName(1, 1)); !errors.Is(err, ErrOpNotSupp) {
		t.Fatalf("err = %v, want ErrOpNotSupp", err)
	}
}

func TestOversizeDatagramRejected(t *testing.T) {
	_, red, green := newTestCluster(t)
	recvr := detached(t, green)
	rfd, _ := recvr.Socket(meter.AFInet, SockDgram)
	if err := recvr.BindPort(rfd, 5000); err != nil {
		t.Fatal(err)
	}
	rs, _ := recvr.sockFD(rfd)
	sender := detached(t, red)
	sfd, _ := sender.Socket(meter.AFInet, SockDgram)
	big := make([]byte, 10000)
	if _, err := sender.SendTo(sfd, big, rs.BoundName()); !errors.Is(err, ErrMsgSize) {
		t.Fatalf("err = %v, want ErrMsgSize", err)
	}
}

func TestWriteToStdoutWriter(t *testing.T) {
	// WaitExit's channel edge orders the program's writes before the
	// test's read, so a plain buffer is safe.
	_, red, _ := newTestCluster(t)
	var sb bytes.Buffer
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Stdout: &sb, Program: func(p *Process) int {
		p.Printf("hello %s", "stdout")
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	p.WaitExit()
	if sb.String() != "hello stdout" {
		t.Fatalf("stdout = %q", sb.String())
	}
}

func TestClockGossipOnStreamDelivery(t *testing.T) {
	// A message from a busy machine drags the idle receiver's clock
	// forward, so a blocked receiver observes elapsed time — the loose
	// synchronization message traffic provides.
	_, red, green := newTestCluster(t)
	server := detached(t, green)
	lfd, lname := listenStream(t, server, 3000)
	client := detached(t, red)
	cfd, _ := client.Socket(meter.AFInet, SockStream)
	if err := client.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	afd, _, err := server.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	client.Compute(500 * time.Millisecond)
	redNow := red.Clock().Now()
	if green.Clock().Now() >= redNow {
		t.Fatal("precondition: green should be behind red")
	}
	if _, err := client.Send(cfd, []byte("tick")); err != nil {
		t.Fatal(err)
	}
	if green.Clock().Now() < redNow {
		t.Fatalf("green clock %v not raised to red's %v", green.Clock().Now(), redNow)
	}
	if _, err := server.Recv(afd, 10); err != nil {
		t.Fatal(err)
	}
}

func TestClockGossipOnDatagram(t *testing.T) {
	_, red, green := newTestCluster(t)
	recvr := detached(t, green)
	rfd, _ := recvr.Socket(meter.AFInet, SockDgram)
	if err := recvr.BindPort(rfd, 5000); err != nil {
		t.Fatal(err)
	}
	rname := recvr.sockMustName(t, rfd)
	sender := detached(t, red)
	sfd, _ := sender.Socket(meter.AFInet, SockDgram)
	sender.Compute(300 * time.Millisecond)
	redNow := red.Clock().Now()
	if _, err := sender.SendTo(sfd, []byte("x"), rname); err != nil {
		t.Fatal(err)
	}
	if green.Clock().Now() < redNow {
		t.Fatalf("green clock %v not raised to red's %v", green.Clock().Now(), redNow)
	}
}

func TestComputeWallScale(t *testing.T) {
	c := NewCluster(Config{ComputeWallScale: 0.01})
	c.AddNetwork("e")
	m, err := c.AddMachine("m", nil, "e")
	if err != nil {
		t.Fatal(err)
	}
	m.AddAccount(testUID, "u")
	t.Cleanup(c.Shutdown)
	p, err := m.SpawnDetached(testUID, "p")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	p.Compute(time.Second) // 1s virtual → ≥10ms wall
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("wall-paced compute took only %v", elapsed)
	}
	if got := p.cpu.Raw(); got != time.Second {
		t.Fatalf("virtual charge = %v", got)
	}
}

func TestExecUnreadableFile(t *testing.T) {
	_, red, _ := newTestCluster(t)
	red.AddAccount(200, "other")
	// A file private to another user cannot be exec'd.
	if err := red.FS().Create("/bin/secret", 200, fsys.PrivateMode, nil); err != nil {
		t.Fatal(err)
	}
	p := detached(t, red) // runs as testUID
	if err := p.Exec("/bin/secret"); err == nil {
		t.Fatal("exec of unreadable file succeeded")
	}
}
