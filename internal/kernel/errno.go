package kernel

import "errors"

// Errno-style errors, named after the 4.2BSD error values the paper's
// system would have returned (the setmeter(2) man page of Appendix C
// documents EPERM and ESRCH explicitly).
var (
	ErrPerm        = errors.New("kernel: operation not permitted (EPERM)")
	ErrSearch      = errors.New("kernel: no such process (ESRCH)")
	ErrBadFD       = errors.New("kernel: bad file descriptor (EBADF)")
	ErrNotSocket   = errors.New("kernel: not a socket (ENOTSOCK)")
	ErrInval       = errors.New("kernel: invalid argument (EINVAL)")
	ErrAddrInUse   = errors.New("kernel: address already in use (EADDRINUSE)")
	ErrConnRefused = errors.New("kernel: connection refused (ECONNREFUSED)")
	ErrNotConn     = errors.New("kernel: socket is not connected (ENOTCONN)")
	ErrIsConn      = errors.New("kernel: socket is already connected (EISCONN)")
	ErrPipe        = errors.New("kernel: broken pipe (EPIPE)")
	ErrHostUnreach = errors.New("kernel: no route to host (EHOSTUNREACH)")
	ErrOpNotSupp   = errors.New("kernel: operation not supported on socket (EOPNOTSUPP)")
	ErrNoAccount   = errors.New("kernel: user has no account on this machine")
	ErrKilled      = errors.New("kernel: process killed")
	ErrExited      = errors.New("kernel: process has exited")
	ErrMsgSize     = errors.New("kernel: message too long (EMSGSIZE)")
	ErrAfNoSupport = errors.New("kernel: address family not supported (EAFNOSUPPORT)")
	ErrTimedOut    = errors.New("kernel: operation timed out (ETIMEDOUT)")
	ErrWouldBlock  = errors.New("kernel: operation would block (EWOULDBLOCK)")
	ErrMachineDown = errors.New("kernel: machine is down")
)
