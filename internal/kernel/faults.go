package kernel

import "fmt"

// This file is the machine-level half of the fault-injection layer
// (the link-level half lives in netsim). The paper's fabric already
// loses and reorders datagrams (section 3.1); a monitor aimed at
// production also has to survive the larger faults — a machine losing
// power, a network splitting — so the simulation can inject them and
// the control plane's degradation can be tested rather than assumed.

// FaultStats is a snapshot of the cluster's fault accounting.
type FaultStats struct {
	// Crashes and Restarts count CrashMachine/RestartMachine calls
	// that took effect.
	Crashes  int64
	Restarts int64
	// MeterDisabled counts processes whose metering the kernel switched
	// off after their filter died (the degradation of section 3.2's
	// mechanism: drop trace data rather than wedge the computation).
	MeterDisabled int64
	// MeterDrops counts meter messages discarded instead of being
	// delivered to a dead or unconnected filter.
	MeterDrops int64
}

// FaultStats returns the current fault counters. Since the obs
// migration each fault is counted on the machine where it happened
// (the faults.* counters in that machine's registry); this remains the
// cluster-wide view, summing across machines.
func (c *Cluster) FaultStats() FaultStats {
	c.mu.Lock()
	machines := append([]*Machine(nil), c.byID...)
	c.mu.Unlock()
	var fs FaultStats
	for _, m := range machines {
		fs.Crashes += m.faults.crashes.Load()
		fs.Restarts += m.faults.restarts.Load()
		fs.MeterDisabled += m.faults.meterDisabled.Load()
		fs.MeterDrops += m.faults.meterDrops.Load()
	}
	return fs
}

// CrashMachine simulates the machine losing power: every process on it
// is killed (goroutine-backed processes unwind at their next system
// call and flush pending meter messages, which reach their filters
// only where those filters are still alive), and the machine detaches
// from every network, so datagrams addressed to it vanish and new
// stream connections to it are refused. The machine stays down —
// refusing spawns and connections — until RestartMachine.
func (c *Cluster) CrashMachine(name string) error {
	m, err := c.Machine(name)
	if err != nil {
		return err
	}
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	if m.Down() {
		return fmt.Errorf("%w: %s already crashed", ErrMachineDown, name)
	}
	m.setDown(true)
	m.faults.crashes.Inc()

	// Kill everything. Detached processes (driven by an external
	// caller, no goroutine) are finished here directly; goroutine
	// processes unwind asynchronously.
	for _, p := range m.Procs() {
		p.signal(SIGKILL)
		if p.detached {
			p.finish(-1, ReasonKilled)
		}
	}

	// Pull the interfaces.
	m.mu.Lock()
	attached := make(map[string]uint32, len(m.hostIDs))
	for nn, h := range m.hostIDs {
		attached[nn] = h
	}
	m.mu.Unlock()
	for nn, h := range attached {
		if n, err := c.Network(nn); err == nil {
			n.Detach(h)
		}
	}
	return nil
}

// RestartMachine reboots a crashed machine: it reattaches to its
// networks under the same addresses and accepts spawns again. The
// process table starts empty — rebooting does not resurrect processes,
// so whoever ran a meterdaemon on the machine must reinstall it (in
// this reproduction, core.System.RestartMachine does).
func (c *Cluster) RestartMachine(name string) (*Machine, error) {
	m, err := c.Machine(name)
	if err != nil {
		return nil, err
	}
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	if !m.Down() {
		return nil, fmt.Errorf("kernel: machine %q is not down", name)
	}
	m.mu.Lock()
	attached := make(map[string]uint32, len(m.hostIDs))
	for nn, h := range m.hostIDs {
		attached[nn] = h
	}
	m.mu.Unlock()
	for nn, h := range attached {
		n, err := c.Network(nn)
		if err != nil {
			return nil, err
		}
		if err := n.Attach(h, m); err != nil {
			return nil, err
		}
	}
	m.setDown(false)
	m.faults.restarts.Inc()
	return m, nil
}

// streamCutHook runs after a link between two hosts is newly cut on
// any network (netsim.SetCutHook, installed by AddNetwork). Stream
// bytes are not routed through the datagram fabric, so a cut cannot
// drop them in transit; instead, when the machines behind the cut are
// left with no shared network carrying traffic, every established
// stream between them is reset — as a real partition outlasting the
// TCP retransmit timers resets connections. Readers drain what already
// arrived and then see EOF; writers see EPIPE. Healing the partition
// does not resurrect severed connections.
func (c *Cluster) streamCutHook(hostA, hostB uint32) {
	ma := c.machineByHost(hostA)
	mb := c.machineByHost(hostB)
	if ma == nil || mb == nil || ma == mb {
		return
	}
	if c.machinesReachable(ma, mb) {
		return // another shared network still joins them
	}
	for _, s := range ma.streamsTo(mb) {
		s.sever()
	}
	for _, s := range mb.streamsTo(ma) {
		s.sever()
	}
}

// machinesReachable reports whether any shared network can currently
// carry traffic between two machines.
func (c *Cluster) machinesReachable(ma, mb *Machine) bool {
	ma.mu.Lock()
	nets := append([]string(nil), ma.netOrder...)
	ma.mu.Unlock()
	for _, nn := range nets {
		hb, ok := mb.hostIDOn(nn)
		if !ok {
			continue
		}
		ha, _ := ma.hostIDOn(nn)
		n, err := c.Network(nn)
		if err == nil && n.Reachable(ha, hb) {
			return true
		}
	}
	return false
}

// checkStreamPath decides whether a new stream connection from machine
// `from` can reach `host`, an address of machine `target`. Established
// streams are carried by paired socket buffers rather than the
// datagram fabric, but *establishing* one requires a path between the
// machines, so connect consults the fabric's reachability. (Once
// established, a stream is severed by streamCutHook if a partition
// later isolates the two machines.)
func (c *Cluster) checkStreamPath(from, target *Machine, host uint32) error {
	if target.Down() {
		return fmt.Errorf("%w: %s is down", ErrHostUnreach, target.name)
	}
	c.mu.Lock()
	n := c.networks[c.hostNet[host]]
	c.mu.Unlock()
	if n == nil {
		return nil
	}
	srcHost, ok := from.hostIDOn(n.Name())
	if !ok {
		// No address on the destination network: the connection is
		// routed through a gateway whose links the simulation does not
		// model, so only the target's own state gates it.
		return nil
	}
	if !n.Reachable(srcHost, host) {
		return fmt.Errorf("%w: %s unreachable from %s", ErrHostUnreach, target.name, from.name)
	}
	return nil
}
