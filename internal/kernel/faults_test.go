package kernel

import (
	"errors"
	"io"
	"testing"
	"time"

	"dpm/internal/meter"
)

func TestCrashMachineKillsAndIsolates(t *testing.T) {
	c, red, green := newTestCluster(t)
	server := detached(t, green)
	_, lname := listenStream(t, server, 551)

	victim, err := green.Spawn(SpawnSpec{UID: testUID, Name: "victim", Program: func(p *Process) int {
		for {
			p.Compute(time.Millisecond)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}

	if err := c.CrashMachine("green"); err != nil {
		t.Fatal(err)
	}
	if _, reason := victim.WaitExit(); reason != ReasonKilled {
		t.Fatalf("victim exit reason = %q, want killed", reason)
	}
	if exited, _, _ := server.Exited(); !exited {
		t.Fatal("detached process survived the crash")
	}
	if len(green.Procs()) != 0 {
		t.Fatalf("crashed machine still has %d processes", len(green.Procs()))
	}

	// The machine refuses new work while down.
	if _, err := green.Spawn(SpawnSpec{UID: testUID, Name: "late", Program: func(p *Process) int { return 0 }}); !errors.Is(err, ErrMachineDown) {
		t.Fatalf("spawn on crashed machine: %v, want ErrMachineDown", err)
	}
	if _, err := green.SpawnDetached(testUID, "late"); !errors.Is(err, ErrMachineDown) {
		t.Fatalf("detached spawn on crashed machine: %v, want ErrMachineDown", err)
	}

	// Stream connections to it are refused, and datagrams cannot be
	// routed to it (its interfaces are gone).
	client := detached(t, red)
	fd, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(fd, lname); !errors.Is(err, ErrHostUnreach) {
		t.Fatalf("connect to crashed machine: %v, want ErrHostUnreach", err)
	}
	dfd, err := client.Socket(meter.AFInet, SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.SendTo(dfd, []byte("hello?"), meter.InetName(green.PrimaryHostID(), 600)); err == nil {
		t.Fatal("datagram to crashed machine succeeded")
	}

	if err := c.CrashMachine("green"); !errors.Is(err, ErrMachineDown) {
		t.Fatalf("double crash: %v, want ErrMachineDown", err)
	}
	if got := c.FaultStats().Crashes; got != 1 {
		t.Fatalf("Crashes = %d, want 1", got)
	}
}

func TestRestartMachineRevives(t *testing.T) {
	c, red, green := newTestCluster(t)
	if _, err := c.RestartMachine("green"); err == nil {
		t.Fatal("restart of a running machine succeeded")
	}
	if err := c.CrashMachine("green"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartMachine("green"); err != nil {
		t.Fatal(err)
	}

	// The machine accepts work and traffic again, under its old address.
	server := detached(t, green)
	_, lname := listenStream(t, server, 551)
	client := detached(t, red)
	fd, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(fd, lname); err != nil {
		t.Fatal(err)
	}
	stats := c.FaultStats()
	if stats.Crashes != 1 || stats.Restarts != 1 {
		t.Fatalf("stats = %+v, want 1 crash, 1 restart", stats)
	}
}

func TestPartitionBlocksStreamConnect(t *testing.T) {
	c, red, green := newTestCluster(t)
	server := detached(t, green)
	_, lname := listenStream(t, server, 551)
	n, err := c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}

	n.Partition(red.PrimaryHostID(), green.PrimaryHostID())
	client := detached(t, red)
	fd, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(fd, lname); !errors.Is(err, ErrHostUnreach) {
		t.Fatalf("connect across partition: %v, want ErrHostUnreach", err)
	}

	n.Heal()
	fd2, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(fd2, lname); err != nil {
		t.Fatalf("connect after heal: %v", err)
	}
}

// TestPartitionSeversEstablishedStreams: a partition must break live
// connections, not only refuse new ones — otherwise a persistent
// control-plane session would sail through a network split unharmed
// and the fault would be untestable. The severed connection stays dead
// after heal (reconnection is the endpoints' job), but new connections
// succeed again.
func TestPartitionSeversEstablishedStreams(t *testing.T) {
	c, red, green := newTestCluster(t)
	server := detached(t, green)
	lfd, lname := listenStream(t, server, 3000)

	client := detached(t, red)
	cfd, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	afd, _, err := server.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	// Bytes delivered before the cut are not lost: the reader drains
	// them and only then sees EOF.
	if _, err := client.Send(cfd, []byte("pre-cut")); err != nil {
		t.Fatal(err)
	}

	n, err := c.Network("ether0")
	if err != nil {
		t.Fatal(err)
	}
	n.Partition(red.PrimaryHostID(), green.PrimaryHostID())

	if _, err := client.Send(cfd, []byte("post-cut")); !errors.Is(err, ErrPipe) {
		t.Fatalf("send across partition: %v, want ErrPipe", err)
	}
	data, err := server.Recv(afd, 100)
	if err != nil || string(data) != "pre-cut" {
		t.Fatalf("drain before EOF = %q, %v", data, err)
	}
	if data, err := server.Recv(afd, 100); err != io.EOF {
		t.Fatalf("recv on severed stream = %q, %v, want EOF", data, err)
	}

	// Heal: the old connection stays dead, a new one works.
	n.Heal()
	if _, err := client.Send(cfd, []byte("after heal")); !errors.Is(err, ErrPipe) {
		t.Fatalf("send on severed stream after heal: %v, want ErrPipe", err)
	}
	cfd2, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(cfd2, lname); err != nil {
		t.Fatalf("reconnect after heal: %v", err)
	}
}

// A partition on one network leaves streams alone while another shared
// network still joins the machines; cutting the last path severs them.
func TestPartitionSeversOnlyWhenIsolated(t *testing.T) {
	c := NewCluster(Config{})
	c.AddNetwork("ether0")
	c.AddNetwork("ether1")
	red, err := c.AddMachine("red", nil, "ether0", "ether1")
	if err != nil {
		t.Fatal(err)
	}
	green, err := c.AddMachine("green", nil, "ether0", "ether1")
	if err != nil {
		t.Fatal(err)
	}
	red.AddAccount(testUID, "user")
	green.AddAccount(testUID, "user")
	t.Cleanup(c.Shutdown)

	server := detached(t, green)
	_, lname := listenStream(t, server, 3000)
	client := detached(t, red)
	cfd, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}

	n0, _ := c.Network("ether0")
	n1, _ := c.Network("ether1")
	h0r, _ := red.HostIDOn("ether0")
	h0g, _ := green.HostIDOn("ether0")
	h1r, _ := red.HostIDOn("ether1")
	h1g, _ := green.HostIDOn("ether1")

	n0.Partition(h0r, h0g)
	if _, err := client.Send(cfd, []byte("via ether1")); err != nil {
		t.Fatalf("send with a second network intact: %v", err)
	}
	n1.Partition(h1r, h1g)
	if _, err := client.Send(cfd, []byte("isolated")); !errors.Is(err, ErrPipe) {
		t.Fatalf("send after full isolation: %v, want ErrPipe", err)
	}
}

func TestRecvTimeout(t *testing.T) {
	_, red, green := newTestCluster(t)
	receiver := detached(t, green)
	fd, err := receiver.Socket(meter.AFInet, SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := receiver.BindPort(fd, 700); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := receiver.RecvTimeout(fd, 4096, 20*time.Millisecond); !errors.Is(err, ErrTimedOut) {
		t.Fatalf("RecvTimeout on silent socket: %v, want ErrTimedOut", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}

	// With data already queued the deadline is irrelevant.
	sender := detached(t, red)
	sfd, err := sender.Socket(meter.AFInet, SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.SendTo(sfd, []byte("ping"), meter.InetName(green.PrimaryHostID(), 700)); err != nil {
		t.Fatal(err)
	}
	data, _, err := receiver.RecvTimeout(fd, 4096, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "ping" {
		t.Fatalf("RecvTimeout data = %q", data)
	}
}

func TestMeteringDegradesWhenFilterDies(t *testing.T) {
	c, _, green := newTestCluster(t)
	target := detached(t, green)
	tap := newMeterTap(t, green, target, meter.MAll, 0)

	// A metered call flows while the filter lives.
	if _, err := target.Socket(meter.AFInet, SockDgram); err != nil {
		t.Fatal(err)
	}
	if target.MeterFlags() == 0 {
		t.Fatal("metering not armed")
	}

	// Kill the filter: its descriptors close, the meter connection's
	// peer is gone.
	tap.filter.signal(SIGKILL)
	tap.filter.finish(-1, ReasonKilled)

	// The next metered event detects the dead filter and disables
	// metering instead of wedging or leaking.
	if _, err := target.Socket(meter.AFInet, SockDgram); err != nil {
		t.Fatal(err)
	}
	if got := target.MeterFlags(); got != 0 {
		t.Fatalf("meter flags after filter death = %v, want 0", got)
	}
	if id := target.MeterSocketID(); id != 0 {
		t.Fatalf("meter socket still attached: %d", id)
	}
	stats := c.FaultStats()
	if stats.MeterDisabled != 1 {
		t.Fatalf("MeterDisabled = %d, want 1", stats.MeterDisabled)
	}
	if stats.MeterDrops == 0 {
		t.Fatal("MeterDrops = 0, want > 0")
	}
}

// TestListenerDeathRejectsPendingConns: a connection still in the
// listen queue when the listener's machine crashes must reset the
// initiating side. Marking only the queued conn would tell nobody —
// no process holds it — and the initiator would keep sending into a
// socket that can never be accepted (exactly what happened to meter
// connections when a filter's machine crashed before the filter
// accepted them: metering never degraded and messages piled up in a
// ghost socket).
func TestListenerDeathRejectsPendingConns(t *testing.T) {
	c, red, green := newTestCluster(t)
	server := detached(t, green)
	_, lname := listenStream(t, server, 733)

	client := detached(t, red)
	fd, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(fd, lname); err != nil {
		t.Fatal(err)
	}
	s, err := client.SocketOf(fd)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dead() {
		t.Fatal("connection dead before the listener died")
	}

	// The connection is queued but never accepted when the listener's
	// machine goes down.
	if err := c.CrashMachine("green"); err != nil {
		t.Fatal(err)
	}
	if !s.Dead() {
		t.Fatal("initiator's socket not dead after listener death")
	}
	if _, err := client.Send(fd, []byte("x")); !errors.Is(err, ErrPipe) {
		t.Fatalf("send on rejected pending conn: %v, want ErrPipe", err)
	}
}
