package kernel

import (
	"fmt"
	"io"
	"sync"

	"dpm/internal/clock"
	"dpm/internal/fsys"
	"dpm/internal/meter"
	"dpm/internal/netsim"
	"dpm/internal/obs"
)

// portKey indexes the per-machine binding table: stream and datagram
// ports are independent namespaces, as TCP and UDP ports are.
type portKey struct {
	typ  int
	port uint16
}

// Machine is one simulated host: a CPU (its clock), memory (Go heap),
// a resident kernel portion (these structures), and a file system.
// Machines do not have access to each other's memories; everything
// between them travels through sockets (paper section 1.2).
type Machine struct {
	name    string
	id      uint16
	cluster *Cluster
	clock   *clock.MachineClock
	fs      *fsys.FS

	// obs is the machine's metrics registry. It is created once in
	// AddMachine and survives crash/restart — fault counters would be
	// useless if the fault erased them. Every subsystem running on the
	// machine (meter buffers, filters, daemons, stores, queries) hangs
	// its metrics here, so one TStatsReq answers for the whole node.
	obs    *obs.Registry
	faults machineFaults
	mem    machineMem

	faultMu sync.Mutex // serializes crash/restart transitions

	mu         sync.Mutex
	down       bool // crashed: refuses spawns, connections, datagrams
	procs      map[int]*Process
	nextPID    int
	accounts   map[int]string // uid -> user name
	hostIDs    map[string]uint32
	netOrder   []string // attachment order; the first is the primary address
	ports      map[portKey]*Socket
	unixSocks  map[string]*Socket
	nextSockID uint32
	nextPort   uint16
	nextPairID uint32

	wg *sync.WaitGroup // cluster-wide process goroutine tracking
}

// machineFaults holds the machine's fault counters, resolved once at
// machine creation so the accounting paths never take the registry
// lock. Cluster.FaultStats sums them across machines.
type machineFaults struct {
	crashes       *obs.Counter
	restarts      *obs.Counter
	meterDisabled *obs.Counter
	meterDrops    *obs.Counter
}

func newMachineFaults(r *obs.Registry) machineFaults {
	return machineFaults{
		crashes:       r.Counter("faults.crashes"),
		restarts:      r.Counter("faults.restarts"),
		meterDisabled: r.Counter("faults.meter_disabled"),
		meterDrops:    r.Counter("faults.meter_drops"),
	}
}

// machineMem is the machine's memory accounting: how much simulated
// kernel memory (socket buffers) the machine is holding, with a high
// water mark, so a simulation of thousands of machines has a bounded,
// measurable per-machine footprint (docs/perf.md, simulation density).
type machineMem struct {
	sockets      *obs.Gauge   // live sockets on the machine
	buffered     *obs.Gauge   // bytes queued in socket receive buffers
	bufferedPeak *obs.Gauge   // high water of buffered
	shedDgrams   *obs.Counter // datagrams shed by the per-socket queue budget
}

func newMachineMem(r *obs.Registry) machineMem {
	return machineMem{
		sockets:      r.Gauge("mem.sockets"),
		buffered:     r.Gauge("mem.buffered_bytes"),
		bufferedPeak: r.Gauge("mem.buffered_peak"),
		shedDgrams:   r.Counter("mem.shed_dgrams"),
	}
}

// charge adds n buffered bytes and maintains the high water mark.
func (mm *machineMem) charge(n int64) {
	mm.bufferedPeak.SetMax(mm.buffered.Add(n))
}

// Name returns the machine's host name.
func (m *Machine) Name() string { return m.name }

// ID returns the small integer recorded in meter message headers.
func (m *Machine) ID() uint16 { return m.id }

// Clock returns the machine's local clock.
func (m *Machine) Clock() *clock.MachineClock { return m.clock }

// FS returns the machine's file system.
func (m *Machine) FS() *fsys.FS { return m.fs }

// Obs returns the machine's metrics registry.
func (m *Machine) Obs() *obs.Registry { return m.obs }

// ExportStats writes a JSON snapshot of the machine's registry to a
// file owned by uid, replacing any previous export. It writes through
// the file system directly rather than a process syscall, so shutdown
// paths can call it while their process is unwinding from a kill —
// which is exactly when a chaos soak wants the forensic record.
func (m *Machine) ExportStats(path string, uid int) error {
	s := m.obs.Snapshot()
	s.Machine = m.name
	return m.fs.Create(path, uid, fsys.DefaultMode, s.EncodeJSON())
}

// Cluster returns the cluster the machine belongs to.
func (m *Machine) Cluster() *Cluster { return m.cluster }

// Down reports whether the machine has crashed (CrashMachine) and not
// yet been restarted.
func (m *Machine) Down() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

func (m *Machine) setDown(down bool) {
	m.mu.Lock()
	m.down = down
	m.mu.Unlock()
}

// AddAccount gives uid an account on this machine. Per the paper's
// protection policy, "To create a process on a machine, a user must
// have an account on that machine" (section 3.5.5).
func (m *Machine) AddAccount(uid int, user string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accounts[uid] = user
}

// HasAccount reports whether uid has an account here. The superuser
// implicitly has one everywhere.
func (m *Machine) HasAccount(uid int) bool {
	if uid == fsys.Superuser {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.accounts[uid]
	return ok
}

// PrimaryHostID returns the machine's address on its first-attached
// network; socket names constructed on this machine use it.
func (m *Machine) PrimaryHostID() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.netOrder) == 0 {
		return 0
	}
	return m.hostIDs[m.netOrder[0]]
}

// hostIDOn returns the machine's address on the given network.
func (m *Machine) hostIDOn(network string) (uint32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hostIDs[network]
	return h, ok
}

// HostIDOn returns the machine's address on the given network, and
// whether it is attached to that network at all.
func (m *Machine) HostIDOn(network string) (uint32, bool) { return m.hostIDOn(network) }

// SpawnSpec describes a process to create.
type SpawnSpec struct {
	UID  int
	Name string
	Args []string
	// Exactly one of Program and Path is used: Program runs directly;
	// Path names an executable file on this machine's file system.
	Program Program
	Path    string
	// Suspended creates the process in the paper's "new" state: the
	// execution environment is set up but the process is suspended
	// prior to the execution of the first instruction (section 4.2).
	// It begins running when it receives SIGCONT.
	Suspended bool
	// Stdio, when non-nil, is installed as descriptors 0, 1 and 2 —
	// the daemon's per-process I/O gateway socket (section 3.5.2).
	Stdio *Socket
	// Stdout/Stdin attach plain streams instead, for processes run
	// outside a daemon (tests and examples).
	Stdout io.Writer
	Stdin  io.Reader
	// PPID records the creating process, if any.
	PPID int
}

// Spawn creates a process. The account check implements the paper's
// protection policy.
func (m *Machine) Spawn(spec SpawnSpec) (*Process, error) {
	if m.Down() {
		return nil, fmt.Errorf("%w: %s", ErrMachineDown, m.name)
	}
	if !m.HasAccount(spec.UID) {
		return nil, fmt.Errorf("%w: uid %d on %s", ErrNoAccount, spec.UID, m.name)
	}
	prog := spec.Program
	if prog == nil {
		if spec.Path == "" {
			return nil, fmt.Errorf("%w: no program or path", ErrInval)
		}
		progName, err := m.fs.Executable(spec.Path, spec.UID)
		if err != nil {
			return nil, err
		}
		prog = m.cluster.program(progName)
		if prog == nil {
			return nil, fmt.Errorf("%w: program %q not registered", ErrInval, progName)
		}
	}

	p := m.newProcess(spec)
	m.wg.Add(1)
	go p.run(prog)
	return p, nil
}

// SpawnDetached creates a process table entry with no goroutine; an
// external driver (the controller object in this reproduction) issues
// its system calls directly. It starts started.
func (m *Machine) SpawnDetached(uid int, name string) (*Process, error) {
	if m.Down() {
		return nil, fmt.Errorf("%w: %s", ErrMachineDown, m.name)
	}
	if !m.HasAccount(uid) {
		return nil, fmt.Errorf("%w: uid %d on %s", ErrNoAccount, uid, m.name)
	}
	p := m.newProcess(SpawnSpec{UID: uid, Name: name})
	p.detached = true
	p.signal(SIGCONT)
	return p, nil
}

// SpawnTask creates an event-driven process: a process-table entry
// with no goroutine, whose step function runs on the cluster's pooled
// scheduler workers (sched.go). It is the density-scalable alternative
// to Spawn — 10k parked tasks hold no goroutines, channels, or stacks.
// The process starts started, is killable and stoppable like any
// other, and its exit is observable through the usual WaitExit/OnExit.
func (m *Machine) SpawnTask(uid int, name string, fn TaskFunc) (*Process, error) {
	if m.Down() {
		return nil, fmt.Errorf("%w: %s", ErrMachineDown, m.name)
	}
	if !m.HasAccount(uid) {
		return nil, fmt.Errorf("%w: uid %d on %s", ErrNoAccount, uid, m.name)
	}
	p := m.newProcess(SpawnSpec{UID: uid, Name: name})
	p.detached = true
	t := &Task{proc: p, fn: fn, sched: m.cluster.sched()}
	t.wakeFn = t.wake
	// Queued before the hook is visible: the starting SIGCONT below (and
	// any signal racing the spawn) must not enqueue a second time ahead
	// of the explicit enqueue.
	t.state.Store(taskQueued)
	p.sigMu.Lock()
	p.task = t
	p.schedHook = t.wake
	p.sigMu.Unlock()
	p.signal(SIGCONT)
	m.wg.Add(1)
	t.sched.enqueue(t)
	return p, nil
}

func (m *Machine) newProcess(spec SpawnSpec) *Process {
	m.mu.Lock()
	m.nextPID++
	pid := m.nextPID
	m.mu.Unlock()

	p := &Process{
		machine: m,
		pid:     pid,
		ppid:    spec.PPID,
		uid:     spec.UID,
		name:    spec.Name,
		args:    append([]string(nil), spec.Args...),
		startCh: make(chan struct{}),
		killCh:  make(chan struct{}),
		exitCh:  make(chan struct{}),
	}
	p.sigCond = sync.NewCond(&p.sigMu)
	switch {
	case spec.Stdio != nil:
		// The daemon's I/O gateway socket becomes descriptors 0–2; a
		// separate Stdin (a file the daemon redirects, section 3.5.2)
		// takes descriptor 0 when given.
		if spec.Stdin != nil {
			p.fds = append(p.fds, &fdEntry{r: spec.Stdin})
		} else {
			spec.Stdio.ref()
			p.fds = append(p.fds, &fdEntry{sock: spec.Stdio})
		}
		for i := 0; i < 2; i++ {
			spec.Stdio.ref()
			p.fds = append(p.fds, &fdEntry{sock: spec.Stdio})
		}
	default:
		p.fds = append(p.fds, &fdEntry{r: spec.Stdin}, &fdEntry{w: spec.Stdout}, &fdEntry{w: spec.Stdout})
	}
	if !spec.Suspended {
		p.started = true
		close(p.startCh)
	}

	m.mu.Lock()
	m.procs[pid] = p
	m.mu.Unlock()
	return p
}

// Proc looks up a live process by pid.
func (m *Machine) Proc(pid int) (*Process, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: pid %d on %s", ErrSearch, pid, m.name)
	}
	return p, nil
}

// Procs returns the live processes on this machine.
func (m *Machine) Procs() []*Process {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Process, 0, len(m.procs))
	for _, p := range m.procs {
		out = append(out, p)
	}
	return out
}

func (m *Machine) removeProc(pid int) {
	m.mu.Lock()
	delete(m.procs, pid)
	m.mu.Unlock()
}

// Signal delivers a signal to a process.
func (m *Machine) Signal(pid int, sig Signal) error {
	p, err := m.Proc(pid)
	if err != nil {
		return err
	}
	p.signal(sig)
	return nil
}

// newSocket allocates a socket with a machine-unique id.
func (m *Machine) newSocket(domain uint16, typ int) *Socket {
	m.mu.Lock()
	m.nextSockID++
	id := m.nextSockID
	m.mu.Unlock()
	m.mem.sockets.Add(1)
	return &Socket{
		id:      id,
		machine: m,
		domain:  domain,
		typ:     typ,
		refs:    1,
	}
}

// Footprint reports the machine's live simulated-kernel memory: socket
// count and bytes queued in socket receive buffers. The scale soak
// uses it to pin the per-machine budget claimed in docs/perf.md.
func (m *Machine) Footprint() (sockets, bufferedBytes int64) {
	return m.mem.sockets.Load(), m.mem.buffered.Load()
}

// allocPort hands out an ephemeral port.
func (m *Machine) allocPort(typ int) uint16 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		m.nextPort++
		if m.nextPort == 0 {
			m.nextPort = ephemeralBase
		}
		if _, used := m.ports[portKey{typ, m.nextPort}]; !used {
			return m.nextPort
		}
	}
}

const ephemeralBase = 1024

// bindInet binds a socket to an Internet port (0 allocates one). The
// socket name uses the machine's primary address.
func (m *Machine) bindInet(s *Socket, port uint16) (meter.Name, error) {
	if port == 0 {
		port = m.allocPort(s.typ)
	}
	m.mu.Lock()
	key := portKey{s.typ, port}
	if _, used := m.ports[key]; used {
		m.mu.Unlock()
		return meter.Name{}, fmt.Errorf("%w: port %d", ErrAddrInUse, port)
	}
	m.ports[key] = s
	m.mu.Unlock()

	name := meter.InetName(m.PrimaryHostID(), port)
	s.mu.Lock()
	s.bound = true
	s.boundName = name
	s.port = port
	s.mu.Unlock()
	return name, nil
}

// bindUnix binds a socket to a UNIX-domain path.
func (m *Machine) bindUnix(s *Socket, path string) (meter.Name, error) {
	m.mu.Lock()
	if _, used := m.unixSocks[path]; used {
		m.mu.Unlock()
		return meter.Name{}, fmt.Errorf("%w: %s", ErrAddrInUse, path)
	}
	m.unixSocks[path] = s
	m.mu.Unlock()

	name := meter.UnixName(path)
	s.mu.Lock()
	s.bound = true
	s.boundName = name
	s.path = path
	s.mu.Unlock()
	return name, nil
}

// unbindSocket removes a destroyed socket from the binding tables.
func (m *Machine) unbindSocket(s *Socket) {
	s.mu.Lock()
	bound, typ, port, path := s.bound, s.typ, s.port, s.path
	s.mu.Unlock()
	if !bound {
		return
	}
	m.mu.Lock()
	if port != 0 && m.ports[portKey{typ, port}] == s {
		delete(m.ports, portKey{typ, port})
	}
	if path != "" && m.unixSocks[path] == s {
		delete(m.unixSocks, path)
	}
	m.mu.Unlock()
}

// streamsTo returns the bound stream sockets on m whose connected peer
// lives on other. The client end of every cross-machine stream is
// implicitly bound at connect time, so each established connection has
// at least one end in some machine's port table; severing that end
// resets both directions. Socket locks are taken only after releasing
// the machine lock.
func (m *Machine) streamsTo(other *Machine) []*Socket {
	m.mu.Lock()
	socks := make([]*Socket, 0, len(m.ports))
	for _, s := range m.ports {
		if s.typ == SockStream {
			socks = append(socks, s)
		}
	}
	m.mu.Unlock()
	var out []*Socket
	for _, s := range socks {
		if s.peerMachine() == other {
			out = append(out, s)
		}
	}
	return out
}

// PortBound reports whether a socket is bound to (typ, port); the
// daemon uses it to wait for a newly created filter to come up before
// reporting it created.
func (m *Machine) PortBound(typ int, port uint16) bool {
	return m.lookupPort(typ, port) != nil
}

// lookupPort finds the socket bound to (typ, port).
func (m *Machine) lookupPort(typ int, port uint16) *Socket {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ports[portKey{typ, port}]
}

// lookupUnix finds the socket bound to a UNIX path.
func (m *Machine) lookupUnix(path string) *Socket {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.unixSocks[path]
}

// InjectDgram delivers a kernel-originated datagram to the socket
// bound to a datagram port on this machine. The meterdaemon's child
// termination notifications use it as the stand-in for SIGCHLD
// delivery: the kernel pokes the daemon's notification socket when one
// of its children changes state (section 3.5.1).
func (m *Machine) InjectDgram(port uint16, data []byte, src meter.Name) {
	if s := m.lookupPort(SockDgram, port); s != nil {
		s.deliverDgram(data, src, m.clock.Now())
	}
}

// DeliverDatagram implements netsim.Endpoint: a datagram arriving from
// a network is routed to the socket bound to its destination port.
// Datagrams to unbound ports are dropped, as UDP drops them.
func (m *Machine) DeliverDatagram(dg netsim.Datagram) {
	if m.Down() {
		return // a crashed machine receives nothing
	}
	s := m.lookupPort(SockDgram, dg.Dst.Port)
	if s == nil {
		return
	}
	src, err := meter.ParseName(dg.SrcName)
	if err != nil {
		src = meter.Name{}
	}
	s.deliverDgram(dg.Data, src, dg.SentAt)
}
