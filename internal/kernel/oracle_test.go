package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"dpm/internal/meter"
)

// TestMeterStreamMirrorsOperations is an oracle test: a process
// performs a long randomized sequence of IPC operations while every
// event type is metered immediately; the meter stream must mirror the
// operation log exactly — same events, same order, same lengths. This
// is the consistency property of section 2.2 (the dynamic view matches
// the primitives the program used), checked mechanically.
func TestMeterStreamMirrorsOperations(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, red, green := newTestCluster(t)
			target := detached(t, red)
			tap := newMeterTap(t, green, target, meter.MAll|meter.MImmediate, testUID)

			rng := rand.New(rand.NewSource(seed))
			type expect struct {
				typ meter.Type
				n   int // msgLength for send/recv, 0 otherwise
			}
			var want []expect

			// Socketpair to start (4 events, per the paper).
			fd1, fd2, err := target.SocketPair()
			if err != nil {
				t.Fatal(err)
			}
			want = append(want,
				expect{meter.EvSocket, 0}, expect{meter.EvSocket, 0},
				expect{meter.EvConnect, 0}, expect{meter.EvAccept, 0})

			pending := 0 // bytes in flight fd1 -> fd2
			const ops = 200
			for i := 0; i < ops; i++ {
				switch op := rng.Intn(4); {
				case op <= 1: // send
					n := rng.Intn(64) + 1
					if _, err := target.Send(fd1, make([]byte, n)); err != nil {
						t.Fatal(err)
					}
					pending += n
					want = append(want, expect{meter.EvSend, n})
				case op == 2 && pending > 0: // recv
					max := rng.Intn(pending) + 1
					data, err := target.Recv(fd2, max)
					if err != nil {
						t.Fatal(err)
					}
					pending -= len(data)
					want = append(want,
						expect{meter.EvRecvCall, 0},
						expect{meter.EvRecv, len(data)})
				case op == 3: // dup + close of the dup
					dup, err := target.Dup(fd1)
					if err != nil {
						t.Fatal(err)
					}
					if err := target.Close(dup); err != nil {
						t.Fatal(err)
					}
					want = append(want, expect{meter.EvDup, 0}, expect{meter.EvDestSocket, 0})
				default: // recv with empty buffer would block; compute instead
					target.Compute(100000) // 100µs
				}
			}

			msgs := tap.collect(len(want))
			for i, w := range want {
				got := msgs[i]
				if got.Header.TraceType != w.typ {
					t.Fatalf("event %d: %v, want %v", i, got.Header.TraceType, w.typ)
				}
				switch w.typ {
				case meter.EvSend:
					if int(got.Body.(*meter.Send).MsgLength) != w.n {
						t.Fatalf("event %d: send length %d, want %d", i, got.Body.(*meter.Send).MsgLength, w.n)
					}
				case meter.EvRecv:
					if int(got.Body.(*meter.Recv).MsgLength) != w.n {
						t.Fatalf("event %d: recv length %d, want %d", i, got.Body.(*meter.Recv).MsgLength, w.n)
					}
				}
			}
			// Header times never go backward for one process on one
			// machine.
			for i := 1; i < len(msgs); i++ {
				if msgs[i].Header.CPUTime < msgs[i-1].Header.CPUTime {
					t.Fatalf("event %d: cpuTime went backward", i)
				}
				if msgs[i].Header.ProcTime < msgs[i-1].Header.ProcTime {
					t.Fatalf("event %d: procTime went backward", i)
				}
			}
		})
	}
}
