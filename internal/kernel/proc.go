package kernel

import (
	"io"
	"sync"
	"time"

	"dpm/internal/clock"
	"dpm/internal/meter"
)

// Program is the body of a simulated process: the stand-in for the
// text of an executable file. It runs on its own goroutine and its
// return value is the process's exit status.
type Program func(p *Process) int

// Signals, with their 4.3BSD numbering. The controller's start/stop
// commands translate to SIGCONT/SIGSTOP, and removing a running job's
// processes to SIGKILL (paper section 3.5.1).
type Signal int

const (
	SIGKILL Signal = 9
	SIGSTOP Signal = 17
	SIGCONT Signal = 19
)

// Exit reasons reported to exit watchers (the daemon turns them into
// the "reason: normal" of termination notices).
const (
	ReasonNormal = "normal"
	ReasonKilled = "killed"
)

// killedPanic unwinds a process goroutine when the process is killed
// while executing or blocked in a system call.
type killedPanic struct{}

// exitPanic unwinds a process goroutine on Exit or at the end of Exec.
type exitPanic struct{ status int }

// fdEntry is one slot in a process's descriptor table. A slot holds a
// socket, or (for the standard descriptors of processes run outside a
// daemon gateway) a plain reader/writer.
type fdEntry struct {
	sock *Socket
	w    io.Writer
	r    io.Reader
}

// Process is a simulated 4.2BSD process: an address space (its Go
// closure state) plus an execution stream (its goroutine). All
// interaction with other processes and the operating system goes
// through its system-call methods, which is precisely the surface the
// paper's meter instruments.
type Process struct {
	machine *Machine
	pid     int
	ppid    int
	uid     int
	name    string
	args    []string

	mu  sync.Mutex
	fds []*fdEntry

	// The three fields the paper adds to the process table entry
	// (section 3.2): the meter socket (not present in fds), the meter
	// flag mask, and the buffer of unsent meter messages.
	meterSock  *Socket
	meterFlags meter.Flag
	meterBuf   *meter.Buffer

	cpu clock.CPUCounter
	pc  uint32

	sigMu    sync.Mutex
	sigCond  *sync.Cond
	started  bool
	stopped  bool
	killed   bool
	startCh  chan struct{} // closed when the process may begin execution
	killCh   chan struct{} // closed when the process is killed
	detached bool          // no goroutine: driven by an external caller

	// task is set for event-driven processes (Machine.SpawnTask);
	// schedHook, delivered on every signal, re-queues the parked task
	// so a kill or continue is seen without a dedicated goroutine.
	task      *Task
	schedHook func()

	exitOnce   sync.Once
	exitCh     chan struct{} // closed when the process has terminated
	exitStatus int
	exitReason string
	onExit     []func(p *Process, status int, reason string)
}

// PID returns the process id.
func (p *Process) PID() int { return p.pid }

// PPID returns the parent process id (0 for top-level processes).
func (p *Process) PPID() int { return p.ppid }

// UID returns the owning user id.
func (p *Process) UID() int { return p.uid }

// Name returns the program name the process was created with.
func (p *Process) Name() string { return p.name }

// Args returns the process's arguments.
func (p *Process) Args() []string { return append([]string(nil), p.args...) }

// Machine returns the machine the process runs on.
func (p *Process) Machine() *Machine { return p.machine }

// Exited reports whether the process has terminated, and with what
// status and reason if so.
func (p *Process) Exited() (bool, int, string) {
	select {
	case <-p.exitCh:
		return true, p.exitStatus, p.exitReason
	default:
		return false, 0, ""
	}
}

// WaitExit blocks until the process terminates and returns its status
// and reason.
func (p *Process) WaitExit() (int, string) {
	<-p.exitCh
	return p.exitStatus, p.exitReason
}

// ExitChan returns a channel closed at process termination.
func (p *Process) ExitChan() <-chan struct{} { return p.exitCh }

// KillChan returns a channel closed when the process is killed.
// Auxiliary goroutines (Process.Go) that sleep outside a system call —
// a session supervisor pacing reconnect backoff, say — select on it so
// cluster shutdown is not held up by the remainder of a timer.
func (p *Process) KillChan() <-chan struct{} { return p.killCh }

// OnExit registers a callback invoked (once, on the exiting process's
// goroutine) after the process terminates — the simulation's SIGCHLD.
// If the process has already exited the callback runs immediately.
func (p *Process) OnExit(fn func(p *Process, status int, reason string)) {
	p.sigMu.Lock()
	if p.exited() {
		p.sigMu.Unlock()
		fn(p, p.exitStatus, p.exitReason)
		return
	}
	p.onExit = append(p.onExit, fn)
	p.sigMu.Unlock()
}

func (p *Process) exited() bool {
	select {
	case <-p.exitCh:
		return true
	default:
		return false
	}
}

// run executes the program body with start-gate, kill, and exit
// handling, then finalizes the process.
func (p *Process) run(prog Program) {
	defer p.machine.wg.Done()
	// A kill also opens the start gate, so waiting on it alone covers
	// both paths; the killed check below decides whether the body may
	// run (a process killed in the "new" state never executes its
	// first instruction).
	<-p.startCh
	p.sigMu.Lock()
	killed := p.killed
	p.sigMu.Unlock()
	status, reason := -1, ReasonKilled
	if !killed {
		status, reason = p.invoke(prog)
	}
	p.finish(status, reason)
}

// invoke runs the program body, translating the kill/exit panics into
// a status and reason.
func (p *Process) invoke(prog Program) (status int, reason string) {
	defer func() {
		switch v := recover().(type) {
		case nil:
		case killedPanic:
			status, reason = -1, ReasonKilled
		case exitPanic:
			status, reason = v.status, ReasonNormal
		default:
			panic(v)
		}
	}()
	return prog(p), ReasonNormal
}

// finish is process termination (section 3.2): the termproc event is
// generated, any unsent meter messages are forwarded to the filter,
// descriptors are released, and exit watchers are notified.
func (p *Process) finish(status int, reason string) {
	p.exitOnce.Do(func() {
		p.emit(&meter.TermProc{PID: uint32(p.pid), PC: p.nextPC(), Status: uint32(status)})
		p.mu.Lock()
		if p.meterBuf != nil {
			p.meterBuf.Flush()
		}
		msock := p.meterSock
		p.meterSock = nil
		fds := p.fds
		p.fds = nil
		p.mu.Unlock()
		if msock != nil {
			msock.unref()
		}
		for _, e := range fds {
			if e != nil && e.sock != nil {
				e.sock.unref()
			}
		}
		p.machine.removeProc(p.pid)

		p.sigMu.Lock()
		p.exitStatus = status
		p.exitReason = reason
		watchers := p.onExit
		p.onExit = nil
		p.sigMu.Unlock()
		close(p.exitCh)
		for _, fn := range watchers {
			fn(p, status, reason)
		}
	})
}

// signal delivers sig to the process. It is the kernel half of the
// UNIX signals the daemon uses for process control.
func (p *Process) signal(sig Signal) {
	p.sigMu.Lock()
	switch sig {
	case SIGSTOP:
		p.stopped = true
	case SIGCONT:
		p.stopped = false
		if !p.started {
			p.started = true
			close(p.startCh)
		}
		p.sigCond.Broadcast()
	case SIGKILL:
		if !p.killed {
			p.killed = true
			close(p.killCh)
		}
		if !p.started {
			p.started = true
			close(p.startCh)
		}
		p.sigCond.Broadcast()
	}
	hook := p.schedHook
	p.sigMu.Unlock()
	if hook != nil {
		hook()
	}
}

// checkpoint is executed at every system-call boundary: it blocks
// while the process is stopped and unwinds it if killed. Detached
// processes (driven by an external caller rather than a goroutine)
// report kills as an error instead of panicking. Task processes never
// wait here — a stop would wedge a pooled scheduler worker, so the
// scheduler parks the task between steps instead (sched.go).
func (p *Process) checkpoint() error {
	p.sigMu.Lock()
	for p.stopped && !p.killed && p.task == nil {
		p.sigCond.Wait()
	}
	killed := p.killed
	detached := p.detached
	p.sigMu.Unlock()
	if killed {
		if detached {
			return ErrKilled
		}
		panic(killedPanic{})
	}
	return nil
}

// charge advances the machine clock and the process's CPU counter by
// the cost of one unit of work.
func (p *Process) charge(d time.Duration) {
	p.machine.clock.Advance(d)
	p.cpu.Charge(d)
}

// Go runs fn on an auxiliary goroutine of the process — the kernel's
// thread spawn for program bodies that want internal parallelism (the
// parallel filter's connection drainers and its log writer). The
// goroutine shares the process's descriptor table and metering state,
// and its system calls block, charge, and honor signals exactly like
// the main body's. When the process is killed, any system call made
// from the goroutine unwinds it silently, the same way the kill panic
// unwinds the program body; cluster shutdown waits for auxiliary
// goroutines like any process goroutine. fn must not call Exit — the
// process's exit status belongs to the program body.
func (p *Process) Go(fn func()) {
	p.machine.wg.Add(1)
	go func() {
		defer p.machine.wg.Done()
		defer func() {
			switch v := recover().(type) {
			case nil, killedPanic, exitPanic:
				// A kill (or stray Exit) ends only this goroutine.
			default:
				panic(v)
			}
		}()
		fn()
	}()
}

// nextPC advances and returns the synthetic program counter recorded
// in meter messages. A real kernel records the user PC of the system
// call; a deterministic per-process counter serves the same purpose —
// distinguishing call sites — in the simulation.
func (p *Process) nextPC() uint32 {
	p.mu.Lock()
	p.pc += 4
	pc := p.pc
	p.mu.Unlock()
	return pc
}

// meterState snapshots the metering fields.
func (p *Process) meterState() (*Socket, meter.Flag, *meter.Buffer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.meterSock, p.meterFlags, p.meterBuf
}

// MeterFlags returns the process's current meter flag mask.
func (p *Process) MeterFlags() meter.Flag {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.meterFlags
}

// MeterSocketID returns the id of the meter socket, or 0 if the
// process is not connected to a filter. Tests use it to check
// transparency: the id never appears in the descriptor table.
func (p *Process) MeterSocketID() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.meterSock == nil {
		return 0
	}
	return p.meterSock.id
}

// emit generates one meter message if the event is flagged for this
// process (section 3.2: "On every call to a routine that might
// initiate a meter event, the kernel checks whether the call is
// currently metered").
func (p *Process) emit(body meter.Body) {
	sock, flags, buf := p.meterState()
	if sock == nil || buf == nil || !flags.Selects(body.EventType()) {
		return
	}
	if sock.Dead() {
		// The filter died. Metering must degrade rather than wedge the
		// monitored computation (or accumulate messages nothing will
		// read): switch it off for this process and account for what
		// was lost.
		p.disableMetering(sock, buf)
		return
	}
	msg := &meter.Msg{
		Header: meter.Header{
			Machine:  p.machine.id,
			CPUTime:  uint32(p.machine.clock.NowMillis()),
			ProcTime: uint32(p.cpu.QuantizedMillis()),
		},
		Body: body,
	}
	buf.Add(msg, flags.Immediate())
}

// disableMetering turns metering off for the process after its filter
// died: the meter socket and buffer are released, the flag mask is
// cleared, and the messages that will never arrive — the buffered ones
// plus the event that found the corpse — are counted as drops.
func (p *Process) disableMetering(sock *Socket, buf *meter.Buffer) {
	p.mu.Lock()
	if p.meterSock != sock {
		p.mu.Unlock() // raced with a Setmeter that replaced the socket
		return
	}
	p.meterSock, p.meterBuf = nil, nil
	p.meterFlags = 0
	p.mu.Unlock()
	sock.unref()
	p.machine.faults.meterDisabled.Inc()
	p.machine.faults.meterDrops.Add(int64(buf.Pending()) + 1)
}

// fd returns the entry at descriptor fd.
func (p *Process) fd(fd int) (*fdEntry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		return nil, ErrBadFD
	}
	return p.fds[fd], nil
}

// sockFD returns the socket at descriptor fd.
func (p *Process) sockFD(fd int) (*Socket, error) {
	e, err := p.fd(fd)
	if err != nil {
		return nil, err
	}
	if e.sock == nil {
		return nil, ErrNotSocket
	}
	return e.sock, nil
}

// installFD places an entry in the lowest free descriptor slot, as
// UNIX does, and returns the descriptor.
func (p *Process) installFD(e *fdEntry) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, slot := range p.fds {
		if slot == nil {
			p.fds[i] = e
			return i
		}
	}
	p.fds = append(p.fds, e)
	return len(p.fds) - 1
}

// NumFDs returns the number of open descriptors; the transparency
// tests use it to show metering does not consume descriptor slots
// ("The meter does not reduce the number of open files and sockets
// available to the metered process", section 4.1).
func (p *Process) NumFDs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.fds {
		if e != nil {
			n++
		}
	}
	return n
}

// HasSocketFD reports whether any descriptor refers to the socket with
// the given id.
func (p *Process) HasSocketFD(id uint32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.fds {
		if e != nil && e.sock != nil && e.sock.id == id {
			return true
		}
	}
	return false
}
