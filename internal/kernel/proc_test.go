package kernel

import (
	"errors"
	"testing"
	"time"

	"dpm/internal/meter"
)

func TestSpawnRunsAndExits(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "worker", Program: func(p *Process) int {
		p.Compute(time.Millisecond)
		return 7
	}})
	if err != nil {
		t.Fatal(err)
	}
	status, reason := p.WaitExit()
	if status != 7 || reason != ReasonNormal {
		t.Fatalf("exit = (%d, %s), want (7, normal)", status, reason)
	}
}

func TestSpawnRequiresAccount(t *testing.T) {
	_, red, _ := newTestCluster(t)
	_, err := red.Spawn(SpawnSpec{UID: 999, Name: "x", Program: func(*Process) int { return 0 }})
	if !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v, want ErrNoAccount", err)
	}
}

func TestSuperuserNeedsNoAccount(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p, err := red.Spawn(SpawnSpec{UID: 0, Name: "daemon", Program: func(*Process) int { return 0 }})
	if err != nil {
		t.Fatal(err)
	}
	p.WaitExit()
}

func TestSuspendedProcessWaitsForSigcont(t *testing.T) {
	// The paper's "new" state: suspended prior to the execution of the
	// first instruction (section 4.2).
	_, red, _ := newTestCluster(t)
	ran := make(chan struct{})
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Suspended: true, Program: func(p *Process) int {
		close(ran)
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
		t.Fatal("suspended process executed before start")
	case <-time.After(30 * time.Millisecond):
	}
	if err := red.Signal(p.PID(), SIGCONT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("process never started after SIGCONT")
	}
	p.WaitExit()
}

func TestKillSuspendedProcess(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Suspended: true, Program: func(p *Process) int {
		t.Error("killed suspended process body ran")
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := red.Signal(p.PID(), SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, reason := p.WaitExit()
	if reason != ReasonKilled {
		t.Fatalf("reason = %s, want killed", reason)
	}
}

func TestStopAndContinue(t *testing.T) {
	_, red, _ := newTestCluster(t)
	const iters = 50
	step := make(chan int) // unbuffered: the program cannot run ahead
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Program: func(p *Process) int {
		for i := 0; i < iters; i++ {
			p.Compute(10 * time.Microsecond)
			step <- i
		}
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	seen := <-step
	if err := red.Signal(p.PID(), SIGSTOP); err != nil {
		t.Fatal(err)
	}
	// The program stops at its next checkpoint; at most one iteration
	// already in flight can still arrive.
	select {
	case seen = <-step:
	case <-time.After(50 * time.Millisecond):
	}
	select {
	case v := <-step:
		t.Fatalf("iteration %d arrived while stopped", v)
	case <-time.After(50 * time.Millisecond):
	}
	if err := red.Signal(p.PID(), SIGCONT); err != nil {
		t.Fatal(err)
	}
	for v := range step {
		seen = v
		if v == iters-1 {
			break
		}
	}
	if seen != iters-1 {
		t.Fatalf("last iteration = %d", seen)
	}
	status, reason := p.WaitExit()
	if status != 0 || reason != ReasonNormal {
		t.Fatalf("exit = (%d, %s)", status, reason)
	}
}

func TestKillBlockedInRecv(t *testing.T) {
	_, red, _ := newTestCluster(t)
	blocked := make(chan int)
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Program: func(p *Process) int {
		fd1, _, err := p.SocketPair()
		if err != nil {
			t.Error(err)
			return 1
		}
		blocked <- fd1
		_, _ = p.Recv(fd1, 10) // no one ever writes; unblocked only by kill
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	time.Sleep(10 * time.Millisecond)
	if err := red.Signal(p.PID(), SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, reason := p.WaitExit()
	if reason != ReasonKilled {
		t.Fatalf("reason = %s, want killed", reason)
	}
}

func TestOnExitNotification(t *testing.T) {
	_, red, _ := newTestCluster(t)
	got := make(chan string, 1)
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Program: func(*Process) int { return 3 }})
	if err != nil {
		t.Fatal(err)
	}
	p.OnExit(func(_ *Process, status int, reason string) {
		if status == 3 {
			got <- reason
		}
	})
	select {
	case r := <-got:
		if r != ReasonNormal {
			t.Fatalf("reason = %s", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnExit never fired")
	}
}

func TestProcessExitReleasesSockets(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Program: func(p *Process) int {
		fd, err := p.Socket(meter.AFInet, SockStream)
		if err != nil {
			t.Error(err)
			return 1
		}
		if err := p.BindPort(fd, 6000); err != nil {
			t.Error(err)
			return 1
		}
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	p.WaitExit()
	// The bound port must have been released at exit.
	q := detached(t, red)
	fd, _ := q.Socket(meter.AFInet, SockStream)
	if err := q.BindPort(fd, 6000); err != nil {
		t.Fatalf("port still bound after process exit: %v", err)
	}
}

func TestExecRunsExecutable(t *testing.T) {
	c, red, _ := newTestCluster(t)
	c.RegisterProgram("hello", func(p *Process) int { return 42 })
	if err := red.FS().CreateExecutable("/bin/hello", testUID, "hello"); err != nil {
		t.Fatal(err)
	}
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "launcher", Program: func(p *Process) int {
		if err := p.Exec("/bin/hello", "arg1"); err != nil {
			t.Errorf("exec: %v", err)
			return 1
		}
		return 0 // unreachable: exec does not return on success
	}})
	if err != nil {
		t.Fatal(err)
	}
	status, _ := p.WaitExit()
	if status != 42 {
		t.Fatalf("status = %d, want 42 from exec'd program", status)
	}
	if p.Name() != "/bin/hello" {
		t.Fatalf("name = %q after exec", p.Name())
	}
}

func TestExecMissingFile(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	if err := p.Exec("/bin/nonesuch"); err == nil {
		t.Fatal("exec of missing file succeeded")
	}
}

func TestSpawnFromPath(t *testing.T) {
	c, red, _ := newTestCluster(t)
	c.RegisterProgram("prog", func(p *Process) int { return 5 })
	if err := red.FS().CreateExecutable("/bin/prog", testUID, "prog"); err != nil {
		t.Fatal(err)
	}
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "prog", Path: "/bin/prog"})
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := p.WaitExit(); status != 5 {
		t.Fatalf("status = %d", status)
	}
}

func TestCPUTimeCharged(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Program: func(p *Process) int {
		p.Compute(35 * time.Millisecond)
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	p.WaitExit()
	if got := p.cpu.QuantizedMillis(); got != 30 {
		t.Fatalf("quantized CPU = %d ms, want 30 (10ms granularity)", got)
	}
}

func TestSignalUnknownPid(t *testing.T) {
	_, red, _ := newTestCluster(t)
	if err := red.Signal(424242, SIGKILL); !errors.Is(err, ErrSearch) {
		t.Fatalf("err = %v, want ErrSearch", err)
	}
}

func TestForkInheritsDescriptors(t *testing.T) {
	_, red, _ := newTestCluster(t)
	result := make(chan string, 1)
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "parent", Program: func(p *Process) int {
		fd1, fd2, err := p.SocketPair()
		if err != nil {
			t.Error(err)
			return 1
		}
		_, err = p.Fork(func(child *Process) int {
			// The child gains access to the parent's sockets (3.1).
			d, err := child.Recv(fd2, 100)
			if err != nil {
				t.Errorf("child recv: %v", err)
				return 1
			}
			result <- string(d)
			return 0
		})
		if err != nil {
			t.Error(err)
			return 1
		}
		if _, err := p.Send(fd1, []byte("to child")); err != nil {
			t.Error(err)
			return 1
		}
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	p.WaitExit()
	select {
	case got := <-result:
		if got != "to child" {
			t.Fatalf("child received %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("child never received")
	}
}

func TestDetachedKillReturnsError(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	red.Signal(p.PID(), SIGKILL)
	if _, err := p.Socket(meter.AFInet, SockStream); !errors.Is(err, ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled", err)
	}
}

// TestProcessGoKilledWorker verifies the auxiliary-goroutine contract:
// a goroutine launched with Process.Go may issue syscalls, and when the
// process is killed the goroutine's kill unwind is absorbed — the
// process exits, and cluster shutdown does not hang waiting for it.
func TestProcessGoKilledWorker(t *testing.T) {
	_, red, _ := newTestCluster(t)
	started := make(chan struct{})
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Program: func(p *Process) int {
		p.Go(func() {
			close(started)
			for {
				p.Compute(time.Millisecond) // unwinds with killedPanic on kill
			}
		})
		for {
			p.Compute(time.Millisecond)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := red.Signal(p.PID(), SIGKILL); err != nil {
		t.Fatal(err)
	}
	if _, reason := p.WaitExit(); reason != ReasonKilled {
		t.Fatalf("reason = %s, want killed", reason)
	}
	// t.Cleanup's c.Shutdown hanging on the worker's wg registration
	// would fail the test by deadlock; reaching here is the assertion.
}

// TestProcessGoOutlivesNormalExit verifies that a Go goroutine finishing
// normally releases its shutdown registration.
func TestProcessGoOutlivesNormalExit(t *testing.T) {
	_, red, _ := newTestCluster(t)
	ran := make(chan struct{})
	p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Program: func(p *Process) int {
		p.Go(func() {
			p.Compute(time.Millisecond)
			close(ran)
		})
		<-ran
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	if status, reason := p.WaitExit(); status != 0 || reason != ReasonNormal {
		t.Fatalf("exit = (%d, %s), want (0, normal)", status, reason)
	}
}
