package kernel

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"dpm/internal/meter"
)

// TestStreamFIFOProperty: whatever chunking the sender uses and
// whatever read sizes the receiver uses, a stream delivers exactly the
// concatenation of the bytes written, in order (section 3.1).
func TestStreamFIFOProperty(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	f := func(chunks [][]byte, readSizes []uint8) bool {
		fd1, fd2, err := p.SocketPair()
		if err != nil {
			return false
		}
		defer p.Close(fd1)
		defer p.Close(fd2)
		var want []byte
		for _, c := range chunks {
			if len(c) == 0 {
				continue
			}
			if _, err := p.Send(fd1, c); err != nil {
				return false
			}
			want = append(want, c...)
		}
		if err := p.Close(fd1); err != nil {
			return false
		}
		var got []byte
		i := 0
		for {
			size := 1
			if len(readSizes) > 0 {
				size = int(readSizes[i%len(readSizes)])%64 + 1
			}
			i++
			data, err := p.Recv(fd2, size)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, data...)
		}
		return bytes.Equal(got, want)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDatagramBoundaryProperty: local datagrams preserve message
// boundaries and order regardless of sizes.
func TestDatagramBoundaryProperty(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	port := uint16(20000)
	f := func(msgs [][]byte) bool {
		port++
		rfd, err := p.Socket(meter.AFInet, SockDgram)
		if err != nil {
			return false
		}
		defer p.Close(rfd)
		if err := p.BindPort(rfd, port); err != nil {
			return false
		}
		s, err := p.sockFD(rfd)
		if err != nil {
			return false
		}
		rname := s.BoundName()
		sfd, err := p.Socket(meter.AFInet, SockDgram)
		if err != nil {
			return false
		}
		defer p.Close(sfd)
		var sent [][]byte
		for _, m := range msgs {
			if len(m) > 4096 {
				m = m[:4096]
			}
			if _, err := p.SendTo(sfd, m, rname); err != nil {
				return false
			}
			sent = append(sent, m)
		}
		for _, want := range sent {
			got, err := p.Recv(rfd, 8192)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDescriptorSlotReuseProperty: closing descriptors frees their
// slots; the lowest free slot is always reused, and the open-descriptor
// count tracks opens minus closes.
func TestDescriptorSlotReuseProperty(t *testing.T) {
	_, red, _ := newTestCluster(t)
	f := func(ops []bool) bool {
		p, err := red.SpawnDetached(testUID, "fdtest")
		if err != nil {
			return false
		}
		base := p.NumFDs()
		var open []int
		count := 0
		for _, doOpen := range ops {
			if doOpen || len(open) == 0 {
				fd, err := p.Socket(meter.AFInet, SockDgram)
				if err != nil {
					return false
				}
				open = append(open, fd)
				count++
			} else {
				fd := open[len(open)-1]
				open = open[:len(open)-1]
				if err := p.Close(fd); err != nil {
					return false
				}
				count--
			}
			if p.NumFDs() != base+count {
				return false
			}
		}
		// UNIX semantics: the next socket gets the lowest free slot.
		for _, fd := range open {
			if err := p.Close(fd); err != nil {
				return false
			}
		}
		fd, err := p.Socket(meter.AFInet, SockDgram)
		if err != nil {
			return false
		}
		return fd == 3 // 0,1,2 are stdio
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSelectNoFDs(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	if _, err := p.Select(nil); !errors.Is(err, ErrInval) {
		t.Fatalf("err = %v, want ErrInval", err)
	}
}

func TestMeteredProcessSurvivesFilterDeath(t *testing.T) {
	// Transparency under failure: if the filter dies, the metered
	// process must be unaffected — its meter messages are silently
	// lost, like messages on an unconnected socket (Appendix C).
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	tap := newMeterTap(t, green, target, meter.MAll|meter.MImmediate, testUID)

	f1, f2, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Send(f1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	tap.collect(5) // pair(4) + send

	// The "filter" dies: its end of the meter connection closes.
	if err := tap.filter.Close(tap.connFD); err != nil {
		t.Fatal(err)
	}

	// The metered process continues undisturbed.
	for i := 0; i < 20; i++ {
		if _, err := target.Send(f1, []byte("after")); err != nil {
			t.Fatalf("send %d after filter death: %v", i, err)
		}
		if _, err := target.Recv(f2, 100); err != nil {
			t.Fatalf("recv %d after filter death: %v", i, err)
		}
	}
}

func TestGrandchildInheritsMetering(t *testing.T) {
	// Metering flows down fork chains: "all of the children of a
	// metered process will also have the same events monitored"
	// (section 3.2) — including children of children.
	_, red, green := newTestCluster(t)
	parent, err := red.Spawn(SpawnSpec{UID: testUID, Name: "gen0", Suspended: true, Program: func(p *Process) int {
		done := make(chan struct{})
		_, err := p.Fork(func(child *Process) int {
			defer close(done)
			inner := make(chan struct{})
			_, err := child.Fork(func(grandchild *Process) int {
				defer close(inner)
				g1, _, err := grandchild.SocketPair()
				if err != nil {
					return 1
				}
				if _, err := grandchild.Send(g1, []byte("deep")); err != nil {
					return 1
				}
				return 0
			})
			if err != nil {
				return 1
			}
			<-inner
			return 0
		})
		if err != nil {
			return 1
		}
		<-done
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	tap := newMeterTap(t, green, parent, meter.MFork|meter.MSend|meter.MImmediate, testUID)
	if err := red.Signal(parent.PID(), SIGCONT); err != nil {
		t.Fatal(err)
	}
	msgs := tap.collect(3) // fork, fork, send
	if msgs[0].Header.TraceType != meter.EvFork || msgs[1].Header.TraceType != meter.EvFork {
		t.Fatalf("events = %v", types(msgs))
	}
	send := msgs[2].Body.(*meter.Send)
	grandchild := msgs[1].Body.(*meter.Fork).NewPID
	if send.PID != grandchild {
		t.Fatalf("send pid %d, want grandchild %d", send.PID, grandchild)
	}
	if status, _ := parent.WaitExit(); status != 0 {
		t.Fatalf("status %d", status)
	}
}

func TestSetmeterReplacingSocketFlushesOld(t *testing.T) {
	// "If setmeter() is called specifying a new meter socket for a
	// process already having one, the old socket is closed" — and the
	// buffered messages reach the old filter first.
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	tap1 := newMeterTap(t, green, target, meter.MSend, testUID) // buffered
	f1, _, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Send(f1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Re-point metering at a second tap; the buffered send must be
	// flushed to the first.
	tap2 := newMeterTap(t, green, target, meter.MSend|meter.MImmediate, testUID)
	msgs := tap1.collect(1)
	if msgs[0].Header.TraceType != meter.EvSend {
		t.Fatalf("old tap got %v", types(msgs))
	}
	if _, err := target.Send(f1, []byte("two")); err != nil {
		t.Fatal(err)
	}
	msgs = tap2.collect(1)
	if got := msgs[0].Body.(*meter.Send).MsgLength; got != 3 {
		t.Fatalf("new tap send length = %d", got)
	}
}
