package kernel

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the cluster's event-driven process scheduler:
// the density engine that lets one Go process simulate thousands of
// machines. A Task is a process-table entry with *no goroutine* — a
// step function run by a small pooled worker set whenever the task has
// work, and parked on socket wait lists (waitq.go) or a shared timer
// heap in between. Goroutine count is therefore a function of the
// worker pool size, not of the task count: 10k idle tasks cost 10k
// small structs, zero goroutines, zero channels.
//
// A step must not block: tasks use the non-blocking syscall variants
// (TryAccept, TryRecvFrom) and return PollBlocked with watches
// registered via Task.Park / Task.Sleep. The run state machine
// (parked/queued/running/running-wake) guarantees a wakeup arriving at
// any point — including while the step runs — is never lost and never
// enqueues the task twice.

// Poll is a task step's report to the scheduler.
type Poll int

const (
	// PollBlocked parks the task until a socket watched via Park
	// changes state, a Sleep deadline fires, or a signal arrives.
	PollBlocked Poll = iota
	// PollReady re-queues the task to run again as soon as a worker is
	// free.
	PollReady
	// PollDone retires the task; its process exits with Task.Status.
	PollDone
)

// TaskFunc is one scheduling step of an event-driven process. It runs
// on a pooled worker goroutine and must not block: use the TryXxx
// syscalls and park on what they report would block.
type TaskFunc func(t *Task) Poll

// Task run states.
const (
	taskParked int32 = iota
	taskQueued
	taskRunning
	taskRunningWake // wakeup arrived mid-step: requeue after it
	taskDone
)

// Task is the scheduler's handle for one event-driven process.
type Task struct {
	proc  *Process
	fn    TaskFunc
	sched *scheduler

	// Status is the exit status reported when fn returns PollDone.
	Status int

	state   atomic.Int32
	gen     atomic.Uint64 // timer generation; bumped per run to void stale timers
	retired atomic.Bool

	wakeFn func() // t.wake, allocated once

	// Park/Sleep registrations for the current step; consumed by the
	// worker when the step returns PollBlocked.
	watch       []*Socket
	nodes       []waiter
	deadline    time.Time
	hasDeadline bool
}

// Proc returns the task's process, the receiver for its system calls.
func (t *Task) Proc() *Process { return t.proc }

// Park watches the sockets behind the given descriptors: if the step
// returns PollBlocked, any state change on one of them re-queues the
// task. Unknown or non-socket descriptors are ignored (the task is
// usually tearing down when they appear). Returns PollBlocked so a
// step can end with `return t.Park(fd)`.
func (t *Task) Park(fds ...int) Poll {
	for _, fd := range fds {
		s, err := t.proc.sockFD(fd)
		if err != nil {
			continue
		}
		t.watch = append(t.watch, s)
	}
	return PollBlocked
}

// Sleep arms a wakeup d from now for a PollBlocked return; combined
// with Park it is a timeout on the watched sockets. Returns
// PollBlocked so a step can end with `return t.Sleep(d)`.
func (t *Task) Sleep(d time.Duration) Poll {
	t.deadline = time.Now().Add(d)
	t.hasDeadline = true
	return PollBlocked
}

// wake transitions the task toward the run queue; callable from any
// goroutine, lock-free, idempotent while already queued.
func (t *Task) wake() {
	for {
		switch s := t.state.Load(); s {
		case taskParked:
			if t.state.CompareAndSwap(taskParked, taskQueued) {
				t.sched.enqueue(t)
				return
			}
		case taskRunning:
			if t.state.CompareAndSwap(taskRunning, taskRunningWake) {
				return
			}
		default: // queued, running-wake, done: nothing to do
			return
		}
	}
}

// unparkAll removes the task's waiter nodes from every watched socket.
func (t *Task) unparkAll() {
	for i := range t.watch {
		s := t.watch[i]
		s.mu.Lock()
		s.waiters.remove(&t.nodes[i])
		s.mu.Unlock()
	}
}

// invoke runs the step, absorbing the kill/exit panics that unwind
// goroutine-backed processes — a task process is detached, so its
// syscalls report ErrKilled instead, but a stray p.Exit in a shared
// program body must still retire the task cleanly.
func (t *Task) invoke() (poll Poll) {
	defer func() {
		switch v := recover().(type) {
		case nil:
		case killedPanic:
			poll, t.Status = PollDone, -1
		case exitPanic:
			poll, t.Status = PollDone, v.status
		default:
			panic(v)
		}
	}()
	return t.fn(t)
}

// retire finishes the task's process exactly once and releases its
// cluster-shutdown accounting.
func (t *Task) retire(status int, reason string) {
	if !t.retired.CompareAndSwap(false, true) {
		return
	}
	t.state.Store(taskDone)
	t.proc.finish(status, reason)
	t.proc.machine.wg.Done()
}

// scheduler is the cluster-wide run queue and worker pool.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	runq    []*Task
	head    int
	stopped bool

	timerMu sync.Mutex
	timers  timerHeap
	timerCh chan struct{} // kicks the timer goroutine on an earlier deadline
	stopCh  chan struct{}

	wg sync.WaitGroup
}

// defaultSchedWorkers sizes the pool when Config.SchedWorkers is zero.
func defaultSchedWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 2 {
		n = 2
	}
	return n
}

// newScheduler starts the worker pool and the timer goroutine.
func newScheduler(workers int) *scheduler {
	if workers <= 0 {
		workers = defaultSchedWorkers()
	}
	s := &scheduler{
		timerCh: make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers + 1)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	go s.timerLoop()
	return s
}

// enqueue appends a runnable task to the queue.
func (s *scheduler) enqueue(t *Task) {
	s.mu.Lock()
	s.runq = append(s.runq, t)
	s.cond.Signal()
	s.mu.Unlock()
}

// pop removes the next runnable task, blocking while the queue is
// empty; it returns nil only after stop.
func (s *scheduler) pop() *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.head < len(s.runq) {
			t := s.runq[s.head]
			s.runq[s.head] = nil
			s.head++
			if s.head == len(s.runq) {
				s.runq = s.runq[:0]
				s.head = 0
			}
			return t
		}
		if s.stopped {
			return nil
		}
		s.cond.Wait()
	}
}

// stop drains the workers and the timer goroutine. Cluster.Shutdown
// calls it after every process has finished, so the queue is empty.
func (s *scheduler) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	close(s.stopCh)
	s.wg.Wait()
}

// worker runs task steps until stop.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		t := s.pop()
		if t == nil {
			return
		}
		s.step(t)
	}
}

// step runs one scheduling step of t and re-disposes it: retire on
// done or kill, park on sockets/timer on blocked, requeue on ready.
func (s *scheduler) step(t *Task) {
	t.state.Store(taskRunning)
	t.gen.Add(1) // void timers armed for the previous park
	t.unparkAll()
	p := t.proc

	p.sigMu.Lock()
	killed, stopped := p.killed, p.stopped
	p.sigMu.Unlock()
	if killed || p.exited() {
		t.retire(-1, ReasonKilled)
		return
	}
	if stopped {
		// SIGSTOP: park with no watches; SIGCONT's schedHook wakes us.
		// Re-check after parking so a continue racing the park is not
		// lost.
		prev := t.state.Swap(taskParked)
		p.sigMu.Lock()
		stopped = p.stopped
		p.sigMu.Unlock()
		if prev == taskRunningWake || !stopped {
			t.wake()
		}
		return
	}

	t.watch = t.watch[:0]
	t.hasDeadline = false
	switch t.invoke() {
	case PollDone:
		t.retire(t.Status, ReasonNormal)
	case PollReady:
		t.state.Store(taskQueued)
		s.enqueue(t)
	default: // PollBlocked
		// Park first, check afterwards: a socket that became ready (or
		// a wake that arrived) during the step must re-queue, not sleep.
		prev := t.state.Swap(taskParked)
		if n := len(t.watch); cap(t.nodes) < n {
			t.nodes = make([]waiter, n)
		} else {
			t.nodes = t.nodes[:n]
		}
		readyNow := false
		for i, sock := range t.watch {
			t.nodes[i] = waiter{fn: t.wakeFn}
			sock.mu.Lock()
			sock.waiters.push(&t.nodes[i])
			if sock.readyLocked() {
				readyNow = true
			}
			sock.mu.Unlock()
		}
		if t.hasDeadline {
			s.addTimer(t, t.deadline, t.gen.Load())
		}
		if prev == taskRunningWake || readyNow {
			t.wake()
		}
	}
}

// timerEntry is one armed Sleep deadline.
type timerEntry struct {
	when time.Time
	gen  uint64
	task *Task
}

type timerHeap []timerEntry

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].when.Before(h[j].when) }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// addTimer arms a wakeup; entries from superseded parks are left in
// the heap and discarded by their stale generation when they surface.
func (s *scheduler) addTimer(t *Task, when time.Time, gen uint64) {
	s.timerMu.Lock()
	heap.Push(&s.timers, timerEntry{when: when, gen: gen, task: t})
	kick := s.timers[0].task == t && s.timers[0].gen == gen
	s.timerMu.Unlock()
	if kick {
		select {
		case s.timerCh <- struct{}{}:
		default:
		}
	}
}

// timerLoop fires due deadlines from one goroutine — the shared stand-
// in for the per-datagram, per-sleep timer goroutines the seed spent.
func (s *scheduler) timerLoop() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := time.Now()
		wait := time.Hour
		var due []*Task
		s.timerMu.Lock()
		for len(s.timers) > 0 && !s.timers[0].when.After(now) {
			e := heap.Pop(&s.timers).(timerEntry)
			if e.task.gen.Load() == e.gen {
				due = append(due, e.task)
			}
		}
		if len(s.timers) > 0 {
			wait = time.Until(s.timers[0].when)
		}
		s.timerMu.Unlock()
		for _, t := range due {
			t.wake()
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-s.timerCh:
		case <-s.stopCh:
			return
		}
	}
}
