package kernel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dpm/internal/meter"
)

// TestTaskRunsToDone: a task that asks to be re-queued twice and then
// exits carries its status into the process table like any process.
func TestTaskRunsToDone(t *testing.T) {
	_, red, _ := newTestCluster(t)
	steps := 0
	p, err := red.SpawnTask(testUID, "stepper", func(tk *Task) Poll {
		steps++
		if steps < 3 {
			return PollReady
		}
		tk.Status = 42
		return PollDone
	})
	if err != nil {
		t.Fatal(err)
	}
	status, reason := p.WaitExit()
	if status != 42 || reason != ReasonNormal {
		t.Fatalf("task exit = (%d, %s), want (42, normal)", status, reason)
	}
	if steps != 3 {
		t.Fatalf("task ran %d steps, want 3", steps)
	}
}

// TestTaskParksAndWakesOnDatagram: a task parked on a datagram socket
// is re-queued when one arrives — from another machine, through the
// fabric — without any goroutine of its own.
func TestTaskParksAndWakesOnDatagram(t *testing.T) {
	_, red, green := newTestCluster(t)

	got := make(chan []byte, 1)
	var fd int
	p, err := red.SpawnTask(testUID, "sink", func(tk *Task) Poll {
		p := tk.Proc()
		if fd == 0 {
			var err error
			fd, err = p.Socket(meter.AFInet, SockDgram)
			if err != nil {
				t.Errorf("socket: %v", err)
				return PollDone
			}
			if err := p.BindPort(fd, 9000); err != nil {
				t.Errorf("bind: %v", err)
				return PollDone
			}
		}
		data, _, err := p.TryRecvFrom(fd, 4096)
		switch {
		case err == nil:
			got <- data
			return PollDone
		case errors.Is(err, ErrWouldBlock):
			return tk.Park(fd)
		default:
			t.Errorf("recv: %v", err)
			return PollDone
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	sender := detached(t, green)
	sfd, err := sender.Socket(meter.AFInet, SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	// Give the task time to bind before sending; retry while the port
	// is not yet there.
	dest := meter.InetName(red.PrimaryHostID(), 9000)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if red.PortBound(SockDgram, 9000) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("task never bound its port")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := sender.SendTo(sfd, []byte("ping"), dest); err != nil {
		t.Fatal(err)
	}

	select {
	case data := <-got:
		if string(data) != "ping" {
			t.Fatalf("task received %q, want %q", data, "ping")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked task was never woken by the datagram")
	}
	p.WaitExit()
}

// TestTaskSleepWakes: a Sleep deadline re-queues a parked task through
// the scheduler's shared timer heap.
func TestTaskSleepWakes(t *testing.T) {
	_, red, _ := newTestCluster(t)
	var phase int
	start := time.Now()
	p, err := red.SpawnTask(testUID, "sleeper", func(tk *Task) Poll {
		phase++
		if phase == 1 {
			return tk.Sleep(20 * time.Millisecond)
		}
		return PollDone
	})
	if err != nil {
		t.Fatal(err)
	}
	p.WaitExit()
	if phase != 2 {
		t.Fatalf("task ran %d phases, want 2", phase)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("task woke after %v, want >= ~20ms", elapsed)
	}
}

// TestTaskKillWhileParked: SIGKILL re-queues a parked task so a worker
// retires it; cluster shutdown then returns promptly.
func TestTaskKillWhileParked(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p, err := red.SpawnTask(testUID, "forever", func(tk *Task) Poll {
		return PollBlocked // park with no watches: only a signal wakes us
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let it park
	p.signal(SIGKILL)
	done := make(chan struct{})
	go func() { p.WaitExit(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("killed parked task never retired")
	}
	if _, reason := p.WaitExit(); reason != ReasonKilled {
		t.Fatalf("reason = %s, want killed", reason)
	}
}

// TestTaskStopCont: a stopped task does not run its step; SIGCONT
// resumes it. The scheduler parks stopped tasks between steps instead
// of blocking a worker in checkpoint.
func TestTaskStopCont(t *testing.T) {
	_, red, _ := newTestCluster(t)
	var steps atomic.Int32
	resume := make(chan struct{})
	p, err := red.SpawnTask(testUID, "stoppable", func(tk *Task) Poll {
		if steps.Add(1) == 1 {
			return PollReady
		}
		select {
		case <-resume:
			return PollDone
		default:
			return PollReady
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	p.signal(SIGSTOP)
	time.Sleep(10 * time.Millisecond)
	before := steps.Load()
	time.Sleep(20 * time.Millisecond)
	if after := steps.Load(); after != before {
		t.Fatalf("stopped task kept stepping: %d -> %d", before, after)
	}
	close(resume)
	p.signal(SIGCONT)
	status, reason := p.WaitExit()
	if status != 0 || reason != ReasonNormal {
		t.Fatalf("exit = (%d, %s), want (0, normal)", status, reason)
	}
}

// TestManyTasksSubLinearGoroutines is the density claim in miniature:
// 2000 parked tasks add only the scheduler's fixed worker pool to the
// process's goroutine count.
func TestManyTasksSubLinearGoroutines(t *testing.T) {
	c := NewCluster(Config{})
	c.AddNetwork("ether0")
	m, err := c.AddMachine("dense", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	m.AddAccount(testUID, "user")
	t.Cleanup(c.Shutdown)

	base := runtime.NumGoroutine()
	const tasks = 2000
	for i := 0; i < tasks; i++ {
		if _, err := m.SpawnTask(testUID, "idle", func(tk *Task) Poll {
			return PollBlocked
		}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let every task park
	grew := runtime.NumGoroutine() - base
	// Worker pool + timer goroutine is <= 9; anything near the task
	// count means tasks are holding goroutines again.
	if grew > 32 {
		t.Fatalf("%d tasks grew goroutines by %d, want <= 32", tasks, grew)
	}
}

// TestTryAcceptWouldBlock: the non-blocking accept path used by
// event-driven listeners.
func TestTryAcceptWouldBlock(t *testing.T) {
	_, red, green := newTestCluster(t)
	server := detached(t, green)
	lfd, lname := listenStream(t, server, 700)
	if _, _, err := server.TryAccept(lfd); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("TryAccept on empty listener: %v, want ErrWouldBlock", err)
	}
	client := detached(t, red)
	cfd, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	if _, _, err := server.TryAccept(lfd); err != nil {
		t.Fatalf("TryAccept with pending connection: %v", err)
	}
}

// TestTryRecvFromWouldBlock: the non-blocking receive path.
func TestTryRecvFromWouldBlock(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd, err := p.Socket(meter.AFInet, SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.BindPort(fd, 701); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TryRecvFrom(fd, 4096); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("TryRecvFrom on empty socket: %v, want ErrWouldBlock", err)
	}
	if _, err := p.SendTo(fd, []byte("self"), meter.InetName(red.PrimaryHostID(), 701)); err != nil {
		t.Fatal(err)
	}
	data, _, err := p.TryRecvFrom(fd, 4096)
	if err != nil || string(data) != "self" {
		t.Fatalf("TryRecvFrom = (%q, %v), want (self, nil)", data, err)
	}
}

// TestDgramQueueBudgetSheds: the per-socket datagram budget bounds an
// unread socket's footprint; overflow is shed and counted.
func TestDgramQueueBudgetSheds(t *testing.T) {
	c := NewCluster(Config{DgramQueueCap: 8})
	c.AddNetwork("ether0")
	m, err := c.AddMachine("tiny", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	m.AddAccount(testUID, "user")
	t.Cleanup(c.Shutdown)
	p, err := m.SpawnDetached(testUID, "flood")
	if err != nil {
		t.Fatal(err)
	}
	fd, err := p.Socket(meter.AFInet, SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.BindPort(fd, 702); err != nil {
		t.Fatal(err)
	}
	dest := meter.InetName(m.PrimaryHostID(), 702)
	for i := 0; i < 20; i++ {
		if _, err := p.SendTo(fd, []byte("x"), dest); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, _, err := p.TryRecvFrom(fd, 16); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if _, _, err := p.TryRecvFrom(fd, 16); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("recv past budget: %v, want ErrWouldBlock (queue capped at 8)", err)
	}
	if shed := m.mem.shedDgrams.Load(); shed != 12 {
		t.Fatalf("shed datagrams = %d, want 12", shed)
	}
}

// TestSelectReadyAllocs gates the wait-list rewrite of Process.Select:
// with parking pooled, a ready select's only heap traffic is the two
// result slices (sockets + ready fds). The reflect.Select version it
// replaced allocated a SelectCase slice, boxed every channel in an
// interface, and burned a wait channel per wakeup.
func TestSelectReadyAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fds := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		a, b, err := p.SocketPair()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Send(a, []byte("ready")); err != nil {
			t.Fatal(err)
		}
		fds = append(fds, b)
	}
	// Warm the parking pool.
	if _, err := p.Select(fds); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		ready, err := p.Select(fds)
		if err != nil || len(ready) != 8 {
			t.Fatalf("Select = (%v, %v), want 8 ready", ready, err)
		}
	})
	// socks slice + up to 4 appends growing the ready slice; anything
	// beyond ~6 means per-wait allocation crept back in.
	if n > 6 {
		t.Fatalf("ready Select allocates %v per call, want <= 6", n)
	}
}

// TestMachineFootprintAccounting: buffered bytes are charged on
// delivery and released on consumption and socket death.
func TestMachineFootprintAccounting(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd1, fd2, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(fd1, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, buffered := red.Footprint(); buffered != 10 {
		t.Fatalf("buffered after send = %d, want 10", buffered)
	}
	if _, err := p.Recv(fd2, 4); err != nil {
		t.Fatal(err)
	}
	if _, buffered := red.Footprint(); buffered != 6 {
		t.Fatalf("buffered after partial read = %d, want 6", buffered)
	}
	if err := p.Close(fd2); err != nil {
		t.Fatal(err)
	}
	if _, buffered := red.Footprint(); buffered != 0 {
		t.Fatalf("buffered after close = %d, want 0", buffered)
	}
	if err := p.Close(fd1); err != nil {
		t.Fatal(err)
	}
	if socks, _ := red.Footprint(); socks != 0 {
		t.Fatalf("sockets after closing both ends = %d, want 0", socks)
	}
}
