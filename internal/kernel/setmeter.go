package kernel

import (
	"fmt"

	"dpm/internal/meter"
)

// Special argument values for Setmeter, from the setmeter(2) manual
// page (Appendix C) and section 4.1. SELF and NO_CHANGE are the man
// page's -1. The paper also names a NONE value that turns all flags
// off (for the flags argument that is simply 0) and closes the meter
// connection (for the socket argument); since descriptor 0 is a valid
// descriptor, this reproduction uses -2 for the socket argument's
// NONE.
const (
	Self      = -1 // proc argument: the calling process
	NoChange  = -1 // flags/socket argument: leave unchanged
	FlagsNone = 0  // flags argument: all flags off
	SockNone  = -2 // socket argument: close the meter connection
)

// newMeterBuffer builds the per-process buffer of unsent meter
// messages, delivering batches over the given meter socket. Each flush
// is one kernelSend of the whole batch, so the filter's Recv sees a
// maximal contiguous run of frames and can process the run with a
// single batched flush of its own sinks; the stream delivery copies
// the bytes, letting the buffer recycle the batch storage. A batch the
// socket cannot deliver (the filter died between buffering and flush)
// is counted message-by-message in the cluster's fault stats.
func (m *Machine) newMeterBuffer(sock *Socket) *meter.Buffer {
	count := m.cluster.meterBufferCount()
	if count == 0 {
		count = meter.DefaultBufferCount
	}
	b := meter.NewBuffer(count, func(batch []byte) {
		if sock.kernelSend(batch) {
			return
		}
		if msgs, _, err := meter.DecodeStream(batch); err == nil && len(msgs) > 0 {
			m.faults.meterDrops.Add(int64(len(msgs)))
		} else {
			m.faults.meterDrops.Add(1)
		}
	})
	b.SetObs(m.obs.Counter("meter.events"), m.obs.Counter("meter.flushes"),
		m.obs.Counter("meter.flush_bytes"))
	return b
}

// Setmeter marks a process for metering (the system call the paper
// adds to the 4.2BSD kernel; Appendix C).
//
//   - proc is the pid of the process to be metered, or Self.
//   - flags is the new meter flag mask (replacing the previous mask),
//     FlagsNone to turn all flags off, or NoChange.
//   - sockFD is a descriptor, in the calling process's table, of a
//     connected stream socket over which meter messages will be sent;
//     SockNone closes the existing meter connection; NoChange keeps it.
//
// A user can request metering only for processes belonging to that
// user (EPERM otherwise; the superuser can meter anything). The given
// socket is duplicated for the metered process but not placed in that
// process's descriptor table, so the process is not able to send
// messages through it and metering stays invisible. If a new meter
// socket is given to a process that already has one, the old socket's
// pending messages are flushed and the old socket is closed.
func (p *Process) Setmeter(proc int, flags int, sockFD int) error {
	if err := p.enter(); err != nil {
		return err
	}
	target := p
	if proc != Self {
		t, err := p.machine.Proc(proc)
		if err != nil {
			return err
		}
		target = t
	}
	if p.uid != 0 && p.uid != target.uid {
		return fmt.Errorf("%w: process %d does not belong to caller", ErrPerm, target.pid)
	}

	// Validate the socket argument before mutating anything.
	var newSock *Socket
	switch sockFD {
	case NoChange, SockNone:
	default:
		s, err := p.sockFD(sockFD)
		if err != nil {
			return err
		}
		// "The socket provided must be a stream socket in the Internet
		// domain. Any other socket will result in a negative return
		// value and an error status. The socket must be connected to
		// be used, though this is not checked."
		if s.typ != SockStream || s.domain != meter.AFInet {
			return fmt.Errorf("%w: meter socket must be an Internet stream socket", ErrInval)
		}
		newSock = s
	}

	target.mu.Lock()
	if flags != NoChange {
		target.meterFlags = meter.Flag(uint32(flags))
	}
	var oldSock *Socket
	var oldBuf *meter.Buffer
	switch {
	case sockFD == NoChange:
	case sockFD == SockNone:
		oldSock, oldBuf = target.meterSock, target.meterBuf
		target.meterSock, target.meterBuf = nil, nil
	default:
		oldSock, oldBuf = target.meterSock, target.meterBuf
		newSock.ref() // duplicated for the metered process, hidden from its table
		target.meterSock = newSock
		target.meterBuf = p.machine.newMeterBuffer(newSock)
	}
	target.mu.Unlock()

	if oldBuf != nil {
		oldBuf.Flush()
	}
	if oldSock != nil {
		oldSock.unref()
	}
	return nil
}
