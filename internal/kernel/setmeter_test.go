package kernel

import (
	"errors"
	"testing"
	"time"

	"dpm/internal/meter"
)

// meterTap wires a target process to a test "filter": a listening
// stream socket whose accepted connection carries the meter messages.
// It mirrors exactly what the meterdaemon does: create a socket,
// connect it to the filter, call setmeter with the connected
// descriptor, and close its own descriptor (section 4.1).
type meterTap struct {
	t      *testing.T
	filter *Process
	connFD int
	buf    []byte
}

// newMeterTap arms metering on target with the given flags. The
// caller process (the "daemon") runs as uid daemonUID on the target's
// machine.
func newMeterTap(t *testing.T, filterMachine *Machine, target *Process, flags meter.Flag, daemonUID int) *meterTap {
	t.Helper()
	filter, err := filterMachine.SpawnDetached(0, "test-filter")
	if err != nil {
		t.Fatal(err)
	}
	lfd, err := filter.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := filter.BindPort(lfd, 0); err != nil {
		t.Fatal(err)
	}
	if err := filter.Listen(lfd, 4); err != nil {
		t.Fatal(err)
	}
	ls, err := filter.sockFD(lfd)
	if err != nil {
		t.Fatal(err)
	}
	lname := ls.BoundName()

	daemon, err := target.Machine().SpawnDetached(daemonUID, "test-daemon")
	if err != nil {
		t.Fatal(err)
	}
	msfd, err := daemon.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Connect(msfd, lname); err != nil {
		t.Fatal(err)
	}
	connFD, _, err := filter.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Setmeter(target.PID(), int(flags), msfd); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Close(msfd); err != nil {
		t.Fatal(err)
	}
	return &meterTap{t: t, filter: filter, connFD: connFD}
}

// collect reads meter messages until n have been decoded.
func (mt *meterTap) collect(n int) []meter.Msg {
	mt.t.Helper()
	var msgs []meter.Msg
	for len(msgs) < n {
		data, err := mt.filter.Recv(mt.connFD, 4096)
		if err != nil {
			mt.t.Fatalf("meter tap recv after %d/%d messages: %v", len(msgs), n, err)
		}
		mt.buf = append(mt.buf, data...)
		got, rest, err := meter.DecodeStream(mt.buf)
		if err != nil {
			mt.t.Fatalf("meter stream corrupt: %v", err)
		}
		mt.buf = rest
		msgs = append(msgs, got...)
	}
	return msgs
}

func types(msgs []meter.Msg) []meter.Type {
	out := make([]meter.Type, len(msgs))
	for i, m := range msgs {
		out[i] = m.Header.TraceType
	}
	return out
}

func TestSetmeterEmitsFlaggedEvents(t *testing.T) {
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	tap := newMeterTap(t, green, target, meter.MAll|meter.MImmediate, testUID)

	fd1, fd2, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Send(fd1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := target.Recv(fd2, 100); err != nil {
		t.Fatal(err)
	}
	// socketpair produces all four messages (2 creates + connect +
	// accept, section 3.2), then send, receivecall, receive.
	msgs := tap.collect(7)
	want := []meter.Type{
		meter.EvSocket, meter.EvSocket, meter.EvConnect, meter.EvAccept,
		meter.EvSend, meter.EvRecvCall, meter.EvRecv,
	}
	got := types(msgs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event sequence = %v, want %v", got, want)
		}
	}
	send := msgs[4].Body.(*meter.Send)
	if send.MsgLength != 5 || send.PID != uint32(target.PID()) {
		t.Fatalf("send body = %+v", send)
	}
	if msgs[0].Header.Machine != red.ID() {
		t.Fatalf("machine id = %d, want %d", msgs[0].Header.Machine, red.ID())
	}
}

func TestUnflaggedEventsNotEmitted(t *testing.T) {
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	tap := newMeterTap(t, green, target, meter.MSend|meter.MImmediate, testUID)

	fd1, fd2, err := target.SocketPair() // socket/connect/accept unflagged
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Send(fd1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := target.Recv(fd2, 10); err != nil { // receive unflagged
		t.Fatal(err)
	}
	if _, err := target.Send(fd1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	msgs := tap.collect(2)
	if msgs[0].Header.TraceType != meter.EvSend || msgs[1].Header.TraceType != meter.EvSend {
		t.Fatalf("events = %v, want only sends", types(msgs))
	}
}

func TestMeterSocketHiddenFromProcess(t *testing.T) {
	// Transparency: "the descriptor of the socket through which meter
	// messages are sent to the filter is not stored in the process's
	// descriptor table and is, therefore, not directly accessible by
	// the process" (section 3.2). "The meter does not reduce the
	// number of open files and sockets available to the metered
	// process" (section 4.1).
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	before := target.NumFDs()
	newMeterTap(t, green, target, meter.MAll, testUID)
	if got := target.NumFDs(); got != before {
		t.Fatalf("metering changed descriptor count %d -> %d", before, got)
	}
	id := target.MeterSocketID()
	if id == 0 {
		t.Fatal("no meter socket recorded")
	}
	if target.HasSocketFD(id) {
		t.Fatal("meter socket is visible in the process descriptor table")
	}
}

func TestSetmeterPermissionDenied(t *testing.T) {
	// "A user can request metering only for processes belonging to
	// that user. Specifying any other process results in an error
	// [EPERM]." (Appendix C.)
	_, red, _ := newTestCluster(t)
	red.AddAccount(200, "other")
	target := detached(t, red)
	other, err := red.SpawnDetached(200, "other")
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Setmeter(target.PID(), int(meter.MAll), NoChange); !errors.Is(err, ErrPerm) {
		t.Fatalf("err = %v, want ErrPerm", err)
	}
}

func TestSetmeterSuperuserMayMeterAnyone(t *testing.T) {
	_, red, _ := newTestCluster(t)
	target := detached(t, red)
	root, err := red.SpawnDetached(0, "root")
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Setmeter(target.PID(), int(meter.MAll), NoChange); err != nil {
		t.Fatal(err)
	}
	if target.MeterFlags() != meter.MAll {
		t.Fatalf("flags = %b", target.MeterFlags())
	}
}

func TestSetmeterUnknownPid(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	if err := p.Setmeter(99999, int(meter.MAll), NoChange); !errors.Is(err, ErrSearch) {
		t.Fatalf("err = %v, want ESRCH", err)
	}
}

func TestSetmeterSelf(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	if err := p.Setmeter(Self, int(meter.MSend), NoChange); err != nil {
		t.Fatal(err)
	}
	if p.MeterFlags() != meter.MSend {
		t.Fatalf("flags = %b", p.MeterFlags())
	}
}

func TestSetmeterNoChangeKeepsFlags(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	if err := p.Setmeter(Self, int(meter.MSend|meter.MFork), NoChange); err != nil {
		t.Fatal(err)
	}
	if err := p.Setmeter(Self, NoChange, NoChange); err != nil {
		t.Fatal(err)
	}
	if p.MeterFlags() != meter.MSend|meter.MFork {
		t.Fatalf("NO_CHANGE altered flags: %b", p.MeterFlags())
	}
	if err := p.Setmeter(Self, FlagsNone, NoChange); err != nil {
		t.Fatal(err)
	}
	if p.MeterFlags() != 0 {
		t.Fatalf("NONE did not clear flags: %b", p.MeterFlags())
	}
}

func TestSetmeterRejectsNonStreamSocket(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	dfd, err := p.Socket(meter.AFInet, SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Setmeter(Self, int(meter.MAll), dfd); !errors.Is(err, ErrInval) {
		t.Fatalf("datagram meter socket: err = %v, want ErrInval", err)
	}
	ufd, _, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Setmeter(Self, int(meter.MAll), ufd); !errors.Is(err, ErrInval) {
		t.Fatalf("non-Internet meter socket: err = %v, want ErrInval", err)
	}
}

func TestSetmeterUnconnectedSocketLosesMessages(t *testing.T) {
	// "The socket must be connected to be used, though this is not
	// checked. Meter messages are lost if they are sent on an
	// unconnected socket."
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd, err := p.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Setmeter(Self, int(meter.MAll|meter.MImmediate), fd); err != nil {
		t.Fatal(err)
	}
	// Generating events must not error or block even though nothing
	// can be delivered.
	if _, _, err := p.SocketPair(); err != nil {
		t.Fatal(err)
	}
}

func TestSetmeterNoneClosesConnection(t *testing.T) {
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	newMeterTap(t, green, target, meter.MAll, testUID)
	if target.MeterSocketID() == 0 {
		t.Fatal("not metered")
	}
	root, err := red.SpawnDetached(0, "root")
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Setmeter(target.PID(), NoChange, SockNone); err != nil {
		t.Fatal(err)
	}
	if target.MeterSocketID() != 0 {
		t.Fatal("meter connection not closed by NONE")
	}
}

func TestForkInheritsMetering(t *testing.T) {
	// "Child processes inherit metering flags and meter connections
	// from their parent" (Appendix C); the fork event carries the new
	// pid.
	_, red, green := newTestCluster(t)
	parent, err := red.Spawn(SpawnSpec{UID: testUID, Name: "parent", Suspended: true, Program: func(p *Process) int {
		childDone := make(chan struct{})
		_, err := p.Fork(func(c *Process) int {
			defer close(childDone)
			f1, f2, err := c.SocketPair()
			if err != nil {
				return 1
			}
			if _, err := c.Send(f1, []byte("child msg")); err != nil {
				return 1
			}
			if _, err := c.Recv(f2, 100); err != nil {
				return 1
			}
			return 0
		})
		if err != nil {
			return 1
		}
		<-childDone
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	tap := newMeterTap(t, green, parent, meter.MFork|meter.MSend|meter.MImmediate, testUID)
	if err := red.Signal(parent.PID(), SIGCONT); err != nil {
		t.Fatal(err)
	}
	msgs := tap.collect(2)
	fork := msgs[0].Body.(*meter.Fork)
	if fork.PID != uint32(parent.PID()) {
		t.Fatalf("fork parent pid = %d, want %d", fork.PID, parent.PID())
	}
	send := msgs[1].Body.(*meter.Send)
	if send.PID != fork.NewPID {
		t.Fatalf("send pid = %d, want child %d (metering not inherited)", send.PID, fork.NewPID)
	}
	if status, _ := parent.WaitExit(); status != 0 {
		t.Fatalf("parent exit status %d", status)
	}
}

func TestBufferedMessagesFlushedAtTermination(t *testing.T) {
	// "As part of process termination, any unsent messages are
	// forwarded to the filter" (section 3.2).
	_, red, green := newTestCluster(t)
	target, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Suspended: true, Program: func(p *Process) int {
		f1, _, err := p.SocketPair()
		if err != nil {
			return 1
		}
		// Two sends: far below the buffering threshold, so nothing is
		// delivered until termination.
		if _, err := p.Send(f1, []byte("a")); err != nil {
			return 1
		}
		if _, err := p.Send(f1, []byte("b")); err != nil {
			return 1
		}
		return 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	tap := newMeterTap(t, green, target, meter.MSend, testUID) // buffered (no immediate)
	if err := red.Signal(target.PID(), SIGCONT); err != nil {
		t.Fatal(err)
	}
	if status, _ := target.WaitExit(); status != 0 {
		t.Fatalf("exit status %d", status)
	}
	msgs := tap.collect(2)
	if msgs[0].Header.TraceType != meter.EvSend || msgs[1].Header.TraceType != meter.EvSend {
		t.Fatalf("events = %v", types(msgs))
	}
}

func TestImmediateVsBufferedDeliveryTiming(t *testing.T) {
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	tap := newMeterTap(t, green, target, meter.MSend, testUID) // buffered
	f1, _, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.Send(f1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// One buffered send: the filter connection must still be silent.
	cs, err := tap.filter.sockFD(tap.connFD)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if cs.Readable() {
		t.Fatal("buffered meter message delivered immediately")
	}
	// Enough sends to cross the default threshold must flush.
	for i := 0; i < meter.DefaultBufferCount; i++ {
		if _, err := target.Send(f1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	tap.collect(meter.DefaultBufferCount)
}

func TestHeaderTimesAdvance(t *testing.T) {
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	tap := newMeterTap(t, green, target, meter.MSend|meter.MImmediate, testUID)
	f1, _, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	target.Compute(50 * time.Millisecond)
	if _, err := target.Send(f1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	target.Compute(50 * time.Millisecond)
	if _, err := target.Send(f1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	msgs := tap.collect(2)
	h1, h2 := msgs[0].Header, msgs[1].Header
	if h2.CPUTime <= h1.CPUTime {
		t.Fatalf("cpuTime did not advance: %d then %d", h1.CPUTime, h2.CPUTime)
	}
	if h2.ProcTime <= h1.ProcTime {
		t.Fatalf("procTime did not advance: %d then %d", h1.ProcTime, h2.ProcTime)
	}
	if h2.ProcTime%10 != 0 {
		t.Fatalf("procTime %d not at 10ms granularity", h2.ProcTime)
	}
}
