package kernel

import (
	"sync"
	"time"

	"dpm/internal/meter"
)

// Socket types, with the 4.2BSD values.
const (
	SockStream = 1
	SockDgram  = 2
)

// dgram is one queued datagram on a receiving socket.
type dgram struct {
	data []byte
	src  meter.Name
}

// Socket is one 4.2BSD socket: an endpoint of communication that,
// once created, exists independent of the creating process and
// disappears when no longer referenced (paper section 3.1). Sockets
// are identified in meter messages by their ID, the stand-in for
// "their address within the system descriptor table", unique within a
// machine (section 4.1).
type Socket struct {
	id      uint32
	machine *Machine
	domain  uint16 // meter.AFUnix or meter.AFInet (meter.AFPair for socketpair ends)
	typ     int    // SockStream or SockDgram

	mu      sync.Mutex
	waiters waitList // blocked readers/acceptors, woken on state change
	refs    int      // descriptor references across all processes
	closed  bool

	// buffered is the byte count this socket has charged against its
	// machine's memory accounting (queued stream bytes plus queued
	// datagram payloads); released as data is consumed or the socket
	// dies.
	buffered int

	// Naming.
	bound     bool
	boundName meter.Name
	port      uint16 // inet binding
	path      string // unix binding

	// Stream listener state.
	listening    bool
	backlog      int
	pendingConns []*Socket

	// Stream connection state.
	connected  bool
	peer       *Socket
	peerName   meter.Name
	recvBuf    []byte
	peerClosed bool

	// Datagram state.
	dgrams      []dgram
	defaultDest meter.Name // set by connect() on a datagram socket
}

// broadcastLocked wakes every waiter on the socket. Callers hold s.mu.
func (s *Socket) broadcastLocked() {
	s.waiters.wakeAll()
}

// chargeLocked accounts n queued bytes against the machine's memory
// budget. Callers hold s.mu.
func (s *Socket) chargeLocked(n int) {
	s.buffered += n
	s.machine.mem.charge(int64(n))
}

// releaseLocked returns n queued bytes to the budget as data is
// consumed. Callers hold s.mu.
func (s *Socket) releaseLocked(n int) {
	s.buffered -= n
	s.machine.mem.buffered.Add(int64(-n))
}

// ID returns the socket's machine-unique identifier.
func (s *Socket) ID() uint32 { return s.id }

// Type returns SockStream or SockDgram.
func (s *Socket) Type() int { return s.typ }

// Domain returns the socket's address family.
func (s *Socket) Domain() uint16 { return s.domain }

// BoundName returns the name bound to the socket, zero if unbound.
func (s *Socket) BoundName() meter.Name {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boundName
}

// PeerName returns the name of the connected peer, zero if none.
func (s *Socket) PeerName() meter.Name {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerName
}

// Connected reports whether a stream socket is currently connected.
func (s *Socket) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connected && !s.peerClosed
}

// Dead reports that the socket can never carry data again: it is
// closed, or it was connected and its peer has gone. A socket that was
// simply never connected is not dead. The metering machinery uses this
// to tell a dead filter from a merely unused meter socket.
func (s *Socket) Dead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || (s.connected && s.peerClosed)
}

// ref adds a descriptor reference.
func (s *Socket) ref() {
	s.mu.Lock()
	s.refs++
	s.mu.Unlock()
}

// unref drops a descriptor reference; the last drop destroys the
// socket ("A socket disappears when it is no longer referenced by any
// process", section 3.1).
func (s *Socket) unref() {
	s.mu.Lock()
	s.refs--
	if s.refs > 0 {
		s.mu.Unlock()
		return
	}
	s.closed = true
	pending := s.pendingConns
	s.pendingConns = nil
	peer := s.peer
	if s.buffered > 0 {
		s.releaseLocked(s.buffered)
	}
	s.broadcastLocked()
	s.mu.Unlock()
	s.machine.mem.sockets.Add(-1)

	s.machine.unbindSocket(s)
	// Reject connections that were queued but never accepted: drop the
	// queue's reference so each conn closes and its *initiator* learns
	// the peer is gone. (Marking the conn itself peerClosed would tell
	// nobody — no process holds it, and the initiator would keep
	// sending into a socket that can never be accepted.)
	for _, c := range pending {
		c.unref()
	}
	if peer != nil {
		peer.notifyPeerClosed()
	}
}

// notifyPeerClosed marks the remote end gone and wakes readers, which
// then drain the buffer and see EOF.
func (s *Socket) notifyPeerClosed() {
	s.mu.Lock()
	s.peerClosed = true
	s.broadcastLocked()
	s.mu.Unlock()
}

// sever kills an established stream connection in both directions, as
// a network partition resets a TCP connection: readers on either end
// drain what was already delivered and then see EOF; writers see EPIPE.
// Severing is permanent for the connection — healing the partition does
// not resurrect it, the endpoints must reconnect.
func (s *Socket) sever() {
	s.mu.Lock()
	peer := s.peer
	connected := s.connected
	s.mu.Unlock()
	if !connected {
		return
	}
	s.notifyPeerClosed()
	if peer != nil {
		peer.notifyPeerClosed()
	}
}

// peerMachine returns the machine of the connected peer, nil if none.
func (s *Socket) peerMachine() *Machine {
	s.mu.Lock()
	peer := s.peer
	s.mu.Unlock()
	if peer == nil {
		return nil
	}
	return peer.machine
}

// readyLocked reports whether a read-style operation would not block:
// data queued, a pending connection to accept, or EOF visible.
func (s *Socket) readyLocked() bool {
	if s.closed {
		return true
	}
	if s.listening {
		return len(s.pendingConns) > 0
	}
	if s.typ == SockDgram {
		return len(s.dgrams) > 0
	}
	return len(s.recvBuf) > 0 || s.peerClosed
}

// Readable reports whether a read would not block; the select() system
// call is built on it.
func (s *Socket) Readable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readyLocked()
}

// unpark removes a waiter enqueued by a blocking system call and
// returns the node to the pool.
func (s *Socket) unpark(w *waiter) {
	s.mu.Lock()
	s.waiters.remove(w)
	s.mu.Unlock()
	putWaiter(w)
}

// deliverStream appends stream bytes arriving from the peer.
// sentAt is the sender's machine-clock reading; the receiving
// machine's clock is raised to it, so time observably passes on a
// machine whose processes are blocked waiting (clock gossip — the
// loose synchronization message traffic provides on a real network).
func (s *Socket) deliverStream(data []byte, sentAt time.Duration) {
	s.machine.clock.AdvanceTo(sentAt)
	s.mu.Lock()
	if !s.closed {
		s.recvBuf = append(s.recvBuf, data...)
		s.chargeLocked(len(data))
		s.broadcastLocked()
	}
	s.mu.Unlock()
}

// deliverDgram enqueues one datagram, with the same clock gossip as
// deliverStream. The queue is bounded by the cluster's per-socket
// datagram budget: a receiver that never drains cannot grow the
// machine's footprint without limit, it sheds datagrams instead —
// legal for the unreliable transport and counted in mem.shed_dgrams.
func (s *Socket) deliverDgram(data []byte, src meter.Name, sentAt time.Duration) {
	s.machine.clock.AdvanceTo(sentAt)
	budget := s.machine.cluster.dgramQueueCap()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if budget > 0 && len(s.dgrams) >= budget {
		s.mu.Unlock()
		s.machine.mem.shedDgrams.Inc()
		return
	}
	s.dgrams = append(s.dgrams, dgram{data: append([]byte(nil), data...), src: src})
	s.chargeLocked(len(data))
	s.broadcastLocked()
	s.mu.Unlock()
}

// kernelSend writes data to the socket's stream peer from kernel
// context, bypassing any descriptor table, and reports whether the
// data was delivered. The metering machinery uses it for the meter
// connection; per the man page, "Meter messages are lost if they are
// sent on an unconnected socket" — the caller counts the loss, the
// sending process never sees an error.
func (s *Socket) kernelSend(data []byte) bool {
	s.mu.Lock()
	peer := s.peer
	ok := s.connected && !s.peerClosed && !s.closed
	s.mu.Unlock()
	if !ok || peer == nil {
		return false
	}
	peer.deliverStream(data, s.machine.clock.Now())
	return true
}
