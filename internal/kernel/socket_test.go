package kernel

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"dpm/internal/meter"
	"dpm/internal/netsim"
)

// withAllLoss configures a network that drops every datagram.
func withAllLoss() []netsim.Option {
	return []netsim.Option{netsim.WithLoss(1), netsim.WithSeed(1)}
}

const testUID = 100

// newTestCluster builds a two-machine cluster (red, green) on one
// network with accounts for testUID, and registers cleanup.
func newTestCluster(t *testing.T) (*Cluster, *Machine, *Machine) {
	t.Helper()
	c := NewCluster(Config{})
	c.AddNetwork("ether0")
	red, err := c.AddMachine("red", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	green, err := c.AddMachine("green", nil, "ether0")
	if err != nil {
		t.Fatal(err)
	}
	red.AddAccount(testUID, "user")
	green.AddAccount(testUID, "user")
	t.Cleanup(c.Shutdown)
	return c, red, green
}

// detached returns a detached process for driving syscalls from the
// test goroutine.
func detached(t *testing.T, m *Machine) *Process {
	t.Helper()
	p, err := m.SpawnDetached(testUID, "test-driver")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// listenStream makes a bound, listening stream socket and returns its
// fd and name.
func listenStream(t *testing.T, p *Process, port uint16) (int, meter.Name) {
	t.Helper()
	fd, err := p.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.BindPort(fd, port); err != nil {
		t.Fatal(err)
	}
	if err := p.Listen(fd, 5); err != nil {
		t.Fatal(err)
	}
	return fd, p.sockMustName(t, fd)
}

func (p *Process) sockMustName(t *testing.T, fd int) meter.Name {
	t.Helper()
	s, err := p.sockFD(fd)
	if err != nil {
		t.Fatal(err)
	}
	return s.BoundName()
}

func TestStreamConnectAcceptTransfer(t *testing.T) {
	_, red, green := newTestCluster(t)
	server := detached(t, green)
	lfd, lname := listenStream(t, server, 3000)

	client := detached(t, red)
	cfd, err := client.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	afd, peer, err := server.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	if peer.IsZero() {
		t.Fatal("accept returned zero peer name (client should be implicitly bound)")
	}
	if _, err := client.Send(cfd, []byte("hello, green")); err != nil {
		t.Fatal(err)
	}
	data, err := server.Recv(afd, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello, green" {
		t.Fatalf("received %q", data)
	}
	// The connection is a pair of byte streams in opposite directions.
	if _, err := server.Send(afd, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	data, err = client.Recv(cfd, 100)
	if err != nil || string(data) != "ack" {
		t.Fatalf("reply = %q, %v", data, err)
	}
}

func TestStreamConcatenatesMessages(t *testing.T) {
	// Section 3.1: "Stream communication concatenates messages into a
	// single, reliable, ordered byte stream ... As many bytes as
	// possible are delivered for each read."
	_, red, green := newTestCluster(t)
	server := detached(t, green)
	lfd, lname := listenStream(t, server, 3000)
	client := detached(t, red)
	cfd, _ := client.Socket(meter.AFInet, SockStream)
	if err := client.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	afd, _, err := server.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"ab", "cd", "ef"} {
		if _, err := client.Send(cfd, []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := server.Recv(afd, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abcdef" {
		t.Fatalf("stream read = %q, want concatenation abcdef", data)
	}
}

func TestStreamPartialRead(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	lfd, lname := listenStream(t, p, 3000)
	cfd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	afd, _, _ := p.Accept(lfd)
	if _, err := p.Send(cfd, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	d1, _ := p.Recv(afd, 2)
	d2, _ := p.Recv(afd, 100)
	if string(d1) != "ab" || string(d2) != "cdef" {
		t.Fatalf("partial reads = %q, %q", d1, d2)
	}
}

func TestStreamEOFAfterPeerClose(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	lfd, lname := listenStream(t, p, 3000)
	cfd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	afd, _, _ := p.Accept(lfd)
	if _, err := p.Send(cfd, []byte("last")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(cfd); err != nil {
		t.Fatal(err)
	}
	// Buffered data is still delivered, then EOF.
	data, err := p.Recv(afd, 100)
	if err != nil || string(data) != "last" {
		t.Fatalf("drain = %q, %v", data, err)
	}
	if _, err := p.Recv(afd, 100); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestSendOnClosedPeerIsEPIPE(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	lfd, lname := listenStream(t, p, 3000)
	cfd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	afd, _, _ := p.Accept(lfd)
	if err := p.Close(afd); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(cfd, []byte("x")); !errors.Is(err, ErrPipe) {
		t.Fatalf("err = %v, want ErrPipe", err)
	}
}

func TestConnectRefusedWithoutListener(t *testing.T) {
	_, red, green := newTestCluster(t)
	p := detached(t, red)
	cfd, _ := p.Socket(meter.AFInet, SockStream)
	name := meter.InetName(green.PrimaryHostID(), 4444)
	if err := p.Connect(cfd, name); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestConnectUnknownHost(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	cfd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.Connect(cfd, meter.InetName(9999, 1)); !errors.Is(err, ErrHostUnreach) {
		t.Fatalf("err = %v, want ErrHostUnreach", err)
	}
}

func TestBacklogLimit(t *testing.T) {
	_, red, green := newTestCluster(t)
	server := detached(t, green)
	lfd, err := server.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.BindPort(lfd, 3000); err != nil {
		t.Fatal(err)
	}
	if err := server.Listen(lfd, 2); err != nil {
		t.Fatal(err)
	}
	lname := server.sockMustName(t, lfd)
	client := detached(t, red)
	for i := 0; i < 2; i++ {
		fd, _ := client.Socket(meter.AFInet, SockStream)
		if err := client.Connect(fd, lname); err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
	}
	fd, _ := client.Socket(meter.AFInet, SockStream)
	if err := client.Connect(fd, lname); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused on full backlog", err)
	}
}

func TestDoubleConnectIsEISCONN(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	_, lname := listenStream(t, p, 3000)
	cfd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.Connect(cfd, lname); err != nil {
		t.Fatal(err)
	}
	if err := p.Connect(cfd, lname); !errors.Is(err, ErrIsConn) {
		t.Fatalf("err = %v, want ErrIsConn", err)
	}
}

func TestBindCollision(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd1, _ := p.Socket(meter.AFInet, SockStream)
	fd2, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.BindPort(fd1, 3000); err != nil {
		t.Fatal(err)
	}
	if err := p.BindPort(fd2, 3000); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestStreamAndDgramPortsIndependent(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	sfd, _ := p.Socket(meter.AFInet, SockStream)
	dfd, _ := p.Socket(meter.AFInet, SockDgram)
	if err := p.BindPort(sfd, 3000); err != nil {
		t.Fatal(err)
	}
	if err := p.BindPort(dfd, 3000); err != nil {
		t.Fatalf("dgram bind on same port: %v", err)
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	_, red, green := newTestCluster(t)
	recvr := detached(t, green)
	rfd, _ := recvr.Socket(meter.AFInet, SockDgram)
	if err := recvr.BindPort(rfd, 5000); err != nil {
		t.Fatal(err)
	}
	rname := recvr.sockMustName(t, rfd)

	sender := detached(t, red)
	sfd, _ := sender.Socket(meter.AFInet, SockDgram)
	if _, err := sender.SendTo(sfd, []byte("dgram!"), rname); err != nil {
		t.Fatal(err)
	}
	data, src, err := recvr.RecvFrom(rfd, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "dgram!" {
		t.Fatalf("data = %q", data)
	}
	if src.IsZero() || src.Family() != meter.AFInet {
		t.Fatalf("source name = %v, want sender's bound inet name", src)
	}
}

func TestDatagramBoundariesPreserved(t *testing.T) {
	// Section 3.1: "A datagram is read as a complete message. Each new
	// read will obtain bytes from a new message."
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	rfd, _ := p.Socket(meter.AFInet, SockDgram)
	if err := p.BindPort(rfd, 5000); err != nil {
		t.Fatal(err)
	}
	rname := p.sockMustName(t, rfd)
	sfd, _ := p.Socket(meter.AFInet, SockDgram)
	for _, m := range []string{"one", "two"} {
		if _, err := p.SendTo(sfd, []byte(m), rname); err != nil {
			t.Fatal(err)
		}
	}
	d1, _ := p.Recv(rfd, 100)
	d2, _ := p.Recv(rfd, 100)
	if string(d1) != "one" || string(d2) != "two" {
		t.Fatalf("reads = %q, %q", d1, d2)
	}
}

func TestDatagramTruncation(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	rfd, _ := p.Socket(meter.AFInet, SockDgram)
	if err := p.BindPort(rfd, 5000); err != nil {
		t.Fatal(err)
	}
	rname := p.sockMustName(t, rfd)
	sfd, _ := p.Socket(meter.AFInet, SockDgram)
	if _, err := p.SendTo(sfd, []byte("abcdef"), rname); err != nil {
		t.Fatal(err)
	}
	d, _ := p.Recv(rfd, 3)
	if string(d) != "abc" {
		t.Fatalf("truncated read = %q", d)
	}
	// The rest of the datagram is gone; a next send is a new message.
	if _, err := p.SendTo(sfd, []byte("xyz"), rname); err != nil {
		t.Fatal(err)
	}
	d, _ = p.Recv(rfd, 100)
	if string(d) != "xyz" {
		t.Fatalf("next read = %q, want xyz (remainder discarded)", d)
	}
}

func TestConnectedDatagramSend(t *testing.T) {
	// "It is also possible for the sender to predefine the recipient
	// by calling connect(), ... and then calling send()" (section 3.1).
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	rfd, _ := p.Socket(meter.AFInet, SockDgram)
	if err := p.BindPort(rfd, 5000); err != nil {
		t.Fatal(err)
	}
	rname := p.sockMustName(t, rfd)
	sfd, _ := p.Socket(meter.AFInet, SockDgram)
	if err := p.Connect(sfd, rname); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(sfd, []byte("via connect")); err != nil {
		t.Fatal(err)
	}
	d, _ := p.Recv(rfd, 100)
	if string(d) != "via connect" {
		t.Fatalf("data = %q", d)
	}
}

func TestUnconnectedDgramSendFails(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	sfd, _ := p.Socket(meter.AFInet, SockDgram)
	if _, err := p.Send(sfd, []byte("x")); !errors.Is(err, ErrNotConn) {
		t.Fatalf("err = %v, want ErrNotConn", err)
	}
}

func TestUnixDomainStream(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	lfd, _ := p.Socket(meter.AFUnix, SockStream)
	if err := p.Bind(lfd, meter.UnixName("/tmp/srv")); err != nil {
		t.Fatal(err)
	}
	if err := p.Listen(lfd, 1); err != nil {
		t.Fatal(err)
	}
	cfd, _ := p.Socket(meter.AFUnix, SockStream)
	if err := p.Connect(cfd, meter.UnixName("/tmp/srv")); err != nil {
		t.Fatal(err)
	}
	afd, _, err := p.Accept(lfd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(cfd, []byte("unix")); err != nil {
		t.Fatal(err)
	}
	d, _ := p.Recv(afd, 10)
	if string(d) != "unix" {
		t.Fatalf("data = %q", d)
	}
}

func TestUnixDomainIsLocalOnly(t *testing.T) {
	_, red, green := newTestCluster(t)
	server := detached(t, green)
	lfd, _ := server.Socket(meter.AFUnix, SockStream)
	if err := server.Bind(lfd, meter.UnixName("/tmp/srv")); err != nil {
		t.Fatal(err)
	}
	if err := server.Listen(lfd, 1); err != nil {
		t.Fatal(err)
	}
	client := detached(t, red)
	cfd, _ := client.Socket(meter.AFUnix, SockStream)
	// The same path on a different machine names nothing.
	if err := client.Connect(cfd, meter.UnixName("/tmp/srv")); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestSocketPair(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd1, fd2, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(fd1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	d, _ := p.Recv(fd2, 10)
	if string(d) != "ping" {
		t.Fatalf("data = %q", d)
	}
	if _, err := p.Send(fd2, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	d, _ = p.Recv(fd1, 10)
	if string(d) != "pong" {
		t.Fatalf("data = %q", d)
	}
	// Each end carries an internally generated unique name.
	s1, _ := p.sockFD(fd1)
	s2, _ := p.sockFD(fd2)
	if s1.BoundName() == s2.BoundName() || s1.BoundName().Family() != meter.AFPair {
		t.Fatalf("pair names = %v, %v", s1.BoundName(), s2.BoundName())
	}
}

func TestDupSharesSocket(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd1, fd2, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	dup, err := p.Dup(fd1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(dup, []byte("via dup")); err != nil {
		t.Fatal(err)
	}
	d, _ := p.Recv(fd2, 10)
	if string(d) != "via dup" {
		t.Fatalf("data = %q", d)
	}
	// Closing the original keeps the socket alive through the dup.
	if err := p.Close(fd1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(dup, []byte("!")); err != nil {
		t.Fatal(err)
	}
}

func TestCloseReleasesBinding(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.BindPort(fd, 3000); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	fd2, _ := p.Socket(meter.AFInet, SockStream)
	if err := p.BindPort(fd2, 3000); err != nil {
		t.Fatalf("port not released by close: %v", err)
	}
}

func TestBadFDErrors(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	if _, err := p.Send(42, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatalf("Send err = %v", err)
	}
	if _, err := p.Recv(42, 10); !errors.Is(err, ErrBadFD) {
		t.Fatalf("Recv err = %v", err)
	}
	if err := p.Close(42); !errors.Is(err, ErrBadFD) {
		t.Fatalf("Close err = %v", err)
	}
	if err := p.Listen(0, 1); !errors.Is(err, ErrNotSocket) {
		t.Fatalf("Listen on stdio err = %v", err)
	}
}

func TestSelectReadiness(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd1, fd2, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	fd3, fd4, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(20 * time.Millisecond)
		// Wake the selector through the second pair's far end.
		_, _ = p.Send(fd4, []byte("wake"))
	}()
	ready, err := p.Select([]int{fd1, fd3})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if len(ready) != 1 || ready[0] != fd3 {
		t.Fatalf("ready = %v, want [fd3=%d]", ready, fd3)
	}
	_ = fd2
}

func TestRemoteStreamViaResolve(t *testing.T) {
	// The section 3.5.4 rule: exchange (hostname, port), reconstruct
	// the address locally.
	c, red, green := newTestCluster(t)
	server := detached(t, green)
	lfd, err := server.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.BindPort(lfd, 7000); err != nil {
		t.Fatal(err)
	}
	if err := server.Listen(lfd, 1); err != nil {
		t.Fatal(err)
	}

	client := detached(t, red)
	host, _, err := c.ResolveFrom(red, "green")
	if err != nil {
		t.Fatal(err)
	}
	cfd, _ := client.Socket(meter.AFInet, SockStream)
	if err := client.Connect(cfd, meter.InetName(host, 7000)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := server.Accept(lfd); err != nil {
		t.Fatal(err)
	}
}

func TestMultiHomedResolution(t *testing.T) {
	// A host on two networks has two addresses; each peer must
	// construct the one on its own shared network.
	c := NewCluster(Config{})
	c.AddNetwork("etherA")
	c.AddNetwork("etherB")
	gw, err := c.AddMachine("gateway", nil, "etherA", "etherB")
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.AddMachine("hostA", nil, "etherA")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddMachine("hostB", nil, "etherB")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)

	fromA, _, err := c.ResolveFrom(a, "gateway")
	if err != nil {
		t.Fatal(err)
	}
	fromB, _, err := c.ResolveFrom(b, "gateway")
	if err != nil {
		t.Fatal(err)
	}
	if fromA == fromB {
		t.Fatalf("both peers resolved gateway to %d; multi-homing lost", fromA)
	}
	if got := c.machineByHost(fromA); got != gw {
		t.Fatal("hostA's resolution does not reach the gateway")
	}
	if got := c.machineByHost(fromB); got != gw {
		t.Fatal("hostB's resolution does not reach the gateway")
	}
}

func TestCrossMachineDgramThroughFabric(t *testing.T) {
	// Datagrams between machines traverse netsim and can be lost.
	c := NewCluster(Config{})
	// Loss rate 1: everything between machines is dropped.
	c.AddNetwork("lossy", withAllLoss()...)
	red, _ := c.AddMachine("red", nil, "lossy")
	green, _ := c.AddMachine("green", nil, "lossy")
	red.AddAccount(testUID, "u")
	green.AddAccount(testUID, "u")
	t.Cleanup(c.Shutdown)

	recvr := detached(t, green)
	rfd, _ := recvr.Socket(meter.AFInet, SockDgram)
	if err := recvr.BindPort(rfd, 5000); err != nil {
		t.Fatal(err)
	}
	rname := recvr.sockMustName(t, rfd)
	sender := detached(t, red)
	sfd, _ := sender.Socket(meter.AFInet, SockDgram)
	if _, err := sender.SendTo(sfd, []byte("doomed"), rname); err != nil {
		t.Fatal(err) // loss is silent to the sender
	}
	rs, _ := recvr.sockFD(rfd)
	if rs.Readable() {
		t.Fatal("datagram survived a 100%-loss network")
	}

	// But a local datagram on the same machine is reliable even on a
	// lossy cluster (section 3.5.2).
	lfd, _ := recvr.Socket(meter.AFInet, SockDgram)
	if _, err := recvr.SendTo(lfd, []byte("local"), rname); err != nil {
		t.Fatal(err)
	}
	d, _ := recvr.Recv(rfd, 100)
	if !bytes.Equal(d, []byte("local")) {
		t.Fatalf("local dgram = %q", d)
	}
}
