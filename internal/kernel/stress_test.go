package kernel

import (
	"sync"
	"testing"

	"dpm/internal/meter"
)

// TestAcceptStorm hammers one listener with concurrent connectors from
// several machines while a single server accepts everything — the
// contended path of the connection machinery under the race detector.
func TestAcceptStorm(t *testing.T) {
	c := NewCluster(Config{})
	c.AddNetwork("ether0")
	machines := make([]*Machine, 0, 4)
	for _, n := range []string{"m1", "m2", "m3", "m4"} {
		m, err := c.AddMachine(n, nil, "ether0")
		if err != nil {
			t.Fatal(err)
		}
		m.AddAccount(testUID, "u")
		machines = append(machines, m)
	}
	t.Cleanup(c.Shutdown)

	server := detached(t, machines[0])
	lfd, err := server.Socket(meter.AFInet, SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.BindPort(lfd, 4000); err != nil {
		t.Fatal(err)
	}
	const perMachine = 8
	const clients = 3 * perMachine
	if err := server.Listen(lfd, clients); err != nil {
		t.Fatal(err)
	}
	lname, err := server.SocketName(lfd)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for mi := 1; mi <= 3; mi++ {
		for i := 0; i < perMachine; i++ {
			p, err := machines[mi].Spawn(SpawnSpec{UID: testUID, Name: "client", Program: func(p *Process) int {
				fd, err := p.Socket(meter.AFInet, SockStream)
				if err != nil {
					return 1
				}
				// The backlog is sized for everyone; retry transient
				// refusals anyway (accept may lag).
				for {
					if err := p.Connect(fd, lname); err == nil {
						break
					}
				}
				if _, err := p.Send(fd, []byte("hi")); err != nil {
					return 1
				}
				data, err := p.Recv(fd, 10)
				if err != nil || string(data) != "ok" {
					return 1
				}
				return 0
			}})
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if status, _ := p.WaitExit(); status != 0 {
					errCh <- err
				}
			}()
		}
	}

	for got := 0; got < clients; got++ {
		afd, _, err := server.Accept(lfd)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := server.Recv(afd, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := server.Send(afd, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if err := server.Close(afd); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errCh)
	for range errCh {
		t.Fatal("a client failed")
	}
}

// TestDatagramStormManySenders drives one receiver from many
// concurrent senders on many machines; every datagram must arrive
// (the fabric is loss-free by default).
func TestDatagramStormManySenders(t *testing.T) {
	c := NewCluster(Config{})
	c.AddNetwork("ether0")
	var machines []*Machine
	for _, n := range []string{"m1", "m2", "m3"} {
		m, err := c.AddMachine(n, nil, "ether0")
		if err != nil {
			t.Fatal(err)
		}
		m.AddAccount(testUID, "u")
		machines = append(machines, m)
	}
	t.Cleanup(c.Shutdown)

	recvr := detached(t, machines[0])
	rfd, err := recvr.Socket(meter.AFInet, SockDgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := recvr.BindPort(rfd, 5000); err != nil {
		t.Fatal(err)
	}
	rname := recvr.sockMustName(t, rfd)

	const senders = 12
	const perSender = 25
	var procs []*Process
	for i := 0; i < senders; i++ {
		p, err := machines[i%3].Spawn(SpawnSpec{UID: testUID, Name: "sender", Program: func(p *Process) int {
			fd, err := p.Socket(meter.AFInet, SockDgram)
			if err != nil {
				return 1
			}
			for j := 0; j < perSender; j++ {
				if _, err := p.SendTo(fd, []byte("d"), rname); err != nil {
					return 1
				}
			}
			return 0
		}})
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	total := 0
	for total < senders*perSender {
		if _, err := recvr.Recv(rfd, 10); err != nil {
			t.Fatal(err)
		}
		total++
	}
	for _, p := range procs {
		if status, _ := p.WaitExit(); status != 0 {
			t.Fatal("sender failed")
		}
	}
}

// TestConcurrentMeteringStress meters several processes on one machine
// into one sink while they all communicate, checking the meter stream
// stays decodable under concurrency.
func TestConcurrentMeteringStress(t *testing.T) {
	_, red, green := newTestCluster(t)
	const workers = 6
	var targets []*Process
	for i := 0; i < workers; i++ {
		p, err := red.Spawn(SpawnSpec{UID: testUID, Name: "w", Suspended: true, Program: func(p *Process) int {
			f1, f2, err := p.SocketPair()
			if err != nil {
				return 1
			}
			for j := 0; j < 20; j++ {
				if _, err := p.Send(f1, []byte("x")); err != nil {
					return 1
				}
				if _, err := p.Recv(f2, 4); err != nil {
					return 1
				}
			}
			return 0
		}})
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, p)
	}
	// One tap per process (each has its own meter connection, as the
	// daemon would arrange).
	var taps []*meterTap
	for _, p := range targets {
		taps = append(taps, newMeterTap(t, green, p, meter.MSend|meter.MReceive, testUID))
	}
	for _, p := range targets {
		if err := red.Signal(p.PID(), SIGCONT); err != nil {
			t.Fatal(err)
		}
	}
	for i, tap := range taps {
		msgs := tap.collect(40) // 20 sends + 20 recvs
		for _, m := range msgs {
			if pid := int(m.Body.Fields()[0].Value); pid != targets[i].PID() {
				t.Fatalf("tap %d saw pid %d, want %d (streams crossed)", i, pid, targets[i].PID())
			}
		}
	}
	for _, p := range targets {
		if status, _ := p.WaitExit(); status != 0 {
			t.Fatal("worker failed")
		}
	}
}
