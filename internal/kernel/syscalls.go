package kernel

import (
	"fmt"
	"io"
	"time"

	"dpm/internal/meter"
	"dpm/internal/netsim"
)

// This file implements the system-call interface of the simulated
// 4.2BSD kernel — the exact surface the paper's meter instruments
// (section 3.1 reviews these calls; section 3.2 describes how flagged
// calls generate meter messages).
//
// Every call passes through a checkpoint (signal delivery point) and
// charges the per-syscall cost to the machine clock and the process's
// CPU counter. Calls that correspond to meter events emit their meter
// message after the operation completes, from outside any socket lock.

// enter begins a system call: signal checkpoint plus time accounting.
func (p *Process) enter() error {
	if err := p.checkpoint(); err != nil {
		return err
	}
	p.charge(p.machine.cluster.SyscallCost())
	return nil
}

// nameLen returns the length recorded for a socket name field: 16 for
// a present name, 0 for an absent one ("In this case the length of the
// name is specified as zero", section 4.1).
func nameLen(n meter.Name) uint32 {
	if n.IsZero() {
		return 0
	}
	return meter.NameSize
}

// Socket creates a socket in the given domain (meter.AFInet or
// meter.AFUnix) of the given type (SockStream or SockDgram) and
// returns its descriptor.
func (p *Process) Socket(domain uint16, typ int) (int, error) {
	if err := p.enter(); err != nil {
		return -1, err
	}
	if domain != meter.AFInet && domain != meter.AFUnix {
		return -1, ErrAfNoSupport
	}
	if typ != SockStream && typ != SockDgram {
		return -1, fmt.Errorf("%w: socket type %d", ErrInval, typ)
	}
	s := p.machine.newSocket(domain, typ)
	fd := p.installFD(&fdEntry{sock: s})
	p.emit(&meter.SocketCrt{
		PID: uint32(p.pid), PC: p.nextPC(), Sock: s.id,
		Domain: uint32(domain), SockType: uint32(typ),
	})
	return fd, nil
}

// Bind gives a name to a socket. For Internet names only the port is
// significant (binding is to the local machine); port 0 allocates an
// ephemeral port. For UNIX names the path must be unused on this
// machine.
func (p *Process) Bind(fd int, name meter.Name) error {
	if err := p.enter(); err != nil {
		return err
	}
	s, err := p.sockFD(fd)
	if err != nil {
		return err
	}
	if s.BoundName() != (meter.Name{}) {
		return fmt.Errorf("%w: socket already bound", ErrInval)
	}
	switch name.Family() {
	case meter.AFInet:
		if s.domain != meter.AFInet {
			return ErrAfNoSupport
		}
		_, port := name.Inet()
		_, err = p.machine.bindInet(s, port)
	case meter.AFUnix:
		if s.domain != meter.AFUnix {
			return ErrAfNoSupport
		}
		_, err = p.machine.bindUnix(s, name.Path())
	default:
		return ErrAfNoSupport
	}
	return err
}

// BindPort is a convenience wrapper: bind an Internet socket to a
// port.
func (p *Process) BindPort(fd int, port uint16) error {
	return p.Bind(fd, meter.InetName(0, port))
}

// Listen initializes a stream socket's queue of pending connection
// requests.
func (p *Process) Listen(fd, backlog int) error {
	if err := p.enter(); err != nil {
		return err
	}
	s, err := p.sockFD(fd)
	if err != nil {
		return err
	}
	if s.typ != SockStream {
		return ErrOpNotSupp
	}
	if backlog < 1 {
		backlog = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.bound {
		return fmt.Errorf("%w: listen on unbound socket", ErrInval)
	}
	if s.connected {
		return fmt.Errorf("%w: listen on connected socket", ErrInval)
	}
	s.listening = true
	s.backlog = backlog
	s.broadcastLocked()
	return nil
}

// lookupStreamListener finds the listening socket a connect names.
// UNIX-domain names resolve only on the local machine, Internet names
// anywhere in the cluster.
func (p *Process) lookupStreamListener(name meter.Name) (*Socket, error) {
	switch name.Family() {
	case meter.AFInet:
		host, port := name.Inet()
		target := p.machine.cluster.machineByHost(host)
		if target == nil {
			return nil, fmt.Errorf("%w: host %d", ErrHostUnreach, host)
		}
		if target != p.machine {
			if err := p.machine.cluster.checkStreamPath(p.machine, target, host); err != nil {
				return nil, err
			}
		}
		return target.lookupPort(SockStream, port), nil
	case meter.AFUnix:
		return p.machine.lookupUnix(name.Path()), nil
	default:
		return nil, ErrAfNoSupport
	}
}

// Connect initiates a connection to a named socket (stream), or
// predefines the recipient for subsequent sends (datagram).
func (p *Process) Connect(fd int, name meter.Name) error {
	if err := p.enter(); err != nil {
		return err
	}
	s, err := p.sockFD(fd)
	if err != nil {
		return err
	}
	if s.typ == SockDgram {
		s.mu.Lock()
		s.defaultDest = name
		s.mu.Unlock()
		p.emit(&meter.Connect{
			PID: uint32(p.pid), PC: p.nextPC(), Sock: s.id,
			SockNameLen: nameLen(s.BoundName()), PeerNameLen: nameLen(name),
			SockName: s.BoundName(), PeerName: name,
		})
		return nil
	}

	s.mu.Lock()
	if s.connected {
		s.mu.Unlock()
		return ErrIsConn
	}
	if s.listening {
		s.mu.Unlock()
		return ErrOpNotSupp
	}
	s.mu.Unlock()

	l, err := p.lookupStreamListener(name)
	if err != nil {
		return err
	}
	if l == nil || l.typ != SockStream {
		return fmt.Errorf("%w: %s", ErrConnRefused, name)
	}

	// 4.2BSD implicitly binds an unbound Internet socket on connect so
	// the peer has a name for it.
	if s.domain == meter.AFInet && s.BoundName().IsZero() {
		if _, err := p.machine.bindInet(s, 0); err != nil {
			return err
		}
	}

	// Create the server-side connection socket on the listener's
	// machine (the paper: "the creation of a new connection socket
	// owned by the accepting process and connected to the initiating
	// process's socket", section 3.1).
	srv := l.machine.newSocket(s.domain, SockStream)
	srv.connected = true
	srv.peer = s
	srv.peerName = s.BoundName()
	srv.boundName = l.BoundName()

	l.mu.Lock()
	if !l.listening || l.closed {
		l.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrConnRefused, name)
	}
	if len(l.pendingConns) >= l.backlog {
		l.mu.Unlock()
		return fmt.Errorf("%w: backlog full at %s", ErrConnRefused, name)
	}
	lName := l.boundName
	l.pendingConns = append(l.pendingConns, srv)
	l.broadcastLocked()
	l.mu.Unlock()
	// Connection establishment is communication: gossip the clock to
	// the accepting machine so a blocked accept sees time pass.
	l.machine.clock.AdvanceTo(p.machine.clock.Now())

	s.mu.Lock()
	s.connected = true
	s.peer = srv
	s.peerName = lName
	s.broadcastLocked()
	s.mu.Unlock()

	p.emit(&meter.Connect{
		PID: uint32(p.pid), PC: p.nextPC(), Sock: s.id,
		SockNameLen: nameLen(s.BoundName()), PeerNameLen: nameLen(lName),
		SockName: s.BoundName(), PeerName: lName,
	})
	return nil
}

// await sleeps until a wakeup token arrives on ch (a waiter fired),
// the timeout elapses, or the process is killed. The caller must have
// enqueued a waiter pointing at ch before its last condition check, so
// no state change can fall between check and sleep.
func (p *Process) await(ch <-chan struct{}, timeout <-chan time.Time) error {
	select {
	case <-ch:
		return nil
	case <-timeout:
		return ErrTimedOut
	case <-p.killCh:
		if p.detached {
			return ErrKilled
		}
		panic(killedPanic{})
	}
}

// Accept blocks until a connection request arrives on a listening
// socket, then returns the descriptor of the new connection socket and
// the name of the connecting peer.
func (p *Process) Accept(fd int) (int, meter.Name, error) {
	return p.accept(fd, false)
}

// TryAccept is Accept that never blocks: with no pending connection it
// fails with ErrWouldBlock. Event-driven tasks (Machine.SpawnTask) use
// it to drain a listener and then park instead of holding a worker.
func (p *Process) TryAccept(fd int) (int, meter.Name, error) {
	return p.accept(fd, true)
}

func (p *Process) accept(fd int, nonblock bool) (int, meter.Name, error) {
	if err := p.enter(); err != nil {
		return -1, meter.Name{}, err
	}
	s, err := p.sockFD(fd)
	if err != nil {
		return -1, meter.Name{}, err
	}
	s.mu.Lock()
	listening := s.listening
	s.mu.Unlock()
	if s.typ != SockStream || !listening {
		return -1, meter.Name{}, ErrInval
	}
	for {
		if err := p.checkpoint(); err != nil {
			return -1, meter.Name{}, err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return -1, meter.Name{}, ErrBadFD
		}
		if len(s.pendingConns) > 0 {
			srv := s.pendingConns[0]
			s.pendingConns = s.pendingConns[1:]
			s.mu.Unlock()
			nfd := p.installFD(&fdEntry{sock: srv})
			peer := srv.PeerName()
			p.emit(&meter.Accept{
				PID: uint32(p.pid), PC: p.nextPC(), Sock: s.id, NewSock: srv.id,
				SockNameLen: nameLen(s.BoundName()), PeerNameLen: nameLen(peer),
				SockName: s.BoundName(), PeerName: peer,
			})
			return nfd, peer, nil
		}
		if nonblock {
			s.mu.Unlock()
			return -1, meter.Name{}, ErrWouldBlock
		}
		w := getWaiter()
		s.waiters.push(w)
		s.mu.Unlock()
		err := p.await(w.ch, nil)
		s.unpark(w)
		if err != nil {
			return -1, meter.Name{}, err
		}
	}
}

// Send transmits data on a connected socket. For a stream socket the
// recipient's name is not available to the metering software, so the
// send event carries a zero name (section 4.1); a connected datagram
// socket sends to its predefined recipient.
func (p *Process) Send(fd int, data []byte) (int, error) {
	if err := p.enter(); err != nil {
		return 0, err
	}
	s, err := p.sockFD(fd)
	if err != nil {
		return 0, err
	}
	return p.sendSock(s, data, meter.Name{}, false)
}

// SendTo transmits a datagram to a named socket.
func (p *Process) SendTo(fd int, data []byte, to meter.Name) (int, error) {
	if err := p.enter(); err != nil {
		return 0, err
	}
	s, err := p.sockFD(fd)
	if err != nil {
		return 0, err
	}
	if s.typ != SockDgram {
		return 0, ErrOpNotSupp
	}
	return p.sendSock(s, data, to, true)
}

// sendSock implements the send side of both transports.
func (p *Process) sendSock(s *Socket, data []byte, to meter.Name, explicitDest bool) (int, error) {
	var dest meter.Name
	switch s.typ {
	case SockStream:
		s.mu.Lock()
		peer, connected, peerClosed := s.peer, s.connected, s.peerClosed
		s.mu.Unlock()
		if !connected {
			return 0, ErrNotConn
		}
		if peerClosed {
			return 0, ErrPipe
		}
		peer.deliverStream(data, p.machine.clock.Now())
		// dest stays zero: writes across a connection carry no name.
	case SockDgram:
		dest = to
		if !explicitDest {
			s.mu.Lock()
			dest = s.defaultDest
			s.mu.Unlock()
			if dest.IsZero() {
				return 0, ErrNotConn
			}
		}
		if err := p.sendDgram(s, data, dest); err != nil {
			return 0, err
		}
	}
	p.emit(&meter.Send{
		PID: uint32(p.pid), PC: p.nextPC(), Sock: s.id,
		MsgLength: uint32(len(data)), DestNameLen: nameLen(dest), DestName: dest,
	})
	return len(data), nil
}

// sendDgram routes one datagram: directly to the destination socket
// when local (reliable within a machine, section 3.5.2), through the
// network fabric otherwise (where it may be lost or reordered).
func (p *Process) sendDgram(s *Socket, data []byte, dest meter.Name) error {
	// Implicit bind so the receiver sees a source name.
	if s.domain == meter.AFInet && s.BoundName().IsZero() {
		if _, err := p.machine.bindInet(s, 0); err != nil {
			return err
		}
	}
	switch dest.Family() {
	case meter.AFInet:
		host, port := dest.Inet()
		target := p.machine.cluster.machineByHost(host)
		if target == nil {
			return fmt.Errorf("%w: host %d", ErrHostUnreach, host)
		}
		if target == p.machine {
			if rs := target.lookupPort(SockDgram, port); rs != nil {
				rs.deliverDgram(data, s.BoundName(), p.machine.clock.Now())
			}
			return nil
		}
		netName, srcHost := "", uint32(0)
		target.mu.Lock()
		for _, nn := range target.netOrder {
			if h, ok := p.machine.hostIDs[nn]; ok {
				netName, srcHost = nn, h
				break
			}
		}
		var dstHost uint32
		if netName != "" {
			dstHost = target.hostIDs[netName]
		}
		target.mu.Unlock()
		if netName == "" {
			return fmt.Errorf("%w: no shared network with %s", ErrHostUnreach, target.name)
		}
		n, err := p.machine.cluster.Network(netName)
		if err != nil {
			return err
		}
		if len(data) > netsim.MaxDatagram {
			return ErrMsgSize
		}
		return n.Send(netsim.Datagram{
			Src:     netsim.Addr{Net: netName, Host: srcHost, Port: s.port},
			Dst:     netsim.Addr{Net: netName, Host: dstHost, Port: port},
			SrcName: s.BoundName().String(),
			SentAt:  p.machine.clock.Now(),
			Data:    data,
		})
	case meter.AFUnix:
		if rs := p.machine.lookupUnix(dest.Path()); rs != nil && rs.typ == SockDgram {
			rs.deliverDgram(data, s.BoundName(), p.machine.clock.Now())
		}
		return nil
	default:
		return ErrAfNoSupport
	}
}

// Recv receives data: the next datagram, or up to max stream bytes
// ("As many bytes as possible are delivered for each read without
// regard for whether or not the bytes originated from the same
// message", section 3.1). A stream whose peer has gone returns io.EOF
// once drained. Recv generates the receivecall event when the call is
// made and the receive event when data is returned.
func (p *Process) Recv(fd, max int) ([]byte, error) {
	data, _, err := p.RecvFrom(fd, max)
	return data, err
}

// RecvFrom is Recv plus the source's name, meaningful for datagrams.
func (p *Process) RecvFrom(fd, max int) ([]byte, meter.Name, error) {
	return p.recvFrom(fd, max, nil, false)
}

// TryRecvFrom is RecvFrom that never blocks: with nothing to read it
// fails with ErrWouldBlock. Event-driven tasks (Machine.SpawnTask) use
// it to drain a socket and then park instead of holding a worker.
func (p *Process) TryRecvFrom(fd, max int) ([]byte, meter.Name, error) {
	return p.recvFrom(fd, max, nil, true)
}

// RecvTimeout is RecvFrom with a deadline: if nothing arrives within d
// the call fails with ErrTimedOut. It stands in for 4.2BSD's
// SO_RCVTIMEO; the meterdaemon's hardened exchanges use it so a reply
// lost to a crash or partition cannot block a request forever.
func (p *Process) RecvTimeout(fd, max int, d time.Duration) ([]byte, meter.Name, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	return p.recvFrom(fd, max, t.C, false)
}

func (p *Process) recvFrom(fd, max int, timeout <-chan time.Time, nonblock bool) ([]byte, meter.Name, error) {
	if err := p.enter(); err != nil {
		return nil, meter.Name{}, err
	}
	e, err := p.fd(fd)
	if err != nil {
		return nil, meter.Name{}, err
	}
	if e.sock == nil {
		// Plain file/stream descriptor: not IPC, not metered.
		if e.r == nil {
			return nil, meter.Name{}, ErrBadFD
		}
		buf := make([]byte, max)
		n, rerr := e.r.Read(buf)
		if n > 0 {
			return buf[:n], meter.Name{}, nil
		}
		return nil, meter.Name{}, rerr
	}
	s := e.sock
	if max <= 0 {
		return nil, meter.Name{}, fmt.Errorf("%w: recv of %d bytes", ErrInval, max)
	}
	p.emit(&meter.RecvCall{PID: uint32(p.pid), PC: p.nextPC(), Sock: s.id})
	for {
		if err := p.checkpoint(); err != nil {
			return nil, meter.Name{}, err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, meter.Name{}, ErrBadFD
		}
		if s.typ == SockDgram {
			if len(s.dgrams) > 0 {
				dg := s.dgrams[0]
				s.dgrams = s.dgrams[1:]
				s.releaseLocked(len(dg.data))
				s.mu.Unlock()
				data := dg.data
				if len(data) > max {
					// A datagram is read as a complete message; excess
					// bytes are discarded, as recv does.
					data = data[:max]
				}
				p.emitRecv(s, len(data), dg.src)
				return data, dg.src, nil
			}
		} else {
			if !s.connected {
				s.mu.Unlock()
				return nil, meter.Name{}, ErrNotConn
			}
			if len(s.recvBuf) > 0 {
				n := len(s.recvBuf)
				if n > max {
					n = max
				}
				data := append([]byte(nil), s.recvBuf[:n]...)
				s.recvBuf = s.recvBuf[n:]
				s.releaseLocked(n)
				s.mu.Unlock()
				// Like the send side, a read on a connection carries no
				// source name; the analysis recovers it from the
				// connection-establishment events.
				p.emitRecv(s, n, meter.Name{})
				return data, meter.Name{}, nil
			}
			if s.peerClosed {
				s.mu.Unlock()
				return nil, meter.Name{}, io.EOF
			}
		}
		if nonblock {
			s.mu.Unlock()
			return nil, meter.Name{}, ErrWouldBlock
		}
		w := getWaiter()
		s.waiters.push(w)
		s.mu.Unlock()
		err := p.await(w.ch, timeout)
		s.unpark(w)
		if err != nil {
			return nil, meter.Name{}, err
		}
	}
}

func (p *Process) emitRecv(s *Socket, n int, src meter.Name) {
	p.emit(&meter.Recv{
		PID: uint32(p.pid), PC: p.nextPC(), Sock: s.id,
		MsgLength: uint32(n), SourceNameLen: nameLen(src), SourceName: src,
	})
}

// Read is the read() system call: on a socket it is a receive (the
// paper treats the varieties of read and recv as the same meter
// event); on a plain descriptor it reads file data.
func (p *Process) Read(fd, max int) ([]byte, error) {
	return p.Recv(fd, max)
}

// Readv is the scatter variant of read. Section 3.1: read, readv,
// recv, recvfrom and recvmsg "are only slight variations of one
// another, and thus we may assume that the program always calls
// read()" — all five produce the same receive meter event. Readv
// fills the given buffers in order and returns the total bytes read
// from a single receive.
func (p *Process) Readv(fd int, bufs [][]byte) (int, error) {
	max := 0
	for _, b := range bufs {
		max += len(b)
	}
	if max == 0 {
		return 0, fmt.Errorf("%w: readv with no buffer space", ErrInval)
	}
	data, err := p.Recv(fd, max)
	if err != nil {
		return 0, err
	}
	off := 0
	for _, b := range bufs {
		off += copy(b, data[off:])
		if off == len(data) {
			break
		}
	}
	return len(data), nil
}

// RecvMsg is the recvmsg() variant: identical to RecvFrom (one
// receive meter event).
func (p *Process) RecvMsg(fd, max int) ([]byte, meter.Name, error) {
	return p.RecvFrom(fd, max)
}

// Writev is the gather variant of write: the buffers are sent as one
// message, producing a single send meter event, like the paper's
// write/writev/send/sendmsg family.
func (p *Process) Writev(fd int, bufs [][]byte) (int, error) {
	var data []byte
	for _, b := range bufs {
		data = append(data, b...)
	}
	return p.Write(fd, data)
}

// SendMsg is the sendmsg() variant: identical to Send for connected
// sockets.
func (p *Process) SendMsg(fd int, data []byte) (int, error) {
	return p.Send(fd, data)
}

// Write is the write() system call: on a socket it is a send; on a
// plain descriptor it writes through (unmetered: it is not IPC).
func (p *Process) Write(fd int, data []byte) (int, error) {
	e, err := p.fd(fd)
	if err != nil {
		return 0, err
	}
	if e.sock != nil {
		return p.Send(fd, data)
	}
	if err := p.enter(); err != nil {
		return 0, err
	}
	if e.w == nil {
		return 0, ErrBadFD
	}
	return e.w.Write(data)
}

// Printf formats to the process's standard output.
func (p *Process) Printf(format string, args ...any) {
	_, _ = p.Write(1, []byte(fmt.Sprintf(format, args...)))
}

// SocketPair creates a pair of connected stream sockets. The paper:
// "socketpair() is not treated differently from a pair of socket
// creates followed by separate connects and accepts; all four messages
// are produced" (section 3.2) — so metering emits two socket events
// plus a connect and an accept, and the sockets carry internally
// generated unique names (section 4.1).
func (p *Process) SocketPair() (int, int, error) {
	if err := p.enter(); err != nil {
		return -1, -1, err
	}
	m := p.machine
	a := m.newSocket(meter.AFPair, SockStream)
	b := m.newSocket(meter.AFPair, SockStream)
	m.mu.Lock()
	m.nextPairID++
	aName := meter.PairName(m.nextPairID)
	m.nextPairID++
	bName := meter.PairName(m.nextPairID)
	m.mu.Unlock()
	a.boundName, b.boundName = aName, bName
	a.bound, b.bound = true, true
	a.peer, b.peer = b, a
	a.peerName, b.peerName = bName, aName
	a.connected, b.connected = true, true

	fd1 := p.installFD(&fdEntry{sock: a})
	fd2 := p.installFD(&fdEntry{sock: b})

	p.emit(&meter.SocketCrt{PID: uint32(p.pid), PC: p.nextPC(), Sock: a.id, Domain: uint32(meter.AFPair), SockType: SockStream})
	p.emit(&meter.SocketCrt{PID: uint32(p.pid), PC: p.nextPC(), Sock: b.id, Domain: uint32(meter.AFPair), SockType: SockStream})
	p.emit(&meter.Connect{
		PID: uint32(p.pid), PC: p.nextPC(), Sock: a.id,
		SockNameLen: meter.NameSize, PeerNameLen: meter.NameSize,
		SockName: aName, PeerName: bName,
	})
	p.emit(&meter.Accept{
		PID: uint32(p.pid), PC: p.nextPC(), Sock: b.id, NewSock: b.id,
		SockNameLen: meter.NameSize, PeerNameLen: meter.NameSize,
		SockName: bName, PeerName: aName,
	})
	return fd1, fd2, nil
}

// Dup duplicates a descriptor.
func (p *Process) Dup(fd int) (int, error) {
	if err := p.enter(); err != nil {
		return -1, err
	}
	e, err := p.fd(fd)
	if err != nil {
		return -1, err
	}
	cp := *e
	if cp.sock != nil {
		cp.sock.ref()
	}
	nfd := p.installFD(&cp)
	if cp.sock != nil {
		p.emit(&meter.Dup{PID: uint32(p.pid), PC: p.nextPC(), Sock: cp.sock.id, NewSock: cp.sock.id})
	}
	return nfd, nil
}

// Close releases a descriptor; the last reference destroys the socket.
func (p *Process) Close(fd int) error {
	if err := p.enter(); err != nil {
		return err
	}
	p.mu.Lock()
	if fd < 0 || fd >= len(p.fds) || p.fds[fd] == nil {
		p.mu.Unlock()
		return ErrBadFD
	}
	e := p.fds[fd]
	p.fds[fd] = nil
	p.mu.Unlock()
	if e.sock != nil {
		id := e.sock.id
		e.sock.unref()
		p.emit(&meter.DestSocket{PID: uint32(p.pid), PC: p.nextPC(), Sock: id})
	}
	return nil
}

// Fork creates a child process running the given body. The child
// gains access to the parent's sockets via a copied descriptor table,
// and inherits the meter socket and meter flags of the parent
// (sections 3.1 and 3.2), with a fresh buffer of unsent messages.
func (p *Process) Fork(child Program) (int, error) {
	if err := p.enter(); err != nil {
		return -1, err
	}
	m := p.machine

	c := m.newProcess(SpawnSpec{UID: p.uid, Name: p.name, Args: p.args, PPID: p.pid})
	p.mu.Lock()
	// Replace the default stdio slots with a copy of the parent's
	// descriptor table (the default entries hold no sockets, so there
	// is nothing to release).
	c.fds = make([]*fdEntry, len(p.fds))
	for i, e := range p.fds {
		if e == nil {
			continue
		}
		cp := *e
		if cp.sock != nil {
			cp.sock.ref()
		}
		c.fds[i] = &cp
	}
	if p.meterSock != nil {
		p.meterSock.ref()
		c.meterSock = p.meterSock
		c.meterFlags = p.meterFlags
		c.meterBuf = m.newMeterBuffer(p.meterSock)
	}
	p.mu.Unlock()

	m.wg.Add(1)
	go c.run(child)
	p.emit(&meter.Fork{PID: uint32(p.pid), PC: p.nextPC(), NewPID: uint32(c.pid)})
	return c.pid, nil
}

// Exec replaces the process image with the executable at path. On
// success it runs the program to completion and then terminates the
// process with the program's status; it returns only on error.
func (p *Process) Exec(path string, args ...string) error {
	if err := p.enter(); err != nil {
		return err
	}
	progName, err := p.machine.fs.Executable(path, p.uid)
	if err != nil {
		return err
	}
	prog := p.machine.cluster.program(progName)
	if prog == nil {
		return fmt.Errorf("%w: program %q not registered", ErrInval, progName)
	}
	p.mu.Lock()
	p.name = path
	p.args = append([]string(nil), args...)
	p.mu.Unlock()
	panic(exitPanic{status: prog(p)})
}

// Exit terminates the process with the given status.
func (p *Process) Exit(status int) {
	if p.detached {
		p.finish(status, ReasonNormal)
		return
	}
	panic(exitPanic{status: status})
}

// Compute burns d of CPU time — the paper's "internal events"
// (computation), visible to the monitor only through the procTime
// header field of surrounding communication events. With a positive
// Config.ComputeWallScale it also consumes real time, so concurrent
// processes interleave.
func (p *Process) Compute(d time.Duration) {
	_ = p.checkpoint()
	if scale := p.machine.cluster.cfg.ComputeWallScale; scale > 0 && d > 0 {
		time.Sleep(time.Duration(float64(d) * scale))
	}
	p.charge(d)
}

// Select blocks until at least one of the given descriptors is ready
// for reading, and returns the ready subset. The standard filter uses
// it to multiplex its meter connections.
//
// The seed kernel built a []reflect.SelectCase per loop iteration and
// slept in reflect.Select — two channel boxings per descriptor per
// wakeup. Now every watched socket gets an intrusive waiter node
// pointing at one pooled wake channel: the call parks on all sockets
// first, then collects readiness, so a state change between check and
// sleep fires the channel rather than being lost, and the steady-state
// cost is two small slice allocations regardless of descriptor count
// (gated by TestSelectReadyAllocs).
func (p *Process) Select(fds []int) ([]int, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	if len(fds) == 0 {
		return nil, fmt.Errorf("%w: select with no descriptors", ErrInval)
	}
	socks := make([]*Socket, len(fds))
	for i, fd := range fds {
		s, err := p.sockFD(fd)
		if err != nil {
			return nil, fmt.Errorf("select fd %d: %w", fd, err)
		}
		socks[i] = s
	}
	for {
		if err := p.checkpoint(); err != nil {
			return nil, err
		}
		sp := getSelectParking(len(socks))
		var ready []int
		for i, s := range socks {
			s.mu.Lock()
			s.waiters.push(&sp.nodes[i])
			if s.readyLocked() {
				ready = append(ready, fds[i])
			}
			s.mu.Unlock()
		}
		var waitErr error
		if len(ready) == 0 {
			waitErr = p.await(sp.ch, nil)
		}
		for i, s := range socks {
			s.mu.Lock()
			s.waiters.remove(&sp.nodes[i])
			s.mu.Unlock()
		}
		putSelectParking(sp)
		if len(ready) > 0 {
			return ready, nil
		}
		if waitErr != nil {
			return nil, waitErr
		}
	}
}

// SocketOf returns the socket object behind a descriptor. The
// meterdaemon uses it to hand a gateway socket to SpawnSpec.Stdio and
// to read bound names; it is not part of the 4.2BSD surface.
func (p *Process) SocketOf(fd int) (*Socket, error) {
	return p.sockFD(fd)
}

// SocketName returns the name bound to the socket at fd (zero if
// unbound) — the getsockname() of 4.2BSD.
func (p *Process) SocketName(fd int) (meter.Name, error) {
	s, err := p.sockFD(fd)
	if err != nil {
		return meter.Name{}, err
	}
	return s.BoundName(), nil
}

// ReadFile reads a file on the local machine with the process's
// credentials. File access is not IPC and generates no meter events.
func (p *Process) ReadFile(path string) ([]byte, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	return p.machine.fs.Read(path, p.uid)
}

// AppendFile appends to a file on the local machine.
func (p *Process) AppendFile(path string, data []byte) error {
	if err := p.enter(); err != nil {
		return err
	}
	return p.machine.fs.Append(path, p.uid, data)
}
