package kernel

import (
	"bytes"
	"testing"

	"dpm/internal/meter"
)

// TestVariantsProduceSameMeterEvents pins the paper's consistency
// rule: "the many versions of write() all correspond to the same
// meter event, as do the varieties of read(). It is not important to
// distinguish between the varieties of these operations to understand
// the communication taking place" (section 3.2).
func TestVariantsProduceSameMeterEvents(t *testing.T) {
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	tap := newMeterTap(t, green, target, meter.MSend|meter.MReceiveCall|meter.MReceive|meter.MImmediate, testUID)

	fd1, fd2, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	// Four send variants...
	if _, err := target.Send(fd1, []byte("aa")); err != nil {
		t.Fatal(err)
	}
	if _, err := target.Write(fd1, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if _, err := target.Writev(fd1, [][]byte{[]byte("c"), []byte("c")}); err != nil {
		t.Fatal(err)
	}
	if _, err := target.SendMsg(fd1, []byte("dd")); err != nil {
		t.Fatal(err)
	}
	// ...and four receive variants.
	if _, err := target.Recv(fd2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := target.Read(fd2, 2); err != nil {
		t.Fatal(err)
	}
	b1, b2 := make([]byte, 1), make([]byte, 1)
	if _, err := target.Readv(fd2, [][]byte{b1, b2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := target.RecvMsg(fd2, 2); err != nil {
		t.Fatal(err)
	}

	msgs := tap.collect(12) // 4 sends + 4×(recvcall+recv)
	var got []meter.Type
	for _, m := range msgs {
		got = append(got, m.Header.TraceType)
	}
	want := []meter.Type{
		meter.EvSend, meter.EvSend, meter.EvSend, meter.EvSend,
		meter.EvRecvCall, meter.EvRecv,
		meter.EvRecvCall, meter.EvRecv,
		meter.EvRecvCall, meter.EvRecv,
		meter.EvRecvCall, meter.EvRecv,
	}
	if len(got) != len(want) {
		t.Fatalf("events = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (variants must collapse)", i, got[i], want[i])
		}
	}
	// Every send body reports the same length regardless of variant.
	for i := 0; i < 4; i++ {
		if l := msgs[i].Body.(*meter.Send).MsgLength; l != 2 {
			t.Fatalf("send %d length = %d", i, l)
		}
	}
}

func TestReadvScattersAcrossBuffers(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd1, fd2, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(fd1, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	b1, b2, b3 := make([]byte, 2), make([]byte, 3), make([]byte, 4)
	n, err := p.Readv(fd2, [][]byte{b1, b2, b3})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("n = %d", n)
	}
	if !bytes.Equal(b1, []byte("ab")) || !bytes.Equal(b2, []byte("cde")) || !bytes.Equal(b3[:1], []byte("f")) {
		t.Fatalf("buffers = %q %q %q", b1, b2, b3)
	}
}

func TestReadvNoBuffers(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd1, _, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Readv(fd1, nil); err == nil {
		t.Fatal("readv with no buffers succeeded")
	}
}

func TestWritevGathers(t *testing.T) {
	_, red, _ := newTestCluster(t)
	p := detached(t, red)
	fd1, fd2, err := p.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Writev(fd1, [][]byte{[]byte("one"), []byte("two")}); err != nil {
		t.Fatal(err)
	}
	data, err := p.Recv(fd2, 100)
	if err != nil || string(data) != "onetwo" {
		t.Fatalf("data = %q, %v", data, err)
	}
}

func TestMixedBufferedAndImmediatePreservesOrder(t *testing.T) {
	// Switching M_IMMEDIATE on and off mid-stream must never reorder
	// the meter stream: the buffer flushes in order.
	_, red, green := newTestCluster(t)
	target := detached(t, red)
	tap := newMeterTap(t, green, target, meter.MSend, testUID) // buffered
	fd1, _, err := target.SocketPair()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // buffered, below threshold
		if _, err := target.Send(fd1, make([]byte, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Flip to immediate; the pending three must drain before the new
	// one arrives... the kernel keeps them in the buffer until a
	// flush, so the immediate message triggers one flush containing
	// all four in order.
	if err := target.Setmeter(Self, int(meter.MSend|meter.MImmediate), NoChange); err != nil {
		t.Fatal(err)
	}
	if _, err := target.Send(fd1, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	msgs := tap.collect(4)
	for i, m := range msgs {
		if got := m.Body.(*meter.Send).MsgLength; got != uint32(i+1) {
			t.Fatalf("message %d length = %d; order broken", i, got)
		}
	}
}
