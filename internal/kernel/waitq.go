package kernel

import "sync"

// This file implements the kernel's wait machinery: intrusive wait
// lists on sockets in place of the close-and-replace channel the seed
// kernel used. A blocked system call enqueues a pooled waiter node on
// the socket it needs and sleeps on the node's channel; a state change
// walks the list and delivers a non-blocking wakeup to each node. The
// scheme costs zero allocations per wait in steady state (the nodes
// and their channels are pooled) and gives the event-driven scheduler
// (sched.go) a callback-based wakeup — a parked task is resumed by a
// worker pool instead of by a dedicated goroutine.

// waiter is one parked wait: an intrusive node on a socket's wait
// list. Exactly one of ch and fn is used: blocking system calls sleep
// on ch; scheduler tasks register fn, which re-queues the task.
type waiter struct {
	prev, next *waiter
	ch         chan struct{} // cap 1; wakeups are non-blocking sends
	fn         func()
	queued     bool // guarded by the owning socket's mutex
}

// fire delivers the wakeup. It must never block: it is called while
// holding the socket's mutex.
func (w *waiter) fire() {
	if w.fn != nil {
		w.fn()
		return
	}
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

// waitList is an intrusive doubly-linked list of waiters, embedded in
// Socket and guarded by the socket's mutex.
type waitList struct {
	head, tail *waiter
}

// push appends w to the list.
func (l *waitList) push(w *waiter) {
	w.prev = l.tail
	w.next = nil
	if l.tail != nil {
		l.tail.next = w
	} else {
		l.head = w
	}
	l.tail = w
	w.queued = true
}

// remove unlinks w if it is still queued; safe to call after a
// broadcast already popped it.
func (l *waitList) remove(w *waiter) {
	if !w.queued {
		return
	}
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		l.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		l.tail = w.prev
	}
	w.prev, w.next = nil, nil
	w.queued = false
}

// wakeAll pops every waiter and fires it — the broadcast that replaced
// closing a shared channel. Waiters left with a pending token they did
// not consume (a racing timeout, say) drain it on reuse.
func (l *waitList) wakeAll() {
	for w := l.head; w != nil; {
		next := w.next
		w.prev, w.next = nil, nil
		w.queued = false
		w.fire()
		w = next
	}
	l.head, l.tail = nil, nil
}

// waiterPool recycles single-wait nodes, channel included, so a
// blocking system call allocates nothing in steady state.
var waiterPool = sync.Pool{
	New: func() any { return &waiter{ch: make(chan struct{}, 1)} },
}

// getWaiter takes a node from the pool with any stale wakeup drained.
func getWaiter() *waiter {
	w := waiterPool.Get().(*waiter)
	select {
	case <-w.ch:
	default:
	}
	return w
}

// putWaiter returns a node to the pool. The caller must have removed
// it from any wait list first.
func putWaiter(w *waiter) { waiterPool.Put(w) }

// selectParking carries the shared wake channel and the per-socket
// nodes of one Select call: all nodes point at one channel, because a
// single sleeper re-checks every watched socket on any wakeup. Pooled
// so a Select allocates only its argument and result slices.
type selectParking struct {
	ch    chan struct{}
	nodes []waiter
}

var selectPool = sync.Pool{
	New: func() any { return &selectParking{ch: make(chan struct{}, 1)} },
}

// getSelectParking takes a parking set sized for n sockets, drained of
// stale wakeups.
func getSelectParking(n int) *selectParking {
	sp := selectPool.Get().(*selectParking)
	select {
	case <-sp.ch:
	default:
	}
	if cap(sp.nodes) < n {
		sp.nodes = make([]waiter, n)
	}
	sp.nodes = sp.nodes[:n]
	for i := range sp.nodes {
		sp.nodes[i] = waiter{ch: sp.ch}
	}
	return sp
}

// putSelectParking returns a parking set to the pool. Every node must
// already be off its wait list.
func putSelectParking(sp *selectParking) { selectPool.Put(sp) }
