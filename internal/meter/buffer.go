package meter

import (
	"sync"

	"dpm/internal/obs"
)

// DefaultBufferCount is how many meter messages the kernel accumulates
// before sending them together to the filter. The paper does not give
// the 4.2BSD value, only that "the default is to buffer several
// messages so that the number of meter messages is considerably
// smaller than the number of messages sent by the metered process"
// (section 4.1); eight gives that "considerably smaller" reduction
// while bounding the latency of trace data.
const DefaultBufferCount = 8

// Stats counts the traffic through one meter buffer, used by the
// benchmarks that reproduce the paper's buffering claim (EXPERIMENTS.md
// experiment C2).
type Stats struct {
	Events  int64 // meter messages generated
	Flushes int64 // writes to the meter connection
	Bytes   int64 // bytes written to the meter connection
}

// Buffer is the kernel-side store of meter messages that have yet to
// be sent — the third field the paper adds to the process table entry.
// Add encodes each message immediately (the kernel extracts event data
// at event time, section 3.3) and triggers a flush when the threshold
// is reached or immediate delivery is requested.
//
// A flush hands the filter one write carrying the whole batch of
// contiguous frames, and the batch buffer is recycled once send
// returns, so a steadily metered process reuses two buffers forever
// instead of allocating one per flush.
type Buffer struct {
	mu        sync.Mutex
	threshold int
	pending   []byte
	// spare is the last sent batch's storage, reused for the next
	// pending run once a flush completes.
	spare []byte
	count int
	stats Stats
	send  func([]byte)

	// Optional obs mirrors of the stats fields; nil until SetObs. The
	// kernel points every buffer on a machine at that machine's shared
	// meter.* counters, so per-process buffers aggregate per machine.
	obsEvents  *obs.Counter
	obsFlushes *obs.Counter
	obsBytes   *obs.Counter
}

// SetObs mirrors the buffer's counters into obs counters (typically a
// machine registry's meter.events / meter.flushes / meter.flush_bytes).
// Any may be nil. Call before the buffer is in use.
func (b *Buffer) SetObs(events, flushes, bytes *obs.Counter) {
	b.mu.Lock()
	b.obsEvents, b.obsFlushes, b.obsBytes = events, flushes, bytes
	b.mu.Unlock()
}

// NewBuffer returns a buffer that delivers batches through send (a
// write on the meter connection). A threshold below 1 is treated as 1,
// i.e. unbuffered. send must not retain the batch slice past its
// return: the buffer reuses its storage for the next batch.
func NewBuffer(threshold int, send func([]byte)) *Buffer {
	if threshold < 1 {
		threshold = 1
	}
	return &Buffer{threshold: threshold, send: send}
}

// Add appends one meter message; if immediate is set or the threshold
// is reached, the pending batch is sent.
func (b *Buffer) Add(m *Msg, immediate bool) {
	b.mu.Lock()
	if b.pending == nil && b.spare != nil {
		b.pending, b.spare = b.spare[:0], nil
	}
	b.pending = m.AppendEncode(b.pending)
	b.count++
	b.stats.Events++
	if b.obsEvents != nil {
		b.obsEvents.Inc()
	}
	var batch []byte
	if immediate || b.count >= b.threshold {
		batch = b.take()
	}
	b.mu.Unlock()
	if batch != nil {
		b.send(batch)
		b.recycle(batch)
	}
}

// Flush sends any pending messages; the kernel calls it as part of
// process termination ("any unsent messages are forwarded to the
// filter", section 3.2) and before the meter connection is replaced.
func (b *Buffer) Flush() {
	b.mu.Lock()
	batch := b.take()
	b.mu.Unlock()
	if batch != nil {
		b.send(batch)
		b.recycle(batch)
	}
}

// take removes and returns the pending batch. Caller holds b.mu.
func (b *Buffer) take() []byte {
	if b.count == 0 {
		return nil
	}
	batch := b.pending
	b.pending = nil
	b.count = 0
	b.stats.Flushes++
	b.stats.Bytes += int64(len(batch))
	if b.obsFlushes != nil {
		b.obsFlushes.Inc()
	}
	if b.obsBytes != nil {
		b.obsBytes.Add(int64(len(batch)))
	}
	return batch
}

// recycle returns a sent batch's storage for reuse, keeping the larger
// of it and any spare already parked.
func (b *Buffer) recycle(batch []byte) {
	b.mu.Lock()
	if cap(batch) > cap(b.spare) {
		b.spare = batch[:0]
	}
	b.mu.Unlock()
}

// Pending returns the number of buffered, unsent messages.
func (b *Buffer) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Stats returns a snapshot of the buffer's counters.
func (b *Buffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
