package meter

import (
	"testing"
)

func msgOf(body Body) *Msg {
	return &Msg{Header: Header{Machine: 1}, Body: body}
}

// collectingSend returns a send func and a pointer to the batches it
// received.
func collectingSend() (func([]byte), *[][]byte) {
	var batches [][]byte
	return func(b []byte) {
		cp := append([]byte(nil), b...)
		batches = append(batches, cp)
	}, &batches
}

func TestBufferHoldsUntilThreshold(t *testing.T) {
	send, batches := collectingSend()
	b := NewBuffer(4, send)
	for i := 0; i < 3; i++ {
		b.Add(msgOf(&Fork{PID: uint32(i)}), false)
	}
	if len(*batches) != 0 {
		t.Fatalf("flushed after %d < threshold messages", 3)
	}
	if b.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", b.Pending())
	}
	b.Add(msgOf(&Fork{PID: 3}), false)
	if len(*batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(*batches))
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after flush, want 0", b.Pending())
	}
	msgs, rest, err := DecodeStream((*batches)[0])
	if err != nil || len(rest) != 0 {
		t.Fatalf("batch not decodable: %v, rest %d", err, len(rest))
	}
	if len(msgs) != 4 {
		t.Fatalf("batch holds %d messages, want 4", len(msgs))
	}
}

func TestImmediateBypassesBuffering(t *testing.T) {
	send, batches := collectingSend()
	b := NewBuffer(100, send)
	b.Add(msgOf(&Fork{}), true)
	if len(*batches) != 1 {
		t.Fatal("immediate message not sent at once")
	}
}

func TestFlushSendsPendingAndIsIdempotent(t *testing.T) {
	send, batches := collectingSend()
	b := NewBuffer(100, send)
	b.Add(msgOf(&Fork{}), false)
	b.Flush()
	if len(*batches) != 1 {
		t.Fatal("Flush did not send pending batch")
	}
	b.Flush()
	if len(*batches) != 1 {
		t.Fatal("empty Flush produced a batch")
	}
}

func TestBufferingReducesFlushes(t *testing.T) {
	// The buffering claim of section 4.1: the number of messages sent
	// to the filter is considerably smaller than the number of events.
	send, _ := collectingSend()
	b := NewBuffer(DefaultBufferCount, send)
	const events = 800
	for i := 0; i < events; i++ {
		b.Add(msgOf(&Send{PID: uint32(i)}), false)
	}
	st := b.Stats()
	if st.Events != events {
		t.Fatalf("Events = %d, want %d", st.Events, events)
	}
	if st.Flushes != events/DefaultBufferCount {
		t.Fatalf("Flushes = %d, want %d", st.Flushes, events/DefaultBufferCount)
	}
}

func TestNoEventLoss(t *testing.T) {
	send, batches := collectingSend()
	b := NewBuffer(7, send)
	const events = 100
	for i := 0; i < events; i++ {
		b.Add(msgOf(&Fork{PID: uint32(i)}), false)
	}
	b.Flush() // process termination forwards unsent messages
	var total int
	var pids []uint32
	for _, batch := range *batches {
		msgs, rest, err := DecodeStream(batch)
		if err != nil || len(rest) != 0 {
			t.Fatalf("corrupt batch: %v", err)
		}
		total += len(msgs)
		for _, m := range msgs {
			pids = append(pids, m.Body.(*Fork).PID)
		}
	}
	if total != events {
		t.Fatalf("recovered %d events, want %d", total, events)
	}
	for i, pid := range pids {
		if pid != uint32(i) {
			t.Fatalf("event order broken at %d: pid %d", i, pid)
		}
	}
}

func TestThresholdBelowOneMeansUnbuffered(t *testing.T) {
	send, batches := collectingSend()
	b := NewBuffer(0, send)
	b.Add(msgOf(&Fork{}), false)
	if len(*batches) != 1 {
		t.Fatal("threshold 0 should behave as unbuffered")
	}
}

func TestStatsBytes(t *testing.T) {
	send, _ := collectingSend()
	b := NewBuffer(1, send)
	m := msgOf(&Fork{})
	b.Add(m, false)
	if st := b.Stats(); st.Bytes != int64(m.EncodedSize()) {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, m.EncodedSize())
	}
}
