// Package meter defines the meter event model of the monitor: the
// event types, the meter flags that select them, the binary meter
// message formats of Appendix A, and the kernel-side message buffer.
//
// The paper's kernel creates one meter message per flagged system call
// made by a metered process (section 3.2). Each message consists of a
// standard header (size, machine, local clock, process CPU time, trace
// type) and a body particular to the event type. Messages are buffered
// in the kernel and sent together to the filter over the meter
// connection; the M_IMMEDIATE flag disables buffering (section 4.1).
package meter

import (
	"fmt"
	"sort"
	"strings"
)

// Type identifies one meter event type (the traceType header field).
// The numbering is anchored by the paper's selection-rule examples:
// Figure 3.3 uses "type=1" for a send event, and Figure 3.4 uses
// "type=8" with a sockName=peerName comparison, which fits the accept
// event.
type Type uint32

// Meter event types.
const (
	EvSend       Type = 1  // process sends a message
	EvRecvCall   Type = 2  // process makes a call to receive a message
	EvRecv       Type = 3  // process receives a message
	EvSocket     Type = 4  // process creates a socket
	EvDup        Type = 5  // process duplicates a socket or file descriptor
	EvDestSocket Type = 6  // process closes a socket
	EvConnect    Type = 7  // process initiates a connection
	EvAccept     Type = 8  // process accepts a connection
	EvFork       Type = 9  // process forks
	EvTermProc   Type = 10 // process terminates
)

// typeNames maps each event type to the event name used in description
// files and analysis output.
var typeNames = map[Type]string{
	EvSend:       "SEND",
	EvRecvCall:   "RECEIVECALL",
	EvRecv:       "RECEIVE",
	EvSocket:     "SOCKET",
	EvDup:        "DUP",
	EvDestSocket: "DESTSOCKET",
	EvConnect:    "CONNECT",
	EvAccept:     "ACCEPT",
	EvFork:       "FORK",
	EvTermProc:   "TERMPROC",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE(%d)", uint32(t))
}

// Flag is a bit in the per-process meter flag mask (the 32-bit word the
// paper adds to the process table entry). One flag exists per event
// type, plus M_IMMEDIATE, which is not an event but a delivery policy.
type Flag uint32

// Meter flags, named after the constants in <meterflags.h> (paper
// section 4.1 and the setmeter(2) man page in Appendix C).
const (
	MSend        Flag = 1 << iota // METER_SEND
	MReceiveCall                  // METER_RECEIVECALL
	MReceive                      // METER_RECEIVE
	MSocket                       // METER_SOCKET
	MDup                          // METER_DUP
	MDestSocket                   // METER_DESTSOCKET
	MConnect                      // METER_CONNECT
	MAccept                       // METER_ACCEPT
	MFork                         // METER_FORK
	MTermProc                     // METER_TERMPROC
	MImmediate                    // M_IMMEDIATE: send meter messages unbuffered
)

// MAll selects every event flag (the paper's M_ALL). It does not
// include MImmediate, which controls delivery rather than selection.
const MAll = MSend | MReceiveCall | MReceive | MSocket | MDup |
	MDestSocket | MConnect | MAccept | MFork | MTermProc

// flagForType maps an event type to the flag that enables it.
var flagForType = map[Type]Flag{
	EvSend:       MSend,
	EvRecvCall:   MReceiveCall,
	EvRecv:       MReceive,
	EvSocket:     MSocket,
	EvDup:        MDup,
	EvDestSocket: MDestSocket,
	EvConnect:    MConnect,
	EvAccept:     MAccept,
	EvFork:       MFork,
	EvTermProc:   MTermProc,
}

// FlagFor returns the flag that enables metering of the given event
// type, or zero for an unknown type.
func FlagFor(t Type) Flag { return flagForType[t] }

// Selects reports whether the flag mask enables the given event type.
func (f Flag) Selects(t Type) bool { return f&flagForType[t] != 0 }

// Immediate reports whether the mask requests unbuffered delivery.
func (f Flag) Immediate() bool { return f&MImmediate != 0 }

// flagNames are the user-visible flag names accepted by the
// controller's setflags command (section 4.3).
var flagNames = map[string]Flag{
	"send":        MSend,
	"receivecall": MReceiveCall,
	"receive":     MReceive,
	"socket":      MSocket,
	"dup":         MDup,
	"destsocket":  MDestSocket,
	"connect":     MConnect,
	"accept":      MAccept,
	"fork":        MFork,
	"termproc":    MTermProc,
	"immediate":   MImmediate,
	"all":         MAll,
}

// ParseFlag parses one setflags token ("send", "all", ...; a leading
// '-' resets instead of sets, per section 4.3). It returns the flag
// bits and whether they should be cleared.
func ParseFlag(tok string) (f Flag, clear bool, err error) {
	name := tok
	if strings.HasPrefix(tok, "-") {
		clear = true
		name = tok[1:]
	}
	f, ok := flagNames[strings.ToLower(name)]
	if !ok {
		return 0, false, fmt.Errorf("meter: unknown flag %q", tok)
	}
	return f, clear, nil
}

// FlagNames returns the canonical, order-stable names of the set event
// flags, as the controller prints them ("new job flags = send receive
// fork accept connect").
func (f Flag) FlagNames() []string {
	// The order matches the flag list of section 4.3.
	order := []struct {
		name string
		bit  Flag
	}{
		{"fork", MFork},
		{"termproc", MTermProc},
		{"send", MSend},
		{"receivecall", MReceiveCall},
		{"receive", MReceive},
		{"socket", MSocket},
		{"dup", MDup},
		{"destsocket", MDestSocket},
		{"accept", MAccept},
		{"connect", MConnect},
		{"immediate", MImmediate},
	}
	var out []string
	for _, e := range order {
		if f&e.bit != 0 {
			out = append(out, e.name)
		}
	}
	return out
}

// String renders the flag set as its space-separated names ("fork
// send receive"), or "-" when empty.
func (f Flag) String() string {
	names := f.FlagNames()
	if len(names) == 0 {
		return "-"
	}
	return strings.Join(names, " ")
}

// AllFlagNames returns every user-visible flag name, sorted; the
// controller's help command lists them.
func AllFlagNames() []string {
	out := make([]string, 0, len(flagNames))
	for n := range flagNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
