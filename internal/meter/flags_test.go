package meter

import (
	"strings"
	"testing"
)

func TestFlagSelectsOwnType(t *testing.T) {
	pairs := map[Type]Flag{
		EvSend:       MSend,
		EvRecvCall:   MReceiveCall,
		EvRecv:       MReceive,
		EvSocket:     MSocket,
		EvDup:        MDup,
		EvDestSocket: MDestSocket,
		EvConnect:    MConnect,
		EvAccept:     MAccept,
		EvFork:       MFork,
		EvTermProc:   MTermProc,
	}
	for typ, flag := range pairs {
		if !flag.Selects(typ) {
			t.Errorf("flag %b does not select its own type %v", flag, typ)
		}
		if FlagFor(typ) != flag {
			t.Errorf("FlagFor(%v) = %b, want %b", typ, FlagFor(typ), flag)
		}
		for other := range pairs {
			if other != typ && flag.Selects(other) {
				t.Errorf("flag for %v also selects %v", typ, other)
			}
		}
	}
}

func TestMAllSelectsEverythingButImmediate(t *testing.T) {
	for typ := range typeNames {
		if !MAll.Selects(typ) {
			t.Errorf("MAll does not select %v", typ)
		}
	}
	if MAll.Immediate() {
		t.Error("MAll must not imply immediate delivery")
	}
}

func TestParseFlag(t *testing.T) {
	cases := []struct {
		tok   string
		want  Flag
		clear bool
	}{
		{"send", MSend, false},
		{"-send", MSend, true},
		{"all", MAll, false},
		{"-all", MAll, true},
		{"RECEIVE", MReceive, false},
		{"immediate", MImmediate, false},
		{"receivecall", MReceiveCall, false},
	}
	for _, c := range cases {
		got, clear, err := ParseFlag(c.tok)
		if err != nil {
			t.Errorf("ParseFlag(%q): %v", c.tok, err)
			continue
		}
		if got != c.want || clear != c.clear {
			t.Errorf("ParseFlag(%q) = (%b, %v), want (%b, %v)", c.tok, got, clear, c.want, c.clear)
		}
	}
}

func TestParseFlagUnknown(t *testing.T) {
	if _, _, err := ParseFlag("bogus"); err == nil {
		t.Fatal("ParseFlag(bogus) succeeded")
	}
	if _, _, err := ParseFlag("-"); err == nil {
		t.Fatal("ParseFlag(-) succeeded")
	}
}

func TestSetflagsUnionSemantics(t *testing.T) {
	// Section 4.3: "If two setflags commands are executed, the set of
	// active flags is the union of the two groups"; resetting is only
	// explicit, with '-'.
	var f Flag
	apply := func(toks ...string) {
		for _, tok := range toks {
			bits, clear, err := ParseFlag(tok)
			if err != nil {
				t.Fatal(err)
			}
			if clear {
				f &^= bits
			} else {
				f |= bits
			}
		}
	}
	apply("send", "receive")
	apply("fork")
	if !f.Selects(EvSend) || !f.Selects(EvRecv) || !f.Selects(EvFork) {
		t.Fatalf("union lost flags: %b", f)
	}
	apply("-send")
	if f.Selects(EvSend) {
		t.Fatal("-send did not clear send")
	}
	if !f.Selects(EvRecv) || !f.Selects(EvFork) {
		t.Fatal("-send cleared unrelated flags")
	}
	apply("-all")
	if f != 0 {
		t.Fatalf("-all left flags: %b", f)
	}
}

func TestFlagNamesOrderStable(t *testing.T) {
	f := MSend | MReceive | MFork | MAccept | MConnect
	got := strings.Join(f.FlagNames(), " ")
	// The order matches the section 4.3 flag list: fork before send,
	// send before receive, accept before connect.
	want := "fork send receive accept connect"
	if got != want {
		t.Fatalf("FlagNames = %q, want %q", got, want)
	}
}

func TestAllFlagNamesSortedAndComplete(t *testing.T) {
	names := AllFlagNames()
	if len(names) != 12 {
		t.Fatalf("AllFlagNames has %d entries, want 12", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestFlagString(t *testing.T) {
	if got := (MSend | MFork).String(); got != "fork send" {
		t.Fatalf("String = %q", got)
	}
	if got := Flag(0).String(); got != "-" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestImmediate(t *testing.T) {
	if (MSend).Immediate() {
		t.Fatal("MSend alone must not be immediate")
	}
	if !(MSend | MImmediate).Immediate() {
		t.Fatal("MImmediate not detected")
	}
}
