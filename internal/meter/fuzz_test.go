package meter

import (
	"errors"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the meter message decoder; it
// must reject garbage gracefully (never panic, never mis-consume) and
// re-encode whatever it accepts byte-for-byte.
func FuzzDecode(f *testing.F) {
	for _, b := range allBodies() {
		m := Msg{Header: header(), Body: b}
		f.Add(m.Encode())
	}
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrShort) && !errors.Is(err, ErrBadSize) && !errors.Is(err, ErrBadType) {
				t.Fatalf("unexpected error type: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := m.Encode()
		if len(re) != n {
			t.Fatalf("re-encode length %d != consumed %d", len(re), n)
		}
		for i := range re {
			// The dummy field and padding are preserved as zero by the
			// encoder; the input may differ there. Compare the fields
			// the codec owns.
			if i >= 12 && i < 16 {
				continue // dummy
			}
			if i >= 6 && i < 8 {
				continue // alignment padding
			}
			if re[i] != data[i] {
				t.Fatalf("byte %d changed: %#x -> %#x", i, data[i], re[i])
			}
		}
	})
}

// FuzzDecodeStream checks the batch splitter on arbitrary input.
func FuzzDecodeStream(f *testing.F) {
	var batch []byte
	for _, b := range allBodies() {
		m := Msg{Header: header(), Body: b}
		batch = m.AppendEncode(batch)
	}
	f.Add(batch)
	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, rest, err := DecodeStream(data)
		if err != nil {
			return
		}
		// Everything consumed plus the rest must account for the
		// input exactly.
		used := 0
		for _, m := range msgs {
			used += m.EncodedSize()
		}
		if used+len(rest) != len(data) {
			t.Fatalf("consumed %d + rest %d != %d", used, len(rest), len(data))
		}
	})
}

// FuzzParseName checks the socket-name string parser.
func FuzzParseName(f *testing.F) {
	for _, s := range []string{"-", "inet:5:99", "unix:/tmp/x", "pair:pair#3", "inet:", "bogus"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseName(s)
		if err != nil {
			return
		}
		// Accepted names re-parse to themselves.
		again, err := ParseName(n.String())
		if err != nil || again != n {
			t.Fatalf("round trip failed for %q: %v", s, err)
		}
	})
}
