package meter

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderSize is the encoded size of the standard meter message header.
// The C struct of Appendix A is long size; short machine; long cpuTime;
// long Dummy; long procTime; long traceType — with the VAX compiler's
// natural alignment that is 4+2+2(pad)+4+4+4+4 = 24 bytes.
const HeaderSize = 24

// MaxMsgSize bounds a single encoded meter message; the largest body
// (accept) is 56 bytes, so this is generous and guards decoding against
// corrupt size fields.
const MaxMsgSize = 256

// Errors reported by message decoding.
var (
	ErrShort   = errors.New("meter: buffer too short for message")
	ErrBadSize = errors.New("meter: corrupt size field")
	ErrBadType = errors.New("meter: unknown trace type")
)

// Header is the standard header carried by every meter message
// (Appendix A struct MeterHeader, Figure 4.1). CPUTime is the local
// machine clock in milliseconds ("useful for establishing the order of
// events on a particular machine"); ProcTime is the CPU time charged
// to the process, in milliseconds at 10 ms granularity.
type Header struct {
	Size      uint32
	Machine   uint16
	CPUTime   uint32
	Dummy     uint32
	ProcTime  uint32
	TraceType Type
}

func (h Header) encode(b []byte) {
	le := binary.LittleEndian
	le.PutUint32(b[0:4], h.Size)
	le.PutUint16(b[4:6], h.Machine)
	// b[6:8] is the alignment padding after the short.
	le.PutUint32(b[8:12], h.CPUTime)
	le.PutUint32(b[12:16], h.Dummy)
	le.PutUint32(b[16:20], h.ProcTime)
	le.PutUint32(b[20:24], uint32(h.TraceType))
}

func decodeHeader(b []byte) Header {
	le := binary.LittleEndian
	return Header{
		Size:      le.Uint32(b[0:4]),
		Machine:   le.Uint16(b[4:6]),
		CPUTime:   le.Uint32(b[8:12]),
		Dummy:     le.Uint32(b[12:16]),
		ProcTime:  le.Uint32(b[16:20]),
		TraceType: Type(le.Uint32(b[20:24])),
	}
}

// Field is one decoded field of a meter message body, used by trace
// dumps, the filter's record editing, and the analysis routines.
type Field struct {
	Name string
	// Value holds the numeric value for scalar fields.
	Value uint32
	// IsName marks 16-byte socket-name fields, whose value is in Addr.
	IsName bool
	Addr   Name
}

// Body is the event-specific part of a meter message.
type Body interface {
	// EventType returns the traceType this body encodes as.
	EventType() Type
	// bodyLen returns the encoded body size in bytes.
	bodyLen() int
	// encodeBody writes the body into b, which has length bodyLen().
	encodeBody(b []byte)
	// Fields enumerates the body's fields in declaration order.
	Fields() []Field
}

// Msg is a complete meter message. The kernel fills the header's
// timing fields when the event occurs.
type Msg struct {
	Header Header
	Body   Body
}

// EncodedSize returns the total encoded size of the message.
func (m *Msg) EncodedSize() int { return HeaderSize + m.Body.bodyLen() }

// Encode serializes the message, fixing up the header's Size and
// TraceType from the body.
func (m *Msg) Encode() []byte {
	size := m.EncodedSize()
	m.Header.Size = uint32(size)
	m.Header.TraceType = m.Body.EventType()
	b := make([]byte, size)
	m.Header.encode(b)
	m.Body.encodeBody(b[HeaderSize:])
	return b
}

// AppendEncode appends the encoded message to dst and returns the
// extended slice, avoiding an allocation in the kernel's buffering
// path.
func (m *Msg) AppendEncode(dst []byte) []byte {
	size := m.EncodedSize()
	m.Header.Size = uint32(size)
	m.Header.TraceType = m.Body.EventType()
	off := len(dst)
	for i := 0; i < size; i++ {
		dst = append(dst, 0)
	}
	m.Header.encode(dst[off:])
	m.Body.encodeBody(dst[off+HeaderSize:])
	return dst
}

// Decode parses one message from the front of b and returns it along
// with the number of bytes consumed. If b holds only part of a
// message, Decode returns ErrShort; callers accumulating a stream
// retry once more bytes arrive.
func Decode(b []byte) (Msg, int, error) {
	if len(b) < HeaderSize {
		return Msg{}, 0, ErrShort
	}
	h := decodeHeader(b)
	if h.Size < HeaderSize || h.Size > MaxMsgSize {
		return Msg{}, 0, fmt.Errorf("%w: %d", ErrBadSize, h.Size)
	}
	if int(h.Size) > len(b) {
		return Msg{}, 0, ErrShort
	}
	body, err := decodeBody(h.TraceType, b[HeaderSize:h.Size])
	if err != nil {
		return Msg{}, 0, err
	}
	return Msg{Header: h, Body: body}, int(h.Size), nil
}

// PeekSize validates the size field of the message at the front of b
// and returns it without decoding the body. n == 0 with a nil error
// means b holds only part of a message; an out-of-range size field is
// corruption. This is the framing primitive filters use to walk a
// meter byte stream record by record.
func PeekSize(b []byte) (int, error) {
	if len(b) < HeaderSize {
		return 0, nil
	}
	size := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if size < HeaderSize || size > MaxMsgSize {
		return 0, fmt.Errorf("%w: %d", ErrBadSize, size)
	}
	if len(b) < size {
		return 0, nil
	}
	return size, nil
}

// DecodeStream parses as many complete messages as b contains and
// returns them with the unconsumed tail. A partial trailing message is
// left in the tail; corrupt data is reported as an error.
func DecodeStream(b []byte) ([]Msg, []byte, error) {
	var msgs []Msg
	for {
		m, n, err := Decode(b)
		if errors.Is(err, ErrShort) {
			return msgs, b, nil
		}
		if err != nil {
			return msgs, b, err
		}
		msgs = append(msgs, m)
		b = b[n:]
	}
}

// --- Bodies (Appendix A struct definitions) ---

func put32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:off+4], v) }
func get32(b []byte, off int) uint32    { return binary.LittleEndian.Uint32(b[off : off+4]) }

// Send records a send/sendto/sendmsg/write/writev event (struct
// MeterSendMsg; its field layout is the one documented to the filter by
// the description in Figure 3.2). DestName is zero when the recipient
// is not available to the metering software, e.g. a write across a
// connection (section 4.1); DestNameLen is then zero too.
type Send struct {
	PID         uint32
	PC          uint32
	Sock        uint32 // socket (file table entry address) the message was sent on
	MsgLength   uint32 // bytes in the message
	DestNameLen uint32
	DestName    Name
}

func (*Send) EventType() Type { return EvSend }
func (*Send) bodyLen() int    { return 20 + NameSize }
func (s *Send) encodeBody(b []byte) {
	put32(b, 0, s.PID)
	put32(b, 4, s.PC)
	put32(b, 8, s.Sock)
	put32(b, 12, s.MsgLength)
	put32(b, 16, s.DestNameLen)
	copy(b[20:], s.DestName[:])
}
func (s *Send) Fields() []Field {
	return []Field{
		{Name: "pid", Value: s.PID},
		{Name: "pc", Value: s.PC},
		{Name: "sock", Value: s.Sock},
		{Name: "msgLength", Value: s.MsgLength},
		{Name: "destNameLen", Value: s.DestNameLen},
		{Name: "destName", IsName: true, Addr: s.DestName},
	}
}

// RecvCall records a process becoming ready to receive (struct
// MeterRecvCMsg): the call to read/recv/recvfrom/recvmsg, before any
// message arrives. The paper meters the call separately from the
// receipt so blocked time is observable.
type RecvCall struct {
	PID  uint32
	PC   uint32
	Sock uint32
}

func (*RecvCall) EventType() Type { return EvRecvCall }
func (*RecvCall) bodyLen() int    { return 12 }
func (r *RecvCall) encodeBody(b []byte) {
	put32(b, 0, r.PID)
	put32(b, 4, r.PC)
	put32(b, 8, r.Sock)
}
func (r *RecvCall) Fields() []Field {
	return []Field{
		{Name: "pid", Value: r.PID},
		{Name: "pc", Value: r.PC},
		{Name: "sock", Value: r.Sock},
	}
}

// Recv records the receipt of a message (struct MeterRecvMsg).
type Recv struct {
	PID           uint32
	PC            uint32
	Sock          uint32
	MsgLength     uint32
	SourceNameLen uint32
	SourceName    Name
}

func (*Recv) EventType() Type { return EvRecv }
func (*Recv) bodyLen() int    { return 20 + NameSize }
func (r *Recv) encodeBody(b []byte) {
	put32(b, 0, r.PID)
	put32(b, 4, r.PC)
	put32(b, 8, r.Sock)
	put32(b, 12, r.MsgLength)
	put32(b, 16, r.SourceNameLen)
	copy(b[20:], r.SourceName[:])
}
func (r *Recv) Fields() []Field {
	return []Field{
		{Name: "pid", Value: r.PID},
		{Name: "pc", Value: r.PC},
		{Name: "sock", Value: r.Sock},
		{Name: "msgLength", Value: r.MsgLength},
		{Name: "sourceNameLen", Value: r.SourceNameLen},
		{Name: "sourceName", IsName: true, Addr: r.SourceName},
	}
}

// SocketCrt records the creation of a socket (struct MeterSoctCrt).
type SocketCrt struct {
	PID      uint32
	PC       uint32
	Sock     uint32 // file table entry of new socket
	Domain   uint32
	SockType uint32
	Protocol uint32
}

func (*SocketCrt) EventType() Type { return EvSocket }
func (*SocketCrt) bodyLen() int    { return 24 }
func (s *SocketCrt) encodeBody(b []byte) {
	put32(b, 0, s.PID)
	put32(b, 4, s.PC)
	put32(b, 8, s.Sock)
	put32(b, 12, s.Domain)
	put32(b, 16, s.SockType)
	put32(b, 20, s.Protocol)
}
func (s *SocketCrt) Fields() []Field {
	return []Field{
		{Name: "pid", Value: s.PID},
		{Name: "pc", Value: s.PC},
		{Name: "sock", Value: s.Sock},
		{Name: "domain", Value: s.Domain},
		{Name: "type", Value: s.SockType},
		{Name: "protocol", Value: s.Protocol},
	}
}

// Dup records the duplication of a socket or file descriptor (struct
// MeterDup).
type Dup struct {
	PID     uint32
	PC      uint32
	Sock    uint32 // socket being duplicated
	NewSock uint32 // duplicate socket
}

func (*Dup) EventType() Type { return EvDup }
func (*Dup) bodyLen() int    { return 16 }
func (d *Dup) encodeBody(b []byte) {
	put32(b, 0, d.PID)
	put32(b, 4, d.PC)
	put32(b, 8, d.Sock)
	put32(b, 12, d.NewSock)
}
func (d *Dup) Fields() []Field {
	return []Field{
		{Name: "pid", Value: d.PID},
		{Name: "pc", Value: d.PC},
		{Name: "sock", Value: d.Sock},
		{Name: "newSock", Value: d.NewSock},
	}
}

// DestSocket records the destruction (close) of a socket. Appendix A's
// union omits this struct although the METERDESTSOCKET flag exists in
// the flag table of section 3.2; we give it the minimal body the flag
// implies.
type DestSocket struct {
	PID  uint32
	PC   uint32
	Sock uint32
}

func (*DestSocket) EventType() Type { return EvDestSocket }
func (*DestSocket) bodyLen() int    { return 12 }
func (d *DestSocket) encodeBody(b []byte) {
	put32(b, 0, d.PID)
	put32(b, 4, d.PC)
	put32(b, 8, d.Sock)
}
func (d *DestSocket) Fields() []Field {
	return []Field{
		{Name: "pid", Value: d.PID},
		{Name: "pc", Value: d.PC},
		{Name: "sock", Value: d.Sock},
	}
}

// Connect records the initiation of a connection (struct MeterConnect).
// SockName is the name bound to the connecting socket (often empty for
// a client) and PeerName the name bound to the accepting socket.
type Connect struct {
	PID         uint32
	PC          uint32
	Sock        uint32
	SockNameLen uint32
	PeerNameLen uint32
	SockName    Name
	PeerName    Name
}

func (*Connect) EventType() Type { return EvConnect }
func (*Connect) bodyLen() int    { return 20 + 2*NameSize }
func (c *Connect) encodeBody(b []byte) {
	put32(b, 0, c.PID)
	put32(b, 4, c.PC)
	put32(b, 8, c.Sock)
	put32(b, 12, c.SockNameLen)
	put32(b, 16, c.PeerNameLen)
	copy(b[20:], c.SockName[:])
	copy(b[36:], c.PeerName[:])
}
func (c *Connect) Fields() []Field {
	return []Field{
		{Name: "pid", Value: c.PID},
		{Name: "pc", Value: c.PC},
		{Name: "sock", Value: c.Sock},
		{Name: "sockNameLen", Value: c.SockNameLen},
		{Name: "peerNameLen", Value: c.PeerNameLen},
		{Name: "sockName", IsName: true, Addr: c.SockName},
		{Name: "peerName", IsName: true, Addr: c.PeerName},
	}
}

// Accept records the acceptance of a connection (struct MeterAccept,
// Figure 4.1): the accepting socket, the new connection socket created
// for the connection, and the names bound to both ends.
type Accept struct {
	PID         uint32
	PC          uint32
	Sock        uint32 // socket accepting the connection
	NewSock     uint32 // new socket created for the connection
	SockNameLen uint32
	PeerNameLen uint32
	SockName    Name // name bound to accepting socket
	PeerName    Name // name bound to connecting socket
}

func (*Accept) EventType() Type { return EvAccept }
func (*Accept) bodyLen() int    { return 24 + 2*NameSize }
func (a *Accept) encodeBody(b []byte) {
	put32(b, 0, a.PID)
	put32(b, 4, a.PC)
	put32(b, 8, a.Sock)
	put32(b, 12, a.NewSock)
	put32(b, 16, a.SockNameLen)
	put32(b, 20, a.PeerNameLen)
	copy(b[24:], a.SockName[:])
	copy(b[40:], a.PeerName[:])
}
func (a *Accept) Fields() []Field {
	return []Field{
		{Name: "pid", Value: a.PID},
		{Name: "pc", Value: a.PC},
		{Name: "sock", Value: a.Sock},
		{Name: "newSock", Value: a.NewSock},
		{Name: "sockNameLen", Value: a.SockNameLen},
		{Name: "peerNameLen", Value: a.PeerNameLen},
		{Name: "sockName", IsName: true, Addr: a.SockName},
		{Name: "peerName", IsName: true, Addr: a.PeerName},
	}
}

// Fork records a fork (struct MeterFork): the parent's pid and the
// child's pid. The child inherits the parent's meter flags and meter
// connection, so its own events follow in the same trace.
type Fork struct {
	PID    uint32 // parent process's ID
	PC     uint32
	NewPID uint32 // child process's ID
}

func (*Fork) EventType() Type { return EvFork }
func (*Fork) bodyLen() int    { return 12 }
func (f *Fork) encodeBody(b []byte) {
	put32(b, 0, f.PID)
	put32(b, 4, f.PC)
	put32(b, 8, f.NewPID)
}
func (f *Fork) Fields() []Field {
	return []Field{
		{Name: "pid", Value: f.PID},
		{Name: "pc", Value: f.PC},
		{Name: "newPid", Value: f.NewPID},
	}
}

// TermProc records process termination. Like DestSocket it is implied
// by the flag table (METERTERMPROC) but missing from Appendix A's
// union; the body carries the exit status.
type TermProc struct {
	PID    uint32
	PC     uint32
	Status uint32
}

func (*TermProc) EventType() Type { return EvTermProc }
func (*TermProc) bodyLen() int    { return 12 }
func (t *TermProc) encodeBody(b []byte) {
	put32(b, 0, t.PID)
	put32(b, 4, t.PC)
	put32(b, 8, t.Status)
}
func (t *TermProc) Fields() []Field {
	return []Field{
		{Name: "pid", Value: t.PID},
		{Name: "pc", Value: t.PC},
		{Name: "status", Value: t.Status},
	}
}

func decodeBody(t Type, b []byte) (Body, error) {
	var body Body
	switch t {
	case EvSend:
		body = &Send{}
	case EvRecvCall:
		body = &RecvCall{}
	case EvRecv:
		body = &Recv{}
	case EvSocket:
		body = &SocketCrt{}
	case EvDup:
		body = &Dup{}
	case EvDestSocket:
		body = &DestSocket{}
	case EvConnect:
		body = &Connect{}
	case EvAccept:
		body = &Accept{}
	case EvFork:
		body = &Fork{}
	case EvTermProc:
		body = &TermProc{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint32(t))
	}
	if len(b) != body.bodyLen() {
		return nil, fmt.Errorf("%w: %v body is %d bytes, want %d", ErrBadSize, t, len(b), body.bodyLen())
	}
	decodeInto(body, b)
	return body, nil
}

func decodeInto(body Body, b []byte) {
	switch v := body.(type) {
	case *Send:
		v.PID, v.PC, v.Sock = get32(b, 0), get32(b, 4), get32(b, 8)
		v.MsgLength, v.DestNameLen = get32(b, 12), get32(b, 16)
		copy(v.DestName[:], b[20:])
	case *RecvCall:
		v.PID, v.PC, v.Sock = get32(b, 0), get32(b, 4), get32(b, 8)
	case *Recv:
		v.PID, v.PC, v.Sock = get32(b, 0), get32(b, 4), get32(b, 8)
		v.MsgLength, v.SourceNameLen = get32(b, 12), get32(b, 16)
		copy(v.SourceName[:], b[20:])
	case *SocketCrt:
		v.PID, v.PC, v.Sock = get32(b, 0), get32(b, 4), get32(b, 8)
		v.Domain, v.SockType, v.Protocol = get32(b, 12), get32(b, 16), get32(b, 20)
	case *Dup:
		v.PID, v.PC, v.Sock, v.NewSock = get32(b, 0), get32(b, 4), get32(b, 8), get32(b, 12)
	case *DestSocket:
		v.PID, v.PC, v.Sock = get32(b, 0), get32(b, 4), get32(b, 8)
	case *Connect:
		v.PID, v.PC, v.Sock = get32(b, 0), get32(b, 4), get32(b, 8)
		v.SockNameLen, v.PeerNameLen = get32(b, 12), get32(b, 16)
		copy(v.SockName[:], b[20:36])
		copy(v.PeerName[:], b[36:52])
	case *Accept:
		v.PID, v.PC, v.Sock, v.NewSock = get32(b, 0), get32(b, 4), get32(b, 8), get32(b, 12)
		v.SockNameLen, v.PeerNameLen = get32(b, 16), get32(b, 20)
		copy(v.SockName[:], b[24:40])
		copy(v.PeerName[:], b[40:56])
	case *Fork:
		v.PID, v.PC, v.NewPID = get32(b, 0), get32(b, 4), get32(b, 8)
	case *TermProc:
		v.PID, v.PC, v.Status = get32(b, 0), get32(b, 4), get32(b, 8)
	}
}
