package meter

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// allBodies returns one populated instance of every body type.
func allBodies() []Body {
	sn := InetName(228320140, 3000)
	pn := UnixName("/tmp/srv")
	return []Body{
		&Send{PID: 2120, PC: 0x40a0, Sock: 4, MsgLength: 512, DestNameLen: 16, DestName: sn},
		&RecvCall{PID: 2120, PC: 0x40b0, Sock: 4},
		&Recv{PID: 2122, PC: 0x40c0, Sock: 5, MsgLength: 512, SourceNameLen: 16, SourceName: sn},
		&SocketCrt{PID: 2120, PC: 0x40d0, Sock: 0x101, Domain: uint32(AFInet), SockType: 1, Protocol: 0},
		&Dup{PID: 2120, PC: 0x40e0, Sock: 0x101, NewSock: 0x102},
		&DestSocket{PID: 2120, PC: 0x40f0, Sock: 0x101},
		&Connect{PID: 2120, PC: 0x4100, Sock: 0x101, SockNameLen: 0, PeerNameLen: 16, PeerName: pn},
		&Accept{PID: 2122, PC: 0x4110, Sock: 0x201, NewSock: 0x202, SockNameLen: 16, PeerNameLen: 16, SockName: pn, PeerName: sn},
		&Fork{PID: 2120, PC: 0x4120, NewPID: 2121},
		&TermProc{PID: 2121, PC: 0x4130, Status: 0},
	}
}

func header() Header {
	return Header{Machine: 5, CPUTime: 9500, ProcTime: 120}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, body := range allBodies() {
		m := Msg{Header: header(), Body: body}
		enc := m.Encode()
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", body.EventType(), err)
		}
		if n != len(enc) {
			t.Fatalf("%v: consumed %d of %d bytes", body.EventType(), n, len(enc))
		}
		if !reflect.DeepEqual(got.Body, body) {
			t.Fatalf("%v: body round trip mismatch:\n got %+v\nwant %+v", body.EventType(), got.Body, body)
		}
		if got.Header.Machine != 5 || got.Header.CPUTime != 9500 || got.Header.ProcTime != 120 {
			t.Fatalf("%v: header mismatch: %+v", body.EventType(), got.Header)
		}
	}
}

func TestHeaderLayout(t *testing.T) {
	// Appendix A: long size; short machine (+2 pad); long cpuTime;
	// long Dummy; long procTime; long traceType. 24 bytes, VAX
	// little-endian.
	m := Msg{Header: Header{Machine: 5, CPUTime: 1000, Dummy: 0, ProcTime: 40}, Body: &Fork{PID: 1, PC: 2, NewPID: 3}}
	b := m.Encode()
	le := binary.LittleEndian
	if got := le.Uint32(b[0:4]); got != uint32(len(b)) {
		t.Errorf("size field = %d, want %d", got, len(b))
	}
	if got := le.Uint16(b[4:6]); got != 5 {
		t.Errorf("machine field = %d, want 5", got)
	}
	if got := le.Uint32(b[8:12]); got != 1000 {
		t.Errorf("cpuTime field = %d, want 1000", got)
	}
	if got := le.Uint32(b[16:20]); got != 40 {
		t.Errorf("procTime field = %d, want 40", got)
	}
	if got := le.Uint32(b[20:24]); got != uint32(EvFork) {
		t.Errorf("traceType field = %d, want %d", got, EvFork)
	}
	if HeaderSize != 24 {
		t.Errorf("HeaderSize = %d, want 24", HeaderSize)
	}
}

// TestSendLayoutMatchesFigure32 pins the send body layout to the event
// record description of Figure 3.2:
//
//	SEND 1, pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10
//	        destNameLen,16,4,10 destName,20,16,16
func TestSendLayoutMatchesFigure32(t *testing.T) {
	dest := InetName(228320140, 21)
	m := Msg{Header: header(), Body: &Send{PID: 77, PC: 88, Sock: 4, MsgLength: 99, DestNameLen: 16, DestName: dest}}
	b := m.Encode()
	body := b[HeaderSize:]
	le := binary.LittleEndian
	if EvSend != 1 {
		t.Errorf("EvSend = %d, want 1 (Figure 3.3 uses type=1 for send)", EvSend)
	}
	checks := []struct {
		name string
		off  int
		want uint32
	}{
		{"pid", 0, 77},
		{"pc", 4, 88},
		{"sock", 8, 4},
		{"msgLength", 12, 99},
		{"destNameLen", 16, 16},
	}
	for _, c := range checks {
		if got := le.Uint32(body[c.off : c.off+4]); got != c.want {
			t.Errorf("%s at body offset %d = %d, want %d", c.name, c.off, got, c.want)
		}
	}
	var gotName Name
	copy(gotName[:], body[20:36])
	if gotName != dest {
		t.Errorf("destName at body offset 20 = %v, want %v", gotName, dest)
	}
	if len(body) != 36 {
		t.Errorf("send body length = %d, want 36", len(body))
	}
}

// TestAcceptLayoutMatchesFigure41 pins the accept body layout to
// Figure 4.1 / struct MeterAccept: pid, pc, socket, newSocket,
// sockNameLen, peerNameLen, sockName, peerName.
func TestAcceptLayoutMatchesFigure41(t *testing.T) {
	sn, pn := UnixName("/tmp/a"), UnixName("/tmp/b")
	m := Msg{Header: header(), Body: &Accept{
		PID: 1, PC: 2, Sock: 3, NewSock: 4, SockNameLen: 16, PeerNameLen: 16, SockName: sn, PeerName: pn,
	}}
	b := m.Encode()
	body := b[HeaderSize:]
	le := binary.LittleEndian
	if EvAccept != 8 {
		t.Errorf("EvAccept = %d, want 8 (Figure 3.4 uses type=8 with sockName=peerName)", EvAccept)
	}
	for i, want := range []uint32{1, 2, 3, 4, 16, 16} {
		if got := le.Uint32(body[i*4 : i*4+4]); got != want {
			t.Errorf("accept scalar %d = %d, want %d", i, got, want)
		}
	}
	var gotSn, gotPn Name
	copy(gotSn[:], body[24:40])
	copy(gotPn[:], body[40:56])
	if gotSn != sn || gotPn != pn {
		t.Error("accept name fields misplaced")
	}
	if len(body) != 56 {
		t.Errorf("accept body length = %d, want 56", len(body))
	}
}

func TestBodySizes(t *testing.T) {
	// The C struct sizes implied by Appendix A on a 32-bit VAX.
	want := map[Type]int{
		EvSend:       36,
		EvRecvCall:   12,
		EvRecv:       36,
		EvSocket:     24,
		EvDup:        16,
		EvDestSocket: 12,
		EvConnect:    52,
		EvAccept:     56,
		EvFork:       12,
		EvTermProc:   12,
	}
	for _, b := range allBodies() {
		if got := b.bodyLen(); got != want[b.EventType()] {
			t.Errorf("%v body size = %d, want %d", b.EventType(), got, want[b.EventType()])
		}
	}
}

func TestDecodeShort(t *testing.T) {
	m := Msg{Header: header(), Body: &Fork{PID: 1, PC: 2, NewPID: 3}}
	enc := m.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); !errors.Is(err, ErrShort) {
			t.Fatalf("Decode of %d/%d bytes: err = %v, want ErrShort", cut, len(enc), err)
		}
	}
}

func TestDecodeCorruptSize(t *testing.T) {
	m := Msg{Header: header(), Body: &Fork{}}
	enc := m.Encode()
	binary.LittleEndian.PutUint32(enc[0:4], 7) // < HeaderSize
	if _, _, err := Decode(enc); !errors.Is(err, ErrBadSize) {
		t.Fatalf("err = %v, want ErrBadSize", err)
	}
	binary.LittleEndian.PutUint32(enc[0:4], MaxMsgSize+1)
	if _, _, err := Decode(enc); !errors.Is(err, ErrBadSize) {
		t.Fatalf("err = %v, want ErrBadSize", err)
	}
}

func TestDecodeUnknownType(t *testing.T) {
	m := Msg{Header: header(), Body: &Fork{}}
	enc := m.Encode()
	binary.LittleEndian.PutUint32(enc[20:24], 999)
	if _, _, err := Decode(enc); !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v, want ErrBadType", err)
	}
}

func TestDecodeStreamBatches(t *testing.T) {
	// The kernel sends several buffered messages together; the filter
	// must be able to split the batch on the size field.
	var batch []byte
	bodies := allBodies()
	for _, b := range bodies {
		m := Msg{Header: header(), Body: b}
		batch = m.AppendEncode(batch)
	}
	msgs, rest, err := DecodeStream(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("undcoded tail of %d bytes", len(rest))
	}
	if len(msgs) != len(bodies) {
		t.Fatalf("decoded %d messages, want %d", len(msgs), len(bodies))
	}
	for i := range msgs {
		if msgs[i].Body.EventType() != bodies[i].EventType() {
			t.Fatalf("message %d type = %v, want %v", i, msgs[i].Body.EventType(), bodies[i].EventType())
		}
	}
}

func TestDecodeStreamPartialTail(t *testing.T) {
	m := Msg{Header: header(), Body: &Send{PID: 1}}
	enc := m.Encode()
	double := append(append([]byte{}, enc...), enc[:10]...)
	msgs, rest, err := DecodeStream(double)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || len(rest) != 10 {
		t.Fatalf("msgs=%d rest=%d, want 1 and 10", len(msgs), len(rest))
	}
}

func TestFieldsEnumeration(t *testing.T) {
	for _, b := range allBodies() {
		fields := b.Fields()
		if len(fields) == 0 {
			t.Fatalf("%v: no fields", b.EventType())
		}
		if fields[0].Name != "pid" || fields[1].Name != "pc" {
			t.Fatalf("%v: every body starts with pid, pc; got %v, %v", b.EventType(), fields[0].Name, fields[1].Name)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Random sends and accepts survive encode/decode byte-for-byte.
	f := func(pid, pc, sock, length uint32, host uint32, port uint16) bool {
		s := &Send{PID: pid, PC: pc, Sock: sock, MsgLength: length, DestNameLen: 16, DestName: InetName(host, port)}
		m := Msg{Header: Header{Machine: 3, CPUTime: pc % 100000, ProcTime: pid % 1000}, Body: s}
		got, _, err := Decode(m.Encode())
		return err == nil && reflect.DeepEqual(got.Body, s) && got.Header == m.Header
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeStreamRandomBatchesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bodies := allBodies()
	f := func(picks []uint8) bool {
		var batch []byte
		var want []Type
		for _, p := range picks {
			b := bodies[int(p)%len(bodies)]
			m := Msg{Header: Header{Machine: uint16(rng.Intn(10))}, Body: b}
			batch = m.AppendEncode(batch)
			want = append(want, b.EventType())
		}
		msgs, rest, err := DecodeStream(batch)
		if err != nil || len(rest) != 0 || len(msgs) != len(want) {
			return false
		}
		for i := range msgs {
			if msgs[i].Body.EventType() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	if EvSend.String() != "SEND" || EvTermProc.String() != "TERMPROC" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() != "TYPE(99)" {
		t.Fatalf("unknown type string = %q", Type(99).String())
	}
}
