package meter

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// NameSize is the size of a socket name in a meter message: the 16
// bytes of a 4.2BSD struct sockaddr (Appendix A: "typedef struct
// sockaddr NAME").
const NameSize = 16

// Address families carried in the first two bytes of a Name. AFUnix
// and AFInet use their 4.2BSD values; AFPair is the family invented
// for the internally generated unique names of socketpairs (section
// 4.1: "in the case of socketpairs, an internally generated unique
// name").
const (
	AFUnspec uint16 = 0
	AFUnix   uint16 = 1
	AFInet   uint16 = 2
	AFPair   uint16 = 100
)

// Name is a socket name as carried in meter messages: a fixed 16-byte
// sockaddr image. The family occupies bytes 0–1 (little-endian, as the
// VAX stored shorts); an Internet name stores port (bytes 2–3) and
// host (bytes 4–7) in network byte order like sockaddr_in; UNIX-domain
// and socketpair names store up to 14 path bytes.
type Name [NameSize]byte

// maxPath is the path capacity of a UNIX-domain Name.
const maxPath = NameSize - 2

// InetName builds an Internet-domain socket name.
func InetName(host uint32, port uint16) Name {
	var n Name
	binary.LittleEndian.PutUint16(n[0:2], AFInet)
	binary.BigEndian.PutUint16(n[2:4], port)
	binary.BigEndian.PutUint32(n[4:8], host)
	return n
}

// UnixName builds a UNIX-domain socket name from a path. Paths longer
// than 14 bytes are truncated, as sockaddr_un fields were.
func UnixName(path string) Name { return pathName(AFUnix, path) }

// PairName builds the internally generated unique name of one
// socketpair endpoint.
func PairName(id uint32) Name { return pathName(AFPair, fmt.Sprintf("pair#%d", id)) }

func pathName(family uint16, path string) Name {
	// sockaddr paths are NUL-terminated: anything from the first NUL
	// on is unrepresentable and dropped, keeping names canonical.
	if i := strings.IndexByte(path, 0); i >= 0 {
		path = path[:i]
	}
	var n Name
	binary.LittleEndian.PutUint16(n[0:2], family)
	copy(n[2:], path)
	return n
}

// Family returns the name's address family.
func (n Name) Family() uint16 { return binary.LittleEndian.Uint16(n[0:2]) }

// Inet returns the host and port of an Internet name. It is only
// meaningful when Family() == AFInet.
func (n Name) Inet() (host uint32, port uint16) {
	return binary.BigEndian.Uint32(n[4:8]), binary.BigEndian.Uint16(n[2:4])
}

// Path returns the path of a UNIX-domain or socketpair name.
func (n Name) Path() string {
	b := n[2:]
	if i := bytes.IndexByte(b, 0); i >= 0 {
		b = b[:i]
	}
	return string(b)
}

// IsZero reports whether the name is entirely unset — the encoding of
// "name not available", as when a process writes across a connection
// and the recipient is unknown to the metering software (section 4.1).
func (n Name) IsZero() bool { return n == Name{} }

// String renders the name for trace logs and analysis output.
func (n Name) String() string { return string(n.AppendText(nil)) }

// AppendText appends the String rendering of the name to dst and
// returns the extended slice. Filters format every surviving record's
// name fields, so this path avoids fmt and allocates nothing beyond
// dst's growth.
func (n Name) AppendText(dst []byte) []byte {
	switch n.Family() {
	case AFUnspec:
		if n.IsZero() {
			return append(dst, '-')
		}
		dst = append(dst, "unspec:"...)
		return hex.AppendEncode(dst, n[2:])
	case AFInet:
		host, port := n.Inet()
		dst = append(dst, "inet:"...)
		dst = strconv.AppendUint(dst, uint64(host), 10)
		dst = append(dst, ':')
		return strconv.AppendUint(dst, uint64(port), 10)
	case AFUnix:
		dst = append(dst, "unix:"...)
		return n.appendPath(dst)
	case AFPair:
		dst = append(dst, "pair:"...)
		return n.appendPath(dst)
	default:
		dst = append(dst, "af"...)
		dst = strconv.AppendUint(dst, uint64(n.Family()), 10)
		dst = append(dst, ':')
		return hex.AppendEncode(dst, n[2:])
	}
}

// appendPath appends the NUL-terminated path bytes without the
// intermediate string Path builds.
func (n Name) appendPath(dst []byte) []byte {
	b := n[2:]
	if i := bytes.IndexByte(b, 0); i >= 0 {
		b = b[:i]
	}
	return append(dst, b...)
}

// ParseName parses the String form back into a Name; trace logs store
// names in that form. It returns an error for unrecognized syntax.
func ParseName(s string) (Name, error) {
	switch {
	case s == "-":
		return Name{}, nil
	case len(s) > 5 && s[:5] == "inet:":
		var host uint32
		var port uint16
		if _, err := fmt.Sscanf(s, "inet:%d:%d", &host, &port); err != nil {
			return Name{}, fmt.Errorf("meter: bad inet name %q: %v", s, err)
		}
		return InetName(host, port), nil
	case len(s) >= 5 && s[:5] == "unix:":
		return UnixName(s[5:]), nil
	case len(s) >= 5 && s[:5] == "pair:":
		return pathName(AFPair, s[5:]), nil
	default:
		return Name{}, fmt.Errorf("meter: unrecognized name %q", s)
	}
}
