package meter

import (
	"testing"
	"testing/quick"
)

func TestInetNameRoundTrip(t *testing.T) {
	n := InetName(228320140, 3000)
	if n.Family() != AFInet {
		t.Fatalf("family = %d, want AFInet", n.Family())
	}
	host, port := n.Inet()
	if host != 228320140 || port != 3000 {
		t.Fatalf("Inet() = (%d, %d)", host, port)
	}
}

func TestUnixName(t *testing.T) {
	n := UnixName("/tmp/sock")
	if n.Family() != AFUnix {
		t.Fatalf("family = %d, want AFUnix", n.Family())
	}
	if n.Path() != "/tmp/sock" {
		t.Fatalf("path = %q", n.Path())
	}
}

func TestUnixNameTruncates(t *testing.T) {
	long := "/a/very/long/path/name/indeed"
	n := UnixName(long)
	if got := n.Path(); got != long[:maxPath] {
		t.Fatalf("path = %q, want %q", got, long[:maxPath])
	}
}

func TestUnixNameTruncatesAtNUL(t *testing.T) {
	// sockaddr paths are NUL-terminated: bytes from the first NUL on
	// are unrepresentable and must be dropped so names stay canonical
	// (found by FuzzParseName).
	n := UnixName("/tmp\x00junk")
	if n.Path() != "/tmp" {
		t.Fatalf("path = %q", n.Path())
	}
	again, err := ParseName(n.String())
	if err != nil || again != n {
		t.Fatalf("round trip: %v %v", again, err)
	}
}

func TestPairNameUnique(t *testing.T) {
	a, b := PairName(1), PairName(2)
	if a == b {
		t.Fatal("distinct pair ids produced equal names")
	}
	if a.Family() != AFPair {
		t.Fatalf("family = %d, want AFPair", a.Family())
	}
}

func TestIsZero(t *testing.T) {
	var zero Name
	if !zero.IsZero() {
		t.Fatal("zero name not IsZero")
	}
	if InetName(1, 1).IsZero() {
		t.Fatal("inet name reported zero")
	}
}

func TestNameStringForms(t *testing.T) {
	cases := map[string]Name{
		"-":           {},
		"inet:99:7":   InetName(99, 7),
		"unix:/tmp/x": UnixName("/tmp/x"),
		"pair:pair#3": PairName(3),
	}
	for want, n := range cases {
		if got := n.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestParseNameRoundTrip(t *testing.T) {
	names := []Name{{}, InetName(228320140, 21), UnixName("/tmp/srv"), PairName(12)}
	for _, n := range names {
		got, err := ParseName(n.String())
		if err != nil {
			t.Fatalf("ParseName(%q): %v", n.String(), err)
		}
		if got != n {
			t.Fatalf("ParseName(%q) = %v, want %v", n.String(), got, n)
		}
	}
}

func TestParseNameErrors(t *testing.T) {
	for _, s := range []string{"", "bogus", "inet:x:y"} {
		if _, err := ParseName(s); err == nil {
			t.Errorf("ParseName(%q) succeeded", s)
		}
	}
}

func TestInetNameRoundTripProperty(t *testing.T) {
	f := func(host uint32, port uint16) bool {
		n := InetName(host, port)
		h, p := n.Inet()
		parsed, err := ParseName(n.String())
		return h == host && p == port && err == nil && parsed == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
